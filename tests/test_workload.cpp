// Multi-tenant workload manager tests: deterministic arrival traces, the
// core-slot arbiter disciplines, the byte-identity of a one-job FIFO
// workload against run_distributed, inter-job scheduling (FIFO / SJF /
// fair-share / priority with preemption), exact per-tenant cost
// attribution, and elastic bursting under concurrent jobs.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "apps/experiments.hpp"
#include "common/units.hpp"
#include "middleware/runtime.hpp"
#include "trace/trace.hpp"
#include "workload/workload_manager.hpp"

namespace cloudburst::workload {
namespace {

using namespace cloudburst::units;
using cluster::kCloudSite;
using cluster::kLocalSite;
using cluster::Platform;
using cluster::PlatformSpec;

// --- arrival traces ----------------------------------------------------------

TEST(Arrivals, PoissonIsDeterministicAndMonotonic) {
  const auto a = ArrivalTrace::poisson(50, 2.0, 7);
  const auto b = ArrivalTrace::poisson(50, 2.0, 7);
  ASSERT_EQ(a.size(), 50u);
  EXPECT_EQ(a.times, b.times);
  for (std::size_t i = 1; i < a.size(); ++i) EXPECT_GE(a.at(i), a.at(i - 1));
  EXPECT_GT(a.at(0), 0.0);
  // A different seed draws a different trace.
  EXPECT_NE(a.times, ArrivalTrace::poisson(50, 2.0, 8).times);
  // Mean inter-arrival ~ 1/rate over 50 draws: loose 3x bounds.
  const double mean = a.times.back() / 50.0;
  EXPECT_GT(mean, 0.5 / 2.0 / 3.0);
  EXPECT_LT(mean, 3.0 / 2.0);
}

TEST(Arrivals, BurstyLaysOutBurstsAndGaps) {
  const auto t = ArrivalTrace::bursty(3, 2, 10.0, 0.5);
  ASSERT_EQ(t.size(), 6u);
  const std::vector<double> expect = {0.0, 0.5, 10.0, 10.5, 20.0, 20.5};
  EXPECT_EQ(t.times, expect);
}

TEST(Arrivals, ReplaySortsDefensively) {
  const auto t = ArrivalTrace::replay({3.0, 1.0, 2.0});
  const std::vector<double> expect = {1.0, 2.0, 3.0};
  EXPECT_EQ(t.times, expect);
}

// --- core-slot arbiter -------------------------------------------------------

TEST(SlotArbiter, FifoServesClaimsInArrivalOrder) {
  CoreSlotArbiter arb(CoreSlotArbiter::Discipline::Fifo);
  arb.register_job(1, {});
  arb.register_job(2, {});
  arb.register_job(3, {});
  EXPECT_TRUE(arb.acquire(0, 1, [] {}));  // free slot: granted synchronously
  std::vector<int> order;
  EXPECT_FALSE(arb.acquire(0, 2, [&] { order.push_back(2); }));
  EXPECT_FALSE(arb.acquire(0, 3, [&] { order.push_back(3); }));
  arb.release(0, 1, 1.0);  // hands to job 2
  arb.release(0, 2, 1.0);  // hands to job 3
  const std::vector<int> expect = {2, 3};
  EXPECT_EQ(order, expect);
}

TEST(SlotArbiter, WeightedFairPicksLeastServedTenant) {
  CoreSlotArbiter arb(CoreSlotArbiter::Discipline::WeightedFair);
  arb.register_job(1, {"alice", 1.0, 0});
  arb.register_job(2, {"alice", 1.0, 0});
  arb.register_job(3, {"bob", 1.0, 0});
  EXPECT_TRUE(arb.acquire(0, 1, [] {}));
  std::vector<int> order;
  EXPECT_FALSE(arb.acquire(0, 2, [&] { order.push_back(2); }));
  EXPECT_FALSE(arb.acquire(0, 3, [&] { order.push_back(3); }));
  // Job 1 charged alice 5s: bob's claim wins over alice's earlier one.
  arb.release(0, 1, 5.0);
  ASSERT_EQ(order.size(), 1u);
  EXPECT_EQ(order[0], 3);
  EXPECT_DOUBLE_EQ(arb.tenant_seconds("alice"), 5.0);
  EXPECT_DOUBLE_EQ(arb.tenant_service("alice"), 5.0);
}

TEST(SlotArbiter, WeightDividesChargedService) {
  CoreSlotArbiter arb(CoreSlotArbiter::Discipline::WeightedFair);
  arb.register_job(1, {"heavy", 4.0, 0});
  EXPECT_TRUE(arb.acquire(0, 1, [] {}));
  arb.release(0, 1, 8.0);
  EXPECT_DOUBLE_EQ(arb.tenant_seconds("heavy"), 8.0);
  EXPECT_DOUBLE_EQ(arb.tenant_service("heavy"), 2.0);  // 8s / weight 4
}

TEST(SlotArbiter, LateTenantEntersAtServiceFloor) {
  CoreSlotArbiter arb(CoreSlotArbiter::Discipline::WeightedFair);
  arb.register_job(1, {"old", 1.0, 0});
  EXPECT_TRUE(arb.acquire(0, 1, [] {}));
  arb.release(0, 1, 100.0);
  // A tenant registering now starts at the floor (min active service =
  // 100), not at zero — it does not get to monopolize to "catch up".
  arb.register_job(2, {"new", 1.0, 0});
  EXPECT_DOUBLE_EQ(arb.tenant_service("new"), 100.0);
}

TEST(SlotArbiter, PriorityWinsSlotAndReportsPreemption) {
  CoreSlotArbiter arb(CoreSlotArbiter::Discipline::Priority);
  arb.register_job(1, {"t", 1.0, 0});   // low priority
  arb.register_job(2, {"t", 1.0, 5});   // high priority
  std::vector<std::uint32_t> preempted;
  arb.on_preemption([&](net::EndpointId, std::uint32_t loser, std::uint32_t winner) {
    preempted.push_back(loser);
    EXPECT_EQ(winner, 2u);
  });
  EXPECT_TRUE(arb.acquire(0, 1, [] {}));
  bool high_ran = false;
  EXPECT_FALSE(arb.acquire(0, 2, [&] { high_ran = true; }));
  arb.release(0, 1, 1.0);  // chunk boundary: high priority takes the core
  EXPECT_TRUE(high_ran);
  // Job 1 re-claims the slot it last held and finds a higher-priority
  // holder: that is the chunk-granular preemption.
  EXPECT_FALSE(arb.acquire(0, 1, [] {}));
  ASSERT_EQ(preempted.size(), 1u);
  EXPECT_EQ(preempted[0], 1u);
}

TEST(SlotArbiter, ReleaseByNonHolderThrows) {
  CoreSlotArbiter arb(CoreSlotArbiter::Discipline::Fifo);
  arb.register_job(1, {});
  EXPECT_TRUE(arb.acquire(0, 1, [] {}));
  EXPECT_THROW(arb.release(0, 2, 1.0), std::logic_error);
  EXPECT_THROW(arb.release(1, 1, 1.0), std::logic_error);
}

TEST(SlotArbiter, ForgetDropsClaimsAndFreesHeldSlot) {
  CoreSlotArbiter arb(CoreSlotArbiter::Discipline::Fifo);
  arb.register_job(1, {});
  arb.register_job(2, {});
  arb.register_job(3, {});
  EXPECT_TRUE(arb.acquire(0, 1, [] {}));
  bool job2_ran = false, job3_ran = false;
  EXPECT_FALSE(arb.acquire(0, 2, [&] { job2_ran = true; }));
  EXPECT_FALSE(arb.acquire(0, 3, [&] { job3_ran = true; }));
  arb.forget(0, 2);  // job 2 died while queued
  arb.forget(0, 1);  // the holder died: slot passes over job 2 to job 3
  EXPECT_FALSE(job2_ran);
  EXPECT_TRUE(job3_ran);
}

// --- workload fixture --------------------------------------------------------

/// Small two-site platform + an 8-file layout that runs in milliseconds.
struct WorkloadRig {
  Platform platform{PlatformSpec::paper_testbed(4, 4)};
  storage::DataLayout layout;
  middleware::RunOptions options;

  WorkloadRig() {
    storage::LayoutSpec spec;
    spec.total_bytes = MiB(256);
    spec.num_files = 8;
    spec.chunks_per_file = 2;
    spec.unit_bytes = 64;
    layout = storage::build_layout(spec);
    storage::assign_stores_by_fraction(layout, 0.5, platform.local_store_id(),
                                       platform.cloud_store_id());
    options.profile.name = "wl";
    options.profile.unit_bytes = 64;
    options.profile.bytes_per_second_per_core = MBps(4);
    options.profile.robj_bytes = KiB(64);
  }

  JobSpec job(std::string name, std::string tenant = "default", int priority = 0) {
    JobSpec spec;
    spec.name = std::move(name);
    spec.tenant = std::move(tenant);
    spec.priority = priority;
    spec.layout = layout;
    spec.options = options;
    return spec;
  }
};

// --- byte-identity of the solo path ------------------------------------------

TEST(WorkloadManager, SoloFifoJobMatchesRunDistributedExactly) {
  // Paper-scale run: the same spec/layout/options through run_distributed
  // and through a one-job FIFO workload must not move a single event.
  const auto app = apps::PaperApp::Knn;
  const auto options = apps::paper_run_options(app);

  Platform p1(PlatformSpec::paper_testbed(16, 16));
  const auto layout1 =
      apps::paper_layout(app, 0.5, p1.local_store_id(), p1.cloud_store_id());
  const auto baseline = middleware::run_distributed(p1, layout1, options);

  Platform p2(PlatformSpec::paper_testbed(16, 16));
  JobSpec spec;
  spec.name = "knn";
  spec.layout = apps::paper_layout(app, 0.5, p2.local_store_id(), p2.cloud_store_id());
  spec.options = options;
  WorkloadManager manager(p2, WorkloadOptions{});
  manager.submit(std::move(spec), 0.0);
  const auto workload = manager.run();

  ASSERT_EQ(workload.jobs.size(), 1u);
  const middleware::RunResult& run = workload.jobs[0].run;
  EXPECT_DOUBLE_EQ(run.total_time, baseline.total_time);
  EXPECT_DOUBLE_EQ(run.global_reduction_time, baseline.global_reduction_time);
  ASSERT_EQ(run.clusters.size(), baseline.clusters.size());
  for (std::size_t c = 0; c < run.clusters.size(); ++c) {
    EXPECT_DOUBLE_EQ(run.clusters[c].processing, baseline.clusters[c].processing);
    EXPECT_DOUBLE_EQ(run.clusters[c].retrieval, baseline.clusters[c].retrieval);
    EXPECT_DOUBLE_EQ(run.clusters[c].sync, baseline.clusters[c].sync);
    EXPECT_EQ(run.clusters[c].jobs_local, baseline.clusters[c].jobs_local);
    EXPECT_EQ(run.clusters[c].jobs_stolen, baseline.clusters[c].jobs_stolen);
  }
  ASSERT_EQ(run.nodes.size(), baseline.nodes.size());
  for (std::size_t n = 0; n < run.nodes.size(); ++n) {
    EXPECT_DOUBLE_EQ(run.nodes[n].processing, baseline.nodes[n].processing);
    EXPECT_DOUBLE_EQ(run.nodes[n].retrieval, baseline.nodes[n].retrieval);
    EXPECT_DOUBLE_EQ(run.nodes[n].wait, baseline.nodes[n].wait);
    EXPECT_DOUBLE_EQ(run.nodes[n].finish_time, baseline.nodes[n].finish_time);
    EXPECT_EQ(run.nodes[n].jobs, baseline.nodes[n].jobs);
  }
  EXPECT_EQ(run.store_requests, baseline.store_requests);
  EXPECT_EQ(run.s3_get_requests, baseline.s3_get_requests);
  EXPECT_EQ(run.bytes_from_store, baseline.bytes_from_store);
  EXPECT_DOUBLE_EQ(workload.makespan, baseline.total_time);
  EXPECT_EQ(workload.preemptions, 0u);
  // Lifecycle subsystem off: no drains, no early rental ends on either path.
  EXPECT_EQ(run.lifecycle.drains_requested, 0u);
  EXPECT_EQ(run.lifecycle.nodes_crashed, 0u);
  EXPECT_TRUE(run.cloud_instance_ends.empty());
  EXPECT_TRUE(baseline.cloud_instance_ends.empty());
}

// --- admission policies ------------------------------------------------------

TEST(WorkloadManager, FifoRunsToCompletionInSubmissionOrder) {
  WorkloadRig rig;
  WorkloadManager manager(rig.platform, WorkloadOptions{});
  manager.submit(rig.job("first"), 0.0);
  manager.submit(rig.job("second"), 0.0);
  const auto result = manager.run();
  ASSERT_EQ(result.jobs.size(), 2u);
  // Second waits for first's completion: no overlap at all.
  EXPECT_DOUBLE_EQ(result.jobs[0].start_seconds, 0.0);
  EXPECT_DOUBLE_EQ(result.jobs[1].start_seconds, result.jobs[0].finish_seconds);
  EXPECT_GT(result.jobs[1].queue_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(result.makespan, result.jobs[1].finish_seconds);
}

TEST(WorkloadManager, SjfStartsShortestEstimateFirst) {
  WorkloadRig rig;
  // A second layout four times the bytes: strictly longer estimate.
  storage::LayoutSpec big;
  big.total_bytes = MiB(1024);
  big.num_files = 8;
  big.chunks_per_file = 2;
  big.unit_bytes = 64;
  JobSpec long_job = rig.job("long");
  long_job.layout = storage::build_layout(big);
  storage::assign_stores_by_fraction(long_job.layout, 0.5, rig.platform.local_store_id(),
                                     rig.platform.cloud_store_id());

  WorkloadOptions opts;
  opts.policy = SchedulingPolicy::Sjf;
  WorkloadManager manager(rig.platform, opts);
  manager.submit(std::move(long_job), 0.0);       // submitted first...
  manager.submit(rig.job("short"), 0.0);          // ...but short wins the pick
  const auto result = manager.run();
  EXPECT_DOUBLE_EQ(result.job(2).start_seconds, 0.0);
  EXPECT_DOUBLE_EQ(result.job(1).start_seconds, result.job(2).finish_seconds);
}

TEST(WorkloadManager, FairShareOverlapsConcurrentJobs) {
  WorkloadRig rig;
  WorkloadOptions opts;
  opts.policy = SchedulingPolicy::FairShare;
  WorkloadManager manager(rig.platform, opts);
  manager.submit(rig.job("a", "alice"), 0.0);
  manager.submit(rig.job("b", "bob"), 0.0);
  const auto result = manager.run();
  // Both admitted immediately; the core slots time-share.
  EXPECT_DOUBLE_EQ(result.job(1).start_seconds, 0.0);
  EXPECT_DOUBLE_EQ(result.job(2).start_seconds, 0.0);
  ASSERT_NE(result.tenant("alice"), nullptr);
  ASSERT_NE(result.tenant("bob"), nullptr);
  const double alice = result.tenant("alice")->service_seconds;
  const double bob = result.tenant("bob")->service_seconds;
  EXPECT_GT(alice, 0.0);
  EXPECT_GT(bob, 0.0);
  // Equal weights, identical jobs: service within 2x of each other.
  EXPECT_LT(alice / bob, 2.0);
  EXPECT_GT(alice / bob, 0.5);
  // Sharing stretches each job but the pair beats running back to back.
  const double serial = result.job(1).run.total_time + result.job(2).run.total_time;
  EXPECT_LT(result.makespan, serial);
}

TEST(WorkloadManager, PriorityPreemptsLowPriorityAtChunkBoundaries) {
  WorkloadRig rig;
  trace::Tracer tracer;
  WorkloadOptions opts;
  opts.policy = SchedulingPolicy::Priority;
  opts.tracer = &tracer;
  WorkloadManager manager(rig.platform, opts);
  manager.submit(rig.job("batch", "batch-tenant", 0), 0.0);
  // A small urgent job arrives once the batch job holds every core. It must
  // win the contended slots (preempting the batch job chunk by chunk) and
  // finish long before the batch job despite arriving second.
  storage::LayoutSpec small;
  small.total_bytes = MiB(32);
  small.num_files = 4;
  small.chunks_per_file = 1;
  small.unit_bytes = 64;
  JobSpec urgent = rig.job("urgent", "urgent-tenant", 10);
  urgent.layout = storage::build_layout(small);
  storage::assign_stores_by_fraction(urgent.layout, 0.5, rig.platform.local_store_id(),
                                     rig.platform.cloud_store_id());
  manager.submit(std::move(urgent), 0.5);
  const auto result = manager.run();
  EXPECT_GT(result.preemptions, 0u);
  EXPECT_EQ(result.job(1).preemptions, result.preemptions);  // only batch loses cores
  EXPECT_EQ(result.job(2).preemptions, 0u);
  EXPECT_EQ(tracer.count(trace::EventKind::JobPreempted), result.preemptions);
  EXPECT_EQ(tracer.count(trace::EventKind::JobSubmitted), 2u);
  EXPECT_EQ(tracer.count(trace::EventKind::JobStarted), 2u);
  EXPECT_EQ(tracer.count(trace::EventKind::JobFinished), 2u);
  // The urgent job, despite arriving second, finishes first.
  EXPECT_LT(result.job(2).finish_seconds, result.job(1).finish_seconds);
}

TEST(WorkloadManager, MaxConcurrentCapsAdmission) {
  WorkloadRig rig;
  WorkloadOptions opts;
  opts.policy = SchedulingPolicy::FairShare;
  opts.max_concurrent = 1;
  WorkloadManager manager(rig.platform, opts);
  manager.submit(rig.job("a"), 0.0);
  manager.submit(rig.job("b"), 0.0);
  const auto result = manager.run();
  // Cap of one degenerates to run-to-completion.
  EXPECT_DOUBLE_EQ(result.job(2).start_seconds, result.job(1).finish_seconds);
}

TEST(WorkloadManager, DeadlinesDriveSloAccounting) {
  WorkloadRig rig;
  WorkloadManager manager(rig.platform, WorkloadOptions{});
  JobSpec relaxed = rig.job("relaxed");
  relaxed.deadline_seconds = 1e6;
  JobSpec strict = rig.job("strict");
  strict.deadline_seconds = 1e-3;  // FIFO queueing alone blows this
  manager.submit(std::move(relaxed), 0.0);
  manager.submit(std::move(strict), 0.0);
  const auto result = manager.run();
  EXPECT_TRUE(result.job(1).slo_met());
  EXPECT_FALSE(result.job(2).slo_met());
  EXPECT_DOUBLE_EQ(result.slo_hit_rate, 0.5);
  EXPECT_EQ(result.tenant("default")->slo_met, 1u);
}

// --- trace lanes -------------------------------------------------------------

TEST(WorkloadManager, GanttRendersPerJobLanes) {
  WorkloadRig rig;
  trace::Tracer tracer;
  WorkloadOptions opts;
  opts.policy = SchedulingPolicy::FairShare;
  opts.tracer = &tracer;
  WorkloadManager manager(rig.platform, opts);
  manager.submit(rig.job("alpha"), 0.0);
  manager.submit(rig.job("beta"), 1.0);
  manager.run();
  const std::string gantt = tracer.render_gantt(60);
  // Job lifecycle lanes ('J' running) plus per-job node lanes ("alpha/...").
  EXPECT_NE(gantt.find("alpha"), std::string::npos);
  EXPECT_NE(gantt.find("beta"), std::string::npos);
  EXPECT_NE(gantt.find('J'), std::string::npos);
  EXPECT_NE(gantt.find("alpha/"), std::string::npos);
}

// --- cost attribution --------------------------------------------------------

TEST(WorkloadManager, AttributedCostsSumExactlyToPlatformBill) {
  WorkloadRig rig;
  WorkloadOptions opts;
  opts.policy = SchedulingPolicy::FairShare;
  opts.tenant_weights = {{"alice", 2.0}, {"bob", 1.0}};
  WorkloadManager manager(rig.platform, opts);
  manager.submit(rig.job("a1", "alice"), 0.0);
  manager.submit(rig.job("b1", "bob"), 0.0);
  manager.submit(rig.job("a2", "alice"), 0.5);
  const auto result = manager.run();

  double inst = 0, req = 0, xfer = 0, stor = 0, hours = 0;
  std::uint64_t gets = 0;
  for (const auto& job : result.jobs) {
    inst += job.attributed_cost.instance_usd;
    req += job.attributed_cost.requests_usd;
    xfer += job.attributed_cost.transfer_usd;
    stor += job.attributed_cost.storage_usd;
    hours += job.attributed_cost.instance_hours;
    gets += job.attributed_cost.get_requests;
  }
  // Exact, component by component — not merely approximate.
  EXPECT_DOUBLE_EQ(inst, result.platform_cost.instance_usd);
  EXPECT_DOUBLE_EQ(req, result.platform_cost.requests_usd);
  EXPECT_DOUBLE_EQ(xfer, result.platform_cost.transfer_usd);
  EXPECT_DOUBLE_EQ(stor, result.platform_cost.storage_usd);
  EXPECT_DOUBLE_EQ(hours, result.platform_cost.instance_hours);
  EXPECT_EQ(gets, result.platform_cost.get_requests);
  EXPECT_NEAR(inst + req + xfer + stor, result.platform_cost.total_usd(), 1e-9);

  // Tenant rollups partition the same bill.
  double tenant_total = 0;
  for (const auto& t : result.tenants) tenant_total += t.attributed_cost.total_usd();
  EXPECT_NEAR(tenant_total, result.platform_cost.total_usd(), 1e-9);
  EXPECT_EQ(result.tenant("alice")->jobs, 2u);
  EXPECT_DOUBLE_EQ(result.tenant("alice")->weight, 2.0);

  // The platform GET count is the sum of true per-job request counts.
  std::uint64_t raw_gets = 0;
  for (const auto& job : result.jobs) raw_gets += job.raw_cost.get_requests;
  EXPECT_EQ(result.platform_cost.get_requests, raw_gets);
  EXPECT_GT(raw_gets, 0u);
}

// --- elastic bursting under concurrency --------------------------------------

TEST(WorkloadManager, ConcurrentElasticJobsBillSharedNodesOnce) {
  // Two tenants' elastic jobs on the same platform: both scale out onto the
  // same physical cloud nodes; the platform bill must carry each node once.
  Platform platform(PlatformSpec::paper_testbed(2, 8));
  storage::LayoutSpec lspec;
  lspec.total_bytes = MiB(512);
  lspec.num_files = 8;
  lspec.chunks_per_file = 3;
  lspec.unit_bytes = 64;
  storage::DataLayout layout = storage::build_layout(lspec);
  storage::assign_stores_by_fraction(layout, 0.0, platform.local_store_id(),
                                     platform.cloud_store_id());

  middleware::RunOptions options;
  options.profile.name = "elastic-wl";
  options.profile.unit_bytes = 64;
  options.profile.bytes_per_second_per_core = MBps(2);
  options.profile.robj_bytes = KiB(64);
  options.reduction_tree = false;
  options.elastic.enabled = true;
  options.elastic.deadline_seconds = 30.0;  // tight: forces activations
  options.elastic.initial_cloud_nodes = 1;
  options.elastic.check_interval_seconds = 2.0;
  options.elastic.boot_seconds = 5.0;
  options.elastic.activation_step = 2;

  WorkloadOptions opts;
  opts.policy = SchedulingPolicy::FairShare;
  WorkloadManager manager(platform, opts);
  for (int i = 0; i < 2; ++i) {
    JobSpec spec;
    spec.name = "el" + std::to_string(i);
    spec.tenant = i == 0 ? "alice" : "bob";
    spec.layout = layout;
    spec.options = options;
    manager.submit(std::move(spec), 0.0);
  }
  const auto result = manager.run();

  // The workload counter is the sum of the per-job counters (S3), and both
  // tenants' controllers actually fired.
  std::uint32_t per_job = 0;
  std::size_t instances = 0;
  double raw_hours = 0;
  for (const auto& job : result.jobs) {
    EXPECT_GT(job.run.elastic_activations, 0u);
    per_job += job.run.elastic_activations;
    instances += job.run.cloud_instance_nodes.size();
    raw_hours += job.raw_cost.instance_hours;
  }
  EXPECT_EQ(result.elastic_activations, per_job);
  // Both jobs rented the same initial node (and likely the same boosts):
  // the deduped platform bill has strictly fewer instance-windows than the
  // two jobs' raw bills stacked, and never more than the cloud fleet.
  EXPECT_LT(result.platform_cost.instance_hours, raw_hours);
  EXPECT_GE(instances, result.jobs.size());  // every job billed its initial node
  EXPECT_GT(result.platform_cost.instance_hours, 0.0);
  // Attribution still sums exactly under dedup.
  double attributed = 0;
  for (const auto& job : result.jobs) attributed += job.attributed_cost.instance_usd;
  EXPECT_DOUBLE_EQ(attributed, result.platform_cost.instance_usd);
}

// --- scheduler seed threading ------------------------------------------------

TEST(WorkloadManager, RunSeedThreadsIntoRandomRemoteSelection) {
  const auto run_with_seed = [](std::uint64_t seed) {
    return apps::run_env(apps::Env::Hybrid5050, apps::PaperApp::Knn,
                         [seed](cluster::PlatformSpec&, middleware::RunOptions& options) {
                           options.policy.remote_selection =
                               middleware::RemoteSelection::Random;
                           options.random_seed = seed;
                         });
  };
  const auto a1 = run_with_seed(7);
  const auto a2 = run_with_seed(7);
  EXPECT_DOUBLE_EQ(a1.total_time, a2.total_time);  // same seed: same run
  // A different seed steals from different files: some node's trajectory
  // must move (compare full finish-time vectors, not one aggregate).
  const auto b = run_with_seed(1234569);
  bool any_difference = std::abs(a1.total_time - b.total_time) > 0.0;
  ASSERT_EQ(a1.nodes.size(), b.nodes.size());
  for (std::size_t i = 0; i < a1.nodes.size() && !any_difference; ++i) {
    any_difference = a1.nodes[i].finish_time != b.nodes[i].finish_time ||
                     a1.nodes[i].jobs != b.nodes[i].jobs;
  }
  EXPECT_TRUE(any_difference);
}

// --- manager misuse ----------------------------------------------------------

TEST(WorkloadManager, RejectsEmptyAndDoubleRuns) {
  WorkloadRig rig;
  WorkloadManager manager(rig.platform, WorkloadOptions{});
  EXPECT_THROW(manager.run(), std::invalid_argument);
  manager.submit(rig.job("only"), 0.0);
  manager.run();
  EXPECT_THROW(manager.run(), std::logic_error);
  EXPECT_THROW(manager.submit(rig.job("late"), 0.0), std::logic_error);
}

TEST(WorkloadManager, SubmitAllRequiresMatchingTraceLength) {
  WorkloadRig rig;
  WorkloadManager manager(rig.platform, WorkloadOptions{});
  std::vector<JobSpec> specs;
  specs.push_back(rig.job("a"));
  specs.push_back(rig.job("b"));
  EXPECT_THROW(manager.submit_all(std::move(specs), ArrivalTrace::poisson(3, 1.0, 1)),
               std::invalid_argument);
}

}  // namespace
}  // namespace cloudburst::workload
