// Replication tests: deterministic k-way placement per policy, the route
// oracle (WAN cost, suspect / throttle / fail-probability penalties, tie
// breaks), replica health transitions (mark_lost / note_fetch_ok), repair
// planning and settlement, hot-chunk promotion, the default-off byte-identity
// guarantee, the end-to-end acceptance run (k = 2 cross-site strictly beats
// k = 1 on remote-read p95 under cloud store faults), composition with cache
// + faults + lifecycle in one run, and exact two-tenant cost attribution with
// replica storage and repair egress on the bill.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "apps/experiments.hpp"
#include "cache/chunk_cache.hpp"
#include "common/units.hpp"
#include "middleware/job_execution.hpp"
#include "middleware/runtime.hpp"
#include "replica/repair.hpp"
#include "replica/replica_set.hpp"
#include "trace/trace.hpp"
#include "workload/workload_manager.hpp"

namespace cloudburst {
namespace {

using namespace cloudburst::units;
using cluster::kCloudSite;
using cluster::kLocalSite;
using cluster::Platform;
using cluster::PlatformSpec;
using replica::PlacementPolicy;
using replica::ReplicaSet;
using replica::ReplicationConfig;
using storage::StoreId;

/// Local cluster plus two cloud providers — three stores, asymmetric WAN.
PlatformSpec three_site_spec() {
  PlatformSpec spec;
  spec.sites.push_back(PlatformSpec::paper_local_site(8));
  spec.sites.push_back(PlatformSpec::paper_cloud_site(8, "east"));
  spec.sites.push_back(PlatformSpec::paper_cloud_site(8, "west"));
  spec.wan_bandwidth = MBps(125);
  spec.wan_latency = des::from_seconds(ms(25));
  spec.set_wan(1, 2, MBps(60), des::from_seconds(ms(60)));
  return spec;
}

storage::DataLayout three_way_layout(Platform& platform) {
  storage::LayoutSpec lspec;
  lspec.total_bytes = MiB(96);
  lspec.num_files = 6;
  lspec.chunks_per_file = 2;
  lspec.unit_bytes = 64;
  storage::DataLayout layout = storage::build_layout(lspec);
  storage::assign_stores_by_weights(
      layout, {1.0, 1.0, 1.0},
      {platform.store_of_cluster(0), platform.store_of_cluster(1),
       platform.store_of_cluster(2)});
  return layout;
}

// --- config validation -------------------------------------------------------

TEST(ReplicaSet, RejectsDegenerateConfig) {
  ReplicationConfig zero;
  zero.replication_factor = 0;
  EXPECT_THROW(ReplicaSet{zero}, std::invalid_argument);
  ReplicationConfig interval;
  interval.repair_interval_seconds = 0.0;
  EXPECT_THROW(ReplicaSet{interval}, std::invalid_argument);
}

TEST(ReplicaSet, AttachRejectsGeometryChange) {
  Platform p(three_site_spec());
  const auto layout = three_way_layout(p);
  ReplicaSet rs;
  rs.attach(layout, p);
  EXPECT_TRUE(rs.built());
  rs.attach(layout, p);  // same geometry: re-points, no rebuild

  Platform two_sites(PlatformSpec::paper_testbed(4, 4));
  storage::DataLayout other =
      apps::paper_layout(apps::PaperApp::Knn, 0.5, two_sites.local_store_id(),
                         two_sites.cloud_store_id());
  EXPECT_THROW(rs.attach(other, two_sites), std::invalid_argument);
}

// --- placement ---------------------------------------------------------------

TEST(ReplicaPlacement, CrossSiteSpreadIsDeterministicAndDistinct) {
  Platform p(three_site_spec());
  const auto layout = three_way_layout(p);
  ReplicationConfig cfg;
  cfg.replication_factor = 3;
  cfg.placement = PlacementPolicy::CrossSite;

  ReplicaSet a{cfg}, b{cfg};
  a.attach(layout, p);
  b.attach(layout, p);
  EXPECT_EQ(a.initial_extras(), b.initial_extras());  // bit-reproducible

  // Every chunk ends with one live copy on each of the three stores, all
  // distinct (k = 3 on 3 stores covers the platform).
  for (const auto& chunk : layout.chunks()) {
    std::set<StoreId> holders;
    for (StoreId s = 0; s < p.store_count(); ++s) {
      if (a.is_live(chunk.id, s)) holders.insert(s);
    }
    EXPECT_EQ(holders.size(), 3u) << "chunk " << chunk.id;
  }
  // 2 extra copies per chunk were created.
  EXPECT_EQ(a.replicas_created(), 2 * layout.chunks().size());
  EXPECT_EQ(a.initial_extras().size(), 2 * layout.chunks().size());
}

TEST(ReplicaPlacement, ReplicationFactorClampsToStoreCount) {
  Platform p(PlatformSpec::paper_testbed(4, 4));  // two stores
  auto layout = apps::paper_layout(apps::PaperApp::Knn, 0.5, p.local_store_id(),
                                   p.cloud_store_id());
  ReplicationConfig cfg;
  cfg.replication_factor = 5;
  ReplicaSet rs{cfg};
  rs.attach(layout, p);
  // k clamps to 2: exactly one extra copy per chunk.
  EXPECT_EQ(rs.initial_extras().size(), layout.chunks().size());
}

TEST(ReplicaPlacement, SameSitePlacesOnCheapestWanNeighbors) {
  Platform p(three_site_spec());
  const auto layout = three_way_layout(p);
  ReplicationConfig cfg;
  cfg.replication_factor = 2;
  cfg.placement = PlacementPolicy::SameSite;
  ReplicaSet rs{cfg};
  rs.attach(layout, p);

  // east <-> west is the slow edge (60 MB/s, 60 ms): a chunk whose primary
  // sits on east must place its extra copy on local (fast edge), never west.
  const StoreId east = p.store_of_cluster(1);
  const StoreId west = p.store_of_cluster(2);
  const StoreId local = p.store_of_cluster(0);
  for (const auto& [chunk, dst] : rs.initial_extras()) {
    if (layout.store_of(chunk) == east) {
      EXPECT_EQ(dst, local) << "chunk " << chunk;
      EXPECT_NE(dst, west);
    }
  }
}

TEST(ReplicaPlacement, HotChunkStartsBareAndEarnsCopiesFromHits) {
  Platform p(three_site_spec());
  const auto layout = three_way_layout(p);
  ReplicationConfig cfg;
  cfg.replication_factor = 2;
  cfg.placement = PlacementPolicy::HotChunk;
  cfg.hot_threshold = 2;
  ReplicaSet rs{cfg};
  rs.attach(layout, p);

  EXPECT_TRUE(rs.initial_extras().empty());  // no copies paid up front
  EXPECT_EQ(rs.target_copies(0), 1u);
  EXPECT_TRUE(rs.plan_repairs(8, 0.0).empty());  // nothing under-replicated

  rs.record_hit(0);
  EXPECT_EQ(rs.target_copies(0), 1u);  // one hit: below the threshold
  rs.record_hit(0);
  EXPECT_EQ(rs.target_copies(0), 2u);  // promoted

  // The repair planner now owes chunk 0 its second copy.
  const auto tasks = rs.plan_repairs(8, 0.0);
  ASSERT_EQ(tasks.size(), 1u);
  EXPECT_EQ(tasks[0].chunk, 0u);
  EXPECT_EQ(tasks[0].src, layout.store_of(0));
  rs.repair_done(tasks[0], /*ok=*/true, 0.0);
  EXPECT_TRUE(rs.is_live(0, tasks[0].dst));
  EXPECT_EQ(rs.replicas_repaired(), 1u);
}

TEST(ReplicaPlacement, HotChunkFallsBackToFetchCountHeatWithoutACache) {
  Platform p(three_site_spec());
  const auto layout = three_way_layout(p);
  ReplicationConfig cfg;
  cfg.replication_factor = 2;
  cfg.placement = PlacementPolicy::HotChunk;
  cfg.hot_threshold = 2;
  ReplicaSet rs{cfg};
  rs.attach(layout, p);

  // Default heat source is cache hits: demand fetches are not heat, so the
  // old silent-degradation bug (no cache -> no promotions, ever) would
  // reproduce here if fetches counted for the wrong source.
  EXPECT_EQ(rs.heat_source(), replica::HeatSource::CacheHits);
  rs.record_fetch(0);
  rs.record_fetch(0);
  EXPECT_EQ(rs.target_copies(0), 1u);

  // Cacheless runs switch the source: now only fetches count.
  rs.set_heat_source(replica::HeatSource::FetchCounts);
  rs.record_hit(1);
  rs.record_hit(1);
  EXPECT_EQ(rs.target_copies(1), 1u);
  rs.record_fetch(1);
  rs.record_fetch(1);
  EXPECT_EQ(rs.target_copies(1), 2u);  // promoted from demand fetches
}

// The end-to-end regression for the silent HotChunk degradation: with no
// CacheFleet attached the middleware selects fetch-count heat, so promotions
// (and the repair transfers that realize them) still happen.
TEST(ReplicaAcceptance, HotChunkPromotesFromDemandFetchesWhenNoCacheRuns) {
  ReplicationConfig cfg;
  cfg.replication_factor = 2;
  cfg.placement = PlacementPolicy::HotChunk;
  cfg.hot_threshold = 1;  // one demand fetch is enough to earn a copy
  ReplicaSet rs{cfg};
  const auto result = apps::run_env(
      apps::Env::Hybrid5050, apps::PaperApp::Knn,
      [&](cluster::PlatformSpec&, middleware::RunOptions& options) {
        options.replication = &rs;
      });
  EXPECT_EQ(rs.heat_source(), replica::HeatSource::FetchCounts);
  EXPECT_EQ(result.total_jobs(), 96u);
  EXPECT_GT(result.replica.replicas_repaired, 0u);

  // With a cache attached the source stays cache hits, as before.
  cache::CacheConfig ccfg;
  ccfg.capacity_bytes = GiB(4);
  cache::CacheFleet fleet(ccfg);
  ReplicaSet rs2{cfg};
  apps::run_env(apps::Env::Hybrid5050, apps::PaperApp::Knn,
                [&](cluster::PlatformSpec&, middleware::RunOptions& options) {
                  options.replication = &rs2;
                  options.cache = &fleet;
                });
  EXPECT_EQ(rs2.heat_source(), replica::HeatSource::CacheHits);
}

// --- route oracle ------------------------------------------------------------

// Equal-cost replicas must split read load instead of piling onto the lowest
// store id (the old tie-break). The outstanding-routed-bytes signal makes
// successive resolves alternate between the two copies.
TEST(ReplicaRouting, EqualCostTiesSplitLoadAcrossReplicas) {
  PlatformSpec spec;
  spec.sites.push_back(PlatformSpec::paper_local_site(8));
  spec.sites.push_back(PlatformSpec::paper_cloud_site(8, "east"));
  spec.sites.push_back(PlatformSpec::paper_cloud_site(8, "west"));
  spec.wan_bandwidth = MBps(125);
  spec.wan_latency = des::from_seconds(ms(25));
  // East <-> west is cheap, so CrossSite replicates east's chunks to west;
  // site 0 then reads both copies at identical (default) WAN cost.
  spec.set_wan(1, 2, MBps(500), des::from_seconds(ms(5)));
  Platform p(spec);

  storage::LayoutSpec lspec;
  lspec.total_bytes = MiB(96);
  lspec.num_files = 6;
  lspec.chunks_per_file = 2;
  lspec.unit_bytes = 64;
  storage::DataLayout layout = storage::build_layout(lspec);
  const StoreId east = p.store_of_cluster(1);
  const StoreId west = p.store_of_cluster(2);
  storage::assign_stores_by_fraction(layout, 1.0, east, west);

  ReplicationConfig cfg;
  cfg.replication_factor = 2;
  cfg.placement = PlacementPolicy::CrossSite;
  ReplicaSet rs{cfg};
  rs.attach(layout, p);
  // CrossSite fans copies round-robin: even chunks replicate east -> west
  // (both remote and equidistant from site 0), odd ones east -> local.
  std::vector<storage::ChunkId> tied;
  for (const auto& chunk : layout.chunks()) {
    if (rs.is_live(chunk.id, east) && rs.is_live(chunk.id, west)) {
      tied.push_back(chunk.id);
    }
  }
  ASSERT_GE(tied.size(), 6u);

  // One resolve per tied chunk from the equidistant reader: the split must
  // come out near 50/50, not 100% on the lower store id.
  std::map<StoreId, unsigned> counts;
  std::vector<StoreId> sequence;
  for (const storage::ChunkId chunk : tied) {
    const StoreId s = rs.resolve(chunk, /*reader_site=*/0, 0.0);
    ++counts[s];
    sequence.push_back(s);
  }
  const double n = static_cast<double>(tied.size());
  EXPECT_GE(counts[east], static_cast<unsigned>(0.4 * n));
  EXPECT_GE(counts[west], static_cast<unsigned>(0.4 * n));

  // Deterministic: an identical set resolves the identical sequence.
  ReplicaSet again{cfg};
  again.attach(layout, p);
  std::vector<StoreId> sequence2;
  for (const storage::ChunkId chunk : tied) {
    sequence2.push_back(again.resolve(chunk, 0, 0.0));
  }
  EXPECT_EQ(sequence, sequence2);
}

TEST(ReplicaRouting, ResolveChargesRoutedBytesUntilSettled) {
  PlatformSpec spec;
  spec.sites.push_back(PlatformSpec::paper_local_site(8));
  spec.sites.push_back(PlatformSpec::paper_cloud_site(8, "east"));
  spec.sites.push_back(PlatformSpec::paper_cloud_site(8, "west"));
  spec.wan_bandwidth = MBps(125);
  spec.wan_latency = des::from_seconds(ms(25));
  spec.set_wan(1, 2, MBps(500), des::from_seconds(ms(5)));
  Platform p(spec);

  storage::LayoutSpec lspec;
  lspec.total_bytes = MiB(96);
  lspec.num_files = 6;
  lspec.chunks_per_file = 2;
  lspec.unit_bytes = 64;
  storage::DataLayout layout = storage::build_layout(lspec);
  storage::assign_stores_by_fraction(layout, 1.0, p.store_of_cluster(1),
                                     p.store_of_cluster(2));
  ReplicationConfig cfg;
  cfg.replication_factor = 2;
  cfg.placement = PlacementPolicy::CrossSite;
  ReplicaSet rs{cfg};
  rs.attach(layout, p);

  const std::uint64_t bytes = layout.chunk(0).bytes;
  const StoreId first = rs.resolve(0, 0, 0.0);
  EXPECT_EQ(rs.routed_bytes(first), bytes);
  // The charge is live, so the same chunk re-routes to the other copy.
  const StoreId second = rs.resolve(0, 0, 0.0);
  EXPECT_NE(second, first);
  // Settling clears the charge without touching replica health.
  rs.settle_route(0, first);
  rs.settle_route(0, second);
  EXPECT_EQ(rs.routed_bytes(first), 0u);
  EXPECT_EQ(rs.routed_bytes(second), 0u);
  EXPECT_TRUE(rs.is_live(0, first));
  EXPECT_TRUE(rs.is_live(0, second));
}

TEST(ReplicaRouting, ResolvePrefersOwnSiteThenFailsOverAndRevives) {
  Platform p(three_site_spec());
  const auto layout = three_way_layout(p);
  ReplicationConfig cfg;
  cfg.replication_factor = 3;
  ReplicaSet rs{cfg};
  rs.attach(layout, p);

  const storage::ChunkId chunk = 0;
  const StoreId local = p.store_of_cluster(0);
  // All three stores hold the chunk: a local reader reads its own store.
  EXPECT_EQ(rs.resolve(chunk, /*reader_site=*/0, 0.0), local);

  // The local copy fails: route moves to the cheapest surviving replica and
  // the transition reports exactly once.
  EXPECT_TRUE(rs.mark_lost(chunk, local, 0.0));
  EXPECT_FALSE(rs.mark_lost(chunk, local, 0.0));  // already lost
  EXPECT_EQ(rs.replicas_lost(), 1u);
  const StoreId failover = rs.resolve(chunk, 0, 0.0);
  EXPECT_NE(failover, local);
  EXPECT_TRUE(rs.is_live(chunk, failover));

  // A later successful GET against the store revives the copy; once the
  // suspect penalty lapses the local store wins again.
  rs.note_fetch_ok(chunk, local);
  EXPECT_TRUE(rs.is_live(chunk, local));
  EXPECT_EQ(rs.resolve(chunk, 0, rs.config().suspect_seconds + 1.0), local);
}

TEST(ReplicaRouting, AllCopiesLostFallsBackToPrimary) {
  Platform p(three_site_spec());
  const auto layout = three_way_layout(p);
  ReplicationConfig cfg;
  cfg.replication_factor = 3;
  ReplicaSet rs{cfg};
  rs.attach(layout, p);
  const StoreId primary = layout.store_of(0);
  for (StoreId s = 0; s < p.store_count(); ++s) rs.mark_lost(0, s, 0.0);
  // Nothing is live: the caller's retry loop gets the primary back.
  EXPECT_EQ(rs.resolve(0, 0, 0.0), primary);
}

TEST(ReplicaRouting, SuspectPenaltyExpiresAfterConfiguredWindow) {
  Platform p(three_site_spec());
  const auto layout = three_way_layout(p);
  ReplicationConfig cfg;
  cfg.replication_factor = 3;
  cfg.suspect_seconds = 50.0;
  ReplicaSet rs{cfg};
  rs.attach(layout, p);

  const StoreId local = p.store_of_cluster(0);
  rs.mark_store_suspect(local, /*now=*/10.0);
  // Inside the window the reader routes around its own store...
  EXPECT_NE(rs.resolve(0, 0, 30.0), local);
  // ...and returns home once the suspicion lapses (60.0 = 10.0 + 50.0).
  EXPECT_EQ(rs.resolve(0, 0, 60.0), local);

  // mark_site_suspect resolves the site's affinity store.
  rs.mark_site_suspect(0, 100.0);
  EXPECT_NE(rs.resolve(0, 0, 120.0), local);
}

TEST(ReplicaRouting, ThrottleWindowSteersReadsSharingTheStoreConvention) {
  // The route oracle must treat a throttle window exactly as the store does:
  // half-open [begin, end). At t = begin the throttled store is penalized;
  // at t = end it is clean again.
  PlatformSpec spec = three_site_spec();
  auto& fault = spec.sites[0].store->fault;
  fault.throttles.push_back({/*begin=*/100.0, /*end=*/200.0,
                             /*bandwidth_factor=*/0.05, /*fail=*/0.5});
  Platform p(spec);
  const auto layout = three_way_layout(p);
  ReplicationConfig cfg;
  cfg.replication_factor = 3;
  ReplicaSet rs{cfg};
  rs.attach(layout, p);

  const StoreId local = p.store_of_cluster(0);
  EXPECT_EQ(rs.resolve(0, 0, 99.0), local);    // before the window
  EXPECT_NE(rs.resolve(0, 0, 100.0), local);   // t == begin: inside
  EXPECT_NE(rs.resolve(0, 0, 199.0), local);   // still inside
  EXPECT_EQ(rs.resolve(0, 0, 200.0), local);   // t == end: outside
}

// --- repair planning ---------------------------------------------------------

TEST(ReplicaRepair, PlansFromHealthiestSourceAndSettlesAccounting) {
  Platform p(three_site_spec());
  const auto layout = three_way_layout(p);
  ReplicationConfig cfg;
  cfg.replication_factor = 2;
  cfg.placement = PlacementPolicy::CrossSite;
  ReplicaSet rs{cfg};
  rs.attach(layout, p);

  const auto before = rs.extra_bytes_per_store();

  // Kill chunk 0's extra copy.
  const auto& extras = rs.initial_extras();
  const auto it = std::find_if(extras.begin(), extras.end(),
                               [](const auto& e) { return e.first == 0; });
  ASSERT_NE(it, extras.end());
  const StoreId lost_store = it->second;
  ASSERT_TRUE(rs.mark_lost(0, lost_store, 0.0));
  // Lost bytes leave the storage bill immediately.
  const auto after_loss = rs.extra_bytes_per_store();
  EXPECT_EQ(after_loss[lost_store] + layout.chunk(0).bytes, before[lost_store]);

  // Planner: one task for chunk 0, sourced from the surviving primary; the
  // suspect store is not chosen as a destination, and the chunk stays
  // pending (no duplicate plan) until the transfer settles.
  auto tasks = rs.plan_repairs(8, 0.0);
  ASSERT_EQ(tasks.size(), 1u);
  EXPECT_EQ(tasks[0].chunk, 0u);
  EXPECT_EQ(tasks[0].src, layout.store_of(0));
  EXPECT_NE(tasks[0].dst, lost_store);  // lost store is suspect right now
  EXPECT_TRUE(rs.plan_repairs(8, 0.0).empty());

  // A failed transfer releases the pending mark and suspects the source.
  rs.repair_done(tasks[0], /*ok=*/false, 0.0);
  EXPECT_EQ(rs.replicas_repaired(), 0u);
  auto retry = rs.plan_repairs(8, 0.0);
  ASSERT_EQ(retry.size(), 1u);
  rs.repair_done(retry[0], /*ok=*/true, 0.0);
  EXPECT_EQ(rs.replicas_repaired(), 1u);
  EXPECT_TRUE(rs.is_live(0, retry[0].dst));
  // The repaired copy is back on the bill.
  std::uint64_t total_before = 0, total_after = 0;
  for (const auto b : before) total_before += b;
  for (const auto b : rs.extra_bytes_per_store()) total_after += b;
  EXPECT_EQ(total_before, total_after);
}

TEST(ReplicaRepair, ActorRunsTransfersUnderConcurrencyCap) {
  Platform p(three_site_spec());
  const auto layout = three_way_layout(p);
  ReplicationConfig cfg;
  cfg.replication_factor = 2;
  cfg.repair_interval_seconds = 1.0;
  cfg.repair_concurrency = 2;
  cfg.suspect_seconds = 0.5;  // lapse fast so destinations become eligible
  ReplicaSet rs{cfg};
  rs.attach(layout, p);

  // Lose every extra copy: 12 chunks under-replicated at once.
  for (const auto& [chunk, store] : rs.initial_extras()) {
    rs.mark_lost(chunk, store, 0.0);
  }

  const std::uint32_t losses = rs.replicas_lost();
  ASSERT_GT(losses, 0u);

  double now = 0.0;
  std::vector<std::pair<double, std::function<void()>>> queue;
  unsigned peak_inflight = 0, inflight = 0;
  bool stopped = false;
  replica::RepairActor::Env env;
  env.now = [&] { return now; };
  env.schedule = [&](double delay, std::function<void()> fn) {
    queue.emplace_back(now + delay, std::move(fn));
  };
  env.stopped = [&] { return stopped; };
  env.transfer = [&](const ReplicaSet::RepairTask&, std::function<void(bool)> done) {
    ++inflight;
    peak_inflight = std::max(peak_inflight, inflight);
    queue.emplace_back(now + 0.3, [&inflight, done = std::move(done)] {
      --inflight;
      done(true);
    });
  };
  replica::RepairActor actor(rs, std::move(env));
  actor.start();
  // Hand-cranked DES: pop the earliest event until the queue drains. The
  // tick loop only terminates via stopped(), exactly like a real run — flip
  // it once every lost copy has been re-created.
  while (!queue.empty()) {
    const auto it = std::min_element(
        queue.begin(), queue.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    now = it->first;
    auto fn = std::move(it->second);
    queue.erase(it);
    fn();
    if (rs.replicas_repaired() == losses) stopped = true;
    ASSERT_LT(now, 1000.0) << "repair did not converge";
  }
  EXPECT_EQ(rs.replicas_repaired(), losses);
  EXPECT_LE(peak_inflight, 2u);
  EXPECT_EQ(actor.transfers_started(), rs.replicas_repaired());
  for (const auto& chunk : layout.chunks()) {
    unsigned live = 0;
    for (StoreId s = 0; s < p.store_count(); ++s) live += rs.is_live(chunk.id, s);
    EXPECT_EQ(live, 2u) << "chunk " << chunk.id;
  }
}

// --- middleware integration --------------------------------------------------

TEST(ReplicaIntegration, CheapestReplicaSelectionRequiresReplicationAttached) {
  Platform p(PlatformSpec::paper_testbed(4, 4));
  auto layout = apps::paper_layout(apps::PaperApp::Knn, 0.5, p.local_store_id(),
                                   p.cloud_store_id());
  middleware::RunOptions options = apps::paper_run_options(apps::PaperApp::Knn);
  options.policy.remote_selection = middleware::RemoteSelection::CheapestReplica;
  EXPECT_THROW(middleware::validate_run(p, layout, options), std::invalid_argument);
}

/// p95 of remote-read durations from the trace: a read is remote when the
/// FetchStart store differs from the reading site's affinity store. Actors
/// map to sites by the paper-testbed node-name prefix ("local-*"/"cloud-*").
double remote_read_p95(const trace::Tracer& tracer, StoreId local_store,
                       StoreId cloud_store) {
  std::map<std::pair<std::string, std::uint64_t>, std::pair<double, bool>> open;
  std::vector<double> remote;
  for (const auto& e : tracer.events()) {
    if (e.kind == trace::EventKind::FetchStart) {
      const StoreId affinity =
          e.actor.rfind("local", 0) == 0 ? local_store : cloud_store;
      open[{e.actor, e.a}] = {e.t, e.b != affinity};
    } else if (e.kind == trace::EventKind::FetchEnd) {
      const auto it = open.find({e.actor, e.a});
      if (it == open.end()) continue;
      if (it->second.second) remote.push_back(e.t - it->second.first);
      open.erase(it);
    }
  }
  if (remote.empty()) return 0.0;
  std::sort(remote.begin(), remote.end());
  const std::size_t idx =
      std::min(remote.size() - 1,
               static_cast<std::size_t>(0.95 * static_cast<double>(remote.size())));
  return remote[idx];
}

/// The ablation_faults store-fault scenario on the WAN-heavy environment:
/// knn on env-17/83 (the local side exhausts its 17% share and steals cloud
/// chunks across the WAN) with the cloud store failing 5% of GETs (plus
/// hangs) under the standard retry policy. env-50/50 would be useless here:
/// each side owns exactly its share, nothing ever crosses the WAN.
middleware::RunResult run_faulty_knn(trace::Tracer& tracer, ReplicaSet* replication) {
  return apps::run_env(
      apps::Env::Hybrid1783, apps::PaperApp::Knn,
      [&tracer, replication](cluster::PlatformSpec& spec,
                             middleware::RunOptions& options) {
        auto& fault = spec.sites[kCloudSite].store->fault;
        fault.fail_probability = 0.05;
        fault.hang_probability = 0.0125;
        fault.hang_seconds = 120.0;
        options.retry.max_attempts = 3;
        options.retry.backoff_base_seconds = 0.05;
        options.retry.attempt_timeout_seconds = 30.0;
        options.tracer = &tracer;
        options.replication = replication;
      });
}

// The headline acceptance criterion: under cloud store faults, k = 2
// cross-site replication strictly improves the remote-read p95 over k = 1
// (which has no alternative copy to fail over to).
TEST(ReplicaAcceptance, K2CrossSiteBeatsK1OnRemoteReadP95UnderStoreFaults) {
  ReplicationConfig k1;
  k1.replication_factor = 1;
  ReplicaSet rs1{k1};
  trace::Tracer t1;
  const auto r1 = run_faulty_knn(t1, &rs1);

  ReplicationConfig k2;
  k2.replication_factor = 2;
  k2.placement = PlacementPolicy::CrossSite;
  ReplicaSet rs2{k2};
  trace::Tracer t2;
  const auto r2 = run_faulty_knn(t2, &rs2);

  // Both complete all 96 jobs exactly once.
  EXPECT_EQ(r1.total_jobs(), 96u);
  EXPECT_EQ(r2.total_jobs(), 96u);

  // Paper testbed: local store is id 0, cloud store id 1.
  const double p95_k1 = remote_read_p95(t1, 0, 1);
  const double p95_k2 = remote_read_p95(t2, 0, 1);
  EXPECT_GT(p95_k1, 0.0);  // k = 1 did remote reads against the faulty store
  EXPECT_LT(p95_k2, p95_k1);

  // k = 1 placed no extra copies; k = 2 placed one per chunk and bills them.
  EXPECT_EQ(r1.replica.replicas_created, 0u);
  EXPECT_EQ(r2.replica.replicas_created, 96u);
  std::uint64_t extra = 0;
  for (const auto b : r2.replica.extra_replica_bytes) extra += b;
  EXPECT_GT(extra, 0u);
}

TEST(ReplicaAcceptance, FailoverMarksLossesAndRepairActorRestoresCopies) {
  ReplicationConfig cfg;
  cfg.replication_factor = 2;
  cfg.placement = PlacementPolicy::CrossSite;
  cfg.repair_interval_seconds = 0.5;
  cfg.suspect_seconds = 5.0;
  ReplicaSet rs{cfg};
  trace::Tracer tracer;
  // No client-side retry: the first failed GET writes the copy off, so the
  // failover + repair machinery (not the retry loop) carries the run. The
  // fail rate stays below the point where the route oracle would abandon the
  // store pre-emptively — readers keep using it and keep tripping faults.
  const auto result = apps::run_env(
      apps::Env::Hybrid5050, apps::PaperApp::Knn,
      [&](cluster::PlatformSpec& spec, middleware::RunOptions& options) {
        spec.sites[kCloudSite].store->fault.fail_probability = 0.08;
        options.tracer = &tracer;
        options.replication = &rs;
      });
  EXPECT_EQ(result.total_jobs(), 96u);

  // The faulty store lost copies; the repair actor re-replicated them and
  // billed the transfer bytes. Trace counters match the result counters.
  EXPECT_GT(result.replica.replicas_lost, 0u);
  EXPECT_GT(result.replica.replicas_repaired, 0u);
  EXPECT_GT(result.replica.repair_bytes, 0u);
  EXPECT_EQ(tracer.count(trace::EventKind::ReplicaCreated),
            result.replica.replicas_created);
  EXPECT_EQ(tracer.count(trace::EventKind::ReplicaLost),
            result.replica.replicas_lost);
  EXPECT_EQ(tracer.count(trace::EventKind::ReplicaRepaired),
            result.replica.replicas_repaired);
  // Replica marks render in the gantt ('+' created / '~' lost / 'r' repaired).
  const std::string gantt = tracer.render_gantt(80);
  EXPECT_NE(gantt.find('r'), std::string::npos);
}

// Everything at once: site caches with prefetch, cloud store faults, a node
// lifecycle drain, k = 2 replication with the replica-aware scheduler — the
// run still processes every chunk exactly once.
TEST(ReplicaAcceptance, ComposesWithCacheFaultsAndLifecycleInOneRun) {
  cache::CacheConfig ccfg;
  ccfg.capacity_bytes = GiB(4);
  ccfg.prefetch.enabled = true;
  ccfg.prefetch.depth = 4;
  cache::CacheFleet fleet(ccfg);

  ReplicationConfig rcfg;
  rcfg.replication_factor = 2;
  rcfg.placement = PlacementPolicy::CrossSite;
  ReplicaSet rs{rcfg};

  trace::Tracer tracer;
  const auto result = apps::run_env(
      apps::Env::Hybrid5050, apps::PaperApp::Knn,
      [&](cluster::PlatformSpec& spec, middleware::RunOptions& options) {
        spec.sites[kCloudSite].store->fault.fail_probability = 0.05;
        options.retry.max_attempts = 3;
        options.retry.backoff_base_seconds = 0.05;
        options.cache = &fleet;
        options.replication = &rs;
        options.policy.remote_selection = middleware::RemoteSelection::CheapestReplica;
        options.reduction_tree = false;  // lifecycle needs tracked work
        options.lifecycle.push_back(
            {middleware::RunOptions::LifecycleEvent::Kind::Drain, kCloudSite, 1, 2.0});
        options.tracer = &tracer;
      });

  // Exactly-once effective processing across all axes.
  std::map<std::uint64_t, unsigned> processed;
  for (const auto& e : tracer.events()) {
    if (e.kind == trace::EventKind::ProcessEnd) ++processed[e.a];
  }
  EXPECT_EQ(processed.size(), 96u);
  for (const auto& [chunk, count] : processed) {
    EXPECT_EQ(count, 1u) << "chunk " << chunk << " processed more than once";
  }
  EXPECT_EQ(result.lifecycle.drains_requested, 1u);
  EXPECT_EQ(result.replica.replicas_created, 96u);
}

// --- cost attribution --------------------------------------------------------

TEST(ReplicaCost, TwoTenantBillsSumExactlyAndCarryReplicaStorage) {
  const auto run_workload = [](ReplicaSet* rs) {
    Platform platform(PlatformSpec::paper_testbed(4, 4));
    storage::LayoutSpec lspec;
    lspec.total_bytes = MiB(256);
    lspec.num_files = 8;
    lspec.chunks_per_file = 2;
    lspec.unit_bytes = 64;
    storage::DataLayout layout = storage::build_layout(lspec);
    storage::assign_stores_by_fraction(layout, 0.5, platform.local_store_id(),
                                       platform.cloud_store_id());
    middleware::RunOptions options;
    options.profile.name = "wl";
    options.profile.unit_bytes = 64;
    options.profile.bytes_per_second_per_core = MBps(4);
    options.profile.robj_bytes = KiB(64);
    options.replication = rs;

    workload::WorkloadOptions opts;
    opts.policy = workload::SchedulingPolicy::FairShare;
    workload::WorkloadManager manager(platform, opts);
    for (int i = 0; i < 2; ++i) {
      workload::JobSpec spec;
      spec.name = i == 0 ? "a" : "b";
      spec.tenant = i == 0 ? "alice" : "bob";
      spec.layout = layout;
      spec.options = options;
      manager.submit(std::move(spec), 0.0);
    }
    return manager.run();
  };

  ReplicationConfig cfg;
  cfg.replication_factor = 2;
  cfg.placement = PlacementPolicy::CrossSite;
  ReplicaSet rs{cfg};
  const auto with = run_workload(&rs);
  const auto without = run_workload(nullptr);

  // Per-tenant attribution still partitions the platform bill exactly,
  // component by component, with replica storage and repair egress included.
  double inst = 0, req = 0, xfer = 0, stor = 0;
  for (const auto& job : with.jobs) {
    inst += job.attributed_cost.instance_usd;
    req += job.attributed_cost.requests_usd;
    xfer += job.attributed_cost.transfer_usd;
    stor += job.attributed_cost.storage_usd;
  }
  EXPECT_DOUBLE_EQ(inst, with.platform_cost.instance_usd);
  EXPECT_DOUBLE_EQ(req, with.platform_cost.requests_usd);
  EXPECT_DOUBLE_EQ(xfer, with.platform_cost.transfer_usd);
  EXPECT_DOUBLE_EQ(stor, with.platform_cost.storage_usd);
  double tenant_total = 0;
  for (const auto& t : with.tenants) tenant_total += t.attributed_cost.total_usd();
  EXPECT_NEAR(tenant_total, with.platform_cost.total_usd(), 1e-9);

  // The replicated workload's storage bill strictly exceeds the unreplicated
  // one: the cloud store now also holds copies of the local chunks.
  EXPECT_GT(with.platform_cost.storage_usd, without.platform_cost.storage_usd);
  std::uint32_t created = 0;
  for (const auto& job : with.jobs) created += job.run.replica.replicas_created;
  EXPECT_GT(created, 0u);
}

}  // namespace
}  // namespace cloudburst
