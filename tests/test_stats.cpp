// Tests for common/stats: Welford accumulator (including merge), histogram
// binning/quantiles, exact quantiles.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"

namespace cloudburst {
namespace {

TEST(StatAccumulator, EmptyIsZero) {
  StatAccumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.variance(), 0.0);
  EXPECT_EQ(acc.min(), 0.0);
  EXPECT_EQ(acc.max(), 0.0);
}

TEST(StatAccumulator, SingleValue) {
  StatAccumulator acc;
  acc.add(3.5);
  EXPECT_EQ(acc.count(), 1u);
  EXPECT_EQ(acc.mean(), 3.5);
  EXPECT_EQ(acc.variance(), 0.0);
  EXPECT_EQ(acc.min(), 3.5);
  EXPECT_EQ(acc.max(), 3.5);
}

TEST(StatAccumulator, KnownSequence) {
  StatAccumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(acc.min(), 2.0);
  EXPECT_EQ(acc.max(), 9.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(StatAccumulator, MergeMatchesSequential) {
  Rng rng(17);
  StatAccumulator whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(10, 3);
    whole.add(x);
    (i % 2 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_EQ(left.min(), whole.min());
  EXPECT_EQ(left.max(), whole.max());
}

TEST(StatAccumulator, MergeWithEmptyIsIdentity) {
  StatAccumulator a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.mean(), mean);

  StatAccumulator b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_EQ(b.mean(), mean);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);    // bin 0
  h.add(9.5);    // bin 9
  h.add(-5.0);   // clamps to bin 0
  h.add(100.0);  // clamps to bin 9
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
  for (std::size_t b = 1; b < 9; ++b) EXPECT_EQ(h.bin_count(b), 0u);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(Histogram, QuantileOnUniformData) {
  Histogram h(0.0, 1.0, 100);
  Rng rng(4);
  for (int i = 0; i < 100000; ++i) h.add(rng.next_double());
  EXPECT_NEAR(h.quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(h.quantile(0.9), 0.9, 0.02);
  EXPECT_NEAR(h.quantile(0.1), 0.1, 0.02);
}

TEST(Histogram, RenderContainsCounts) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  const std::string out = h.render();
  EXPECT_NE(out.find('1'), std::string::npos);
  EXPECT_NE(out.find('2'), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos);
}

TEST(ExactQuantile, HandlesEdgeCases) {
  EXPECT_EQ(exact_quantile({}, 0.5), 0.0);
  EXPECT_EQ(exact_quantile({7.0}, 0.0), 7.0);
  EXPECT_EQ(exact_quantile({7.0}, 1.0), 7.0);
}

TEST(ExactQuantile, InterpolatesLinearly) {
  std::vector<double> v = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(exact_quantile(v, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(exact_quantile(v, 0.25), 2.5);
}

TEST(ExactQuantile, UnsortedInputIsFine) {
  std::vector<double> v = {9.0, 1.0, 5.0, 3.0, 7.0};
  EXPECT_DOUBLE_EQ(exact_quantile(v, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(exact_quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(exact_quantile(v, 1.0), 9.0);
}

}  // namespace
}  // namespace cloudburst
