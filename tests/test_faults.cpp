// Fault-model tests: ObjectStore fault injection (failures, throttling
// windows, hung GETs), the fetch_with_retry resilience loop (backoff,
// timeout, hedging), the byte-identity pin of fault-free paper runs, the
// end-to-end acceptance run (faulty store + retry policy), prefetcher
// regression tests for the cache-failure interplay bugs, and the
// combined-axes (cache + crash + throttle + retry) conservation tests.
#include <gtest/gtest.h>

#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "apps/datagen.hpp"
#include "apps/experiments.hpp"
#include "apps/wordcount.hpp"
#include "cache/chunk_cache.hpp"
#include "cache/prefetcher.hpp"
#include "common/units.hpp"
#include "middleware/runtime.hpp"
#include "storage/local_store.hpp"
#include "storage/object_store.hpp"
#include "storage/retry.hpp"
#include "trace/trace.hpp"

namespace cloudburst {
namespace {

using namespace cloudburst::units;
using cluster::kCloudSite;
using cluster::kLocalSite;
using des::from_seconds;
using des::Simulator;
using storage::ChunkInfo;
using storage::FetchResult;
using storage::ObjectStore;

/// A site with one reader endpoint and one store endpoint behind a fat link.
struct FaultStoreRig {
  Simulator sim;
  net::Network net{sim};
  net::EndpointId reader, store_ep;

  explicit FaultStoreRig(double front_bw) {
    const auto site = net.add_site("site");
    const auto front = net.add_link("front", front_bw, 0);
    store_ep = net.add_endpoint("store", site);
    net.set_access_path(store_ep, {front});
    reader = net.add_endpoint("reader", site);
  }
};

ChunkInfo make_chunk(storage::ChunkId id, std::uint64_t bytes) {
  ChunkInfo c;
  c.id = id;
  c.file = 0;
  c.index_in_file = static_cast<std::uint32_t>(id);
  c.bytes = bytes;
  c.units = bytes;
  return c;
}

// --- ObjectStore fault injection --------------------------------------------

TEST(ObjectStoreFaults, DisabledProfileNeverFails) {
  FaultStoreRig rig(1e9);
  ObjectStore store(1, rig.sim, rig.net, rig.store_ep, ObjectStore::Params{0, 0, {}});
  unsigned ok = 0;
  for (storage::ChunkId id = 0; id < 20; ++id) {
    store.fetch(rig.reader, make_chunk(id, 1000), 2, [&](const FetchResult& r) {
      ok += r.ok && r.bytes_moved == 1000;
    });
  }
  rig.sim.run();
  EXPECT_EQ(ok, 20u);
  EXPECT_EQ(store.stats().faults, 0u);
  EXPECT_EQ(store.stats().hung, 0u);
  EXPECT_EQ(store.stats().throttled, 0u);
}

TEST(ObjectStoreFaults, FailProbabilityInjectsPartialAborts) {
  storage::FaultProfile fault;
  fault.fail_probability = 0.5;

  const auto run_sequence = [&fault] {
    FaultStoreRig rig(1e9);
    ObjectStore store(1, rig.sim, rig.net, rig.store_ep,
                      ObjectStore::Params{0, 0, fault});
    std::vector<FetchResult> results;
    for (storage::ChunkId id = 0; id < 200; ++id) {
      store.fetch(rig.reader, make_chunk(id, 1'000'000), 4,
                  [&](const FetchResult& r) { results.push_back(r); });
      rig.sim.run();
    }
    return std::make_pair(results, store.stats());
  };

  const auto [results, stats] = run_sequence();
  unsigned failures = 0;
  for (const auto& r : results) {
    if (r.ok) {
      EXPECT_EQ(r.bytes_moved, 1'000'000u);
    } else {
      ++failures;
      // A failed GET aborts after a strict partial transfer.
      EXPECT_LT(r.bytes_moved, 1'000'000u);
    }
  }
  EXPECT_GT(failures, 50u);        // p = 0.5 over 200 draws
  EXPECT_LT(failures, 150u);
  EXPECT_EQ(failures, stats.faults);

  // Deterministic: the same profile replays the same fault sequence.
  const auto [replay, replay_stats] = run_sequence();
  ASSERT_EQ(replay.size(), results.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(replay[i].ok, results[i].ok);
    EXPECT_EQ(replay[i].bytes_moved, results[i].bytes_moved);
  }
  EXPECT_EQ(replay_stats.faults, stats.faults);
}

TEST(ObjectStoreFaults, ThrottleWindowDegradesBandwidth) {
  storage::FaultProfile fault;
  fault.throttles.push_back({/*begin=*/0.0, /*end=*/10.0,
                             /*bandwidth_factor=*/0.25, /*fail=*/0.0});
  FaultStoreRig rig(1e9);
  ObjectStore store(1, rig.sim, rig.net, rig.store_ep,
                    ObjectStore::Params{0, /*per_connection=*/1e6, fault});

  double in_window = -1, after_window = -1;
  store.fetch(rig.reader, make_chunk(0, 1'000'000), 1, [&](const FetchResult& r) {
    EXPECT_TRUE(r.ok);
    in_window = des::to_seconds(rig.sim.now());
  });
  rig.sim.run();
  EXPECT_NEAR(in_window, 4.0, 1e-6);  // 1 MB at 0.25 MB/s
  EXPECT_EQ(store.stats().throttled, 1u);

  rig.sim.schedule(from_seconds(20.0 - in_window), [&] {
    store.fetch(rig.reader, make_chunk(1, 1'000'000), 1, [&](const FetchResult&) {
      after_window = des::to_seconds(rig.sim.now());
    });
  });
  rig.sim.run();
  EXPECT_NEAR(after_window - 20.0, 1.0, 1e-6);  // full 1 MB/s again
  EXPECT_EQ(store.stats().throttled, 1u);       // second GET was outside
}

// The window is half-open [begin, end): a GET issued exactly at the begin
// tick is throttled, one issued exactly at the end tick runs at full speed.
// Schedulers and replica route oracles align decisions to these edges, so the
// convention is pinned here (and documented on FaultProfile::Throttle).
TEST(ObjectStoreFaults, ThrottleWindowBoundaryIsHalfOpen) {
  storage::FaultProfile fault;
  fault.throttles.push_back({/*begin=*/5.0, /*end=*/10.0,
                             /*bandwidth_factor=*/0.25, /*fail=*/0.0});
  FaultStoreRig rig(1e9);
  ObjectStore store(1, rig.sim, rig.net, rig.store_ep,
                    ObjectStore::Params{0, /*per_connection=*/1e6, fault});

  double at_begin = -1;
  rig.sim.schedule(from_seconds(5.0), [&] {
    store.fetch(rig.reader, make_chunk(0, 1'000'000), 1, [&](const FetchResult& r) {
      EXPECT_TRUE(r.ok);
      at_begin = des::to_seconds(rig.sim.now());
    });
  });
  rig.sim.run();
  EXPECT_NEAR(at_begin - 5.0, 4.0, 1e-6);  // t == begin: inside, 0.25 MB/s
  EXPECT_EQ(store.stats().throttled, 1u);

  double at_end = -1;
  rig.sim.schedule(from_seconds(10.0 - des::to_seconds(rig.sim.now())), [&] {
    store.fetch(rig.reader, make_chunk(1, 1'000'000), 1, [&](const FetchResult& r) {
      EXPECT_TRUE(r.ok);
      at_end = des::to_seconds(rig.sim.now());
    });
  });
  rig.sim.run();
  EXPECT_NEAR(at_end - 10.0, 1.0, 1e-6);  // t == end: outside, full 1 MB/s
  EXPECT_EQ(store.stats().throttled, 1u);  // the end-tick GET was not counted
}

TEST(ObjectStoreFaults, HungGetBalloonsLatency) {
  storage::FaultProfile fault;
  fault.hang_probability = 1.0;
  fault.hang_seconds = 30.0;
  FaultStoreRig rig(1e9);
  ObjectStore store(1, rig.sim, rig.net, rig.store_ep,
                    ObjectStore::Params{from_seconds(0.1), 0, fault});
  double done = -1;
  store.fetch(rig.reader, make_chunk(0, 1000), 1,
              [&](const FetchResult& r) {
                EXPECT_TRUE(r.ok);
                done = des::to_seconds(rig.sim.now());
              });
  rig.sim.run();
  EXPECT_GE(done, 30.0);
  EXPECT_EQ(store.stats().hung, 1u);
}

// --- fetch_with_retry --------------------------------------------------------

struct HookCounts {
  unsigned faults = 0, backoffs = 0, hedges = 0, hedge_wins = 0;
  std::uint64_t wasted = 0;
  std::vector<double> delays;

  storage::RetryHooks hooks() {
    storage::RetryHooks h;
    h.on_fault = [this](unsigned, const FetchResult&) { ++faults; };
    h.on_backoff = [this](unsigned, double d) {
      ++backoffs;
      delays.push_back(d);
    };
    h.on_hedge = [this](unsigned) { ++hedges; };
    h.on_hedge_win = [this](unsigned) { ++hedge_wins; };
    h.on_wasted = [this](std::uint64_t b) { wasted += b; };
    return h;
  }
};

TEST(FetchWithRetry, RetriesUntilSuccess) {
  storage::FaultProfile fault;
  fault.fail_probability = 0.5;
  FaultStoreRig rig(1e9);
  ObjectStore store(1, rig.sim, rig.net, rig.store_ep,
                    ObjectStore::Params{0, 0, fault});
  storage::RetryPolicy policy;
  policy.max_attempts = 10;
  policy.backoff_base_seconds = 0.01;

  HookCounts counts;
  unsigned ok = 0, calls = 0;
  for (storage::ChunkId id = 0; id < 20; ++id) {
    storage::fetch_with_retry(rig.sim, store, rig.reader, make_chunk(id, 100'000), 2,
                              policy, counts.hooks(), [&](const FetchResult& r) {
                                ++calls;
                                ok += r.ok;
                              });
    rig.sim.run();
  }
  EXPECT_EQ(calls, 20u);  // done fires exactly once per fetch
  EXPECT_EQ(ok, 20u);     // p = 0.5^10 of exhausting: effectively never
  EXPECT_GT(counts.faults, 0u);
  EXPECT_EQ(counts.backoffs, counts.faults);  // every failure retried
  EXPECT_EQ(counts.faults, store.stats().faults);
  EXPECT_GT(counts.wasted, 0u);  // failed partials billed
}

TEST(FetchWithRetry, ExhaustionReportsFailureWithExponentialBackoff) {
  storage::FaultProfile fault;
  fault.fail_probability = 1.0;  // every GET fails
  FaultStoreRig rig(1e9);
  ObjectStore store(1, rig.sim, rig.net, rig.store_ep,
                    ObjectStore::Params{0, 0, fault});
  storage::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.backoff_base_seconds = 0.5;
  policy.backoff_multiplier = 2.0;
  policy.jitter_fraction = 0.0;

  HookCounts counts;
  bool done_ok = true;
  unsigned calls = 0;
  storage::fetch_with_retry(rig.sim, store, rig.reader, make_chunk(0, 1000), 1, policy,
                            counts.hooks(), [&](const FetchResult& r) {
                              ++calls;
                              done_ok = r.ok;
                            });
  rig.sim.run();
  EXPECT_EQ(calls, 1u);
  EXPECT_FALSE(done_ok);
  EXPECT_EQ(counts.faults, 3u);
  ASSERT_EQ(counts.delays.size(), 2u);
  EXPECT_DOUBLE_EQ(counts.delays[0], 0.5);  // before attempt 2
  EXPECT_DOUBLE_EQ(counts.delays[1], 1.0);  // before attempt 3: base * 2
}

TEST(FetchWithRetry, TimeoutAbandonsHungGets) {
  storage::FaultProfile fault;
  fault.hang_probability = 1.0;
  fault.hang_seconds = 1000.0;
  FaultStoreRig rig(1e9);
  ObjectStore store(1, rig.sim, rig.net, rig.store_ep,
                    ObjectStore::Params{0, 0, fault});
  storage::RetryPolicy policy;
  policy.max_attempts = 2;
  policy.backoff_base_seconds = 0.5;
  policy.jitter_fraction = 0.0;
  policy.attempt_timeout_seconds = 1.0;

  HookCounts counts;
  double done_at = -1;
  bool done_ok = true;
  storage::fetch_with_retry(rig.sim, store, rig.reader, make_chunk(0, 4000), 1, policy,
                            counts.hooks(), [&](const FetchResult& r) {
                              done_ok = r.ok;
                              done_at = des::to_seconds(rig.sim.now());
                            });
  rig.sim.run();
  // Both attempts hang and are timed out: t = 1.0 + 0.5 backoff + 1.0.
  EXPECT_FALSE(done_ok);
  EXPECT_NEAR(done_at, 2.5, 1e-9);
  EXPECT_EQ(counts.faults, 2u);
  // The abandoned GETs still drain; their bytes report as wasted.
  EXPECT_EQ(counts.wasted, 8000u);
}

TEST(FetchWithRetry, HedgingRescuesTailLatency) {
  storage::FaultProfile fault;
  fault.hang_probability = 0.4;
  fault.hang_seconds = 100.0;
  FaultStoreRig rig(1e9);
  ObjectStore store(1, rig.sim, rig.net, rig.store_ep,
                    ObjectStore::Params{0, 0, fault});
  storage::RetryPolicy policy;
  policy.hedge_delay_seconds = 0.5;

  HookCounts counts;
  unsigned ok = 0;
  for (storage::ChunkId id = 0; id < 30; ++id) {
    storage::fetch_with_retry(rig.sim, store, rig.reader, make_chunk(id, 1000), 1,
                              policy, counts.hooks(),
                              [&](const FetchResult& r) { ok += r.ok; });
    rig.sim.run();
  }
  EXPECT_EQ(ok, 30u);
  EXPECT_GT(counts.hedges, 0u);      // hung primaries triggered hedges
  EXPECT_GT(counts.hedge_wins, 0u);  // and some hedges delivered first
  EXPECT_GT(counts.wasted, 0u);      // the losing legs' bytes
}

// --- byte-identity pin -------------------------------------------------------

// Golden numbers captured from the previous commit (fault-free model): the
// default FaultProfile + default RetryPolicy must not move a single event.
TEST(PaperFidelity, DefaultFaultModelKeepsPaperRunsByteIdentical) {
  struct Golden {
    apps::PaperApp app;
    double total, side0_retrieval, side1_retrieval;
  };
  const Golden golden[] = {
      {apps::PaperApp::Knn, 15.336687508000001, 8.2415436799999995,
       5.4063647999999986},
      {apps::PaperApp::Kmeans, 393.42430110600003, 7.7141972000000134,
       4.4149525934545437},
      {apps::PaperApp::PageRank, 21.640284884, 8.2415436799999977,
       5.4063647999999986},
  };
  for (const auto& g : golden) {
    const auto result = apps::run_env(
        apps::Env::Hybrid5050, g.app,
        [](cluster::PlatformSpec&, middleware::RunOptions& options) {
          options.retry = storage::RetryPolicy{};  // explicit default: disengaged
        });
    EXPECT_DOUBLE_EQ(result.total_time, g.total) << apps::to_string(g.app);
    EXPECT_DOUBLE_EQ(result.side(kLocalSite).retrieval, g.side0_retrieval)
        << apps::to_string(g.app);
    EXPECT_DOUBLE_EQ(result.side(kCloudSite).retrieval, g.side1_retrieval)
        << apps::to_string(g.app);
    EXPECT_EQ(result.store_faults(), 0u);
    EXPECT_EQ(result.fetch_retries(), 0u);
    EXPECT_EQ(result.bytes_retried_total(), 0u);
    // The node-lifecycle subsystem must stay inert by default: no drains, no
    // reclaims, no early billing ends, not a single event moved.
    EXPECT_EQ(result.lifecycle.drains_requested, 0u);
    EXPECT_EQ(result.lifecycle.nodes_vacated, 0u);
    EXPECT_EQ(result.lifecycle.nodes_reclaimed, 0u);
    EXPECT_EQ(result.lifecycle.nodes_crashed, 0u);
    EXPECT_EQ(result.lifecycle.replacements_leased, 0u);
    EXPECT_TRUE(result.cloud_instance_ends.empty());
    // Replication defaults off (RunOptions::replication == nullptr): no
    // copies created, lost, or repaired, and no replica storage billed.
    EXPECT_EQ(result.replica.replicas_created, 0u);
    EXPECT_EQ(result.replica.replicas_lost, 0u);
    EXPECT_EQ(result.replica.replicas_repaired, 0u);
    EXPECT_EQ(result.replica.repair_bytes, 0u);
    EXPECT_TRUE(result.replica.extra_replica_bytes.empty());
  }
}

// --- end-to-end acceptance ---------------------------------------------------

TEST(FaultAcceptance, FaultyKnnWithRetryCompletesExactlyOnce) {
  trace::Tracer tracer;
  const auto result = apps::run_env(
      apps::Env::Hybrid5050, apps::PaperApp::Knn,
      [&tracer](cluster::PlatformSpec& spec, middleware::RunOptions& options) {
        spec.sites[kCloudSite].store->fault.fail_probability = 0.05;
        options.retry.max_attempts = 3;
        options.retry.backoff_base_seconds = 0.05;
        options.tracer = &tracer;
      });

  // The run completes with every chunk processed exactly once.
  EXPECT_EQ(result.total_jobs(), 96u);
  std::map<std::uint64_t, unsigned> processed;
  unsigned trace_faults = 0, trace_backoffs = 0;
  for (const auto& e : tracer.events()) {
    if (e.kind == trace::EventKind::ProcessEnd) ++processed[e.a];
    if (e.kind == trace::EventKind::StoreFault) ++trace_faults;
    if (e.kind == trace::EventKind::RetryBackoff) ++trace_backoffs;
  }
  EXPECT_EQ(processed.size(), 96u);
  for (const auto& [chunk, count] : processed) {
    EXPECT_EQ(count, 1u) << "chunk " << chunk << " processed more than once";
  }

  // Nonzero fault/retry counters, consistent between RunResult and trace.
  EXPECT_GT(result.store_faults(), 0u);
  EXPECT_GT(result.fetch_retries(), 0u);
  EXPECT_EQ(result.store_faults(), trace_faults);
  EXPECT_EQ(result.fetch_retries(), trace_backoffs);
  EXPECT_GT(result.bytes_retried_total(), 0u);  // partial GETs billed
}

// --- prefetcher regressions (cache-failure interplay) ------------------------

/// Drives a Prefetcher with a hand-cranked fetch hook: every issued GET is
/// parked until the test completes it.
struct PrefetchRig {
  cache::CacheConfig cfg;
  cache::ChunkCache cache;
  std::vector<std::pair<storage::ChunkId, std::function<void(bool)>>> pending;
  unsigned aborts = 0;
  cache::Prefetcher pf;
  storage::DataLayout layout;

  PrefetchRig(unsigned depth = 2)
      : cfg(make_cfg(depth)), cache(cfg), pf(cache, cfg.prefetch, make_env()),
        layout(storage::build_layout_for_units(400, 1, 4, 1)) {}

  static cache::CacheConfig make_cfg(unsigned depth) {
    cache::CacheConfig c;
    c.capacity_bytes = 1 << 30;
    c.prefetch.enabled = true;
    c.prefetch.depth = depth;
    return c;
  }

  cache::Prefetcher::Env make_env() {
    cache::Prefetcher::Env env;
    env.fetch = [this](storage::StoreId, const ChunkInfo& wire,
                       std::function<void(bool)> done) {
      pending.emplace_back(wire.id, std::move(done));
    };
    env.on_abort = [this](storage::StoreId, const ChunkInfo&) { ++aborts; };
    return env;
  }

  void pool(std::initializer_list<storage::ChunkId> ids) {
    std::deque<storage::ChunkId> q(ids);
    pf.on_pool_update(q, layout);
  }

  /// Settle the oldest parked GET for `chunk`.
  void complete(storage::ChunkId chunk, bool ok) {
    for (auto it = pending.begin(); it != pending.end(); ++it) {
      if (it->first == chunk) {
        auto done = std::move(it->second);
        pending.erase(it);
        done(ok);
        return;
      }
    }
    FAIL() << "no pending GET for chunk " << chunk;
  }
};

// Satellite bug 1: a slave that joined an in-flight prefetch and then died
// must never receive the completion callback — on_slave_failed drops its
// waiters by owner token.
TEST(PrefetcherRegression, DropOwnerSilencesDeadSlaveWaiters) {
  PrefetchRig rig;
  rig.pool({0, 1, 2, 3});
  ASSERT_TRUE(rig.pf.in_flight(0));

  unsigned dead_fired = 0, live_fired = 0;
  rig.pf.wait_for(0, /*owner=*/111, [&](bool) { ++dead_fired; });
  rig.pf.wait_for(0, /*owner=*/222, [&](bool) { ++live_fired; });
  rig.pf.drop_owner(111);  // slave 111 crashed while joined

  rig.complete(0, true);
  EXPECT_EQ(dead_fired, 0u);  // the dead slave's callback never fires
  EXPECT_EQ(live_fired, 1u);
}

// Satellite bug 2: a chunk whose prefetch completed and was consumed stays in
// the issued-set; when crash recovery re-enqueues the chunk, release() must
// reopen it or the recovery copy can never be prefetched.
TEST(PrefetcherRegression, ReleaseReopensConsumedChunkForReprefetch) {
  PrefetchRig rig;
  rig.pool({0, 1});
  rig.complete(0, true);
  rig.pf.mark_consumed(0);
  ASSERT_TRUE(rig.cache.contains(0));
  EXPECT_EQ(rig.pf.issued_count(), 2u);

  // Crash recovery: the chunk's work was lost, the cached copy went with the
  // dead node's scratch state, and the chunk is back in the pool.
  rig.cache.erase(0);
  rig.pf.release(0);

  const auto issued_before = rig.pending.size();
  rig.pool({0});
  ASSERT_EQ(rig.pending.size(), issued_before + 1);  // re-prefetched
  EXPECT_TRUE(rig.pf.in_flight(0));
}

// An in-flight transfer keeps its dedup entry across release(): clearing it
// would let pump() launch a second GET for airborne bytes.
TEST(PrefetcherRegression, ReleaseWhileInFlightDoesNotDoubleGet) {
  PrefetchRig rig;
  rig.pool({0, 1});
  ASSERT_TRUE(rig.pf.in_flight(0));
  const auto issued_before = rig.pending.size();

  rig.pf.release(0);  // recovery re-enqueued it while the GET is still up
  rig.pool({0});
  EXPECT_EQ(rig.pending.size(), issued_before);  // no second GET

  unsigned fired = 0;
  rig.pf.wait_for(0, /*owner=*/7, [&](bool ok) { fired += ok; });
  rig.complete(0, true);
  EXPECT_EQ(fired, 1u);  // the re-assigned slave joined the airborne copy
}

// A permanently failed prefetch aborts: accounting reverted, waiters told
// ok = false (they fall back to their own fetch), chunk eligible again.
TEST(PrefetcherRegression, FailedPrefetchAbortsAndNotifiesWaiters) {
  PrefetchRig rig;
  rig.pool({0, 1});
  unsigned fallback = 0;
  rig.pf.wait_for(0, /*owner=*/7, [&](bool ok) { fallback += !ok; });

  rig.complete(0, false);
  EXPECT_EQ(fallback, 1u);        // waiter signalled to fetch on its own
  EXPECT_EQ(rig.aborts, 1u);      // issue-time accounting reverted
  EXPECT_FALSE(rig.cache.contains(0));
  EXPECT_FALSE(rig.pf.in_flight(0));

  const auto issued_before = rig.pending.size();
  rig.pool({0});
  EXPECT_EQ(rig.pending.size(), issued_before + 1);  // eligible again
}

// --- combined axes: cache x faults x throttling x crash ----------------------

/// Real-execution wordcount rig (mirrors test_fault_tolerance's FaultRig)
/// with a configurable platform spec so stores can carry fault profiles.
struct CombinedRig {
  engine::MemoryDataset data;
  apps::WordCountTask task;
  std::unordered_map<std::uint64_t, double> reference;

  CombinedRig() : data(make_data()) {
    for (std::size_t i = 0; i < data.units(); ++i) {
      apps::WordRecord w;
      std::memcpy(&w, data.unit(i), sizeof w);
      reference[w.word_id] += 1.0;
    }
  }

  static engine::MemoryDataset make_data() {
    apps::WordGenSpec spec;
    spec.count = 24000;
    spec.vocabulary = 97;
    spec.seed = 555;
    return apps::generate_words(spec);
  }

  middleware::RunOptions options() {
    middleware::RunOptions o;
    o.profile.name = "wordcount";
    o.profile.unit_bytes = data.unit_bytes();
    o.profile.bytes_per_second_per_core = MBps(0.05);
    o.profile.per_job_overhead_seconds = 0.5;
    o.profile.robj_bytes = 0;
    o.task = &task;
    o.dataset = &data;
    return o;
  }

  struct Outcome {
    middleware::RunResult result;
    std::vector<storage::StoreService::Stats> store_stats;
  };

  Outcome run(cluster::PlatformSpec spec, const middleware::RunOptions& o) {
    cluster::Platform platform(spec);
    // 48 chunks on 32 cores: the pool keeps a backlog, so the prefetcher has
    // real future work to overlap (24 chunks would all assign at t=0).
    storage::DataLayout layout =
        storage::build_layout_for_units(data.units(), data.unit_bytes(), 6, 8);
    storage::assign_stores_by_fraction(layout, 0.5, platform.local_store_id(),
                                       platform.cloud_store_id());
    Outcome out{middleware::run_distributed(platform, layout, o), {}};
    for (storage::StoreId s = 0; s < platform.store_count(); ++s) {
      out.store_stats.push_back(platform.store(s).stats());
    }
    return out;
  }

  void expect_correct(const middleware::RunResult& result) {
    ASSERT_NE(result.robj, nullptr);
    const auto& got = dynamic_cast<const api::HashCountRobj&>(*result.robj);
    ASSERT_EQ(got.distinct_keys(), reference.size());
    for (const auto& [k, v] : reference) {
      EXPECT_DOUBLE_EQ(got.get(k), v) << "word " << k;
    }
  }
};

// No crash: with faults, a throttling window, a prefetching cache, and a
// retry policy all active, every wire byte is accounted exactly once:
//   sum(store bytes_served) == sum(bytes_from_store - bytes_from_cache)
//                              + sum(bytes_retried).
TEST(CombinedAxes, FaultsThrottleCacheRetryConserveBytes) {
  CombinedRig rig;
  auto spec = cluster::PlatformSpec::paper_testbed(16, 16);
  auto& fault = spec.sites[kCloudSite].store->fault;
  fault.fail_probability = 0.08;
  fault.throttles.push_back({2.0, 8.0, 0.25, 0.1});

  cache::CacheConfig cfg;
  cfg.capacity_bytes = GiB(4);
  cfg.prefetch.enabled = true;
  cfg.prefetch.depth = 4;
  cache::CacheFleet fleet(cfg);

  auto o = rig.options();
  o.cache = &fleet;
  o.retry.max_attempts = 4;
  o.retry.backoff_base_seconds = 0.05;

  const auto out = rig.run(spec, o);
  rig.expect_correct(out.result);
  EXPECT_EQ(out.result.total_jobs(), 48u);  // no crash: no re-execution
  EXPECT_GT(out.result.cache_hits(), 0u);   // prefetcher actually engaged

  // The fault machinery actually fired.
  EXPECT_GT(out.result.store_faults(), 0u);
  EXPECT_GT(out.result.fetch_retries(), 0u);
  EXPECT_GT(out.result.bytes_retried_total(), 0u);

  std::uint64_t served = 0;
  for (const auto& s : out.store_stats) served += s.bytes_served;
  std::uint64_t charged = 0, credited = 0;
  for (const auto& per_store : out.result.bytes_from_store) {
    for (std::uint64_t b : per_store) charged += b;
  }
  for (const auto& per_store : out.result.bytes_from_cache) {
    for (std::uint64_t b : per_store) credited += b;
  }
  EXPECT_EQ(served, charged - credited + out.result.bytes_retried_total());
}

// All axes at once: a slave crash lands inside a store throttling window
// while a prefetching cache and a retry policy are active. The reduction
// must still be exactly correct (exactly-once effective processing).
TEST(CombinedAxes, CrashInsideThrottleWindowStillExactlyOnce) {
  CombinedRig rig;

  // Failure-free duration calibrates the crash time and throttle window.
  const auto clean = rig.run(cluster::PlatformSpec::paper_testbed(16, 16),
                             [&] {
                               auto o = rig.options();
                               o.reduction_tree = false;
                               return o;
                             }());
  const double T = clean.result.total_time;

  auto spec = cluster::PlatformSpec::paper_testbed(16, 16);
  auto& fault = spec.sites[kCloudSite].store->fault;
  fault.fail_probability = 0.05;
  // Window opens at t=0 (so the first wave of GETs is throttled) and is still
  // open when the crash at 0.5 T lands — crash and throttle overlap.
  fault.throttles.push_back({0.0, 0.7 * T, 0.25, 0.1});

  cache::CacheConfig cfg;
  cfg.capacity_bytes = GiB(4);
  cfg.prefetch.enabled = true;
  cfg.prefetch.depth = 4;
  cache::CacheFleet fleet(cfg);

  auto o = rig.options();
  o.reduction_tree = false;
  o.cache = &fleet;
  o.retry.max_attempts = 3;
  o.retry.backoff_base_seconds = 0.05;
  o.failures.push_back({kCloudSite, 1, 0.5 * T});  // dies mid-window
  o.failure_detection_seconds = 0.2;

  const auto out = rig.run(spec, o);
  rig.expect_correct(out.result);
  EXPECT_GE(out.result.total_jobs(), 48u);  // crash may force re-execution
  EXPECT_GT(out.store_stats[1].throttled, 0u);  // GETs landed in the window
}

}  // namespace
}  // namespace cloudburst
