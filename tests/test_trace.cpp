// Tests for the tracing subsystem: recording, JSONL output, Gantt rendering,
// and — through a traced run — auditing the middleware's event stream
// (paired start/end events, per-chunk exactly-once processing, protocol
// ordering).
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>

#include "apps/experiments.hpp"
#include "cache/chunk_cache.hpp"
#include "common/units.hpp"
#include "middleware/runtime.hpp"
#include "trace/trace.hpp"

namespace cloudburst::trace {
namespace {

using namespace cloudburst::units;

TEST(Tracer, RecordsAndCounts) {
  Tracer tracer;
  tracer.record(1.0, EventKind::FetchStart, "n0", 5, 1);
  tracer.record(2.0, EventKind::FetchEnd, "n0", 5);
  tracer.record(3.0, EventKind::RunEnd, "head");
  EXPECT_EQ(tracer.events().size(), 3u);
  EXPECT_EQ(tracer.count(EventKind::FetchStart), 1u);
  EXPECT_EQ(tracer.count(EventKind::ProcessStart), 0u);
  tracer.clear();
  EXPECT_TRUE(tracer.events().empty());
}

TEST(Tracer, JsonlShape) {
  Tracer tracer;
  tracer.record(1.25, EventKind::JobAssigned, "local-node0", 7, 0);
  const std::string out = tracer.to_jsonl();
  EXPECT_NE(out.find("\"t\":1.250000"), std::string::npos);
  EXPECT_NE(out.find("\"kind\":\"JobAssigned\""), std::string::npos);
  EXPECT_NE(out.find("\"actor\":\"local-node0\""), std::string::npos);
  EXPECT_NE(out.find("\"a\":7"), std::string::npos);
  // One line per event, newline-terminated.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 1);
}

TEST(Tracer, GanttMarksActivity) {
  Tracer tracer;
  tracer.record(0.0, EventKind::FetchStart, "n0", 1);
  tracer.record(5.0, EventKind::FetchEnd, "n0", 1);
  tracer.record(5.0, EventKind::ProcessStart, "n0", 1);
  tracer.record(10.0, EventKind::ProcessEnd, "n0", 1);
  const std::string gantt = tracer.render_gantt(10);
  EXPECT_NE(gantt.find("n0"), std::string::npos);
  EXPECT_NE(gantt.find('f'), std::string::npos);
  EXPECT_NE(gantt.find('P'), std::string::npos);
}

TEST(Tracer, GanttEmptyWhenNoEvents) {
  Tracer tracer;
  EXPECT_TRUE(tracer.render_gantt().empty());
}

TEST(Tracer, EventKindNamesAreDistinct) {
  std::set<std::string> names;
  for (int k = 0; k <= static_cast<int>(EventKind::RunEnd); ++k) {
    names.insert(to_string(static_cast<EventKind>(k)));
  }
  EXPECT_EQ(names.size(), static_cast<std::size_t>(EventKind::RunEnd) + 1);
}

// --- traced runs audit the middleware ---------------------------------------------

struct TracedRun {
  Tracer tracer;
  middleware::RunResult result;
};

TracedRun traced_env_run() {
  TracedRun out;
  out.result = apps::run_env(apps::Env::Hybrid3367, apps::PaperApp::Knn,
                             [&out](cluster::PlatformSpec&, middleware::RunOptions& o) {
                               o.tracer = &out.tracer;
                             });
  return out;
}

TEST(TracedRun, EveryChunkProcessedExactlyOnce) {
  const auto run = traced_env_run();
  std::map<std::uint64_t, int> processed;
  for (const auto& e : run.tracer.events()) {
    if (e.kind == EventKind::ProcessEnd) ++processed[e.a];
  }
  EXPECT_EQ(processed.size(), 96u);
  for (const auto& [chunk, n] : processed) EXPECT_EQ(n, 1) << "chunk " << chunk;
}

TEST(TracedRun, StartEndEventsPair) {
  const auto run = traced_env_run();
  EXPECT_EQ(run.tracer.count(EventKind::FetchStart),
            run.tracer.count(EventKind::FetchEnd));
  EXPECT_EQ(run.tracer.count(EventKind::ProcessStart),
            run.tracer.count(EventKind::ProcessEnd));
  EXPECT_EQ(run.tracer.count(EventKind::JobAssigned), 96u);
  EXPECT_EQ(run.tracer.count(EventKind::RunEnd), 1u);
}

TEST(TracedRun, PerChunkOrderingIsFetchThenProcess) {
  const auto run = traced_env_run();
  std::map<std::uint64_t, double> fetch_end, process_start;
  for (const auto& e : run.tracer.events()) {
    if (e.kind == EventKind::FetchEnd) fetch_end[e.a] = e.t;
    if (e.kind == EventKind::ProcessStart) process_start[e.a] = e.t;
  }
  for (const auto& [chunk, t] : process_start) {
    ASSERT_TRUE(fetch_end.count(chunk));
    EXPECT_LE(fetch_end[chunk], t + 1e-12) << "chunk " << chunk;
  }
}

TEST(TracedRun, TimesAreMonotoneAndBounded) {
  const auto run = traced_env_run();
  double prev = 0.0;
  for (const auto& e : run.tracer.events()) {
    EXPECT_GE(e.t, prev - 1e-12);
    prev = e.t;
  }
  EXPECT_NEAR(run.tracer.events().back().t, run.result.total_time, 1e-9);
}

TEST(TracedRun, BatchGrantsCoverAllChunks) {
  const auto run = traced_env_run();
  std::uint64_t granted = 0;
  for (const auto& e : run.tracer.events()) {
    if (e.kind == EventKind::BatchGranted) granted += e.a;
  }
  EXPECT_EQ(granted, 96u);
}

TEST(TracedRun, GanttRendersEveryNode) {
  const auto run = traced_env_run();
  const std::string gantt = run.tracer.render_gantt(60);
  for (const auto& n : run.result.nodes) {
    EXPECT_NE(gantt.find(n.name), std::string::npos) << n.name;
  }
}

// --- cache-enabled runs ------------------------------------------------------
//
// Same audit with a site cache + prefetcher attached. Note: no monotone-time
// assertion here on purpose — PrefetchWasted/CacheEvict bookkeeping events are
// emitted when the run drains, after RunEnd.

struct CacheTracedRun {
  Tracer cold;
  Tracer warm;
};

CacheTracedRun cache_traced_run() {
  CacheTracedRun out;
  cache::CacheConfig cfg;
  cfg.capacity_bytes = GiB(16);
  cfg.prefetch.enabled = true;
  cfg.prefetch.depth = 4;
  cache::CacheFleet fleet(cfg);
  for (Tracer* tracer : {&out.cold, &out.warm}) {
    apps::run_env(apps::Env::Cloud, apps::PaperApp::Knn,
                  [&](cluster::PlatformSpec&, middleware::RunOptions& o) {
                    o.tracer = tracer;
                    o.cache = &fleet;
                  });
  }
  return out;
}

TEST(CacheTracedRun, FetchEventsStillPair) {
  const auto run = cache_traced_run();
  for (const Tracer* t : {&run.cold, &run.warm}) {
    EXPECT_EQ(t->count(EventKind::FetchStart), t->count(EventKind::FetchEnd));
    EXPECT_EQ(t->count(EventKind::CacheHit) + t->count(EventKind::CacheMiss), 96u);
  }
  // Second pass on the same fleet: everything is resident.
  EXPECT_EQ(run.warm.count(EventKind::CacheHit), 96u);
  EXPECT_EQ(run.warm.count(EventKind::CacheMiss), 0u);
  EXPECT_GT(run.cold.count(EventKind::CacheMiss), 0u);
}

TEST(CacheTracedRun, EveryPrefetchResolvesToHitOrWasted) {
  const auto run = cache_traced_run();
  std::set<std::uint64_t> issued, resolved;
  for (const auto& e : run.cold.events()) {
    if (e.kind == EventKind::PrefetchIssued) {
      EXPECT_TRUE(issued.insert(e.a).second) << "chunk " << e.a << " issued twice";
    }
    if (e.kind == EventKind::CacheHit || e.kind == EventKind::PrefetchWasted) {
      resolved.insert(e.a);
    }
  }
  EXPECT_GT(issued.size(), 0u);
  for (std::uint64_t chunk : issued) {
    EXPECT_TRUE(resolved.count(chunk)) << "prefetched chunk " << chunk
                                       << " neither consumed nor marked wasted";
  }
}

TEST(CacheTracedRun, GanttDistinguishesCacheHitFetches) {
  const auto run = cache_traced_run();
  // Cold pass pulls from the store ('f' WAN fetch spans); the warm pass reads
  // everything from the site cache ('c' spans).
  EXPECT_NE(run.cold.render_gantt(60).find('f'), std::string::npos);
  EXPECT_NE(run.warm.render_gantt(60).find('c'), std::string::npos);
}

TEST(TracedRun, FailureAndActivationEventsAppear) {
  Tracer tracer;
  cluster::Platform platform(cluster::PlatformSpec::paper_testbed(16, 16));
  const auto layout = apps::paper_layout(apps::PaperApp::Knn, 0.5,
                                         platform.local_store_id(),
                                         platform.cloud_store_id());
  middleware::RunOptions options = apps::paper_run_options(apps::PaperApp::Knn);
  options.reduction_tree = false;
  options.tracer = &tracer;
  options.failures.push_back({cluster::kCloudSite, 0, 5.0});
  options.elastic.enabled = true;
  options.elastic.deadline_seconds = 1.0;  // unreachable: force activation
  options.elastic.initial_cloud_nodes = 4;
  options.elastic.check_interval_seconds = 1.0;
  options.elastic.boot_seconds = 2.0;
  middleware::run_distributed(platform, layout, options);
  EXPECT_EQ(tracer.count(EventKind::SlaveFailed), 1u);
  EXPECT_GT(tracer.count(EventKind::InstanceActivated), 0u);
}

}  // namespace
}  // namespace cloudburst::trace
