// Tests for on-disk dataset I/O: file format round trips, ranged (chunk)
// reads, the export/import of a full data-organizer directory, and the
// corruption/truncation error paths. Uses a per-test temp directory.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "apps/datagen.hpp"
#include "apps/kmeans.hpp"
#include "apps/wordcount.hpp"
#include "engine/gr_engine.hpp"
#include "io/dataset_io.hpp"
#include "io/file_engine.hpp"

namespace cloudburst::io {
namespace {

namespace fs = std::filesystem;

class DatasetIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("cloudburst_io_" + std::to_string(::testing::UnitTest::GetInstance()
                                                  ->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  engine::MemoryDataset make_words(std::size_t n = 6000) {
    apps::WordGenSpec spec;
    spec.count = n;
    spec.vocabulary = 50;
    spec.seed = 42;
    return apps::generate_words(spec);
  }

  fs::path dir_;
};

TEST_F(DatasetIoTest, FileRoundTrip) {
  const auto data = make_words();
  const fs::path path = dir_ / "words.dat";
  write_dataset_file(path, data.data(), data.units(), data.unit_bytes());
  const auto back = read_dataset_file(path);
  ASSERT_EQ(back.units(), data.units());
  ASSERT_EQ(back.unit_bytes(), data.unit_bytes());
  EXPECT_EQ(0, std::memcmp(back.data(), data.data(), data.size_bytes()));
}

TEST_F(DatasetIoTest, StatReadsHeaderOnly) {
  const auto data = make_words(123);
  const fs::path path = dir_ / "w.dat";
  write_dataset_file(path, data.data(), data.units(), data.unit_bytes());
  const auto info = stat_dataset_file(path);
  EXPECT_EQ(info.unit_count, 123u);
  EXPECT_EQ(info.unit_bytes, 8u);
}

TEST_F(DatasetIoTest, RangedReadMatchesSlice) {
  const auto data = make_words(1000);
  const fs::path path = dir_ / "w.dat";
  write_dataset_file(path, data.data(), data.units(), data.unit_bytes());
  const auto range = read_unit_range(path, 100, 50);
  ASSERT_EQ(range.size(), 50u * data.unit_bytes());
  EXPECT_EQ(0, std::memcmp(range.data(), data.unit(100), range.size()));
}

TEST_F(DatasetIoTest, RangedReadBeyondEndThrows) {
  const auto data = make_words(10);
  const fs::path path = dir_ / "w.dat";
  write_dataset_file(path, data.data(), data.units(), data.unit_bytes());
  EXPECT_THROW(read_unit_range(path, 5, 6), std::out_of_range);
}

TEST_F(DatasetIoTest, BadMagicRejected) {
  const fs::path path = dir_ / "junk.dat";
  std::ofstream(path, std::ios::binary) << "this is not a dataset file at all";
  EXPECT_THROW(read_dataset_file(path), std::runtime_error);
}

TEST_F(DatasetIoTest, TruncatedPayloadRejected) {
  const auto data = make_words(100);
  const fs::path path = dir_ / "w.dat";
  write_dataset_file(path, data.data(), data.units(), data.unit_bytes());
  fs::resize_file(path, fs::file_size(path) / 2);
  EXPECT_THROW(read_dataset_file(path), std::runtime_error);
}

TEST_F(DatasetIoTest, MissingFileRejected) {
  EXPECT_THROW(read_dataset_file(dir_ / "absent.dat"), std::runtime_error);
  EXPECT_THROW(read_index_file(dir_ / "absent.cbx"), std::runtime_error);
}

TEST_F(DatasetIoTest, ExportImportRoundTrip) {
  const auto data = make_words(6000);
  const auto layout =
      storage::build_layout_for_units(data.units(), data.unit_bytes(), 4, 3, "words");
  export_dataset(dir_, data, layout);

  // Files exist with the layout's names; index is alongside.
  for (const auto& f : layout.files()) EXPECT_TRUE(fs::exists(dir_ / f.name)) << f.name;
  EXPECT_TRUE(fs::exists(dir_ / "index.cbx"));

  const auto back = import_dataset(dir_, layout);
  ASSERT_EQ(back.units(), data.units());
  EXPECT_EQ(0, std::memcmp(back.data(), data.data(), data.size_bytes()));
}

TEST_F(DatasetIoTest, IndexFileRoundTrip) {
  const auto data = make_words(600);
  auto layout =
      storage::build_layout_for_units(data.units(), data.unit_bytes(), 3, 2, "w");
  storage::assign_stores_by_fraction(layout, 0.5, 0, 1);
  write_index_file(dir_ / "index.cbx", layout);
  EXPECT_EQ(read_index_file(dir_ / "index.cbx"), layout);
}

TEST_F(DatasetIoTest, ChunkReadsTileTheDataset) {
  const auto data = make_words(6000);
  const auto layout =
      storage::build_layout_for_units(data.units(), data.unit_bytes(), 4, 3, "words");
  export_dataset(dir_, data, layout);

  std::vector<std::byte> reassembled;
  for (const auto& chunk : layout.chunks()) {
    const auto bytes = read_chunk(dir_, layout, chunk.id);
    EXPECT_EQ(bytes.size(), chunk.units * data.unit_bytes());
    reassembled.insert(reassembled.end(), bytes.begin(), bytes.end());
  }
  ASSERT_EQ(reassembled.size(), data.size_bytes());
  EXPECT_EQ(0, std::memcmp(reassembled.data(), data.data(), data.size_bytes()));
}

TEST_F(DatasetIoTest, ExportRejectsMismatchedLayout) {
  const auto data = make_words(100);
  const auto layout = storage::build_layout_for_units(99, data.unit_bytes(), 3, 3);
  EXPECT_THROW(export_dataset(dir_, data, layout), std::invalid_argument);
}

// --- out-of-core engine -----------------------------------------------------------

TEST_F(DatasetIoTest, FileEngineMatchesInMemoryEngine) {
  const auto data = make_words(12000);
  const auto layout =
      storage::build_layout_for_units(data.units(), data.unit_bytes(), 5, 3, "w");
  export_dataset(dir_, data, layout);

  apps::WordCountTask task;
  engine::GrEngineOptions mem_options;
  mem_options.threads = 2;
  const auto mem = engine::gr_run(task, data, mem_options);
  const auto& mem_counts = dynamic_cast<const api::HashCountRobj&>(*mem);

  FileRunOptions file_options;
  file_options.threads = 4;
  file_options.cache_bytes = 512;
  FileRunStats stats;
  const auto file = gr_run_files(task, dir_, layout, file_options, &stats);
  const auto& file_counts = dynamic_cast<const api::HashCountRobj&>(*file);

  ASSERT_EQ(file_counts.distinct_keys(), mem_counts.distinct_keys());
  for (const auto& [k, v] : mem_counts.counts()) {
    EXPECT_DOUBLE_EQ(file_counts.get(k), v) << "word " << k;
  }
  EXPECT_EQ(stats.chunks_read, layout.chunks().size());
  EXPECT_EQ(stats.bytes_read, data.size_bytes());
}

TEST_F(DatasetIoTest, FileEngineThreadInvariance) {
  const auto data = make_words(4000);
  const auto layout =
      storage::build_layout_for_units(data.units(), data.unit_bytes(), 4, 2, "w");
  export_dataset(dir_, data, layout);
  apps::WordCountTask task;

  std::unique_ptr<api::ReductionObject> reference;
  for (std::size_t threads : {1u, 2u, 8u}) {
    FileRunOptions options;
    options.threads = threads;
    auto robj = gr_run_files(task, dir_, layout, options);
    const auto& counts = dynamic_cast<const api::HashCountRobj&>(*robj);
    if (!reference) {
      reference = std::move(robj);
    } else {
      const auto& ref = dynamic_cast<const api::HashCountRobj&>(*reference);
      ASSERT_EQ(counts.distinct_keys(), ref.distinct_keys()) << threads;
      for (const auto& [k, v] : ref.counts()) EXPECT_DOUBLE_EQ(counts.get(k), v);
    }
  }
}

TEST_F(DatasetIoTest, FileEngineRunsKmeansKernel) {
  apps::PointGenSpec gen;
  gen.count = 3000;
  gen.dim = 3;
  gen.mixture_components = 2;
  gen.seed = 4;
  const auto data = apps::generate_points(gen);
  const auto layout =
      storage::build_layout_for_units(data.units(), data.unit_bytes(), 3, 2, "pts");
  export_dataset(dir_, data, layout);

  apps::KmeansTask task({{0, 0, 0}, {10, 10, 10}});
  engine::GrEngineOptions mem_options;
  const auto mem = task.centroids_from(*engine::gr_run(task, data, mem_options));
  FileRunOptions file_options;
  file_options.threads = 3;
  const auto file = task.centroids_from(*gr_run_files(task, dir_, layout, file_options));
  for (std::size_t c = 0; c < 2; ++c) {
    for (std::size_t d = 0; d < 3; ++d) EXPECT_DOUBLE_EQ(file[c][d], mem[c][d]);
  }
}

TEST_F(DatasetIoTest, FileEngineRejectsZeroThreads) {
  const auto data = make_words(100);
  const auto layout =
      storage::build_layout_for_units(data.units(), data.unit_bytes(), 1, 1, "w");
  export_dataset(dir_, data, layout);
  apps::WordCountTask task;
  FileRunOptions options;
  options.threads = 0;
  EXPECT_THROW(gr_run_files(task, dir_, layout, options), std::invalid_argument);
}

}  // namespace
}  // namespace cloudburst::io
