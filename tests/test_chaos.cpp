// Chaos-plan tests: scripted WAN link faults, store outages, whole-site
// blackouts with head-driven work re-granting, the recovery invariants the
// ChaosAuditor enforces (exactly-once execution, honest bills, restored
// replica coverage, deterministic replay), the chaos-off byte-identity pin,
// seeded retry-backoff jitter determinism, and the in-flight flow teardown
// regression for dead endpoints.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "apps/wordcount.hpp"
#include "chaos/chaos.hpp"
#include "common/units.hpp"
#include "directory/platform_directory.hpp"
#include "engine/memory_dataset.hpp"
#include "middleware/runtime.hpp"
#include "net/network.hpp"
#include "qos/store_qos.hpp"
#include "replica/replica_set.hpp"
#include "storage/data_layout.hpp"
#include "storage/retry.hpp"
#include "trace/trace.hpp"
#include "workload/workload_manager.hpp"

namespace cloudburst {
namespace {

using namespace cloudburst::units;
using chaos::ChaosEvent;
using chaos::ChaosPlan;
using cluster::kLocalSite;
using cluster::Platform;
using cluster::PlatformSpec;
using middleware::RunOptions;
using middleware::RunResult;
using storage::DataLayout;

/// Local cluster plus two cloud providers, data split three ways.
PlatformSpec three_site_spec() {
  PlatformSpec spec;
  spec.sites.push_back(PlatformSpec::paper_local_site(8));
  spec.sites.push_back(PlatformSpec::paper_cloud_site(4, "east"));
  spec.sites.push_back(PlatformSpec::paper_cloud_site(4, "west"));
  spec.wan_bandwidth = MBps(125);
  spec.wan_latency = des::from_seconds(ms(25));
  spec.set_wan(1, 2, MBps(60), des::from_seconds(ms(60)));
  return spec;
}

/// Real-execution rig whose dataset marks every unit with its chunk id, so
/// the head's final HashCountRobj *is* the per-chunk execution count —
/// exactly what chaos::audit_exactly_once consumes.
struct MarkerRig {
  apps::WordCountTask task;
  DataLayout layout;
  engine::MemoryDataset data;

  MarkerRig(std::uint32_t files, std::uint32_t chunks_per_file, std::uint64_t units)
      : layout(storage::build_layout_for_units(units, sizeof(apps::WordRecord), files,
                                               chunks_per_file)),
        data(make_data(layout)) {}

  static engine::MemoryDataset make_data(const DataLayout& layout) {
    std::vector<apps::WordRecord> records;
    for (const auto& chunk : layout.chunks()) {
      for (std::uint64_t u = 0; u < chunk.units; ++u) {
        records.push_back(apps::WordRecord{chunk.id});
      }
    }
    return engine::MemoryDataset::from_records(records);
  }

  void spread_over(Platform& platform) {
    storage::assign_stores_by_weights(layout, {1.0, 1.0, 1.0},
                                      {platform.store_of_cluster(0),
                                       platform.store_of_cluster(1),
                                       platform.store_of_cluster(2)});
  }

  RunOptions options() {
    RunOptions o;
    o.profile.name = "chaos-marker";
    o.profile.unit_bytes = sizeof(apps::WordRecord);
    o.profile.bytes_per_second_per_core = KiB(512);  // slow: faults land mid-run
    o.profile.per_job_overhead_seconds = 0.2;
    o.profile.robj_bytes = KiB(16);
    o.reduction_tree = false;
    o.task = &task;
    o.dataset = &data;
    return o;
  }

  /// Per-chunk execution counts from the finished run's reduction object.
  std::vector<std::uint32_t> executions(const RunResult& result) const {
    const auto& got = dynamic_cast<const api::HashCountRobj&>(*result.robj);
    std::vector<std::uint32_t> counts(layout.chunks().size(), 0);
    for (const auto& chunk : layout.chunks()) {
      const double units = static_cast<double>(chunk.units);
      counts[chunk.id] =
          static_cast<std::uint32_t>(got.get(chunk.id) / units + 0.5);
      // Fractional residue would mean a *partial* double count — report it
      // as a hard failure rather than rounding it away.
      EXPECT_NEAR(counts[chunk.id] * units, got.get(chunk.id), 1e-6)
          << "chunk " << chunk.id;
    }
    return counts;
  }
};

// --- plan generation ---------------------------------------------------------

TEST(ChaosPlanGen, SeededPlansAreDeterministicAndRespectProtection) {
  chaos::RandomPlanOptions opts;
  opts.seed = 1234;
  opts.sites = 3;
  opts.site_outages = 4;
  opts.store_outages = 4;
  const ChaosPlan a = chaos::random_plan(opts);
  const ChaosPlan b = chaos::random_plan(opts);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_EQ(a.events[i].site_a, b.events[i].site_a);
    EXPECT_DOUBLE_EQ(a.events[i].at_seconds, b.events[i].at_seconds);
  }
  for (const auto& ev : a.events) {
    if (ev.kind == ChaosEvent::Kind::SiteOutage ||
        ev.kind == ChaosEvent::Kind::StoreOutage) {
      EXPECT_NE(ev.site_a, opts.protected_site);
    }
    if (ev.kind == ChaosEvent::Kind::LinkFault) {
      EXPECT_NE(ev.site_a, ev.site_b);
    }
  }
  opts.seed = 99;
  const ChaosPlan c = chaos::random_plan(opts);
  bool differs = c.events.size() != a.events.size();
  for (std::size_t i = 0; !differs && i < a.events.size(); ++i) {
    differs = a.events[i].at_seconds != c.events[i].at_seconds;
  }
  EXPECT_TRUE(differs);

  chaos::RandomPlanOptions bad;
  bad.sites = 1;
  EXPECT_THROW(chaos::random_plan(bad), std::invalid_argument);
}

// --- validation --------------------------------------------------------------

TEST(ChaosValidate, RejectsBadPlans) {
  Platform platform(three_site_spec());
  storage::LayoutSpec lspec;
  lspec.total_bytes = MiB(12);
  lspec.num_files = 3;
  lspec.chunks_per_file = 2;
  lspec.unit_bytes = 64;
  const DataLayout layout = storage::build_layout(lspec);

  auto expect_reject = [&](const ChaosPlan& plan, bool tree = false) {
    RunOptions o;
    o.profile.unit_bytes = 64;
    o.reduction_tree = tree;
    o.chaos = &plan;
    EXPECT_THROW(middleware::validate_run(platform, layout, o), std::invalid_argument);
  };

  ChaosPlan any;
  any.events.push_back({});  // default LinkFault site 0 -> site 0
  expect_reject(any, /*tree=*/true);  // chaos requires direct mode
  expect_reject(any);                 // link fault needs two distinct sites

  ChaosPlan head_blackout;
  ChaosEvent outage;
  outage.kind = ChaosEvent::Kind::SiteOutage;
  outage.site_a = kLocalSite;
  head_blackout.events.push_back(outage);
  expect_reject(head_blackout);  // cannot black out the head's site

  ChaosPlan bad_factor;
  ChaosEvent fault;
  fault.kind = ChaosEvent::Kind::LinkFault;
  fault.site_a = 0;
  fault.site_b = 1;
  fault.factor = 1.5;
  bad_factor.events.push_back(fault);
  expect_reject(bad_factor);

  ChaosPlan bad_node;
  ChaosEvent crash;
  crash.kind = ChaosEvent::Kind::NodeCrash;
  crash.site_a = 1;
  crash.node_index = 99;
  bad_node.events.push_back(crash);
  expect_reject(bad_node);
}

// --- chaos-off byte identity -------------------------------------------------

TEST(ChaosOff, EmptyPlanIsByteIdenticalToNoPlan) {
  MarkerRig rig(6, 2, 60000);
  trace::Tracer base_trace;
  trace::Tracer empty_trace;

  RunOptions base = rig.options();
  base.tracer = &base_trace;
  {
    Platform platform(three_site_spec());
    rig.spread_over(platform);
    middleware::run_distributed(platform, rig.layout, base);
  }

  const ChaosPlan empty_plan;  // attached but empty: must change nothing
  RunOptions with_empty = rig.options();
  with_empty.tracer = &empty_trace;
  with_empty.chaos = &empty_plan;
  {
    Platform platform(three_site_spec());
    middleware::run_distributed(platform, rig.layout, with_empty);
  }

  const auto replay = chaos::audit_replay(base_trace.to_jsonl(), empty_trace.to_jsonl());
  EXPECT_TRUE(replay.ok) << replay.detail;
}

// --- retry-backoff jitter (satellite: de-synchronized retries) ---------------

TEST(RetryJitter, SeededJitterIsDeterministicAndDefaultsOff) {
  // Default policy carries no jitter: the field exists but is disengaged.
  EXPECT_EQ(storage::RetryPolicy{}.jitter_fraction, 0.0);

  // A flaky object store forces retry cycles to exhaust; with jitter each
  // re-opened cycle backs off by a seeded per-(node, chunk, cycle) factor.
  auto run_once = [](double jitter, trace::Tracer& tracer) {
    MarkerRig rig(6, 2, 60000);
    PlatformSpec spec = three_site_spec();
    spec.sites[1].store->fault.fail_probability = 0.6;
    spec.sites[1].store->fault.seed = 77;
    Platform platform(spec);
    storage::assign_stores_by_weights(rig.layout, {1.0, 2.0, 1.0},
                                      {platform.store_of_cluster(0),
                                       platform.store_of_cluster(1),
                                       platform.store_of_cluster(2)});
    RunOptions o = rig.options();
    o.retry.max_attempts = 1;  // every failure exhausts a cycle -> backoff
    o.retry.backoff_base_seconds = 0.05;
    o.retry.jitter_fraction = jitter;
    o.tracer = &tracer;
    const RunResult result = middleware::run_distributed(platform, rig.layout, o);
    EXPECT_GT(result.store_faults(), 0u);
    EXPECT_GT(result.fetch_retries(), 0u);
  };

  trace::Tracer jittered_a, jittered_b, plain;
  run_once(0.5, jittered_a);
  run_once(0.5, jittered_b);
  run_once(0.0, plain);

  // Same seed, same jitter -> bit-identical replay.
  const auto replay = chaos::audit_replay(jittered_a.to_jsonl(), jittered_b.to_jsonl());
  EXPECT_TRUE(replay.ok) << replay.detail;
  // Jitter actually perturbs the schedule relative to the lockstep default.
  EXPECT_NE(jittered_a.to_jsonl(), plain.to_jsonl());
}

// --- WAN link faults ---------------------------------------------------------

TEST(ChaosLinkFault, WindowStallsFlowsAndRunRecovers) {
  MarkerRig rig(6, 2, 600000);
  trace::Tracer clean_trace;
  RunOptions clean = rig.options();
  clean.tracer = &clean_trace;
  double clean_time = 0.0;
  {
    Platform platform(three_site_spec());
    rig.spread_over(platform);
    clean_time = middleware::run_distributed(platform, rig.layout, clean).total_time;
  }

  // Hard-cut the local<->east link from mid-run until past the clean finish:
  // in-flight flows stall (traffic delayed, not lost) — at minimum east's
  // end-of-run robj shipment to the head cannot cross until restoration, so
  // the makespan must inflate.
  ChaosPlan plan;
  ChaosEvent fault;
  fault.kind = ChaosEvent::Kind::LinkFault;
  fault.site_a = 0;
  fault.site_b = 1;
  fault.factor = 0.0;
  fault.at_seconds = 0.5 * clean_time;
  fault.duration_seconds = 1.0 * clean_time;
  plan.events.push_back(fault);

  trace::Tracer faulted_trace;
  RunOptions faulted = rig.options();
  faulted.tracer = &faulted_trace;
  faulted.chaos = &plan;
  Platform platform(three_site_spec());
  const RunResult result = middleware::run_distributed(platform, rig.layout, faulted);

  EXPECT_EQ(faulted_trace.count(trace::EventKind::LinkDown), 1u);
  EXPECT_EQ(faulted_trace.count(trace::EventKind::LinkRestored), 1u);
  EXPECT_GT(result.total_time, clean_time);  // the cut cost wall-clock time
  const auto once = chaos::audit_exactly_once(rig.executions(result));
  EXPECT_TRUE(once.ok) << once.detail;
}

// --- whole-site blackout -----------------------------------------------------

TEST(ChaosSiteOutage, BlackoutLosesNoWorkAndReplaysBitIdentically) {
  // k = 2 cross-site replication: every chunk survives any single-site loss.
  ChaosPlan plan;
  ChaosEvent outage;
  outage.kind = ChaosEvent::Kind::SiteOutage;
  outage.site_a = 2;  // "west" goes dark mid-run...
  outage.at_seconds = 1.0;
  outage.duration_seconds = 8.0;  // ...and comes back later
  plan.events.push_back(outage);

  auto run_once = [&plan](trace::Tracer& tracer, std::vector<std::uint32_t>* counts,
                          bool check_coverage) {
    MarkerRig rig(6, 2, 600000);
    replica::ReplicationConfig rcfg;
    rcfg.replication_factor = 2;
    rcfg.placement = replica::PlacementPolicy::CrossSite;
    replica::ReplicaSet rs{rcfg};
    Platform platform(three_site_spec());
    rig.spread_over(platform);
    RunOptions o = rig.options();
    o.replication = &rs;
    o.retry.max_attempts = 3;
    o.retry.backoff_base_seconds = 0.05;
    o.chaos = &plan;
    o.tracer = &tracer;
    const RunResult result = middleware::run_distributed(platform, rig.layout, o);
    if (counts) *counts = rig.executions(result);
    // Drive repair to quiescence post-run (the background actor stops with
    // the run): coverage must be restorable from the surviving copies.
    if (check_coverage) {
      for (int rounds = 0; rounds < 256; ++rounds) {
        const auto tasks = rs.plan_repairs(8, 1e9);
        if (tasks.empty()) break;
        for (const auto& t : tasks) rs.repair_done(t, true, 1e9);
      }
      const auto coverage = chaos::audit_coverage(rs, rig.layout);
      EXPECT_TRUE(coverage.ok) << coverage.detail;
    }
  };

  trace::Tracer first, second;
  std::vector<std::uint32_t> counts;
  run_once(first, &counts, /*check_coverage=*/true);

  // Invariant 1: exactly-once — the dead cluster's robj never merged, and
  // every chunk it had been granted was re-executed exactly once elsewhere.
  const auto once = chaos::audit_exactly_once(counts);
  EXPECT_TRUE(once.ok) << once.detail;

  // The blackout actually happened: slaves died, the store went dark, the
  // site recovered.
  EXPECT_EQ(first.count(trace::EventKind::SiteOutage), 1u);
  EXPECT_EQ(first.count(trace::EventKind::SiteRecovered), 1u);
  EXPECT_GT(first.count(trace::EventKind::SlaveFailed), 0u);
  EXPECT_EQ(first.count(trace::EventKind::StoreOffline), 1u);

  // Invariant 4: bit-identical replay under the same seed and plan.
  run_once(second, nullptr, /*check_coverage=*/false);
  const auto replay = chaos::audit_replay(first.to_jsonl(), second.to_jsonl());
  EXPECT_TRUE(replay.ok) << replay.detail;
}

TEST(ChaosSiteOutage, PermanentBlackoutStillCompletes) {
  // duration <= 0: the site never comes back; survivors finish the job.
  ChaosPlan plan;
  ChaosEvent outage;
  outage.kind = ChaosEvent::Kind::SiteOutage;
  outage.site_a = 1;
  outage.at_seconds = 1.0;
  outage.duration_seconds = 0.0;
  plan.events.push_back(outage);

  MarkerRig rig(6, 2, 600000);
  replica::ReplicationConfig rcfg;
  rcfg.replication_factor = 2;
  rcfg.placement = replica::PlacementPolicy::CrossSite;
  replica::ReplicaSet rs{rcfg};
  Platform platform(three_site_spec());
  rig.spread_over(platform);
  trace::Tracer tracer;
  RunOptions o = rig.options();
  o.replication = &rs;
  o.retry.max_attempts = 3;
  o.retry.backoff_base_seconds = 0.05;
  o.chaos = &plan;
  o.tracer = &tracer;
  const RunResult result = middleware::run_distributed(platform, rig.layout, o);

  const auto once = chaos::audit_exactly_once(rig.executions(result));
  EXPECT_TRUE(once.ok) << once.detail;
  EXPECT_EQ(tracer.count(trace::EventKind::SiteOutage), 1u);
  EXPECT_EQ(tracer.count(trace::EventKind::SiteRecovered), 0u);
}

// --- seeded soak over a full workload stack ----------------------------------

TEST(ChaosSoak, RandomPlansPreserveInvariantsUnderFullStack) {
  // Replicated + QoS'd + pooled workload over the paper testbed, hammered by
  // seeded random plans. Every run must terminate (the ctest TIMEOUT is the
  // watchdog) with complete work and exactly-partitioned bills.
  for (const std::uint64_t seed : {11u, 23u, 47u}) {
    chaos::RandomPlanOptions po;
    po.seed = seed * 7919;
    po.sites = 2;  // paper testbed: local + cloud
    po.nodes_per_site = 1;  // testbed local site has a single (multi-core) node
    po.horizon_seconds = 20.0;
    po.max_window_seconds = 8.0;
    po.link_faults = 2;
    po.store_outages = 1;
    po.node_crashes = 1;
    po.node_drains = 1;
    po.spot_reclaims = 1;
    po.site_outages = 1;
    const ChaosPlan plan = chaos::random_plan(po);

    Platform platform(PlatformSpec::paper_testbed(4, 4));
    directory::PlatformDirectory dir(platform);
    dir.bootstrap();

    replica::ReplicationConfig rcfg;
    rcfg.replication_factor = 2;
    rcfg.placement = replica::PlacementPolicy::CrossSite;
    replica::ReplicaSet rs{rcfg};

    qos::QosConfig qcfg;
    qcfg.tenant_weights = {{"alice", 1.0}, {"bob", 2.0}};
    qos::StoreQos q{qcfg};

    workload::WorkloadOptions wopts;
    wopts.policy = workload::SchedulingPolicy::FairShare;
    wopts.directory = &dir;
    wopts.pool.enabled = true;
    wopts.pool.boot_seconds = 2.0;
    workload::WorkloadManager manager(platform, wopts);

    storage::LayoutSpec lspec;
    lspec.total_bytes = MiB(32);
    lspec.num_files = 8;
    lspec.chunks_per_file = 2;
    lspec.unit_bytes = 64;
    DataLayout layout = storage::build_layout(lspec);
    storage::assign_stores_by_fraction(layout, 0.5, platform.local_store_id(),
                                       platform.cloud_store_id());

    // Both jobs carry the same plan: platform-scoped faults (links, stores,
    // directory) are idempotent across jobs; actor-scoped faults (kills,
    // master evacuation) are per job. All jobs submit at t = 0 because chaos
    // times are relative to job construction.
    for (int i = 0; i < 2; ++i) {
      workload::JobSpec spec;
      spec.name = i == 0 ? "scan" : "probe";
      spec.tenant = i == 0 ? "alice" : "bob";
      spec.layout = layout;
      spec.options.profile.name = "chaos-soak";
      spec.options.profile.unit_bytes = 64;
      spec.options.profile.bytes_per_second_per_core = KiB(512);
      spec.options.profile.robj_bytes = KiB(32);
      spec.options.reduction_tree = false;
      spec.options.retry.max_attempts = 3;
      spec.options.retry.backoff_base_seconds = 0.05;
      spec.options.replication = &rs;
      spec.options.qos = &q;
      spec.options.chaos = &plan;
      manager.submit(std::move(spec), 0.0);
    }
    const auto result = manager.run();

    ASSERT_EQ(result.jobs.size(), 2u) << "seed " << seed;
    for (const auto& job : result.jobs) {
      // No completed work lost: every chunk was processed (faults may force
      // re-execution, never loss).
      EXPECT_GE(job.run.total_jobs(), 16u) << job.name << " seed " << seed;
    }
    const auto bills = chaos::audit_bills(result);
    EXPECT_TRUE(bills.ok) << bills.detail << " (seed " << seed << ")";
  }
}

// --- flow teardown on endpoint death (regression) ----------------------------

TEST(NetTeardown, DeadEndpointFlowsSettleAndFreeTheirShare) {
  des::Simulator sim;
  net::Network net{sim};
  const net::SiteId sa = net.add_site("A");
  const net::SiteId sb = net.add_site("B");
  const net::LinkId link = net.add_link("ab", 1e6, 0);
  const net::EndpointId a1 = net.add_endpoint("a1", sa);
  const net::EndpointId a2 = net.add_endpoint("a2", sa);
  const net::EndpointId b1 = net.add_endpoint("b1", sb);
  const net::EndpointId b2 = net.add_endpoint("b2", sb);
  net.set_route_symmetric(sa, sb, {link});

  bool doomed_fired = false;
  double survivor_done = -1.0;
  net.start_flow(a1, b1, 1000000, 0, [&] { doomed_fired = true; });
  net.start_flow(b1, a2, 1000000, 0, [&] { doomed_fired = true; });
  net.start_flow(a2, b2, 1000000, 0,
                 [&] { survivor_done = des::to_seconds(sim.now()); });

  // Kill b1 shortly in: both of its flows (one as dst, one as src) must
  // leave the link's active list so the survivor gets the whole 1 MB/s.
  sim.schedule(des::from_seconds(0.1), [&] {
    EXPECT_EQ(net.cancel_flows_with_endpoint(b1), 2u);
  });
  sim.run();

  EXPECT_FALSE(doomed_fired);
  ASSERT_GT(survivor_done, 0.0);
  // 0.1 s of a three-way split (~33 KB moved) then full rate for the rest:
  // well under the 3 s a leaked share would cost.
  EXPECT_NEAR(survivor_done, 0.1 + (1e6 - 1e6 / 3 * 0.1) / 1e6, 0.05);
}

// --- auditor unit checks -----------------------------------------------------

TEST(ChaosAuditor, ExactlyOnceFlagsLossAndDoubleCount) {
  EXPECT_TRUE(chaos::audit_exactly_once({1, 1, 1}).ok);
  const auto lost = chaos::audit_exactly_once({1, 0, 1});
  EXPECT_FALSE(lost.ok);
  EXPECT_NE(lost.detail.find("chunk 1"), std::string::npos);
  const auto twice = chaos::audit_exactly_once({1, 1, 2});
  EXPECT_FALSE(twice.ok);
  EXPECT_NE(twice.detail.find("2 times"), std::string::npos);
}

TEST(ChaosAuditor, ReplayReportsFirstDivergingLine) {
  EXPECT_TRUE(chaos::audit_replay("a\nb\n", "a\nb\n").ok);
  const auto diff = chaos::audit_replay("a\nb\nc\n", "a\nB\nc\n");
  EXPECT_FALSE(diff.ok);
  EXPECT_NE(diff.detail.find("line 2"), std::string::npos);
}

}  // namespace
}  // namespace cloudburst
