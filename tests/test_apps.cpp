// Tests for the evaluation applications: generator contracts, kernel
// correctness against brute-force references, and GR == MapReduce
// equivalence for every app on both engines.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "apps/datagen.hpp"
#include "apps/kmeans.hpp"
#include "apps/knn.hpp"
#include "apps/pagerank.hpp"
#include "apps/wordcount.hpp"
#include "engine/gr_engine.hpp"
#include "engine/mr_engine.hpp"

namespace cloudburst::apps {
namespace {

using engine::GrEngineOptions;
using engine::gr_run;
using engine::MemoryDataset;
using engine::mr_run;
using engine::MrEngineOptions;

// --- generators -----------------------------------------------------------------

TEST(Datagen, PointsHaveSequentialIds) {
  PointGenSpec spec;
  spec.count = 100;
  spec.dim = 4;
  const auto data = generate_points(spec);
  EXPECT_EQ(data.units(), 100u);
  EXPECT_EQ(data.unit_bytes(), point_record_bytes(4));
  for (std::size_t i = 0; i < data.units(); ++i) {
    EXPECT_EQ(point_id(data.unit(i)), i);
  }
}

TEST(Datagen, PointsAreDeterministic) {
  PointGenSpec spec;
  spec.count = 50;
  spec.dim = 3;
  spec.seed = 9;
  const auto a = generate_points(spec);
  const auto b = generate_points(spec);
  EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size_bytes()));
}

TEST(Datagen, PointsClusterAroundMixtureCenters) {
  PointGenSpec spec;
  spec.count = 2000;
  spec.dim = 4;
  spec.mixture_components = 3;
  spec.component_spread = 50.0;
  spec.noise_sigma = 0.5;
  const auto data = generate_points(spec);
  const auto centers = mixture_centers(spec);
  // Every point should be within a few sigma of SOME center.
  for (std::size_t i = 0; i < data.units(); i += 37) {
    const float* coords = point_coords(data.unit(i));
    double best = std::numeric_limits<double>::infinity();
    for (const auto& c : centers) {
      double d = 0;
      for (std::size_t k = 0; k < spec.dim; ++k) {
        d += (coords[k] - c[k]) * (coords[k] - c[k]);
      }
      best = std::min(best, d);
    }
    EXPECT_LT(std::sqrt(best), 6 * spec.noise_sigma);
  }
}

TEST(Datagen, EdgesRespectRangeAndMinOutDegree) {
  GraphGenSpec spec;
  spec.pages = 100;
  spec.edges = 500;
  const auto data = generate_edges(spec);
  EXPECT_EQ(data.units(), 500u);
  const auto deg = out_degrees(data, spec.pages);
  for (std::uint32_t p = 0; p < spec.pages; ++p) EXPECT_GE(deg[p], 1u) << "page " << p;
  for (std::size_t i = 0; i < data.units(); ++i) {
    EdgeRecord e;
    std::memcpy(&e, data.unit(i), sizeof e);
    EXPECT_LT(e.src, spec.pages);
    EXPECT_LT(e.dst, spec.pages);
    EXPECT_NE(e.src, e.dst);  // no self-loops
  }
}

TEST(Datagen, EdgesRejectTooFew) {
  GraphGenSpec spec;
  spec.pages = 10;
  spec.edges = 5;
  EXPECT_THROW(generate_edges(spec), std::invalid_argument);
}

TEST(Datagen, WordsFollowZipfShape) {
  WordGenSpec spec;
  spec.count = 20000;
  spec.vocabulary = 1000;
  spec.zipf_s = 1.2;
  const auto data = generate_words(spec);
  std::size_t low = 0;
  for (std::size_t i = 0; i < data.units(); ++i) {
    WordRecord w;
    std::memcpy(&w, data.unit(i), sizeof w);
    EXPECT_LT(w.word_id, spec.vocabulary);
    low += w.word_id < 10;
  }
  EXPECT_GT(low, data.units() / 5);
}

// --- knn --------------------------------------------------------------------------

std::vector<api::TopKMinRobj::Entry> brute_force_knn(const MemoryDataset& data,
                                                     const std::vector<float>& query,
                                                     std::size_t k) {
  std::vector<api::TopKMinRobj::Entry> all;
  for (std::size_t i = 0; i < data.units(); ++i) {
    const float* coords = point_coords(data.unit(i));
    double d = 0;
    for (std::size_t j = 0; j < query.size(); ++j) {
      d += (static_cast<double>(coords[j]) - query[j]) *
           (static_cast<double>(coords[j]) - query[j]);
    }
    all.push_back({d, point_id(data.unit(i))});
  }
  std::sort(all.begin(), all.end());
  all.resize(std::min(k, all.size()));
  return all;
}

TEST(Knn, GrMatchesBruteForce) {
  PointGenSpec spec;
  spec.count = 5000;
  spec.dim = 6;
  spec.seed = 2;
  const auto data = generate_points(spec);
  const std::vector<float> query(6, 0.5f);
  KnnTask task(25, query);

  GrEngineOptions options;
  options.threads = 4;
  const auto robj = gr_run(task, data, options);
  EXPECT_EQ(KnnTask::neighbors(*robj), brute_force_knn(data, query, 25));
}

TEST(Knn, MrMatchesBruteForce) {
  PointGenSpec spec;
  spec.count = 3000;
  spec.dim = 4;
  spec.seed = 5;
  const auto data = generate_points(spec);
  const std::vector<float> query(4, -1.0f);
  KnnTask task(10, query);

  MrEngineOptions options;
  options.threads = 3;
  options.use_combiner = true;
  options.combine_flush_pairs = 128;
  const auto out = mr_run(task, data, options);
  EXPECT_EQ(KnnTask::neighbors(out), brute_force_knn(data, query, 10));
}

TEST(Knn, KLargerThanDataset) {
  PointGenSpec spec;
  spec.count = 7;
  spec.dim = 2;
  const auto data = generate_points(spec);
  KnnTask task(100, {0.0f, 0.0f});
  const auto robj = gr_run(task, data, GrEngineOptions{});
  EXPECT_EQ(KnnTask::neighbors(*robj).size(), 7u);
}

TEST(Knn, RejectsBadParams) {
  EXPECT_THROW(KnnTask(0, {1.0f}), std::invalid_argument);
  EXPECT_THROW(KnnTask(5, {}), std::invalid_argument);
}

// --- kmeans ------------------------------------------------------------------------

TEST(Kmeans, OneIterationMatchesBruteForce) {
  PointGenSpec spec;
  spec.count = 4000;
  spec.dim = 3;
  spec.mixture_components = 4;
  spec.seed = 8;
  const auto data = generate_points(spec);
  std::vector<std::vector<float>> centroids = {
      {0, 0, 0}, {5, 5, 5}, {-5, -5, -5}, {10, -10, 0}};
  KmeansTask task(centroids);

  // Brute-force assignment.
  std::vector<std::vector<double>> sum(4, std::vector<double>(3, 0.0));
  std::vector<double> count(4, 0.0);
  for (std::size_t i = 0; i < data.units(); ++i) {
    const float* c = point_coords(data.unit(i));
    std::size_t best = 0;
    double best_d = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < 4; ++j) {
      double d = 0;
      for (int k = 0; k < 3; ++k) {
        d += (static_cast<double>(c[k]) - centroids[j][k]) *
             (static_cast<double>(c[k]) - centroids[j][k]);
      }
      if (d < best_d) {
        best_d = d;
        best = j;
      }
    }
    for (int k = 0; k < 3; ++k) sum[best][k] += c[k];
    count[best] += 1;
  }

  GrEngineOptions options;
  options.threads = 4;
  const auto robj = gr_run(task, data, options);
  const auto got = task.centroids_from(*robj);
  for (std::size_t j = 0; j < 4; ++j) {
    for (int k = 0; k < 3; ++k) {
      const double expected = count[j] > 0 ? sum[j][k] / count[j] : centroids[j][k];
      EXPECT_NEAR(got[j][k], expected, 1e-6) << "cluster " << j << " dim " << k;
    }
  }
}

TEST(Kmeans, GrAndMrAgree) {
  PointGenSpec spec;
  spec.count = 3000;
  spec.dim = 4;
  spec.mixture_components = 3;
  spec.seed = 12;
  const auto data = generate_points(spec);
  std::vector<std::vector<float>> centroids = {{0, 0, 0, 0}, {3, 3, 3, 3}, {-3, 0, 3, 0}};
  KmeansTask task(centroids);

  GrEngineOptions gr_options;
  gr_options.threads = 2;
  const auto robj = gr_run(task, data, gr_options);
  const auto gr_centroids = task.centroids_from(*robj);

  MrEngineOptions mr_options;
  mr_options.threads = 3;
  mr_options.use_combiner = true;
  const auto mr_centroids = task.centroids_from(mr_run(task, data, mr_options));

  for (std::size_t j = 0; j < 3; ++j) {
    for (std::size_t k = 0; k < 4; ++k) {
      EXPECT_NEAR(gr_centroids[j][k], mr_centroids[j][k], 1e-6);
    }
  }
}

TEST(Kmeans, IterationConvergesTowardMixtureCenters) {
  PointGenSpec spec;
  spec.count = 6000;
  spec.dim = 2;
  spec.mixture_components = 3;
  spec.component_spread = 20.0;
  spec.noise_sigma = 0.5;
  spec.seed = 31;
  const auto data = generate_points(spec);
  const auto truth = mixture_centers(spec);

  // Start centroids perturbed from the truth; Lloyd should snap them back.
  std::vector<std::vector<float>> start;
  for (const auto& c : truth) {
    std::vector<float> s = c;
    for (auto& v : s) v += 2.0f;
    start.push_back(s);
  }
  const auto final_centroids = kmeans_iterate(data, start, 8, 4);
  for (std::size_t j = 0; j < truth.size(); ++j) {
    double best = std::numeric_limits<double>::infinity();
    for (const auto& t : truth) {
      double d = 0;
      for (std::size_t k = 0; k < 2; ++k) {
        d += (final_centroids[j][k] - t[k]) * (final_centroids[j][k] - t[k]);
      }
      best = std::min(best, d);
    }
    EXPECT_LT(std::sqrt(best), 0.5) << "centroid " << j;
  }
}

TEST(Kmeans, EmptyClusterKeepsOldCentroid) {
  std::vector<std::uint64_t> ids = {0};
  // One point at the origin and a far-away centroid that captures nothing.
  std::vector<std::byte> bytes(point_record_bytes(2));
  const float coords[2] = {0.0f, 0.0f};
  write_point(bytes.data(), 0, coords, 2);
  const MemoryDataset data(std::move(bytes), point_record_bytes(2));

  KmeansTask task({{0.0f, 0.0f}, {100.0f, 100.0f}});
  const auto robj = gr_run(task, data, GrEngineOptions{});
  const auto got = task.centroids_from(*robj);
  EXPECT_NEAR(got[1][0], 100.0, 1e-9);
  EXPECT_NEAR(got[1][1], 100.0, 1e-9);
}

TEST(Kmeans, RejectsBadCentroids) {
  EXPECT_THROW(KmeansTask({}), std::invalid_argument);
  EXPECT_THROW(KmeansTask({{1.0f, 2.0f}, {1.0f}}), std::invalid_argument);
}

// --- pagerank ------------------------------------------------------------------------

std::vector<double> brute_force_pagerank_step(const MemoryDataset& edges,
                                              const std::vector<double>& ranks,
                                              const std::vector<std::uint32_t>& deg,
                                              double damping) {
  std::vector<double> mass(ranks.size(), 0.0);
  for (std::size_t i = 0; i < edges.units(); ++i) {
    EdgeRecord e;
    std::memcpy(&e, edges.unit(i), sizeof e);
    mass[e.dst] += ranks[e.src] / deg[e.src];
  }
  const double base = (1.0 - damping) / static_cast<double>(ranks.size());
  for (auto& m : mass) m = base + damping * m;
  return mass;
}

TEST(PageRank, GrMatchesBruteForce) {
  GraphGenSpec spec;
  spec.pages = 500;
  spec.edges = 5000;
  spec.seed = 6;
  const auto edges = generate_edges(spec);
  const auto deg = out_degrees(edges, spec.pages);
  std::vector<double> ranks(spec.pages, 1.0 / spec.pages);

  PageRankTask task(ranks, deg);
  GrEngineOptions options;
  options.threads = 4;
  const auto robj = gr_run(task, edges, options);
  const auto got = task.ranks_from(*robj);
  const auto expected = brute_force_pagerank_step(edges, ranks, deg, 0.85);
  for (std::size_t p = 0; p < spec.pages; ++p) EXPECT_NEAR(got[p], expected[p], 1e-12);
}

TEST(PageRank, MrMatchesGr) {
  GraphGenSpec spec;
  spec.pages = 300;
  spec.edges = 3000;
  spec.seed = 14;
  const auto edges = generate_edges(spec);
  const auto deg = out_degrees(edges, spec.pages);
  std::vector<double> ranks(spec.pages, 1.0 / spec.pages);
  PageRankTask task(ranks, deg);

  GrEngineOptions gr_options;
  gr_options.threads = 2;
  const auto gr_ranks = task.ranks_from(*gr_run(task, edges, gr_options));

  MrEngineOptions mr_options;
  mr_options.threads = 4;
  mr_options.use_combiner = true;
  const auto mr_ranks = task.ranks_from(mr_run(task, edges, mr_options));

  for (std::size_t p = 0; p < spec.pages; ++p) {
    EXPECT_NEAR(gr_ranks[p], mr_ranks[p], 1e-9);
  }
}

TEST(PageRank, RankMassIsConserved) {
  GraphGenSpec spec;
  spec.pages = 200;
  spec.edges = 2000;
  const auto edges = generate_edges(spec);
  const auto ranks = pagerank_iterate(edges, spec.pages, 10, 4);
  double total = 0.0;
  for (double r : ranks) {
    EXPECT_GT(r, 0.0);
    total += r;
  }
  // No dangling pages -> rank mass stays 1 under the damping update.
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(PageRank, PopularPagesRankHigher) {
  GraphGenSpec spec;
  spec.pages = 500;
  spec.edges = 10000;
  spec.popularity_skew = 1.3;
  const auto edges = generate_edges(spec);
  const auto ranks = pagerank_iterate(edges, spec.pages, 15, 4);
  // Zipf popularity targets low page ids; their mean rank must exceed the
  // mean rank of the tail.
  double head = 0, tail = 0;
  for (std::uint32_t p = 0; p < 10; ++p) head += ranks[p];
  for (std::uint32_t p = 490; p < 500; ++p) tail += ranks[p];
  EXPECT_GT(head, 3 * tail);
}

TEST(PageRank, RejectsBadInputs) {
  EXPECT_THROW(PageRankTask({}, {}), std::invalid_argument);
  EXPECT_THROW(PageRankTask({1.0}, {1, 2}), std::invalid_argument);
  EXPECT_THROW(PageRankTask({1.0}, {1}, 1.5), std::invalid_argument);
}

// --- records -----------------------------------------------------------------------

TEST(Records, PointRoundTrip) {
  std::vector<std::byte> buf(point_record_bytes(3));
  const float coords[3] = {1.5f, -2.5f, 3.5f};
  write_point(buf.data(), 42, coords, 3);
  EXPECT_EQ(point_id(buf.data()), 42u);
  const float* back = point_coords(buf.data());
  EXPECT_EQ(back[0], 1.5f);
  EXPECT_EQ(back[1], -2.5f);
  EXPECT_EQ(back[2], 3.5f);
}

}  // namespace
}  // namespace cloudburst::apps
