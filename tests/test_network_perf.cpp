// Tests for the scoped flow rebalance (see network.hpp "Scoped
// rebalancing"): a randomized differential test driving the scoped and
// global-reference modes through the same operation sequence, plus pins for
// the unified completion re-arm floor and component isolation.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <map>
#include <vector>

#include "des/simulator.hpp"
#include "net/network.hpp"

namespace cloudburst::net {
namespace {

// --- differential harness --------------------------------------------------

// One pre-generated flow operation. Cancel targets index the issued-flow
// list, which is identical across runs because flow ids are assigned in
// call order.
struct Op {
  des::SimTime at = 0;
  bool cancel = false;
  int target = 0;  // cancel: index into the issued-flow list
  int src = 0;
  int dst = 0;
  std::uint64_t bytes = 0;
  double cap = 0.0;
};

// xorshift64* — self-contained so the op sequence never shifts under
// standard-library changes.
struct Rng {
  std::uint64_t state;
  std::uint64_t next() {
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    return state * 0x2545F4914F6CDD1Dull;
  }
  std::uint64_t below(std::uint64_t n) { return next() % n; }
};

std::vector<Op> make_ops(int count, int endpoints, std::uint64_t seed) {
  Rng rng{seed};
  std::vector<Op> ops;
  ops.reserve(count);
  des::SimTime t = 0;
  int started = 0;
  for (int i = 0; i < count; ++i) {
    Op op;
    t += 1 + static_cast<des::SimTime>(rng.below(2'000'000));  // <= 2 ms apart
    op.at = t;
    op.cancel = started > 4 && rng.below(10) < 3;
    if (op.cancel) {
      op.target = static_cast<int>(rng.below(started));
    } else {
      op.src = static_cast<int>(rng.below(endpoints));
      op.dst = static_cast<int>(rng.below(endpoints));  // src==dst: loopback
      op.bytes = 1'000 + rng.below(600'000);
      op.cap = rng.below(4) == 0 ? 1e5 + 1e4 * static_cast<double>(rng.below(100)) : 0.0;
      ++started;
    }
    ops.push_back(op);
  }
  return ops;
}

// Three sites, per-endpoint access links, multi-link WAN routes: flows
// constantly merge and split connected components.
struct Harness {
  des::Simulator sim;
  Network net{sim};
  std::vector<EndpointId> eps;
  std::vector<FlowId> flows;               // issue order
  std::map<int, des::SimTime> completed;   // issue index -> completion time

  explicit Harness(Network::RebalanceMode mode) {
    net.set_rebalance_mode_for_test(mode);
    const SiteId a = net.add_site("a");
    const SiteId b = net.add_site("b");
    const SiteId c = net.add_site("c");
    const LinkId wan_ab =
        net.add_link("wan-ab", 100e6, des::from_seconds(0.010));
    const LinkId wan_bc = net.add_link("wan-bc", 60e6, des::from_seconds(0.015));
    auto attach = [&](SiteId site, const char* prefix, int n, double bw) {
      for (int i = 0; i < n; ++i) {
        const EndpointId ep = net.add_endpoint(prefix + std::to_string(i), site);
        const LinkId access = net.add_link(prefix + std::to_string(i) + "-nic",
                                           bw * (1.0 + 0.25 * i),
                                           des::from_seconds(0.0005));
        net.set_access_path(ep, {access});
        eps.push_back(ep);
      }
    };
    attach(a, "a", 4, 200e6);
    attach(b, "b", 3, 120e6);
    attach(c, "c", 2, 80e6);
    net.set_route_symmetric(a, b, {wan_ab});
    net.set_route_symmetric(b, c, {wan_bc});
    net.set_route_symmetric(a, c, {wan_ab, wan_bc});  // two-hop path
  }

  // Runs the op sequence; after each op appends a bit-pattern hash of the
  // most recent flows' rates (exact-equality signature, localizes a
  // divergence to the first differing op).
  void drive(const std::vector<Op>& ops, std::vector<std::uint64_t>& rate_sig) {
    for (std::size_t i = 0; i < ops.size(); ++i) {
      sim.schedule_at(ops[i].at, [this, &ops, &rate_sig, i] {
        const Op& op = ops[i];
        if (op.cancel) {
          net.cancel_flow(flows[op.target]);
        } else {
          const int idx = static_cast<int>(flows.size());
          flows.push_back(net.start_flow(
              eps[op.src], eps[op.dst], op.bytes, op.cap,
              [this, idx] { completed.emplace(idx, sim.now()); }));
        }
        std::uint64_t h = 1469598103934665603ull;  // FNV offset basis
        const std::size_t begin = flows.size() > 64 ? flows.size() - 64 : 0;
        for (std::size_t k = begin; k < flows.size(); ++k) {
          const double rate = net.flow_rate(flows[k]);
          std::uint64_t bits;
          std::memcpy(&bits, &rate, sizeof(bits));
          h = (h ^ bits) * 1099511628211ull;
        }
        rate_sig.push_back(h);
      });
    }
    sim.run();
  }
};

TEST(ScopedRebalanceDifferential, MatchesGlobalReferenceOver10kOps) {
  const std::vector<Op> ops = make_ops(10'000, 9, 0x5eed2026'08'08ull);
  Harness scoped(Network::RebalanceMode::kScoped);
  Harness reference(Network::RebalanceMode::kGlobalReference);
  std::vector<std::uint64_t> sig_scoped, sig_reference;
  scoped.drive(ops, sig_scoped);
  reference.drive(ops, sig_reference);

  ASSERT_EQ(sig_scoped.size(), sig_reference.size());
  for (std::size_t i = 0; i < sig_scoped.size(); ++i) {
    ASSERT_EQ(sig_scoped[i], sig_reference[i]) << "rate divergence at op " << i;
  }
  EXPECT_EQ(scoped.completed, reference.completed);
  EXPECT_EQ(scoped.net.active_flows(), reference.net.active_flows());
  // Identical rates imply identical re-arm decisions, so even the event
  // traffic must match.
  EXPECT_EQ(scoped.sim.executed_events(), reference.sim.executed_events());

  // The sequence must have exercised real churn, or the comparison is vacuous.
  EXPECT_GT(scoped.completed.size(), 1'000u);
  EXPECT_EQ(scoped.sim.now(), reference.sim.now());
}

// --- unified re-arm floor --------------------------------------------------

// Rebalance used to arm sub-tick completions at +0 while the finish-time
// re-estimate floored at +1 tick; both now share the >=1 tick floor. A
// loopback flow (rate 1e18 => sub-tick duration) pins it: activation at t=0,
// completion exactly one tick later.
TEST(NetworkRearmFloor, LoopbackCompletesOneTickAfterActivation) {
  des::Simulator sim;
  Network net(sim);
  const SiteId s = net.add_site("s");
  const EndpointId e = net.add_endpoint("e", s);
  des::SimTime done = -1;
  net.start_flow(e, e, 1'000'000, 0.0, [&] { done = sim.now(); });
  sim.run();
  EXPECT_EQ(done, 1);
}

TEST(NetworkRearmFloor, MidFlightRateChangeReestimatesExactly) {
  des::Simulator sim;
  Network net(sim);
  const SiteId s = net.add_site("s");
  const LinkId shared = net.add_link("shared", 1e6, des::from_seconds(0.001));
  const EndpointId x = net.add_endpoint("x", s);
  const EndpointId z = net.add_endpoint("z", s);
  const EndpointId y = net.add_endpoint("y", s);
  net.set_access_path(x, {shared});
  net.set_access_path(z, {shared});

  des::SimTime a_done = -1, b_done = -1;
  net.start_flow(x, y, 1'000'000, 0.0, [&] { a_done = sim.now(); });
  sim.schedule(des::from_seconds(0.499),
               [&] { net.start_flow(z, y, 500'000, 0.0, [&] { b_done = sim.now(); }); });
  sim.run();
  // A: active at 1ms, alone until 0.5s (499k bytes drained), then halves to
  // 5e5 B/s. B: active at 0.5s, 500k bytes at 5e5 B/s => done at 1.5s; A's
  // last 1k bytes then drain at full rate => 1.501s. Each re-arm rounds at
  // most once, so allow a few ns.
  EXPECT_NEAR(des::to_seconds(b_done), 1.5, 5e-9);
  EXPECT_NEAR(des::to_seconds(a_done), 1.501, 5e-9);
}

// --- component isolation ---------------------------------------------------

// Churn on a disjoint link set must not perturb another component's
// completion, to the exact tick: scoped rebalance neither recomputes nor
// re-arms flows it cannot affect.
TEST(ScopedRebalance, DisjointComponentChurnDoesNotPerturbCompletion) {
  auto run_measured = [](bool with_churn) {
    des::Simulator sim;
    Network net(sim);
    const SiteId s = net.add_site("s");
    const LinkId quiet = net.add_link("quiet", 1e6, des::from_seconds(0.002));
    const LinkId busy = net.add_link("busy", 5e6, des::from_seconds(0.0001));
    const EndpointId q1 = net.add_endpoint("q1", s);
    const EndpointId q2 = net.add_endpoint("q2", s);
    const EndpointId b1 = net.add_endpoint("b1", s);
    const EndpointId b2 = net.add_endpoint("b2", s);
    net.set_access_path(q1, {quiet});
    net.set_access_path(b1, {busy});

    des::SimTime done = -1;
    net.start_flow(q1, q2, 3'000'000, 0.0, [&] { done = sim.now(); });
    if (with_churn) {
      for (int i = 0; i < 100; ++i) {
        sim.schedule(des::from_seconds(0.01 * i), [&net, b1, b2] {
          net.start_flow(b1, b2, 50'000, 0.0, nullptr);
        });
      }
    }
    sim.run();
    return done;
  };
  EXPECT_EQ(run_measured(false), run_measured(true));
}

}  // namespace
}  // namespace cloudburst::net
