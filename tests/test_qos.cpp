// Store-QoS tests: config and reservation validation, weighted-fair share
// conservation under saturation, work conservation when a tenant idles,
// reservation carve-outs, per-tenant cache budgets, the default-off
// byte-identity pin, and composition with cache + faults + replication in a
// two-tenant workload.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "apps/experiments.hpp"
#include "cache/chunk_cache.hpp"
#include "cluster/platform.hpp"
#include "common/units.hpp"
#include "des/simulator.hpp"
#include "middleware/runtime.hpp"
#include "qos/store_qos.hpp"
#include "replica/replica_set.hpp"
#include "storage/data_layout.hpp"
#include "trace/trace.hpp"
#include "workload/workload_manager.hpp"

namespace cloudburst {
namespace {

using namespace cloudburst::units;
using cluster::kCloudSite;
using cluster::Platform;
using cluster::PlatformSpec;
using qos::QosConfig;
using qos::StoreQos;

// --- config / reservation validation -----------------------------------------

TEST(StoreQos, RejectsNonPositiveWeights) {
  QosConfig zero_default;
  zero_default.default_weight = 0.0;
  EXPECT_THROW(StoreQos{zero_default}, std::invalid_argument);

  QosConfig zero_tenant;
  zero_tenant.tenant_weights["a"] = 0.0;
  EXPECT_THROW(StoreQos{zero_tenant}, std::invalid_argument);

  QosConfig negative_system;
  negative_system.system_weight = -1.0;
  EXPECT_THROW(StoreQos{negative_system}, std::invalid_argument);
}

TEST(StoreQos, SystemTenantIsAlwaysIdZero) {
  StoreQos q;
  EXPECT_EQ(q.tenant_id(qos::kSystemTenantName), qos::kSystemTenant);
  const auto a = q.tenant_id("alice");
  EXPECT_EQ(q.tenant_id("alice"), a);  // stable on re-lookup
  EXPECT_NE(a, qos::kSystemTenant);
  EXPECT_EQ(q.tenant_name(a), "alice");
}

TEST(StoreQos, ReserveRejectsMalformedAndUnattachedRequests) {
  StoreQos q;
  // Capacities unknown before attach()/bind(): reserve cannot admit.
  EXPECT_THROW(q.reserve("a", 0, 1e6, 0.0, 1.0), std::logic_error);

  des::Simulator sim;
  q.bind(sim, {100e6});
  EXPECT_THROW(q.reserve("a", 0, 0.0, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(q.reserve("a", 0, -1e6, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(q.reserve("a", 0, 1e6, 5.0, 5.0), std::invalid_argument);
  EXPECT_THROW(q.reserve("a", 0, 1e6, 5.0, 2.0), std::invalid_argument);
  EXPECT_THROW(q.reserve("a", 9, 1e6, 0.0, 1.0), std::invalid_argument);
}

TEST(StoreQos, ReservationAdmissionRejectsOvercommit) {
  QosConfig cfg;
  cfg.pacing_factor = 0.9;
  StoreQos q{cfg};
  des::Simulator sim;
  trace::Tracer tracer;
  q.set_tracer(&tracer);
  q.bind(sim, {100e6});  // paced link: 90e6 minus the fair-pool floor

  EXPECT_TRUE(q.reserve("a", 0, 50e6, 0.0, 10.0));
  // 50 + 45 = 95e6 over [5, 10) exceeds the paced link: rejected.
  EXPECT_FALSE(q.reserve("b", 0, 45e6, 5.0, 15.0));
  EXPECT_EQ(q.reservations_rejected(), 1u);
  // The same rate fits once the windows no longer overlap.
  EXPECT_TRUE(q.reserve("b", 0, 45e6, 10.0, 20.0));
  ASSERT_EQ(q.reservations().size(), 2u);

  EXPECT_EQ(tracer.count(trace::EventKind::ReservationGranted), 2u);
  EXPECT_EQ(tracer.count(trace::EventKind::ReservationRejected), 1u);
}

TEST(StoreQos, ValidateAgainstRechecksPlatformCapacities) {
  StoreQos q;
  des::Simulator sim;
  q.bind(sim, {1e12, 1e12});  // optimistic capacities at reserve time
  EXPECT_TRUE(q.reserve("a", 0, 100e9, 0.0, 10.0));

  // The paper testbed's local store front end (1600 MB/s) cannot honor a
  // 100 GB/s floor: run_distributed's up-front validation must throw.
  Platform p(PlatformSpec::paper_testbed(4, 4));
  EXPECT_THROW(q.validate_against(p), std::invalid_argument);

  StoreQos fits;
  des::Simulator sim2;
  fits.bind(sim2, {1e12, 1e12});
  EXPECT_TRUE(fits.reserve("a", 0, 100e6, 0.0, 10.0));
  EXPECT_NO_THROW(fits.validate_against(p));
}

// --- arbitration mechanics ---------------------------------------------------

/// Closed-loop tenant driver: keeps exactly one request outstanding until
/// `until` sim-seconds, so the tenant is continuously backlogged.
struct Loader {
  StoreQos& q;
  des::Simulator& sim;
  storage::StoreId store;
  qos::TenantId tenant;
  std::uint64_t bytes;
  double until;

  void pump() {
    q.submit(store, tenant, bytes, [this](double) {
      if (des::to_seconds(sim.now()) < until) pump();
    });
  }
};

TEST(StoreQos, PassThroughReleasesSynchronouslyWhenUnattached) {
  StoreQos q;
  const auto t = q.tenant_id("a");
  bool released = false;
  q.submit(0, t, 1000, [&](double waited) {
    released = true;
    EXPECT_DOUBLE_EQ(waited, 0.0);
  });
  EXPECT_TRUE(released);
  const auto* stats = q.store_stats(t, 0);
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->requests, 1u);
  EXPECT_EQ(stats->throttled, 0u);
}

TEST(StoreQos, ZeroCapacityStoreIsPassThrough) {
  StoreQos q;
  des::Simulator sim;
  q.bind(sim, {0.0});
  const auto t = q.tenant_id("a");
  bool released = false;
  q.submit(0, t, 1000, [&](double waited) {
    released = true;
    EXPECT_DOUBLE_EQ(waited, 0.0);
  });
  EXPECT_TRUE(released);
}

// Both tenants saturate one store: achieved bandwidth splits 3:1 by weight
// and the link stays fully used (sum of shares == capacity).
TEST(StoreQos, WeightedFairSplitsSaturatedLinkByShares) {
  QosConfig cfg;
  cfg.tenant_weights = {{"heavy", 3.0}, {"light", 1.0}};
  cfg.pacing_factor = 1.0;  // exact conservation math for the unit test
  StoreQos q{cfg};
  des::Simulator sim;
  const double capacity = 100e6;
  q.bind(sim, {capacity});

  const double horizon = 10.0;
  Loader heavy{q, sim, 0, q.tenant_id("heavy"), 1'000'000, horizon};
  Loader light{q, sim, 0, q.tenant_id("light"), 1'000'000, horizon};
  heavy.pump();
  light.pump();
  sim.run();

  const auto* h = q.store_stats(heavy.tenant, 0);
  const auto* l = q.store_stats(light.tenant, 0);
  ASSERT_NE(h, nullptr);
  ASSERT_NE(l, nullptr);
  const double ratio = static_cast<double>(h->bytes) / static_cast<double>(l->bytes);
  EXPECT_NEAR(ratio, 3.0, 0.3);  // within 10% of the 3:1 share split

  // Work conservation at full backlog: released bytes cover the whole link.
  const double elapsed = des::to_seconds(sim.now());
  const double total_rate =
      static_cast<double>(h->bytes + l->bytes) / elapsed;
  EXPECT_NEAR(total_rate, capacity, 0.05 * capacity);

  // The loser of each arbitration round waited: throttling was recorded.
  EXPECT_GT(h->throttled + l->throttled, 0u);
  EXPECT_GT(l->wait_seconds, 0.0);
}

// When the competing tenant goes idle, the survivor inherits the whole link
// (work-conserving redistribution), not just its 1/4 share.
TEST(StoreQos, IdleTenantDonatesItsShare) {
  QosConfig cfg;
  cfg.tenant_weights = {{"heavy", 3.0}, {"light", 1.0}};
  cfg.pacing_factor = 1.0;
  StoreQos q{cfg};
  des::Simulator sim;
  const double capacity = 100e6;
  q.bind(sim, {capacity});

  const double half = 5.0, horizon = 10.0;
  Loader heavy{q, sim, 0, q.tenant_id("heavy"), 1'000'000, half};
  Loader light{q, sim, 0, q.tenant_id("light"), 1'000'000, horizon};
  heavy.pump();
  light.pump();

  std::uint64_t light_bytes_at_half = 0;
  sim.schedule(des::from_seconds(half), [&] {
    const auto* l = q.store_stats(light.tenant, 0);
    light_bytes_at_half = l ? l->bytes : 0;
  });
  sim.run();

  const auto* l = q.store_stats(light.tenant, 0);
  ASSERT_NE(l, nullptr);
  // Second half: "light" alone should run at ~capacity, not weight/4 of it.
  const double solo_rate =
      static_cast<double>(l->bytes - light_bytes_at_half) / (horizon - half);
  EXPECT_NEAR(solo_rate, capacity, 0.10 * capacity);
}

// A reservation carves its rate out of the fair pool: the reserved tenant
// gets its floor and the best-effort tenant gets what remains.
TEST(StoreQos, ReservationCarvesTokensOutOfTheFairPool) {
  QosConfig cfg;
  cfg.pacing_factor = 1.0;
  StoreQos q{cfg};
  des::Simulator sim;
  const double capacity = 100e6;
  q.bind(sim, {capacity});
  ASSERT_TRUE(q.reserve("reserved", 0, 60e6, 0.0, 20.0));

  const double horizon = 10.0;
  Loader res{q, sim, 0, q.tenant_id("reserved"), 1'000'000, horizon};
  Loader bulk{q, sim, 0, q.tenant_id("bulk"), 1'000'000, horizon};
  res.pump();
  bulk.pump();
  sim.run();

  const auto* r = q.store_stats(res.tenant, 0);
  const auto* b = q.store_stats(bulk.tenant, 0);
  ASSERT_NE(r, nullptr);
  ASSERT_NE(b, nullptr);
  const double res_rate = static_cast<double>(r->bytes) / horizon;
  const double bulk_rate = static_cast<double>(b->bytes) / horizon;
  EXPECT_NEAR(res_rate, 60e6, 0.10 * 60e6);
  EXPECT_NEAR(bulk_rate, 40e6, 0.10 * 40e6);
}

TEST(StoreQos, ReportRollsUpStoresAndCacheCounters) {
  StoreQos q;
  des::Simulator sim;
  q.bind(sim, {100e6, 100e6});
  const auto t = q.tenant_id("alice");
  q.submit(0, t, 1000, [](double) {});
  q.submit(1, t, 2000, [](double) {});
  q.note_cache_hit(t);
  q.note_cache_hit(t);
  q.note_cache_miss(t);
  sim.run();

  const auto report = q.report("alice");
  EXPECT_TRUE(report.active);
  EXPECT_EQ(report.store_requests, 2u);
  EXPECT_EQ(report.bytes, 3000u);
  EXPECT_EQ(report.cache_hits, 2u);
  EXPECT_EQ(report.cache_misses, 1u);
  EXPECT_FALSE(q.report("nobody").active);
}

// --- per-tenant cache budgets ------------------------------------------------

TEST(StoreQos, CacheBudgetsSplitByConfiguredWeights) {
  QosConfig cfg;
  cfg.tenant_weights = {{"a", 3.0}, {"b", 1.0}};
  StoreQos q{cfg};
  const auto budgets = q.cache_budgets(1000);
  ASSERT_EQ(budgets.size(), 2u);
  EXPECT_EQ(budgets.at(q.tenant_id("a")), 750u);
  EXPECT_EQ(budgets.at(q.tenant_id("b")), 250u);
  StoreQos unweighted;
  EXPECT_TRUE(unweighted.cache_budgets(1000).empty());
}

TEST(ChunkCacheOwners, BudgetedOwnerEvictsOnlyItsOwnEntries) {
  cache::CacheConfig cfg;
  cfg.capacity_bytes = 1000;
  cache::ChunkCache cache(cfg);
  cache.set_owner_budget(1, 300);

  EXPECT_TRUE(cache.insert(0, 100, false, 1).admitted);
  EXPECT_TRUE(cache.insert(1, 100, false, 1).admitted);
  EXPECT_TRUE(cache.insert(2, 100, false, 1).admitted);
  EXPECT_EQ(cache.owner_bytes(1), 300u);

  // A fourth chunk is over budget: the owner's own LRU entry goes, even
  // though the cache as a whole has 700 free bytes.
  const auto result = cache.insert(3, 100, false, 1);
  EXPECT_TRUE(result.admitted);
  ASSERT_EQ(result.evicted.size(), 1u);
  EXPECT_EQ(result.evicted[0].first, 0u);
  EXPECT_EQ(cache.owner_bytes(1), 300u);

  // A chunk larger than the whole budget is rejected outright.
  EXPECT_FALSE(cache.insert(9, 400, false, 1).admitted);
}

TEST(ChunkCacheOwners, GlobalEvictionNeverRaidsAnotherBudgetedTenant) {
  cache::CacheConfig cfg;
  cfg.capacity_bytes = 300;
  cache::ChunkCache cache(cfg);
  cache.set_owner_budget(1, 200);
  cache.set_owner_budget(2, 200);

  EXPECT_TRUE(cache.insert(0, 100, false, 1).admitted);
  EXPECT_TRUE(cache.insert(1, 100, false, 1).admitted);
  EXPECT_TRUE(cache.insert(2, 100, false, 2).admitted);  // cache now full

  // Owner 2 is inside its budget but the cache is full: it may recycle its
  // own LRU entry, never the other *budgeted* tenant's.
  const auto recycled = cache.insert(3, 100, false, 2);
  EXPECT_TRUE(recycled.admitted);
  ASSERT_EQ(recycled.evicted.size(), 1u);
  EXPECT_EQ(recycled.evicted[0].first, 2u);
  EXPECT_TRUE(cache.contains(0));
  EXPECT_TRUE(cache.contains(1));

  // A shared (unbudgeted) inserter cannot raid budgeted tenants either.
  EXPECT_FALSE(cache.insert(4, 100).admitted);

  // Shared entries, by contrast, are fair game for anyone.
  cache.erase(3);
  EXPECT_TRUE(cache.insert(5, 100).admitted);  // shared owner, fits now
  const auto raided = cache.insert(6, 100, false, 2);
  EXPECT_TRUE(raided.admitted);  // evicts the shared entry
  EXPECT_FALSE(cache.contains(5));
  EXPECT_TRUE(cache.contains(0));
  EXPECT_TRUE(cache.contains(1));
}

TEST(ChunkCacheOwners, FleetAppliesBudgetsToEverySite) {
  cache::CacheConfig cfg;
  cfg.capacity_bytes = 1000;
  cache::CacheFleet fleet(cfg);
  fleet.site(0);  // existing site gets the budget retroactively
  fleet.set_owner_budget(7, 100);
  EXPECT_FALSE(fleet.site(0).insert(0, 200, false, 7).admitted);
  EXPECT_FALSE(fleet.site(1).insert(0, 200, false, 7).admitted);  // new site too
  EXPECT_TRUE(fleet.site(1).insert(1, 100, false, 7).admitted);
}

// --- default-off byte identity -----------------------------------------------

TEST(QosIntegration, UnsetQosKeepsPaperRunsByteIdentical) {
  const auto baseline = apps::run_env(apps::Env::Cloud, apps::PaperApp::Kmeans);
  // Naming a tenant without attaching a StoreQos must not move one event:
  // the whole subsystem is unreachable until RunOptions::qos is set.
  const auto tagged = apps::run_env(
      apps::Env::Cloud, apps::PaperApp::Kmeans,
      [](cluster::PlatformSpec&, middleware::RunOptions& options) {
        options.tenant = "interactive";
        options.qos = nullptr;
      });
  EXPECT_DOUBLE_EQ(tagged.total_time, baseline.total_time);
  EXPECT_EQ(tagged.qos_throttled(), 0u);
  EXPECT_DOUBLE_EQ(tagged.qos_wait_seconds(), 0.0);
  EXPECT_EQ(tagged.s3_get_requests, baseline.s3_get_requests);
  ASSERT_EQ(tagged.clusters.size(), baseline.clusters.size());
  for (std::size_t c = 0; c < baseline.clusters.size(); ++c) {
    EXPECT_DOUBLE_EQ(tagged.clusters[c].retrieval, baseline.clusters[c].retrieval);
    EXPECT_DOUBLE_EQ(tagged.clusters[c].processing, baseline.clusters[c].processing);
  }
}

// --- middleware integration --------------------------------------------------

TEST(QosIntegration, SoloRunArbitratesAndAccountsPerTenant) {
  StoreQos q;
  trace::Tracer tracer;
  const auto result = apps::run_env(
      apps::Env::Cloud, apps::PaperApp::Kmeans,
      [&](cluster::PlatformSpec&, middleware::RunOptions& options) {
        options.qos = &q;
        options.tenant = "alice";
        options.tracer = &tracer;
      });

  EXPECT_EQ(result.total_jobs(), 96u);  // the run still processes everything
  const auto report = q.report("alice");
  EXPECT_TRUE(report.active);
  EXPECT_GT(report.store_requests, 0u);
  EXPECT_GT(report.bytes, 0u);
  EXPECT_GT(report.achieved_bytes_per_sec, 0.0);
  // Recorder counters and the trace stream agree on throttle events.
  EXPECT_EQ(result.qos_throttled(), tracer.count(trace::EventKind::QosThrottled));
  EXPECT_GE(result.qos_wait_seconds(), 0.0);
}

// Two tenants through one workload with cache + faults + replication + QoS
// attached at once: everything composes and the per-tenant QoS report lands
// in the WorkloadResult.
TEST(QosIntegration, ComposesWithCacheFaultsAndReplicationInAWorkload) {
  // Cloud store faults exercise retry + QoS on the same path.
  PlatformSpec spec = PlatformSpec::paper_testbed(4, 4);
  spec.sites[kCloudSite].store->fault.fail_probability = 0.02;
  Platform faulty(spec);

  storage::LayoutSpec lspec;
  lspec.total_bytes = MiB(256);
  lspec.num_files = 8;
  lspec.chunks_per_file = 2;
  lspec.unit_bytes = 64;
  storage::DataLayout layout = storage::build_layout(lspec);
  storage::assign_stores_by_fraction(layout, 0.5, faulty.local_store_id(),
                                     faulty.cloud_store_id());

  cache::CacheConfig ccfg;
  ccfg.capacity_bytes = MiB(64);
  cache::CacheFleet fleet(ccfg);

  replica::ReplicationConfig rcfg;
  rcfg.replication_factor = 2;
  rcfg.placement = replica::PlacementPolicy::CrossSite;
  replica::ReplicaSet rs{rcfg};

  QosConfig qcfg;
  qcfg.tenant_weights = {{"batch", 1.0}, {"interactive", 3.0}};
  StoreQos q{qcfg};

  trace::Tracer tracer;
  middleware::RunOptions options;
  options.profile.name = "wl";
  options.profile.unit_bytes = 64;
  options.profile.bytes_per_second_per_core = MBps(4);
  options.profile.robj_bytes = KiB(64);
  options.retry.max_attempts = 3;
  options.retry.backoff_base_seconds = 0.05;
  options.cache = &fleet;
  options.replication = &rs;
  options.qos = &q;

  workload::WorkloadOptions wopts;
  wopts.policy = workload::SchedulingPolicy::FairShare;
  wopts.tracer = &tracer;
  workload::WorkloadManager manager(faulty, wopts);
  for (int i = 0; i < 2; ++i) {
    workload::JobSpec jspec;
    jspec.name = i == 0 ? "scan" : "probe";
    jspec.tenant = i == 0 ? "batch" : "interactive";
    jspec.layout = layout;
    jspec.options = options;
    manager.submit(std::move(jspec), 0.0);
  }
  const auto result = manager.run();

  ASSERT_EQ(result.jobs.size(), 2u);
  for (const auto& job : result.jobs) {
    EXPECT_EQ(job.run.total_jobs(), 16u) << job.name;
  }

  // Per-tenant QoS rollups surfaced in the workload result.
  const auto* batch = result.tenant("batch");
  const auto* interactive = result.tenant("interactive");
  ASSERT_NE(batch, nullptr);
  ASSERT_NE(interactive, nullptr);
  EXPECT_TRUE(batch->qos.active);
  EXPECT_TRUE(interactive->qos.active);
  EXPECT_GT(batch->qos.store_requests, 0u);
  EXPECT_GT(interactive->qos.store_requests, 0u);
  EXPECT_GT(batch->qos.bytes + interactive->qos.bytes, 0u);

  // Trace and recorder counters agree across the whole workload.
  std::uint32_t throttled = 0;
  for (const auto& job : result.jobs) throttled += job.run.qos_throttled();
  EXPECT_EQ(throttled, tracer.count(trace::EventKind::QosThrottled));
}

}  // namespace
}  // namespace cloudburst
