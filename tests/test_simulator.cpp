// Tests for the discrete-event simulation kernel: deterministic ordering,
// cancellation, bounded runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "des/simulator.hpp"

namespace cloudburst::des {
namespace {

TEST(SimTime, Conversions) {
  EXPECT_EQ(from_seconds(1.0), kSecond);
  EXPECT_EQ(from_seconds(0.001), kMillisecond);
  EXPECT_DOUBLE_EQ(to_seconds(kSecond), 1.0);
  EXPECT_EQ(from_seconds(1.5e-9), 2);  // rounds to nearest ns
}

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), kSimStart);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(3 * kSecond, [&] { order.push_back(3); });
  sim.schedule(1 * kSecond, [&] { order.push_back(1); });
  sim.schedule(2 * kSecond, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 3 * kSecond);
}

TEST(Simulator, TiesBreakByInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule(kSecond, [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, ClockAdvancesDuringCallbacks) {
  Simulator sim;
  SimTime seen = -1;
  sim.schedule(5 * kMillisecond, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, 5 * kMillisecond);
}

TEST(Simulator, EventsMayScheduleMoreEvents) {
  Simulator sim;
  int hops = 0;
  std::function<void()> hop = [&] {
    if (++hops < 10) sim.schedule(kMillisecond, hop);
  };
  sim.schedule(0, hop);
  sim.run();
  EXPECT_EQ(hops, 10);
  EXPECT_EQ(sim.now(), 9 * kMillisecond);
}

TEST(Simulator, NegativeDelayThrows) {
  Simulator sim;
  EXPECT_THROW(sim.schedule(-1, [] {}), std::invalid_argument);
}

TEST(Simulator, ScheduleAtPastThrows) {
  Simulator sim;
  sim.schedule(kSecond, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(0, [] {}), std::invalid_argument);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  auto handle = sim.schedule(kSecond, [&] { ran = true; });
  EXPECT_TRUE(handle.pending());
  handle.cancel();
  EXPECT_FALSE(handle.pending());
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, CancelAfterFireIsNoop) {
  Simulator sim;
  auto handle = sim.schedule(0, [] {});
  sim.run();
  EXPECT_FALSE(handle.pending());
  handle.cancel();  // must not crash or affect anything
}

TEST(Simulator, DefaultHandleIsNotPending) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  h.cancel();  // harmless
}

TEST(Simulator, StepExecutesExactlyOne) {
  Simulator sim;
  int count = 0;
  sim.schedule(1, [&] { ++count; });
  sim.schedule(2, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(1 * kSecond, [&] { order.push_back(1); });
  sim.schedule(3 * kSecond, [&] { order.push_back(3); });
  sim.run_until(2 * kSecond);
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(sim.now(), 2 * kSecond);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(Simulator, RunUntilWithEmptyQueueKeepsClock) {
  Simulator sim;
  sim.schedule(kSecond, [] {});
  sim.run();
  EXPECT_EQ(sim.run_until(10 * kSecond), kSecond);
}

TEST(Simulator, ExecutedEventsCountsOnlyFired) {
  Simulator sim;
  auto h = sim.schedule(1, [] {});
  sim.schedule(2, [] {});
  h.cancel();
  sim.run();
  EXPECT_EQ(sim.executed_events(), 1u);
}

TEST(Simulator, ManyEventsStressOrdering) {
  Simulator sim;
  SimTime last = -1;
  bool monotone = true;
  for (int i = 0; i < 10000; ++i) {
    // Deterministic pseudo-shuffled times.
    const SimTime t = ((i * 7919) % 1000) * kMillisecond;
    sim.schedule_at(t, [&, t] {
      if (t < last) monotone = false;
      last = t;
    });
  }
  sim.run();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(sim.executed_events(), 10000u);
}

// --- handle lifetime contract (see simulator.hpp) ---------------------------

TEST(EventHandleLifetime, PendingIsFalseAfterSimulatorDestroyed) {
  EventHandle h;
  {
    Simulator sim;
    h = sim.schedule(kSecond, [] {});
    EXPECT_TRUE(h.pending());
  }
  EXPECT_FALSE(h.pending());
  h.cancel();  // must not touch the destroyed simulator
  EXPECT_FALSE(h.pending());
}

TEST(EventHandleLifetime, CancelAfterRunAndAfterDrainAreNoops) {
  Simulator sim;
  int fired = 0;
  EventHandle h = sim.schedule(kSecond, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(h.pending());
  h.cancel();
  h.cancel();
  EXPECT_EQ(sim.pending_events(), 0u);
  // The drained simulator keeps working afterwards.
  sim.schedule(kSecond, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(EventHandleLifetime, StaleHandleCannotCancelRecycledSlot) {
  Simulator sim;
  int fired = 0;
  EventHandle a = sim.schedule(kSecond, [&] { fired = 1; });
  a.cancel();
  // b reuses a's slab slot; a's stale generation must not reach it.
  EventHandle b = sim.schedule(kSecond, [&] { fired = 2; });
  a.cancel();
  EXPECT_FALSE(a.pending());
  EXPECT_TRUE(b.pending());
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(EventHandleLifetime, SelfCancelDuringCallbackIsNoop) {
  // The slot is released before the callback runs, so a handle reports
  // !pending() inside its own callback and self-cancel is harmless.
  Simulator sim;
  bool fired = false;
  EventHandle h;
  h = sim.schedule(kSecond, [&] {
    fired = true;
    EXPECT_FALSE(h.pending());
    h.cancel();
  });
  sim.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.executed_events(), 1u);
}

TEST(Simulator, CompactionKeepsOrderUnderMassCancellation) {
  Simulator sim;
  std::vector<int> order;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 10000; ++i) {
    handles.push_back(
        sim.schedule((i + 1) * kMillisecond, [&order, i] { order.push_back(i); }));
  }
  for (int i = 0; i < 10000; ++i) {
    if (i % 10 != 3) handles[i].cancel();  // 90% dead => queue compaction
  }
  EXPECT_EQ(sim.pending_events(), 1000u);
  sim.run();
  ASSERT_EQ(order.size(), 1000u);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
  EXPECT_EQ(sim.executed_events(), 1000u);
}

}  // namespace
}  // namespace cloudburst::des
