// Tests for the discrete-event simulation kernel: deterministic ordering,
// cancellation, bounded runs.
#include <gtest/gtest.h>

#include <vector>

#include "des/simulator.hpp"

namespace cloudburst::des {
namespace {

TEST(SimTime, Conversions) {
  EXPECT_EQ(from_seconds(1.0), kSecond);
  EXPECT_EQ(from_seconds(0.001), kMillisecond);
  EXPECT_DOUBLE_EQ(to_seconds(kSecond), 1.0);
  EXPECT_EQ(from_seconds(1.5e-9), 2);  // rounds to nearest ns
}

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), kSimStart);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(3 * kSecond, [&] { order.push_back(3); });
  sim.schedule(1 * kSecond, [&] { order.push_back(1); });
  sim.schedule(2 * kSecond, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 3 * kSecond);
}

TEST(Simulator, TiesBreakByInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule(kSecond, [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, ClockAdvancesDuringCallbacks) {
  Simulator sim;
  SimTime seen = -1;
  sim.schedule(5 * kMillisecond, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, 5 * kMillisecond);
}

TEST(Simulator, EventsMayScheduleMoreEvents) {
  Simulator sim;
  int hops = 0;
  std::function<void()> hop = [&] {
    if (++hops < 10) sim.schedule(kMillisecond, hop);
  };
  sim.schedule(0, hop);
  sim.run();
  EXPECT_EQ(hops, 10);
  EXPECT_EQ(sim.now(), 9 * kMillisecond);
}

TEST(Simulator, NegativeDelayThrows) {
  Simulator sim;
  EXPECT_THROW(sim.schedule(-1, [] {}), std::invalid_argument);
}

TEST(Simulator, ScheduleAtPastThrows) {
  Simulator sim;
  sim.schedule(kSecond, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(0, [] {}), std::invalid_argument);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  auto handle = sim.schedule(kSecond, [&] { ran = true; });
  EXPECT_TRUE(handle.pending());
  handle.cancel();
  EXPECT_FALSE(handle.pending());
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, CancelAfterFireIsNoop) {
  Simulator sim;
  auto handle = sim.schedule(0, [] {});
  sim.run();
  EXPECT_FALSE(handle.pending());
  handle.cancel();  // must not crash or affect anything
}

TEST(Simulator, DefaultHandleIsNotPending) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  h.cancel();  // harmless
}

TEST(Simulator, StepExecutesExactlyOne) {
  Simulator sim;
  int count = 0;
  sim.schedule(1, [&] { ++count; });
  sim.schedule(2, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(1 * kSecond, [&] { order.push_back(1); });
  sim.schedule(3 * kSecond, [&] { order.push_back(3); });
  sim.run_until(2 * kSecond);
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(sim.now(), 2 * kSecond);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(Simulator, RunUntilWithEmptyQueueKeepsClock) {
  Simulator sim;
  sim.schedule(kSecond, [] {});
  sim.run();
  EXPECT_EQ(sim.run_until(10 * kSecond), kSecond);
}

TEST(Simulator, ExecutedEventsCountsOnlyFired) {
  Simulator sim;
  auto h = sim.schedule(1, [] {});
  sim.schedule(2, [] {});
  h.cancel();
  sim.run();
  EXPECT_EQ(sim.executed_events(), 1u);
}

TEST(Simulator, ManyEventsStressOrdering) {
  Simulator sim;
  SimTime last = -1;
  bool monotone = true;
  for (int i = 0; i < 10000; ++i) {
    // Deterministic pseudo-shuffled times.
    const SimTime t = ((i * 7919) % 1000) * kMillisecond;
    sim.schedule_at(t, [&, t] {
      if (t < last) monotone = false;
      last = t;
    });
  }
  sim.run();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(sim.executed_events(), 10000u);
}

}  // namespace
}  // namespace cloudburst::des
