// Tests for the flow-level network: latency, max-min fair sharing (equal
// split, bottleneck isolation, per-flow caps, water-filling), routing, and
// cancellation.
#include <gtest/gtest.h>

#include <cmath>

#include "des/simulator.hpp"
#include "net/network.hpp"

namespace cloudburst::net {
namespace {

using des::from_seconds;
using des::kSecond;
using des::Simulator;

/// A two-endpoint topology with one shared link of `bw` bytes/sec.
struct SingleLink {
  Simulator sim;
  Network net{sim};
  EndpointId a, b;
  LinkId link;

  explicit SingleLink(double bw, des::SimDuration latency = 0) {
    const SiteId sa = net.add_site("A");
    const SiteId sb = net.add_site("B");
    link = net.add_link("ab", bw, latency);
    a = net.add_endpoint("a", sa);
    b = net.add_endpoint("b", sb);
    net.set_route_symmetric(sa, sb, {link});
  }
};

TEST(Network, SingleFlowTransferTime) {
  SingleLink topo(1e6);  // 1 MB/s
  double done_at = -1;
  topo.net.start_flow(topo.a, topo.b, 2'000'000, 0,
                      [&] { done_at = des::to_seconds(topo.sim.now()); });
  topo.sim.run();
  EXPECT_NEAR(done_at, 2.0, 1e-6);
}

TEST(Network, LatencyAddsToTransferTime) {
  SingleLink topo(1e6, from_seconds(0.5));
  double done_at = -1;
  topo.net.start_flow(topo.a, topo.b, 1'000'000, 0,
                      [&] { done_at = des::to_seconds(topo.sim.now()); });
  topo.sim.run();
  EXPECT_NEAR(done_at, 1.5, 1e-6);
}

TEST(Network, ZeroByteFlowTakesOnlyLatency) {
  SingleLink topo(1e6, from_seconds(0.25));
  double done_at = -1;
  topo.net.start_flow(topo.a, topo.b, 0, 0,
                      [&] { done_at = des::to_seconds(topo.sim.now()); });
  topo.sim.run();
  EXPECT_NEAR(done_at, 0.25, 1e-6);
}

TEST(Network, TwoFlowsShareFairly) {
  SingleLink topo(1e6);
  double done1 = -1, done2 = -1;
  topo.net.start_flow(topo.a, topo.b, 1'000'000, 0,
                      [&] { done1 = des::to_seconds(topo.sim.now()); });
  topo.net.start_flow(topo.a, topo.b, 1'000'000, 0,
                      [&] { done2 = des::to_seconds(topo.sim.now()); });
  topo.sim.run();
  // Both drain at 0.5 MB/s -> 2s each.
  EXPECT_NEAR(done1, 2.0, 1e-6);
  EXPECT_NEAR(done2, 2.0, 1e-6);
}

TEST(Network, ShortFlowFinishesThenLongFlowSpeedsUp) {
  SingleLink topo(1e6);
  double done_small = -1, done_big = -1;
  topo.net.start_flow(topo.a, topo.b, 500'000, 0,
                      [&] { done_small = des::to_seconds(topo.sim.now()); });
  topo.net.start_flow(topo.a, topo.b, 1'500'000, 0,
                      [&] { done_big = des::to_seconds(topo.sim.now()); });
  topo.sim.run();
  // Shared until t=1 (each moved 0.5MB); big then runs alone: 1MB more at
  // full rate -> finishes at t=2.
  EXPECT_NEAR(done_small, 1.0, 1e-5);
  EXPECT_NEAR(done_big, 2.0, 1e-5);
}

TEST(Network, PerFlowRateCapIsHonored) {
  SingleLink topo(10e6);
  double done_at = -1;
  topo.net.start_flow(topo.a, topo.b, 1'000'000, /*cap=*/1e6,
                      [&] { done_at = des::to_seconds(topo.sim.now()); });
  topo.sim.run();
  EXPECT_NEAR(done_at, 1.0, 1e-6);  // capped at 1 MB/s despite a 10 MB/s link
}

TEST(Network, CappedFlowLeavesBandwidthToOthers) {
  SingleLink topo(3e6);
  double done_capped = -1, done_free = -1;
  topo.net.start_flow(topo.a, topo.b, 1'000'000, /*cap=*/1e6,
                      [&] { done_capped = des::to_seconds(topo.sim.now()); });
  topo.net.start_flow(topo.a, topo.b, 2'000'000, 0,
                      [&] { done_free = des::to_seconds(topo.sim.now()); });
  topo.sim.run();
  // Water-filling: capped flow gets 1 MB/s, the other gets the residual 2.
  EXPECT_NEAR(done_capped, 1.0, 1e-5);
  EXPECT_NEAR(done_free, 1.0, 1e-5);
}

TEST(Network, FlowRateIntrospection) {
  SingleLink topo(1e6);
  const FlowId f1 = topo.net.start_flow(topo.a, topo.b, 10'000'000, 0, nullptr);
  topo.sim.run_until(from_seconds(0.1));
  EXPECT_NEAR(topo.net.flow_rate(f1), 1e6, 1.0);
  const FlowId f2 = topo.net.start_flow(topo.a, topo.b, 10'000'000, 0, nullptr);
  topo.sim.run_until(from_seconds(0.2));
  EXPECT_NEAR(topo.net.flow_rate(f1), 0.5e6, 1.0);
  EXPECT_NEAR(topo.net.flow_rate(f2), 0.5e6, 1.0);
}

TEST(Network, CancelFlowReleasesBandwidth) {
  SingleLink topo(1e6);
  double done_at = -1;
  const FlowId victim = topo.net.start_flow(topo.a, topo.b, 10'000'000, 0, [] {
    FAIL() << "cancelled flow must not complete";
  });
  topo.net.start_flow(topo.a, topo.b, 1'000'000, 0,
                      [&] { done_at = des::to_seconds(topo.sim.now()); });
  topo.sim.schedule(from_seconds(0.5), [&] { topo.net.cancel_flow(victim); });
  topo.sim.run();
  // Shared for 0.5s (0.25MB moved), then full rate for the remaining 0.75MB.
  EXPECT_NEAR(done_at, 1.25, 1e-5);
}

TEST(Network, LoopbackFlowIsInstant) {
  SingleLink topo(1e6);
  double done_at = -1;
  topo.net.start_flow(topo.a, topo.a, 50'000'000, 0,
                      [&] { done_at = des::to_seconds(topo.sim.now()); });
  topo.sim.run();
  EXPECT_NEAR(done_at, 0.0, 1e-3);
}

TEST(Network, MissingRouteThrows) {
  Simulator sim;
  Network net(sim);
  const SiteId sa = net.add_site("A");
  const SiteId sb = net.add_site("B");
  const EndpointId a = net.add_endpoint("a", sa);
  const EndpointId b = net.add_endpoint("b", sb);
  EXPECT_THROW(net.start_flow(a, b, 100, 0, nullptr), std::runtime_error);
}

TEST(Network, BadLinkParametersThrow) {
  Simulator sim;
  Network net(sim);
  EXPECT_THROW(net.add_link("bad", 0.0, 0), std::invalid_argument);
  EXPECT_THROW(net.add_link("bad", -1.0, 0), std::invalid_argument);
  EXPECT_THROW(net.add_link("bad", 1.0, -5), std::invalid_argument);
}

/// Dumbbell: two senders with private access links into one shared trunk.
struct Dumbbell {
  Simulator sim;
  Network net{sim};
  EndpointId src1, src2, dst;
  LinkId access1, access2, trunk;

  Dumbbell(double a1, double a2, double trunk_bw) {
    const SiteId left = net.add_site("L");
    const SiteId right = net.add_site("R");
    access1 = net.add_link("acc1", a1, 0);
    access2 = net.add_link("acc2", a2, 0);
    trunk = net.add_link("trunk", trunk_bw, 0);
    src1 = net.add_endpoint("s1", left);
    src2 = net.add_endpoint("s2", left);
    dst = net.add_endpoint("d", right);
    net.set_access_path(src1, {access1});
    net.set_access_path(src2, {access2});
    net.set_route_symmetric(left, right, {trunk});
  }
};

TEST(Network, WaterFillingAcrossBottlenecks) {
  // src1 is access-limited to 1 MB/s; src2 can then use the trunk residual
  // (3 - 1 = 2 MB/s) instead of the naive equal split.
  Dumbbell topo(1e6, 10e6, 3e6);
  double done1 = -1, done2 = -1;
  topo.net.start_flow(topo.src1, topo.dst, 1'000'000, 0,
                      [&] { done1 = des::to_seconds(topo.sim.now()); });
  topo.net.start_flow(topo.src2, topo.dst, 2'000'000, 0,
                      [&] { done2 = des::to_seconds(topo.sim.now()); });
  topo.sim.run();
  EXPECT_NEAR(done1, 1.0, 1e-5);
  EXPECT_NEAR(done2, 1.0, 1e-5);
}

TEST(Network, TrunkSharedEquallyWhenAccessIsWide) {
  Dumbbell topo(10e6, 10e6, 2e6);
  double done1 = -1, done2 = -1;
  topo.net.start_flow(topo.src1, topo.dst, 1'000'000, 0,
                      [&] { done1 = des::to_seconds(topo.sim.now()); });
  topo.net.start_flow(topo.src2, topo.dst, 1'000'000, 0,
                      [&] { done2 = des::to_seconds(topo.sim.now()); });
  topo.sim.run();
  EXPECT_NEAR(done1, 1.0, 1e-5);
  EXPECT_NEAR(done2, 1.0, 1e-5);
}

TEST(Network, PathComposition) {
  Dumbbell topo(1e6, 1e6, 1e6);
  const auto p = topo.net.path(topo.src1, topo.dst);
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p[0], topo.access1);
  EXPECT_EQ(p[1], topo.trunk);
}

TEST(Network, PathLatencySumsLinkLatencies) {
  Simulator sim;
  Network net(sim);
  const SiteId sa = net.add_site("A");
  const SiteId sb = net.add_site("B");
  const LinkId l1 = net.add_link("l1", 1e6, from_seconds(0.1));
  const LinkId l2 = net.add_link("l2", 1e6, from_seconds(0.2));
  const EndpointId a = net.add_endpoint("a", sa);
  const EndpointId b = net.add_endpoint("b", sb);
  net.set_access_path(a, {l1});
  net.set_route_symmetric(sa, sb, {l2});
  EXPECT_EQ(net.path_latency(a, b), from_seconds(0.3));
}

TEST(Network, LinkStatsAccumulateBytes) {
  SingleLink topo(1e6);
  topo.net.start_flow(topo.a, topo.b, 500'000, 0, nullptr);
  topo.sim.run();
  EXPECT_NEAR(static_cast<double>(topo.net.link(topo.link).bytes_carried), 500'000, 2.0);
}

class FlowCountSweep : public ::testing::TestWithParam<int> {};

TEST_P(FlowCountSweep, NFlowsEachGetOneNth) {
  const int n = GetParam();
  SingleLink topo(double(n) * 1e6);
  int completed = 0;
  double last = -1;
  for (int i = 0; i < n; ++i) {
    topo.net.start_flow(topo.a, topo.b, 1'000'000, 0, [&] {
      ++completed;
      last = des::to_seconds(topo.sim.now());
    });
  }
  topo.sim.run();
  EXPECT_EQ(completed, n);
  EXPECT_NEAR(last, 1.0, 1e-5);  // all equal shares, all finish together
}

INSTANTIATE_TEST_SUITE_P(Fairness, FlowCountSweep, ::testing::Values(1, 2, 4, 8, 16, 32));

}  // namespace
}  // namespace cloudburst::net
