// Tests for elastic bursting: deadline-driven activation of dormant cloud
// instances, boot latency, billing from activation, and correctness of real
// execution with mid-run scale-out.
#include <gtest/gtest.h>

#include "apps/datagen.hpp"
#include "apps/wordcount.hpp"
#include "common/units.hpp"
#include "cost/cost_model.hpp"
#include "middleware/runtime.hpp"

namespace cloudburst::middleware {
namespace {

using namespace cloudburst::units;
using cluster::kCloudSite;
using cluster::kLocalSite;
using cluster::Platform;
using cluster::PlatformSpec;

/// Rig: small local cluster, large dormant cloud pool, slow jobs.
struct ElasticRig {
  storage::DataLayout layout;
  RunOptions options;

  ElasticRig() {
    storage::LayoutSpec spec;
    spec.total_bytes = MiB(1536);
    spec.num_files = 8;
    spec.chunks_per_file = 3;
    spec.unit_bytes = 64;
    layout = storage::build_layout(spec);
    storage::assign_stores_by_fraction(layout, 0.0, 0, 1);  // all data in S3

    options.profile.name = "elastic-test";
    options.profile.unit_bytes = 64;
    options.profile.bytes_per_second_per_core = MBps(2);
    options.profile.robj_bytes = KiB(64);
    options.reduction_tree = false;
    options.elastic.enabled = true;
    options.elastic.initial_cloud_nodes = 1;
    options.elastic.check_interval_seconds = 2.0;
    options.elastic.boot_seconds = 10.0;
    options.elastic.activation_step = 2;
  }

  RunResult run(double deadline, unsigned local_cores = 8, unsigned cloud_cores = 16) {
    options.elastic.deadline_seconds = deadline;
    Platform platform(PlatformSpec::paper_testbed(local_cores, cloud_cores));
    return run_distributed(platform, layout, options);
  }
};

TEST(Elastic, LooseDeadlineBootsNothing) {
  ElasticRig rig;
  const auto result = rig.run(/*deadline=*/1e6);
  // One initial cloud instance must be enough for an infinite deadline.
  EXPECT_EQ(result.elastic_activations, 0u);
  EXPECT_EQ(result.cloud_instance_starts.size(), 1u);
}

TEST(Elastic, TightDeadlineScalesOut) {
  ElasticRig rig;
  const auto loose = rig.run(1e6);
  const auto tight = rig.run(0.3 * loose.total_time);
  EXPECT_GT(tight.elastic_activations, 0u);
  EXPECT_LT(tight.total_time, loose.total_time);
  EXPECT_EQ(tight.cloud_instance_starts.size(), 1u + tight.elastic_activations);
}

TEST(Elastic, TighterDeadlineBootsMore) {
  ElasticRig rig;
  const auto loose = rig.run(1e6);
  const auto medium = rig.run(0.6 * loose.total_time);
  const auto tight = rig.run(0.2 * loose.total_time);
  EXPECT_GE(tight.elastic_activations, medium.elastic_activations);
  EXPECT_LE(tight.total_time, medium.total_time + 1e-9);
}

TEST(Elastic, ActivationsRespectBootDelay) {
  ElasticRig rig;
  rig.options.elastic.boot_seconds = 25.0;
  const auto result = rig.run(1.0);  // impossible deadline: scale hard
  EXPECT_GT(result.elastic_activations, 0u);
  for (std::size_t i = 1; i < result.cloud_instance_starts.size(); ++i) {
    const double start = result.cloud_instance_starts[i];
    if (start > 0.0) {
      // Booted instances come up no earlier than interval + boot.
      EXPECT_GE(start, rig.options.elastic.check_interval_seconds +
                           rig.options.elastic.boot_seconds - 1e-9);
    }
  }
}

TEST(Elastic, BillingStartsAtActivation) {
  ElasticRig rig;
  const auto loose = rig.run(1e6);
  const auto tight = rig.run(0.3 * loose.total_time);
  // Price both with per-instance durations: the late instances are billed
  // less than run-length hours would imply... at this scale everything is
  // under an hour, so billed hours == instance count.
  cost::CostInputs inputs;
  inputs.run_seconds = tight.total_time;
  inputs.cloud_instances = static_cast<std::uint32_t>(tight.cloud_instance_starts.size());
  for (double s : tight.cloud_instance_starts) {
    inputs.instance_seconds.push_back(tight.total_time - s);
  }
  const auto report = cost::price(inputs, cost::CloudPricing::aws_2011());
  EXPECT_DOUBLE_EQ(report.instance_hours,
                   static_cast<double>(tight.cloud_instance_starts.size()));
}

TEST(Elastic, RealExecutionStaysCorrectUnderScaleOut) {
  apps::WordGenSpec wspec;
  wspec.count = 24000;
  wspec.vocabulary = 61;
  wspec.seed = 99;
  const auto data = apps::generate_words(wspec);
  apps::WordCountTask task;

  std::unordered_map<std::uint64_t, double> ref;
  for (std::size_t i = 0; i < data.units(); ++i) {
    apps::WordRecord w;
    std::memcpy(&w, data.unit(i), sizeof w);
    ref[w.word_id] += 1.0;
  }

  Platform platform(PlatformSpec::paper_testbed(8, 16));
  storage::DataLayout layout =
      storage::build_layout_for_units(data.units(), data.unit_bytes(), 6, 4);
  storage::assign_stores_by_fraction(layout, 0.0, platform.local_store_id(),
                                     platform.cloud_store_id());

  RunOptions options;
  options.profile.unit_bytes = data.unit_bytes();
  options.profile.bytes_per_second_per_core = MBps(0.05);
  options.profile.per_job_overhead_seconds = 0.5;
  options.profile.robj_bytes = 0;
  options.reduction_tree = false;
  options.task = &task;
  options.dataset = &data;
  options.elastic.enabled = true;
  options.elastic.initial_cloud_nodes = 1;
  options.elastic.deadline_seconds = 0.5;  // unreachable: scale all the way out
  options.elastic.check_interval_seconds = 0.5;
  options.elastic.boot_seconds = 1.0;
  options.elastic.activation_step = 3;

  const auto result = run_distributed(platform, layout, options);
  EXPECT_GT(result.elastic_activations, 0u);
  ASSERT_NE(result.robj, nullptr);
  const auto& got = dynamic_cast<const api::HashCountRobj&>(*result.robj);
  ASSERT_EQ(got.distinct_keys(), ref.size());
  for (const auto& [k, v] : ref) EXPECT_DOUBLE_EQ(got.get(k), v);
}

TEST(Elastic, RejectsInvalidConfigs) {
  ElasticRig rig;
  rig.options.reduction_tree = true;
  EXPECT_THROW(rig.run(100.0), std::invalid_argument);

  ElasticRig rig2;
  rig2.options.elastic.initial_cloud_nodes = 0;
  EXPECT_THROW(rig2.run(100.0), std::invalid_argument);

  ElasticRig rig3;
  rig3.options.elastic.check_interval_seconds = 0.0;
  EXPECT_THROW(rig3.run(100.0), std::invalid_argument);
}

}  // namespace
}  // namespace cloudburst::middleware
