// Tests for the real shared-memory engines: the Generalized Reduction engine
// and the Map-Reduce baseline. Correctness is checked against serial
// references, across thread counts and cache-group sizes, with and without
// the combiner, and the GR-vs-MR memory claim is verified quantitatively.
#include <gtest/gtest.h>

#include <numeric>

#include "api/combiners.hpp"
#include "apps/datagen.hpp"
#include "apps/wordcount.hpp"
#include "engine/gr_engine.hpp"
#include "engine/mr_engine.hpp"

namespace cloudburst::engine {
namespace {

using api::HashCountRobj;
using apps::WordCountTask;

MemoryDataset small_words(std::size_t n = 20000, std::uint64_t seed = 3) {
  apps::WordGenSpec spec;
  spec.count = n;
  spec.vocabulary = 257;
  spec.seed = seed;
  return apps::generate_words(spec);
}

/// Serial reference word counts.
std::unordered_map<std::uint64_t, double> reference_counts(const MemoryDataset& data) {
  std::unordered_map<std::uint64_t, double> counts;
  for (std::size_t i = 0; i < data.units(); ++i) {
    apps::WordRecord w;
    std::memcpy(&w, data.unit(i), sizeof w);
    counts[w.word_id] += 1.0;
  }
  return counts;
}

TEST(MemoryDataset, FromRecords) {
  std::vector<std::uint64_t> recs = {1, 2, 3};
  const auto ds = MemoryDataset::from_records(recs);
  EXPECT_EQ(ds.units(), 3u);
  EXPECT_EQ(ds.unit_bytes(), 8u);
  std::uint64_t v;
  std::memcpy(&v, ds.unit(1), 8);
  EXPECT_EQ(v, 2u);
}

TEST(MemoryDataset, RejectsMisalignedBuffer) {
  EXPECT_THROW(MemoryDataset(std::vector<std::byte>(10), 3), std::invalid_argument);
  EXPECT_THROW(MemoryDataset(std::vector<std::byte>(10), 0), std::invalid_argument);
}

TEST(MemoryDataset, UnitsPerGroupNeverZero) {
  std::vector<std::uint64_t> recs(4);
  const auto ds = MemoryDataset::from_records(recs);
  EXPECT_EQ(ds.units_per_group(1), 1u);  // cache smaller than one unit
  EXPECT_EQ(ds.units_per_group(64), 8u);
}

TEST(GrEngine, MatchesSerialReference) {
  const auto data = small_words();
  const auto ref = reference_counts(data);
  WordCountTask task;
  GrEngineOptions options;
  options.threads = 4;
  const auto robj = gr_run(task, data, options);
  const auto& counts = dynamic_cast<const HashCountRobj&>(*robj);
  EXPECT_EQ(counts.distinct_keys(), ref.size());
  for (const auto& [k, v] : ref) EXPECT_DOUBLE_EQ(counts.get(k), v);
}

TEST(GrEngine, EmptyDatasetYieldsIdentity) {
  const MemoryDataset data(std::vector<std::byte>{}, 8);
  WordCountTask task;
  GrEngineOptions options;
  const auto robj = gr_run(task, data, options);
  EXPECT_EQ(dynamic_cast<const HashCountRobj&>(*robj).distinct_keys(), 0u);
}

TEST(GrEngine, RejectsBadOptions) {
  const auto data = small_words(100);
  WordCountTask task;
  GrEngineOptions options;
  options.threads = 0;
  EXPECT_THROW(gr_run(task, data, options), std::invalid_argument);
}

TEST(GrEngine, RejectsUnitSizeMismatch) {
  std::vector<std::uint32_t> recs(8);  // 4-byte units, task expects 8
  const auto data = MemoryDataset::from_records(recs);
  WordCountTask task;
  EXPECT_THROW(gr_run(task, data, GrEngineOptions{}), std::invalid_argument);
}

TEST(GrEngine, StatsAreFilled) {
  const auto data = small_words(10000);
  WordCountTask task;
  GrEngineOptions options;
  options.threads = 2;
  options.cache_bytes = 1024;  // 128 units per group -> ~79 groups
  GrRunStats stats;
  gr_run(task, data, options, &stats);
  EXPECT_EQ(stats.groups_processed, (10000 + 127) / 128);
  EXPECT_EQ(stats.robj_merges, 1u);
  EXPECT_GT(stats.robj_bytes, 0u);
  EXPECT_GT(stats.wall_seconds, 0.0);
}

class GrThreadSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(GrThreadSweep, ResultIndependentOfThreadsAndGrouping) {
  const auto [threads, cache_kb] = GetParam();
  const auto data = small_words();
  const auto ref = reference_counts(data);
  WordCountTask task;
  GrEngineOptions options;
  options.threads = static_cast<std::size_t>(threads);
  options.cache_bytes = static_cast<std::size_t>(cache_kb) * 1024;
  const auto robj = gr_run(task, data, options);
  const auto& counts = dynamic_cast<const HashCountRobj&>(*robj);
  ASSERT_EQ(counts.distinct_keys(), ref.size());
  for (const auto& [k, v] : ref) EXPECT_DOUBLE_EQ(counts.get(k), v);
}

INSTANTIATE_TEST_SUITE_P(Sweep, GrThreadSweep,
                         ::testing::Combine(::testing::Values(1, 2, 3, 8),
                                            ::testing::Values(1, 16, 1024)));

TEST(MrEngine, MatchesSerialReference) {
  const auto data = small_words();
  const auto ref = reference_counts(data);
  WordCountTask task;
  MrEngineOptions options;
  options.threads = 4;
  const auto out = mr_run(task, data, options);
  ASSERT_EQ(out.size(), ref.size());
  for (const auto& kv : out) {
    EXPECT_DOUBLE_EQ(kv.value.at(0), ref.at(kv.key)) << "key " << kv.key;
  }
}

TEST(MrEngine, OutputSortedByKey) {
  const auto data = small_words();
  WordCountTask task;
  const auto out = mr_run(task, data, MrEngineOptions{});
  for (std::size_t i = 1; i < out.size(); ++i) EXPECT_LT(out[i - 1].key, out[i].key);
}

TEST(MrEngine, CombinerDoesNotChangeResult) {
  const auto data = small_words();
  WordCountTask task;
  MrEngineOptions plain;
  plain.threads = 4;
  MrEngineOptions combined = plain;
  combined.use_combiner = true;
  combined.combine_flush_pairs = 512;
  EXPECT_EQ(mr_run(task, data, plain), mr_run(task, data, combined));
}

TEST(MrEngine, CombinerShrinksShuffleVolume) {
  const auto data = small_words(50000);
  WordCountTask task;
  MrRunStats plain_stats, combined_stats;
  MrEngineOptions plain;
  plain.threads = 2;
  MrEngineOptions combined = plain;
  combined.use_combiner = true;
  combined.combine_flush_pairs = 1024;
  mr_run(task, data, plain, &plain_stats);
  mr_run(task, data, combined, &combined_stats);
  EXPECT_EQ(plain_stats.pairs_shuffled, 50000u);
  // 257-word vocabulary: the combiner collapses nearly everything.
  EXPECT_LT(combined_stats.pairs_shuffled, plain_stats.pairs_shuffled / 10);
  EXPECT_LT(combined_stats.shuffle_bytes, plain_stats.shuffle_bytes / 10);
}

TEST(MrEngine, CombinerBoundsPeakIntermediatePairs) {
  // This is the paper's §III-A argument made measurable: without a combiner
  // the map phase materializes one pair per element.
  const auto data = small_words(50000);
  WordCountTask task;
  MrRunStats plain_stats, combined_stats;
  MrEngineOptions plain;
  plain.threads = 1;
  MrEngineOptions combined = plain;
  combined.use_combiner = true;
  combined.combine_flush_pairs = 1000;
  combined.map_group_units = 500;  // flush granularity: peak <= flush + group
  mr_run(task, data, plain, &plain_stats);
  mr_run(task, data, combined, &combined_stats);
  EXPECT_GE(plain_stats.peak_intermediate_pairs, 50000u);
  EXPECT_LE(combined_stats.peak_intermediate_pairs, 3000u);
}

TEST(MrEngine, StatsPhaseTimesSumToWall) {
  const auto data = small_words(20000);
  WordCountTask task;
  MrRunStats stats;
  MrEngineOptions options;
  options.threads = 2;
  mr_run(task, data, options, &stats);
  EXPECT_NEAR(stats.map_seconds + stats.shuffle_seconds + stats.reduce_seconds,
              stats.wall_seconds, 1e-3);
  EXPECT_EQ(stats.pairs_emitted, 20000u);
}

TEST(MrEngine, EmptyDataset) {
  const MemoryDataset data(std::vector<std::byte>{}, 8);
  WordCountTask task;
  EXPECT_TRUE(mr_run(task, data, MrEngineOptions{}).empty());
}

TEST(MrEngine, RejectsBadOptions) {
  const auto data = small_words(100);
  WordCountTask task;
  MrEngineOptions options;
  options.threads = 0;
  EXPECT_THROW(mr_run(task, data, options), std::invalid_argument);
}

class MrConfigSweep
    : public ::testing::TestWithParam<std::tuple<int, bool, int>> {};

TEST_P(MrConfigSweep, ResultInvariantUnderConfiguration) {
  const auto [threads, use_combiner, partitions] = GetParam();
  const auto data = small_words(8000, 11);
  const auto ref = reference_counts(data);
  WordCountTask task;
  MrEngineOptions options;
  options.threads = static_cast<std::size_t>(threads);
  options.use_combiner = use_combiner;
  options.reduce_partitions = static_cast<std::size_t>(partitions);
  options.combine_flush_pairs = 256;
  const auto out = mr_run(task, data, options);
  ASSERT_EQ(out.size(), ref.size());
  for (const auto& kv : out) EXPECT_DOUBLE_EQ(kv.value.at(0), ref.at(kv.key));
}

INSTANTIATE_TEST_SUITE_P(Sweep, MrConfigSweep,
                         ::testing::Combine(::testing::Values(1, 2, 4),
                                            ::testing::Bool(),
                                            ::testing::Values(1, 3, 8)));

TEST(Engines, GrAndMrAgree) {
  const auto data = small_words(30000, 17);
  WordCountTask task;
  GrEngineOptions gr_options;
  gr_options.threads = 4;
  const auto robj = gr_run(task, data, gr_options);
  const auto& gr_counts = dynamic_cast<const HashCountRobj&>(*robj);

  MrEngineOptions mr_options;
  mr_options.threads = 4;
  mr_options.use_combiner = true;
  const auto mr_out = mr_run(task, data, mr_options);

  ASSERT_EQ(mr_out.size(), gr_counts.distinct_keys());
  for (const auto& kv : mr_out) EXPECT_DOUBLE_EQ(gr_counts.get(kv.key), kv.value.at(0));
}

}  // namespace
}  // namespace cloudburst::engine
