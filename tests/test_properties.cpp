// Cross-cutting property tests: randomized configurations of the whole
// middleware must preserve global invariants — every chunk fetched and
// processed exactly once, store statistics consistent with the scheduler's
// accounting, timing decomposition physically sensible — regardless of
// topology, skew, policies, or application profile.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "middleware/runtime.hpp"
#include "trace/trace.hpp"

namespace cloudburst::middleware {
namespace {

using namespace cloudburst::units;
using cluster::kCloudSite;
using cluster::kLocalSite;
using cluster::Platform;
using cluster::PlatformSpec;

/// One randomized scenario drawn deterministically from a seed.
struct Scenario {
  PlatformSpec spec;
  RunOptions options;
  storage::LayoutSpec layout_spec;
  double fraction;

  explicit Scenario(std::uint64_t seed) {
    Rng rng(seed);
    const auto local_cores = static_cast<unsigned>(8 * rng.uniform_int(1, 4));
    const auto cloud_cores = static_cast<unsigned>(2 * rng.uniform_int(1, 12));
    spec = PlatformSpec::paper_testbed(local_cores, cloud_cores);
    spec.wan_bandwidth = MBps(rng.uniform(40.0, 400.0));
    spec.store(cluster::kLocalSite).front_bandwidth = MBps(rng.uniform(400.0, 2000.0));

    layout_spec.total_bytes = MiB(static_cast<std::uint64_t>(rng.uniform_int(256, 4096)));
    layout_spec.num_files = static_cast<std::uint32_t>(rng.uniform_int(2, 16));
    layout_spec.chunks_per_file = static_cast<std::uint32_t>(rng.uniform_int(1, 6));
    layout_spec.unit_bytes = 64;
    fraction = rng.next_double();

    options.profile.unit_bytes = 64;
    options.profile.bytes_per_second_per_core = MBps(rng.uniform(1.0, 80.0));
    options.profile.robj_bytes = KiB(static_cast<std::uint64_t>(rng.uniform_int(1, 4096)));
    options.policy.batch_size = static_cast<std::uint32_t>(rng.uniform_int(1, 8));
    options.policy.steal_batch_size = static_cast<std::uint32_t>(rng.uniform_int(1, 4));
    options.policy.allow_stealing = rng.bernoulli(0.8);
    options.policy.consecutive_batches = rng.bernoulli(0.7);
    options.retrieval_streams = static_cast<unsigned>(rng.uniform_int(1, 16));
    options.pipeline_depth = static_cast<unsigned>(rng.uniform_int(1, 3));
    options.reduction_tree = rng.bernoulli(0.5);
  }
};

class RandomScenarioSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomScenarioSweep, GlobalInvariantsHold) {
  const Scenario scenario(GetParam());
  Platform platform(scenario.spec);
  storage::DataLayout layout = storage::build_layout(scenario.layout_spec);
  storage::assign_stores_by_fraction(layout, scenario.fraction, platform.local_store_id(),
                                     platform.cloud_store_id());

  trace::Tracer tracer;
  RunOptions options = scenario.options;
  options.tracer = &tracer;
  const RunResult result = run_distributed(platform, layout, options);

  const auto total_chunks = static_cast<std::uint32_t>(layout.chunks().size());

  // (1) Every chunk assigned, fetched, and processed exactly once.
  EXPECT_EQ(result.total_jobs(), total_chunks);
  std::map<std::uint64_t, int> processed;
  for (const auto& e : tracer.events()) {
    if (e.kind == trace::EventKind::ProcessEnd) ++processed[e.a];
  }
  EXPECT_EQ(processed.size(), total_chunks);
  for (const auto& [c, n] : processed) EXPECT_EQ(n, 1) << "chunk " << c;

  // (2) Store statistics match the dataset: all bytes served once.
  const auto& local_stats = platform.store(platform.local_store_id()).stats();
  const auto& cloud_stats = platform.store(platform.cloud_store_id()).stats();
  EXPECT_EQ(local_stats.bytes_served, layout.bytes_on(platform.local_store_id()));
  EXPECT_EQ(cloud_stats.bytes_served, layout.bytes_on(platform.cloud_store_id()));
  EXPECT_EQ(local_stats.requests + cloud_stats.requests, total_chunks);

  // (3) Scheduler accounting matches the layout's bytes.
  std::uint64_t accounted = 0;
  for (cluster::ClusterId side : {kLocalSite, kCloudSite}) {
    const auto& c = result.side(side);
    accounted += c.bytes_local + c.bytes_stolen;
  }
  EXPECT_EQ(accounted, layout.total_bytes());

  // (4) Physically sensible timing: nothing negative, nodes end before the
  // run does, total time positive.
  EXPECT_GT(result.total_time, 0.0);
  for (const auto& n : result.nodes) {
    EXPECT_GE(n.processing, 0.0);
    EXPECT_GE(n.retrieval, 0.0);
    EXPECT_GE(n.wait, 0.0);
    EXPECT_LE(n.finish_time, result.total_time + 1e-9);
  }

  // (5) The network fully drained (no stuck flows).
  EXPECT_EQ(platform.network().active_flows(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomScenarioSweep,
                         ::testing::Range<std::uint64_t>(1, 25));

class RandomPolicyDrain : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomPolicyDrain, JobPoolAlwaysDrainsForEligibleRequesters) {
  // Whatever the policy knobs, alternating requesters with stealing enabled
  // must drain the pool with no duplicates.
  Rng rng(GetParam());
  storage::LayoutSpec lspec;
  lspec.total_bytes = MiB(64);
  lspec.num_files = static_cast<std::uint32_t>(rng.uniform_int(1, 12));
  lspec.chunks_per_file = static_cast<std::uint32_t>(rng.uniform_int(1, 8));
  lspec.unit_bytes = 64;
  storage::DataLayout layout = storage::build_layout(lspec);
  storage::assign_stores_by_fraction(layout, rng.next_double(), 0, 1);

  SchedulerPolicy policy;
  policy.batch_size = static_cast<std::uint32_t>(rng.uniform_int(1, 6));
  policy.steal_batch_size = static_cast<std::uint32_t>(rng.uniform_int(1, 6));
  policy.steal_reserve = static_cast<std::uint32_t>(rng.uniform_int(0, 6));
  policy.consecutive_batches = rng.bernoulli(0.5);
  policy.remote_selection = static_cast<RemoteSelection>(rng.uniform_int(0, 2));
  policy.random_seed = GetParam();

  JobPool pool(layout, policy);
  std::set<storage::ChunkId> seen;
  storage::StoreId who = 0;
  int stall_guard = 0;
  while (!pool.empty() && stall_guard < 100000) {
    const auto batch = pool.take_batch(who, policy.batch_size);
    who = 1 - who;
    if (batch.empty()) {
      ++stall_guard;
      continue;
    }
    stall_guard = 0;
    for (storage::ChunkId c : batch) {
      EXPECT_TRUE(seen.insert(c).second) << "duplicate chunk " << c;
    }
  }
  EXPECT_TRUE(pool.empty()) << "pool stalled with " << pool.remaining() << " left";
  EXPECT_EQ(seen.size(), layout.chunks().size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPolicyDrain,
                         ::testing::Range<std::uint64_t>(100, 130));

}  // namespace
}  // namespace cloudburst::middleware
