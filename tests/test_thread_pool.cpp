// Tests for the thread pool and blocking queue used by the real engines.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "common/blocking_queue.hpp"
#include "common/thread_pool.hpp"

namespace cloudburst {
namespace {

TEST(BlockingQueue, PushPopFifo) {
  BlockingQueue<int> q;
  q.push(1);
  q.push(2);
  q.push(3);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
}

TEST(BlockingQueue, TryPopOnEmpty) {
  BlockingQueue<int> q;
  EXPECT_FALSE(q.try_pop().has_value());
  q.push(5);
  EXPECT_EQ(q.try_pop(), 5);
}

TEST(BlockingQueue, CloseDrainsBacklogThenSignalsEnd) {
  BlockingQueue<int> q;
  q.push(1);
  q.close();
  EXPECT_EQ(q.pop(), 1);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BlockingQueue, PushAfterCloseIsRejected) {
  BlockingQueue<int> q;
  q.close();
  EXPECT_FALSE(q.push(1));
  EXPECT_EQ(q.size(), 0u);
}

TEST(BlockingQueue, CloseWakesBlockedConsumer) {
  BlockingQueue<int> q;
  std::thread consumer([&] { EXPECT_FALSE(q.pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  consumer.join();
}

TEST(BlockingQueue, ManyProducersManyConsumers) {
  BlockingQueue<int> q;
  std::atomic<long long> sum{0};
  std::atomic<int> consumed{0};
  const int per_producer = 1000, producers = 4, consumers = 4;

  std::vector<std::thread> threads;
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < per_producer; ++i) q.push(p * per_producer + i);
    });
  }
  for (int c = 0; c < consumers; ++c) {
    threads.emplace_back([&] {
      while (auto v = q.pop()) {
        sum += *v;
        ++consumed;
      }
    });
  }
  for (int p = 0; p < producers; ++p) threads[p].join();
  q.close();
  for (int c = 0; c < consumers; ++c) threads[producers + c].join();

  const long long n = producers * per_producer;
  EXPECT_EQ(consumed.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(ThreadPool, RejectsZeroThreads) {
  EXPECT_THROW(ThreadPool(0), std::invalid_argument);
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  auto f = pool.submit_task([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ParallelForVisitsEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(1000);
  pool.parallel_for(1000, 16, [&](std::size_t i) { ++visits[i]; });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  pool.parallel_for(0, 1, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPool, ParallelForFewerItemsThanThreads) {
  ThreadPool pool(8);
  std::atomic<int> count{0};
  pool.parallel_for(3, 1, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, RunOnAllUsesDistinctWorkerIndices) {
  ThreadPool pool(4);
  std::mutex m;
  std::set<std::size_t> indices;
  pool.run_on_all(4, [&](std::size_t i) {
    std::lock_guard<std::mutex> lock(m);
    indices.insert(i);
  });
  EXPECT_EQ(indices, (std::set<std::size_t>{0, 1, 2, 3}));
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) pool.submit([&] { ++done; });
  }
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPool, ParallelSumMatchesSerial) {
  ThreadPool pool(4);
  std::vector<long long> data(10000);
  std::iota(data.begin(), data.end(), 0);
  std::atomic<long long> sum{0};
  pool.parallel_for(data.size(), 64, [&](std::size_t i) { sum += data[i]; });
  EXPECT_EQ(sum.load(), std::accumulate(data.begin(), data.end(), 0LL));
}

}  // namespace
}  // namespace cloudburst
