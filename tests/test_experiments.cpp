// Tests for the paper experiment harness: configuration tables, dataset
// geometry, determinism, and — most importantly — the qualitative *shape*
// assertions the reproduction must satisfy (slowdown orderings, stealing
// patterns, scaling behavior). These are the regression guards for the
// calibration in apps/experiments.cpp.
#include <gtest/gtest.h>

#include "apps/experiments.hpp"
#include "common/units.hpp"

namespace cloudburst::apps {
namespace {

using namespace cloudburst::units;
using cluster::kCloudSite;
using cluster::kLocalSite;

TEST(EnvConfig, MatchesPaperTable) {
  const auto local = env_config(Env::Local, PaperApp::Knn);
  EXPECT_EQ(local.local_cores, 32u);
  EXPECT_EQ(local.cloud_cores, 0u);
  EXPECT_DOUBLE_EQ(local.local_data_fraction, 1.0);

  const auto cloud_knn = env_config(Env::Cloud, PaperApp::Knn);
  EXPECT_EQ(cloud_knn.cloud_cores, 32u);
  const auto cloud_kmeans = env_config(Env::Cloud, PaperApp::Kmeans);
  EXPECT_EQ(cloud_kmeans.cloud_cores, 44u);  // paper's throughput balancing

  const auto h = env_config(Env::Hybrid3367, PaperApp::PageRank);
  EXPECT_EQ(h.local_cores, 16u);
  EXPECT_EQ(h.cloud_cores, 16u);
  EXPECT_NEAR(h.local_data_fraction, 1.0 / 3.0, 1e-12);
  EXPECT_EQ(env_config(Env::Hybrid1783, PaperApp::Kmeans).cloud_cores, 22u);
}

TEST(PaperLayout, TwelveGiBIn32FilesAnd96Jobs) {
  const auto layout = paper_layout(PaperApp::Knn, 0.5, 0, 1);
  EXPECT_EQ(layout.total_bytes(), GiB(12));
  EXPECT_EQ(layout.files().size(), 32u);
  EXPECT_EQ(layout.chunks().size(), 96u);
  // ~128 MiB chunks.
  EXPECT_NEAR(static_cast<double>(layout.chunk(0).bytes), MiB(128), 2.0);
}

TEST(PaperLayout, FractionControlsStoreSplit) {
  const auto layout = paper_layout(PaperApp::Knn, 1.0 / 6, 0, 1);
  const double frac = static_cast<double>(layout.bytes_on(0)) /
                      static_cast<double>(layout.total_bytes());
  EXPECT_NEAR(frac, 1.0 / 6, 1.0 / 32 + 1e-9);
}

TEST(PaperProfile, CharacterizationsHold) {
  const auto knn = paper_profile(PaperApp::Knn);
  const auto kmeans = paper_profile(PaperApp::Kmeans);
  const auto pagerank = paper_profile(PaperApp::PageRank);
  // knn: low computation (fastest per-byte rate); kmeans: heavy computation
  // (slowest); pagerank: in between with a very large reduction object.
  EXPECT_GT(knn.bytes_per_second_per_core, pagerank.bytes_per_second_per_core);
  EXPECT_GT(pagerank.bytes_per_second_per_core, kmeans.bytes_per_second_per_core);
  EXPECT_GT(pagerank.robj_bytes, 100 * knn.robj_bytes);
  EXPECT_GT(pagerank.robj_bytes, 100 * kmeans.robj_bytes);
}

TEST(RunEnv, IsDeterministic) {
  const auto a = run_env(Env::Hybrid5050, PaperApp::Knn);
  const auto b = run_env(Env::Hybrid5050, PaperApp::Knn);
  EXPECT_DOUBLE_EQ(a.total_time, b.total_time);
}

TEST(RunEnv, ProcessesAll96Jobs) {
  for (Env env : kAllEnvs) {
    const auto result = run_env(env, PaperApp::Knn);
    EXPECT_EQ(result.total_jobs(), 96u) << env_config(env, PaperApp::Knn).name;
  }
}

// --- shape assertions (Figure 3 / Tables I-II) --------------------------------

TEST(Shape, KnnSlowdownGrowsWithSkew) {
  const double base = run_env(Env::Local, PaperApp::Knn).total_time;
  const double s5050 = run_env(Env::Hybrid5050, PaperApp::Knn).total_time / base - 1.0;
  const double s3367 = run_env(Env::Hybrid3367, PaperApp::Knn).total_time / base - 1.0;
  const double s1783 = run_env(Env::Hybrid1783, PaperApp::Knn).total_time / base - 1.0;
  EXPECT_LT(s5050, 0.10);           // paper: 1.7%
  EXPECT_LT(s5050, s3367);          // monotone in skew
  EXPECT_LT(s3367, s1783);
  EXPECT_GT(s1783, 0.30);           // paper: 45.9%
  EXPECT_LT(s1783, 0.60);
}

TEST(Shape, KmeansSlowdownSmallAndFlat) {
  const double base = run_env(Env::Local, PaperApp::Kmeans).total_time;
  double worst = 0.0;
  for (Env env : kHybridEnvs) {
    const double s = run_env(env, PaperApp::Kmeans).total_time / base - 1.0;
    worst = std::max(worst, s);
  }
  // Paper: compute-intensive apps exploit bursting with very little penalty.
  EXPECT_LT(worst, 0.15);
}

TEST(Shape, PagerankSyncExceedsKnnSync) {
  // The large reduction object must show up as extra synchronization time.
  const auto pr = run_env(Env::Hybrid5050, PaperApp::PageRank);
  const auto kn = run_env(Env::Hybrid5050, PaperApp::Knn);
  const double pr_sync =
      pr.side(kLocalSite).sync + pr.side(kCloudSite).sync;
  const double kn_sync =
      kn.side(kLocalSite).sync + kn.side(kCloudSite).sync;
  EXPECT_GT(pr_sync, kn_sync);
}

TEST(Shape, RetrievalGrowsWithSkewOnLocalCluster) {
  // "As the proportion of data increases in S3, the retrieval time on both
  // clusters increases" — dominated by the local side's WAN fetches.
  const auto r50 = run_env(Env::Hybrid5050, PaperApp::Knn);
  const auto r17 = run_env(Env::Hybrid1783, PaperApp::Knn);
  EXPECT_GT(r17.side(kLocalSite).retrieval,
            r50.side(kLocalSite).retrieval);
}

TEST(Shape, TableOneStealingPattern) {
  // Local cluster steals progressively more as data skews to S3; the cloud
  // never steals in the skewed configs.
  const auto r3367 = run_env(Env::Hybrid3367, PaperApp::Knn);
  const auto r1783 = run_env(Env::Hybrid1783, PaperApp::Knn);
  EXPECT_GT(r1783.side(kLocalSite).jobs_stolen,
            r3367.side(kLocalSite).jobs_stolen);
  EXPECT_EQ(r3367.side(kCloudSite).jobs_stolen, 0u);
  EXPECT_EQ(r1783.side(kCloudSite).jobs_stolen, 0u);
}

TEST(Shape, AverageHybridSlowdownNearPaper) {
  double total = 0.0;
  int n = 0;
  for (PaperApp app : {PaperApp::Knn, PaperApp::Kmeans, PaperApp::PageRank}) {
    const double base = run_env(Env::Local, app).total_time;
    for (Env env : kHybridEnvs) {
      total += run_env(env, app).total_time / base - 1.0;
      ++n;
    }
  }
  const double avg = total / n;
  // Paper: 15.55%. Allow a generous band — this guards the overall scale.
  EXPECT_GT(avg, 0.08);
  EXPECT_LT(avg, 0.32);
}

// --- shape assertions (Figure 4) -----------------------------------------------

TEST(Shape, EveryAppScalesWithCores) {
  for (PaperApp app : {PaperApp::Knn, PaperApp::Kmeans, PaperApp::PageRank}) {
    double prev = 0.0;
    for (unsigned cores : {4u, 8u, 16u, 32u}) {
      const double t = run_scalability(app, cores).total_time;
      if (prev > 0.0) {
        EXPECT_LT(t, prev) << to_string(app) << " at " << cores;
      }
      prev = t;
    }
  }
}

TEST(Shape, AverageScalingEfficiencyNearPaper) {
  double total = 0.0;
  int n = 0;
  for (PaperApp app : {PaperApp::Knn, PaperApp::Kmeans, PaperApp::PageRank}) {
    double prev = 0.0;
    for (unsigned cores : {4u, 8u, 16u, 32u}) {
      const double t = run_scalability(app, cores).total_time;
      if (prev > 0.0) {
        total += prev / (2.0 * t);
        ++n;
      }
      prev = t;
    }
  }
  const double avg = total / n;
  // Paper: 81% average per doubling.
  EXPECT_GT(avg, 0.70);
  EXPECT_LT(avg, 0.95);
}

TEST(Shape, KmeansScalesBest) {
  auto avg_efficiency = [](PaperApp app) {
    double total = 0.0;
    int n = 0;
    double prev = 0.0;
    for (unsigned cores : {4u, 8u, 16u, 32u}) {
      const double t = run_scalability(app, cores).total_time;
      if (prev > 0.0) {
        total += prev / (2.0 * t);
        ++n;
      }
      prev = t;
    }
    return total / n;
  };
  const double kmeans = avg_efficiency(PaperApp::Kmeans);
  EXPECT_GT(kmeans, avg_efficiency(PaperApp::Knn));
  EXPECT_GT(kmeans, avg_efficiency(PaperApp::PageRank));
}

TEST(RunScalability, AllDataOnS3) {
  const auto result = run_scalability(PaperApp::Knn, 8);
  // Everything the local cluster processes is stolen; cloud jobs are local.
  EXPECT_EQ(result.side(kLocalSite).jobs_local, 0u);
  EXPECT_GT(result.side(kLocalSite).jobs_stolen, 0u);
  EXPECT_EQ(result.side(kCloudSite).jobs_stolen, 0u);
}

TEST(RunEnv, TweakHookApplies) {
  // Doubling the WAN latency must not speed anything up; the hook is applied.
  double base = 0, tweaked = 0;
  base = run_env(Env::Hybrid1783, PaperApp::Knn).total_time;
  tweaked = run_env(Env::Hybrid1783, PaperApp::Knn,
                    [](cluster::PlatformSpec& spec, middleware::RunOptions&) {
                      spec.wan_bandwidth /= 8.0;
                    })
                .total_time;
  EXPECT_GT(tweaked, base);
}

}  // namespace
}  // namespace cloudburst::apps
