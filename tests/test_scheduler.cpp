// Tests for the head node's JobPool: locality preference, consecutive
// batches, stealing, the minimum-contention heuristic, the endgame steal
// reservation, and exhaustion behavior.
#include <gtest/gtest.h>

#include <set>

#include "common/units.hpp"
#include "middleware/scheduler.hpp"

namespace cloudburst::middleware {
namespace {

using namespace cloudburst::units;
using storage::ChunkId;
using storage::DataLayout;

/// files x chunks layout with the first `local_files` files on store 0 and
/// the rest on store 1.
DataLayout make_layout(std::uint32_t files, std::uint32_t chunks_per_file,
                       std::uint32_t local_files) {
  storage::LayoutSpec spec;
  spec.num_files = files;
  spec.chunks_per_file = chunks_per_file;
  spec.total_bytes = static_cast<std::uint64_t>(files) * chunks_per_file * MiB(1);
  spec.unit_bytes = 64;
  DataLayout layout = storage::build_layout(spec);
  for (const auto& f : layout.files()) {
    layout.move_file(f.id, f.id < local_files ? 0 : 1);
  }
  return layout;
}

TEST(JobPool, InitialAccounting) {
  const auto layout = make_layout(8, 3, 4);
  JobPool pool(layout, SchedulerPolicy{});
  EXPECT_EQ(pool.remaining(), 24u);
  EXPECT_EQ(pool.remaining_on(0), 12u);
  EXPECT_EQ(pool.remaining_on(1), 12u);
  EXPECT_FALSE(pool.empty());
}

TEST(JobPool, PrefersLocalStore) {
  const auto layout = make_layout(8, 3, 4);
  JobPool pool(layout, SchedulerPolicy{});
  const auto batch = pool.take_batch(0, 4);
  ASSERT_EQ(batch.size(), 4u);
  for (ChunkId c : batch) EXPECT_EQ(layout.store_of(c), 0u);
}

TEST(JobPool, ConsecutiveBatchComesFromOneFileInOrder) {
  const auto layout = make_layout(8, 4, 8);
  JobPool pool(layout, SchedulerPolicy{});
  const auto batch = pool.take_batch(0, 4);
  ASSERT_EQ(batch.size(), 4u);
  const auto file = layout.chunk(batch[0]).file;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(layout.chunk(batch[i]).file, file);
    EXPECT_EQ(layout.chunk(batch[i]).index_in_file, i);
  }
}

TEST(JobPool, DrainsEverythingExactlyOnce) {
  const auto layout = make_layout(8, 3, 4);
  JobPool pool(layout, SchedulerPolicy{});
  std::set<ChunkId> seen;
  while (!pool.empty()) {
    for (ChunkId c : pool.take_batch(0, 4)) {
      EXPECT_TRUE(seen.insert(c).second) << "chunk " << c << " assigned twice";
    }
  }
  EXPECT_EQ(seen.size(), 24u);
}

TEST(JobPool, StealsOnlyAfterLocalDrained) {
  const auto layout = make_layout(4, 2, 2);  // 4 local chunks, 4 remote
  SchedulerPolicy policy;
  policy.batch_size = 4;
  JobPool pool(layout, policy);
  auto first = pool.take_batch(0, 4);
  for (ChunkId c : first) EXPECT_EQ(layout.store_of(c), 0u);
  auto second = pool.take_batch(0, 4);
  ASSERT_FALSE(second.empty());
  for (ChunkId c : second) EXPECT_EQ(layout.store_of(c), 1u);
}

TEST(JobPool, StealBatchSizeCapsRemoteGrants) {
  const auto layout = make_layout(4, 2, 0);  // everything remote to store 0
  SchedulerPolicy policy;
  policy.steal_batch_size = 1;
  JobPool pool(layout, policy);
  EXPECT_EQ(pool.take_batch(0, 4).size(), 1u);
  policy.steal_batch_size = 3;
  JobPool pool3(layout, policy);
  EXPECT_EQ(pool3.take_batch(0, 4).size(), 3u);
}

TEST(JobPool, NoStealingWhenDisabled) {
  const auto layout = make_layout(4, 2, 2);
  SchedulerPolicy policy;
  policy.allow_stealing = false;
  JobPool pool(layout, policy);
  while (!pool.take_batch(0, 4).empty()) {
  }
  // Local store drained; remote jobs remain but are not granted.
  EXPECT_EQ(pool.remaining(), 4u);
  EXPECT_TRUE(pool.take_batch(0, 4).empty());
  // The other side can still take them.
  EXPECT_FALSE(pool.take_batch(1, 4).empty());
}

TEST(JobPool, EndgameReservationWithholdsLastRemoteJobs) {
  const auto layout = make_layout(4, 2, 0);  // 8 jobs, all on store 1
  SchedulerPolicy policy;
  policy.steal_reserve = 4;
  policy.steal_batch_size = 8;
  JobPool pool(layout, policy);
  // Requester prefers store 0 (empty): with reservation active it can steal
  // only while more than steal_reserve jobs remain.
  auto batch = pool.take_batch(0, 8, /*reserve_remote=*/true);
  EXPECT_EQ(batch.size(), 8u - 4u);
  EXPECT_TRUE(pool.take_batch(0, 8, true).empty());
  // The owner drains the reserved tail.
  EXPECT_EQ(pool.take_batch(1, 8).size(), 4u);
}

TEST(JobPool, ReserveExceedingRemainingStrandsNothing) {
  // Endgame edge case: the reservation is at least as large as everything
  // the owner side still has. A thief must get nothing (the whole tail is
  // reserved), the owner must still drain every job, and nothing may be
  // stranded in the pool afterwards.
  const auto layout = make_layout(2, 2, 0);  // 4 jobs, all on store 1
  SchedulerPolicy policy;
  policy.steal_reserve = 4;  // reserve == remaining
  policy.steal_batch_size = 8;
  JobPool pool(layout, policy);
  EXPECT_TRUE(pool.take_batch(0, 8, /*reserve_remote=*/true).empty());
  EXPECT_EQ(pool.remaining(), 4u);

  policy.steal_reserve = 64;  // reserve > remaining
  JobPool pool64(layout, policy);
  EXPECT_TRUE(pool64.take_batch(0, 8, true).empty());

  // The owner drains the fully reserved tail; pool ends empty.
  std::set<ChunkId> seen;
  while (!pool64.empty()) {
    const auto batch = pool64.take_batch(1, 2);
    ASSERT_FALSE(batch.empty()) << "reserved jobs stranded in the pool";
    for (ChunkId c : batch) EXPECT_TRUE(seen.insert(c).second);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(JobPool, ReservationReleasesOnceOwnerWithdraws) {
  // The owner computes part of its tail, then deactivates (finishes): the
  // moment reserve_remote turns false mid-drain, the thief may take the
  // rest — jobs reserved earlier are not permanently off limits.
  const auto layout = make_layout(2, 2, 0);  // 4 jobs on store 1
  SchedulerPolicy policy;
  policy.steal_reserve = 4;
  policy.steal_batch_size = 8;
  JobPool pool(layout, policy);
  EXPECT_TRUE(pool.take_batch(0, 8, true).empty());  // all 4 reserved
  EXPECT_EQ(pool.take_batch(1, 1).size(), 1u);       // owner takes one...
  EXPECT_TRUE(pool.take_batch(0, 8, true).empty());  // ...rest still reserved
  // Owner withdraws: the thief drains the remaining 3 without it.
  EXPECT_EQ(pool.take_batch(0, 8, false).size(), 3u);
  EXPECT_TRUE(pool.empty());
}

TEST(JobPool, ReservationIgnoredWhenOwnerAbsent) {
  const auto layout = make_layout(4, 2, 0);
  SchedulerPolicy policy;
  policy.steal_reserve = 4;
  policy.steal_batch_size = 8;
  JobPool pool(layout, policy);
  // reserve_remote=false (no active owner): everything is stealable.
  std::size_t total = 0;
  while (true) {
    const auto batch = pool.take_batch(0, 8, false);
    if (batch.empty()) break;
    total += batch.size();
  }
  EXPECT_EQ(total, 8u);
}

TEST(JobPool, MinContentionSpreadsAcrossFiles) {
  const auto layout = make_layout(4, 4, 0);  // 4 remote files
  SchedulerPolicy policy;
  policy.remote_selection = RemoteSelection::MinContention;
  policy.steal_batch_size = 2;
  JobPool pool(layout, policy);
  // Four consecutive steals should touch four distinct files (reader counts
  // increment per grant).
  std::set<storage::FileId> files;
  for (int i = 0; i < 4; ++i) {
    const auto batch = pool.take_batch(0, 2);
    ASSERT_FALSE(batch.empty());
    files.insert(layout.chunk(batch.front()).file);
  }
  EXPECT_EQ(files.size(), 4u);
}

TEST(JobPool, SequentialSelectionSticksToLowestFile) {
  const auto layout = make_layout(4, 4, 0);
  SchedulerPolicy policy;
  policy.remote_selection = RemoteSelection::Sequential;
  policy.steal_batch_size = 2;
  JobPool pool(layout, policy);
  const auto b1 = pool.take_batch(0, 2);
  const auto b2 = pool.take_batch(0, 2);
  EXPECT_EQ(layout.chunk(b1.front()).file, 0u);
  EXPECT_EQ(layout.chunk(b2.front()).file, 0u);  // finishes file 0 first
}

TEST(JobPool, RandomSelectionIsDeterministicPerSeed) {
  const auto layout = make_layout(8, 2, 0);
  SchedulerPolicy policy;
  policy.remote_selection = RemoteSelection::Random;
  policy.random_seed = 7;
  JobPool a(layout, policy), b(layout, policy);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(a.take_batch(0, 2), b.take_batch(0, 2));
  }
}

TEST(JobPool, ReaderCountsTrackGrants) {
  const auto layout = make_layout(2, 4, 2);
  JobPool pool(layout, SchedulerPolicy{});
  EXPECT_EQ(pool.readers(0), 0u);
  pool.take_batch(0, 2);
  EXPECT_EQ(pool.readers(0) + pool.readers(1), 1u);
}

TEST(JobPool, WantZeroReturnsNothing) {
  const auto layout = make_layout(2, 2, 2);
  JobPool pool(layout, SchedulerPolicy{});
  EXPECT_TRUE(pool.take_batch(0, 0).empty());
  EXPECT_EQ(pool.remaining(), 4u);
}

class BatchSizeSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BatchSizeSweep, AllJobsAssignedOnceForAnyBatchSize) {
  const std::uint32_t batch = GetParam();
  const auto layout = make_layout(6, 4, 3);
  SchedulerPolicy policy;
  policy.batch_size = batch;
  policy.steal_batch_size = batch;
  JobPool pool(layout, policy);
  std::set<ChunkId> seen;
  // Alternate requesters to mimic two masters.
  storage::StoreId who = 0;
  while (!pool.empty()) {
    const auto got = pool.take_batch(who, batch);
    who = 1 - who;
    for (ChunkId c : got) EXPECT_TRUE(seen.insert(c).second);
  }
  EXPECT_EQ(seen.size(), 24u);
}

INSTANTIATE_TEST_SUITE_P(Batches, BatchSizeSweep, ::testing::Values(1, 2, 3, 4, 8, 24));

}  // namespace
}  // namespace cloudburst::middleware
