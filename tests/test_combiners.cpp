// Tests for the reduction-object library: fold semantics, merge laws
// (identity, associativity-by-result, order independence), serialization
// round trips, and byte-size accounting.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "api/combiners.hpp"
#include "common/rng.hpp"

namespace cloudburst::api {
namespace {

// --- VectorFoldRobj -----------------------------------------------------------

TEST(VectorFoldRobj, SumAccumulates) {
  VectorFoldRobj v(3, VectorFold::Sum);
  v.accumulate(0, 1.0);
  v.accumulate(0, 2.0);
  v.accumulate(2, 5.0);
  EXPECT_DOUBLE_EQ(v.at(0), 3.0);
  EXPECT_DOUBLE_EQ(v.at(1), 0.0);
  EXPECT_DOUBLE_EQ(v.at(2), 5.0);
}

TEST(VectorFoldRobj, MinMaxIdentities) {
  VectorFoldRobj mn(2, VectorFold::Min);
  VectorFoldRobj mx(2, VectorFold::Max);
  mn.accumulate(0, 5.0);
  mx.accumulate(0, 5.0);
  EXPECT_DOUBLE_EQ(mn.at(0), 5.0);
  EXPECT_DOUBLE_EQ(mx.at(0), 5.0);
  // Untouched slots hold the identity.
  EXPECT_TRUE(std::isinf(mn.at(1)));
  EXPECT_GT(mn.at(1), 0);
  EXPECT_TRUE(std::isinf(mx.at(1)));
  EXPECT_LT(mx.at(1), 0);
}

TEST(VectorFoldRobj, MergeEmptyIsIdentity) {
  auto v = make_vector_sum(4);
  auto& sums = dynamic_cast<VectorFoldRobj&>(*v);
  sums.accumulate(1, 7.0);
  auto empty = v->clone_empty();
  v->merge_from(*empty);
  EXPECT_DOUBLE_EQ(sums.at(1), 7.0);
}

TEST(VectorFoldRobj, MergeMismatchThrows) {
  VectorFoldRobj a(2, VectorFold::Sum);
  VectorFoldRobj b(3, VectorFold::Sum);
  VectorFoldRobj c(2, VectorFold::Min);
  EXPECT_THROW(a.merge_from(b), std::invalid_argument);
  EXPECT_THROW(a.merge_from(c), std::invalid_argument);
}

TEST(VectorFoldRobj, MergeWrongTypeThrows) {
  VectorFoldRobj a(2, VectorFold::Sum);
  HashCountRobj h;
  EXPECT_THROW(a.merge_from(h), std::invalid_argument);
}

TEST(VectorFoldRobj, SerializeRoundTrip) {
  VectorFoldRobj v(3, VectorFold::Min);
  v.accumulate(0, 2.5);
  v.accumulate(1, -1.0);
  BufferWriter w;
  v.serialize(w);
  VectorFoldRobj copy(1, VectorFold::Sum);
  BufferReader r(w.buffer());
  copy.deserialize(r);
  EXPECT_EQ(copy.size(), 3u);
  EXPECT_DOUBLE_EQ(copy.at(0), 2.5);
  EXPECT_DOUBLE_EQ(copy.at(1), -1.0);
}

TEST(VectorFoldRobj, ByteSizeMatchesPayload) {
  VectorFoldRobj v(100, VectorFold::Sum);
  EXPECT_EQ(v.byte_size(), 8u + 100 * 8u);
}

// --- TopKMinRobj ----------------------------------------------------------------

TEST(TopKMinRobj, KeepsKSmallest) {
  TopKMinRobj top(3);
  for (int i = 10; i >= 1; --i) top.offer(i, static_cast<std::uint64_t>(i));
  const auto entries = top.sorted_entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_DOUBLE_EQ(entries[0].score, 1.0);
  EXPECT_DOUBLE_EQ(entries[1].score, 2.0);
  EXPECT_DOUBLE_EQ(entries[2].score, 3.0);
}

TEST(TopKMinRobj, TieBreaksById) {
  TopKMinRobj top(2);
  top.offer(1.0, 30);
  top.offer(1.0, 10);
  top.offer(1.0, 20);
  const auto entries = top.sorted_entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].id, 10u);
  EXPECT_EQ(entries[1].id, 20u);
}

TEST(TopKMinRobj, FewerThanKElements) {
  TopKMinRobj top(10);
  top.offer(3.0, 1);
  top.offer(1.0, 2);
  EXPECT_EQ(top.count(), 2u);
  EXPECT_DOUBLE_EQ(top.sorted_entries()[0].score, 1.0);
}

TEST(TopKMinRobj, ZeroKThrows) { EXPECT_THROW(TopKMinRobj(0), std::invalid_argument); }

TEST(TopKMinRobj, MergeEqualsSingleStream) {
  Rng rng(21);
  TopKMinRobj whole(16), left(16), right(16);
  for (int i = 0; i < 5000; ++i) {
    const double score = rng.next_double();
    const auto id = static_cast<std::uint64_t>(i);
    whole.offer(score, id);
    (i % 2 ? left : right).offer(score, id);
  }
  left.merge_from(right);
  EXPECT_EQ(left.sorted_entries(), whole.sorted_entries());
}

TEST(TopKMinRobj, SerializeRoundTripPreservesEntries) {
  TopKMinRobj top(4);
  top.offer(0.5, 1);
  top.offer(0.25, 2);
  top.offer(0.75, 3);
  BufferWriter w;
  top.serialize(w);
  TopKMinRobj copy(1);
  BufferReader r(w.buffer());
  copy.deserialize(r);
  EXPECT_EQ(copy.k(), 4u);
  EXPECT_EQ(copy.sorted_entries(), top.sorted_entries());
}

// --- HashCountRobj ---------------------------------------------------------------

TEST(HashCountRobj, AddAndGet) {
  HashCountRobj h;
  h.add(5, 1.0);
  h.add(5, 2.0);
  h.add(7, 4.0);
  EXPECT_DOUBLE_EQ(h.get(5), 3.0);
  EXPECT_DOUBLE_EQ(h.get(7), 4.0);
  EXPECT_DOUBLE_EQ(h.get(999), 0.0);
  EXPECT_EQ(h.distinct_keys(), 2u);
}

TEST(HashCountRobj, MergeAddsCounts) {
  HashCountRobj a, b;
  a.add(1, 1.0);
  a.add(2, 2.0);
  b.add(2, 3.0);
  b.add(3, 4.0);
  a.merge_from(b);
  EXPECT_DOUBLE_EQ(a.get(1), 1.0);
  EXPECT_DOUBLE_EQ(a.get(2), 5.0);
  EXPECT_DOUBLE_EQ(a.get(3), 4.0);
}

TEST(HashCountRobj, SerializeIsCanonicalAndRoundTrips) {
  HashCountRobj a, b;
  // Insert in different orders; serialized form must match.
  a.add(1, 1.0);
  a.add(2, 2.0);
  b.add(2, 2.0);
  b.add(1, 1.0);
  BufferWriter wa, wb;
  a.serialize(wa);
  b.serialize(wb);
  EXPECT_EQ(wa.buffer(), wb.buffer());

  HashCountRobj copy;
  BufferReader r(wa.buffer());
  copy.deserialize(r);
  EXPECT_DOUBLE_EQ(copy.get(1), 1.0);
  EXPECT_DOUBLE_EQ(copy.get(2), 2.0);
}

// --- ConcatRobj ---------------------------------------------------------------------

TEST(ConcatRobj, AppendAndCount) {
  ConcatRobj c(2);
  const double r1[] = {1.0, 2.0};
  const double r2[] = {3.0, 4.0};
  c.append(r1);
  c.append(r2);
  EXPECT_EQ(c.records(), 2u);
}

TEST(ConcatRobj, MergeOrderDoesNotAffectSortedView) {
  ConcatRobj a(1), b(1), c(1), d(1);
  const double x = 3.0, y = 1.0, z = 2.0;
  a.append(&x);
  b.append(&y);
  b.append(&z);
  c.append(&y);
  c.append(&z);
  d.append(&x);
  a.merge_from(b);  // {3} + {1,2}
  c.merge_from(d);  // {1,2} + {3}
  EXPECT_EQ(a.sorted_records(), c.sorted_records());
}

TEST(ConcatRobj, RecordSizeMismatchThrows) {
  ConcatRobj a(2), b(3);
  EXPECT_THROW(a.merge_from(b), std::invalid_argument);
}

TEST(ConcatRobj, SerializeRoundTrip) {
  ConcatRobj c(2);
  const double r1[] = {5.0, 6.0};
  c.append(r1);
  BufferWriter w;
  c.serialize(w);
  ConcatRobj copy(1);
  BufferReader r(w.buffer());
  copy.deserialize(r);
  EXPECT_EQ(copy.records(), 1u);
  EXPECT_EQ(copy.data(), c.data());
}

// --- generic merge-law property sweep -------------------------------------------

/// Factory producing a robj pre-loaded with `chunk`-dependent content; used
/// to check that merging partial objects in any grouping yields the same
/// final state.
struct RobjCase {
  const char* name;
  RobjPtr (*make)();
  void (*fill)(ReductionObject&, int item);
  bool (*equal)(const ReductionObject&, const ReductionObject&);
};

RobjCase vector_case() {
  return {
      "vector_sum",
      +[]() -> RobjPtr { return make_vector_sum(8); },
      +[](ReductionObject& r, int item) {
        auto& v = dynamic_cast<VectorFoldRobj&>(r);
        v.accumulate(static_cast<std::size_t>(item) % 8, item * 1.5);
      },
      +[](const ReductionObject& a, const ReductionObject& b) {
        const auto& va = dynamic_cast<const VectorFoldRobj&>(a);
        const auto& vb = dynamic_cast<const VectorFoldRobj&>(b);
        for (std::size_t i = 0; i < va.size(); ++i) {
          if (std::abs(va.at(i) - vb.at(i)) > 1e-9) return false;
        }
        return true;
      },
  };
}

RobjCase topk_case() {
  return {
      "topk",
      +[]() -> RobjPtr { return RobjPtr(std::make_unique<TopKMinRobj>(5)); },
      +[](ReductionObject& r, int item) {
        auto& t = dynamic_cast<TopKMinRobj&>(r);
        t.offer(((item * 37) % 101) * 0.01, static_cast<std::uint64_t>(item));
      },
      +[](const ReductionObject& a, const ReductionObject& b) {
        return dynamic_cast<const TopKMinRobj&>(a).sorted_entries() ==
               dynamic_cast<const TopKMinRobj&>(b).sorted_entries();
      },
  };
}

RobjCase hash_case() {
  return {
      "hash_count",
      +[]() -> RobjPtr { return RobjPtr(std::make_unique<HashCountRobj>()); },
      +[](ReductionObject& r, int item) {
        dynamic_cast<HashCountRobj&>(r).add(static_cast<std::uint64_t>(item % 13), 1.0);
      },
      +[](const ReductionObject& a, const ReductionObject& b) {
        const auto& ha = dynamic_cast<const HashCountRobj&>(a);
        const auto& hb = dynamic_cast<const HashCountRobj&>(b);
        if (ha.distinct_keys() != hb.distinct_keys()) return false;
        for (const auto& [k, v] : ha.counts()) {
          if (std::abs(hb.get(k) - v) > 1e-9) return false;
        }
        return true;
      },
  };
}

class MergeLawSweep : public ::testing::TestWithParam<int> {};

TEST_P(MergeLawSweep, PartitionedMergeEqualsSequential) {
  const int parts = GetParam();
  const int items = 120;
  for (const RobjCase& c : {vector_case(), topk_case(), hash_case()}) {
    SCOPED_TRACE(c.name);
    // Sequential reference.
    RobjPtr ref = c.make();
    for (int i = 0; i < items; ++i) c.fill(*ref, i);

    // Partitioned: round-robin items into `parts` objects, merge into one.
    std::vector<RobjPtr> partial;
    for (int p = 0; p < parts; ++p) partial.push_back(c.make());
    for (int i = 0; i < items; ++i) c.fill(*partial[i % parts], i);
    for (int p = 1; p < parts; ++p) partial[0]->merge_from(*partial[p]);

    EXPECT_TRUE(c.equal(*ref, *partial[0])) << "parts=" << parts;
  }
}

INSTANTIATE_TEST_SUITE_P(Partitions, MergeLawSweep, ::testing::Values(1, 2, 3, 4, 8, 16));

}  // namespace
}  // namespace cloudburst::api
