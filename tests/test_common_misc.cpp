// Tests for the remaining common utilities: units formatting, config
// parsing, ASCII tables, logging levels.
#include <gtest/gtest.h>

#include "common/config.hpp"
#include "common/logging.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace cloudburst {
namespace {

using namespace cloudburst::units;

TEST(Units, ByteConstants) {
  EXPECT_EQ(KiB(1), 1024u);
  EXPECT_EQ(MiB(2), 2u * 1024 * 1024);
  EXPECT_EQ(GiB(1), 1024u * 1024 * 1024);
  EXPECT_EQ(MB(3), 3'000'000u);
  EXPECT_EQ(GB(1), 1'000'000'000u);
}

TEST(Units, BandwidthConversions) {
  EXPECT_DOUBLE_EQ(mbps(8), 1e6);       // 8 Mb/s == 1 MB/s
  EXPECT_DOUBLE_EQ(gbps(8), 1e9);
  EXPECT_DOUBLE_EQ(MBps(1), 1e6);
  EXPECT_DOUBLE_EQ(GiBps(1), 1073741824.0);
}

TEST(Units, TimeHelpers) {
  EXPECT_DOUBLE_EQ(ms(1500), 1.5);
  EXPECT_DOUBLE_EQ(us(1000), 1e-3);
  EXPECT_DOUBLE_EQ(minutes(2), 120.0);
}

TEST(Units, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(KiB(1)), "1.0 KiB");
  EXPECT_EQ(format_bytes(MiB(128)), "128.0 MiB");
  EXPECT_EQ(format_bytes(GiB(12)), "12.0 GiB");
}

TEST(Units, FormatSeconds) {
  EXPECT_EQ(format_seconds(2.5), "2.5 s");
  EXPECT_EQ(format_seconds(0.0025), "2.5 ms");
  EXPECT_EQ(format_seconds(2.5e-6), "2.5 us");
}

TEST(Units, FormatBandwidth) {
  EXPECT_EQ(format_bandwidth(2.5e9), "2.50 GB/s");
  EXPECT_EQ(format_bandwidth(1.25e8), "125.00 MB/s");
}

TEST(Config, ParsesKeyValueArgs) {
  const auto cfg = Config::from_args({"alpha=1", "beta=2.5", "name=test", "flag=true"});
  EXPECT_EQ(cfg.get_int("alpha", 0), 1);
  EXPECT_DOUBLE_EQ(cfg.get_double("beta", 0), 2.5);
  EXPECT_EQ(cfg.get_string("name", ""), "test");
  EXPECT_TRUE(cfg.get_bool("flag", false));
}

TEST(Config, FallbacksWhenAbsent) {
  const Config cfg;
  EXPECT_EQ(cfg.get_int("missing", 42), 42);
  EXPECT_DOUBLE_EQ(cfg.get_double("missing", 1.5), 1.5);
  EXPECT_EQ(cfg.get_string("missing", "dflt"), "dflt");
  EXPECT_FALSE(cfg.get_bool("missing", false));
}

TEST(Config, LaterTokensOverride) {
  const auto cfg = Config::from_args({"x=1", "x=2"});
  EXPECT_EQ(cfg.get_int("x", 0), 2);
}

TEST(Config, RejectsMalformedArgs) {
  EXPECT_THROW(Config::from_args({"noequals"}), std::invalid_argument);
  EXPECT_THROW(Config::from_args({"=value"}), std::invalid_argument);
}

TEST(Config, RejectsBadTypes) {
  const auto cfg = Config::from_args({"x=abc"});
  EXPECT_THROW(cfg.get_int("x", 0), std::exception);
  EXPECT_THROW(cfg.get_double("x", 0), std::exception);
  EXPECT_THROW(cfg.get_bool("x", false), std::invalid_argument);
}

TEST(Config, ParsesFileFormatWithComments) {
  const auto cfg = Config::from_string(
      "# a comment\n"
      "wan_mbps = 100   # trailing comment\n"
      "\n"
      "streams=8\n");
  EXPECT_EQ(cfg.get_int("wan_mbps", 0), 100);
  EXPECT_EQ(cfg.get_int("streams", 0), 8);
  EXPECT_EQ(cfg.keys().size(), 2u);
}

TEST(Config, BoolSpellings) {
  const auto cfg =
      Config::from_string("a=true\nb=1\nc=yes\nd=on\ne=false\nf=0\ng=no\nh=off\n");
  for (const char* k : {"a", "b", "c", "d"}) EXPECT_TRUE(cfg.get_bool(k, false)) << k;
  for (const char* k : {"e", "f", "g", "h"}) EXPECT_FALSE(cfg.get_bool(k, true)) << k;
}

TEST(AsciiTable, RendersHeaderAndRows) {
  AsciiTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "2"});
  const std::string out = t.render("My Table");
  EXPECT_NE(out.find("My Table"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("| name"), std::string::npos);
}

TEST(AsciiTable, RejectsArityMismatch) {
  AsciiTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(AsciiTable, NumberFormatting) {
  EXPECT_EQ(AsciiTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(AsciiTable::num(2.0, 0), "2");
  EXPECT_EQ(AsciiTable::pct(0.155, 1), "15.5%");
}

TEST(AsciiTable, SeparatorsRender) {
  AsciiTable t({"x"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  const std::string out = t.render();
  // header rule + separator + bottom rule + top = at least 4 rules
  std::size_t rules = 0, pos = 0;
  while ((pos = out.find("+--", pos)) != std::string::npos) {
    ++rules;
    pos += 3;
  }
  EXPECT_GE(rules, 4u);
}

TEST(Logging, LevelGate) {
  const auto old = log::level();
  log::set_level(log::Level::Error);
  EXPECT_FALSE(log::enabled(log::Level::Debug));
  EXPECT_FALSE(log::enabled(log::Level::Warn));
  EXPECT_TRUE(log::enabled(log::Level::Error));
  log::set_level(log::Level::Trace);
  EXPECT_TRUE(log::enabled(log::Level::Debug));
  log::set_level(old);
}

}  // namespace
}  // namespace cloudburst
