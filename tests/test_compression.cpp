// Tests for the compressed-storage model: fewer bytes move, decompression
// compute is charged, and the benefit depends on where the bottleneck is.
#include <gtest/gtest.h>

#include "apps/datagen.hpp"
#include "apps/experiments.hpp"
#include "apps/wordcount.hpp"
#include "common/units.hpp"
#include "middleware/runtime.hpp"

namespace cloudburst::middleware {
namespace {

using namespace cloudburst::units;
using cluster::kCloudSite;
using cluster::kLocalSite;

RunResult run_knn_1783(double ratio, double decomp = 400e6) {
  return apps::run_env(apps::Env::Hybrid1783, apps::PaperApp::Knn,
                       [&](cluster::PlatformSpec&, RunOptions& o) {
                         o.profile.compression_ratio = ratio;
                         o.profile.decompress_bytes_per_second_per_core = decomp;
                       });
}

TEST(Compression, RatioOneIsIdentity) {
  const auto base = apps::run_env(apps::Env::Hybrid1783, apps::PaperApp::Knn);
  const auto same = run_knn_1783(1.0);
  EXPECT_DOUBLE_EQ(base.total_time, same.total_time);
}

TEST(Compression, HelpsRetrievalBoundWorkloads) {
  // knn env-17/83 is WAN-retrieval bound: halving the bytes must win even
  // after paying decompression.
  const auto plain = run_knn_1783(1.0);
  const auto packed = run_knn_1783(2.0);
  EXPECT_LT(packed.total_time, plain.total_time);
  EXPECT_LT(packed.side(kLocalSite).retrieval,
            plain.side(kLocalSite).retrieval);
}

TEST(Compression, HigherRatioHelpsMore) {
  const auto two = run_knn_1783(2.0);
  const auto four = run_knn_1783(4.0);
  EXPECT_LT(four.total_time, two.total_time);
}

TEST(Compression, SlowDecompressionErasesTheBenefit) {
  const auto fast_codec = run_knn_1783(2.0, 400e6);
  const auto slow_codec = run_knn_1783(2.0, 2e6);  // decompression-bound
  EXPECT_GT(slow_codec.total_time, fast_codec.total_time);
  const auto plain = run_knn_1783(1.0);
  EXPECT_GT(slow_codec.total_time, plain.total_time);  // net loss
}

TEST(Compression, BarelyMattersForComputeBound) {
  const auto plain = apps::run_env(apps::Env::Hybrid1783, apps::PaperApp::Kmeans);
  const auto packed =
      apps::run_env(apps::Env::Hybrid1783, apps::PaperApp::Kmeans,
                    [](cluster::PlatformSpec&, RunOptions& o) {
                      o.profile.compression_ratio = 3.0;
                    });
  // kmeans is compute-dominated: under 5% change either way.
  EXPECT_NEAR(packed.total_time / plain.total_time, 1.0, 0.05);
}

TEST(Compression, RealExecutionUnaffectedByTimingModel) {
  // Compression changes the clock, never the computed result.
  apps::WordGenSpec wspec;
  wspec.count = 6000;
  wspec.vocabulary = 41;
  const auto data = apps::generate_words(wspec);
  apps::WordCountTask task;

  auto run_with = [&](double ratio) {
    cluster::Platform platform(cluster::PlatformSpec::paper_testbed(16, 16));
    auto layout = storage::build_layout_for_units(data.units(), data.unit_bytes(), 4, 3);
    storage::assign_stores_by_fraction(layout, 0.5, platform.local_store_id(),
                                       platform.cloud_store_id());
    RunOptions o;
    o.profile.unit_bytes = data.unit_bytes();
    o.profile.bytes_per_second_per_core = MBps(10);
    o.profile.robj_bytes = 0;
    o.profile.compression_ratio = ratio;
    o.task = &task;
    o.dataset = &data;
    return run_distributed(platform, layout, o);
  };

  const auto plain = run_with(1.0);
  const auto packed = run_with(3.0);
  const auto& a = dynamic_cast<const api::HashCountRobj&>(*plain.robj);
  const auto& b = dynamic_cast<const api::HashCountRobj&>(*packed.robj);
  ASSERT_EQ(a.distinct_keys(), b.distinct_keys());
  for (const auto& [k, v] : a.counts()) EXPECT_DOUBLE_EQ(b.get(k), v);
}

}  // namespace
}  // namespace cloudburst::middleware
