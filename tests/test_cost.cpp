// Tests for the pay-as-you-go cost model and the time/cost planner.
#include <gtest/gtest.h>

#include "apps/experiments.hpp"
#include "common/units.hpp"
#include "cost/cost_model.hpp"
#include "cost/planner.hpp"

namespace cloudburst::cost {
namespace {

using namespace cloudburst::units;

TEST(Pricing, PerStartedHourBilling) {
  CloudPricing pricing;
  pricing.instance_hour_usd = 1.0;
  CostInputs inputs;
  inputs.cloud_instances = 4;
  inputs.run_seconds = 60.0;  // one minute still bills a full hour
  EXPECT_DOUBLE_EQ(price(inputs, pricing).instance_usd, 4.0);
  inputs.run_seconds = 3601.0;  // just over an hour bills two
  EXPECT_DOUBLE_EQ(price(inputs, pricing).instance_usd, 8.0);
}

TEST(Pricing, ZeroInstancesCostNothing) {
  CostInputs inputs;
  inputs.run_seconds = 10000.0;
  inputs.cloud_instances = 0;
  EXPECT_DOUBLE_EQ(price(inputs, CloudPricing::aws_2011()).instance_usd, 0.0);
}

TEST(Pricing, RequestAndTransferMath) {
  CloudPricing pricing;
  pricing.get_per_1000_usd = 0.01;
  pricing.transfer_out_per_gb_usd = 0.12;
  CostInputs inputs;
  inputs.s3_get_requests = 500000;       // 500k GETs
  inputs.bytes_out_of_cloud = 10'000'000'000;  // 10 GB
  const auto report = price(inputs, pricing);
  EXPECT_DOUBLE_EQ(report.requests_usd, 5.0);
  EXPECT_DOUBLE_EQ(report.transfer_usd, 1.2);
}

TEST(Pricing, StorageProratedToRun) {
  CloudPricing pricing;
  pricing.storage_gb_month_usd = 0.14;
  CostInputs inputs;
  inputs.s3_resident_bytes = 12'000'000'000;         // 12 GB
  inputs.run_seconds = 30.0 * 24.0 * 3600.0 / 2.0;   // half a month
  EXPECT_NEAR(price(inputs, pricing).storage_usd, 12 * 0.14 / 2, 1e-9);
}

TEST(Pricing, TotalSumsComponents) {
  CostInputs inputs;
  inputs.run_seconds = 1000;
  inputs.cloud_instances = 2;
  inputs.s3_get_requests = 10000;
  inputs.bytes_out_of_cloud = GB(1);
  inputs.s3_resident_bytes = GB(6);
  const auto report = price(inputs, CloudPricing::aws_2011());
  EXPECT_NEAR(report.total_usd(),
              report.instance_usd + report.requests_usd + report.transfer_usd +
                  report.storage_usd,
              1e-12);
  EXPECT_FALSE(report.to_string().empty());
}

TEST(PriceRun, HybridRunHasAllComponents) {
  const auto run = apps::run_custom(apps::PaperApp::Knn, 1.0 / 6, 16, 16);
  EXPECT_GT(run.cost.instance_usd, 0.0);      // 8 instances rented
  EXPECT_GT(run.cost.get_requests, 0u);       // S3 fetches happened
  EXPECT_GT(run.cost.transfer_out_gb, 0.0);   // local cluster stole S3 data
  EXPECT_GT(run.cost.storage_usd, 0.0);       // 10 GB resident in S3
}

TEST(PriceRun, LocalOnlyRunCostsAlmostNothing) {
  const auto run = apps::run_custom(apps::PaperApp::Knn, 1.0, 32, 0);
  EXPECT_DOUBLE_EQ(run.cost.instance_usd, 0.0);
  EXPECT_EQ(run.cost.get_requests, 0u);
  EXPECT_DOUBLE_EQ(run.cost.transfer_usd, 0.0);
}

TEST(PriceRun, MoreCloudDataMeansMoreTransferWhenStealing) {
  const auto less = apps::run_custom(apps::PaperApp::Knn, 1.0 / 3, 16, 16);
  const auto more = apps::run_custom(apps::PaperApp::Knn, 1.0 / 6, 16, 16);
  EXPECT_GT(more.cost.transfer_out_gb, less.cost.transfer_out_gb);
}

// --- planner ---------------------------------------------------------------------

std::vector<PlanPoint> synthetic_points() {
  // Monotone: more cores -> faster & pricier.
  std::vector<PlanPoint> pts;
  for (unsigned cores : {0u, 8u, 16u, 32u}) {
    PlanPoint p;
    p.cloud_cores = cores;
    p.exec_seconds = 100.0 / (1.0 + cores / 8.0);
    CostInputs inputs;
    inputs.cloud_instances = cores / 2;
    inputs.run_seconds = p.exec_seconds;
    p.cost = price(inputs, CloudPricing::aws_2011());
    pts.push_back(p);
  }
  return pts;
}

TEST(Planner, DeadlinePicksCheapestFeasible) {
  const auto pts = synthetic_points();
  // exec times: 100, 50, 33.3, 20 — deadline 60 admits {8,16,32}; cheapest
  // is the fewest instances: 8 cores.
  const auto plan = plan_for_deadline(pts, 60.0);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->cloud_cores, 8u);
}

TEST(Planner, ImpossibleDeadlineReturnsNothing) {
  EXPECT_FALSE(plan_for_deadline(synthetic_points(), 1.0).has_value());
}

TEST(Planner, BudgetPicksFastestAffordable) {
  const auto pts = synthetic_points();
  // 0 cores costs $0; all others cost > 0. Budget below the 8-core cost
  // forces the free-but-slow plan.
  const double eight_core_cost = pts[1].cost.total_usd();
  const auto plan = plan_for_budget(pts, eight_core_cost / 2.0);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->cloud_cores, 0u);

  const auto rich = plan_for_budget(pts, 1e9);
  ASSERT_TRUE(rich.has_value());
  EXPECT_EQ(rich->cloud_cores, 32u);  // fastest
}

TEST(Planner, SweepEvaluatesEveryStep) {
  PlannerConfig config;
  config.max_cloud_cores = 12;
  config.core_step = 4;
  int calls = 0;
  const auto pts = sweep(config, [&](unsigned cores) {
    ++calls;
    PlanPoint p;
    p.cloud_cores = cores;
    p.exec_seconds = 1.0;
    return p;
  });
  EXPECT_EQ(calls, 4);  // 0, 4, 8, 12
  EXPECT_EQ(pts.back().cloud_cores, 12u);
}

TEST(Planner, EndToEndDeadlinePlanning) {
  // Real simulated sweep: 33% of the knn dataset local, 16 local cores.
  std::vector<PlanPoint> pts;
  for (unsigned cores : {0u, 8u, 16u, 32u}) {
    const auto run = apps::run_custom(apps::PaperApp::Knn, 1.0 / 3, 16, cores);
    pts.push_back(PlanPoint{cores, run.result.total_time, run.cost});
  }
  // Sanity: bursting helps.
  EXPECT_LT(pts.back().exec_seconds, pts.front().exec_seconds);

  // A deadline between the slowest and fastest must be met by some plan, and
  // the chosen plan must actually meet it.
  const double deadline = (pts.front().exec_seconds + pts.back().exec_seconds) / 2;
  const auto plan = plan_for_deadline(pts, deadline);
  ASSERT_TRUE(plan.has_value());
  EXPECT_LE(plan->exec_seconds, deadline);
  // And it is the cheapest among feasible ones.
  for (const auto& p : pts) {
    if (p.exec_seconds <= deadline) {
      EXPECT_LE(plan->cost.total_usd(), p.cost.total_usd() + 1e-12);
    }
  }
}

}  // namespace
}  // namespace cloudburst::cost
