// Tests for the iterative-application driver: broadcast cost model, pass
// accounting, and real multi-pass kmeans through the simulated middleware.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/datagen.hpp"
#include "apps/experiments.hpp"
#include "apps/kmeans.hpp"
#include "common/units.hpp"
#include "middleware/iterative.hpp"

namespace cloudburst::middleware {
namespace {

using namespace cloudburst::units;
using cluster::PlatformSpec;

TEST(Broadcast, ScalesWithRobjSize) {
  const auto spec = PlatformSpec::paper_testbed(16, 16);
  const double small = simulate_broadcast(spec, MiB(1));
  const double large = simulate_broadcast(spec, MiB(256));
  EXPECT_GT(small, 0.0);
  EXPECT_GT(large, 10.0 * small);
}

TEST(Broadcast, CrossesTheWan) {
  // Halving the WAN bandwidth must slow the cloud-side broadcast.
  auto fast = PlatformSpec::paper_testbed(16, 16);
  auto slow = fast;
  slow.wan_bandwidth /= 8.0;
  EXPECT_GT(simulate_broadcast(slow, MiB(64)), simulate_broadcast(fast, MiB(64)));
}

TEST(Broadcast, SingleClusterIsCheaper) {
  const double both = simulate_broadcast(PlatformSpec::paper_testbed(16, 16), MiB(64));
  const double local_only =
      simulate_broadcast(PlatformSpec::paper_testbed(16, 0), MiB(64));
  EXPECT_LT(local_only, both);
}

TEST(Iterative, TimingOnlyAccounting) {
  IterativeRequest request;
  request.platform_spec = PlatformSpec::paper_testbed(16, 16);
  const auto layout = apps::paper_layout(apps::PaperApp::PageRank, 0.5, 0, 1);
  request.layout = &layout;
  request.options = apps::paper_run_options(apps::PaperApp::PageRank);
  request.iterations = 4;

  const auto result = run_iterative(request);
  ASSERT_EQ(result.passes.size(), 4u);
  double compute = 0.0;
  for (const auto& p : result.passes) compute += p.total_time;
  EXPECT_NEAR(result.compute_seconds, compute, 1e-9);
  EXPECT_GT(result.broadcast_seconds, 0.0);  // 3 inter-pass broadcasts
  EXPECT_NEAR(result.total_seconds, result.compute_seconds + result.broadcast_seconds,
              1e-9);
  // Every pass is the same deterministic run.
  EXPECT_DOUBLE_EQ(result.passes[0].total_time, result.passes[3].total_time);
}

TEST(Iterative, RejectsBadRequests) {
  IterativeRequest request;
  request.platform_spec = PlatformSpec::paper_testbed(8, 8);
  EXPECT_THROW(run_iterative(request), std::invalid_argument);  // no layout
  const auto layout = apps::paper_layout(apps::PaperApp::Knn, 0.5, 0, 1);
  request.layout = &layout;
  request.options = apps::paper_run_options(apps::PaperApp::Knn);
  request.iterations = 0;
  EXPECT_THROW(run_iterative(request), std::invalid_argument);
}

TEST(Iterative, RealKmeansConvergesThroughTheMiddleware) {
  // Full multi-pass clustering where every pass is a distributed run and the
  // centroids travel through next_task.
  apps::PointGenSpec gen;
  gen.count = 30000;
  gen.dim = 3;
  gen.mixture_components = 3;
  gen.component_spread = 15.0;
  gen.noise_sigma = 0.8;
  gen.seed = 77;
  const auto data = apps::generate_points(gen);
  const auto truth = apps::mixture_centers(gen);

  std::vector<std::vector<float>> centroids = truth;
  for (auto& c : centroids) {
    for (auto& v : c) v += 4.0f;  // start well off target
  }

  storage::DataLayout layout =
      storage::build_layout_for_units(data.units(), data.unit_bytes(), 6, 2);
  storage::assign_stores_by_fraction(layout, 0.5, 0, 1);

  // Task storage: each pass's task must outlive the next run.
  std::vector<std::unique_ptr<apps::KmeansTask>> tasks;
  tasks.push_back(std::make_unique<apps::KmeansTask>(centroids));

  IterativeRequest request;
  request.platform_spec = PlatformSpec::paper_testbed(16, 16);
  request.layout = &layout;
  request.options.profile.unit_bytes = data.unit_bytes();
  request.options.profile.bytes_per_second_per_core = MBps(2);
  request.options.profile.robj_bytes = KiB(8);
  request.options.task = tasks.back().get();
  request.options.dataset = &data;
  request.iterations = 6;
  request.next_task = [&](std::size_t, const api::ReductionObject* robj)
      -> const api::GRTask* {
    const auto next = tasks.back()->centroids_from(*robj);
    std::vector<std::vector<float>> as_float(next.size());
    for (std::size_t c = 0; c < next.size(); ++c) {
      as_float[c].assign(next[c].begin(), next[c].end());
    }
    tasks.push_back(std::make_unique<apps::KmeansTask>(as_float));
    return tasks.back().get();
  };

  const auto result = run_iterative(std::move(request));
  ASSERT_NE(result.final_robj, nullptr);
  const auto final_centroids = tasks.back()->centroids_from(*result.final_robj);

  for (const auto& centroid : final_centroids) {
    double best = 1e300;
    for (const auto& t : truth) {
      double d = 0;
      for (std::size_t k = 0; k < 3; ++k) {
        d += (centroid[k] - t[k]) * (centroid[k] - t[k]);
      }
      best = std::min(best, d);
    }
    EXPECT_LT(std::sqrt(best), 0.5);
  }
}

}  // namespace
}  // namespace cloudburst::middleware
