// Integration tests for the full middleware: head/master/slave protocol on a
// simulated platform. Verifies every job processed exactly once, timing
// decomposition consistency, work stealing and its ablations, and — via the
// real-execution hook — that the distributed run computes bit-identical
// results to a serial run of the same kernel.
#include <gtest/gtest.h>

#include <cstring>

#include "apps/datagen.hpp"
#include "apps/knn.hpp"
#include "apps/pagerank.hpp"
#include "apps/experiments.hpp"
#include "apps/wordcount.hpp"
#include "common/units.hpp"
#include "engine/gr_engine.hpp"
#include "middleware/runtime.hpp"

namespace cloudburst::middleware {
namespace {

using namespace cloudburst::units;
using apps::PaperApp;
using cluster::kCloudSite;
using cluster::kLocalSite;
using cluster::Platform;
using cluster::PlatformSpec;

/// Small platform + layout + options for fast protocol tests.
struct Rig {
  PlatformSpec spec;
  RunOptions options;
  double local_fraction;
  std::uint32_t files, chunks_per_file;
  std::uint64_t total_bytes;

  Rig() {
    spec = PlatformSpec::paper_testbed(16, 16);
    options.profile.name = "test";
    options.profile.unit_bytes = 64;
    options.profile.bytes_per_second_per_core = MBps(50);
    options.profile.robj_bytes = KiB(64);
    local_fraction = 0.5;
    files = 8;
    chunks_per_file = 3;
    total_bytes = MiB(1536);
  }

  RunResult run() {
    Platform platform(spec);
    storage::LayoutSpec lspec;
    lspec.total_bytes = total_bytes;
    lspec.num_files = files;
    lspec.chunks_per_file = chunks_per_file;
    lspec.unit_bytes = options.profile.unit_bytes;
    storage::DataLayout layout = storage::build_layout(lspec);
    storage::assign_stores_by_fraction(layout, local_fraction, platform.local_store_id(),
                                       platform.cloud_store_id());
    return run_distributed(platform, layout, options);
  }
};

TEST(Runtime, AllJobsProcessedExactlyOnce) {
  Rig rig;
  const auto result = rig.run();
  EXPECT_EQ(result.total_jobs(), 24u);
  std::uint32_t node_jobs = 0;
  for (const auto& n : result.nodes) node_jobs += n.jobs;
  EXPECT_EQ(node_jobs, 24u);
}

TEST(Runtime, CompletesWithPositiveTime) {
  Rig rig;
  const auto result = rig.run();
  EXPECT_GT(result.total_time, 0.0);
  EXPECT_GE(result.global_reduction_time, 0.0);
}

TEST(Runtime, DeterministicAcrossRuns) {
  Rig a, b;
  const auto ra = a.run();
  const auto rb = b.run();
  EXPECT_DOUBLE_EQ(ra.total_time, rb.total_time);
  ASSERT_EQ(ra.nodes.size(), rb.nodes.size());
  for (std::size_t i = 0; i < ra.nodes.size(); ++i) {
    EXPECT_DOUBLE_EQ(ra.nodes[i].processing, rb.nodes[i].processing);
    EXPECT_DOUBLE_EQ(ra.nodes[i].retrieval, rb.nodes[i].retrieval);
    EXPECT_EQ(ra.nodes[i].jobs, rb.nodes[i].jobs);
  }
}

TEST(Runtime, NodeTimesAreConsistent) {
  Rig rig;
  const auto result = rig.run();
  for (const auto& n : result.nodes) {
    EXPECT_GT(n.processing, 0.0) << n.name;
    EXPECT_GT(n.retrieval, 0.0) << n.name;
    EXPECT_GE(n.wait, 0.0) << n.name;
    EXPECT_LE(n.finish_time, result.total_time) << n.name;
    // With pipeline depth 1 a node cannot be busier than elapsed time.
    EXPECT_LE(n.processing + n.retrieval, n.finish_time + 1e-9) << n.name;
  }
}

TEST(Runtime, ClusterAggregatesMatchNodes) {
  Rig rig;
  const auto result = rig.run();
  for (cluster::ClusterId side : {kLocalSite, kCloudSite}) {
    const auto& c = result.side(side);
    double proc = 0;
    std::uint32_t count = 0;
    for (const auto& n : result.nodes) {
      if (n.cluster != side) continue;
      proc += n.processing;
      ++count;
    }
    ASSERT_EQ(c.nodes, count);
    EXPECT_NEAR(c.processing, proc / count, 1e-9);
  }
}

TEST(Runtime, IdleTimesComplementary) {
  Rig rig;
  const auto result = rig.run();
  const auto& local = result.side(kLocalSite);
  const auto& cloud = result.side(kCloudSite);
  // At least one side has zero idle (the later finisher).
  EXPECT_NEAR(std::min(local.idle_time, cloud.idle_time), 0.0, 1e-9);
  EXPECT_NEAR(std::abs(local.proc_end_time - cloud.proc_end_time),
              std::max(local.idle_time, cloud.idle_time), 1e-9);
}

TEST(Runtime, SingleClusterRunWorks) {
  Rig rig;
  rig.spec = PlatformSpec::paper_testbed(32, 0);
  rig.local_fraction = 1.0;
  const auto result = rig.run();
  EXPECT_EQ(result.total_jobs(), 24u);
  EXPECT_EQ(result.side(kCloudSite).nodes, 0u);
  EXPECT_EQ(result.side(kLocalSite).jobs_stolen, 0u);
}

TEST(Runtime, CloudOnlyRunWorks) {
  Rig rig;
  rig.spec = PlatformSpec::paper_testbed(0, 32);
  rig.local_fraction = 0.0;
  const auto result = rig.run();
  EXPECT_EQ(result.total_jobs(), 24u);
  EXPECT_EQ(result.side(kLocalSite).nodes, 0u);
  // All data on S3 == the cloud's own store: nothing counts as stolen.
  EXPECT_EQ(result.side(kCloudSite).jobs_stolen, 0u);
}

TEST(Runtime, SkewedDataCausesStealing) {
  Rig rig;
  rig.local_fraction = 1.0 / 8;  // 1 of 8 files local
  const auto result = rig.run();
  const auto& local = result.side(kLocalSite);
  EXPECT_GT(local.jobs_stolen, 0u) << "local cluster should steal S3 jobs";
  EXPECT_EQ(local.jobs_local, 3u);  // its single file's chunks
}

TEST(Runtime, StealingDisabledPartitionsWork) {
  Rig rig;
  rig.options.policy.allow_stealing = false;
  rig.local_fraction = 1.0 / 8;
  const auto result = rig.run();
  // Everything still gets processed (each side handles its own store)...
  EXPECT_EQ(result.total_jobs(), 24u);
  const auto& local = result.side(kLocalSite);
  const auto& cloud = result.side(kCloudSite);
  EXPECT_EQ(local.jobs_stolen + cloud.jobs_stolen, 0u);
  EXPECT_EQ(local.jobs_local, 3u);
  EXPECT_EQ(cloud.jobs_local, 21u);
}

TEST(Runtime, StealingImprovesSkewedRuntime) {
  Rig with, without;
  with.local_fraction = without.local_fraction = 1.0 / 8;
  without.options.policy.allow_stealing = false;
  EXPECT_LT(with.run().total_time, without.run().total_time);
}

TEST(Runtime, MoreCoresRunFaster) {
  Rig small, large;
  small.spec = PlatformSpec::paper_testbed(8, 8);
  large.spec = PlatformSpec::paper_testbed(32, 32);
  EXPECT_LT(large.run().total_time, small.run().total_time);
}

TEST(Runtime, LargerRobjRaisesSync) {
  Rig small, large;
  small.options.profile.robj_bytes = KiB(8);
  large.options.profile.robj_bytes = MiB(256);
  const auto rs = small.run();
  const auto rl = large.run();
  const double sync_small = rs.side(kLocalSite).sync + rs.side(kCloudSite).sync;
  const double sync_large = rl.side(kLocalSite).sync + rl.side(kCloudSite).sync;
  EXPECT_GT(sync_large, sync_small * 1.5);
}

TEST(Runtime, PipelineDepthOverlapsRetrieval) {
  // Single node so prefetching's overlap benefit is isolated from its
  // job-hoarding cost (with many nodes and few jobs, hoarding can win).
  Rig serial, pipelined;
  serial.spec = PlatformSpec::paper_testbed(8, 0);
  serial.local_fraction = 1.0;
  pipelined.spec = PlatformSpec::paper_testbed(8, 0);
  pipelined.local_fraction = 1.0;
  pipelined.options.pipeline_depth = 2;
  EXPECT_LT(pipelined.run().total_time, 0.8 * serial.run().total_time);
}

TEST(Runtime, RejectsInvalidSetups) {
  Rig rig;
  Platform platform(rig.spec);
  storage::DataLayout empty;
  EXPECT_THROW(run_distributed(platform, empty, rig.options), std::invalid_argument);

  // task without dataset
  Rig rig2;
  apps::WordCountTask task;
  rig2.options.task = &task;
  EXPECT_THROW(rig2.run(), std::invalid_argument);
}

TEST(Runtime, RejectsPlatformWithoutNodes) {
  Rig rig;
  rig.spec = PlatformSpec::paper_testbed(0, 0);
  EXPECT_THROW(rig.run(), std::invalid_argument);
}

TEST(Runtime, StaticAssignmentProcessesEverythingWithoutStealing) {
  Rig rig;
  rig.options.static_assignment = true;
  rig.local_fraction = 1.0 / 8;  // skew that pooling would steal across
  const auto result = rig.run();
  EXPECT_EQ(result.total_jobs(), 24u);
  EXPECT_EQ(result.side(kLocalSite).jobs_stolen, 0u);
  EXPECT_EQ(result.side(kCloudSite).jobs_stolen, 0u);
  EXPECT_EQ(result.side(kLocalSite).jobs_local, 3u);
  EXPECT_EQ(result.side(kCloudSite).jobs_local, 21u);
}

TEST(Runtime, StaticAssignmentLosesUnderSkew) {
  // Compute-bound profile: stealing is pure win (fetch cost negligible), so
  // the pooling advantage under data skew is unambiguous.
  Rig pooled, fixed;
  pooled.local_fraction = fixed.local_fraction = 1.0 / 8;
  pooled.options.profile.bytes_per_second_per_core = MBps(2);
  pooled.options.policy.steal_reserve = 0;
  fixed.options = pooled.options;
  fixed.options.static_assignment = true;
  EXPECT_LT(pooled.run().total_time, 0.8 * fixed.run().total_time);
}

TEST(Runtime, StaticAssignmentSingleClusterTakesEverything) {
  Rig rig;
  rig.spec = PlatformSpec::paper_testbed(32, 0);
  rig.local_fraction = 0.5;  // half the data on S3, but no cloud cluster
  rig.options.static_assignment = true;
  const auto result = rig.run();
  EXPECT_EQ(result.total_jobs(), 24u);
}

TEST(Runtime, StaticAssignmentExcludesFailuresAndElastic) {
  Rig rig;
  rig.options.static_assignment = true;
  rig.options.reduction_tree = false;
  rig.options.failures.push_back({kCloudSite, 0, 1.0});
  EXPECT_THROW(rig.run(), std::invalid_argument);

  Rig rig2;
  rig2.options.static_assignment = true;
  rig2.options.reduction_tree = false;
  rig2.options.elastic.enabled = true;
  rig2.options.elastic.deadline_seconds = 1.0;
  EXPECT_THROW(rig2.run(), std::invalid_argument);
}

TEST(Runtime, StaticAssignmentRealExecutionCorrect) {
  apps::WordGenSpec wspec;
  wspec.count = 12000;
  wspec.vocabulary = 37;
  wspec.seed = 31;
  const auto data = apps::generate_words(wspec);
  apps::WordCountTask task;
  const auto ref = engine::gr_run(task, data, engine::GrEngineOptions{});
  const auto& ref_counts = dynamic_cast<const api::HashCountRobj&>(*ref);

  Platform platform(PlatformSpec::paper_testbed(16, 16));
  storage::DataLayout layout =
      storage::build_layout_for_units(data.units(), data.unit_bytes(), 4, 3);
  storage::assign_stores_by_fraction(layout, 0.5, platform.local_store_id(),
                                     platform.cloud_store_id());
  RunOptions options;
  options.profile.unit_bytes = data.unit_bytes();
  options.profile.bytes_per_second_per_core = MBps(10);
  options.profile.robj_bytes = 0;
  options.static_assignment = true;
  options.task = &task;
  options.dataset = &data;
  const auto result = run_distributed(platform, layout, options);
  ASSERT_NE(result.robj, nullptr);
  const auto& got = dynamic_cast<const api::HashCountRobj&>(*result.robj);
  ASSERT_EQ(got.distinct_keys(), ref_counts.distinct_keys());
  for (const auto& [k, v] : ref_counts.counts()) EXPECT_DOUBLE_EQ(got.get(k), v);
}

// --- real execution through the simulated distributed system -------------------

TEST(RuntimeRealExecution, WordcountMatchesSerialEngine) {
  apps::WordGenSpec wspec;
  wspec.count = 24000;
  wspec.vocabulary = 101;
  wspec.seed = 77;
  const auto data = apps::generate_words(wspec);
  apps::WordCountTask task;

  // Serial reference through the shared-memory engine.
  engine::GrEngineOptions gr_options;
  gr_options.threads = 1;
  const auto ref = engine::gr_run(task, data, gr_options);
  const auto& ref_counts = dynamic_cast<const api::HashCountRobj&>(*ref);

  // Distributed: layout whose units tile the dataset exactly.
  Platform platform(PlatformSpec::paper_testbed(16, 16));
  storage::DataLayout layout =
      storage::build_layout_for_units(data.units(), data.unit_bytes(), 6, 4);
  storage::assign_stores_by_fraction(layout, 0.5, platform.local_store_id(),
                                     platform.cloud_store_id());

  RunOptions options;
  options.profile.unit_bytes = data.unit_bytes();
  options.profile.bytes_per_second_per_core = MBps(10);
  options.profile.robj_bytes = 0;  // charge actual serialized size
  options.task = &task;
  options.dataset = &data;

  const auto result = run_distributed(platform, layout, options);
  ASSERT_NE(result.robj, nullptr);
  const auto& got = dynamic_cast<const api::HashCountRobj&>(*result.robj);
  ASSERT_EQ(got.distinct_keys(), ref_counts.distinct_keys());
  for (const auto& [k, v] : ref_counts.counts()) {
    EXPECT_DOUBLE_EQ(got.get(k), v) << "word " << k;
  }
}

TEST(RuntimeRealExecution, RejectsMismatchedTiling) {
  apps::WordGenSpec wspec;
  wspec.count = 1000;
  const auto data = apps::generate_words(wspec);
  apps::WordCountTask task;

  Platform platform(PlatformSpec::paper_testbed(8, 8));
  storage::LayoutSpec lspec;
  lspec.total_bytes = data.size_bytes() + 800;  // layout larger than dataset
  lspec.num_files = 2;
  lspec.chunks_per_file = 2;
  lspec.unit_bytes = 8;
  storage::DataLayout layout = storage::build_layout(lspec);
  storage::assign_stores_by_fraction(layout, 1.0, platform.local_store_id(),
                                     platform.cloud_store_id());

  RunOptions options;
  options.profile.unit_bytes = 8;
  options.profile.bytes_per_second_per_core = MBps(10);
  options.task = &task;
  options.dataset = &data;
  EXPECT_THROW(run_distributed(platform, layout, options), std::invalid_argument);
}

class RealExecSweep : public ::testing::TestWithParam<std::tuple<double, unsigned, unsigned>> {};

TEST_P(RealExecSweep, DistributedWordcountInvariantAcrossTopologies) {
  const auto [fraction, local_cores, cloud_cores] = GetParam();
  apps::WordGenSpec wspec;
  wspec.count = 12000;
  wspec.vocabulary = 53;
  wspec.seed = 123;
  const auto data = apps::generate_words(wspec);
  apps::WordCountTask task;

  engine::GrEngineOptions gr_options;
  const auto ref = engine::gr_run(task, data, gr_options);
  const auto& ref_counts = dynamic_cast<const api::HashCountRobj&>(*ref);

  Platform platform(PlatformSpec::paper_testbed(local_cores, cloud_cores));
  storage::DataLayout layout =
      storage::build_layout_for_units(data.units(), data.unit_bytes(), 4, 3);
  storage::assign_stores_by_fraction(layout, fraction, platform.local_store_id(),
                                     platform.cloud_store_id());

  RunOptions options;
  options.profile.unit_bytes = data.unit_bytes();
  options.profile.bytes_per_second_per_core = MBps(20);
  options.profile.robj_bytes = 0;
  options.task = &task;
  options.dataset = &data;

  const auto result = run_distributed(platform, layout, options);
  ASSERT_NE(result.robj, nullptr);
  const auto& got = dynamic_cast<const api::HashCountRobj&>(*result.robj);
  ASSERT_EQ(got.distinct_keys(), ref_counts.distinct_keys());
  for (const auto& [k, v] : ref_counts.counts()) EXPECT_DOUBLE_EQ(got.get(k), v);
}

TEST(RuntimeRealExecution, KnnMatchesSharedMemoryEngine) {
  apps::PointGenSpec gen;
  gen.count = 12000;
  gen.dim = 5;
  gen.seed = 21;
  const auto data = apps::generate_points(gen);
  apps::KnnTask task(50, std::vector<float>(5, 1.0f));

  engine::GrEngineOptions gr_options;
  gr_options.threads = 3;
  const auto serial = apps::KnnTask::neighbors(*engine::gr_run(task, data, gr_options));

  Platform platform(PlatformSpec::paper_testbed(16, 16));
  storage::DataLayout layout =
      storage::build_layout_for_units(data.units(), data.unit_bytes(), 5, 3);
  storage::assign_stores_by_fraction(layout, 1.0 / 3, platform.local_store_id(),
                                     platform.cloud_store_id());
  RunOptions options;
  options.profile.unit_bytes = data.unit_bytes();
  options.profile.bytes_per_second_per_core = MBps(30);
  options.profile.robj_bytes = 0;
  options.task = &task;
  options.dataset = &data;
  const auto result = run_distributed(platform, layout, options);
  ASSERT_NE(result.robj, nullptr);
  EXPECT_EQ(apps::KnnTask::neighbors(*result.robj), serial);
}

TEST(RuntimeRealExecution, PagerankIterationMatchesSharedMemoryEngine) {
  apps::GraphGenSpec gen;
  gen.pages = 2000;
  gen.edges = 30000;
  gen.seed = 9;
  const auto edges = apps::generate_edges(gen);
  const auto degrees = apps::out_degrees(edges, gen.pages);
  std::vector<double> ranks(gen.pages, 1.0 / gen.pages);
  apps::PageRankTask task(ranks, degrees);

  engine::GrEngineOptions gr_options;
  gr_options.threads = 4;
  const auto serial = task.ranks_from(*engine::gr_run(task, edges, gr_options));

  // Large real robj (2000 doubles) exercises the serialize/merge path up the
  // binomial tree and across the simulated WAN.
  Platform platform(PlatformSpec::paper_testbed(16, 16));
  storage::DataLayout layout =
      storage::build_layout_for_units(edges.units(), edges.unit_bytes(), 6, 2);
  storage::assign_stores_by_fraction(layout, 0.5, platform.local_store_id(),
                                     platform.cloud_store_id());
  RunOptions options;
  options.profile.unit_bytes = edges.unit_bytes();
  options.profile.bytes_per_second_per_core = MBps(30);
  options.profile.robj_bytes = 0;
  options.task = &task;
  options.dataset = &edges;
  const auto result = run_distributed(platform, layout, options);
  ASSERT_NE(result.robj, nullptr);
  const auto distributed = task.ranks_from(*result.robj);
  ASSERT_EQ(distributed.size(), serial.size());
  for (std::size_t p = 0; p < serial.size(); ++p) {
    EXPECT_NEAR(distributed[p], serial[p], 1e-12) << "page " << p;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, RealExecSweep,
    ::testing::Values(std::make_tuple(0.0, 16u, 16u), std::make_tuple(0.5, 16u, 16u),
                      std::make_tuple(1.0, 16u, 16u), std::make_tuple(0.25, 8u, 24u),
                      std::make_tuple(0.75, 32u, 0u), std::make_tuple(0.0, 0u, 32u),
                      std::make_tuple(1.0 / 3, 8u, 8u)));

}  // namespace
}  // namespace cloudburst::middleware
