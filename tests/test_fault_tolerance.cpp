// Fault-tolerance tests: slave crashes, heartbeat-delayed detection,
// reduction-object loss semantics (the dead node's un-checkpointed work is
// re-executed on survivors), and the direct (two-phase commit) reduction
// mode that enables all of it.
#include <gtest/gtest.h>

#include "apps/datagen.hpp"
#include "apps/wordcount.hpp"
#include "common/units.hpp"
#include "engine/gr_engine.hpp"
#include "middleware/runtime.hpp"

namespace cloudburst::middleware {
namespace {

using namespace cloudburst::units;
using cluster::kCloudSite;
using cluster::kLocalSite;
using cluster::Platform;
using cluster::PlatformSpec;

/// Real-execution wordcount rig: any run must reproduce the serial counts.
struct FaultRig {
  engine::MemoryDataset data;
  apps::WordCountTask task;
  std::unordered_map<std::uint64_t, double> reference;

  FaultRig() : data(make_data()) {
    for (std::size_t i = 0; i < data.units(); ++i) {
      apps::WordRecord w;
      std::memcpy(&w, data.unit(i), sizeof w);
      reference[w.word_id] += 1.0;
    }
  }

  static engine::MemoryDataset make_data() {
    apps::WordGenSpec spec;
    spec.count = 24000;
    spec.vocabulary = 97;
    spec.seed = 555;
    return apps::generate_words(spec);
  }

  RunOptions options() {
    RunOptions o;
    o.profile.name = "wordcount";
    o.profile.unit_bytes = data.unit_bytes();
    o.profile.bytes_per_second_per_core = MBps(0.05);
    o.profile.per_job_overhead_seconds = 0.5;  // long jobs => crashes land mid-run
    o.profile.robj_bytes = 0;
    o.reduction_tree = false;
    o.task = &task;
    o.dataset = &data;
    return o;
  }

  RunResult run(const RunOptions& o, unsigned local_cores = 16,
                unsigned cloud_cores = 16, std::uint32_t chunks_per_file = 4) {
    Platform platform(PlatformSpec::paper_testbed(local_cores, cloud_cores));
    storage::DataLayout layout = storage::build_layout_for_units(
        data.units(), data.unit_bytes(), 6, chunks_per_file);
    storage::assign_stores_by_fraction(layout, 0.5, platform.local_store_id(),
                                       platform.cloud_store_id());
    return run_distributed(platform, layout, o);
  }

  void expect_correct(const RunResult& result) {
    ASSERT_NE(result.robj, nullptr);
    const auto& got = dynamic_cast<const api::HashCountRobj&>(*result.robj);
    ASSERT_EQ(got.distinct_keys(), reference.size());
    for (const auto& [k, v] : reference) {
      EXPECT_DOUBLE_EQ(got.get(k), v) << "word " << k;
    }
  }
};

TEST(DirectReduction, NoFailuresStillCorrect) {
  FaultRig rig;
  const auto result = rig.run(rig.options());
  rig.expect_correct(result);
  EXPECT_EQ(result.total_jobs(), 24u);
}

TEST(DirectReduction, MatchesTreeReductionResult) {
  FaultRig rig;
  RunOptions direct = rig.options();
  RunOptions tree = rig.options();
  tree.reduction_tree = true;
  rig.expect_correct(rig.run(direct));
  rig.expect_correct(rig.run(tree));
}

TEST(FaultTolerance, SingleCrashMidRunStillExactlyCorrect) {
  FaultRig rig;
  const auto clean = rig.run(rig.options());
  RunOptions o = rig.options();
  // Kill a local node mid-run: its accumulated robj (several chunks of
  // work) is lost and must be re-executed elsewhere.
  o.failures.push_back({kLocalSite, 0, 0.5 * clean.total_time});
  o.failure_detection_seconds = 0.2;
  const auto result = rig.run(o);
  rig.expect_correct(result);
  // Re-execution means more assignments than chunks.
  EXPECT_GT(result.total_jobs(), 24u);
}

TEST(FaultTolerance, CrashBeforeAnyWorkIsHarmless) {
  FaultRig rig;
  RunOptions o = rig.options();
  o.failures.push_back({kCloudSite, 2, /*at_seconds=*/0.001});
  o.failure_detection_seconds = 0.01;
  rig.expect_correct(rig.run(o));
}

TEST(FaultTolerance, CrashNearEndOfRunStillCorrect) {
  FaultRig rig;
  // Find the failure-free duration first, then kill someone at ~90% of it.
  const auto clean = rig.run(rig.options());
  RunOptions o = rig.options();
  o.failures.push_back({kLocalSite, 1, 0.9 * clean.total_time});
  o.failure_detection_seconds = 0.2;
  const auto result = rig.run(o);
  rig.expect_correct(result);
  EXPECT_GT(result.total_time, clean.total_time);  // recovery costs time
}

TEST(FaultTolerance, MultipleCrashesAcrossClusters) {
  FaultRig rig;
  const auto clean = rig.run(rig.options());
  RunOptions o = rig.options();
  o.failures.push_back({kLocalSite, 0, 0.3 * clean.total_time});
  o.failures.push_back({kCloudSite, 3, 0.5 * clean.total_time});
  o.failures.push_back({kCloudSite, 5, 0.8 * clean.total_time});
  o.failure_detection_seconds = 0.2;
  const auto result = rig.run(o);
  rig.expect_correct(result);
}

TEST(FaultTolerance, DetectionDelayDelaysRecovery) {
  FaultRig rig;
  const auto clean = rig.run(rig.options());
  RunOptions fast = rig.options();
  fast.failures.push_back({kLocalSite, 0, 0.5 * clean.total_time});
  fast.failure_detection_seconds = 0.2;
  RunOptions slow = fast;
  slow.failure_detection_seconds = 5.0 + clean.total_time;
  const auto fast_result = rig.run(fast);
  const auto slow_result = rig.run(slow);
  rig.expect_correct(fast_result);
  rig.expect_correct(slow_result);
  EXPECT_LT(fast_result.total_time, slow_result.total_time);
}

TEST(FaultTolerance, RejectsTreeModeWithFailures) {
  FaultRig rig;
  RunOptions o = rig.options();
  o.reduction_tree = true;
  o.failures.push_back({kLocalSite, 0, 1.0});
  EXPECT_THROW(rig.run(o), std::invalid_argument);
}

TEST(FaultTolerance, RejectsUnknownNode) {
  FaultRig rig;
  RunOptions o = rig.options();
  o.failures.push_back({kLocalSite, 99, 1.0});
  EXPECT_THROW(rig.run(o), std::invalid_argument);
}

TEST(FaultTolerance, RejectsWipingOutACluster) {
  FaultRig rig;
  RunOptions o = rig.options();
  o.failures.push_back({kLocalSite, 0, 1.0});
  o.failures.push_back({kLocalSite, 1, 2.0});
  // 16 local cores == 2 nodes: killing both leaves no live slave.
  EXPECT_THROW(rig.run(o), std::invalid_argument);
}

TEST(Checkpointing, WithoutFailuresResultUnchanged) {
  FaultRig rig;
  RunOptions o = rig.options();
  o.checkpoint_interval_seconds = 3.0;
  const auto result = rig.run(o);
  rig.expect_correct(result);
  EXPECT_EQ(result.total_jobs(), 24u);  // no re-execution
}

TEST(Checkpointing, BoundsWorkLostToACrash) {
  // 72 small jobs so the victim accumulates plenty of done work mid-run.
  FaultRig rig;
  const auto clean = rig.run(rig.options(), 16, 16, 12);

  // Crash mid-processing: without checkpointing everything the victim
  // processed is re-executed; with frequent checkpoints only the last
  // interval's work is.
  RunOptions no_ckpt = rig.options();
  no_ckpt.failures.push_back({kCloudSite, 0, 0.5 * clean.total_time});
  no_ckpt.failure_detection_seconds = 0.2;
  RunOptions ckpt = no_ckpt;
  ckpt.checkpoint_interval_seconds = 1.0;

  const auto lossy = rig.run(no_ckpt, 16, 16, 12);
  const auto protected_run = rig.run(ckpt, 16, 16, 12);
  rig.expect_correct(lossy);
  rig.expect_correct(protected_run);

  const auto reexec = [](const RunResult& r) { return r.total_jobs() - 72u; };
  EXPECT_GT(reexec(lossy), reexec(protected_run));
  EXPECT_LE(protected_run.total_time, lossy.total_time + 1e-9);
}

TEST(Checkpointing, CorrectAcrossIntervals) {
  FaultRig rig;
  const auto clean = rig.run(rig.options());
  for (double interval : {0.5, 1.5, 4.0}) {
    RunOptions o = rig.options();
    o.checkpoint_interval_seconds = interval;
    o.failures.push_back({kLocalSite, 0, 0.6 * clean.total_time});
    o.failure_detection_seconds = 0.2;
    rig.expect_correct(rig.run(o));
  }
}

TEST(Checkpointing, RejectsTreeMode) {
  FaultRig rig;
  RunOptions o = rig.options();
  o.reduction_tree = true;
  o.checkpoint_interval_seconds = 1.0;
  EXPECT_THROW(rig.run(o), std::invalid_argument);
}

class CrashTimeSweep : public ::testing::TestWithParam<double> {};

TEST_P(CrashTimeSweep, CorrectAtAnyCrashPoint) {
  FaultRig rig;
  const auto clean = rig.run(rig.options());
  RunOptions o = rig.options();
  o.failures.push_back(
      {kCloudSite, 1, GetParam() * clean.total_time});
  rig.expect_correct(rig.run(o));
}

INSTANTIATE_TEST_SUITE_P(CrashPoints, CrashTimeSweep,
                         ::testing::Values(0.05, 0.25, 0.5, 0.75, 0.95));

}  // namespace
}  // namespace cloudburst::middleware
