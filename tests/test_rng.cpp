// Tests for common/rng: determinism, range contracts, distribution sanity,
// and substream independence.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "common/rng.hpp"

namespace cloudburst {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next();
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Xoshiro256StarStar>);
  Xoshiro256StarStar gen(7);
  EXPECT_NE(gen(), gen());
}

TEST(Xoshiro, ZeroSeedStillWellMixed) {
  Xoshiro256StarStar gen(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(gen());
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(123);
  for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 100ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowZeroReturnsZero) {
  Rng rng(5);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all 7 values hit
}

TEST(Rng, NormalHasRoughlyCorrectMoments) {
  Rng rng(1234);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(5.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Rng, ExponentialHasCorrectMean) {
  Rng rng(55);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.05);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(77);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ZipfStaysInRange) {
  Rng rng(88);
  for (int i = 0; i < 5000; ++i) EXPECT_LT(rng.zipf(100, 1.2), 100u);
}

TEST(Rng, ZipfIsSkewedTowardLowRanks) {
  Rng rng(99);
  int low = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) low += rng.zipf(1000, 1.2) < 10;
  // Rank 0-9 should absorb far more than the uniform 1% share.
  EXPECT_GT(low, n / 5);
}

TEST(Rng, ZipfSingleElement) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.zipf(1, 1.1), 0u);
}

TEST(Rng, SubstreamsAreIndependent) {
  Rng a = Rng::substream(42, 0);
  Rng b = Rng::substream(42, 1);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_EQ(same, 0);
}

TEST(Rng, SubstreamsAreReproducible) {
  Rng a = Rng::substream(42, 3);
  Rng b = Rng::substream(42, 3);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

class RngBoundSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngBoundSweep, NextBelowIsRoughlyUniform) {
  const std::uint64_t bound = GetParam();
  Rng rng(1000 + bound);
  std::vector<int> counts(bound, 0);
  const int n = static_cast<int>(bound) * 1000;
  for (int i = 0; i < n; ++i) ++counts[rng.next_below(bound)];
  for (std::uint64_t v = 0; v < bound; ++v) {
    EXPECT_NEAR(counts[v], 1000, 250) << "value " << v << " of bound " << bound;
  }
}

INSTANTIATE_TEST_SUITE_P(SmallBounds, RngBoundSweep, ::testing::Values(2, 3, 5, 8, 13));

}  // namespace
}  // namespace cloudburst
