// Dynamic-control-plane tests: PlatformDirectory state machine + change
// feed, NodePool leasing/reaping/billing windows, per-tenant admission
// quotas, the CSV arrival-trace loader, the directory-off byte-identity
// pin, cross-job drain with zero lost work, seeded randomized
// register/retire under load, and composition with QoS + replication.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "cluster/platform.hpp"
#include "common/units.hpp"
#include "des/simulator.hpp"
#include "directory/platform_directory.hpp"
#include "middleware/runtime.hpp"
#include "qos/store_qos.hpp"
#include "replica/replica_set.hpp"
#include "storage/data_layout.hpp"
#include "trace/trace.hpp"
#include "workload/node_pool.hpp"
#include "workload/trace_file.hpp"
#include "workload/workload_manager.hpp"

namespace cloudburst {
namespace {

using namespace cloudburst::units;
using cluster::kCloudSite;
using cluster::kLocalSite;
using cluster::Platform;
using cluster::PlatformSpec;
using directory::DirectoryEvent;
using directory::PlatformDirectory;
using directory::ServiceState;

// --- directory state machine -------------------------------------------------

TEST(PlatformDirectory, BootstrapSkipsOfflineNodesUntilRegistered) {
  PlatformSpec spec = PlatformSpec::paper_testbed(4, 4);
  cluster::NodeSpec late = spec.cloud().nodes.back();
  late.offline = true;
  spec.cloud().nodes.push_back(late);
  Platform platform(spec);
  const std::uint32_t last =
      static_cast<std::uint32_t>(platform.nodes(kCloudSite).size()) - 1;

  PlatformDirectory dir(platform);
  EXPECT_EQ(dir.node_state(kCloudSite, 0), ServiceState::Absent);
  dir.bootstrap();

  // Everything but the offline node is Active; stores and sites are live.
  EXPECT_EQ(dir.node_state(kCloudSite, 0), ServiceState::Active);
  EXPECT_EQ(dir.node_state(kCloudSite, last), ServiceState::Absent);
  EXPECT_EQ(dir.active_node_count(),
            platform.nodes(kLocalSite).size() + platform.nodes(kCloudSite).size() - 1);
  EXPECT_TRUE(dir.store_live(platform.local_store_id()));
  EXPECT_TRUE(dir.store_live(platform.cloud_store_id()));
  EXPECT_TRUE(dir.site_live(kLocalSite));
  EXPECT_TRUE(dir.site_live(kCloudSite));

  // Capacity arrival: the offline node joins through register_node.
  dir.register_node(kCloudSite, last);
  EXPECT_EQ(dir.node_state(kCloudSite, last), ServiceState::Active);
  EXPECT_EQ(dir.node_generation(kCloudSite, last), 0u);
  const auto active = dir.active_nodes(kCloudSite);
  ASSERT_EQ(active.size(), platform.nodes(kCloudSite).size());
  EXPECT_EQ(active.back().endpoint, platform.nodes(kCloudSite).back().endpoint);
}

TEST(PlatformDirectory, RetirementLifecycleAndGenerationBump) {
  Platform platform(PlatformSpec::paper_testbed(4, 4));
  PlatformDirectory dir(platform);
  dir.bootstrap();

  // Double-registration of a live node is an error, not a silent no-op.
  EXPECT_THROW(dir.register_node(kCloudSite, 0), std::logic_error);

  dir.begin_node_retirement(kCloudSite, 0);
  EXPECT_EQ(dir.node_state(kCloudSite, 0), ServiceState::Draining);
  EXPECT_TRUE(dir.node_live(platform.nodes(kCloudSite)[0].endpoint));
  EXPECT_FALSE(dir.node_active(platform.nodes(kCloudSite)[0].endpoint));
  // A draining node is excluded from new placement.
  EXPECT_EQ(dir.active_nodes(kCloudSite).size(),
            platform.nodes(kCloudSite).size() - 1);

  dir.complete_node_retirement(kCloudSite, 0);
  EXPECT_EQ(dir.node_state(kCloudSite, 0), ServiceState::Retired);
  EXPECT_FALSE(dir.node_live(platform.nodes(kCloudSite)[0].endpoint));
  EXPECT_THROW(dir.begin_node_retirement(kCloudSite, 0), std::logic_error);

  // Re-registration resurrects the slot under a new generation.
  dir.register_node(kCloudSite, 0);
  EXPECT_EQ(dir.node_state(kCloudSite, 0), ServiceState::Active);
  EXPECT_EQ(dir.node_generation(kCloudSite, 0), 1u);

  EXPECT_THROW(dir.register_node(kCloudSite, 999), std::invalid_argument);
}

TEST(PlatformDirectory, WatchersSeeChangesInOrderAndUnwatchStops) {
  Platform platform(PlatformSpec::paper_testbed(4, 4));
  PlatformDirectory dir(platform);
  dir.bootstrap();

  std::vector<DirectoryEvent::Kind> seen;
  const auto id = dir.watch([&](const DirectoryEvent& e) { seen.push_back(e.kind); });
  std::size_t other = 0;
  dir.watch([&](const DirectoryEvent&) { ++other; });

  dir.begin_node_retirement(kCloudSite, 1);
  dir.complete_node_retirement(kCloudSite, 1);
  dir.register_node(kCloudSite, 1);
  dir.retire_store(platform.cloud_store_id());
  const std::vector<DirectoryEvent::Kind> expect = {
      DirectoryEvent::Kind::NodeDraining, DirectoryEvent::Kind::NodeRetired,
      DirectoryEvent::Kind::NodeRegistered, DirectoryEvent::Kind::StoreRetired};
  EXPECT_EQ(seen, expect);
  EXPECT_EQ(other, 4u);

  dir.unwatch(id);
  dir.retire_site(kCloudSite);
  EXPECT_EQ(seen.size(), 4u);  // unwatched: no further delivery
  EXPECT_EQ(other, 5u);
  EXPECT_FALSE(dir.site_live(kCloudSite));
}

// --- node pool ---------------------------------------------------------------

TEST(NodePool, ColdLeaseBootsAndWarmLeaseIsInstant) {
  des::Simulator sim;
  workload::PoolOptions opts;
  opts.enabled = true;
  opts.boot_seconds = 60.0;
  workload::NodePool pool(sim, opts, nullptr);
  pool.add_node(7, "cloud0");
  ASSERT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.leasable(), 1u);

  const auto first = pool.lease(1, "alice", 0, 0.0);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_TRUE(first[0].cold);
  EXPECT_DOUBLE_EQ(first[0].ready_in_seconds, 60.0);

  // A second job mid-boot shares the residual window, not a fresh one.
  const auto shared = pool.lease(2, "bob", 0, 40.0);
  ASSERT_EQ(shared.size(), 1u);
  EXPECT_FALSE(shared[0].cold);
  EXPECT_DOUBLE_EQ(shared[0].ready_in_seconds, 20.0);

  // After the boot completes, leases are warm and free of wait.
  pool.release_job(1, 100.0);
  const auto warm = pool.lease(3, "alice", 0, 100.0);
  ASSERT_EQ(warm.size(), 1u);
  EXPECT_FALSE(warm[0].cold);
  EXPECT_DOUBLE_EQ(warm[0].ready_in_seconds, 0.0);

  EXPECT_EQ(pool.stats().cold_boots, 1u);
  EXPECT_EQ(pool.stats().warm_leases, 2u);
  EXPECT_DOUBLE_EQ(pool.stats().boot_wait_seconds, 80.0);
  // Lease-seconds attribute to the releasing job and its tenant.
  EXPECT_DOUBLE_EQ(pool.job_lease_seconds(1), 100.0);
  EXPECT_DOUBLE_EQ(pool.tenant_lease_seconds("alice"), 100.0);
}

TEST(NodePool, IdleReapClosesBillingWindowAndReturnsNodeCold) {
  des::Simulator sim;
  workload::PoolOptions opts;
  opts.enabled = true;
  opts.boot_seconds = 10.0;
  opts.idle_reap_seconds = 30.0;
  workload::NodePool pool(sim, opts, nullptr);
  pool.add_node(7, "cloud0");

  // Pool calls happen inside sim events (as the manager makes them), so the
  // idle-reap timer is anchored at the release's sim time.
  pool.lease(1, "a", 0, 0.0);
  sim.schedule(des::from_seconds(50.0), [&] { pool.release_job(1, 50.0); });
  sim.run_until(des::from_seconds(100.0));

  EXPECT_EQ(pool.stats().reaps, 1u);
  const auto windows = pool.windows(1000.0);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_DOUBLE_EQ(windows[0].start, 0.0);
  EXPECT_DOUBLE_EQ(windows[0].end, 80.0);  // release + 30 s idle

  // Re-leasing after the reap opens a second billing window.
  pool.lease(2, "a", 0, 200.0);
  EXPECT_EQ(pool.stats().cold_boots, 2u);
  EXPECT_EQ(pool.windows(1000.0).size(), 2u);
}

TEST(NodePool, ReLeaseDuringIdleWindowCancelsTheReap) {
  des::Simulator sim;
  workload::PoolOptions opts;
  opts.enabled = true;
  opts.boot_seconds = 10.0;
  opts.idle_reap_seconds = 30.0;
  workload::NodePool pool(sim, opts, nullptr);
  pool.add_node(7, "cloud0");

  pool.lease(1, "a", 0, 0.0);
  sim.schedule(des::from_seconds(20.0), [&] { pool.release_job(1, 20.0); });
  // Re-lease inside the idle window: the pending reap must not fire.
  sim.schedule(des::from_seconds(30.0), [&] { pool.lease(2, "a", 0, 30.0); });
  sim.run_until(des::from_seconds(200.0));

  EXPECT_EQ(pool.stats().reaps, 0u);
  EXPECT_EQ(pool.stats().cold_boots, 1u);
  EXPECT_EQ(pool.stats().warm_leases, 1u);
  ASSERT_EQ(pool.windows(500.0).size(), 1u);
  EXPECT_DOUBLE_EQ(pool.windows(500.0)[0].end, 500.0);  // still open
}

TEST(NodePool, BlockStopsLeasingAndRetireClosesTheWindow) {
  des::Simulator sim;
  workload::PoolOptions opts;
  opts.enabled = true;
  opts.boot_seconds = 5.0;
  workload::NodePool pool(sim, opts, nullptr);
  pool.add_node(7, "cloud0");
  pool.add_node(8, "cloud1");

  pool.lease(1, "a", 0, 0.0);
  pool.block_node(7);
  EXPECT_EQ(pool.leasable(), 1u);
  const auto leases = pool.lease(2, "a", 0, 1.0);
  ASSERT_EQ(leases.size(), 1u);
  EXPECT_EQ(leases[0].node, 8u);

  pool.retire_node(7, 42.0);
  const auto windows = pool.windows(100.0);
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_DOUBLE_EQ(windows[0].end, 42.0);   // retired: closed at retirement
  EXPECT_DOUBLE_EQ(windows[1].end, 100.0);  // live: closed at the fallback

  // Directory re-registration: the retired node is leasable (Cold) again.
  pool.add_node(7, "cloud0");
  EXPECT_EQ(pool.leasable(), 2u);
}

// --- workload fixture --------------------------------------------------------

/// Small two-site platform + an 8-file layout that runs in milliseconds.
struct DirectoryRig {
  Platform platform{PlatformSpec::paper_testbed(4, 4)};
  storage::DataLayout layout;
  middleware::RunOptions options;

  DirectoryRig() {
    storage::LayoutSpec spec;
    spec.total_bytes = MiB(256);
    spec.num_files = 8;
    spec.chunks_per_file = 2;
    spec.unit_bytes = 64;
    layout = storage::build_layout(spec);
    storage::assign_stores_by_fraction(layout, 0.5, platform.local_store_id(),
                                       platform.cloud_store_id());
    options.profile.name = "dir";
    options.profile.unit_bytes = 64;
    options.profile.bytes_per_second_per_core = MBps(4);
    options.profile.robj_bytes = KiB(64);
  }

  workload::JobSpec job(std::string name, std::string tenant = "default") {
    workload::JobSpec spec;
    spec.name = std::move(name);
    spec.tenant = std::move(tenant);
    spec.layout = layout;
    spec.options = options;
    return spec;
  }
};

// --- admission quotas --------------------------------------------------------

TEST(TenantQuotas, ConcurrentJobCapRejectsAndReleasesOnFinish) {
  DirectoryRig rig;
  trace::Tracer tracer;
  workload::WorkloadOptions opts;
  opts.policy = workload::SchedulingPolicy::FairShare;
  opts.tracer = &tracer;
  opts.quotas["alice"].max_concurrent_jobs = 1;
  workload::WorkloadManager manager(rig.platform, opts);
  manager.submit(rig.job("a1", "alice"), 0.0);
  manager.submit(rig.job("a2", "alice"), 0.0);   // over the cap: rejected
  manager.submit(rig.job("b1", "bob"), 0.0);     // other tenants unaffected
  manager.submit(rig.job("a3", "alice"), 5000.0);  // a1 long done: admitted
  const auto result = manager.run();

  EXPECT_EQ(result.rejected_jobs, 1u);
  EXPECT_TRUE(result.job(2).rejected);
  EXPECT_EQ(result.job(2).reject_reason, workload::QuotaReject::ConcurrentJobs);
  EXPECT_FALSE(result.job(1).rejected);
  EXPECT_FALSE(result.job(3).rejected);
  EXPECT_FALSE(result.job(4).rejected);
  // A rejected job never ran: zero span, zero cost, no run events.
  EXPECT_DOUBLE_EQ(result.job(2).start_seconds, result.job(2).submit_seconds);
  EXPECT_DOUBLE_EQ(result.job(2).finish_seconds, result.job(2).submit_seconds);
  EXPECT_DOUBLE_EQ(result.job(2).raw_cost.total_usd(), 0.0);
  EXPECT_EQ(result.job(2).run.total_jobs(), 0u);
  // Tenant rollup and trace agree.
  ASSERT_NE(result.tenant("alice"), nullptr);
  EXPECT_EQ(result.tenant("alice")->rejected, 1u);
  EXPECT_EQ(result.tenant("alice")->jobs, 2u);  // admitted jobs only
  EXPECT_EQ(tracer.count(trace::EventKind::JobRejected), 1u);
  EXPECT_EQ(tracer.count(trace::EventKind::JobStarted), 3u);
  // SLO rate covers admitted jobs only (all deadline-free here).
  EXPECT_DOUBLE_EQ(result.slo_hit_rate, 1.0);
}

TEST(TenantQuotas, BytesInFlightCapRejects) {
  DirectoryRig rig;
  workload::WorkloadOptions opts;
  opts.policy = workload::SchedulingPolicy::FairShare;
  opts.quotas["alice"].max_bytes_in_flight = MiB(300);  // one 256 MiB job fits
  workload::WorkloadManager manager(rig.platform, opts);
  manager.submit(rig.job("a1", "alice"), 0.0);
  manager.submit(rig.job("a2", "alice"), 0.0);
  const auto result = manager.run();
  EXPECT_FALSE(result.job(1).rejected);
  EXPECT_TRUE(result.job(2).rejected);
  EXPECT_EQ(result.job(2).reject_reason, workload::QuotaReject::BytesInFlight);
}

TEST(TenantQuotas, UsdPerHourCapRejects) {
  DirectoryRig rig;
  workload::WorkloadOptions opts;
  opts.policy = workload::SchedulingPolicy::FairShare;
  // Each job's burn estimate is cloud_nodes x instance-hour price; allow one
  // job's burn but not two.
  const double one_job = static_cast<double>(rig.platform.cloud_node_count()) *
                         opts.pricing.instance_hour_usd;
  opts.quotas["alice"].max_usd_per_hour = 1.5 * one_job;
  workload::WorkloadManager manager(rig.platform, opts);
  manager.submit(rig.job("a1", "alice"), 0.0);
  manager.submit(rig.job("a2", "alice"), 0.0);
  const auto result = manager.run();
  EXPECT_FALSE(result.job(1).rejected);
  EXPECT_TRUE(result.job(2).rejected);
  EXPECT_EQ(result.job(2).reject_reason, workload::QuotaReject::UsdPerHour);
  EXPECT_STREQ(workload::to_string(result.job(2).reject_reason), "usd-per-hour");
}

// --- CSV arrival-trace loader ------------------------------------------------

std::string write_temp(const std::string& name, const std::string& body) {
  const std::string path = testing::TempDir() + name;
  std::ofstream out(path);
  out << body;
  return path;
}

TEST(TraceFile, ParsesHeaderCommentsAndRows) {
  const auto path = write_temp("arrivals_ok.csv",
                               "# production trace, one job per row\n"
                               "submit_seconds,tenant,job_bytes\n"
                               "\n"
                               "3.5, analytics, 1048576\n"
                               "0.0,reports,2048\n");
  const auto records = workload::load_arrival_csv(path);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_DOUBLE_EQ(records[0].submit_seconds, 3.5);
  EXPECT_EQ(records[0].tenant, "analytics");
  EXPECT_EQ(records[0].job_bytes, 1048576u);
  EXPECT_EQ(records[1].tenant, "reports");

  // Replay sorts: the trace feeds submit_all in time order.
  const auto trace = workload::to_arrival_trace(records);
  const std::vector<double> expect = {0.0, 3.5};
  EXPECT_EQ(trace.times, expect);
  std::remove(path.c_str());
}

void expect_load_failure(const std::string& name, const std::string& body,
                         const std::string& want_line,
                         const std::string& want_reason) {
  const auto path = write_temp(name, body);
  try {
    workload::load_arrival_csv(path);
    FAIL() << "expected load_arrival_csv to throw for " << name;
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find(path + ":" + want_line + ":"), std::string::npos) << msg;
    EXPECT_NE(msg.find(want_reason), std::string::npos) << msg;
  }
  std::remove(path.c_str());
}

TEST(TraceFile, MalformedInputsFailWithPathAndLine) {
  EXPECT_THROW(workload::load_arrival_csv("/nonexistent/trace.csv"),
               std::runtime_error);
  expect_load_failure("two_cols.csv", "1.0,alice\n", "1", "expected 3 columns");
  expect_load_failure("bad_number.csv", "1.0,alice,100\nxyz,bob,100\n", "2",
                      "submit_seconds is not a number");
  expect_load_failure("second_header.csv", "t,tenant,bytes\nt,tenant,bytes\n",
                      "2", "submit_seconds is not a number");
  expect_load_failure("negative_time.csv", "-1.0,alice,100\n", "1",
                      "must be non-negative");
  expect_load_failure("empty_tenant.csv", "1.0,,100\n", "1",
                      "tenant must not be empty");
  expect_load_failure("bad_bytes.csv", "1.0,alice,12.5\n", "1",
                      "job_bytes is not an unsigned integer");
  expect_load_failure("zero_bytes.csv", "1.0,alice,0\n", "1",
                      "job_bytes must be positive");
}

// --- directory-off byte identity ---------------------------------------------

TEST(DirectoryIntegration, AttachedButUnmutatedDirectoryIsByteIdentical) {
  // A directory that is bootstrapped and never mutated must not move a
  // single event relative to the same workload without one.
  const auto run_workload = [](bool with_directory) {
    DirectoryRig rig;
    PlatformDirectory dir(rig.platform);
    workload::WorkloadOptions opts;
    opts.policy = workload::SchedulingPolicy::FairShare;
    if (with_directory) {
      dir.bootstrap();
      opts.directory = &dir;
    }
    workload::WorkloadManager manager(rig.platform, opts);
    manager.submit(rig.job("a", "alice"), 0.0);
    manager.submit(rig.job("b", "bob"), 1.0);
    return manager.run();
  };
  const auto baseline = run_workload(false);
  const auto attached = run_workload(true);

  EXPECT_DOUBLE_EQ(attached.makespan, baseline.makespan);
  ASSERT_EQ(attached.jobs.size(), baseline.jobs.size());
  for (std::size_t i = 0; i < baseline.jobs.size(); ++i) {
    const auto& a = attached.jobs[i];
    const auto& b = baseline.jobs[i];
    EXPECT_DOUBLE_EQ(a.finish_seconds, b.finish_seconds);
    EXPECT_DOUBLE_EQ(a.run.total_time, b.run.total_time);
    EXPECT_EQ(a.run.store_requests, b.run.store_requests);
    EXPECT_EQ(a.run.bytes_from_store, b.run.bytes_from_store);
    ASSERT_EQ(a.run.nodes.size(), b.run.nodes.size());
    for (std::size_t n = 0; n < b.run.nodes.size(); ++n) {
      EXPECT_DOUBLE_EQ(a.run.nodes[n].finish_time, b.run.nodes[n].finish_time);
      EXPECT_EQ(a.run.nodes[n].jobs, b.run.nodes[n].jobs);
    }
  }
  EXPECT_DOUBLE_EQ(attached.platform_cost.total_usd(),
                   baseline.platform_cost.total_usd());
}

TEST(DirectoryIntegration, PoolRequiresADirectory) {
  DirectoryRig rig;
  workload::WorkloadOptions opts;
  opts.pool.enabled = true;  // no directory attached
  EXPECT_THROW(workload::WorkloadManager(rig.platform, opts),
               std::invalid_argument);
}

// --- cross-job drain ---------------------------------------------------------

/// Pool-ready job options: slow cores so mid-run mutations land while jobs
/// still compute, reduction_tree off (drain requirement).
middleware::RunOptions slow_pool_options() {
  middleware::RunOptions options;
  options.profile.name = "dir-slow";
  options.profile.unit_bytes = 64;
  options.profile.bytes_per_second_per_core = KiB(256);
  options.profile.robj_bytes = KiB(64);
  options.reduction_tree = false;
  return options;
}

TEST(DirectoryIntegration, CrossJobDrainLosesNoCompletedWork) {
  Platform platform(PlatformSpec::paper_testbed(4, 4));
  PlatformDirectory dir(platform);
  dir.bootstrap();

  workload::WorkloadOptions opts;
  opts.policy = workload::SchedulingPolicy::FairShare;
  opts.directory = &dir;
  opts.pool.enabled = true;
  opts.pool.boot_seconds = 5.0;
  workload::WorkloadManager manager(platform, opts);

  storage::LayoutSpec lspec;
  lspec.total_bytes = MiB(64);
  lspec.num_files = 16;
  lspec.chunks_per_file = 2;
  lspec.unit_bytes = 64;
  storage::DataLayout layout = storage::build_layout(lspec);
  storage::assign_stores_by_fraction(layout, 0.5, platform.local_store_id(),
                                     platform.cloud_store_id());
  for (int i = 0; i < 2; ++i) {
    workload::JobSpec spec;
    spec.name = "j" + std::to_string(i);
    spec.tenant = i == 0 ? "alice" : "bob";
    spec.layout = layout;
    spec.options = slow_pool_options();
    manager.submit(std::move(spec), 0.0);
  }

  // Retire a cloud node both jobs compute on, mid-run.
  platform.sim().schedule(des::from_seconds(15.0), [&dir] {
    dir.begin_node_retirement(kCloudSite, 0);
  });
  const auto result = manager.run();

  // The drain vacated running jobs and the retirement completed — with
  // every already-processed chunk preserved (nothing re-executed).
  EXPECT_EQ(dir.node_state(kCloudSite, 0), ServiceState::Retired);
  std::uint32_t vacated = 0, reexecuted = 0;
  for (const auto& job : result.jobs) {
    vacated += job.run.lifecycle.nodes_vacated;
    reexecuted += job.run.lifecycle.chunks_reexecuted;
    EXPECT_EQ(job.run.total_jobs(), 32u) << job.name;  // all chunks processed
  }
  EXPECT_GT(vacated, 0u);
  EXPECT_EQ(reexecuted, 0u);
  EXPECT_GT(result.pool.cold_boots, 0u);
}

// --- randomized register/retire under load -----------------------------------

workload::WorkloadResult run_randomized(std::uint64_t seed) {
  PlatformSpec spec = PlatformSpec::paper_testbed(8, 8);
  cluster::NodeSpec late = spec.cloud().nodes.back();
  late.offline = true;
  spec.cloud().nodes.push_back(late);
  spec.cloud().nodes.push_back(late);
  Platform platform(spec);
  const std::uint32_t cloud_nodes =
      static_cast<std::uint32_t>(platform.nodes(kCloudSite).size());

  PlatformDirectory dir(platform);
  dir.bootstrap();
  workload::WorkloadOptions opts;
  opts.policy = workload::SchedulingPolicy::FairShare;
  opts.directory = &dir;
  opts.pool.enabled = true;
  opts.pool.boot_seconds = 5.0;
  opts.pool.idle_reap_seconds = 60.0;
  workload::WorkloadManager manager(platform, opts);

  storage::LayoutSpec lspec;
  lspec.total_bytes = MiB(96);
  lspec.num_files = 24;
  lspec.chunks_per_file = 2;
  lspec.unit_bytes = 64;
  storage::DataLayout layout = storage::build_layout(lspec);
  storage::assign_stores_by_fraction(layout, 0.5, platform.local_store_id(),
                                     platform.cloud_store_id());
  for (int i = 0; i < 4; ++i) {
    workload::JobSpec job;
    job.name = "r" + std::to_string(i);
    job.tenant = i % 2 == 0 ? "alice" : "bob";
    job.layout = layout;
    job.options = slow_pool_options();
    job.options.profile.bytes_per_second_per_core = KiB(128);
    manager.submit(std::move(job), i < 2 ? 0.0 : 20.0);
  }

  // Seeded mutation schedule: times and node picks are drawn up front; the
  // action at fire time depends only on the (deterministic) directory state.
  // Cloud node 0 is never touched so jobs always keep one cloud node.
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> when(5.0, 60.0);
  std::uniform_int_distribution<std::uint32_t> which(1, cloud_nodes - 1);
  for (int i = 0; i < 12; ++i) {
    const double at = when(rng);
    const std::uint32_t node = which(rng);
    platform.sim().schedule(des::from_seconds(at), [&dir, node] {
      switch (dir.node_state(kCloudSite, node)) {
        case ServiceState::Active:
          dir.begin_node_retirement(kCloudSite, node);
          break;
        case ServiceState::Absent:
        case ServiceState::Retired:
          dir.register_node(kCloudSite, node);
          break;
        case ServiceState::Draining:
          break;  // a cross-job drain is already in flight
      }
    });
  }
  return manager.run();
}

TEST(DirectoryIntegration, RandomizedRegisterRetireUnderLoadIsDeterministic) {
  const auto a = run_randomized(1234);
  const auto b = run_randomized(1234);

  // Same seed: the whole workload replays exactly.
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  std::uint32_t vacated = 0, reexecuted = 0;
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs[i].finish_seconds, b.jobs[i].finish_seconds);
    EXPECT_EQ(a.jobs[i].run.total_jobs(), b.jobs[i].run.total_jobs());
    EXPECT_EQ(a.jobs[i].run.total_jobs(), 48u);  // every chunk processed
    vacated += a.jobs[i].run.lifecycle.nodes_vacated;
    reexecuted += a.jobs[i].run.lifecycle.chunks_reexecuted;
  }
  EXPECT_DOUBLE_EQ(a.platform_cost.total_usd(), b.platform_cost.total_usd());
  EXPECT_EQ(a.pool.cold_boots, b.pool.cold_boots);
  EXPECT_EQ(a.pool.warm_leases, b.pool.warm_leases);
  // The churn was real (drains vacated live slaves) and lost nothing.
  EXPECT_GT(vacated, 0u);
  EXPECT_EQ(reexecuted, 0u);
}

// --- composition: directory x qos x replication x lifecycle ------------------

TEST(DirectoryIntegration, ComposesWithQosAndReplicationUnderDrain) {
  Platform platform(PlatformSpec::paper_testbed(4, 4));
  PlatformDirectory dir(platform);
  dir.bootstrap();

  replica::ReplicationConfig rcfg;
  rcfg.replication_factor = 2;
  rcfg.placement = replica::PlacementPolicy::CrossSite;
  replica::ReplicaSet rs{rcfg};

  qos::QosConfig qcfg;
  qcfg.tenant_weights = {{"batch", 1.0}, {"interactive", 3.0}};
  qos::StoreQos q{qcfg};

  workload::WorkloadOptions opts;
  opts.policy = workload::SchedulingPolicy::FairShare;
  opts.directory = &dir;
  opts.pool.enabled = true;
  opts.pool.boot_seconds = 5.0;
  workload::WorkloadManager manager(platform, opts);

  storage::LayoutSpec lspec;
  lspec.total_bytes = MiB(64);
  lspec.num_files = 16;
  lspec.chunks_per_file = 2;
  lspec.unit_bytes = 64;
  storage::DataLayout layout = storage::build_layout(lspec);
  storage::assign_stores_by_fraction(layout, 0.5, platform.local_store_id(),
                                     platform.cloud_store_id());
  for (int i = 0; i < 2; ++i) {
    workload::JobSpec spec;
    spec.name = i == 0 ? "scan" : "probe";
    spec.tenant = i == 0 ? "batch" : "interactive";
    spec.layout = layout;
    spec.options = slow_pool_options();
    spec.options.qos = &q;
    spec.options.replication = &rs;
    manager.submit(std::move(spec), 0.0);
  }
  platform.sim().schedule(des::from_seconds(15.0), [&dir] {
    dir.begin_node_retirement(kCloudSite, 0);
  });
  const auto result = manager.run();

  // Every chunk processed under the full stack; the drain lost nothing.
  std::uint32_t vacated = 0, reexecuted = 0;
  for (const auto& job : result.jobs) {
    EXPECT_EQ(job.run.total_jobs(), 32u) << job.name;
    vacated += job.run.lifecycle.nodes_vacated;
    reexecuted += job.run.lifecycle.chunks_reexecuted;
  }
  EXPECT_GT(vacated, 0u);
  EXPECT_EQ(reexecuted, 0u);
  EXPECT_EQ(dir.node_state(kCloudSite, 0), ServiceState::Retired);

  // QoS arbitration was live and per-tenant reports surfaced.
  ASSERT_NE(result.tenant("batch"), nullptr);
  ASSERT_NE(result.tenant("interactive"), nullptr);
  EXPECT_TRUE(result.tenant("batch")->qos.active);
  EXPECT_TRUE(result.tenant("interactive")->qos.active);
  EXPECT_GT(result.tenant("batch")->qos.store_requests, 0u);
  // Pool lease time attributed per tenant.
  EXPECT_GT(result.tenant("batch")->lease_seconds, 0.0);
  EXPECT_GT(result.tenant("interactive")->lease_seconds, 0.0);

  // Attribution still partitions the platform bill exactly.
  double attributed = 0;
  for (const auto& job : result.jobs) attributed += job.attributed_cost.total_usd();
  EXPECT_NEAR(attributed, result.platform_cost.total_usd(), 1e-9);
}

}  // namespace
}  // namespace cloudburst
