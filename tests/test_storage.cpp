// Tests for the storage substrate: layout geometry, store assignment, the
// index round trip, and both store services' timing/stat behavior.
#include <gtest/gtest.h>

#include <numeric>

#include "common/units.hpp"
#include "des/simulator.hpp"
#include "storage/data_layout.hpp"
#include "storage/local_store.hpp"
#include "storage/object_store.hpp"

namespace cloudburst::storage {
namespace {

using namespace cloudburst::units;
using des::from_seconds;
using des::Simulator;

LayoutSpec paper_like_spec() {
  LayoutSpec spec;
  spec.total_bytes = GiB(12);
  spec.num_files = 32;
  spec.chunks_per_file = 3;
  spec.unit_bytes = 40;
  return spec;
}

TEST(DataLayout, GeometryMatchesSpec) {
  const DataLayout layout = build_layout(paper_like_spec());
  EXPECT_EQ(layout.files().size(), 32u);
  EXPECT_EQ(layout.chunks().size(), 96u);
  EXPECT_EQ(layout.total_bytes(), GiB(12));
}

TEST(DataLayout, EveryByteAccountedFor) {
  LayoutSpec spec = paper_like_spec();
  spec.total_bytes = 1000003;  // prime: forces uneven chunk split
  spec.num_files = 7;
  spec.chunks_per_file = 3;
  const DataLayout layout = build_layout(spec);
  std::uint64_t total = 0;
  for (const auto& c : layout.chunks()) total += c.bytes;
  EXPECT_EQ(total, 1000003u);
}

TEST(DataLayout, ChunksAreNearlyEven) {
  const DataLayout layout = build_layout(paper_like_spec());
  std::uint64_t lo = UINT64_MAX, hi = 0;
  for (const auto& c : layout.chunks()) {
    lo = std::min(lo, c.bytes);
    hi = std::max(hi, c.bytes);
  }
  EXPECT_LE(hi - lo, 1u);
}

TEST(DataLayout, ChunkOffsetsTileFiles) {
  const DataLayout layout = build_layout(paper_like_spec());
  for (const auto& f : layout.files()) {
    std::uint64_t offset = 0;
    for (std::uint32_t k = 0; k < f.chunk_count; ++k) {
      const auto& c = layout.chunk(f.first_chunk + k);
      EXPECT_EQ(c.file, f.id);
      EXPECT_EQ(c.index_in_file, k);
      EXPECT_EQ(c.offset, offset);
      offset += c.bytes;
    }
    EXPECT_EQ(offset, f.bytes);
  }
}

TEST(DataLayout, UnitsDeriveFromBytes) {
  LayoutSpec spec = paper_like_spec();
  spec.unit_bytes = 100;
  const DataLayout layout = build_layout(spec);
  for (const auto& c : layout.chunks()) {
    EXPECT_EQ(c.units, c.bytes / 100);
  }
}

TEST(DataLayout, RejectsDegenerateSpecs) {
  LayoutSpec spec = paper_like_spec();
  spec.num_files = 0;
  EXPECT_THROW(build_layout(spec), std::invalid_argument);
  spec = paper_like_spec();
  spec.unit_bytes = 0;
  EXPECT_THROW(build_layout(spec), std::invalid_argument);
  spec = paper_like_spec();
  spec.total_bytes = 10;  // fewer bytes than chunks
  EXPECT_THROW(build_layout(spec), std::invalid_argument);
}

class FractionSweep : public ::testing::TestWithParam<double> {};

TEST_P(FractionSweep, StoreAssignmentHitsTargetWithinOneFile) {
  const double target = GetParam();
  DataLayout layout = build_layout(paper_like_spec());
  const double achieved = assign_stores_by_fraction(layout, target, 0, 1);
  // Whole-file granularity: at most one file (1/32) away from the target.
  EXPECT_NEAR(achieved, target, 1.0 / 32 + 1e-9);
  EXPECT_EQ(layout.bytes_on(0) + layout.bytes_on(1), layout.total_bytes());
  EXPECT_NEAR(static_cast<double>(layout.bytes_on(0)) /
                  static_cast<double>(layout.total_bytes()),
              achieved, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Fractions, FractionSweep,
                         ::testing::Values(0.0, 1.0 / 6, 1.0 / 3, 0.5, 2.0 / 3, 1.0));

TEST(DataLayout, ChunksOnReportsPerStore) {
  DataLayout layout = build_layout(paper_like_spec());
  assign_stores_by_fraction(layout, 0.5, 0, 1);
  const auto on0 = layout.chunks_on(0);
  const auto on1 = layout.chunks_on(1);
  EXPECT_EQ(on0.size() + on1.size(), 96u);
  for (ChunkId c : on0) EXPECT_EQ(layout.store_of(c), 0u);
  for (ChunkId c : on1) EXPECT_EQ(layout.store_of(c), 1u);
}

TEST(DataLayout, FractionOutOfRangeThrows) {
  DataLayout layout = build_layout(paper_like_spec());
  EXPECT_THROW(assign_stores_by_fraction(layout, -0.1, 0, 1), std::invalid_argument);
  EXPECT_THROW(assign_stores_by_fraction(layout, 1.1, 0, 1), std::invalid_argument);
}

TEST(DataIndex, SerializeParseRoundTrip) {
  DataLayout layout = build_layout(paper_like_spec());
  assign_stores_by_fraction(layout, 1.0 / 3, 0, 1);
  BufferWriter w;
  serialize_index(layout, w);
  BufferReader r(w.buffer());
  const DataLayout parsed = parse_index(r);
  EXPECT_EQ(parsed, layout);
}

TEST(DataIndex, BadMagicRejected) {
  BufferWriter w;
  w.write_u32(0x12345678);
  BufferReader r(w.buffer());
  EXPECT_THROW(parse_index(r), std::runtime_error);
}

// --- store services ----------------------------------------------------------

/// A site with one reader endpoint and one store endpoint behind a disk link.
struct StoreRig {
  Simulator sim;
  net::Network net{sim};
  net::EndpointId reader, store_ep;
  net::LinkId disk;

  explicit StoreRig(double disk_bw) {
    const auto site = net.add_site("site");
    disk = net.add_link("disk", disk_bw, 0);
    store_ep = net.add_endpoint("store", site);
    net.set_access_path(store_ep, {disk});
    reader = net.add_endpoint("reader", site);
  }
};

ChunkInfo make_chunk(ChunkId id, FileId file, std::uint32_t index, std::uint64_t bytes) {
  ChunkInfo c;
  c.id = id;
  c.file = file;
  c.index_in_file = index;
  c.bytes = bytes;
  c.units = bytes;
  return c;
}

TEST(LocalStore, SequentialReadAvoidsSeek) {
  StoreRig rig(1e6);
  LocalStore store(0, rig.sim, rig.net, rig.store_ep,
                   LocalStore::Params{from_seconds(0.5), 0, 0});
  double t1 = -1, t2 = -1;
  store.fetch(rig.reader, make_chunk(0, 0, 0, 1'000'000), 1,
              [&](const FetchResult&) { t1 = des::to_seconds(rig.sim.now()); });
  rig.sim.run();
  store.fetch(rig.reader, make_chunk(1, 0, 1, 1'000'000), 1,
              [&](const FetchResult&) { t2 = des::to_seconds(rig.sim.now()); });
  rig.sim.run();
  EXPECT_NEAR(t1, 1.5, 1e-6);       // first access seeks
  EXPECT_NEAR(t2 - t1, 1.0, 1e-6);  // continuation does not
  EXPECT_EQ(store.stats().seeks, 1u);
  EXPECT_EQ(store.stats().requests, 2u);
}

TEST(LocalStore, NonConsecutiveChunkSeeks) {
  StoreRig rig(1e6);
  LocalStore store(0, rig.sim, rig.net, rig.store_ep,
                   LocalStore::Params{from_seconds(0.5), 0, 0});
  store.fetch(rig.reader, make_chunk(0, 0, 0, 1000), 1, nullptr);
  rig.sim.run();
  store.fetch(rig.reader, make_chunk(2, 0, 2, 1000), 1, nullptr);  // skips index 1
  rig.sim.run();
  EXPECT_EQ(store.stats().seeks, 2u);
}

TEST(LocalStore, DifferentReaderForcesSeek) {
  StoreRig rig(1e6);
  const auto reader2 = rig.net.add_endpoint("reader2", 0);
  LocalStore store(0, rig.sim, rig.net, rig.store_ep,
                   LocalStore::Params{from_seconds(0.5), 0, 0});
  store.fetch(rig.reader, make_chunk(0, 0, 0, 1000), 1, nullptr);
  rig.sim.run();
  store.fetch(reader2, make_chunk(1, 0, 1, 1000), 1, nullptr);
  rig.sim.run();
  EXPECT_EQ(store.stats().seeks, 2u);
}

TEST(LocalStore, PerStreamCapLimitsSingleReader) {
  StoreRig rig(10e6);
  LocalStore store(0, rig.sim, rig.net, rig.store_ep,
                   LocalStore::Params{0, 0, /*per_stream=*/1e6});
  double done = -1;
  store.fetch(rig.reader, make_chunk(0, 0, 0, 1'000'000), 1,
              [&](const FetchResult&) { done = des::to_seconds(rig.sim.now()); });
  rig.sim.run();
  EXPECT_NEAR(done, 1.0, 1e-6);  // capped despite the 10 MB/s disk
}

TEST(LocalStore, BytesServedAccumulate) {
  StoreRig rig(1e6);
  LocalStore store(0, rig.sim, rig.net, rig.store_ep, LocalStore::Params{0, 0, 0});
  store.fetch(rig.reader, make_chunk(0, 0, 0, 123), 1, nullptr);
  store.fetch(rig.reader, make_chunk(1, 0, 1, 877), 1, nullptr);
  rig.sim.run();
  EXPECT_EQ(store.stats().bytes_served, 1000u);
}

TEST(ObjectStore, RequestLatencyAppliesOnce) {
  StoreRig rig(1e6);
  ObjectStore store(1, rig.sim, rig.net, rig.store_ep,
                    ObjectStore::Params{from_seconds(0.25), 0});
  double done = -1;
  store.fetch(rig.reader, make_chunk(0, 0, 0, 1'000'000), 1,
              [&](const FetchResult&) { done = des::to_seconds(rig.sim.now()); });
  rig.sim.run();
  EXPECT_NEAR(done, 1.25, 1e-6);
}

TEST(ObjectStore, MultipleStreamsBeatPerConnectionCap) {
  // 4 MB chunk, 1 MB/s per connection, 10 MB/s aggregate: one stream takes
  // 4s; four streams take 1s.
  StoreRig rig(10e6);
  ObjectStore store(1, rig.sim, rig.net, rig.store_ep, ObjectStore::Params{0, 1e6});
  double done1 = -1;
  store.fetch(rig.reader, make_chunk(0, 0, 0, 4'000'000), 1,
              [&](const FetchResult&) { done1 = des::to_seconds(rig.sim.now()); });
  rig.sim.run();
  EXPECT_NEAR(done1, 4.0, 1e-5);

  double done4 = -1;
  const double start = des::to_seconds(rig.sim.now());
  store.fetch(rig.reader, make_chunk(1, 0, 1, 4'000'000), 4,
              [&](const FetchResult&) { done4 = des::to_seconds(rig.sim.now()); });
  rig.sim.run();
  EXPECT_NEAR(done4 - start, 1.0, 1e-5);
}

TEST(ObjectStore, StreamsShareAggregateCapacity) {
  // 8 streams of 1 MB/s against a 4 MB/s front: aggregate binds at 4 MB/s.
  StoreRig rig(4e6);
  ObjectStore store(1, rig.sim, rig.net, rig.store_ep, ObjectStore::Params{0, 1e6});
  double done = -1;
  store.fetch(rig.reader, make_chunk(0, 0, 0, 8'000'000), 8,
              [&](const FetchResult&) { done = des::to_seconds(rig.sim.now()); });
  rig.sim.run();
  EXPECT_NEAR(done, 2.0, 1e-5);
}

TEST(ObjectStore, UnevenSplitStillCompletes) {
  StoreRig rig(1e9);
  ObjectStore store(1, rig.sim, rig.net, rig.store_ep, ObjectStore::Params{0, 0});
  double done = -1;
  // 10 bytes over 3 streams: 4+3+3.
  store.fetch(rig.reader, make_chunk(0, 0, 0, 10), 3,
              [&](const FetchResult&) { done = des::to_seconds(rig.sim.now()); });
  rig.sim.run();
  EXPECT_GE(done, 0.0);
  EXPECT_EQ(store.stats().bytes_served, 10u);
  EXPECT_EQ(store.stats().seeks, 0u);
}

}  // namespace
}  // namespace cloudburst::storage
