// Tests for the instance-type catalog and typed provisioning runs.
#include <gtest/gtest.h>

#include "apps/experiments.hpp"
#include "cluster/instance_types.hpp"

namespace cloudburst::cluster {
namespace {

TEST(InstanceCatalog, ContainsThe2011Types) {
  const auto& catalog = ec2_catalog_2011();
  ASSERT_EQ(catalog.size(), 5u);
  EXPECT_NO_THROW(instance_type("m1.small"));
  EXPECT_NO_THROW(instance_type("c1.xlarge"));
  EXPECT_THROW(instance_type("m5.24xlarge"), std::invalid_argument);
}

TEST(InstanceCatalog, PaperInstanceMatchesCalibration) {
  const auto& large = instance_type("m1.large");
  EXPECT_EQ(large.cores, 2u);
  EXPECT_DOUBLE_EQ(large.core_speed, 0.73);  // the paper's balancing ratio
  EXPECT_DOUBLE_EQ(large.hourly_usd, 0.34);
}

TEST(InstanceCatalog, ComputeFamilyIsFasterPerCore) {
  EXPECT_GT(instance_type("c1.medium").core_speed, instance_type("m1.large").core_speed);
}

TEST(TypedTestbed, BuildsRequestedFleet) {
  const auto spec = paper_testbed_typed(16, instance_type("c1.xlarge"), 3);
  EXPECT_EQ(spec.cloud().nodes.size(), 3u);
  EXPECT_EQ(spec.cloud().total_cores(), 24u);
  EXPECT_DOUBLE_EQ(spec.cloud().nodes[0].core_speed, 0.913);
  EXPECT_EQ(spec.local().total_cores(), 16u);
}

TEST(TypedRun, BillsAtTheTypePrice) {
  const auto& small = apps::run_custom_typed(apps::PaperApp::Knn, 1.0 / 3, 16,
                                             instance_type("m1.small"), 4);
  // 4 instances, run well under an hour -> 4 * $0.085.
  EXPECT_DOUBLE_EQ(small.cost.instance_usd, 4 * 0.085);
}

TEST(TypedRun, MoreEcusRunComputeBoundFaster) {
  const auto slow = apps::run_custom_typed(apps::PaperApp::Kmeans, 1.0 / 3, 16,
                                           instance_type("m1.small"), 8);
  const auto fast = apps::run_custom_typed(apps::PaperApp::Kmeans, 1.0 / 3, 16,
                                           instance_type("c1.xlarge"), 8);
  EXPECT_LT(fast.result.total_time, slow.result.total_time);
}

TEST(TypedRun, ProcessesAllJobsForEveryType) {
  for (const auto& type : ec2_catalog_2011()) {
    const auto run = apps::run_custom_typed(apps::PaperApp::Knn, 0.5, 16, type, 4);
    EXPECT_EQ(run.result.total_jobs(), 96u) << type.name;
  }
}

}  // namespace
}  // namespace cloudburst::cluster
