// N-site topology tests: an explicit two-site SiteSpec platform reproduces
// the paper-testbed numbers exactly, three-site runs complete with a correct
// global reduction and per-site decomposition, and the JobPool handles three
// stores (locality, stealing across two remote stores, per-store endgame
// reserves, min-contention).
#include <gtest/gtest.h>

#include "apps/datagen.hpp"
#include "apps/experiments.hpp"
#include "apps/wordcount.hpp"
#include "common/units.hpp"
#include "engine/gr_engine.hpp"
#include "middleware/runtime.hpp"
#include "middleware/scheduler.hpp"

namespace cloudburst::middleware {
namespace {

using namespace cloudburst::units;
using apps::PaperApp;
using cluster::Platform;
using cluster::PlatformSpec;
using cluster::SiteSpec;
using cluster::StoreSpec;
using storage::DataLayout;
using storage::StoreId;

RunResult run_paper_app(PaperApp app, const PlatformSpec& spec) {
  Platform platform(spec);
  const DataLayout layout = apps::paper_layout(app, 1.0 / 3.0, platform.local_store_id(),
                                               platform.cloud_store_id());
  return run_distributed(platform, layout, apps::paper_run_options(app));
}

// --- two-site SiteSpec platform == paper_testbed -----------------------------

TEST(NSitePlatform, ExplicitTwoSiteSpecMatchesPaperTestbed) {
  for (PaperApp app : {PaperApp::Knn, PaperApp::Kmeans, PaperApp::PageRank}) {
    PlatformSpec explicit_spec;
    explicit_spec.sites.push_back(PlatformSpec::paper_local_site(16));
    explicit_spec.sites.push_back(PlatformSpec::paper_cloud_site(16));
    explicit_spec.wan_bandwidth = MBps(125);
    explicit_spec.wan_latency = des::from_seconds(ms(25));
    explicit_spec.node_speed_jitter = 0.03;

    const RunResult a = run_paper_app(app, PlatformSpec::paper_testbed(16, 16));
    const RunResult b = run_paper_app(app, explicit_spec);

    EXPECT_DOUBLE_EQ(a.total_time, b.total_time) << apps::to_string(app);
    EXPECT_DOUBLE_EQ(a.global_reduction_time, b.global_reduction_time);
    ASSERT_EQ(a.clusters.size(), b.clusters.size());
    for (std::size_t s = 0; s < a.clusters.size(); ++s) {
      EXPECT_DOUBLE_EQ(a.clusters[s].processing, b.clusters[s].processing);
      EXPECT_DOUBLE_EQ(a.clusters[s].retrieval, b.clusters[s].retrieval);
      EXPECT_DOUBLE_EQ(a.clusters[s].sync, b.clusters[s].sync);
      EXPECT_EQ(a.clusters[s].jobs_local, b.clusters[s].jobs_local);
      EXPECT_EQ(a.clusters[s].jobs_stolen, b.clusters[s].jobs_stolen);
      EXPECT_EQ(a.clusters[s].bytes_stolen, b.clusters[s].bytes_stolen);
    }
  }
}

// --- three-site runs --------------------------------------------------------

/// Local cluster bursting into two cloud providers, data split three ways.
PlatformSpec three_site_spec() {
  PlatformSpec spec;
  spec.sites.push_back(PlatformSpec::paper_local_site(16));
  spec.sites.push_back(PlatformSpec::paper_cloud_site(8, "east"));
  spec.sites.push_back(PlatformSpec::paper_cloud_site(8, "west"));
  spec.wan_bandwidth = MBps(125);
  spec.wan_latency = des::from_seconds(ms(25));
  // The two providers are further from each other than from the local site.
  spec.set_wan(1, 2, MBps(60), des::from_seconds(ms(60)));
  return spec;
}

DataLayout three_way_layout(Platform& platform, std::uint64_t total_bytes,
                            std::uint32_t files, std::uint32_t chunks_per_file) {
  storage::LayoutSpec lspec;
  lspec.total_bytes = total_bytes;
  lspec.num_files = files;
  lspec.chunks_per_file = chunks_per_file;
  lspec.unit_bytes = 64;
  DataLayout layout = storage::build_layout(lspec);
  assign_stores_by_weights(layout, {1.0, 1.0, 1.0},
                           {platform.store_of_cluster(0), platform.store_of_cluster(1),
                            platform.store_of_cluster(2)});
  return layout;
}

RunOptions three_site_options() {
  RunOptions options;
  options.profile.name = "nsite";
  options.profile.unit_bytes = 64;
  options.profile.bytes_per_second_per_core = MBps(50);
  options.profile.robj_bytes = KiB(64);
  return options;
}

TEST(NSiteRun, ThreeSitesCompleteWithPerSiteDecomposition) {
  Platform platform(three_site_spec());
  ASSERT_EQ(platform.cluster_count(), 3u);
  ASSERT_EQ(platform.store_count(), 3u);
  const DataLayout layout = three_way_layout(platform, MiB(1536), 12, 3);
  const RunResult result = run_distributed(platform, layout, three_site_options());

  EXPECT_GT(result.total_time, 0.0);
  EXPECT_EQ(result.total_jobs(), 36u);
  ASSERT_EQ(result.clusters.size(), 3u);
  EXPECT_EQ(result.clusters[0].name, "local");
  EXPECT_EQ(result.clusters[1].name, "east");
  EXPECT_EQ(result.clusters[2].name, "west");
  double min_idle = 1e300;
  for (const auto& c : result.clusters) {
    EXPECT_GT(c.nodes, 0u);
    EXPECT_GT(c.processing, 0.0) << c.name;
    EXPECT_GT(c.retrieval, 0.0) << c.name;
    EXPECT_GE(c.sync, 0.0) << c.name;
    EXPECT_GE(c.idle_time, 0.0) << c.name;
    min_idle = std::min(min_idle, c.idle_time);
  }
  // The last site to finish processing waits for nobody.
  EXPECT_NEAR(min_idle, 0.0, 1e-9);
}

TEST(NSiteRun, BytesFromStoreMatrixAccountsEveryByte) {
  Platform platform(three_site_spec());
  const DataLayout layout = three_way_layout(platform, MiB(1536), 12, 3);
  const RunResult result = run_distributed(platform, layout, three_site_options());

  ASSERT_EQ(result.bytes_from_store.size(), 3u);
  std::uint64_t matrix_total = 0;
  for (StoreId s = 0; s < 3; ++s) {
    std::uint64_t column = 0;
    for (std::size_t c = 0; c < 3; ++c) {
      ASSERT_EQ(result.bytes_from_store[c].size(), 3u);
      column += result.bytes_from_store[c][s];
    }
    // Every store's bytes were fetched exactly once, by someone.
    EXPECT_EQ(column, layout.bytes_on(s)) << "store " << s;
    matrix_total += column;
  }
  EXPECT_EQ(matrix_total, layout.total_bytes());

  // The per-cluster local/stolen split is the matrix diagonal vs the rest.
  for (std::size_t c = 0; c < 3; ++c) {
    const StoreId own = platform.store_of_cluster(static_cast<cluster::ClusterId>(c));
    std::uint64_t stolen = 0;
    for (StoreId s = 0; s < 3; ++s) {
      if (s != own) stolen += result.bytes_from_store[c][s];
    }
    EXPECT_EQ(result.clusters[c].bytes_local, result.bytes_from_store[c][own]);
    EXPECT_EQ(result.clusters[c].bytes_stolen, stolen);
  }
}

TEST(NSiteRun, ThreeSiteGlobalReductionMatchesSerialEngine) {
  apps::WordGenSpec wspec;
  wspec.count = 24000;
  wspec.vocabulary = 101;
  wspec.seed = 7;
  const auto data = apps::generate_words(wspec);
  apps::WordCountTask task;
  const auto ref = engine::gr_run(task, data, engine::GrEngineOptions{});
  const auto& ref_counts = dynamic_cast<const api::HashCountRobj&>(*ref);

  Platform platform(three_site_spec());
  DataLayout layout = storage::build_layout_for_units(data.units(), data.unit_bytes(), 6, 4);
  assign_stores_by_weights(layout, {1.0, 1.0, 1.0},
                           {platform.store_of_cluster(0), platform.store_of_cluster(1),
                            platform.store_of_cluster(2)});

  RunOptions options;
  options.profile.unit_bytes = data.unit_bytes();
  options.profile.bytes_per_second_per_core = MBps(10);
  options.profile.robj_bytes = 0;
  options.task = &task;
  options.dataset = &data;
  const RunResult result = run_distributed(platform, layout, options);

  ASSERT_NE(result.robj, nullptr);
  const auto& got = dynamic_cast<const api::HashCountRobj&>(*result.robj);
  ASSERT_EQ(got.distinct_keys(), ref_counts.distinct_keys());
  for (const auto& [k, v] : ref_counts.counts()) EXPECT_DOUBLE_EQ(got.get(k), v);
}

TEST(NSiteRun, ComputeOnlySiteReadsItsAffinityStore) {
  PlatformSpec spec;
  spec.sites.push_back(PlatformSpec::paper_local_site(8));
  spec.sites.push_back(PlatformSpec::paper_cloud_site(8, "cloud"));
  // Burst capacity without storage: reads the cloud store over the WAN.
  SiteSpec burst;
  burst.name = "burst";
  burst.cluster = cluster::ClusterSpec::uniform("burst", 4, cluster::NodeSpec{2, 0.73},
                                                MBps(160), des::from_seconds(us(200)));
  burst.cloud_billed = true;
  burst.affinity = 1;
  spec.sites.push_back(burst);
  spec.wan_bandwidth = MBps(125);
  spec.wan_latency = des::from_seconds(ms(25));

  Platform platform(spec);
  ASSERT_EQ(platform.cluster_count(), 3u);
  ASSERT_EQ(platform.store_count(), 2u);
  EXPECT_EQ(platform.store_of_cluster(2), platform.store_of_cluster(1));

  storage::LayoutSpec lspec;
  lspec.total_bytes = MiB(1024);
  lspec.num_files = 8;
  lspec.chunks_per_file = 3;
  lspec.unit_bytes = 64;
  DataLayout layout = storage::build_layout(lspec);
  storage::assign_stores_by_fraction(layout, 0.5, platform.store_of_cluster(0),
                                     platform.store_of_cluster(1));

  const RunResult result = run_distributed(platform, layout, three_site_options());
  EXPECT_EQ(result.total_jobs(), 24u);
  // The burst site's "local" jobs are the ones served from its affinity store.
  const auto& burst_result = result.clusters[2];
  EXPECT_GT(burst_result.jobs_local + burst_result.jobs_stolen, 0u);
  EXPECT_EQ(burst_result.bytes_local, result.bytes_from_store[2][1]);
}

TEST(NSiteRun, ThreeSiteFailureRecovers) {
  Platform clean_platform(three_site_spec());
  const DataLayout layout = three_way_layout(clean_platform, MiB(1536), 12, 3);
  RunOptions options = three_site_options();
  options.reduction_tree = false;
  const RunResult clean = run_distributed(clean_platform, layout, options);

  Platform platform(three_site_spec());
  options.failures.push_back({2, 1, 0.4 * clean.total_time});
  const RunResult result = run_distributed(platform, layout, options);
  // Re-executed jobs of the dead slave are accounted again.
  EXPECT_GE(result.total_jobs(), 36u);
  EXPECT_GE(result.total_time, clean.total_time);
}

// --- three-store JobPool ----------------------------------------------------

/// One file per store entry: files[i] holds `chunks` chunks on store i % 3.
DataLayout make_three_store_layout(std::uint32_t files_per_store, std::uint32_t chunks) {
  storage::LayoutSpec spec;
  spec.num_files = 3 * files_per_store;
  spec.chunks_per_file = chunks;
  spec.total_bytes = static_cast<std::uint64_t>(spec.num_files) * chunks * MiB(1);
  spec.unit_bytes = 64;
  DataLayout layout = storage::build_layout(spec);
  for (const auto& f : layout.files()) {
    layout.move_file(f.id, f.id / files_per_store);  // contiguous thirds
  }
  return layout;
}

TEST(JobPoolThreeStores, LocalityServesOwnStoreFirst) {
  const auto layout = make_three_store_layout(2, 3);
  JobPool pool(layout, SchedulerPolicy{});
  for (StoreId preferred : {0u, 1u, 2u}) {
    const auto batch = pool.take_batch(preferred, 3);
    ASSERT_EQ(batch.size(), 3u);
    for (auto c : batch) EXPECT_EQ(layout.store_of(c), preferred);
  }
}

TEST(JobPoolThreeStores, StealsFromBothRemoteStoresWhenDrained) {
  const auto layout = make_three_store_layout(1, 2);  // 2 jobs per store
  SchedulerPolicy policy;
  policy.steal_batch_size = 8;
  policy.steal_reserve = 0;
  JobPool pool(layout, policy);
  ASSERT_EQ(pool.take_batch(0, 2).size(), 2u);  // drain our own store
  const auto stolen = pool.take_batch(0, 4);
  ASSERT_EQ(stolen.size(), 4u);
  std::uint32_t from_store1 = 0, from_store2 = 0;
  for (auto c : stolen) {
    if (layout.store_of(c) == 1) ++from_store1;
    if (layout.store_of(c) == 2) ++from_store2;
  }
  EXPECT_EQ(from_store1, 2u);
  EXPECT_EQ(from_store2, 2u);
}

TEST(JobPoolThreeStores, PerStoreReserveWithholdsOnlyReservedStores) {
  SchedulerPolicy policy;
  policy.steal_batch_size = 8;
  policy.steal_reserve = 2;

  // Store 0 is empty for the requester; stores 1 and 2 hold 3 jobs each.
  const auto layout = make_three_store_layout(1, 3);
  {
    JobPool pool(layout, policy);
    ASSERT_EQ(pool.take_batch(0, 3).size(), 3u);
    // Both remote owners still active: each store keeps its last 2 jobs.
    EXPECT_EQ(pool.take_batch(0, 8, std::vector<StoreId>{1, 2}).size(), 2u);
  }
  {
    JobPool pool(layout, policy);
    ASSERT_EQ(pool.take_batch(0, 3).size(), 3u);
    // Only store 1's owner is active: store 2 is fully stealable.
    EXPECT_EQ(pool.take_batch(0, 8, std::vector<StoreId>{1}).size(), 4u);
  }
  {
    JobPool pool(layout, policy);
    ASSERT_EQ(pool.take_batch(0, 3).size(), 3u);
    // Nobody else is active: everything is stealable.
    EXPECT_EQ(pool.take_batch(0, 8, std::vector<StoreId>{}).size(), 6u);
  }
}

TEST(JobPoolThreeStores, MinContentionPrefersIdleRemoteStore) {
  const auto layout = make_three_store_layout(1, 4);
  SchedulerPolicy policy;
  policy.steal_reserve = 0;
  JobPool pool(layout, policy);
  // Cluster 1 starts reading its own file; its readers count goes up.
  ASSERT_EQ(pool.take_batch(1, 2).size(), 2u);
  // Cluster 0 has nothing local left after draining its store...
  ASSERT_EQ(pool.take_batch(0, 4).size(), 4u);
  // ...and now steals: the untouched store-2 file has fewer readers.
  const auto stolen = pool.take_batch(0, 1);
  ASSERT_EQ(stolen.size(), 1u);
  EXPECT_EQ(layout.store_of(stolen[0]), 2u);
}

}  // namespace
}  // namespace cloudburst::middleware
