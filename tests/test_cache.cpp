// Tests for the site-local chunk cache and predictive prefetcher: policy
// mechanics (eviction order, capacity accounting, admission), and the full
// middleware integration (warm iterative runs beat cold ones, results stay
// byte-identical, prefetches never duplicate a transfer, costs drop).
#include <gtest/gtest.h>

#include <set>

#include "apps/datagen.hpp"
#include "apps/experiments.hpp"
#include "apps/kmeans.hpp"
#include "cache/chunk_cache.hpp"
#include "common/units.hpp"
#include "cost/cost_model.hpp"
#include "middleware/iterative.hpp"
#include "middleware/runtime.hpp"
#include "trace/trace.hpp"

namespace cloudburst {
namespace {

using namespace cloudburst::units;
using cache::CacheConfig;
using cache::CacheFleet;
using cache::ChunkCache;
using cache::EvictionPolicy;
using cluster::PlatformSpec;

CacheConfig three_slot_config(EvictionPolicy policy) {
  CacheConfig cfg;
  cfg.capacity_bytes = 300;
  cfg.policy = policy;
  return cfg;
}

TEST(ChunkCache, LruEvictsLeastRecentlyUsed) {
  const CacheConfig cfg = three_slot_config(EvictionPolicy::Lru);
  ChunkCache cache(cfg);
  EXPECT_TRUE(cache.insert(0, 100).admitted);
  EXPECT_TRUE(cache.insert(1, 100).admitted);
  EXPECT_TRUE(cache.insert(2, 100).admitted);
  EXPECT_TRUE(cache.hit(0));  // 1 is now the least recently used
  const auto result = cache.insert(3, 100);
  ASSERT_EQ(result.evicted.size(), 1u);
  EXPECT_EQ(result.evicted[0].first, 1u);
  EXPECT_TRUE(cache.contains(0));
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(3));
}

TEST(ChunkCache, LfuEvictsLeastFrequentlyUsed) {
  const CacheConfig cfg = three_slot_config(EvictionPolicy::Lfu);
  ChunkCache cache(cfg);
  cache.insert(0, 100);
  cache.insert(1, 100);
  cache.insert(2, 100);
  cache.hit(0);
  cache.hit(0);
  cache.hit(2);
  cache.hit(1);
  cache.hit(1);  // frequencies: 0 -> 3, 1 -> 3, 2 -> 2
  const auto result = cache.insert(3, 100);
  ASSERT_EQ(result.evicted.size(), 1u);
  EXPECT_EQ(result.evicted[0].first, 2u);
}

TEST(ChunkCache, LfuBreaksTiesByRecency) {
  const CacheConfig cfg = three_slot_config(EvictionPolicy::Lfu);
  ChunkCache cache(cfg);
  cache.insert(0, 100);
  cache.insert(1, 100);
  cache.insert(2, 100);  // all freq 1; 0 is the stalest
  const auto result = cache.insert(3, 100);
  ASSERT_EQ(result.evicted.size(), 1u);
  EXPECT_EQ(result.evicted[0].first, 0u);
}

TEST(ChunkCache, FifoIgnoresUseOrder) {
  const CacheConfig cfg = three_slot_config(EvictionPolicy::Fifo);
  ChunkCache cache(cfg);
  cache.insert(0, 100);
  cache.insert(1, 100);
  cache.insert(2, 100);
  cache.hit(0);
  cache.hit(0);  // heavy reuse must not save the oldest insertion
  const auto result = cache.insert(3, 100);
  ASSERT_EQ(result.evicted.size(), 1u);
  EXPECT_EQ(result.evicted[0].first, 0u);
}

TEST(ChunkCache, CapacityAccountingIsExact) {
  CacheConfig cfg;
  cfg.capacity_bytes = 1000;
  ChunkCache cache(cfg);
  cache.insert(0, 400);
  cache.insert(1, 300);
  EXPECT_EQ(cache.bytes_used(), 700u);
  EXPECT_EQ(cache.size(), 2u);

  // 500 does not fit next to 700: evict (LRU -> chunk 0) until it does.
  const auto result = cache.insert(2, 500);
  EXPECT_TRUE(result.admitted);
  ASSERT_EQ(result.evicted.size(), 1u);
  EXPECT_EQ(result.evicted[0], (std::pair<storage::ChunkId, std::uint64_t>{0, 400}));
  EXPECT_EQ(cache.bytes_used(), 800u);

  EXPECT_TRUE(cache.erase(1));
  EXPECT_FALSE(cache.erase(1));
  EXPECT_EQ(cache.bytes_used(), 500u);
  cache.clear();
  EXPECT_EQ(cache.bytes_used(), 0u);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.evictions(), 1u);  // lifetime counters survive clear()
}

TEST(ChunkCache, AdmissionFilterRejectsOversizedChunks) {
  CacheConfig cfg;
  cfg.capacity_bytes = 1000;
  cfg.admit_max_fraction = 0.5;
  ChunkCache cache(cfg);
  cache.insert(0, 400);
  // 600 > 50% of capacity: rejected outright, nothing evicted.
  const auto result = cache.insert(1, 600);
  EXPECT_FALSE(result.admitted);
  EXPECT_TRUE(result.evicted.empty());
  EXPECT_TRUE(cache.contains(0));
  EXPECT_EQ(cache.bytes_used(), 400u);
  // At the boundary it still fits.
  EXPECT_TRUE(cache.insert(2, 500).admitted);
}

TEST(ChunkCache, ZeroCapacityNeverAdmits) {
  CacheConfig cfg;  // capacity_bytes == 0
  ChunkCache cache(cfg);
  EXPECT_FALSE(cache.insert(0, 1).admitted);
  EXPECT_FALSE(cache.hit(0));
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(ChunkCache, ReinsertRefreshesWithoutEviction) {
  const CacheConfig cfg = three_slot_config(EvictionPolicy::Lru);
  ChunkCache cache(cfg);
  cache.insert(0, 100);
  cache.insert(1, 100);
  cache.insert(2, 100);
  // Re-inserting a resident chunk only renews its recency...
  const auto refreshed = cache.insert(0, 100);
  EXPECT_TRUE(refreshed.admitted);
  EXPECT_TRUE(refreshed.evicted.empty());
  EXPECT_EQ(cache.bytes_used(), 300u);
  // ...so the next eviction victim is chunk 1, not chunk 0.
  const auto result = cache.insert(3, 100);
  ASSERT_EQ(result.evicted.size(), 1u);
  EXPECT_EQ(result.evicted[0].first, 1u);
}

TEST(CacheFleet, SitesAreIndependent) {
  CacheConfig cfg;
  cfg.capacity_bytes = 200;
  CacheFleet fleet(cfg);
  fleet.site(0).insert(7, 100);
  EXPECT_TRUE(fleet.site(0).contains(7));
  EXPECT_FALSE(fleet.site(1).contains(7));
  fleet.site(1).insert(7, 100);
  fleet.site(0).hit(7);
  EXPECT_EQ(fleet.hits(), 1u);
  fleet.clear();
  EXPECT_FALSE(fleet.site(0).contains(7));
  EXPECT_EQ(fleet.hits(), 1u);  // lifetime counters survive
}

// --- middleware integration --------------------------------------------------

middleware::IterativeRequest cloud_kmeans_request(const storage::DataLayout& layout,
                                                  std::size_t iterations) {
  middleware::IterativeRequest request;
  request.platform_spec = PlatformSpec::paper_testbed(0, 44);  // env-cloud kmeans
  request.layout = &layout;
  request.options = apps::paper_run_options(apps::PaperApp::Kmeans);
  request.iterations = iterations;
  return request;
}

// The ISSUE's acceptance number: 10-iteration k-means on the paper testbed,
// >= 2x lower total remote-retrieval time with the cache on.
TEST(CacheIntegration, WarmIterativeKmeansHalvesRetrievalTime) {
  const auto layout = apps::paper_layout(apps::PaperApp::Kmeans, 0.0, 0, 1);
  auto request = cloud_kmeans_request(layout, 10);
  const auto cold = run_iterative(request);

  CacheConfig cfg;
  cfg.capacity_bytes = GiB(16);  // the whole 12 GB dataset fits
  CacheFleet fleet(cfg);
  request.options.cache = &fleet;
  const auto warm = run_iterative(request);

  EXPECT_GE(cold.total_retrieval_seconds(), 2.0 * warm.total_retrieval_seconds());
  EXPECT_LT(warm.total_seconds, cold.total_seconds);
  // Only pass 0 misses: 9 of 10 passes are pure hits.
  EXPECT_GT(warm.cache_hit_rate(), 0.85);
  EXPECT_EQ(cold.cache_hit_rate(), 0.0);
  EXPECT_LT(warm.s3_get_requests(), cold.s3_get_requests() / 2);
}

TEST(CacheIntegration, EvictionsHappenWhenTheWorkingSetExceedsCapacity) {
  const auto layout = apps::paper_layout(apps::PaperApp::Kmeans, 0.0, 0, 1);
  auto request = cloud_kmeans_request(layout, 2);

  CacheConfig cfg;
  cfg.capacity_bytes = GiB(2);  // far below the 12 GB working set
  CacheFleet fleet(cfg);
  request.options.cache = &fleet;
  const auto result = run_iterative(request);
  EXPECT_GT(fleet.site(1).evictions(), 0u);
  // A thrashing cache must still help less than a fitting one, not hurt.
  EXPECT_LT(result.cache_hit_rate(), 0.5);
}

TEST(CacheIntegration, AttachedButEmptyFleetIsTimeIdentical) {
  // A fleet with zero capacity exercises every cache code path (lookup, miss
  // accounting, rejected admission) but must not change the simulation by a
  // single event: this is the paper-fidelity guarantee in executable form.
  const auto baseline = apps::run_env(apps::Env::Cloud, apps::PaperApp::Kmeans);

  CacheFleet fleet{CacheConfig{}};  // capacity 0
  const auto with_fleet = apps::run_env(
      apps::Env::Cloud, apps::PaperApp::Kmeans,
      [&fleet](cluster::PlatformSpec&, middleware::RunOptions& options) {
        options.cache = &fleet;
      });

  EXPECT_DOUBLE_EQ(with_fleet.total_time, baseline.total_time);
  EXPECT_EQ(with_fleet.cache_hits(), 0u);
  EXPECT_EQ(with_fleet.cache_misses(), with_fleet.total_jobs());
  EXPECT_EQ(with_fleet.s3_get_requests, baseline.s3_get_requests);
  ASSERT_EQ(with_fleet.clusters.size(), baseline.clusters.size());
  for (std::size_t c = 0; c < baseline.clusters.size(); ++c) {
    EXPECT_DOUBLE_EQ(with_fleet.clusters[c].retrieval, baseline.clusters[c].retrieval);
    EXPECT_DOUBLE_EQ(with_fleet.clusters[c].processing,
                     baseline.clusters[c].processing);
  }
}

TEST(CacheIntegration, PrefetchNeverFetchesAChunkTwice) {
  const auto layout = apps::paper_layout(apps::PaperApp::Kmeans, 0.0, 0, 1);
  auto options = apps::paper_run_options(apps::PaperApp::Kmeans);

  CacheConfig cfg;
  cfg.capacity_bytes = GiB(16);
  cfg.prefetch.enabled = true;
  cfg.prefetch.depth = 4;
  CacheFleet fleet(cfg);
  options.cache = &fleet;
  trace::Tracer tracer;
  options.tracer = &tracer;

  cluster::Platform platform(PlatformSpec::paper_testbed(0, 44));
  const auto result = run_distributed(platform, layout, options);

  EXPECT_GT(result.prefetch_issued(), 0u);
  // No chunk is ever prefetched twice...
  std::set<std::uint64_t> issued;
  for (const auto& e : tracer.events()) {
    if (e.kind == trace::EventKind::PrefetchIssued) {
      EXPECT_TRUE(issued.insert(e.a).second) << "chunk " << e.a << " prefetched twice";
    }
  }
  EXPECT_EQ(issued.size(), result.prefetch_issued());
  // ...and every physical store request is either a slave miss or a prefetch:
  // joins and hits never reach the store, so nothing is transferred twice.
  std::uint64_t store_requests = 0;
  for (const auto r : result.store_requests) store_requests += r;
  EXPECT_EQ(store_requests, result.cache_misses() + result.prefetch_issued());
  EXPECT_EQ(result.cache_hits() + result.cache_misses(),
            static_cast<std::uint32_t>(layout.chunks().size()));
}

TEST(CacheIntegration, RealKmeansResultsAreByteIdenticalCacheOnOrOff) {
  apps::PointGenSpec gen;
  gen.count = 24000;
  gen.dim = 3;
  gen.mixture_components = 3;
  gen.component_spread = 12.0;
  gen.noise_sigma = 0.7;
  gen.seed = 99;
  const auto data = apps::generate_points(gen);

  storage::DataLayout layout =
      storage::build_layout_for_units(data.units(), data.unit_bytes(), 6, 2);
  storage::assign_stores_by_fraction(layout, 0.5, 0, 1);

  const auto run_with = [&](CacheFleet* fleet) {
    std::vector<std::vector<float>> centroids = apps::mixture_centers(gen);
    for (auto& c : centroids) {
      for (auto& v : c) v += 3.0f;
    }
    std::vector<std::unique_ptr<apps::KmeansTask>> tasks;
    tasks.push_back(std::make_unique<apps::KmeansTask>(centroids));

    middleware::IterativeRequest request;
    request.platform_spec = PlatformSpec::paper_testbed(16, 16);
    request.layout = &layout;
    request.options.profile.unit_bytes = data.unit_bytes();
    request.options.profile.bytes_per_second_per_core = MBps(2);
    request.options.profile.robj_bytes = KiB(8);
    request.options.task = tasks.back().get();
    request.options.dataset = &data;
    request.options.cache = fleet;
    request.iterations = 3;
    request.next_task = [&tasks](std::size_t, const api::ReductionObject* robj)
        -> const api::GRTask* {
      const auto next = tasks.back()->centroids_from(*robj);
      std::vector<std::vector<float>> as_float(next.size());
      for (std::size_t c = 0; c < next.size(); ++c) {
        as_float[c].assign(next[c].begin(), next[c].end());
      }
      tasks.push_back(std::make_unique<apps::KmeansTask>(as_float));
      return tasks.back().get();
    };
    auto result = run_iterative(std::move(request));
    BufferWriter writer;
    result.final_robj->serialize(writer);
    return std::make_pair(std::move(result), writer.take());
  };

  const auto [cold, cold_bytes] = run_with(nullptr);

  CacheConfig cfg;
  cfg.capacity_bytes = GiB(16);
  cfg.prefetch.enabled = true;
  CacheFleet fleet(cfg);
  const auto [warm, warm_bytes] = run_with(&fleet);

  // The cache changes *when* chunks arrive, never *what* is computed.
  EXPECT_EQ(cold_bytes, warm_bytes);
  EXPECT_GT(warm.cache_hit_rate(), 0.0);
  EXPECT_LT(warm.total_retrieval_seconds(), cold.total_retrieval_seconds());
}

TEST(CacheIntegration, WarmRunCutsGetRequestsAndEgressCost) {
  // Strong local compute + data mostly in S3: the local cluster must pull
  // S3 chunks across the WAN, so both egress bytes and GET requests are on
  // the bill. A second (warm) run on the same fleet must cut both.
  const auto layout = apps::paper_layout(apps::PaperApp::Kmeans, 0.2, 0, 1);
  const auto spec = PlatformSpec::paper_testbed(32, 8);
  auto options = apps::paper_run_options(apps::PaperApp::Kmeans);

  CacheConfig cfg;
  cfg.capacity_bytes = GiB(16);
  CacheFleet fleet(cfg);
  options.cache = &fleet;

  const auto pricing = cost::CloudPricing::aws_2011();
  cluster::Platform p1(spec);
  const auto r1 = run_distributed(p1, layout, options);
  const auto cost1 = cost::price_run(r1, p1, layout, options, pricing);

  cluster::Platform p2(spec);
  const auto r2 = run_distributed(p2, layout, options);
  const auto cost2 = cost::price_run(r2, p2, layout, options, pricing);

  // Dynamic scheduling may hand a chunk to a site that never cached it, so
  // the warm rate is high but not necessarily 1.0.
  EXPECT_GT(r2.cache_hit_rate(), 0.5);
  EXPECT_LT(r2.s3_get_requests, r1.s3_get_requests);
  EXPECT_LT(cost2.requests_usd, cost1.requests_usd);
  EXPECT_LT(cost2.transfer_usd, cost1.transfer_usd);
  EXPECT_LT(cost2.total_usd(), cost1.total_usd());
}

}  // namespace
}  // namespace cloudburst
