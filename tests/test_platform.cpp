// Tests for the platform builder: topology shape, node provisioning,
// deterministic jitter, store wiring, and cross-site path properties.
#include <gtest/gtest.h>

#include "cluster/platform.hpp"
#include "common/units.hpp"

namespace cloudburst::cluster {
namespace {

using namespace cloudburst::units;

TEST(ClusterSpec, UniformBuildsCount) {
  const auto spec = ClusterSpec::uniform("c", 5, NodeSpec{4, 1.0}, MBps(100), 0);
  EXPECT_EQ(spec.nodes.size(), 5u);
  EXPECT_EQ(spec.total_cores(), 20u);
}

TEST(PaperTestbed, CorePartitioning) {
  const auto spec = PlatformSpec::paper_testbed(32, 32);
  EXPECT_EQ(spec.local().nodes.size(), 4u);   // 8-core Xeon nodes
  EXPECT_EQ(spec.cloud().nodes.size(), 16u);  // 2-core m1.large instances
  EXPECT_EQ(spec.local().total_cores(), 32u);
  EXPECT_EQ(spec.cloud().total_cores(), 32u);
}

TEST(PaperTestbed, NonMultipleCoreCounts) {
  const auto spec = PlatformSpec::paper_testbed(12, 7);
  EXPECT_EQ(spec.local().total_cores(), 12u);
  EXPECT_EQ(spec.cloud().total_cores(), 7u);
  EXPECT_EQ(spec.local().nodes.back().cores, 4u);
  EXPECT_EQ(spec.cloud().nodes.back().cores, 1u);
}

TEST(PaperTestbed, KmeansRebalancedConfig) {
  const auto spec = PlatformSpec::paper_testbed(16, 22);
  EXPECT_EQ(spec.cloud().nodes.size(), 11u);
  EXPECT_EQ(spec.cloud().total_cores(), 22u);
}

TEST(Platform, BuildsNodesWithEndpoints) {
  Platform platform(PlatformSpec::paper_testbed(16, 8));
  EXPECT_EQ(platform.nodes(kLocalSite).size(), 2u);
  EXPECT_EQ(platform.nodes(kCloudSite).size(), 4u);
  EXPECT_EQ(platform.total_nodes(), 6u);
  std::set<net::EndpointId> eps;
  for (cluster::ClusterId side : {kLocalSite, kCloudSite}) {
    for (const auto& n : platform.nodes(side)) eps.insert(n.endpoint);
  }
  eps.insert(platform.head_endpoint());
  eps.insert(platform.master_endpoint(kLocalSite));
  eps.insert(platform.master_endpoint(kCloudSite));
  EXPECT_EQ(eps.size(), 9u);  // all endpoints distinct
}

TEST(Platform, JitterIsDeterministic) {
  Platform a(PlatformSpec::paper_testbed(16, 16));
  Platform b(PlatformSpec::paper_testbed(16, 16));
  const auto& na = a.nodes(kCloudSite);
  const auto& nb = b.nodes(kCloudSite);
  for (std::size_t i = 0; i < na.size(); ++i) {
    EXPECT_DOUBLE_EQ(na[i].core_speed, nb[i].core_speed);
  }
}

TEST(Platform, JitterSpreadsSpeeds) {
  auto spec = PlatformSpec::paper_testbed(32, 32);
  spec.node_speed_jitter = 0.05;
  Platform platform(spec);
  const auto& nodes = platform.nodes(kLocalSite);
  bool any_diff = false;
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    any_diff |= nodes[i].core_speed != nodes[0].core_speed;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Platform, ZeroJitterKeepsNominalSpeeds) {
  auto spec = PlatformSpec::paper_testbed(16, 16);
  spec.node_speed_jitter = 0.0;
  Platform platform(spec);
  for (const auto& n : platform.nodes(kLocalSite)) {
    EXPECT_DOUBLE_EQ(n.core_speed, 1.0);
  }
  for (const auto& n : platform.nodes(kCloudSite)) {
    EXPECT_DOUBLE_EQ(n.core_speed, 0.73);
  }
}

TEST(Platform, StoreRegistry) {
  Platform platform(PlatformSpec::paper_testbed(8, 8));
  EXPECT_EQ(platform.store(platform.local_store_id()).id(), platform.local_store_id());
  EXPECT_EQ(platform.store(platform.cloud_store_id()).id(), platform.cloud_store_id());
  EXPECT_THROW(platform.store(99), std::out_of_range);
}

TEST(Platform, CrossSiteLatencyIncludesWan) {
  Platform platform(PlatformSpec::paper_testbed(8, 8));
  const auto local_node = platform.nodes(kLocalSite)[0].endpoint;
  const auto cloud_node = platform.nodes(kCloudSite)[0].endpoint;
  const auto intra = platform.network().path_latency(
      local_node, platform.master_endpoint(kLocalSite));
  const auto inter = platform.network().path_latency(local_node, cloud_node);
  EXPECT_GT(inter, intra);
  EXPECT_GE(inter, platform.spec().wan_latency);
}

TEST(Platform, S3PathFromCloudAvoidsWan) {
  Platform platform(PlatformSpec::paper_testbed(8, 8));
  const auto cloud_node = platform.nodes(kCloudSite)[0].endpoint;
  const auto s3 = platform.store(platform.cloud_store_id()).endpoint();
  const auto path = platform.network().path(s3, cloud_node);
  for (net::LinkId l : path) {
    EXPECT_NE(platform.network().link(l).name, "wan");
  }
}

TEST(Platform, S3PathFromLocalCrossesWan) {
  Platform platform(PlatformSpec::paper_testbed(8, 8));
  const auto local_node = platform.nodes(kLocalSite)[0].endpoint;
  const auto s3 = platform.store(platform.cloud_store_id()).endpoint();
  const auto path = platform.network().path(s3, local_node);
  bool has_wan = false;
  for (net::LinkId l : path) has_wan |= platform.network().link(l).name == "wan";
  EXPECT_TRUE(has_wan);
}

TEST(Platform, DiskPathFeedsLocalNodes) {
  Platform platform(PlatformSpec::paper_testbed(8, 8));
  const auto local_node = platform.nodes(kLocalSite)[0].endpoint;
  const auto disk = platform.store(platform.local_store_id()).endpoint();
  const auto path = platform.network().path(disk, local_node);
  ASSERT_EQ(path.size(), 2u);  // disk link + node NIC
  EXPECT_EQ(platform.network().link(path[0]).name, "local-disk");
}

TEST(Platform, TwoProviderModeUsesObjectStoreOnBothSides) {
  auto spec = PlatformSpec::paper_testbed(8, 8);
  // Two-provider mode: give the organization side an object store too (same
  // bandwidth envelope as its disk array), making both sides cloud-like.
  spec.sites[kLocalSite].store =
      StoreSpec::object(MBps(1600), MBps(400), des::from_seconds(ms(8)));
  Platform platform(spec);
  // The "local" store must now behave like an object store: no seeks, and
  // multi-stream fetches must beat the per-connection cap.
  auto& store = platform.store(platform.local_store_id());
  storage::ChunkInfo chunk;
  chunk.id = 0;
  chunk.file = 0;
  chunk.index_in_file = 0;
  chunk.bytes = 50'000'000;
  chunk.units = 1;
  const auto reader = platform.nodes(kLocalSite)[0].endpoint;

  double one_stream = -1, many_streams = -1;
  store.fetch(reader, chunk, 1, [&](const storage::FetchResult&) { one_stream = des::to_seconds(platform.sim().now()); });
  platform.sim().run();
  const double mark = des::to_seconds(platform.sim().now());
  store.fetch(reader, chunk, 8,
              [&](const storage::FetchResult&) { many_streams = des::to_seconds(platform.sim().now()) - mark; });
  platform.sim().run();
  EXPECT_GT(one_stream, 2.0 * many_streams);  // parallel GETs recover bandwidth
  EXPECT_EQ(store.stats().seeks, 0u);         // object stores do not seek
}

TEST(Platform, DefaultLocalStoreSeeks) {
  Platform platform(PlatformSpec::paper_testbed(8, 8));
  auto& store = platform.store(platform.local_store_id());
  storage::ChunkInfo chunk;
  chunk.bytes = 1000;
  chunk.units = 1;
  store.fetch(platform.nodes(kLocalSite)[0].endpoint, chunk, 1, nullptr);
  platform.sim().run();
  EXPECT_EQ(store.stats().seeks, 1u);
}

}  // namespace
}  // namespace cloudburst::cluster
