// Node-lifecycle tests: graceful drain (zero completed work lost), spot
// reclamation (notice window, hard kill at the deadline, billing stops at
// reclaim), the stochastic per-node-hour reclaim model, checkpointed
// migration to standby replacements, validation of lifecycle option combos,
// and the interplay with the site cache / prefetcher and the store fault
// model.
#include <gtest/gtest.h>

#include <cstring>
#include <unordered_map>

#include "apps/datagen.hpp"
#include "apps/wordcount.hpp"
#include "cache/chunk_cache.hpp"
#include "common/units.hpp"
#include "cost/cost_model.hpp"
#include "engine/gr_engine.hpp"
#include "middleware/runtime.hpp"
#include "trace/trace.hpp"

namespace cloudburst::middleware {
namespace {

using namespace cloudburst::units;
using cluster::kCloudSite;
using cluster::kLocalSite;
using cluster::Platform;
using cluster::PlatformSpec;
using Kind = RunOptions::LifecycleEvent::Kind;

/// Real-execution wordcount rig (same data as the fault-tolerance tests):
/// any run, however nodes come and go, must reproduce the serial counts.
struct LifecycleRig {
  engine::MemoryDataset data;
  apps::WordCountTask task;
  std::unordered_map<std::uint64_t, double> reference;

  LifecycleRig() : data(make_data()) {
    for (std::size_t i = 0; i < data.units(); ++i) {
      apps::WordRecord w;
      std::memcpy(&w, data.unit(i), sizeof w);
      reference[w.word_id] += 1.0;
    }
  }

  static engine::MemoryDataset make_data() {
    apps::WordGenSpec spec;
    spec.count = 24000;
    spec.vocabulary = 97;
    spec.seed = 555;
    return apps::generate_words(spec);
  }

  RunOptions options() {
    RunOptions o;
    o.profile.name = "wordcount";
    o.profile.unit_bytes = data.unit_bytes();
    o.profile.bytes_per_second_per_core = MBps(0.05);
    o.profile.per_job_overhead_seconds = 0.5;  // long jobs => events land mid-run
    o.profile.robj_bytes = 0;
    o.reduction_tree = false;
    o.task = &task;
    o.dataset = &data;
    return o;
  }

  RunResult run(const RunOptions& o, std::uint32_t chunks_per_file = 4,
                double local_fraction = 0.5) {
    Platform platform(PlatformSpec::paper_testbed(16, 16));
    storage::DataLayout layout = storage::build_layout_for_units(
        data.units(), data.unit_bytes(), 6, chunks_per_file);
    storage::assign_stores_by_fraction(layout, local_fraction,
                                       platform.local_store_id(),
                                       platform.cloud_store_id());
    return run_distributed(platform, layout, o);
  }

  void expect_correct(const RunResult& result) {
    ASSERT_NE(result.robj, nullptr);
    const auto& got = dynamic_cast<const api::HashCountRobj&>(*result.robj);
    ASSERT_EQ(got.distinct_keys(), reference.size());
    for (const auto& [k, v] : reference) {
      EXPECT_DOUBLE_EQ(got.get(k), v) << "word " << k;
    }
  }
};

RunOptions::LifecycleEvent event(Kind kind, cluster::ClusterId site,
                                 std::uint32_t node, double at,
                                 double notice = 120.0) {
  RunOptions::LifecycleEvent ev;
  ev.kind = kind;
  ev.site = site;
  ev.node_index = node;
  ev.at_seconds = at;
  ev.notice_seconds = notice;
  return ev;
}

// --- validation (fail fast on bad combos) ------------------------------------

TEST(LifecycleValidation, RejectsTreeMode) {
  LifecycleRig rig;
  RunOptions o = rig.options();
  o.reduction_tree = true;
  o.lifecycle.push_back(event(Kind::Drain, kLocalSite, 0, 1.0));
  EXPECT_THROW(rig.run(o), std::invalid_argument);
}

TEST(LifecycleValidation, RejectsUnknownClusterAndNode) {
  LifecycleRig rig;
  RunOptions bad_site = rig.options();
  bad_site.lifecycle.push_back(event(Kind::Drain, 7, 0, 1.0));
  EXPECT_THROW(rig.run(bad_site), std::invalid_argument);

  RunOptions bad_node = rig.options();
  bad_node.lifecycle.push_back(event(Kind::Crash, kLocalSite, 99, 1.0));
  EXPECT_THROW(rig.run(bad_node), std::invalid_argument);
}

TEST(LifecycleValidation, RejectsNegativeTimes) {
  LifecycleRig rig;
  RunOptions past = rig.options();
  past.lifecycle.push_back(event(Kind::Drain, kLocalSite, 0, -1.0));
  EXPECT_THROW(rig.run(past), std::invalid_argument);

  RunOptions notice = rig.options();
  notice.lifecycle.push_back(event(Kind::SpotReclaim, kCloudSite, 0, 1.0, -5.0));
  EXPECT_THROW(rig.run(notice), std::invalid_argument);

  RunOptions rate = rig.options();
  rate.spot.reclaim_rate_per_hour = -1.0;
  EXPECT_THROW(rig.run(rate), std::invalid_argument);
}

TEST(LifecycleValidation, RejectsWipingOutACluster) {
  LifecycleRig rig;
  // 16 local cores == 2 nodes: one legacy failure plus one drain covers both.
  RunOptions o = rig.options();
  o.failures.push_back({kLocalSite, 0, 1.0});
  o.lifecycle.push_back(event(Kind::Drain, kLocalSite, 1, 2.0));
  EXPECT_THROW(rig.run(o), std::invalid_argument);
}

TEST(LifecycleValidation, RejectsBadMigrationCombos) {
  LifecycleRig rig;
  RunOptions elastic = rig.options();
  elastic.migration.standby_nodes = 1;
  elastic.elastic.enabled = true;
  elastic.elastic.initial_cloud_nodes = 2;
  EXPECT_THROW(rig.run(elastic), std::invalid_argument);

  RunOptions all_standby = rig.options();
  all_standby.migration.standby_nodes = 99;  // >= every cloud node
  EXPECT_THROW(rig.run(all_standby), std::invalid_argument);

  RunOptions static_run = rig.options();
  static_run.static_assignment = true;
  static_run.lifecycle.push_back(event(Kind::Drain, kLocalSite, 0, 1.0));
  EXPECT_THROW(rig.run(static_run), std::invalid_argument);
}

// --- graceful drain: zero completed work lost --------------------------------

TEST(GracefulDrain, LosesZeroCompletedWork) {
  LifecycleRig rig;
  const auto clean = rig.run(rig.options());
  RunOptions o = rig.options();
  o.lifecycle.push_back(event(Kind::Drain, kLocalSite, 0, 0.3 * clean.total_time));
  const auto result = rig.run(o);
  rig.expect_correct(result);
  // The acceptance invariant: a drain with adequate notice re-executes
  // nothing — exactly 24 chunk executions, like the clean run.
  EXPECT_EQ(result.total_jobs(), 24u);
  EXPECT_EQ(result.lifecycle.drains_requested, 1u);
  EXPECT_EQ(result.lifecycle.nodes_vacated, 1u);
  EXPECT_EQ(result.lifecycle.nodes_reclaimed, 0u);
  EXPECT_EQ(result.lifecycle.chunks_reexecuted, 0u);
  EXPECT_EQ(result.lifecycle.bytes_reexecuted, 0u);
  // The survivors absorbed the drained node's share, so the run stretches.
  EXPECT_GE(result.total_time, clean.total_time - 1e-9);
}

TEST(GracefulDrain, EveryDrainPointStaysCorrectAndLossless) {
  LifecycleRig rig;
  const auto clean = rig.run(rig.options());
  for (double frac : {0.05, 0.5, 0.95}) {
    RunOptions o = rig.options();
    o.lifecycle.push_back(
        event(Kind::Drain, kCloudSite, 1, frac * clean.total_time));
    const auto result = rig.run(o);
    rig.expect_correct(result);
    EXPECT_EQ(result.total_jobs(), 24u) << "drain at " << frac;
    EXPECT_EQ(result.lifecycle.chunks_reexecuted, 0u) << "drain at " << frac;
  }
}

TEST(GracefulDrain, DrainAfterTheRunEndsIsInert) {
  LifecycleRig rig;
  const auto clean = rig.run(rig.options());
  RunOptions o = rig.options();
  o.lifecycle.push_back(
      event(Kind::Drain, kLocalSite, 0, clean.total_time + 100.0));
  const auto result = rig.run(o);
  rig.expect_correct(result);
  EXPECT_DOUBLE_EQ(result.total_time, clean.total_time);
  EXPECT_EQ(result.lifecycle.drains_requested, 0u);
}

// --- crash lifecycle events subsume the legacy failure path ------------------

TEST(LifecycleCrash, MatchesLegacyFailureInjection) {
  LifecycleRig rig;
  const auto clean = rig.run(rig.options());

  RunOptions legacy = rig.options();
  legacy.failures.push_back({kLocalSite, 0, 0.5 * clean.total_time});
  legacy.failure_detection_seconds = 0.2;

  RunOptions unified = rig.options();
  unified.lifecycle.push_back(
      event(Kind::Crash, kLocalSite, 0, 0.5 * clean.total_time));
  unified.failure_detection_seconds = 0.2;

  const auto a = rig.run(legacy);
  const auto b = rig.run(unified);
  rig.expect_correct(a);
  rig.expect_correct(b);
  EXPECT_DOUBLE_EQ(a.total_time, b.total_time);
  EXPECT_EQ(a.total_jobs(), b.total_jobs());
  EXPECT_EQ(b.lifecycle.nodes_crashed, 1u);
}

// --- spot reclamation --------------------------------------------------------

TEST(SpotReclaim, AdequateNoticeDrainsGracefully) {
  LifecycleRig rig;
  const auto clean = rig.run(rig.options());
  RunOptions o = rig.options();
  // Plenty of notice: the victim finishes its in-flight chunk and vacates
  // before the deadline, so no hard kill and no lost work.
  o.lifecycle.push_back(
      event(Kind::SpotReclaim, kCloudSite, 0, 0.4 * clean.total_time, 30.0));
  const auto result = rig.run(o);
  rig.expect_correct(result);
  EXPECT_EQ(result.total_jobs(), 24u);
  EXPECT_EQ(result.lifecycle.nodes_vacated, 1u);
  EXPECT_EQ(result.lifecycle.nodes_reclaimed, 0u);
  // The vacated cloud instance stopped billing before the run ended.
  bool ended_early = false;
  for (double end : result.cloud_instance_ends) {
    if (end >= 0.0 && end < result.total_time) ended_early = true;
  }
  EXPECT_TRUE(ended_early);
}

TEST(SpotReclaim, ZeroNoticeBehavesLikeACrash) {
  // 72 small chunks keep every node busy deep into the run, so the victim is
  // mid-work when the deadline lands.
  LifecycleRig rig;
  const auto clean = rig.run(rig.options(), 12);
  RunOptions o = rig.options();
  o.lifecycle.push_back(
      event(Kind::SpotReclaim, kCloudSite, 0, 0.5 * clean.total_time, 0.0));
  o.failure_detection_seconds = 0.2;
  const auto result = rig.run(o, 12);
  rig.expect_correct(result);
  EXPECT_EQ(result.lifecycle.nodes_reclaimed, 1u);
  EXPECT_EQ(result.lifecycle.nodes_vacated, 0u);
  // The victim's un-checkpointed work is re-executed on survivors.
  EXPECT_GT(result.total_jobs(), 72u);
  EXPECT_GT(result.lifecycle.bytes_reexecuted, 0u);
}

TEST(SpotReclaim, ReclaimStopsBillingAtTheDeadline) {
  LifecycleRig rig;
  const auto clean = rig.run(rig.options(), 12);
  const double at = 0.5 * clean.total_time;
  RunOptions o = rig.options();
  // A notice window far shorter than one chunk: the busy victim cannot vacate
  // in time and is hard-killed at the deadline, which is when billing stops.
  o.lifecycle.push_back(event(Kind::SpotReclaim, kCloudSite, 0, at, 0.001));
  o.failure_detection_seconds = 0.2;
  const auto result = rig.run(o, 12);
  rig.expect_correct(result);
  ASSERT_FALSE(result.cloud_instance_ends.empty());
  double reclaimed_end = -1.0;
  for (double end : result.cloud_instance_ends) {
    if (end >= 0.0) reclaimed_end = end;
  }
  // Billing ends at notice + deadline, not at the end of the run.
  EXPECT_NEAR(reclaimed_end, at + 0.001, 1e-9);
  EXPECT_LT(reclaimed_end, result.total_time);

  // And the cost model prices the shortened rental: the priced instance
  // hours drop below what billing-to-the-end would charge.
  cost::CostInputs inputs;
  inputs.run_seconds = result.total_time;
  inputs.cloud_instances =
      static_cast<std::uint32_t>(result.cloud_instance_starts.size());
  for (std::size_t i = 0; i < result.cloud_instance_starts.size(); ++i) {
    double until = result.total_time;
    if (i < result.cloud_instance_ends.size() &&
        result.cloud_instance_ends[i] >= 0.0) {
      until = result.cloud_instance_ends[i];
    }
    inputs.instance_seconds.push_back(until - result.cloud_instance_starts[i]);
  }
  double billed = 0.0;
  for (double s : inputs.instance_seconds) billed += s;
  const double to_end =
      result.total_time * static_cast<double>(result.cloud_instance_starts.size());
  EXPECT_LT(billed, to_end);
}

// --- the acceptance comparison: graceful beats crash -------------------------

TEST(SpotReclaim, GracefulReclaimBeatsCrashAtTheSameInstant) {
  // Cloud-heavy data placement puts the cloud cluster on the critical path,
  // so losing a cloud node's work actually moves the makespan (with the
  // default 50/50 split the cloud side has slack and hides the loss).
  LifecycleRig rig;
  const double local_fraction = 0.15;
  const auto clean = rig.run(rig.options(), 12, local_fraction);
  // Announce late in the run: a crash there throws away the victim's whole
  // uncheckpointed robj with no slack left to hide the re-execution, while a
  // drain with the same deadline hands everything over for free.
  const double notice = 1.0;  // covers an in-flight chunk
  const double announce = 0.8 * clean.total_time - notice;

  // Reclaim announced at T with W of warning vs. the same node crashing cold
  // at T+W: by the kill instant the graceful node has checkpointed and
  // handed back everything, the crashed one loses its whole robj.
  RunOptions graceful = rig.options();
  graceful.lifecycle.push_back(
      event(Kind::SpotReclaim, kCloudSite, 1, announce, notice));
  RunOptions crash = rig.options();
  crash.lifecycle.push_back(
      event(Kind::Crash, kCloudSite, 1, announce + notice));
  crash.failure_detection_seconds = 1.0;

  const auto g = rig.run(graceful, 12, local_fraction);
  const auto c = rig.run(crash, 12, local_fraction);
  rig.expect_correct(g);
  rig.expect_correct(c);
  EXPECT_LT(g.total_time, c.total_time);
  EXPECT_LT(g.lifecycle.bytes_reexecuted, c.lifecycle.bytes_reexecuted);
  EXPECT_EQ(g.lifecycle.bytes_reexecuted, 0u);
  EXPECT_EQ(g.total_jobs(), 72u);
  EXPECT_GT(c.total_jobs(), 72u);
}

// --- stochastic spot model ---------------------------------------------------

TEST(StochasticSpot, SameSeedSameOutcome) {
  LifecycleRig rig;
  RunOptions o = rig.options();
  o.spot.reclaim_rate_per_hour = 400.0;  // draws land inside a seconds-long run
  o.spot.notice_seconds = 30.0;          // generous: every reclaim drains
  o.spot.seed = 99;
  o.migration.standby_nodes = 2;
  o.migration.boot_seconds = 0.5;
  const auto a = rig.run(o);
  const auto b = rig.run(o);
  rig.expect_correct(a);
  rig.expect_correct(b);
  EXPECT_GT(a.lifecycle.drains_requested, 0u);  // the rate actually fired
  EXPECT_DOUBLE_EQ(a.total_time, b.total_time);
  EXPECT_EQ(a.total_jobs(), b.total_jobs());
  EXPECT_EQ(a.lifecycle.drains_requested, b.lifecycle.drains_requested);
  EXPECT_EQ(a.lifecycle.nodes_vacated, b.lifecycle.nodes_vacated);
  EXPECT_EQ(a.lifecycle.replacements_leased, b.lifecycle.replacements_leased);
}

TEST(StochasticSpot, SeedZeroDerivesFromRunSeed) {
  LifecycleRig rig;
  RunOptions o = rig.options();
  o.spot.reclaim_rate_per_hour = 400.0;
  o.spot.notice_seconds = 30.0;
  o.spot.seed = 0;  // derive from RunOptions::random_seed
  o.migration.standby_nodes = 2;
  o.migration.boot_seconds = 0.5;
  o.random_seed = 1234;
  const auto a = rig.run(o);
  const auto b = rig.run(o);
  rig.expect_correct(a);
  EXPECT_DOUBLE_EQ(a.total_time, b.total_time);
}

// --- checkpointed migration --------------------------------------------------

TEST(Migration, ReplacementLeasedForACrashedCloudNode) {
  LifecycleRig rig;
  const auto clean = rig.run(rig.options());
  trace::Tracer tracer;
  RunOptions o = rig.options();
  o.tracer = &tracer;
  o.lifecycle.push_back(event(Kind::Crash, kCloudSite, 0, 0.4 * clean.total_time));
  o.failure_detection_seconds = 0.2;
  o.migration.standby_nodes = 1;
  o.migration.boot_seconds = 0.5;
  const auto result = rig.run(o);
  rig.expect_correct(result);
  EXPECT_EQ(result.lifecycle.replacements_leased, 1u);
  // The replacement bills from its boot, not from the start of the run.
  bool late_start = false;
  for (double s : result.cloud_instance_starts) {
    if (s > 0.0) late_start = true;
  }
  EXPECT_TRUE(late_start);
  bool migrated_event = false;
  for (const auto& e : tracer.events()) {
    if (e.kind == trace::EventKind::JobMigrated) migrated_event = true;
  }
  EXPECT_TRUE(migrated_event);
}

TEST(Migration, DrainedNodeHandsOverToReplacement) {
  LifecycleRig rig;
  const auto clean = rig.run(rig.options());
  RunOptions o = rig.options();
  o.lifecycle.push_back(
      event(Kind::SpotReclaim, kCloudSite, 0, 0.3 * clean.total_time, 20.0));
  o.migration.standby_nodes = 1;
  o.migration.boot_seconds = 0.5;
  const auto result = rig.run(o);
  rig.expect_correct(result);
  EXPECT_EQ(result.lifecycle.nodes_vacated, 1u);
  EXPECT_EQ(result.lifecycle.replacements_leased, 1u);
  // Graceful handover: nothing re-executed even though the node left.
  EXPECT_EQ(result.total_jobs(), 24u);
}

TEST(Migration, NoLeaseWhenNoWorkRemains) {
  LifecycleRig rig;
  const auto clean = rig.run(rig.options());
  RunOptions o = rig.options();
  // Drain so late the cluster is already out of work by the vacate.
  o.lifecycle.push_back(
      event(Kind::Drain, kCloudSite, 0, 0.98 * clean.total_time));
  o.migration.standby_nodes = 1;
  const auto result = rig.run(o);
  rig.expect_correct(result);
  EXPECT_LE(result.lifecycle.replacements_leased, 1u);
}

// --- interplay: cache + prefetcher (satellite: node loss vs cache fleet) -----

TEST(LifecycleInterplay, DrainAndCrashWithPrefetchingCacheStayExact) {
  LifecycleRig rig;
  const auto clean = rig.run(rig.options());

  cache::CacheConfig cfg;
  cfg.capacity_bytes = GiB(16);
  cfg.prefetch.enabled = true;
  cfg.prefetch.depth = 4;
  cache::CacheFleet fleet(cfg);
  trace::Tracer tracer;

  RunOptions o = rig.options();
  o.cache = &fleet;
  o.tracer = &tracer;
  o.lifecycle.push_back(event(Kind::Drain, kCloudSite, 0, 0.3 * clean.total_time));
  o.lifecycle.push_back(event(Kind::Crash, kCloudSite, 1, 0.5 * clean.total_time));
  o.failure_detection_seconds = 0.2;
  o.migration.standby_nodes = 1;
  o.migration.boot_seconds = 0.5;

  const auto result = rig.run(o);
  rig.expect_correct(result);
  EXPECT_EQ(result.lifecycle.nodes_vacated, 1u);
  EXPECT_EQ(result.lifecycle.nodes_crashed, 1u);
  // No prefetch waiter leaked: every issued prefetch either delivered or was
  // counted wasted when the run settled (finish() ran inside collect()).
  EXPECT_GE(result.prefetch_issued(), result.prefetch_wasted());
  // The drained/crashed nodes' prefetched chunks stay usable: cache-served
  // bytes appear even though their original requesters left the run.
  EXPECT_GT(result.cache_hits() + result.cache_misses(), 0u);
}

// --- interplay: store fault model (satellite: reclaim vs retry/hedging) ------

TEST(LifecycleInterplay, ReclaimDuringThrottleWindowWithRetryStaysExact) {
  LifecycleRig rig;
  const auto clean = rig.run(rig.options());

  PlatformSpec spec = PlatformSpec::paper_testbed(16, 16);
  storage::FaultProfile fault;
  fault.fail_probability = 0.25;  // high enough to engage across ~36 fetches
  fault.throttles.push_back({0.2 * clean.total_time, 0.8 * clean.total_time,
                             /*bandwidth_factor=*/0.25,
                             /*extra_fail_probability=*/0.25});
  spec.sites[kCloudSite].store->fault = fault;
  Platform platform(spec);

  storage::DataLayout layout = storage::build_layout_for_units(
      rig.data.units(), rig.data.unit_bytes(), 6, 12);
  storage::assign_stores_by_fraction(layout, 0.5, platform.local_store_id(),
                                     platform.cloud_store_id());

  RunOptions o = rig.options();
  o.retry.max_attempts = 4;
  o.retry.backoff_base_seconds = 0.05;
  o.retry.attempt_timeout_seconds = 5.0;
  o.retry.hedge_delay_seconds = 2.0;
  // Reclaim a cloud node mid-window: retried and hedged fetches are torn
  // down with it; the re-pooled chunks refetch through the same flaky store.
  o.lifecycle.push_back(
      event(Kind::SpotReclaim, kCloudSite, 2, 0.4 * clean.total_time, 1.0));
  o.failure_detection_seconds = 0.2;

  const auto result = run_distributed(platform, layout, o);
  rig.expect_correct(result);
  EXPECT_GT(result.store_faults(), 0u);  // the profile actually engaged
  // Conservation under teardown: wins never exceed hedges issued, and every
  // retried byte belongs to a counted retry.
  EXPECT_GE(result.hedges_issued(), result.hedges_won());
  if (result.bytes_retried_total() > 0) {
    EXPECT_GT(result.fetch_retries() + result.store_faults(), 0u);
  }
}

// --- byte identity with the subsystem off ------------------------------------

TEST(LifecyclePin, DefaultOptionsMoveNothing) {
  LifecycleRig rig;
  const auto base = rig.run(rig.options());
  RunOptions o = rig.options();
  o.lifecycle.clear();                 // explicit defaults
  o.spot = RunOptions::SpotPolicy{};
  o.migration = RunOptions::MigrationPolicy{};
  const auto result = rig.run(o);
  EXPECT_DOUBLE_EQ(result.total_time, base.total_time);
  EXPECT_EQ(result.total_jobs(), base.total_jobs());
  EXPECT_TRUE(result.cloud_instance_ends.empty());
  EXPECT_EQ(result.lifecycle.drains_requested, 0u);
  EXPECT_EQ(result.lifecycle.checkpoint_flushes, 0u);
}

}  // namespace
}  // namespace cloudburst::middleware
