// Tests for common/serialize: typed round trips and truncation safety.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/serialize.hpp"

namespace cloudburst {
namespace {

TEST(Serialize, ScalarRoundTrip) {
  BufferWriter w;
  w.write_u8(7);
  w.write_u32(123456);
  w.write_u64(0xdeadbeefcafebabeULL);
  w.write_i64(-42);
  w.write_f64(3.14159);

  BufferReader r(w.buffer());
  EXPECT_EQ(r.read_u8(), 7);
  EXPECT_EQ(r.read_u32(), 123456u);
  EXPECT_EQ(r.read_u64(), 0xdeadbeefcafebabeULL);
  EXPECT_EQ(r.read_i64(), -42);
  EXPECT_DOUBLE_EQ(r.read_f64(), 3.14159);
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialize, StringRoundTrip) {
  BufferWriter w;
  w.write_string("");
  w.write_string("hello world");
  w.write_string(std::string("with\0nul", 8));

  BufferReader r(w.buffer());
  EXPECT_EQ(r.read_string(), "");
  EXPECT_EQ(r.read_string(), "hello world");
  EXPECT_EQ(r.read_string(), std::string("with\0nul", 8));
}

TEST(Serialize, PodVectorRoundTrip) {
  BufferWriter w;
  const std::vector<double> doubles = {1.0, -2.5, 1e300};
  const std::vector<std::uint32_t> ints = {1, 2, 3, 4};
  w.write_pod_vector(doubles);
  w.write_pod_vector(ints);

  BufferReader r(w.buffer());
  EXPECT_EQ(r.read_pod_vector<double>(), doubles);
  EXPECT_EQ(r.read_pod_vector<std::uint32_t>(), ints);
}

TEST(Serialize, EmptyVectorRoundTrip) {
  BufferWriter w;
  w.write_pod_vector(std::vector<double>{});
  BufferReader r(w.buffer());
  EXPECT_TRUE(r.read_pod_vector<double>().empty());
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialize, TruncatedScalarThrows) {
  BufferWriter w;
  w.write_u32(1);
  BufferReader r(w.buffer());
  EXPECT_THROW(r.read_u64(), std::out_of_range);
}

TEST(Serialize, TruncatedStringThrows) {
  BufferWriter w;
  w.write_u64(1000);  // length prefix promising 1000 bytes that do not exist
  BufferReader r(w.buffer());
  EXPECT_THROW(r.read_string(), std::out_of_range);
}

TEST(Serialize, TruncatedVectorThrows) {
  BufferWriter w;
  w.write_u64(10);  // promises 10 doubles
  w.write_f64(1.0);
  BufferReader r(w.buffer());
  EXPECT_THROW(r.read_pod_vector<double>(), std::out_of_range);
}

TEST(Serialize, RemainingTracksPosition) {
  BufferWriter w;
  w.write_u32(1);
  w.write_u32(2);
  BufferReader r(w.buffer());
  EXPECT_EQ(r.remaining(), 8u);
  r.read_u32();
  EXPECT_EQ(r.remaining(), 4u);
  r.read_u32();
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialize, WriterSizeMatchesBuffer) {
  BufferWriter w;
  w.write_u64(1);
  w.write_string("abc");
  EXPECT_EQ(w.size(), w.buffer().size());
  EXPECT_EQ(w.size(), 8u + 8u + 3u);
}

TEST(Serialize, TakeMovesBuffer) {
  BufferWriter w;
  w.write_u32(99);
  auto buf = w.take();
  EXPECT_EQ(buf.size(), 4u);
}

TEST(Serialize, RawBytesRoundTrip) {
  BufferWriter w;
  const char raw[] = {1, 2, 3};
  w.write_bytes(raw, sizeof raw);
  EXPECT_EQ(w.size(), 3u);
  BufferReader r(w.buffer());
  EXPECT_EQ(r.read_u8(), 1);
  EXPECT_EQ(r.read_u8(), 2);
  EXPECT_EQ(r.read_u8(), 3);
}

}  // namespace
}  // namespace cloudburst
