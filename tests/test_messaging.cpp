// Tests for the Postman message layer and network conservation properties
// (property-style sweeps over randomized flow workloads).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "des/simulator.hpp"
#include "net/messaging.hpp"
#include "net/network.hpp"

namespace cloudburst::net {
namespace {

using des::from_seconds;
using des::Simulator;

struct TestMsg {
  int id = 0;
  std::string body;
};

struct Rig {
  Simulator sim;
  Network net{sim};
  Postman<TestMsg> postman{net};
  EndpointId a, b, c;

  Rig() {
    const SiteId left = net.add_site("L");
    const SiteId right = net.add_site("R");
    const LinkId trunk = net.add_link("trunk", 1e6, from_seconds(0.01));
    a = net.add_endpoint("a", left);
    b = net.add_endpoint("b", right);
    c = net.add_endpoint("c", right);
    net.set_route_symmetric(left, right, {trunk});
  }
};

TEST(Postman, DeliversToRegisteredMailbox) {
  Rig rig;
  std::vector<int> received;
  EndpointId seen_from = 999;
  rig.postman.register_mailbox(rig.b, [&](EndpointId from, TestMsg msg) {
    received.push_back(msg.id);
    seen_from = from;
  });
  rig.postman.send(rig.a, rig.b, 100, TestMsg{7, "hello"});
  rig.sim.run();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0], 7);
  EXPECT_EQ(seen_from, rig.a);
}

TEST(Postman, UnregisteredMailboxDropsSilently) {
  Rig rig;
  rig.postman.send(rig.a, rig.c, 100, TestMsg{1, ""});
  rig.sim.run();  // must not crash
  SUCCEED();
}

TEST(Postman, DeliveryRespectsTransferTime) {
  Rig rig;
  double arrival = -1;
  rig.postman.register_mailbox(rig.b, [&](EndpointId, TestMsg) {
    arrival = des::to_seconds(rig.sim.now());
  });
  rig.postman.send(rig.a, rig.b, 500'000, TestMsg{});  // 0.5s at 1 MB/s + 10ms
  rig.sim.run();
  EXPECT_NEAR(arrival, 0.51, 1e-6);
}

TEST(Postman, ManyMessagesAllArriveInOrderPerPath) {
  Rig rig;
  std::vector<int> order;
  rig.postman.register_mailbox(rig.b, [&](EndpointId, TestMsg msg) {
    order.push_back(msg.id);
  });
  for (int i = 0; i < 20; ++i) rig.postman.send(rig.a, rig.b, 1000, TestMsg{i, ""});
  rig.sim.run();
  ASSERT_EQ(order.size(), 20u);
  // Equal-size messages on the same path share bandwidth and finish in
  // submission order (ties broken by event sequence).
  for (int i = 0; i < 20; ++i) EXPECT_EQ(order[i], i);
}

TEST(Postman, MovesLargePayloadsWithoutCopy) {
  Rig rig;
  std::string got;
  rig.postman.register_mailbox(rig.b, [&](EndpointId, TestMsg msg) {
    got = std::move(msg.body);
  });
  rig.postman.send(rig.a, rig.b, 10, TestMsg{0, std::string(1000, 'x')});
  rig.sim.run();
  EXPECT_EQ(got.size(), 1000u);
}

// --- conservation properties -----------------------------------------------------

class FlowConservationSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlowConservationSweep, AllBytesArriveExactlyOnce) {
  // Random flows over a dumbbell; every launched byte must be delivered and
  // the shared trunk must carry exactly the total.
  Simulator sim;
  Network net(sim);
  const SiteId left = net.add_site("L");
  const SiteId right = net.add_site("R");
  const LinkId trunk = net.add_link("trunk", 5e6, from_seconds(0.001));
  std::vector<EndpointId> senders, receivers;
  for (int i = 0; i < 4; ++i) {
    senders.push_back(net.add_endpoint("s" + std::to_string(i), left));
    receivers.push_back(net.add_endpoint("r" + std::to_string(i), right));
  }
  net.set_route_symmetric(left, right, {trunk});

  Rng rng(GetParam());
  std::uint64_t launched = 0;
  std::uint64_t delivered = 0;
  int completions = 0;
  const int flows = 50;
  for (int f = 0; f < flows; ++f) {
    const std::uint64_t bytes = 1000 + rng.next_below(2'000'000);
    launched += bytes;
    const auto src = senders[rng.next_below(senders.size())];
    const auto dst = receivers[rng.next_below(receivers.size())];
    const double start = rng.uniform(0.0, 2.0);
    sim.schedule(from_seconds(start), [&, src, dst, bytes] {
      net.start_flow(src, dst, bytes, 0.0, [&, bytes] {
        delivered += bytes;
        ++completions;
      });
    });
  }
  sim.run();
  EXPECT_EQ(completions, flows);
  EXPECT_EQ(delivered, launched);
  // Trunk stats settle within rounding of the true volume.
  const double carried = static_cast<double>(net.link(trunk).bytes_carried);
  EXPECT_NEAR(carried, static_cast<double>(launched),
              static_cast<double>(flows) * 4.0);
  EXPECT_EQ(net.active_flows(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowConservationSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

class CapacitySweep : public ::testing::TestWithParam<int> {};

TEST_P(CapacitySweep, AggregateThroughputNeverExceedsBottleneck) {
  // n concurrent equal flows through a 1 MB/s trunk cannot finish faster
  // than the serial optimum.
  const int n = GetParam();
  Simulator sim;
  Network net(sim);
  const SiteId l = net.add_site("L"), r = net.add_site("R");
  const LinkId trunk = net.add_link("t", 1e6, 0);
  const EndpointId a = net.add_endpoint("a", l), b = net.add_endpoint("b", r);
  net.set_route_symmetric(l, r, {trunk});

  const std::uint64_t each = 250'000;
  for (int i = 0; i < n; ++i) net.start_flow(a, b, each, 0.0, nullptr);
  const double finish = des::to_seconds(sim.run());
  const double optimum = static_cast<double>(each) * n / 1e6;
  EXPECT_GE(finish, optimum - 1e-6);
  EXPECT_NEAR(finish, optimum, 1e-3);  // fair sharing wastes nothing
}

INSTANTIATE_TEST_SUITE_P(FlowCounts, CapacitySweep, ::testing::Values(1, 2, 5, 10, 25));

}  // namespace
}  // namespace cloudburst::net
