#!/usr/bin/env python3
"""Tests for tools/check_bench_regression.py.

Runs the gate as a subprocess against synthetic BENCH_engine.json pairs and
asserts on exit codes and output, so what is tested is exactly what CI runs.
Uses only the standard library (unittest) — invoke directly or via ctest.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

TOOL = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    "check_bench_regression.py")


def bench_json(events_per_sec, peak_rss_bytes=None, **overrides):
    doc = {
        "mode": "quick",
        "seed": 42,
        "fleet_nodes": 64,
        "jobs": 4,
        "chunks_total": 512,
        "executed_events": 100000,
        "sim_makespan_seconds": 123.456,
        "events_per_sec": events_per_sec,
    }
    if peak_rss_bytes is not None:
        doc["peak_rss_bytes"] = peak_rss_bytes
    doc.update(overrides)
    return doc


class GateTestBase(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self._tmp.cleanup)

    def _write(self, name, doc):
        path = os.path.join(self._tmp.name, name)
        with open(path, "w") as f:
            json.dump(doc, f)
        return path

    def _run(self, current, baseline, *extra_args):
        cur = self._write("current.json", current)
        base = self._write("baseline.json", baseline)
        proc = subprocess.run(
            [sys.executable, TOOL, cur, base, *extra_args],
            capture_output=True, text=True)
        return proc, base


class CheckBenchRegressionTest(GateTestBase):
    def test_within_budget_passes(self):
        rss = 64 << 20
        proc, _ = self._run(bench_json(95000.0, rss), bench_json(100000.0, rss))
        self.assertEqual(proc.returncode, 0, proc.stdout)
        self.assertIn("OK", proc.stdout)

    def test_throughput_regression_fails(self):
        proc, _ = self._run(bench_json(80000.0), bench_json(100000.0))
        self.assertEqual(proc.returncode, 1, proc.stdout)
        self.assertIn("events/sec regressed", proc.stdout)

    def test_rss_growth_beyond_25pct_fails(self):
        proc, _ = self._run(bench_json(100000.0, 130 << 20),
                            bench_json(100000.0, 100 << 20))
        self.assertEqual(proc.returncode, 1, proc.stdout)
        self.assertIn("peak RSS grew", proc.stdout)

    def test_rss_growth_within_25pct_passes(self):
        proc, _ = self._run(bench_json(100000.0, 120 << 20),
                            bench_json(100000.0, 100 << 20))
        self.assertEqual(proc.returncode, 0, proc.stdout)

    def test_rss_threshold_is_configurable(self):
        proc, _ = self._run(bench_json(100000.0, 110 << 20),
                            bench_json(100000.0, 100 << 20),
                            "--max-rss-growth", "0.05")
        self.assertEqual(proc.returncode, 1, proc.stdout)

    def test_missing_rss_in_baseline_skips_rss_gate(self):
        # Baselines predating peak_rss_bytes must not force an update.
        proc, _ = self._run(bench_json(100000.0, 500 << 20),
                            bench_json(100000.0))
        self.assertEqual(proc.returncode, 0, proc.stdout)
        self.assertNotIn("peak RSS", proc.stdout)

    def test_deterministic_drift_warns_but_passes(self):
        proc, _ = self._run(bench_json(100000.0, executed_events=99999),
                            bench_json(100000.0))
        self.assertEqual(proc.returncode, 0, proc.stdout)
        self.assertIn("drifted", proc.stdout)

    def test_update_rewrites_baseline_and_passes(self):
        current = bench_json(50000.0, 300 << 20)
        proc, base = self._run(current, bench_json(100000.0, 100 << 20),
                               "--update")
        self.assertEqual(proc.returncode, 0, proc.stdout)
        with open(base) as f:
            self.assertEqual(json.load(f), current)

    def test_nonpositive_baseline_throughput_errors(self):
        proc, _ = self._run(bench_json(100000.0), bench_json(0.0))
        self.assertEqual(proc.returncode, 2, proc.stdout)


def directory_json(boot_wait_fraction, usd_fraction):
    return {
        "bench": "ablation_directory",
        "mode": "quick",
        "seed": 42,
        "burst": {"savings": {"boot_wait_fraction": boot_wait_fraction,
                              "usd_fraction": usd_fraction}},
    }


class MetricGateTest(GateTestBase):
    METRICS = ("--metric", "burst.savings.boot_wait_fraction",
               "--metric", "burst.savings.usd_fraction")

    def test_equal_metrics_pass(self):
        proc, _ = self._run(directory_json(0.55, 0.60),
                            directory_json(0.55, 0.60), *self.METRICS)
        self.assertEqual(proc.returncode, 0, proc.stdout)
        self.assertIn("OK", proc.stdout)
        # Metric mode must not require the engine fields.
        self.assertNotIn("events/sec", proc.stdout)

    def test_drop_within_budget_passes(self):
        proc, _ = self._run(directory_json(0.50, 0.55),
                            directory_json(0.55, 0.60), *self.METRICS)
        self.assertEqual(proc.returncode, 0, proc.stdout)

    def test_drop_beyond_budget_fails(self):
        proc, _ = self._run(directory_json(0.20, 0.60),
                            directory_json(0.55, 0.60), *self.METRICS)
        self.assertEqual(proc.returncode, 1, proc.stdout)
        self.assertIn("boot_wait_fraction", proc.stdout)
        self.assertIn("regressed", proc.stdout)

    def test_improvement_passes(self):
        proc, _ = self._run(directory_json(0.80, 0.90),
                            directory_json(0.55, 0.60), *self.METRICS)
        self.assertEqual(proc.returncode, 0, proc.stdout)

    def test_lower_is_better_growth_fails(self):
        proc, _ = self._run({"makespan": 200.0}, {"makespan": 100.0},
                            "--metric", "makespan:lower")
        self.assertEqual(proc.returncode, 1, proc.stdout)
        self.assertIn("grew", proc.stdout)

    def test_lower_is_better_drop_passes(self):
        proc, _ = self._run({"makespan": 50.0}, {"makespan": 100.0},
                            "--metric", "makespan:lower")
        self.assertEqual(proc.returncode, 0, proc.stdout)

    def test_threshold_is_configurable(self):
        proc, _ = self._run(directory_json(0.50, 0.60),
                            directory_json(0.55, 0.60),
                            "--max-regression", "0.01", *self.METRICS)
        self.assertEqual(proc.returncode, 1, proc.stdout)

    def test_missing_metric_in_current_fails(self):
        proc, _ = self._run({"other": 1.0}, directory_json(0.55, 0.60),
                            "--metric", "burst.savings.usd_fraction")
        self.assertEqual(proc.returncode, 1, proc.stdout)
        self.assertIn("missing or non-numeric", proc.stdout)

    def test_non_numeric_metric_fails(self):
        proc, _ = self._run({"burst": {"savings": {"usd_fraction": "big"}}},
                            directory_json(0.55, 0.60),
                            "--metric", "burst.savings.usd_fraction")
        self.assertEqual(proc.returncode, 1, proc.stdout)

    def test_zero_baseline_metric_fails(self):
        proc, _ = self._run({"x": 1.0}, {"x": 0.0}, "--metric", "x")
        self.assertEqual(proc.returncode, 1, proc.stdout)
        self.assertIn("zero", proc.stdout)

    def test_bad_direction_suffix_fails(self):
        proc, _ = self._run({"x": 1.0}, {"x": 1.0}, "--metric", "x:sideways")
        self.assertEqual(proc.returncode, 1, proc.stdout)
        self.assertIn("direction", proc.stdout)

    def test_update_rewrites_baseline_in_metric_mode(self):
        current = directory_json(0.10, 0.10)
        proc, base = self._run(current, directory_json(0.55, 0.60),
                               "--update", *self.METRICS)
        self.assertEqual(proc.returncode, 0, proc.stdout)
        with open(base) as f:
            self.assertEqual(json.load(f), current)


if __name__ == "__main__":
    unittest.main()
