#!/usr/bin/env python3
"""Tests for tools/check_bench_regression.py.

Runs the gate as a subprocess against synthetic BENCH_engine.json pairs and
asserts on exit codes and output, so what is tested is exactly what CI runs.
Uses only the standard library (unittest) — invoke directly or via ctest.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

TOOL = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    "check_bench_regression.py")


def bench_json(events_per_sec, peak_rss_bytes=None, **overrides):
    doc = {
        "mode": "quick",
        "seed": 42,
        "fleet_nodes": 64,
        "jobs": 4,
        "chunks_total": 512,
        "executed_events": 100000,
        "sim_makespan_seconds": 123.456,
        "events_per_sec": events_per_sec,
    }
    if peak_rss_bytes is not None:
        doc["peak_rss_bytes"] = peak_rss_bytes
    doc.update(overrides)
    return doc


class CheckBenchRegressionTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self._tmp.cleanup)

    def _write(self, name, doc):
        path = os.path.join(self._tmp.name, name)
        with open(path, "w") as f:
            json.dump(doc, f)
        return path

    def _run(self, current, baseline, *extra_args):
        cur = self._write("current.json", current)
        base = self._write("baseline.json", baseline)
        proc = subprocess.run(
            [sys.executable, TOOL, cur, base, *extra_args],
            capture_output=True, text=True)
        return proc, base

    def test_within_budget_passes(self):
        rss = 64 << 20
        proc, _ = self._run(bench_json(95000.0, rss), bench_json(100000.0, rss))
        self.assertEqual(proc.returncode, 0, proc.stdout)
        self.assertIn("OK", proc.stdout)

    def test_throughput_regression_fails(self):
        proc, _ = self._run(bench_json(80000.0), bench_json(100000.0))
        self.assertEqual(proc.returncode, 1, proc.stdout)
        self.assertIn("events/sec regressed", proc.stdout)

    def test_rss_growth_beyond_25pct_fails(self):
        proc, _ = self._run(bench_json(100000.0, 130 << 20),
                            bench_json(100000.0, 100 << 20))
        self.assertEqual(proc.returncode, 1, proc.stdout)
        self.assertIn("peak RSS grew", proc.stdout)

    def test_rss_growth_within_25pct_passes(self):
        proc, _ = self._run(bench_json(100000.0, 120 << 20),
                            bench_json(100000.0, 100 << 20))
        self.assertEqual(proc.returncode, 0, proc.stdout)

    def test_rss_threshold_is_configurable(self):
        proc, _ = self._run(bench_json(100000.0, 110 << 20),
                            bench_json(100000.0, 100 << 20),
                            "--max-rss-growth", "0.05")
        self.assertEqual(proc.returncode, 1, proc.stdout)

    def test_missing_rss_in_baseline_skips_rss_gate(self):
        # Baselines predating peak_rss_bytes must not force an update.
        proc, _ = self._run(bench_json(100000.0, 500 << 20),
                            bench_json(100000.0))
        self.assertEqual(proc.returncode, 0, proc.stdout)
        self.assertNotIn("peak RSS", proc.stdout)

    def test_deterministic_drift_warns_but_passes(self):
        proc, _ = self._run(bench_json(100000.0, executed_events=99999),
                            bench_json(100000.0))
        self.assertEqual(proc.returncode, 0, proc.stdout)
        self.assertIn("drifted", proc.stdout)

    def test_update_rewrites_baseline_and_passes(self):
        current = bench_json(50000.0, 300 << 20)
        proc, base = self._run(current, bench_json(100000.0, 100 << 20),
                               "--update")
        self.assertEqual(proc.returncode, 0, proc.stdout)
        with open(base) as f:
            self.assertEqual(json.load(f), current)

    def test_nonpositive_baseline_throughput_errors(self):
        proc, _ = self._run(bench_json(100000.0), bench_json(0.0))
        self.assertEqual(proc.returncode, 2, proc.stdout)


if __name__ == "__main__":
    unittest.main()
