#!/usr/bin/env python3
"""Gate bench regressions against a committed baseline.

Usage:
    tools/check_bench_regression.py CURRENT.json BASELINE.json \
        [--max-regression 0.15] [--max-rss-growth 0.25] [--update] \
        [--metric DOTTED.PATH[:lower]]...

Default mode compares the events/sec reported by bench/perf_engine
(BENCH_engine.json) against the committed baseline and exits non-zero when
throughput dropped by more than --max-regression (default 15%). Peak RSS is
gated the same way: growth beyond --max-rss-growth (default 25%) fails,
catching allocation regressions (per-event heap churn, unbounded queues)
that throughput alone can hide. Deterministic fields (event count, simulated
makespan, workload shape) are compared too: a mismatch there means the
kernel's behavior changed, which is reported as a warning so intentional
behavior changes can update the baseline (--update rewrites it in place).

With one or more --metric flags the tool instead gates arbitrary numeric
values addressed by dotted key path into the JSON documents (e.g.
`burst.savings.usd_fraction` for BENCH_directory.json). A metric is
higher-is-better by default — a drop beyond --max-regression fails; append
`:lower` for lower-is-better values, where growth beyond the threshold
fails. The events/sec and RSS gates are skipped in metric mode.

Wall-clock throughput varies across hosts; the gate is meant to catch real
hot-path regressions (allocation churn, O(F^2) rebalances creeping back),
not scheduler noise — hence the generous default thresholds.
"""

import argparse
import json
import shutil
import sys

# Same seed + config => these must reproduce exactly; a drift is a behavior
# change, not a performance change.
DETERMINISTIC_FIELDS = (
    "mode",
    "seed",
    "fleet_nodes",
    "jobs",
    "chunks_total",
    "executed_events",
    "sim_makespan_seconds",
)


def lookup(doc, path):
    """Resolve a dotted key path; returns None when any segment is missing."""
    node = doc
    for key in path.split("."):
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return node


def check_metric(spec, current, baseline, max_regression):
    """Gate one --metric spec ('path' or 'path:lower'). Returns True on pass."""
    path, _, direction = spec.partition(":")
    if direction not in ("", "higher", "lower"):
        print(f"error: --metric direction must be 'higher' or 'lower': {spec}")
        return False
    lower_is_better = direction == "lower"

    base_val = lookup(baseline, path)
    cur_val = lookup(current, path)
    for side, val in (("baseline", base_val), ("current", cur_val)):
        if not isinstance(val, (int, float)) or isinstance(val, bool):
            print(f"error: metric '{path}' missing or non-numeric in {side}")
            return False
    if float(base_val) == 0.0:
        print(f"error: baseline metric '{path}' is zero; cannot gate a ratio")
        return False

    change = float(cur_val) / float(base_val) - 1.0
    print(f"{path}: baseline {base_val:g} -> current {cur_val:g} ({change:+.1%})")
    regressed = change > max_regression if lower_is_better \
        else change < -max_regression
    if regressed:
        word = "grew" if lower_is_better else "regressed"
        print(f"FAIL: metric '{path}' {word} more than "
              f"{max_regression:.0%} vs committed baseline")
        return False
    return True


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="freshly produced BENCH_engine.json")
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("--max-regression", type=float, default=0.15,
                        help="allowed fractional events/sec drop (default 0.15)")
    parser.add_argument("--max-rss-growth", type=float, default=0.25,
                        help="allowed fractional peak-RSS growth (default 0.25)")
    parser.add_argument("--update", action="store_true",
                        help="overwrite the baseline with the current result")
    parser.add_argument("--metric", action="append", default=[],
                        metavar="DOTTED.PATH[:lower]",
                        help="gate this numeric JSON field instead of the "
                             "events/sec+RSS defaults (repeatable; append "
                             ":lower when smaller is better)")
    args = parser.parse_args()

    with open(args.current) as f:
        current = json.load(f)
    with open(args.baseline) as f:
        baseline = json.load(f)

    for field in DETERMINISTIC_FIELDS:
        if current.get(field) != baseline.get(field):
            print(f"warning: deterministic field '{field}' drifted: "
                  f"baseline={baseline.get(field)!r} current={current.get(field)!r}"
                  " (behavior change? refresh the baseline with --update)")

    if args.metric:
        # Explicit metric list replaces the engine-specific gates entirely so
        # the tool can police any bench's JSON (e.g. BENCH_directory.json).
        results = [check_metric(m, current, baseline, args.max_regression)
                   for m in args.metric]
        if args.update:
            shutil.copyfile(args.current, args.baseline)
            print(f"baseline updated: {args.baseline}")
            return 0
        if not all(results):
            return 1
        print("OK: within regression budget")
        return 0

    base_eps = float(baseline["events_per_sec"])
    cur_eps = float(current["events_per_sec"])
    if base_eps <= 0:
        print("error: baseline events_per_sec is not positive")
        return 2
    change = cur_eps / base_eps - 1.0
    print(f"events/sec: baseline {base_eps:,.0f} -> current {cur_eps:,.0f} "
          f"({change:+.1%})")

    # Older baselines predate the peak_rss_bytes field; gate only when both
    # sides report it so refreshing the baseline is never a prerequisite.
    rss_growth = None
    base_rss = baseline.get("peak_rss_bytes")
    cur_rss = current.get("peak_rss_bytes")
    if base_rss and cur_rss:
        rss_growth = float(cur_rss) / float(base_rss) - 1.0
        print(f"peak RSS: baseline {int(base_rss):,} B -> current "
              f"{int(cur_rss):,} B ({rss_growth:+.1%})")

    if args.update:
        shutil.copyfile(args.current, args.baseline)
        print(f"baseline updated: {args.baseline}")
        return 0

    failed = False
    if change < -args.max_regression:
        print(f"FAIL: events/sec regressed more than "
              f"{args.max_regression:.0%} vs committed baseline")
        failed = True
    if rss_growth is not None and rss_growth > args.max_rss_growth:
        print(f"FAIL: peak RSS grew more than {args.max_rss_growth:.0%} "
              f"vs committed baseline")
        failed = True
    if failed:
        return 1
    print("OK: within regression budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
