// Hybrid k-means: REAL clustering executed through the simulated
// cloud-bursting middleware.
//
// Generates a Gaussian-mixture point set, then runs several Lloyd iterations
// where *every* iteration is a full distributed run: chunks fetched from the
// two stores, processed by slave nodes at both sites, reduction objects
// merged up the binomial tree, master -> head across the WAN. The computed
// centroids are real; the clock is simulated.
//
//   ./hybrid_kmeans [points=120000] [k=4] [dim=4] [iterations=5] [local_fraction=0.33]
#include <cmath>
#include <cstdio>
#include <vector>

#include "apps/datagen.hpp"
#include "apps/kmeans.hpp"
#include "common/config.hpp"
#include "common/units.hpp"
#include "middleware/runtime.hpp"

using namespace cloudburst;

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  const auto points = static_cast<std::size_t>(cfg.get_int("points", 120000));
  const auto k = static_cast<std::size_t>(cfg.get_int("k", 4));
  const auto dim = static_cast<std::size_t>(cfg.get_int("dim", 4));
  const auto iterations = static_cast<std::size_t>(cfg.get_int("iterations", 5));
  const double fraction = cfg.get_double("local_fraction", 1.0 / 3.0);

  apps::PointGenSpec gen;
  gen.count = points;
  gen.dim = dim;
  gen.mixture_components = k;
  gen.component_spread = 12.0;
  gen.noise_sigma = 1.0;
  gen.seed = 99;
  const auto data = apps::generate_points(gen);
  const auto truth = apps::mixture_centers(gen);

  // Start centroids: ground-truth centers nudged off target.
  std::vector<std::vector<float>> centroids = truth;
  for (auto& c : centroids) {
    for (auto& v : c) v += 3.0f;
  }

  std::printf("hybrid k-means: %zu points, k=%zu, dim=%zu, %.0f%% of data local\n",
              points, k, dim, fraction * 100);

  double total_sim_time = 0.0;
  for (std::size_t it = 0; it < iterations; ++it) {
    apps::KmeansTask task(centroids);

    cluster::Platform platform(cluster::PlatformSpec::paper_testbed(16, 22));
    storage::DataLayout layout = storage::build_layout_for_units(
        data.units(), data.unit_bytes(), /*num_files=*/8, /*chunks_per_file=*/3);
    storage::assign_stores_by_fraction(layout, fraction, platform.local_store_id(),
                                       platform.cloud_store_id());

    middleware::RunOptions options;
    options.profile.name = "kmeans";
    options.profile.unit_bytes = data.unit_bytes();
    options.profile.bytes_per_second_per_core = units::MBps(1.2);
    options.profile.robj_bytes = 0;
    options.policy.steal_reserve = 0;  // compute-bound: always steal
    options.task = &task;
    options.dataset = &data;

    const auto result = middleware::run_distributed(platform, layout, options);
    total_sim_time += result.total_time;

    const auto next = task.centroids_from(*result.robj);
    double shift = 0.0;
    for (std::size_t c = 0; c < k; ++c) {
      for (std::size_t d = 0; d < dim; ++d) {
        shift += (next[c][d] - centroids[c][d]) * (next[c][d] - centroids[c][d]);
        centroids[c][d] = static_cast<float>(next[c][d]);
      }
    }
    std::printf("  iteration %zu: simulated %.1f s, centroid shift %.4f\n", it + 1,
                result.total_time, std::sqrt(shift));
  }

  // Distance of each final centroid to its nearest true mixture center.
  double worst = 0.0;
  for (std::size_t c = 0; c < k; ++c) {
    double best = 1e300;
    for (const auto& t : truth) {
      double d = 0;
      for (std::size_t j = 0; j < dim; ++j) {
        d += (centroids[c][j] - t[j]) * (centroids[c][j] - t[j]);
      }
      best = std::min(best, d);
    }
    worst = std::max(worst, std::sqrt(best));
  }
  std::printf("total simulated time: %.1f s over %zu iterations\n", total_sim_time,
              iterations);
  std::printf("worst centroid distance to a true mixture center: %.3f "
              "(noise sigma was %.1f)\n",
              worst, gen.noise_sigma);
  return 0;
}
