// Quickstart: the Generalized Reduction API in one file.
//
// Defines a tiny custom application — per-sensor mean temperature — against
// the GR interface, runs it on the shared-memory engine, and then runs the
// very same task through the full cloud-bursting middleware (simulated local
// cluster + cloud + S3) to show that the API is identical in both worlds.
//
//   ./quickstart [threads=4] [readings=200000]
#include <cstdio>
#include <cstring>
#include <vector>

#include "api/combiners.hpp"
#include "api/generalized_reduction.hpp"
#include "common/config.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "engine/gr_engine.hpp"
#include "middleware/runtime.hpp"

using namespace cloudburst;

namespace {

// One fixed-size data unit: a sensor reading.
struct Reading {
  std::uint32_t sensor;
  float temperature;
};
static_assert(sizeof(Reading) == 8);

constexpr std::uint32_t kSensors = 16;

// The whole application: a reduction object shape (per-sensor sum + count),
// a local reduction (fold one run of readings), and the library merge.
class MeanTemperature final : public api::GRTask {
 public:
  std::string name() const override { return "mean-temperature"; }
  std::size_t unit_bytes() const override { return sizeof(Reading); }

  api::RobjPtr create_robj() const override {
    return api::make_vector_sum(2 * kSensors);  // [sum_0, n_0, sum_1, n_1, ...]
  }

  void process(const std::byte* data, std::size_t unit_count,
               api::ReductionObject& robj) const override {
    auto& sums = dynamic_cast<api::VectorFoldRobj&>(robj);
    for (std::size_t i = 0; i < unit_count; ++i) {
      Reading r;
      std::memcpy(&r, data + i * sizeof(Reading), sizeof r);
      sums.accumulate(2 * r.sensor, r.temperature);
      sums.accumulate(2 * r.sensor + 1, 1.0);
    }
  }

  void finalize(api::ReductionObject& robj) const override {
    auto& sums = dynamic_cast<api::VectorFoldRobj&>(robj);
    for (std::uint32_t s = 0; s < kSensors; ++s) {
      const double n = sums.at(2 * s + 1);
      if (n > 0) sums.at(2 * s) /= n;
    }
  }
};

engine::MemoryDataset make_readings(std::size_t count) {
  std::vector<Reading> readings(count);
  Rng rng(2026);
  for (auto& r : readings) {
    r.sensor = static_cast<std::uint32_t>(rng.next_below(kSensors));
    // Each sensor sits at a different baseline.
    r.temperature = static_cast<float>(15.0 + r.sensor + rng.normal(0.0, 2.0));
  }
  return engine::MemoryDataset::from_records(readings);
}

}  // namespace

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  const auto threads = static_cast<std::size_t>(cfg.get_int("threads", 4));
  const auto readings = static_cast<std::size_t>(cfg.get_int("readings", 200000));

  const auto data = make_readings(readings);
  MeanTemperature task;

  // --- 1. shared-memory engine ----------------------------------------------
  engine::GrEngineOptions options;
  options.threads = threads;
  engine::GrRunStats stats;
  const api::RobjPtr robj = engine::gr_run(task, data, options, &stats);
  const auto& means = dynamic_cast<const api::VectorFoldRobj&>(*robj);

  std::printf("shared-memory engine: %zu readings, %zu threads, %.1f ms\n",
              readings, threads, stats.wall_seconds * 1e3);
  for (std::uint32_t s = 0; s < kSensors; s += 4) {
    std::printf("  sensor %2u: mean %.2f C (expect ~%.1f)\n", s, means.at(2 * s),
                15.0 + s);
  }

  // --- 2. the same task on the cloud-bursting middleware ----------------------
  cluster::Platform platform(cluster::PlatformSpec::paper_testbed(16, 16));
  storage::DataLayout layout = storage::build_layout_for_units(
      data.units(), data.unit_bytes(), /*num_files=*/8, /*chunks_per_file=*/3);
  storage::assign_stores_by_fraction(layout, 0.5, platform.local_store_id(),
                                     platform.cloud_store_id());

  middleware::RunOptions run;
  run.profile.name = task.name();
  run.profile.unit_bytes = data.unit_bytes();
  run.profile.bytes_per_second_per_core = units::MBps(40);
  run.profile.robj_bytes = 0;  // charge the real serialized robj
  run.task = &task;
  run.dataset = &data;

  const auto result = middleware::run_distributed(platform, layout, run);
  const auto& dist_means = dynamic_cast<const api::VectorFoldRobj&>(*result.robj);

  std::printf("\ncloud bursting (16 local + 16 cloud cores, 50/50 data split):\n");
  std::printf("  simulated execution time: %.3f s over %u jobs\n", result.total_time,
              result.total_jobs());
  double max_diff = 0.0;
  for (std::uint32_t s = 0; s < kSensors; ++s) {
    max_diff = std::max(max_diff, std::abs(dist_means.at(2 * s) - means.at(2 * s)));
  }
  std::printf("  max |distributed - shared-memory| mean difference: %.2e\n", max_diff);
  std::printf("  (identical results: the middleware routed every chunk exactly once)\n");
  return 0;
}
