// Cloud-bursting kNN: the paper's headline scenario end to end.
//
// A 12 GB point dataset is split between the local storage node and S3, and
// processed by 16 local + 16 cloud cores. The example sweeps the data skew
// and prints the execution-time decomposition and the job-stealing pattern —
// a miniature of Figure 3(a) + Table I you can play with.
//
//   ./cloud_bursting_knn [local_fraction=0.33] [wan_mbps=1000] [streams=8]
#include <cstdio>

#include "apps/experiments.hpp"
#include "common/config.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "middleware/runtime.hpp"

using namespace cloudburst;

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  const double fraction = cfg.get_double("local_fraction", 1.0 / 3.0);
  const double wan_mbps = cfg.get_double("wan_mbps", 1000.0);
  const auto streams = static_cast<unsigned>(cfg.get_int("streams", 8));

  cluster::PlatformSpec spec = cluster::PlatformSpec::paper_testbed(16, 16);
  spec.wan_bandwidth = units::mbps(wan_mbps);

  middleware::RunOptions options = apps::paper_run_options(apps::PaperApp::Knn);
  options.retrieval_streams = streams;

  cluster::Platform platform(spec);
  const storage::DataLayout layout = apps::paper_layout(
      apps::PaperApp::Knn, fraction, platform.local_store_id(), platform.cloud_store_id());

  std::printf("cloud-bursting knn: %s local / %s on S3, WAN %.0f Mb/s, %u streams\n",
              units::format_bytes(layout.bytes_on(platform.local_store_id())).c_str(),
              units::format_bytes(layout.bytes_on(platform.cloud_store_id())).c_str(),
              wan_mbps, streams);

  const auto result = middleware::run_distributed(platform, layout, options);

  AsciiTable table({"side", "nodes", "processing", "retrieval", "sync", "jobs own",
                    "jobs stolen"});
  for (const auto& c : result.clusters) {
    table.add_row({c.name, std::to_string(c.nodes),
                   AsciiTable::num(c.processing, 2), AsciiTable::num(c.retrieval, 2),
                   AsciiTable::num(c.sync, 2), std::to_string(c.jobs_local),
                   std::to_string(c.jobs_stolen)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("execution time: %.2f s (global reduction tail: %.3f s)\n",
              result.total_time, result.global_reduction_time);

  // Compare against centralized processing of the same aggregate power.
  const auto baseline = apps::run_env(apps::Env::Local, apps::PaperApp::Knn);
  std::printf("centralized baseline (32 local cores, all data local): %.2f s\n",
              baseline.total_time);
  std::printf("slowdown from bursting: %.1f%%\n",
              (result.total_time / baseline.total_time - 1.0) * 100.0);
  return 0;
}
