// PageRank on a synthetic web graph — Generalized Reduction vs Map-Reduce.
//
// Builds a Zipf-popularity directed graph, runs power iterations with the
// shared-memory GR engine, cross-checks one iteration against the Map-Reduce
// engine (with combiner), and prints the top pages plus the engine-level
// statistics that motivate the GR API (intermediate pairs, shuffle volume).
//
//   ./pagerank_webgraph [pages=50000] [edges=500000] [iterations=10] [threads=4]
#include <algorithm>
#include <cstdio>
#include <numeric>

#include "apps/datagen.hpp"
#include "apps/pagerank.hpp"
#include "common/config.hpp"
#include "engine/gr_engine.hpp"
#include "engine/mr_engine.hpp"

using namespace cloudburst;

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  const auto pages = static_cast<std::uint32_t>(cfg.get_int("pages", 50000));
  const auto edges_n = static_cast<std::uint64_t>(cfg.get_int("edges", 500000));
  const auto iterations = static_cast<std::size_t>(cfg.get_int("iterations", 10));
  const auto threads = static_cast<std::size_t>(cfg.get_int("threads", 4));

  apps::GraphGenSpec gen;
  gen.pages = pages;
  gen.edges = edges_n;
  gen.popularity_skew = 1.2;
  gen.seed = 7;
  const auto edges = apps::generate_edges(gen);
  const auto degrees = apps::out_degrees(edges, pages);

  std::printf("web graph: %u pages, %zu edges\n", pages, edges.units());

  // --- GR power iterations ----------------------------------------------------
  const auto ranks = apps::pagerank_iterate(edges, pages, iterations, threads);
  std::vector<std::uint32_t> order(pages);
  std::iota(order.begin(), order.end(), 0);
  std::partial_sort(order.begin(), order.begin() + 5, order.end(),
                    [&](std::uint32_t a, std::uint32_t b) { return ranks[a] > ranks[b]; });
  std::printf("top pages after %zu GR iterations:\n", iterations);
  for (int i = 0; i < 5; ++i) {
    std::printf("  page %6u  rank %.6f\n", order[i], ranks[order[i]]);
  }
  std::printf("rank mass: %.9f (should be 1)\n",
              std::accumulate(ranks.begin(), ranks.end(), 0.0));

  // --- one iteration on both engines, with stats -------------------------------
  std::vector<double> uniform(pages, 1.0 / pages);
  apps::PageRankTask task(uniform, degrees);

  engine::GrEngineOptions gr_options;
  gr_options.threads = threads;
  engine::GrRunStats gr_stats;
  const auto robj = engine::gr_run(task, edges, gr_options, &gr_stats);
  const auto gr_ranks = task.ranks_from(*robj);

  engine::MrEngineOptions mr_options;
  mr_options.threads = threads;
  mr_options.use_combiner = true;
  engine::MrRunStats mr_stats;
  const auto mr_out = engine::mr_run(task, edges, mr_options, &mr_stats);
  const auto mr_ranks = task.ranks_from(mr_out);

  double max_diff = 0.0;
  for (std::uint32_t p = 0; p < pages; ++p) {
    max_diff = std::max(max_diff, std::abs(gr_ranks[p] - mr_ranks[p]));
  }

  std::printf("\none iteration, both APIs (%zu threads):\n", threads);
  std::printf("  GR : %.1f ms, reduction object %.1f MiB, zero intermediate pairs\n",
              gr_stats.wall_seconds * 1e3,
              static_cast<double>(gr_stats.robj_bytes) / (1 << 20));
  std::printf("  MR : %.1f ms, %zu pairs emitted, peak %zu live pairs, "
              "%.1f MiB shuffled\n",
              mr_stats.wall_seconds * 1e3, mr_stats.pairs_emitted,
              mr_stats.peak_intermediate_pairs,
              static_cast<double>(mr_stats.shuffle_bytes) / (1 << 20));
  std::printf("  max rank difference between the two: %.2e\n", max_diff);
  return 0;
}
