// Data organizer: generate a dataset, split it into files, emit the index.
//
// This is the standalone preprocessing step the paper describes: "A data
// index file is generated after analyzing the data set. It holds metadata
// such as physical locations (data files), starting offset addresses, size
// of chunks and number of data units inside the chunks. When the head node
// starts, it reads the index file in order to generate the job pool."
//
//   ./data_organizer dir=/tmp/ds words=500000 files=8 chunks_per_file=3
//
// Then verifies its own output: re-reads the index, fetches two chunks with
// ranged reads, and re-imports the whole dataset bit-for-bit.
#include <cstdio>
#include <filesystem>

#include "apps/datagen.hpp"
#include "common/config.hpp"
#include "common/units.hpp"
#include "apps/wordcount.hpp"
#include "io/dataset_io.hpp"
#include "io/file_engine.hpp"

using namespace cloudburst;

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  const std::filesystem::path dir =
      cfg.get_string("dir", (std::filesystem::temp_directory_path() /
                             "cloudburst_dataset").string());
  const auto words = static_cast<std::size_t>(cfg.get_int("words", 500000));
  const auto files = static_cast<std::uint32_t>(cfg.get_int("files", 8));
  const auto chunks_per_file =
      static_cast<std::uint32_t>(cfg.get_int("chunks_per_file", 3));

  apps::WordGenSpec gen;
  gen.count = words;
  gen.vocabulary = 50000;
  const auto data = apps::generate_words(gen);

  auto layout = storage::build_layout_for_units(data.units(), data.unit_bytes(), files,
                                                chunks_per_file, "words");
  // Half the files belong on the local store, half on S3 — the hybrid split.
  storage::assign_stores_by_fraction(layout, 0.5, 0, 1);

  io::export_dataset(dir, data, layout);
  std::printf("organized %s of data into %zu files + index at %s\n",
              units::format_bytes(data.size_bytes()).c_str(), layout.files().size(),
              dir.string().c_str());

  // --- verify our own output ----------------------------------------------------
  const auto index = io::read_index_file(dir / "index.cbx");
  std::printf("index: %zu files, %zu chunks, %s total\n", index.files().size(),
              index.chunks().size(), units::format_bytes(index.total_bytes()).c_str());

  const auto first = io::read_chunk(dir, index, 0);
  const auto last =
      io::read_chunk(dir, index, static_cast<storage::ChunkId>(index.chunks().size() - 1));
  std::printf("chunk 0: %s; chunk %zu: %s (ranged reads)\n",
              units::format_bytes(first.size()).c_str(), index.chunks().size() - 1,
              units::format_bytes(last.size()).c_str());

  const auto back = io::import_dataset(dir, index);
  const bool identical = back.size_bytes() == data.size_bytes() &&
                         std::memcmp(back.data(), data.data(), data.size_bytes()) == 0;
  std::printf("re-import: %s\n", identical ? "bit-identical" : "MISMATCH");

  // Out-of-core processing straight off the exported files.
  apps::WordCountTask task;
  io::FileRunOptions run;
  run.threads = 4;
  io::FileRunStats stats;
  const auto robj = io::gr_run_files(task, dir, index, run, &stats);
  const auto& counts = dynamic_cast<const api::HashCountRobj&>(*robj);
  std::printf("out-of-core wordcount: %zu distinct words from %s in %.1f ms "
              "(%zu chunk reads)\n",
              counts.distinct_keys(), units::format_bytes(stats.bytes_read).c_str(),
              stats.wall_seconds * 1e3, static_cast<std::size_t>(stats.chunks_read));
  return identical ? 0 : 1;
}
