// Multi-cloud bursting: one local cluster, two cloud providers, one run.
//
// Builds a three-site PlatformSpec from scratch — the local paper testbed
// site plus two object-store-backed cloud providers — splits the kNN dataset
// across the three stores by weight, and runs the standard middleware on
// top. Shows the N-site API end to end: SiteSpec construction, per-pair WAN
// overrides, weighted data placement, and the per-site result decomposition.
//
//   ./multi_cloud_burst [local_weight=1] [cloudA_weight=1] [cloudB_weight=1]
//                       [cloudA_cores=16] [cloudB_cores=16] [wan_mbps=1000]
#include <cstdio>

#include "apps/experiments.hpp"
#include "common/config.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "middleware/runtime.hpp"
#include "storage/data_layout.hpp"

using namespace cloudburst;

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  const std::vector<double> weights = {cfg.get_double("local_weight", 1.0),
                                       cfg.get_double("cloudA_weight", 1.0),
                                       cfg.get_double("cloudB_weight", 1.0)};
  const auto cores_a = static_cast<unsigned>(cfg.get_int("cloudA_cores", 16));
  const auto cores_b = static_cast<unsigned>(cfg.get_int("cloudB_cores", 16));
  const double wan_mbps = cfg.get_double("wan_mbps", 1000.0);

  cluster::PlatformSpec spec;
  spec.sites.push_back(cluster::PlatformSpec::paper_local_site(16));
  spec.sites.push_back(cluster::PlatformSpec::paper_cloud_site(cores_a, "cloudA"));
  spec.sites.push_back(cluster::PlatformSpec::paper_cloud_site(cores_b, "cloudB"));
  spec.wan_bandwidth = units::mbps(wan_mbps);
  spec.wan_latency = des::from_seconds(units::ms(25));
  // Provider-to-provider traffic rides the public internet.
  spec.set_wan(1, 2, units::MBps(80), des::from_seconds(units::ms(40)));
  spec.node_speed_jitter = 0.03;

  cluster::Platform platform(spec);
  storage::DataLayout layout = apps::paper_layout(
      apps::PaperApp::Knn, 1.0, platform.local_store_id(), platform.cloud_store_id());
  const auto achieved = storage::assign_stores_by_weights(
      layout, weights,
      {platform.store_of_cluster(0), platform.store_of_cluster(1),
       platform.store_of_cluster(2)});

  std::printf("multi-cloud knn: %zu sites, WAN %.0f Mb/s\n", spec.sites.size(), wan_mbps);
  for (std::size_t i = 0; i < achieved.size(); ++i) {
    const auto site = static_cast<cluster::ClusterId>(i);
    const auto store = platform.store_of_cluster(site);
    std::printf("  %-6s %7s (%.0f%% of the dataset)\n", platform.site_name(site).c_str(),
                units::format_bytes(layout.bytes_on(store)).c_str(), achieved[i] * 100.0);
  }

  const auto result = middleware::run_distributed(
      platform, layout, apps::paper_run_options(apps::PaperApp::Knn));

  AsciiTable table({"site", "nodes", "processing", "retrieval", "sync", "jobs own",
                    "jobs stolen"});
  for (const auto& c : result.clusters) {
    table.add_row({c.name, std::to_string(c.nodes),
                   AsciiTable::num(c.processing, 2), AsciiTable::num(c.retrieval, 2),
                   AsciiTable::num(c.sync, 2), std::to_string(c.jobs_local),
                   std::to_string(c.jobs_stolen)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("execution time: %.2f s (global reduction tail: %.3f s)\n",
              result.total_time, result.global_reduction_time);
  return 0;
}
