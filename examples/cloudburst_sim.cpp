// cloudburst_sim — the configurable front end to the whole system.
//
// One binary that wires every knob together: pick an application and data
// split, size both clusters, tune the WAN and retrieval, flip scheduler
// policies, inject failures, enable elastic bursting — then get the
// execution report, the dollar cost, and (optionally) an ASCII Gantt chart
// of every node's fetch/process timeline.
//
//   ./cloudburst_sim app=knn local_fraction=0.33 local_cores=16 cloud_cores=16
//   ./cloudburst_sim app=pagerank wan_mbps=500 gantt=true
//   ./cloudburst_sim app=kmeans elastic_deadline=300 cloud_cores=32
//   ./cloudburst_sim app=knn fail_cloud_node=0 fail_at=5 tree=false
#include <cstdio>
#include <string>

#include "apps/experiments.hpp"
#include "common/config.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "cost/cost_model.hpp"
#include "middleware/runtime.hpp"
#include "trace/trace.hpp"

using namespace cloudburst;

namespace {

apps::PaperApp parse_app(const std::string& name) {
  if (name == "knn") return apps::PaperApp::Knn;
  if (name == "kmeans") return apps::PaperApp::Kmeans;
  if (name == "pagerank") return apps::PaperApp::PageRank;
  throw std::invalid_argument("unknown app (use knn|kmeans|pagerank): " + name);
}

}  // namespace

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);

  const apps::PaperApp app = parse_app(cfg.get_string("app", "knn"));
  const double fraction = cfg.get_double("local_fraction", 1.0 / 3.0);
  const auto local_cores = static_cast<unsigned>(cfg.get_int("local_cores", 16));
  const auto cloud_cores = static_cast<unsigned>(cfg.get_int("cloud_cores", 16));

  cluster::PlatformSpec spec = cluster::PlatformSpec::paper_testbed(local_cores, cloud_cores);
  if (cfg.contains("wan_mbps")) spec.wan_bandwidth = units::mbps(cfg.get_double("wan_mbps", 0));
  if (cfg.contains("wan_latency_ms")) {
    spec.wan_latency = des::from_seconds(units::ms(cfg.get_double("wan_latency_ms", 25)));
  }
  if (cfg.contains("disk_mbps")) {
    spec.store(cluster::kLocalSite).front_bandwidth =
        units::MBps(cfg.get_double("disk_mbps", 0));
  }

  middleware::RunOptions options = apps::paper_run_options(app);
  options.retrieval_streams =
      static_cast<unsigned>(cfg.get_int("streams", options.retrieval_streams));
  options.pipeline_depth =
      static_cast<unsigned>(cfg.get_int("pipeline_depth", options.pipeline_depth));
  options.policy.allow_stealing = cfg.get_bool("stealing", true);
  options.policy.batch_size =
      static_cast<std::uint32_t>(cfg.get_int("batch_size", options.policy.batch_size));
  options.reduction_tree = cfg.get_bool("tree", true);
  if (cfg.contains("compression_ratio")) {
    options.profile.compression_ratio = cfg.get_double("compression_ratio", 1.0);
  }
  if (cfg.contains("robj_mib")) {
    options.profile.robj_bytes = units::MiB(
        static_cast<std::uint64_t>(cfg.get_int("robj_mib", 0)));
  }

  if (cfg.contains("fail_cloud_node")) {
    options.reduction_tree = false;
    options.failures.push_back(
        {cluster::kCloudSite,
         static_cast<std::uint32_t>(cfg.get_int("fail_cloud_node", 0)),
         cfg.get_double("fail_at", 5.0)});
  }
  if (cfg.contains("elastic_deadline")) {
    options.reduction_tree = false;
    options.elastic.enabled = true;
    options.elastic.deadline_seconds = cfg.get_double("elastic_deadline", 0);
    options.elastic.initial_cloud_nodes =
        static_cast<std::uint32_t>(cfg.get_int("elastic_initial", 1));
    options.elastic.boot_seconds = cfg.get_double("elastic_boot", 30.0);
  }

  trace::Tracer tracer;
  const bool want_gantt = cfg.get_bool("gantt", false);
  if (want_gantt) options.tracer = &tracer;

  cluster::Platform platform(spec);
  const storage::DataLayout layout = apps::paper_layout(
      app, fraction, platform.local_store_id(), platform.cloud_store_id());

  std::printf("cloudburst_sim: %s, %s local / %s S3, (%u, %u) cores, WAN %s\n",
              apps::to_string(app),
              units::format_bytes(layout.bytes_on(platform.local_store_id())).c_str(),
              units::format_bytes(layout.bytes_on(platform.cloud_store_id())).c_str(),
              local_cores, cloud_cores,
              units::format_bandwidth(spec.wan_bandwidth).c_str());

  const auto result = middleware::run_distributed(platform, layout, options);

  AsciiTable table({"side", "nodes", "processing", "retrieval", "sync", "jobs own",
                    "jobs stolen"});
  for (const auto& c : result.clusters) {
    if (c.nodes == 0) continue;
    table.add_row({c.name, std::to_string(c.nodes),
                   AsciiTable::num(c.processing, 2), AsciiTable::num(c.retrieval, 2),
                   AsciiTable::num(c.sync, 2), std::to_string(c.jobs_local),
                   std::to_string(c.jobs_stolen)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("execution time: %.2f s; global reduction: %.3f s\n", result.total_time,
              result.global_reduction_time);
  if (result.elastic_activations > 0) {
    std::printf("elastic: booted %u instances\n", result.elastic_activations);
  }

  const auto cost = cost::price_run(result, platform, layout, options,
                                    cost::CloudPricing::aws_2011());
  std::printf("cost: %s\n", cost.to_string().c_str());

  if (want_gantt) {
    std::printf("\n%s", tracer.render_gantt(90).c_str());
    std::printf("  legend: f fetching, P processing, * both, . idle\n");
  }
  return 0;
}
