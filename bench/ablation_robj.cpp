// Ablation: reduction-object size sweep.
//
// The paper's conclusion: "if the reduction object size increases relative
// to input data size, it may not be feasible to use cloud bursting due to
// the increasing costs of transferring the reduction object." This sweep
// regenerates that frontier: hybrid slowdown vs robj size for the pagerank
// configuration.
#include "paper_common.hpp"

#include "common/units.hpp"

int main(int argc, char** argv) {
  using namespace cloudburst;
  using namespace cloudburst::units;
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);

  AsciiTable table({"robj size", "env-local", "env-50/50", "sync local", "sync cloud",
                    "slowdown"});
  std::vector<std::uint64_t> sweep = {MiB(1), MiB(16), MiB(64), MiB(256), GiB(1)};
  if (args.quick) sweep = {MiB(1), MiB(256)};
  for (std::uint64_t robj : sweep) {
    auto tweak = [&](cluster::PlatformSpec&, middleware::RunOptions& o) {
      o.profile.robj_bytes = robj;
      o.random_seed = args.seed;
    };
    const auto base = apps::run_env(apps::Env::Local, apps::PaperApp::PageRank, tweak);
    const auto hybrid =
        apps::run_env(apps::Env::Hybrid5050, apps::PaperApp::PageRank, tweak);
    table.add_row(
        {units::format_bytes(robj), AsciiTable::num(base.total_time, 1),
         AsciiTable::num(hybrid.total_time, 1),
         AsciiTable::num(hybrid.side(cluster::kLocalSite).sync, 1),
         AsciiTable::num(hybrid.side(cluster::kCloudSite).sync, 1),
         AsciiTable::pct(hybrid.total_time / base.total_time - 1.0, 1)});
  }
  std::printf("%s\n",
              table.render("Ablation — reduction-object size vs bursting feasibility "
                           "(pagerank, env-50/50, seconds)")
                  .c_str());
  std::printf("paper: \"if the reduction object size increases relative to input data "
              "size,\nit may not be feasible to use cloud bursting\" — the slowdown "
              "column shows the frontier.\n\n");
  return 0;
}
