// Ablation: retrieval/compute pipelining (prefetch depth).
//
// The baseline middleware serializes fetch-then-process per job (matching
// the paper's stacked time decomposition); allowing each slave to hold
// several jobs overlaps the WAN/S3 fetch of the next chunk with the
// processing of the current one.
#include "paper_common.hpp"

int main(int argc, char** argv) {
  using namespace cloudburst;
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  AsciiTable table({"app", "env", "depth 1", "depth 2", "depth 4", "best speedup"});
  std::vector<bench::PaperApp> apps_sweep = {
      bench::PaperApp::Knn, bench::PaperApp::Kmeans, bench::PaperApp::PageRank};
  if (args.quick) apps_sweep = {bench::PaperApp::Knn};
  for (bench::PaperApp app : apps_sweep) {
    for (apps::Env env : {apps::Env::Cloud, apps::Env::Hybrid1783}) {
      double times[3];
      int i = 0;
      for (unsigned depth : {1u, 2u, 4u}) {
        times[i++] = apps::run_env(env, app,
                                   [&](cluster::PlatformSpec&, middleware::RunOptions& o) {
                                     o.pipeline_depth = depth;
                                     o.random_seed = args.seed;
                                   })
                         .total_time;
      }
      const double best = std::min(times[1], times[2]);
      table.add_row({apps::to_string(app), apps::env_config(env, app).name,
                     AsciiTable::num(times[0], 1), AsciiTable::num(times[1], 1),
                     AsciiTable::num(times[2], 1),
                     AsciiTable::pct(times[0] / best - 1.0, 1)});
    }
    table.add_separator();
  }
  std::printf("%s\n", table.render("Ablation — slave prefetch pipeline depth "
                                   "(execution time, seconds)")
                          .c_str());
  return 0;
}
