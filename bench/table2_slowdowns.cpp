// Reproduces Table II: per-application, per-hybrid-environment overheads —
// global reduction time, end-of-run idle time per cluster, and the total
// slowdown versus env-local (seconds and percent).
#include "paper_common.hpp"

int main() {
  using namespace cloudburst;
  AsciiTable table({"app", "env", "global reduction (s)", "idle local (s)",
                    "idle cloud (s)", "total slowdown (s)", "slowdown"});
  for (bench::PaperApp app :
       {bench::PaperApp::Knn, bench::PaperApp::Kmeans, bench::PaperApp::PageRank}) {
    const auto baseline = apps::run_env(apps::Env::Local, app);
    for (apps::Env env : apps::kHybridEnvs) {
      const auto config = apps::env_config(env, app);
      const auto result = apps::run_env(env, app);
      const double slowdown_s = result.total_time - baseline.total_time;
      table.add_row(
          {apps::to_string(app), config.name,
           AsciiTable::num(result.global_reduction_time, 2),
           AsciiTable::num(result.side(cluster::kLocalSite).idle_time, 2),
           AsciiTable::num(result.side(cluster::kCloudSite).idle_time, 2),
           AsciiTable::num(slowdown_s, 2),
           AsciiTable::pct(slowdown_s / baseline.total_time, 1)});
    }
    table.add_separator();
  }
  std::printf("%s\n",
              table.render("Table II — slowdowns of the applications with respect to "
                           "data distribution (baseline: env-local)")
                  .c_str());
  return 0;
}
