// Extension bench: the time/cost tradeoff of cloud bursting.
//
// The paper frames bursting as "flexibility in combining limited local
// resources with pay-as-you-go cloud resources"; the authors' follow-up
// work optimizes execution under time or dollar constraints. This bench
// regenerates that tradeoff: for each application, sweep the rented cloud
// capacity (16 local cores fixed, 33% of the data local) and report
// simulated execution time against 2011 AWS dollars, then let the planner
// answer deadline- and budget-constrained provisioning queries.
#include "paper_common.hpp"

#include "cost/planner.hpp"

int main() {
  using namespace cloudburst;

  for (bench::PaperApp app :
       {bench::PaperApp::Knn, bench::PaperApp::Kmeans, bench::PaperApp::PageRank}) {
    AsciiTable table({"cloud cores", "instances", "exec time", "instance $", "GETs $",
                      "transfer $", "total $"});
    std::vector<cost::PlanPoint> points;
    for (unsigned cores : {0u, 8u, 16u, 32u, 64u}) {
      const auto run = apps::run_custom(app, 1.0 / 3, 16, cores);
      points.push_back(cost::PlanPoint{cores, run.result.total_time, run.cost});
      table.add_row({std::to_string(cores), std::to_string((cores + 1) / 2),
                     AsciiTable::num(run.result.total_time, 1),
                     AsciiTable::num(run.cost.instance_usd, 3),
                     AsciiTable::num(run.cost.requests_usd, 3),
                     AsciiTable::num(run.cost.transfer_usd, 3),
                     AsciiTable::num(run.cost.total_usd(), 3)});
    }
    std::printf("%s", table.render(std::string("Time/cost tradeoff — ") +
                                   apps::to_string(app) +
                                   " (16 local cores, 33% data local, AWS 2011 prices)")
                          .c_str());

    const double fastest = points.back().exec_seconds;
    const double slowest = points.front().exec_seconds;
    const double deadline = fastest + 0.25 * (slowest - fastest);
    if (const auto plan = cost::plan_for_deadline(points, deadline)) {
      std::printf("planner: deadline %.1fs -> rent %u cloud cores ($%.3f, %.1fs)\n",
                  deadline, plan->cloud_cores, plan->cost.total_usd(),
                  plan->exec_seconds);
    }
    const double budget = points[2].cost.total_usd();
    if (const auto plan = cost::plan_for_budget(points, budget)) {
      std::printf("planner: budget $%.3f -> rent %u cloud cores (%.1fs)\n\n", budget,
                  plan->cloud_cores, plan->exec_seconds);
    }
  }
  return 0;
}
