// Ablation: retrieval streams per chunk fetch.
//
// "Each slave retrieves jobs using multiple retrieval threads, to capitalize
// on the fast network interconnects" — S3's per-connection throughput cap
// makes single-stream fetches slow; this sweep shows the recovery with
// parallel range GETs (env-cloud: all data in S3, cloud computes).
#include "paper_common.hpp"

int main(int argc, char** argv) {
  using namespace cloudburst;
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  const std::vector<unsigned> sweep =
      args.quick ? std::vector<unsigned>{1u, 4u, 16u}
                 : std::vector<unsigned>{1u, 2u, 4u, 8u, 16u};
  AsciiTable table({"streams", "knn exec", "knn retrieval", "pagerank exec",
                    "pagerank retrieval"});
  for (unsigned streams : sweep) {
    auto tweak = [streams](cluster::PlatformSpec&, middleware::RunOptions& o) {
      o.retrieval_streams = streams;
    };
    const auto knn = apps::run_env(apps::Env::Cloud, bench::PaperApp::Knn, tweak);
    const auto pr = apps::run_env(apps::Env::Cloud, bench::PaperApp::PageRank, tweak);
    table.add_row({std::to_string(streams), AsciiTable::num(knn.total_time, 1),
                   AsciiTable::num(knn.side(cluster::kCloudSite).retrieval, 1),
                   AsciiTable::num(pr.total_time, 1),
                   AsciiTable::num(pr.side(cluster::kCloudSite).retrieval, 1)});
  }
  std::printf("%s\n", table.render("Ablation — retrieval streams per fetch on "
                                   "env-cloud (seconds; paper uses multi-threaded "
                                   "retrieval)")
                          .c_str());
  return 0;
}
