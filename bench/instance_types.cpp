// Extension bench: instance-type selection.
//
// For a fixed aggregate cloud budget-of-cores, which 2011 EC2 instance type
// should a bursting user rent? Compute-bound work wants the compute-
// optimized c1 family; I/O-bound work wants NIC bandwidth per dollar. The
// sweep rents ~16 cores worth of each type (knn & kmeans, 33% data local,
// 16 local cores) and reports time and cost.
#include "paper_common.hpp"

#include "cluster/instance_types.hpp"

int main() {
  using namespace cloudburst;

  for (bench::PaperApp app : {bench::PaperApp::Knn, bench::PaperApp::Kmeans}) {
    AsciiTable table({"type", "instances", "cores", "$/h each", "exec time",
                      "instance $", "total $"});
    for (const auto& type : cluster::ec2_catalog_2011()) {
      const unsigned count = std::max(1u, 16u / type.cores);
      const auto run = apps::run_custom_typed(app, 1.0 / 3, 16, type, count);
      table.add_row({type.name, std::to_string(count),
                     std::to_string(count * type.cores),
                     AsciiTable::num(type.hourly_usd, 3),
                     AsciiTable::num(run.result.total_time, 1),
                     AsciiTable::num(run.cost.instance_usd, 3),
                     AsciiTable::num(run.cost.total_usd(), 3)});
    }
    std::printf("%s\n", table.render(std::string("Instance-type sweep — ") +
                                     apps::to_string(app) +
                                     " (16 local cores + ~16 cloud cores, 33% data "
                                     "local, 2011 prices)")
                            .c_str());
  }
  return 0;
}
