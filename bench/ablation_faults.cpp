// Ablation: transient store faults x retry policy.
//
// Injects per-request failure probabilities (and, at a quarter of that rate,
// hung GETs that stall for two minutes) into the cloud object store on the
// knn env-50/50 run and sweeps the client-side resilience policy:
//   none    — single attempt; the slave's permanent-failure fallback restarts
//             the whole fetch after a maximal backoff;
//   backoff — 3 attempts, exponential backoff (50 ms base, x2): absorbs the
//             failed GETs but still waits out every hung one;
//   hedged  — backoff + a 60 s attempt timeout + a hedged second GET after
//             5 s, which is what actually cuts the hung-GET tail. (The
//             timeout must sit well above a normal multi-second chunk fetch:
//             timing out healthy transfers retries forever.)
// Reports completion time overhead versus the fault-free run, fault/retry
// counters, and the wasted wire bytes that still bill as provider egress.
#include "paper_common.hpp"

#include "storage/retry.hpp"

namespace {

using namespace cloudburst;

struct Policy {
  const char* name;
  storage::RetryPolicy retry;
};

middleware::RunResult run_knn(double fail_probability, const storage::RetryPolicy& retry,
                              std::uint64_t seed) {
  return apps::run_env(
      apps::Env::Hybrid5050, apps::PaperApp::Knn,
      [&](cluster::PlatformSpec& spec, middleware::RunOptions& options) {
        auto& fault = spec.sites[cluster::kCloudSite].store->fault;
        fault.fail_probability = fail_probability;
        fault.hang_probability = fail_probability / 4.0;
        fault.hang_seconds = 120.0;
        options.retry = retry;
        options.random_seed = seed;
      });
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cloudburst;

  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);

  storage::RetryPolicy backoff;
  backoff.max_attempts = 3;
  backoff.backoff_base_seconds = 0.05;
  backoff.backoff_multiplier = 2.0;

  storage::RetryPolicy hedged = backoff;
  hedged.attempt_timeout_seconds = 60.0;
  hedged.hedge_delay_seconds = 5.0;

  const Policy policies[] = {
      {"none", storage::RetryPolicy{}}, {"backoff x3", backoff}, {"hedged", hedged}};

  const auto clean = run_knn(0.0, storage::RetryPolicy{}, args.seed);

  std::vector<double> fail_probs = {0.02, 0.05, 0.1, 0.2};
  if (args.quick) fail_probs = {0.05};

  AsciiTable table({"fail prob", "policy", "exec time", "overhead", "faults",
                    "retries", "hedge wins", "wasted MB"});
  table.add_row({"0%", "-", AsciiTable::num(clean.total_time, 2), "0.0%", "0", "0",
                 "0", "0.0"});
  table.add_separator();
  for (double p : fail_probs) {
    for (const Policy& policy : policies) {
      const auto result = run_knn(p, policy.retry, args.seed);
      table.add_row({AsciiTable::pct(p, 0), policy.name,
                     AsciiTable::num(result.total_time, 2),
                     AsciiTable::pct(result.total_time / clean.total_time - 1.0, 1),
                     std::to_string(result.store_faults()),
                     std::to_string(result.fetch_retries()),
                     std::to_string(result.hedges_won()),
                     AsciiTable::num(
                         static_cast<double>(result.bytes_retried_total()) / 1e6, 1)});
    }
    table.add_separator();
  }
  std::printf("%s\n",
              table.render("Ablation — transient S3 faults x retry policy (knn "
                           "env-50/50; wasted bytes still bill as egress)")
                  .c_str());
  return 0;
}
