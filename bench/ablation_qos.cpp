// Ablation: per-tenant store QoS — weighted-fair arbitration vs unmanaged.
//
// Two scenarios on one shared store:
//
//   A. Share split — two continuously-backlogged tenants with 3:1 weights
//      drive the arbiter directly (closed loop, one outstanding request
//      each); achieved bandwidth must split within 10% of 3:1 while the
//      paced link stays fully used (work conservation).
//
//   B. Interactive latency — a batch scan saturates the cloud store (its
//      front end narrowed so demand genuinely exceeds capacity) while a
//      small interactive job reads the same store through a FairShare
//      workload. Unmanaged, every batch transfer contends with the
//      interactive fetch on the wire and its p95 retrieval collapses; with
//      a StoreQos (interactive weight 3, batch 1) the arbiter paces batch
//      releases and the interactive p95 must come out strictly better.
//
// Emits BENCH_qos.json and exits non-zero when either self-check fails.
#include "paper_common.hpp"

#include <algorithm>
#include <cinttypes>
#include <map>
#include <utility>
#include <vector>

#include "common/units.hpp"
#include "des/simulator.hpp"
#include "middleware/runtime.hpp"
#include "qos/store_qos.hpp"
#include "trace/trace.hpp"
#include "workload/workload_manager.hpp"

namespace {

using namespace cloudburst;
using namespace cloudburst::units;

// --- scenario A: share split under saturation --------------------------------

struct ShareOutcome {
  double heavy_bps = 0.0;
  double light_bps = 0.0;
  double ratio = 0.0;
  double link_utilization = 0.0;  ///< sum of shares over the paced rate
};

/// Closed-loop tenant: keeps one request outstanding until `until` seconds.
struct Loader {
  qos::StoreQos& q;
  des::Simulator& sim;
  qos::TenantId tenant;
  std::uint64_t bytes;
  double until;

  void pump() {
    q.submit(0, tenant, bytes, [this](double) {
      if (des::to_seconds(sim.now()) < until) pump();
    });
  }
};

ShareOutcome run_share_split(double capacity, double horizon) {
  qos::QosConfig cfg;
  cfg.tenant_weights = {{"heavy", 3.0}, {"light", 1.0}};
  qos::StoreQos q{cfg};
  des::Simulator sim;
  q.bind(sim, {capacity});

  Loader heavy{q, sim, q.tenant_id("heavy"), 1'000'000, horizon};
  Loader light{q, sim, q.tenant_id("light"), 1'000'000, horizon};
  heavy.pump();
  light.pump();
  sim.run();

  ShareOutcome out;
  const auto* h = q.store_stats(heavy.tenant, 0);
  const auto* l = q.store_stats(light.tenant, 0);
  const double elapsed = des::to_seconds(sim.now());
  if (!h || !l || elapsed <= 0.0) return out;
  out.heavy_bps = static_cast<double>(h->bytes) / elapsed;
  out.light_bps = static_cast<double>(l->bytes) / elapsed;
  out.ratio = out.light_bps > 0.0 ? out.heavy_bps / out.light_bps : 0.0;
  out.link_utilization =
      (out.heavy_bps + out.light_bps) / (cfg.pacing_factor * capacity);
  return out;
}

// --- scenario B: interactive p95 under a batch scan --------------------------

struct LatencyOutcome {
  double interactive_p95 = 0.0;
  double interactive_mean = 0.0;
  std::size_t interactive_fetches = 0;
  double batch_bps = 0.0;       ///< batch tenant bytes over its job span
  double makespan = 0.0;
  std::uint32_t throttled = 0;  ///< QosThrottled events (0 unmanaged)
};

/// Retrieval durations of the interactive job: FetchStart/FetchEnd pairs
/// under the "probe/" actor prefix the workload tracer assigns it.
std::vector<double> interactive_fetch_seconds(const trace::Tracer& tracer) {
  std::map<std::pair<std::string, std::uint64_t>, double> open;
  std::vector<double> durations;
  for (const auto& e : tracer.events()) {
    if (e.actor.rfind("probe/", 0) != 0) continue;
    if (e.kind == trace::EventKind::FetchStart) {
      open[{e.actor, e.a}] = e.t;
    } else if (e.kind == trace::EventKind::FetchEnd) {
      const auto it = open.find({e.actor, e.a});
      if (it == open.end()) continue;
      durations.push_back(e.t - it->second);
      open.erase(it);
    }
  }
  return durations;
}

LatencyOutcome run_contended_workload(bool managed, bool quick, std::uint64_t seed) {
  // Narrow the cloud store's front end so the batch scan's demand (many
  // slaves x 8 range GETs x 25 MB/s each) genuinely exceeds it.
  cluster::PlatformSpec spec = cluster::PlatformSpec::paper_testbed(8, 16);
  spec.sites[cluster::kCloudSite].store->front_bandwidth = MBps(250);
  cluster::Platform platform(spec);

  // 4 MiB batch chunks: the arbiter's non-preemptible release slots stay
  // short, so a queued interactive request never waits long for the wire.
  const std::uint64_t scale = quick ? 1 : 4;
  storage::LayoutSpec batch_spec;
  batch_spec.total_bytes = scale * MiB(256);
  batch_spec.num_files = static_cast<std::size_t>(scale) * 32;
  batch_spec.chunks_per_file = 2;
  batch_spec.unit_bytes = 64;
  storage::DataLayout batch_layout = storage::build_layout(batch_spec);
  // Everything on the cloud store: the scan hammers one access link.
  storage::assign_stores_by_fraction(batch_layout, 0.0, platform.local_store_id(),
                                     platform.cloud_store_id());

  storage::LayoutSpec probe_spec;
  probe_spec.total_bytes = MiB(32);
  probe_spec.num_files = 16;
  probe_spec.chunks_per_file = 1;
  probe_spec.unit_bytes = 64;
  storage::DataLayout probe_layout = storage::build_layout(probe_spec);
  storage::assign_stores_by_fraction(probe_layout, 0.0, platform.local_store_id(),
                                     platform.cloud_store_id());

  middleware::RunOptions options;
  options.profile.name = "qos";
  options.profile.unit_bytes = 64;
  options.profile.bytes_per_second_per_core = GiBps(1);  // retrieval-bound
  options.profile.robj_bytes = KiB(64);
  options.random_seed = seed;

  qos::QosConfig qcfg;
  qcfg.tenant_weights = {{"interactive", 3.0}, {"batch", 1.0}};
  qos::StoreQos q{qcfg};

  trace::Tracer tracer;
  workload::WorkloadOptions wopts;
  wopts.policy = workload::SchedulingPolicy::FairShare;
  wopts.tracer = &tracer;
  workload::WorkloadManager manager(platform, wopts);

  workload::JobSpec scan;
  scan.name = "scan";
  scan.tenant = "batch";
  scan.layout = batch_layout;
  scan.options = options;
  if (managed) scan.options.qos = &q;
  manager.submit(std::move(scan), 0.0);

  workload::JobSpec probe;
  probe.name = "probe";
  probe.tenant = "interactive";
  probe.layout = probe_layout;
  probe.options = options;
  if (managed) probe.options.qos = &q;
  manager.submit(std::move(probe), 0.0);

  const auto result = manager.run();

  LatencyOutcome out;
  out.makespan = result.makespan;
  auto durations = interactive_fetch_seconds(tracer);
  out.interactive_fetches = durations.size();
  if (!durations.empty()) {
    std::sort(durations.begin(), durations.end());
    double sum = 0.0;
    for (const double d : durations) sum += d;
    out.interactive_mean = sum / static_cast<double>(durations.size());
    out.interactive_p95 = durations[std::min(
        durations.size() - 1,
        static_cast<std::size_t>(0.95 * static_cast<double>(durations.size())))];
  }
  const auto& scan_job = result.jobs[0];
  const double scan_span = scan_job.finish_seconds - scan_job.start_seconds;
  if (scan_span > 0.0) {
    out.batch_bps = static_cast<double>(batch_spec.total_bytes) / scan_span;
  }
  out.throttled = static_cast<std::uint32_t>(
      tracer.count(trace::EventKind::QosThrottled));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);

  // Scenario A: 3:1 split on a saturated 250 MB/s link.
  const double capacity = MBps(250);
  const ShareOutcome share = run_share_split(capacity, args.quick ? 10.0 : 30.0);

  // Scenario B: unmanaged vs managed interactive latency.
  const LatencyOutcome unmanaged =
      run_contended_workload(/*managed=*/false, args.quick, args.seed);
  const LatencyOutcome managed =
      run_contended_workload(/*managed=*/true, args.quick, args.seed);

  AsciiTable table({"config", "heavy MB/s", "light MB/s", "ratio", "link use",
                    "probe p95", "probe mean", "scan MB/s", "throttled"});
  table.add_row({"A: weighted-fair 3:1", AsciiTable::num(share.heavy_bps / 1e6, 1),
                 AsciiTable::num(share.light_bps / 1e6, 1),
                 AsciiTable::num(share.ratio, 2),
                 AsciiTable::num(share.link_utilization, 3), "-", "-", "-", "-"});
  table.add_row({"B: unmanaged", "-", "-", "-", "-",
                 AsciiTable::num(unmanaged.interactive_p95, 3),
                 AsciiTable::num(unmanaged.interactive_mean, 3),
                 AsciiTable::num(unmanaged.batch_bps / 1e6, 1),
                 std::to_string(unmanaged.throttled)});
  table.add_row({"B: qos 3:1", "-", "-", "-", "-",
                 AsciiTable::num(managed.interactive_p95, 3),
                 AsciiTable::num(managed.interactive_mean, 3),
                 AsciiTable::num(managed.batch_bps / 1e6, 1),
                 std::to_string(managed.throttled)});
  std::printf("%s\n",
              table.render("Ablation — store QoS (A: 3:1 share split on a saturated "
                           "link; B: interactive p95 vs an unmanaged batch scan)")
                  .c_str());

  const char* out_path = "BENCH_qos.json";
  if (std::FILE* out = std::fopen(out_path, "w")) {
    std::fprintf(
        out,
        "{\n"
        "  \"bench\": \"ablation_qos\",\n"
        "  \"mode\": \"%s\",\n"
        "  \"seed\": %" PRIu64 ",\n"
        "  \"share_split\": {\"capacity_bps\": %.0f, \"heavy_bps\": %.0f,\n"
        "    \"light_bps\": %.0f, \"ratio\": %.4f, \"link_utilization\": %.4f},\n"
        "  \"interactive\": {\n"
        "    \"unmanaged\": {\"p95_seconds\": %.6f, \"mean_seconds\": %.6f,\n"
        "      \"fetches\": %zu, \"batch_bps\": %.0f, \"makespan\": %.3f,\n"
        "      \"throttled\": %u},\n"
        "    \"qos\": {\"p95_seconds\": %.6f, \"mean_seconds\": %.6f,\n"
        "      \"fetches\": %zu, \"batch_bps\": %.0f, \"makespan\": %.3f,\n"
        "      \"throttled\": %u}\n"
        "  }\n"
        "}\n",
        args.quick ? "quick" : "full", args.seed, capacity, share.heavy_bps,
        share.light_bps, share.ratio, share.link_utilization,
        unmanaged.interactive_p95, unmanaged.interactive_mean,
        unmanaged.interactive_fetches, unmanaged.batch_bps, unmanaged.makespan,
        unmanaged.throttled, managed.interactive_p95, managed.interactive_mean,
        managed.interactive_fetches, managed.batch_bps, managed.makespan,
        managed.throttled);
    std::fclose(out);
    std::printf("wrote %s\n", out_path);
  } else {
    std::fprintf(stderr, "ablation_qos: cannot write %s\n", out_path);
    return 1;
  }

  // Self-check A: achieved bandwidth within 10% of the 3:1 weights, and the
  // arbiter wasted no link time while both tenants were backlogged.
  if (share.ratio < 2.7 || share.ratio > 3.3) {
    std::fprintf(stderr,
                 "ablation_qos: share split %.3f is not within 10%% of 3:1\n",
                 share.ratio);
    return 1;
  }
  if (share.link_utilization < 0.9) {
    std::fprintf(stderr,
                 "ablation_qos: paced link only %.1f%% used under full backlog\n",
                 100.0 * share.link_utilization);
    return 1;
  }

  // Self-check B: weighted-fair arbitration must keep the interactive
  // tenant's p95 strictly better than the unmanaged collapse, and the
  // arbiter must actually have throttled someone to do it.
  if (unmanaged.interactive_fetches == 0 || managed.interactive_fetches == 0) {
    std::fprintf(stderr, "ablation_qos: interactive job did no store fetches\n");
    return 1;
  }
  if (managed.interactive_p95 >= unmanaged.interactive_p95) {
    std::fprintf(stderr,
                 "ablation_qos: qos interactive p95 (%.3f s) did not beat "
                 "unmanaged (%.3f s)\n",
                 managed.interactive_p95, unmanaged.interactive_p95);
    return 1;
  }
  if (managed.throttled == 0) {
    std::fprintf(stderr, "ablation_qos: qos run never throttled anything\n");
    return 1;
  }
  return 0;
}
