// Extension bench: compressed storage vs WAN bandwidth.
//
// The authors' follow-on research applies data reduction/compression to
// exactly this middleware: storing chunks compressed shrinks every S3 and
// WAN transfer at the price of per-chunk decompression. The crossover
// depends on where the bottleneck is — this sweep shows it for the
// steal-heavy knn env-17/83 configuration across WAN speeds and codec
// ratios (decompression at 400 MB/s/core, gzip-class).
#include "paper_common.hpp"

#include "common/units.hpp"

int main(int argc, char** argv) {
  using namespace cloudburst;
  using namespace cloudburst::units;
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);

  AsciiTable table({"WAN", "ratio 1x (off)", "ratio 2x", "ratio 4x", "best gain"});
  std::vector<double> wan_sweep = {250.0, 1000.0, 4000.0};
  if (args.quick) wan_sweep = {250.0};
  for (double mbit : wan_sweep) {
    std::vector<double> times;
    for (double ratio : {1.0, 2.0, 4.0}) {
      times.push_back(apps::run_env(apps::Env::Hybrid1783, apps::PaperApp::Knn,
                                    [&](cluster::PlatformSpec& spec,
                                        middleware::RunOptions& o) {
                                      spec.wan_bandwidth = mbps(mbit);
                                      o.profile.compression_ratio = ratio;
                                      o.random_seed = args.seed;
                                    })
                          .total_time);
    }
    const double best = std::min(times[1], times[2]);
    table.add_row({AsciiTable::num(mbit, 0) + " Mb/s", AsciiTable::num(times[0], 1),
                   AsciiTable::num(times[1], 1), AsciiTable::num(times[2], 1),
                   AsciiTable::pct(1.0 - best / times[0], 1)});
  }
  std::printf("%s\n",
              table.render("Extension — compressed chunks on knn env-17/83 "
                           "(execution time, seconds)")
                  .c_str());
  std::printf("compression pays where the WAN binds; a faster WAN shrinks the gain.\n\n");
  return 0;
}
