// Extension bench: elastic bursting under deadlines.
//
// The classic cloud-bursting operations story (Elastic Site, from the
// paper's related work): in-house capacity handles the base load; when a
// deadline is at risk, instances are booted on demand. This bench fixes a
// 16-core local cluster plus one warm cloud instance, sweeps the deadline,
// and reports how many instances the controller boots, whether the deadline
// is met, and what the run costs with billing from each activation.
#include "paper_common.hpp"

#include "cost/cost_model.hpp"
#include "middleware/runtime.hpp"

namespace {

using namespace cloudburst;

struct ElasticOutcome {
  middleware::RunResult result;
  cost::CostReport cost;
};

ElasticOutcome run_elastic(double deadline) {
  cluster::Platform platform(cluster::PlatformSpec::paper_testbed(16, 32));
  const storage::DataLayout layout = apps::paper_layout(
      apps::PaperApp::Knn, 1.0 / 3, platform.local_store_id(), platform.cloud_store_id());
  middleware::RunOptions options = apps::paper_run_options(apps::PaperApp::Knn);
  options.reduction_tree = false;
  options.elastic.enabled = true;
  options.elastic.deadline_seconds = deadline;
  options.elastic.initial_cloud_nodes = 1;
  options.elastic.check_interval_seconds = 2.0;
  options.elastic.boot_seconds = 15.0;
  options.elastic.activation_step = 2;

  ElasticOutcome out;
  out.result = middleware::run_distributed(platform, layout, options);
  out.cost = cost::price_run(out.result, platform, layout, options,
                             cost::CloudPricing::aws_2011());
  return out;
}

}  // namespace

int main() {
  using namespace cloudburst;

  AsciiTable table({"deadline", "exec time", "met?", "instances booted",
                    "instances total", "cost $"});
  for (double deadline : {1e9, 120.0, 60.0, 40.0, 25.0, 15.0}) {
    const auto out = run_elastic(deadline);
    table.add_row({deadline > 1e8 ? std::string("none")
                                  : AsciiTable::num(deadline, 0) + " s",
                   AsciiTable::num(out.result.total_time, 1),
                   out.result.total_time <= deadline ? "yes" : "no",
                   std::to_string(out.result.elastic_activations),
                   std::to_string(out.result.cloud_instance_starts.size()),
                   AsciiTable::num(out.cost.total_usd(), 3)});
  }
  std::printf("%s\n",
              table.render("Extension — elastic bursting (knn, 16 local cores + 1 warm "
                           "instance, boots 2 instances per decision, 15 s boot)")
                  .c_str());
  return 0;
}
