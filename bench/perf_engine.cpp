// Engine performance benchmark: the canonical large-fleet workload.
//
// Every other bench reproduces a paper artifact; this one measures the
// simulator itself. It runs one canonical workload — a 500-node three-site
// fleet (local + two cloud providers), 50 multi-tenant jobs totalling 100k
// chunks, with the site caches, store-fault/retry machinery, and node
// lifecycle (periodic checkpoints + stochastic spot reclamation) all
// enabled — and reports the DES kernel's throughput: executed events per
// wall-clock second, total wall time, and peak RSS.
//
// The run itself is fully deterministic (same seed => same simulated
// makespan and event count); only the wall-clock side varies with the host.
// Results are emitted to BENCH_engine.json for the CI regression gate
// (tools/check_bench_regression.py compares events/sec against the
// committed baseline in bench/baselines/).
//
// Flags: --seed=N, --quick (40-node smoke fleet for CI; same code paths).
#include "paper_common.hpp"

#include <sys/resource.h>

#include <chrono>
#include <cinttypes>

#include "cache/chunk_cache.hpp"
#include "common/units.hpp"
#include "workload/workload_manager.hpp"

namespace {

using namespace cloudburst;
using namespace cloudburst::units;

struct FleetConfig {
  bool quick = false;
  std::uint64_t seed = 42;

  // Full: 100 local nodes (8 cores) + 2x200 cloud nodes (2 cores) = 500
  // nodes; 50 jobs x 2000 chunks = 100k chunks. Quick: a 40-node / 8-job /
  // 16k-chunk smoke version of the same shape.
  unsigned local_cores() const { return quick ? 64 : 800; }
  unsigned cloud_cores() const { return quick ? 32 : 400; }  // per provider
  std::size_t jobs() const { return quick ? 8 : 50; }
  std::uint64_t files_per_job() const { return quick ? 40 : 40; }
  std::uint64_t chunks_per_file() const { return quick ? 50 : 50; }
  std::uint64_t chunks_per_job() const { return files_per_job() * chunks_per_file(); }
};

cluster::PlatformSpec fleet_spec(const FleetConfig& cfg) {
  cluster::PlatformSpec spec;
  spec.sites.push_back(cluster::PlatformSpec::paper_local_site(cfg.local_cores()));
  spec.sites.push_back(cluster::PlatformSpec::paper_cloud_site(cfg.cloud_cores(), "cloudA"));
  spec.sites.push_back(cluster::PlatformSpec::paper_cloud_site(cfg.cloud_cores(), "cloudB"));
  spec.wan_bandwidth = MBps(125);
  spec.wan_latency = des::from_seconds(ms(25));
  spec.set_wan(1, 2, MBps(80), des::from_seconds(ms(40)));
  spec.node_speed_jitter = 0.03;

  // Both object stores run degraded: a low background GET failure rate plus
  // an early throttling storm, so the retry/backoff/hedge paths stay hot.
  for (cluster::ClusterId provider : {1u, 2u}) {
    storage::FaultProfile& fault = spec.store(provider).fault;
    fault.fail_probability = 0.01;
    fault.throttles.push_back({5.0, 20.0, 0.5, 0.05});
    fault.seed = cfg.seed ^ (0xfa017u + provider);
  }
  return spec;
}

storage::DataLayout job_layout(const FleetConfig& cfg, const cluster::Platform& platform) {
  storage::LayoutSpec spec;
  spec.num_files = cfg.files_per_job();
  spec.chunks_per_file = cfg.chunks_per_file();
  spec.unit_bytes = 64;
  spec.total_bytes = cfg.chunks_per_job() * KiB(256);
  storage::DataLayout layout = storage::build_layout(spec);
  assign_stores_by_weights(layout, {0.2, 0.4, 0.4},
                           {platform.store_of_cluster(0), platform.store_of_cluster(1),
                            platform.store_of_cluster(2)});
  return layout;
}

middleware::RunOptions job_options(const FleetConfig& cfg, std::size_t job_index,
                                   cache::CacheFleet* fleet) {
  middleware::RunOptions o;
  o.profile.name = "perf";
  o.profile.unit_bytes = 64;
  o.profile.bytes_per_second_per_core = MBps(8);
  o.profile.robj_bytes = KiB(64);
  o.random_seed = cfg.seed + job_index;
  o.retrieval_streams = 4;
  o.cache = fleet;

  // Store-fault client side: bounded retries with a timeout and a late
  // hedge, so degraded GETs spawn the full retry event machinery.
  o.retry.max_attempts = 3;
  o.retry.backoff_base_seconds = 0.05;
  o.retry.attempt_timeout_seconds = 20.0;
  o.retry.hedge_delay_seconds = 10.0;
  o.retry.seed = cfg.seed ^ 0xbac0ff;

  // Node lifecycle: direct reduction with periodic checkpoints, stochastic
  // spot reclamation on the cloud fleets, and a scheduled drain / reclaim
  // on a few jobs for the deterministic flavor of node loss.
  o.reduction_tree = false;
  o.checkpoint_interval_seconds = 2.0;
  o.spot.reclaim_rate_per_hour = 1.0;
  o.spot.notice_seconds = 5.0;
  if (job_index % 10 == 3) {
    middleware::RunOptions::LifecycleEvent ev;
    ev.kind = middleware::RunOptions::LifecycleEvent::Kind::Drain;
    ev.site = 1;
    ev.node_index = static_cast<std::uint32_t>(job_index % 5);
    ev.at_seconds = 2.0;
    o.lifecycle.push_back(ev);
  }
  if (job_index % 10 == 7) {
    middleware::RunOptions::LifecycleEvent ev;
    ev.kind = middleware::RunOptions::LifecycleEvent::Kind::SpotReclaim;
    ev.site = 2;
    ev.node_index = static_cast<std::uint32_t>(job_index % 5);
    ev.at_seconds = 1.5;
    ev.notice_seconds = 3.0;
    o.lifecycle.push_back(ev);
  }
  return o;
}

std::uint64_t peak_rss_bytes() {
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  // Linux reports ru_maxrss in KiB.
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cloudburst;

  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  FleetConfig cfg;
  cfg.quick = args.quick;
  cfg.seed = args.seed;

  cluster::Platform platform(fleet_spec(cfg));

  // One shared cache fleet: every job describes the same dataset, so chunk
  // ids key the same contents and cross-job hits are real.
  cache::CacheConfig cache_config;
  cache_config.capacity_bytes = GiB(2);
  cache_config.policy = cache::EvictionPolicy::Lru;
  cache_config.prefetch.enabled = true;
  cache_config.prefetch.depth = 2;
  cache::CacheFleet fleet(cache_config);

  workload::WorkloadOptions wopts;
  wopts.policy = workload::SchedulingPolicy::FairShare;
  wopts.tenant_weights = {{"interactive", 4.0}, {"batch", 1.0}};
  wopts.max_concurrent = cfg.quick ? 4 : 6;

  const storage::DataLayout layout = job_layout(cfg, platform);
  const workload::ArrivalTrace arrivals =
      workload::ArrivalTrace::poisson(cfg.jobs(), 0.5, cfg.seed);

  workload::WorkloadManager manager(platform, wopts);
  for (std::size_t i = 0; i < cfg.jobs(); ++i) {
    workload::JobSpec spec;
    spec.tenant = i % 2 == 0 ? "interactive" : "batch";
    spec.name = spec.tenant[0] + std::to_string(i + 1);
    spec.layout = layout;
    spec.options = job_options(cfg, i, &fleet);
    manager.submit(std::move(spec), arrivals.at(i));
  }

  const auto wall_start = std::chrono::steady_clock::now();
  const workload::WorkloadResult result = manager.run();
  const auto wall_end = std::chrono::steady_clock::now();

  const double wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  const std::uint64_t events = platform.sim().executed_events();
  const double events_per_sec =
      wall_seconds > 0.0 ? static_cast<double>(events) / wall_seconds : 0.0;
  const std::uint64_t rss = peak_rss_bytes();
  const std::uint64_t total_chunks = cfg.chunks_per_job() * cfg.jobs();
  const std::size_t nodes = platform.total_nodes();

  std::uint32_t reclaimed = 0, vacated = 0, checkpoints = 0;
  for (const auto& job : result.jobs) {
    reclaimed += job.run.lifecycle.nodes_reclaimed;
    vacated += job.run.lifecycle.nodes_vacated;
    checkpoints += job.run.lifecycle.checkpoint_flushes;
  }

  AsciiTable table({"metric", "value"});
  table.add_row({"mode", cfg.quick ? "quick" : "full"});
  table.add_row({"fleet nodes", std::to_string(nodes)});
  table.add_row({"jobs", std::to_string(cfg.jobs())});
  table.add_row({"chunks (total)", std::to_string(total_chunks)});
  table.add_row({"cache hits", std::to_string(fleet.hits())});
  table.add_row({"nodes vacated/reclaimed", std::to_string(vacated) + "/" +
                                                std::to_string(reclaimed)});
  table.add_row({"checkpoints flushed", std::to_string(checkpoints)});
  table.add_row({"sim makespan", AsciiTable::num(result.makespan, 1) + " s"});
  table.add_row({"executed events", std::to_string(events)});
  table.add_row({"wall clock", AsciiTable::num(wall_seconds, 2) + " s"});
  table.add_row({"events/sec", AsciiTable::num(events_per_sec, 0)});
  table.add_row({"peak RSS", units::format_bytes(rss)});
  std::printf("%s\n", table.render("Engine performance — canonical fleet workload "
                                   "(DES kernel throughput)")
                          .c_str());

  const char* out_path = "BENCH_engine.json";
  if (std::FILE* out = std::fopen(out_path, "w")) {
    std::fprintf(out,
                 "{\n"
                 "  \"bench\": \"perf_engine\",\n"
                 "  \"mode\": \"%s\",\n"
                 "  \"seed\": %" PRIu64 ",\n"
                 "  \"fleet_nodes\": %zu,\n"
                 "  \"jobs\": %zu,\n"
                 "  \"chunks_total\": %" PRIu64 ",\n"
                 "  \"sim_makespan_seconds\": %.6f,\n"
                 "  \"executed_events\": %" PRIu64 ",\n"
                 "  \"wall_seconds\": %.6f,\n"
                 "  \"events_per_sec\": %.1f,\n"
                 "  \"peak_rss_bytes\": %" PRIu64 "\n"
                 "}\n",
                 cfg.quick ? "quick" : "full", cfg.seed, nodes, cfg.jobs(),
                 total_chunks, result.makespan, events, wall_seconds,
                 events_per_sec, rss);
    std::fclose(out);
    std::printf("wrote %s\n", out_path);
  } else {
    std::fprintf(stderr, "perf_engine: cannot write %s\n", out_path);
    return 1;
  }

  // Self-check: the canonical workload must actually exercise the machinery
  // it claims to (cache, faults, lifecycle) — a silent config regression
  // would turn this into a trivial benchmark.
  if (fleet.hits() == 0) {
    std::fprintf(stderr, "perf_engine: cache never hit — config regression?\n");
    return 1;
  }
  if (events == 0 || result.jobs.size() != cfg.jobs()) {
    std::fprintf(stderr, "perf_engine: workload did not complete\n");
    return 1;
  }
  return 0;
}
