// Ablation: inter-cluster work stealing on/off, plus the endgame steal
// reservation.
//
// The paper credits pooling-based load balancing + stealing for absorbing
// uneven data distributions; this bench quantifies it per application and
// skew, and also isolates the endgame reservation heuristic (this
// reproduction's addition — see DESIGN.md).
#include "paper_common.hpp"

int main(int argc, char** argv) {
  using namespace cloudburst;
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  AsciiTable table({"app", "env", "full policy", "no reservation", "no stealing",
                    "stealing benefit"});
  std::vector<bench::PaperApp> apps_sweep = {
      bench::PaperApp::Knn, bench::PaperApp::Kmeans, bench::PaperApp::PageRank};
  if (args.quick) apps_sweep = {bench::PaperApp::Knn};
  auto seeded = [&](middleware::RunOptions& o) { o.random_seed = args.seed; };
  for (bench::PaperApp app : apps_sweep) {
    for (apps::Env env : {apps::Env::Hybrid3367, apps::Env::Hybrid1783}) {
      const auto base = apps::run_env(
          env, app, [&](cluster::PlatformSpec&, middleware::RunOptions& o) { seeded(o); });
      const auto no_reserve =
          apps::run_env(env, app, [&](cluster::PlatformSpec&, middleware::RunOptions& o) {
            o.policy.steal_reserve = 0;
            seeded(o);
          });
      const auto no_steal =
          apps::run_env(env, app, [&](cluster::PlatformSpec&, middleware::RunOptions& o) {
            o.policy.allow_stealing = false;
            seeded(o);
          });
      table.add_row({apps::to_string(app), apps::env_config(env, app).name,
                     AsciiTable::num(base.total_time, 1),
                     AsciiTable::num(no_reserve.total_time, 1),
                     AsciiTable::num(no_steal.total_time, 1),
                     AsciiTable::pct(no_steal.total_time / base.total_time - 1.0, 1)});
    }
    table.add_separator();
  }
  std::printf("%s\n",
              table.render("Ablation — work stealing & endgame reservation "
                           "(execution time, seconds)")
                  .c_str());
  return 0;
}
