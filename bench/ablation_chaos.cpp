// Ablation: region failover under a scripted chaos plan.
//
// A three-site platform (the paper's local cluster plus two cloud regions)
// runs a marker-dataset job through the WorkloadManager's elastic pool while
// a ChaosPlan blacks out the "west" region mid-run — slaves killed, store
// dark, in-flight flows cancelled, directory retirement, master evacuated.
// Three arms:
//
//   clean       — no chaos, no replication: the reference makespan.
//   replicated  — k=2 cross-site replication + retry: the blackout must cost
//                 only a bounded makespan inflation, lose zero completed
//                 work (exactly-once at the head), keep per-tenant bills
//                 summing exactly to the platform bill, and leave replica
//                 coverage restorable by repair.
//   baseline    — the same blackout without replication: the west-resident
//                 third of the data is unreachable until the site recovers,
//                 so the run demonstrably degrades (makespan stretches to
//                 the outage window's end).
//
// The marker dataset tags every unit with its chunk id, so the head's final
// reduction object *is* the per-chunk execution count — chaos::audit_*
// consumes it directly. Emits BENCH_chaos.json and exits non-zero when a
// self-check fails.
#include "paper_common.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "apps/wordcount.hpp"
#include "chaos/chaos.hpp"
#include "common/units.hpp"
#include "directory/platform_directory.hpp"
#include "engine/memory_dataset.hpp"
#include "replica/replica_set.hpp"
#include "storage/data_layout.hpp"
#include "trace/trace.hpp"
#include "workload/workload_manager.hpp"

namespace {

using namespace cloudburst;
using namespace cloudburst::units;

/// Local cluster plus two cloud providers, data split three ways.
cluster::PlatformSpec three_site_spec() {
  cluster::PlatformSpec spec;
  spec.sites.push_back(cluster::PlatformSpec::paper_local_site(8));
  spec.sites.push_back(cluster::PlatformSpec::paper_cloud_site(4, "east"));
  spec.sites.push_back(cluster::PlatformSpec::paper_cloud_site(4, "west"));
  spec.wan_bandwidth = MBps(125);
  spec.wan_latency = des::from_seconds(ms(25));
  spec.set_wan(1, 2, MBps(60), des::from_seconds(ms(60)));
  return spec;
}

struct ArmOutcome {
  double makespan = 0.0;
  std::uint32_t lost_chunks = 0;       ///< executed 0 times: completed work lost
  std::uint32_t duplicated_chunks = 0; ///< executed > 1 times (or partial merge)
  std::uint32_t chunks_reexecuted = 0;
  std::uint32_t replicas_lost = 0;
  std::uint32_t replicas_repaired = 0;
  std::uint32_t slaves_failed = 0;
  std::uint32_t site_outages = 0;
  std::uint32_t site_recoveries = 0;
  bool bills_ok = false;
  bool coverage_ok = true;
  std::string detail;
};

/// One pooled workload run over the three-site platform. The chaos plan and
/// replication are the only knobs; everything else (layout, seed, pool) is
/// shared so the arms differ by exactly one design decision.
ArmOutcome run_arm(bool replicated, const chaos::ChaosPlan* plan, bool quick,
                   std::uint64_t seed) {
  const std::uint32_t files = quick ? 6u : 12u;
  const std::uint64_t units = quick ? 600000u : 2400000u;

  apps::WordCountTask task;
  storage::DataLayout layout = storage::build_layout_for_units(
      units, sizeof(apps::WordRecord), files, /*chunks_per_file=*/2);
  std::vector<apps::WordRecord> records;
  records.reserve(units);
  for (const auto& chunk : layout.chunks()) {
    for (std::uint64_t u = 0; u < chunk.units; ++u) {
      records.push_back(apps::WordRecord{chunk.id});
    }
  }
  engine::MemoryDataset data = engine::MemoryDataset::from_records(records);

  cluster::Platform platform(three_site_spec());
  storage::assign_stores_by_weights(layout, {1.0, 1.0, 1.0},
                                    {platform.store_of_cluster(0),
                                     platform.store_of_cluster(1),
                                     platform.store_of_cluster(2)});
  directory::PlatformDirectory dir(platform);
  dir.bootstrap();

  replica::ReplicationConfig rcfg;
  rcfg.replication_factor = 2;
  rcfg.placement = replica::PlacementPolicy::CrossSite;
  replica::ReplicaSet rs{rcfg};

  trace::Tracer tracer;
  workload::WorkloadOptions wopts;
  wopts.policy = workload::SchedulingPolicy::FairShare;
  wopts.directory = &dir;
  wopts.tracer = &tracer;
  wopts.pool.enabled = true;
  wopts.pool.boot_seconds = 2.0;
  workload::WorkloadManager manager(platform, wopts);

  workload::JobSpec spec;
  spec.name = "failover";
  spec.tenant = "acme";
  spec.layout = layout;
  spec.options.profile.name = "chaos-failover";
  spec.options.profile.unit_bytes = sizeof(apps::WordRecord);
  spec.options.profile.bytes_per_second_per_core = KiB(512);  // slow: faults
  spec.options.profile.per_job_overhead_seconds = 0.2;        // land mid-run
  spec.options.profile.robj_bytes = KiB(16);
  spec.options.reduction_tree = false;
  spec.options.random_seed = seed;
  spec.options.task = &task;
  spec.options.dataset = &data;
  spec.options.retry.max_attempts = 3;
  spec.options.retry.backoff_base_seconds = 0.05;
  if (replicated) spec.options.replication = &rs;
  if (plan) spec.options.chaos = plan;
  manager.submit(std::move(spec), 0.0);
  const workload::WorkloadResult result = manager.run();

  ArmOutcome out;
  out.makespan = result.makespan;
  const middleware::RunResult& run = result.jobs.front().run;
  out.chunks_reexecuted = run.lifecycle.chunks_reexecuted;
  out.replicas_lost = run.replica.replicas_lost;
  out.replicas_repaired = run.replica.replicas_repaired;
  out.slaves_failed =
      static_cast<std::uint32_t>(tracer.count(trace::EventKind::SlaveFailed));
  out.site_outages =
      static_cast<std::uint32_t>(tracer.count(trace::EventKind::SiteOutage));
  out.site_recoveries =
      static_cast<std::uint32_t>(tracer.count(trace::EventKind::SiteRecovered));

  // Exactly-once: the marker robj divides back into per-chunk counts.
  const auto& got = dynamic_cast<const api::HashCountRobj&>(*run.robj);
  for (const auto& chunk : layout.chunks()) {
    const double per_unit = static_cast<double>(chunk.units);
    const double raw = got.get(chunk.id);
    const auto count = static_cast<std::uint32_t>(raw / per_unit + 0.5);
    if (count == 0) {
      ++out.lost_chunks;
    } else if (count > 1 || std::fabs(count * per_unit - raw) > 1e-6) {
      ++out.duplicated_chunks;  // double count, or a partial merge
    }
  }

  const auto bills = chaos::audit_bills(result);
  out.bills_ok = bills.ok;
  if (!bills.ok) out.detail = bills.detail;

  // Drive repair to quiescence post-run (the background actor stops with the
  // run): coverage must be restorable from the surviving copies.
  if (replicated) {
    for (int rounds = 0; rounds < 256; ++rounds) {
      const auto tasks = rs.plan_repairs(8, 1e9);
      if (tasks.empty()) break;
      for (const auto& t : tasks) rs.repair_done(t, true, 1e9);
    }
    const auto coverage = chaos::audit_coverage(rs, layout);
    out.coverage_ok = coverage.ok;
    if (!coverage.ok) out.detail = coverage.detail;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);

  // Reference run: no chaos, no replication.
  const ArmOutcome clean = run_arm(false, nullptr, args.quick, args.seed);

  // Blackout window: opens mid-run — after the pool boot window, while the
  // west slaves hold in-progress work — and outlasts the clean finish, so a
  // run that must wait for the region to return pays for the whole window.
  chaos::ChaosPlan plan;
  chaos::ChaosEvent outage;
  outage.kind = chaos::ChaosEvent::Kind::SiteOutage;
  outage.site_a = 2;  // "west" goes dark
  outage.at_seconds = 0.65 * clean.makespan;
  outage.duration_seconds = 2.0 * clean.makespan;
  plan.events.push_back(outage);

  const ArmOutcome repl = run_arm(true, &plan, args.quick, args.seed);
  const ArmOutcome base = run_arm(false, &plan, args.quick, args.seed);

  const double repl_inflation = repl.makespan / clean.makespan - 1.0;
  const double base_inflation = base.makespan / clean.makespan - 1.0;
  const double gain = base.makespan / repl.makespan;

  cloudburst::AsciiTable table({"arm", "makespan", "inflation", "lost", "dup",
                                "re-exec", "repl lost", "repaired",
                                "slaves failed"});
  const auto row = [&table](const char* name, const ArmOutcome& arm,
                            double inflation) {
    table.add_row({name, cloudburst::AsciiTable::num(arm.makespan, 3),
                   cloudburst::AsciiTable::pct(inflation, 1),
                   std::to_string(arm.lost_chunks),
                   std::to_string(arm.duplicated_chunks),
                   std::to_string(arm.chunks_reexecuted),
                   std::to_string(arm.replicas_lost),
                   std::to_string(arm.replicas_repaired),
                   std::to_string(arm.slaves_failed)});
  };
  row("clean", clean, 0.0);
  row("replicated k=2", repl, repl_inflation);
  row("no replication", base, base_inflation);
  std::printf("%s\n",
              table.render("Region failover — single-site blackout mid-run "
                           "(pooled workload, three sites)")
                  .c_str());
  std::printf("replication gain: %.2fx faster than the no-replication arm\n\n",
              gain);

  const char* out_path = "BENCH_chaos.json";
  if (std::FILE* out = std::fopen(out_path, "w")) {
    std::fprintf(
        out,
        "{\n"
        "  \"bench\": \"ablation_chaos\",\n"
        "  \"mode\": \"%s\",\n"
        "  \"seed\": %" PRIu64 ",\n"
        "  \"failover\": {\n"
        "    \"clean\": {\"makespan\": %.3f},\n"
        "    \"replicated\": {\"makespan\": %.3f, \"inflation\": %.4f,\n"
        "      \"lost_chunks\": %u, \"duplicated_chunks\": %u,\n"
        "      \"chunks_reexecuted\": %u, \"replicas_lost\": %u,\n"
        "      \"replicas_repaired\": %u, \"slaves_failed\": %u},\n"
        "    \"baseline\": {\"makespan\": %.3f, \"inflation\": %.4f,\n"
        "      \"lost_chunks\": %u},\n"
        "    \"replication_gain\": %.4f\n"
        "  }\n"
        "}\n",
        args.quick ? "quick" : "full", args.seed, clean.makespan, repl.makespan,
        repl_inflation, repl.lost_chunks, repl.duplicated_chunks,
        repl.chunks_reexecuted, repl.replicas_lost, repl.replicas_repaired,
        repl.slaves_failed, base.makespan, base_inflation, base.lost_chunks,
        gain);
    std::fclose(out);
    std::printf("wrote %s\n", out_path);
  } else {
    std::fprintf(stderr, "ablation_chaos: cannot write %s\n", out_path);
    return 1;
  }

  // --- self-checks: the recovery invariants this ablation exists to pin ----
  if (repl.site_outages != 1 || repl.slaves_failed == 0) {
    std::fprintf(stderr,
                 "ablation_chaos: blackout did not land (outages=%u, "
                 "slaves_failed=%u)\n",
                 repl.site_outages, repl.slaves_failed);
    return 1;
  }
  if (repl.lost_chunks != 0 || repl.duplicated_chunks != 0) {
    std::fprintf(stderr,
                 "ablation_chaos: replicated arm lost %u chunks / double-"
                 "counted %u — exactly-once violated\n",
                 repl.lost_chunks, repl.duplicated_chunks);
    return 1;
  }
  if (base.lost_chunks != 0 || base.duplicated_chunks != 0) {
    std::fprintf(stderr,
                 "ablation_chaos: baseline arm lost %u chunks / double-"
                 "counted %u — recovery must delay work, never drop it\n",
                 base.lost_chunks, base.duplicated_chunks);
    return 1;
  }
  for (const ArmOutcome* arm : {&clean, &repl, &base}) {
    if (!arm->bills_ok) {
      std::fprintf(stderr, "ablation_chaos: bills do not partition: %s\n",
                   arm->detail.c_str());
      return 1;
    }
  }
  if (!repl.coverage_ok) {
    std::fprintf(stderr, "ablation_chaos: repair left coverage holes: %s\n",
                 repl.detail.c_str());
    return 1;
  }
  // Bounded inflation: with every chunk replicated off-site, losing one
  // region must cost well under a 2x slowdown...
  if (repl.makespan >= 2.0 * clean.makespan) {
    std::fprintf(stderr,
                 "ablation_chaos: replicated makespan %.3f vs clean %.3f — "
                 "inflation not bounded\n",
                 repl.makespan, clean.makespan);
    return 1;
  }
  // ...while the unreplicated arm must visibly pay for the outage window.
  if (base.makespan <= 1.2 * repl.makespan) {
    std::fprintf(stderr,
                 "ablation_chaos: baseline makespan %.3f does not degrade vs "
                 "replicated %.3f — the ablation shows nothing\n",
                 base.makespan, repl.makespan);
    return 1;
  }
  return 0;
}
