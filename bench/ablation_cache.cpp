// Ablation: site-local chunk cache — eviction policy x capacity sweep, cold
// vs warm iterations, and the prefetcher on top.
//
// Scenario: 10-iteration k-means in env-cloud (all 12 GB in S3, 44 cloud
// cores) — the workload whose every pass re-fetches the same chunks. "cold"
// is pass 0 (nothing resident yet); "warm" is the mean of the remaining
// passes. A capacity that fits the working set turns warm passes into local
// reads; an undersized LRU cache sequentially floods and saves nothing,
// which is exactly what the policy column is for.
#include "cache/chunk_cache.hpp"
#include "common/units.hpp"
#include "middleware/iterative.hpp"
#include "paper_common.hpp"

namespace {

using namespace cloudburst;
using namespace cloudburst::units;

struct SweepPoint {
  double cold_retrieval = 0.0;  ///< pass-0 node-seconds fetching
  double warm_retrieval = 0.0;  ///< mean of passes 1+
  double total_seconds = 0.0;
  double hit_rate = 0.0;
  std::uint64_t s3_gets = 0;
  std::uint32_t prefetch_issued = 0;
  std::uint32_t prefetch_wasted = 0;
};

double pass_retrieval(const middleware::RunResult& pass) {
  double total = 0.0;
  for (const auto& node : pass.nodes) total += node.retrieval;
  return total;
}

SweepPoint run_point(const storage::DataLayout& layout, cache::CacheFleet* fleet,
                     const cloudburst::bench::BenchArgs& args) {
  middleware::IterativeRequest request;
  request.platform_spec = cluster::PlatformSpec::paper_testbed(0, 44);
  request.layout = &layout;
  request.options = apps::paper_run_options(apps::PaperApp::Kmeans);
  request.options.cache = fleet;
  request.options.random_seed = args.seed;
  request.iterations = args.quick ? 3 : 10;
  const auto result = run_iterative(std::move(request));

  SweepPoint point;
  point.cold_retrieval = pass_retrieval(result.passes.front());
  for (std::size_t i = 1; i < result.passes.size(); ++i) {
    point.warm_retrieval += pass_retrieval(result.passes[i]);
  }
  point.warm_retrieval /= static_cast<double>(result.passes.size() - 1);
  point.total_seconds = result.total_seconds;
  point.hit_rate = result.cache_hit_rate();
  point.s3_gets = result.s3_get_requests();
  for (const auto& pass : result.passes) {
    point.prefetch_issued += pass.prefetch_issued();
    point.prefetch_wasted += pass.prefetch_wasted();
  }
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  const auto layout = apps::paper_layout(apps::PaperApp::Kmeans, 0.0, 0, 1);

  AsciiTable table({"policy", "capacity", "cold fetch s", "warm fetch s", "total s",
                    "hit rate", "S3 GETs", "speedup"});
  const SweepPoint off = run_point(layout, nullptr, args);
  table.add_row({"off", "-", AsciiTable::num(off.cold_retrieval, 0),
                 AsciiTable::num(off.warm_retrieval, 0),
                 AsciiTable::num(off.total_seconds, 1), "-",
                 std::to_string(off.s3_gets), "1.00x"});
  table.add_separator();

  std::vector<cache::EvictionPolicy> policies = {
      cache::EvictionPolicy::Lru, cache::EvictionPolicy::Lfu, cache::EvictionPolicy::Fifo};
  std::vector<std::uint64_t> capacities = {GiB(2), GiB(6), GiB(16)};
  if (args.quick) {
    policies = {cache::EvictionPolicy::Lru};
    capacities = {GiB(16)};
  }
  for (cache::EvictionPolicy policy : policies) {
    for (std::uint64_t capacity : capacities) {
      cache::CacheConfig cfg;
      cfg.policy = policy;
      cfg.capacity_bytes = capacity;
      cache::CacheFleet fleet(cfg);
      const SweepPoint point = run_point(layout, &fleet, args);
      char cap[16], rate[16], speedup[16];
      std::snprintf(cap, sizeof(cap), "%lluG",
                    static_cast<unsigned long long>(capacity >> 30));
      std::snprintf(rate, sizeof(rate), "%.0f%%", point.hit_rate * 100.0);
      std::snprintf(speedup, sizeof(speedup), "%.2fx",
                    off.total_seconds / point.total_seconds);
      table.add_row({cache::to_string(policy), cap,
                     AsciiTable::num(point.cold_retrieval, 0),
                     AsciiTable::num(point.warm_retrieval, 0),
                     AsciiTable::num(point.total_seconds, 1), rate,
                     std::to_string(point.s3_gets), speedup});
    }
    table.add_separator();
  }
  std::printf("%s\n",
              table.render("Ablation — site cache policy x capacity, 10-pass kmeans "
                           "env-cloud (retrieval node-seconds per pass)")
                  .c_str());

  // Prefetcher on top of the fitting cache: the cold pass overlaps WAN
  // transfers with processing, later passes are hits either way.
  AsciiTable pf({"prefetch", "cold fetch s", "total s", "hit rate", "S3 GETs",
                 "issued", "wasted", "speedup"});
  std::vector<unsigned> depths = {0u, 2u, 4u, 8u};
  if (args.quick) depths = {0u, 4u};
  for (unsigned depth : depths) {
    cache::CacheConfig cfg;
    cfg.capacity_bytes = GiB(16);
    cfg.prefetch.enabled = depth > 0;
    cfg.prefetch.depth = depth;
    cache::CacheFleet fleet(cfg);
    const SweepPoint point = run_point(layout, &fleet, args);
    char rate[16], speedup[16];
    std::snprintf(rate, sizeof(rate), "%.0f%%", point.hit_rate * 100.0);
    std::snprintf(speedup, sizeof(speedup), "%.2fx",
                  off.total_seconds / point.total_seconds);
    pf.add_row({depth == 0 ? "off" : ("depth " + std::to_string(depth)),
                AsciiTable::num(point.cold_retrieval, 0),
                AsciiTable::num(point.total_seconds, 1), rate,
                std::to_string(point.s3_gets), std::to_string(point.prefetch_issued),
                std::to_string(point.prefetch_wasted), speedup});
  }
  std::printf("%s\n", pf.render("Ablation — prefetch depth on a 16G LRU cache "
                                "(same 10-pass kmeans)")
                          .c_str());
  return 0;
}
