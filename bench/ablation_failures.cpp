// Extension bench: failure recovery overhead.
//
// A slave crash loses its accumulated reduction object, so every chunk it
// was assigned since its last checkpoint is re-executed on the survivors.
// This bench sweeps the crash time across the run (knn, env-50/50 data,
// direct-reduction mode) and reports the re-executed work and the time
// overhead versus a failure-free run.
#include "paper_common.hpp"

#include "middleware/runtime.hpp"

namespace {

using namespace cloudburst;

middleware::RunResult run_knn(std::uint64_t seed,
                              const std::vector<middleware::RunOptions::FailureEvent>& failures,
                              double detection_seconds,
                              double checkpoint_interval = 0.0,
                              const storage::FaultProfile& cloud_fault = {},
                              const storage::RetryPolicy& retry = {}) {
  cluster::PlatformSpec spec = cluster::PlatformSpec::paper_testbed(16, 16);
  spec.sites[cluster::kCloudSite].store->fault = cloud_fault;
  cluster::Platform platform(spec);
  const storage::DataLayout layout =
      apps::paper_layout(apps::PaperApp::Knn, 0.5, platform.local_store_id(),
                         platform.cloud_store_id());
  middleware::RunOptions options = apps::paper_run_options(apps::PaperApp::Knn);
  options.reduction_tree = false;
  options.random_seed = seed;
  options.failures = failures;
  options.failure_detection_seconds = detection_seconds;
  options.checkpoint_interval_seconds = checkpoint_interval;
  options.retry = retry;
  return middleware::run_distributed(platform, layout, options);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cloudburst;

  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  const auto clean = run_knn(args.seed, {}, 1.0);
  AsciiTable table({"crash point", "detection", "exec time", "overhead",
                    "jobs assigned (96 unique)"});
  table.add_row({"none", "-", AsciiTable::num(clean.total_time, 2), "0.0%", "96"});
  const std::vector<double> crash_fracs =
      args.quick ? std::vector<double>{0.5} : std::vector<double>{0.1, 0.3, 0.5, 0.7, 0.9};
  const std::vector<double> detections =
      args.quick ? std::vector<double>{0.5} : std::vector<double>{0.5, 2.0};
  for (double frac : crash_fracs) {
    for (double detect : detections) {
      const auto result = run_knn(
          args.seed, {{cluster::kCloudSite, 0, frac * clean.total_time}}, detect);
      table.add_row({AsciiTable::pct(frac, 0) + " of run",
                     AsciiTable::num(detect, 1) + " s",
                     AsciiTable::num(result.total_time, 2),
                     AsciiTable::pct(result.total_time / clean.total_time - 1.0, 1),
                     std::to_string(result.total_jobs())});
    }
  }
  std::printf("%s\n",
              table.render("Extension — slave-crash recovery (knn env-50/50, one "
                           "cloud instance dies; lost robj work is re-executed)")
                  .c_str());

  // Checkpoint-interval sweep: bounding the loss of a late crash.
  AsciiTable ckpt({"checkpoint interval", "exec time", "overhead",
                   "jobs assigned (96 unique)"});
  const std::vector<double> intervals =
      args.quick ? std::vector<double>{0.0, 2.0}
                 : std::vector<double>{0.0, 10.0, 5.0, 2.0, 1.0};
  for (double interval : intervals) {
    const auto result = run_knn(
        args.seed, {{cluster::kCloudSite, 0, 0.7 * clean.total_time}}, 1.0, interval);
    ckpt.add_row({interval == 0.0 ? std::string("off")
                                  : AsciiTable::num(interval, 0) + " s",
                  AsciiTable::num(result.total_time, 2),
                  AsciiTable::pct(result.total_time / clean.total_time - 1.0, 1),
                  std::to_string(result.total_jobs())});
  }
  std::printf("%s\n",
              ckpt.render("Extension — periodic robj checkpointing vs crash at 70% "
                          "of the run")
                  .c_str());

  // Compound incident: a cloud instance dies *inside* an S3 throttling window
  // (degraded per-connection bandwidth + elevated failure rate), so the
  // re-executed chunks refetch from a store that is itself misbehaving.
  storage::FaultProfile throttled;
  throttled.fail_probability = 0.02;
  throttled.throttles.push_back({/*begin=*/0.3 * clean.total_time,
                                 /*end=*/0.8 * clean.total_time,
                                 /*bandwidth_factor=*/0.25,
                                 /*fail_probability=*/0.08});
  storage::RetryPolicy retry;
  retry.max_attempts = 3;
  retry.backoff_base_seconds = 0.05;

  AsciiTable compound({"scenario", "exec time", "overhead", "faults", "retries",
                       "jobs assigned (96 unique)"});
  struct Scenario {
    const char* name;
    std::vector<middleware::RunOptions::FailureEvent> failures;
    storage::FaultProfile fault;
  };
  const Scenario scenarios[] = {
      {"crash only", {{cluster::kCloudSite, 0, 0.5 * clean.total_time}}, {}},
      {"throttle window only", {}, throttled},
      {"crash inside window",
       {{cluster::kCloudSite, 0, 0.5 * clean.total_time}},
       throttled},
  };
  for (const Scenario& s : scenarios) {
    const auto result = run_knn(args.seed, s.failures, 1.0, 0.0, s.fault, retry);
    compound.add_row({s.name, AsciiTable::num(result.total_time, 2),
                      AsciiTable::pct(result.total_time / clean.total_time - 1.0, 1),
                      std::to_string(result.store_faults()),
                      std::to_string(result.fetch_retries()),
                      std::to_string(result.total_jobs())});
  }
  std::printf("%s\n",
              compound.render("Extension — slave crash overlapping an S3 throttling "
                              "window (30-80% of the run, 4x slower GETs, +8% "
                              "failure rate; 3-attempt retry)")
                  .c_str());
  return 0;
}
