// Extension bench: two cloud providers instead of cluster + cloud.
//
// Paper §II: "our solution will also be applicable if the data and/or
// processing power is spread across two different cloud providers." Here
// both sides are clouds: provider A gets m1.large-class instances and an
// object store; provider B keeps the standard S3-style setup; the WAN is
// the inter-provider internet path. Same middleware, same policies.
#include "paper_common.hpp"

#include "common/units.hpp"
#include "middleware/runtime.hpp"

namespace {

using namespace cloudburst;
using namespace cloudburst::units;

middleware::RunResult run_two_providers(bench::PaperApp app, double provider_a_fraction) {
  // Provider A: cloud-grade nodes + a front-attached object store (no
  // provider-internal fabric — readers come in over its public front).
  cluster::PlatformSpec spec;
  cluster::SiteSpec a;
  a.name = "providerA";
  a.cluster = cluster::ClusterSpec::uniform(
      "providerA", 8, cluster::NodeSpec{2, 0.73}, MBps(160), des::from_seconds(us(200)));
  a.cloud_billed = true;
  a.store = cluster::StoreSpec::object(GiBps(2.5), MBps(25), des::from_seconds(ms(60)));
  spec.sites.push_back(std::move(a));
  // Provider B: the paper's S3-style setup, unchanged.
  spec.sites.push_back(cluster::PlatformSpec::paper_cloud_site(16, "providerB"));
  // Inter-provider path: public internet, slower than a dedicated link.
  spec.wan_bandwidth = MBps(80);
  spec.wan_latency = des::from_seconds(ms(40));
  spec.node_speed_jitter = 0.03;

  cluster::Platform platform(spec);
  const storage::DataLayout layout =
      apps::paper_layout(app, provider_a_fraction, platform.local_store_id(),
                         platform.cloud_store_id());
  return middleware::run_distributed(platform, layout, apps::paper_run_options(app));
}

}  // namespace

int main() {
  using namespace cloudburst;

  AsciiTable table({"app", "data on provider A", "exec time", "A retrieval",
                    "B retrieval", "jobs stolen (A/B)"});
  for (bench::PaperApp app :
       {bench::PaperApp::Knn, bench::PaperApp::Kmeans, bench::PaperApp::PageRank}) {
    for (double fraction : {0.5, 1.0 / 6}) {
      const auto result = run_two_providers(app, fraction);
      const auto& a = result.clusters[0];
      const auto& b = result.clusters[1];
      table.add_row({apps::to_string(app), AsciiTable::pct(fraction, 0),
                     AsciiTable::num(result.total_time, 1),
                     AsciiTable::num(a.retrieval, 1), AsciiTable::num(b.retrieval, 1),
                     std::to_string(a.jobs_stolen) + " / " + std::to_string(b.jobs_stolen)});
    }
    table.add_separator();
  }
  std::printf("%s\n",
              table.render("Extension — two cloud providers (8 + 8 m1.large-class "
                           "instances, object stores on both sides, "
                           "640 Mb/s / 40 ms inter-provider path)")
                  .c_str());
  return 0;
}
