// Extension bench: two cloud providers instead of cluster + cloud.
//
// Paper §II: "our solution will also be applicable if the data and/or
// processing power is spread across two different cloud providers." Here
// both sides are clouds: provider A gets m1.large-class instances and an
// object store; provider B keeps the standard S3-style setup; the WAN is
// the inter-provider internet path. Same middleware, same policies.
#include "paper_common.hpp"

#include "common/units.hpp"
#include "middleware/runtime.hpp"

namespace {

using namespace cloudburst;
using namespace cloudburst::units;

middleware::RunResult run_two_providers(bench::PaperApp app, double provider_a_fraction) {
  cluster::PlatformSpec spec = cluster::PlatformSpec::paper_testbed(16, 16);
  // Provider A: cloud-grade nodes (same as B) + an object store.
  spec.local = cluster::ClusterSpec::uniform(
      "providerA", 8, cluster::NodeSpec{2, 0.73}, MBps(160), des::from_seconds(us(200)));
  spec.local_store_is_object = true;
  spec.disk_bandwidth = GiBps(2.5);  // provider A object-store capacity
  // Inter-provider path: public internet, slower than a dedicated link.
  spec.wan_bandwidth = MBps(80);
  spec.wan_latency = des::from_seconds(ms(40));

  cluster::Platform platform(spec);
  const storage::DataLayout layout =
      apps::paper_layout(app, provider_a_fraction, platform.local_store_id(),
                         platform.cloud_store_id());
  return middleware::run_distributed(platform, layout, apps::paper_run_options(app));
}

}  // namespace

int main() {
  using namespace cloudburst;

  AsciiTable table({"app", "data on provider A", "exec time", "A retrieval",
                    "B retrieval", "jobs stolen (A/B)"});
  for (bench::PaperApp app :
       {bench::PaperApp::Knn, bench::PaperApp::Kmeans, bench::PaperApp::PageRank}) {
    for (double fraction : {0.5, 1.0 / 6}) {
      const auto result = run_two_providers(app, fraction);
      const auto& a = result.side(cluster::ClusterSide::Local);
      const auto& b = result.side(cluster::ClusterSide::Cloud);
      table.add_row({apps::to_string(app), AsciiTable::pct(fraction, 0),
                     AsciiTable::num(result.total_time, 1),
                     AsciiTable::num(a.retrieval, 1), AsciiTable::num(b.retrieval, 1),
                     std::to_string(a.jobs_stolen) + " / " + std::to_string(b.jobs_stolen)});
    }
    table.add_separator();
  }
  std::printf("%s\n",
              table.render("Extension — two cloud providers (8 + 8 m1.large-class "
                           "instances, object stores on both sides, "
                           "640 Mb/s / 40 ms inter-provider path)")
                  .c_str());
  return 0;
}
