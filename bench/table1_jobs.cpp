// Reproduces Table I: jobs processed per cluster, split into jobs whose data
// was on the cluster's own store ("Local") and jobs fetched from the remote
// store ("stolen"), for every application and hybrid environment.
#include "paper_common.hpp"

int main() {
  using namespace cloudburst;
  AsciiTable table({"app", "env", "local: own (stolen)", "cloud: own (stolen)", "total"});
  for (bench::PaperApp app :
       {bench::PaperApp::Knn, bench::PaperApp::Kmeans, bench::PaperApp::PageRank}) {
    for (apps::Env env : apps::kHybridEnvs) {
      const auto config = apps::env_config(env, app);
      const auto result = apps::run_env(env, app);
      const auto& local = result.side(cluster::kLocalSite);
      const auto& cloud = result.side(cluster::kCloudSite);
      table.add_row({apps::to_string(app), config.name,
                     std::to_string(local.jobs_local) + " (" +
                         std::to_string(local.jobs_stolen) + ")",
                     std::to_string(cloud.jobs_local) + " (" +
                         std::to_string(cloud.jobs_stolen) + ")",
                     std::to_string(result.total_jobs())});
    }
    table.add_separator();
  }
  std::printf("%s\n", table.render("Table I — job assignment per application").c_str());
  return 0;
}
