// Reproduces Figure 3(b): kmeans over the five cloud-bursting environments
// (cloud cores rebalanced to 44/22 as in the paper).
#include "paper_common.hpp"

int main() {
  using namespace cloudburst;
  const auto sweep = bench::run_env_sweep(bench::PaperApp::Kmeans);
  bench::print_fig3(bench::PaperApp::Kmeans, sweep, "Figure 3(b)");
  std::printf("average hybrid slowdown vs env-local: %.1f%%\n\n",
              bench::average_hybrid_slowdown(sweep) * 100.0);
  return 0;
}
