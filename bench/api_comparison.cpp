// Generalized Reduction vs Map-Reduce vs Map-Reduce+combine — real engines,
// real kernels (google-benchmark).
//
// Reproduces the paper's §III-A argument quantitatively: the GR API avoids
// the intermediate (key, value) materialization, sorting/grouping, and
// shuffle of Map-Reduce. Counters report live intermediate pairs and shuffle
// bytes so the memory claim is visible next to the time.
#include <benchmark/benchmark.h>

#include "apps/datagen.hpp"
#include "apps/kmeans.hpp"
#include "apps/knn.hpp"
#include "apps/pagerank.hpp"
#include "apps/wordcount.hpp"
#include "engine/gr_engine.hpp"
#include "engine/mr_engine.hpp"

namespace {

using namespace cloudburst;
using engine::GrEngineOptions;
using engine::MemoryDataset;
using engine::MrEngineOptions;

constexpr std::size_t kThreads = 4;

const MemoryDataset& word_data() {
  static const MemoryDataset data = [] {
    apps::WordGenSpec spec;
    spec.count = 400000;
    spec.vocabulary = 10000;
    return apps::generate_words(spec);
  }();
  return data;
}

const MemoryDataset& point_data() {
  static const MemoryDataset data = [] {
    apps::PointGenSpec spec;
    spec.count = 200000;
    spec.dim = 8;
    spec.mixture_components = 8;
    return apps::generate_points(spec);
  }();
  return data;
}

const MemoryDataset& edge_data() {
  static const MemoryDataset data = [] {
    apps::GraphGenSpec spec;
    spec.pages = 50000;
    spec.edges = 400000;
    return apps::generate_edges(spec);
  }();
  return data;
}

/// Shared task instances (construction is not what we measure).
apps::WordCountTask& wordcount_task() {
  static apps::WordCountTask task;
  return task;
}
apps::KnnTask& knn_task() {
  static apps::KnnTask task(100, std::vector<float>(8, 0.0f));
  return task;
}
apps::KmeansTask& kmeans_task() {
  static apps::KmeansTask task([] {
    apps::PointGenSpec spec;
    spec.count = 1;
    spec.dim = 8;
    spec.mixture_components = 8;
    return apps::mixture_centers(spec);
  }());
  return task;
}
apps::PageRankTask& pagerank_task() {
  static apps::PageRankTask task = [] {
    const auto deg = apps::out_degrees(edge_data(), 50000);
    return apps::PageRankTask(std::vector<double>(50000, 1.0 / 50000), deg);
  }();
  return task;
}

template <typename Task>
void run_gr(benchmark::State& state, const Task& task, const MemoryDataset& data) {
  GrEngineOptions options;
  options.threads = kThreads;
  engine::GrRunStats stats;
  for (auto _ : state) {
    auto robj = engine::gr_run(task, data, options, &stats);
    benchmark::DoNotOptimize(robj);
  }
  state.counters["robj_bytes"] = static_cast<double>(stats.robj_bytes);
  state.counters["intermediate_pairs"] = 0;
  state.counters["MB/s"] = benchmark::Counter(
      static_cast<double>(data.size_bytes()) / 1e6, benchmark::Counter::kIsIterationInvariantRate);
}

template <typename Task>
void run_mr(benchmark::State& state, const Task& task, const MemoryDataset& data,
            bool combine) {
  MrEngineOptions options;
  options.threads = kThreads;
  options.use_combiner = combine;
  options.combine_flush_pairs = 1 << 14;
  engine::MrRunStats stats;
  for (auto _ : state) {
    auto out = engine::mr_run(task, data, options, &stats);
    benchmark::DoNotOptimize(out);
  }
  state.counters["intermediate_pairs"] = static_cast<double>(stats.peak_intermediate_pairs);
  state.counters["shuffle_MB"] = static_cast<double>(stats.shuffle_bytes) / 1e6;
  state.counters["MB/s"] = benchmark::Counter(
      static_cast<double>(data.size_bytes()) / 1e6, benchmark::Counter::kIsIterationInvariantRate);
}

void BM_Wordcount_GR(benchmark::State& s) { run_gr(s, wordcount_task(), word_data()); }
void BM_Wordcount_MR(benchmark::State& s) { run_mr(s, wordcount_task(), word_data(), false); }
void BM_Wordcount_MRCombine(benchmark::State& s) {
  run_mr(s, wordcount_task(), word_data(), true);
}

void BM_Knn_GR(benchmark::State& s) { run_gr(s, knn_task(), point_data()); }
void BM_Knn_MR(benchmark::State& s) { run_mr(s, knn_task(), point_data(), false); }
void BM_Knn_MRCombine(benchmark::State& s) { run_mr(s, knn_task(), point_data(), true); }

void BM_Kmeans_GR(benchmark::State& s) { run_gr(s, kmeans_task(), point_data()); }
void BM_Kmeans_MR(benchmark::State& s) { run_mr(s, kmeans_task(), point_data(), false); }
void BM_Kmeans_MRCombine(benchmark::State& s) {
  run_mr(s, kmeans_task(), point_data(), true);
}

void BM_Pagerank_GR(benchmark::State& s) { run_gr(s, pagerank_task(), edge_data()); }
void BM_Pagerank_MR(benchmark::State& s) { run_mr(s, pagerank_task(), edge_data(), false); }
void BM_Pagerank_MRCombine(benchmark::State& s) {
  run_mr(s, pagerank_task(), edge_data(), true);
}

}  // namespace

BENCHMARK(BM_Wordcount_GR)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Wordcount_MR)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Wordcount_MRCombine)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Knn_GR)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Knn_MR)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Knn_MRCombine)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Kmeans_GR)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Kmeans_MR)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Kmeans_MRCombine)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Pagerank_GR)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Pagerank_MR)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Pagerank_MRCombine)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
