// Reproduces Figure 3(a): knn over the five cloud-bursting environments.
#include "paper_common.hpp"

int main() {
  using namespace cloudburst;
  const auto sweep = bench::run_env_sweep(bench::PaperApp::Knn);
  bench::print_fig3(bench::PaperApp::Knn, sweep, "Figure 3(a)");
  std::printf("average hybrid slowdown vs env-local: %.1f%%\n\n",
              bench::average_hybrid_slowdown(sweep) * 100.0);
  return 0;
}
