// Ablation: chunk geometry — jobs per dataset.
//
// "The decision for the size of a chunk depends on the available memory on
// the compute units" (paper §III-B); coarser chunks amortize per-job
// overheads and seeks, finer chunks improve load balance. This sweep keeps
// the 12 GB dataset and varies jobs-per-file.
#include "paper_common.hpp"

#include "common/units.hpp"
#include "middleware/runtime.hpp"
#include "storage/data_layout.hpp"

namespace {

using namespace cloudburst;
using namespace cloudburst::units;

middleware::RunResult run_with_chunks(bench::PaperApp app, apps::Env env,
                                      std::uint32_t chunks_per_file,
                                      std::uint64_t seed) {
  const auto config = apps::env_config(env, app);
  cluster::Platform platform(
      cluster::PlatformSpec::paper_testbed(config.local_cores, config.cloud_cores));
  storage::LayoutSpec spec;
  spec.total_bytes = GiB(12);
  spec.num_files = 32;
  spec.chunks_per_file = chunks_per_file;
  spec.unit_bytes = apps::paper_profile(app).unit_bytes;
  storage::DataLayout layout = storage::build_layout(spec);
  storage::assign_stores_by_fraction(layout, config.local_data_fraction,
                                     platform.local_store_id(), platform.cloud_store_id());
  auto options = apps::paper_run_options(app);
  options.random_seed = seed;
  return middleware::run_distributed(platform, layout, options);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cloudburst;
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  AsciiTable table({"chunks/file", "jobs", "chunk size", "knn 50/50", "kmeans 50/50",
                    "pagerank 50/50"});
  std::vector<std::uint32_t> sweep = {1u, 3u, 6u, 12u, 24u};
  if (args.quick) sweep = {1u, 3u};
  for (std::uint32_t cpf : sweep) {
    std::vector<std::string> row = {std::to_string(cpf), std::to_string(32 * cpf),
                                    units::format_bytes(GiB(12) / (32 * cpf))};
    for (bench::PaperApp app :
         {bench::PaperApp::Knn, bench::PaperApp::Kmeans, bench::PaperApp::PageRank}) {
      row.push_back(
          AsciiTable::num(run_with_chunks(app, apps::Env::Hybrid5050, cpf, args.seed).total_time, 1));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.render("Ablation — chunk geometry on env-50/50 "
                                   "(execution time, seconds; paper uses 3 chunks/file "
                                   "= 96 jobs)")
                          .c_str());
  return 0;
}
