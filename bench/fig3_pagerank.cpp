// Reproduces Figure 3(c): pagerank over the five cloud-bursting
// environments; the large reduction object drives the sync overhead.
#include "paper_common.hpp"

int main() {
  using namespace cloudburst;
  const auto sweep = bench::run_env_sweep(bench::PaperApp::PageRank);
  bench::print_fig3(bench::PaperApp::PageRank, sweep, "Figure 3(c)");
  std::printf("average hybrid slowdown vs env-local: %.1f%%\n\n",
              bench::average_hybrid_slowdown(sweep) * 100.0);
  return 0;
}
