// Reproduces Figure 4: system scalability with all data in S3.
//
// (m, n) cores with m = n in {4, 8, 16, 32}; for each doubling the paper
// annotates the scaling efficiency T(n) / (2 * T(2n)).
#include "paper_common.hpp"

int main() {
  using namespace cloudburst;
  const unsigned kCores[] = {4, 8, 16, 32};

  for (bench::PaperApp app :
       {bench::PaperApp::Knn, bench::PaperApp::Kmeans, bench::PaperApp::PageRank}) {
    AsciiTable table({"(m,n) cores", "side", "processing", "retrieval", "sync",
                      "exec time", "efficiency vs previous"});
    double previous = 0.0;
    double efficiency_sum = 0.0;
    int doublings = 0;
    for (unsigned cores : kCores) {
      const auto result = apps::run_scalability(app, cores);
      std::string eff = "-";
      if (previous > 0.0) {
        const double e = previous / (2.0 * result.total_time);
        eff = AsciiTable::pct(e, 1);
        efficiency_sum += e;
        ++doublings;
      }
      bool first = true;
      for (const auto& c : result.clusters) {
        if (c.nodes == 0) continue;
        const std::string label =
            "(" + std::to_string(cores) + "," + std::to_string(cores) + ")";
        table.add_row({first ? label : "", c.name,
                       AsciiTable::num(c.processing, 1), AsciiTable::num(c.retrieval, 1),
                       AsciiTable::num(c.sync, 1),
                       first ? AsciiTable::num(result.total_time, 1) : "",
                       first ? eff : ""});
        first = false;
      }
      table.add_separator();
      previous = result.total_time;
    }
    const char* label = app == bench::PaperApp::Knn      ? "Figure 4(a)"
                        : app == bench::PaperApp::Kmeans ? "Figure 4(b)"
                                                         : "Figure 4(c)";
    std::printf("%s\n", table.render(std::string(label) + " — " + apps::to_string(app) +
                                     " scalability, all data in S3 (seconds)")
                            .c_str());
    if (doublings > 0) {
      std::printf("average scaling efficiency per doubling: %.1f%%\n\n",
                  efficiency_sum / doublings * 100.0);
    }
  }
  return 0;
}
