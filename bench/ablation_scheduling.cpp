// Ablation: the head node's job-selection optimizations.
//
//  * consecutive batches — sequential reads at the storage node ("allows the
//    compute units to sequentially read jobs from the files"). Measured as
//    storage-node seek counts and as execution time on a seek-expensive
//    array (a contended SATA array under queueing, where a non-sequential
//    access costs ~100 ms of repositioning + queue delay).
//  * remote-file selection — min-contention vs random vs sequential
//    ("remote jobs are chosen from files which the minimum number of nodes
//    are currently processing"). Measured as the spread of stolen jobs
//    across files: the heuristic's job is to avoid piling readers onto one
//    file.
#include "paper_common.hpp"

#include <map>

#include "common/units.hpp"
#include "middleware/runtime.hpp"
#include "storage/data_layout.hpp"

namespace {

using namespace cloudburst;
using namespace cloudburst::units;

struct SeekRun {
  double exec_time = 0.0;
  std::uint64_t seeks = 0;
};

/// env-local with an explicit platform so the store stats stay reachable.
SeekRun run_local(bench::PaperApp app, bool consecutive, des::SimDuration seek_latency) {
  cluster::PlatformSpec spec = cluster::PlatformSpec::paper_testbed(32, 0);
  spec.store(cluster::kLocalSite).access_latency = seek_latency;
  cluster::Platform platform(spec);
  storage::DataLayout layout = apps::paper_layout(app, 1.0, platform.local_store_id(),
                                                  platform.cloud_store_id());
  middleware::RunOptions options = apps::paper_run_options(app);
  options.policy.consecutive_batches = consecutive;
  SeekRun out;
  out.exec_time = middleware::run_distributed(platform, layout, options).total_time;
  out.seeks = platform.store(platform.local_store_id()).stats().seeks;
  return out;
}

/// Max stolen jobs drawn from any single remote file under a selection policy.
std::uint32_t max_file_pile(middleware::RemoteSelection selection, std::uint64_t seed) {
  // All data on S3, two clusters: the local side steals everything it
  // processes; count how its steals spread over files via the pool itself.
  const auto layout = apps::paper_layout(bench::PaperApp::Knn, 0.0, 0, 1);
  middleware::SchedulerPolicy policy;
  policy.remote_selection = selection;
  policy.steal_batch_size = 1;
  policy.random_seed = seed;
  middleware::JobPool pool(layout, policy);
  std::map<storage::FileId, std::uint32_t> per_file;
  for (int i = 0; i < 48; ++i) {  // half the pool stolen one job at a time
    const auto batch = pool.take_batch(/*preferred=*/0, 1);
    if (batch.empty()) break;
    ++per_file[layout.chunk(batch.front()).file];
  }
  std::uint32_t peak = 0;
  for (const auto& [f, n] : per_file) peak = std::max(peak, n);
  return peak;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cloudburst;

  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  std::vector<bench::PaperApp> apps_to_run = {bench::PaperApp::Knn,
                                              bench::PaperApp::Kmeans,
                                              bench::PaperApp::PageRank};
  if (args.quick) apps_to_run = {bench::PaperApp::Knn};

  AsciiTable seeks({"app", "variant", "storage-node seeks", "exec (8ms seek)",
                    "exec (100ms seek)"});
  for (bench::PaperApp app : apps_to_run) {
    for (bool consecutive : {true, false}) {
      const auto fast = run_local(app, consecutive, des::from_seconds(ms(8)));
      const auto slow = run_local(app, consecutive, des::from_seconds(ms(100)));
      seeks.add_row({apps::to_string(app),
                     consecutive ? "consecutive batches" : "one chunk per grant",
                     std::to_string(fast.seeks), AsciiTable::num(fast.exec_time, 2),
                     AsciiTable::num(slow.exec_time, 2)});
    }
    seeks.add_separator();
  }
  std::printf("%s\n", seeks.render("Ablation — consecutive-job batching on env-local "
                                   "(seek counts & execution time)")
                          .c_str());
  std::printf(
      "finding: with the paper's 3-chunks-per-file geometry and more readers than\n"
      "chunks per file, consecutive batches into a shared pool still interleave\n"
      "across slaves; single-chunk min-contention grants converge to one reader per\n"
      "file and nearly eliminate seeks. The optimization's value depends on the\n"
      "chunk-to-reader ratio (see ablation_chunks).\n\n");

  AsciiTable spread({"remote selection", "max stolen jobs piled on one file"});
  spread.add_row(
      {"min-contention (paper)",
       std::to_string(max_file_pile(middleware::RemoteSelection::MinContention, args.seed))});
  spread.add_row({"random", std::to_string(max_file_pile(middleware::RemoteSelection::Random,
                                                         args.seed))});
  spread.add_row(
      {"sequential",
       std::to_string(max_file_pile(middleware::RemoteSelection::Sequential, args.seed))});
  std::printf("%s\n",
              spread.render("Ablation — remote-file selection (file-contention proxy: "
                            "48 single-job steals over 32 files)")
                  .c_str());
  return 0;
}
