// Shared helpers for the paper-reproduction bench binaries.
//
// Each bench prints the corresponding paper artifact as an ASCII table; the
// helpers here run the standard environments and format results
// consistently. Everything is deterministic: same binary, same output.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "apps/experiments.hpp"
#include "common/table.hpp"
#include "middleware/run_result.hpp"

namespace cloudburst::bench {

using apps::Env;
using apps::PaperApp;

/// Shared command-line convention for the bench binaries. Every bench stays
/// self-running with no arguments (the defaults reproduce the paper
/// artifact); two flags tweak a run without editing code:
///   --seed=N   seed for the bench's randomized components (arrival traces,
///              RemoteSelection::Random, RunOptions::random_seed);
///   --quick    shrink sweeps to a CI-smoke subset (same code paths, fewer
///              points) — the bench should finish in a few seconds.
struct BenchArgs {
  std::uint64_t seed = 42;
  bool quick = false;

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strncmp(arg, "--seed=", 7) == 0) {
        char* end = nullptr;
        args.seed = std::strtoull(arg + 7, &end, 10);
        if (end == arg + 7 || *end != '\0') {
          std::fprintf(stderr, "invalid --seed value: %s\n", arg + 7);
          std::exit(2);
        }
      } else if (std::strcmp(arg, "--quick") == 0) {
        args.quick = true;
      } else {
        std::fprintf(stderr, "usage: %s [--seed=N] [--quick]\n", argv[0]);
        std::exit(2);
      }
    }
    return args;
  }
};

/// Results of the five Figure-3 environments for one application.
struct EnvSweep {
  std::vector<apps::EnvConfig> configs;
  std::vector<middleware::RunResult> results;

  const middleware::RunResult& by_env(Env env, PaperApp app) const;
};

inline EnvSweep run_env_sweep(PaperApp app) {
  EnvSweep sweep;
  for (Env env : apps::kAllEnvs) {
    sweep.configs.push_back(apps::env_config(env, app));
    sweep.results.push_back(apps::run_env(env, app));
  }
  return sweep;
}

/// Figure 3: stacked processing / data retrieval / sync decomposition, one
/// row per (environment, cluster side).
inline void print_fig3(PaperApp app, const EnvSweep& sweep, const char* figure_label) {
  cloudburst::AsciiTable table({"env", "(m,n) cores", "side", "processing", "retrieval",
                                "sync", "node total", "exec time", "slowdown"});
  const double baseline = sweep.results.front().total_time;  // env-local
  for (std::size_t i = 0; i < sweep.results.size(); ++i) {
    const auto& config = sweep.configs[i];
    const auto& result = sweep.results[i];
    const std::string cores =
        "(" + std::to_string(config.local_cores) + "," + std::to_string(config.cloud_cores) + ")";
    bool first_row = true;
    for (const auto& c : result.clusters) {
      if (c.nodes == 0) continue;
      table.add_row({first_row ? config.name : "", first_row ? cores : "",
                     c.name, cloudburst::AsciiTable::num(c.processing, 1),
                     cloudburst::AsciiTable::num(c.retrieval, 1),
                     cloudburst::AsciiTable::num(c.sync, 1),
                     cloudburst::AsciiTable::num(c.processing + c.retrieval + c.sync, 1),
                     first_row ? cloudburst::AsciiTable::num(result.total_time, 1) : "",
                     first_row ? cloudburst::AsciiTable::pct(
                                     result.total_time / baseline - 1.0, 1)
                               : ""});
      first_row = false;
    }
    table.add_separator();
  }
  std::printf("%s\n", table.render(std::string(figure_label) + " — " +
                                   apps::to_string(app) +
                                   " execution time decomposition (seconds)")
                          .c_str());
}

/// Average slowdown of the three hybrid environments vs env-local.
inline double average_hybrid_slowdown(const EnvSweep& sweep) {
  const double baseline = sweep.results.front().total_time;
  double total = 0.0;
  int n = 0;
  for (std::size_t i = 0; i < sweep.configs.size(); ++i) {
    if (sweep.configs[i].name.rfind("env-local", 0) == 0 ||
        sweep.configs[i].name.rfind("env-cloud", 0) == 0) {
      continue;
    }
    total += sweep.results[i].total_time / baseline - 1.0;
    ++n;
  }
  return n ? total / n : 0.0;
}

}  // namespace cloudburst::bench
