// Extension bench: node lifecycle — graceful drain vs spot reclaim vs crash.
//
// A spot reclamation arrives with a notice window; inside it the victim stops
// claiming pool chunks, finishes in-flight work, flushes a final delta-robj
// checkpoint to its master and vacates, so completed work survives the
// instance. This bench sweeps the notice window, the periodic checkpoint
// interval and the stochastic per-node-hour reclaim rate (knn, cloud-heavy
// 15/85 data split so the cloud cluster sits on the critical path), then
// self-checks the headline claim: a reclaim with adequate notice strictly
// beats a no-notice crash at the same kill instant on both makespan and
// wasted (re-executed) work. Exits non-zero if the claim does not hold.
#include "paper_common.hpp"

#include "middleware/runtime.hpp"

namespace {

using namespace cloudburst;
using Kind = middleware::RunOptions::LifecycleEvent::Kind;

// Most of the dataset lives in the cloud store: with the paper's 50/50 split
// the cloud side has slack and node loss hides inside it; at 15/85 the cloud
// cluster is the critical path and lifecycle effects move the makespan.
constexpr double kLocalFraction = 0.15;

middleware::RunOptions::LifecycleEvent lifecycle_event(Kind kind,
                                                       std::uint32_t node,
                                                       double at,
                                                       double notice) {
  middleware::RunOptions::LifecycleEvent ev;
  ev.kind = kind;
  ev.site = cluster::kCloudSite;
  ev.node_index = node;
  ev.at_seconds = at;
  ev.notice_seconds = notice;
  return ev;
}

middleware::RunResult run_knn(const middleware::RunOptions& base) {
  cluster::Platform platform(cluster::PlatformSpec::paper_testbed(16, 16));
  const storage::DataLayout layout =
      apps::paper_layout(apps::PaperApp::Knn, kLocalFraction,
                         platform.local_store_id(), platform.cloud_store_id());
  return middleware::run_distributed(platform, layout, base);
}

middleware::RunOptions base_options(std::uint64_t seed) {
  middleware::RunOptions options = apps::paper_run_options(apps::PaperApp::Knn);
  options.reduction_tree = false;  // lifecycle requires direct reduction
  options.random_seed = seed;
  return options;
}

std::string wasted_kb(const middleware::RunResult& r) {
  return AsciiTable::num(
      static_cast<double>(r.lifecycle.bytes_reexecuted) / 1024.0, 1);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cloudburst;

  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  const auto clean = run_knn(base_options(args.seed));

  // --- notice-window sweep: how much warning turns a kill into a handover --
  const std::vector<double> notices =
      args.quick ? std::vector<double>{0.0, 2.0}
                 : std::vector<double>{0.0, 0.25, 0.5, 1.0, 2.0, 10.0};
  AsciiTable notice_table({"notice", "exec time", "overhead", "vacated",
                           "reclaimed", "wasted work (KiB)"});
  notice_table.add_row({"no event", AsciiTable::num(clean.total_time, 2),
                        "0.0%", "0", "0", "0.0"});
  for (double notice : notices) {
    middleware::RunOptions o = base_options(args.seed);
    o.lifecycle.push_back(lifecycle_event(
        Kind::SpotReclaim, 1, 0.6 * clean.total_time, notice));
    o.failure_detection_seconds = 1.0;
    const auto r = run_knn(o);
    notice_table.add_row(
        {AsciiTable::num(notice, 2) + " s", AsciiTable::num(r.total_time, 2),
         AsciiTable::pct(r.total_time / clean.total_time - 1.0, 1),
         std::to_string(r.lifecycle.nodes_vacated),
         std::to_string(r.lifecycle.nodes_reclaimed), wasted_kb(r)});
  }
  std::printf("%s\n",
              notice_table
                  .render("Extension — spot reclaim notice window (knn "
                          "env-15/85, one cloud instance reclaimed at 60% of "
                          "the run)")
                  .c_str());

  // --- checkpoint-interval sweep under a zero-notice reclaim ---------------
  const std::vector<double> intervals =
      args.quick ? std::vector<double>{0.0, 0.25}
                 : std::vector<double>{0.0, 0.5, 0.25, 0.1};
  AsciiTable ckpt_table({"checkpoint interval", "exec time", "overhead",
                         "wasted work (KiB)"});
  for (double frac : intervals) {
    middleware::RunOptions o = base_options(args.seed);
    o.checkpoint_interval_seconds = frac * clean.total_time;
    o.lifecycle.push_back(
        lifecycle_event(Kind::SpotReclaim, 1, 0.7 * clean.total_time, 0.0));
    o.failure_detection_seconds = 1.0;
    const auto r = run_knn(o);
    ckpt_table.add_row(
        {frac == 0.0 ? std::string("off")
                     : AsciiTable::num(frac * clean.total_time, 2) + " s",
         AsciiTable::num(r.total_time, 2),
         AsciiTable::pct(r.total_time / clean.total_time - 1.0, 1),
         wasted_kb(r)});
  }
  std::printf("%s\n",
              ckpt_table
                  .render("Extension — periodic checkpointing vs a "
                          "zero-notice reclaim at 70% of the run")
                  .c_str());

  // --- stochastic reclaim-rate sweep with standby migration ----------------
  const std::vector<double> rates =
      args.quick ? std::vector<double>{0.0, 25.0, 400.0}
                 : std::vector<double>{0.0, 25.0, 50.0, 100.0, 200.0, 400.0};
  AsciiTable spot_table({"reclaim rate", "exec time", "overhead", "drains",
                         "replacements", "wasted work (KiB)"});
  for (double rate : rates) {
    middleware::RunOptions o = base_options(args.seed);
    o.spot.reclaim_rate_per_hour = rate;
    o.spot.notice_seconds = 5.0;
    o.spot.seed = args.seed;
    o.migration.standby_nodes = 2;
    o.migration.boot_seconds = 1.0;
    o.failure_detection_seconds = 1.0;
    try {
      const auto r = run_knn(o);
      spot_table.add_row(
          {AsciiTable::num(rate, 0) + "/h", AsciiTable::num(r.total_time, 2),
           AsciiTable::pct(r.total_time / clean.total_time - 1.0, 1),
           std::to_string(r.lifecycle.drains_requested),
           std::to_string(r.lifecycle.replacements_leased), wasted_kb(r)});
    } catch (const std::runtime_error&) {
      // Reclaims outran the 2 standbys and the cloud cluster emptied with
      // work still queued — with this seed the run is unfinishable, which is
      // itself the result at this rate.
      spot_table.add_row({AsciiTable::num(rate, 0) + "/h", "cluster lost", "-",
                          "-", "-", "-"});
    }
  }
  std::printf("%s\n",
              spot_table
                  .render("Extension — stochastic spot reclamation with 2 "
                          "standby replacements (5 s notice, seeded; the 0/h "
                          "row is the cost of just holding the standbys back)")
                  .c_str());

  // --- self-check: graceful reclaim beats a crash at the same kill instant -
  const double notice = 1.0;
  const double announce = 0.8 * clean.total_time - notice;

  middleware::RunOptions graceful = base_options(args.seed);
  graceful.lifecycle.push_back(
      lifecycle_event(Kind::SpotReclaim, 1, announce, notice));
  const auto g = run_knn(graceful);

  middleware::RunOptions crash = base_options(args.seed);
  crash.lifecycle.push_back(
      lifecycle_event(Kind::Crash, 1, announce + notice, 0.0));
  crash.failure_detection_seconds = 1.0;
  const auto c = run_knn(crash);

  AsciiTable duel({"scenario", "exec time", "overhead", "wasted work (KiB)",
                   "jobs assigned"});
  duel.add_row({"reclaim, 1 s notice", AsciiTable::num(g.total_time, 2),
                AsciiTable::pct(g.total_time / clean.total_time - 1.0, 1),
                wasted_kb(g), std::to_string(g.total_jobs())});
  duel.add_row({"crash at the deadline", AsciiTable::num(c.total_time, 2),
                AsciiTable::pct(c.total_time / clean.total_time - 1.0, 1),
                wasted_kb(c), std::to_string(c.total_jobs())});
  std::printf("%s\n",
              duel.render("Extension — same kill instant, with and without "
                          "notice (the graceful row must win both columns)")
                  .c_str());

  if (g.total_time >= c.total_time) {
    std::fprintf(stderr,
                 "SELF-CHECK FAILED: graceful reclaim makespan %.4f does not "
                 "beat crash makespan %.4f\n",
                 g.total_time, c.total_time);
    return 1;
  }
  if (g.lifecycle.bytes_reexecuted >= c.lifecycle.bytes_reexecuted) {
    std::fprintf(stderr,
                 "SELF-CHECK FAILED: graceful wasted bytes %llu not below "
                 "crash wasted bytes %llu\n",
                 static_cast<unsigned long long>(g.lifecycle.bytes_reexecuted),
                 static_cast<unsigned long long>(c.lifecycle.bytes_reexecuted));
    return 1;
  }
  std::printf("self-check passed: graceful reclaim beats the same-instant "
              "crash on makespan (%.2f s vs %.2f s) and wasted work (%llu B "
              "vs %llu B)\n",
              g.total_time, c.total_time,
              static_cast<unsigned long long>(g.lifecycle.bytes_reexecuted),
              static_cast<unsigned long long>(c.lifecycle.bytes_reexecuted));
  return 0;
}
