// Ablation: on-demand pooling vs static pre-assignment.
//
// The paper's load-balancing claim: "the data organization component, along
// with the pooling based job distribution enables fairness in load
// balancing. As the slaves request jobs using an on-demand basis, the slave
// nodes that have higher throughput … would naturally be ensured to process
// more jobs." This bench runs the alternative — every chunk pre-assigned
// round-robin at start — across increasing node-speed heterogeneity and
// shows the pooling advantage the paper relies on.
#include "paper_common.hpp"

#include "middleware/runtime.hpp"

namespace {

using namespace cloudburst;

middleware::RunResult run_knn(double jitter, bool static_assignment,
                              double local_fraction = 0.5) {
  cluster::PlatformSpec spec = cluster::PlatformSpec::paper_testbed(16, 16);
  spec.node_speed_jitter = jitter;
  cluster::Platform platform(spec);
  const storage::DataLayout layout =
      apps::paper_layout(apps::PaperApp::Knn, local_fraction, platform.local_store_id(),
                         platform.cloud_store_id());
  middleware::RunOptions options = apps::paper_run_options(apps::PaperApp::Knn);
  options.static_assignment = static_assignment;
  return middleware::run_distributed(platform, layout, options);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cloudburst;
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  const std::vector<double> jitters =
      args.quick ? std::vector<double>{0.0, 0.10}
                 : std::vector<double>{0.0, 0.03, 0.10, 0.20};
  const std::vector<double> fractions =
      args.quick ? std::vector<double>{0.5, 1.0 / 6}
                 : std::vector<double>{0.5, 1.0 / 3, 1.0 / 6};

  AsciiTable table({"node speed jitter", "pooling (paper)", "static pre-assignment",
                    "pooling advantage"});
  for (double jitter : jitters) {
    const auto pooled = run_knn(jitter, false);
    const auto fixed = run_knn(jitter, true);
    table.add_row({AsciiTable::pct(jitter, 0), AsciiTable::num(pooled.total_time, 2),
                   AsciiTable::num(fixed.total_time, 2),
                   AsciiTable::pct(fixed.total_time / pooled.total_time - 1.0, 1)});
  }
  std::printf("%s\n",
              table.render("Ablation — on-demand pooling vs static round-robin "
                           "pre-assignment (knn env-50/50; heterogeneous m1.large "
                           "instances vs 8-core Xeons)")
                  .c_str());
  std::printf("node-level: static's fixed split wins slightly on homogeneous nodes\n"
              "(no request round trips, perfect sequential reads) and loses once\n"
              "heterogeneity grows — the slowest node sets its tail.\n\n");

  // Cluster-level imbalance is where pooling is decisive: with skewed data,
  // static assignment cannot steal, so the data-heavy side sets the runtime.
  AsciiTable skew({"data split", "pooling (paper)", "static pre-assignment",
                   "pooling advantage"});
  for (double fraction : fractions) {
    const auto pooled = run_knn(0.03, false, fraction);
    const auto fixed = run_knn(0.03, true, fraction);
    skew.add_row({AsciiTable::pct(fraction, 0) + " local",
                  AsciiTable::num(pooled.total_time, 2),
                  AsciiTable::num(fixed.total_time, 2),
                  AsciiTable::pct(fixed.total_time / pooled.total_time - 1.0, 1)});
  }
  std::printf("%s\n", skew.render("Ablation — pooling vs static under data skew "
                                  "(knn, 3% jitter)")
                          .c_str());
  std::printf("cluster-level: without pooling there is no stealing — the S3-heavy\n"
              "side sets the runtime while the other cluster idles.\n\n");
  return 0;
}
