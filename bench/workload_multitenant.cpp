// Multi-tenant workload: arrival pattern x inter-job scheduling policy.
//
// Two tenants share one hybrid platform: "interactive" submits small jobs
// with a latency SLO (weight 4, high priority), "batch" submits 4x-larger
// jobs with no deadline (weight 1). The sweep crosses arrival shapes —
// steady Poisson vs synchronized bursts — with the four inter-job policies
// (FIFO / SJF run-to-completion, weighted fair share / priority with
// chunk-granular preemption) and reports what each tenant experienced:
// p50/p95 job latency, SLO hit rate, preemptions, and the tenant's share of
// the single whole-platform bill (attributed shares sum exactly to it).
//
// The headline: under bursty arrivals, FIFO head-of-line blocking wrecks
// the interactive tenant's p95 while fair share keeps it low by time-sharing
// cores at chunk granularity.
//
// Flags: --seed=N (arrival trace seed), --quick (CI smoke subset).
#include "paper_common.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/units.hpp"
#include "workload/workload_manager.hpp"

namespace {

using namespace cloudburst;
using namespace cloudburst::units;

struct Scenario {
  const char* name;
  workload::ArrivalTrace trace;
};

storage::DataLayout make_layout(std::uint64_t bytes, const cluster::Platform& platform) {
  storage::LayoutSpec spec;
  spec.total_bytes = bytes;
  spec.num_files = 8;
  spec.chunks_per_file = 2;
  spec.unit_bytes = 64;
  storage::DataLayout layout = storage::build_layout(spec);
  storage::assign_stores_by_fraction(layout, 0.5, platform.local_store_id(),
                                     platform.cloud_store_id());
  return layout;
}

workload::WorkloadResult run_workload(workload::SchedulingPolicy policy,
                                      const workload::ArrivalTrace& trace,
                                      std::size_t jobs, std::uint64_t seed) {
  cluster::Platform platform(cluster::PlatformSpec::paper_testbed(8, 8));

  middleware::RunOptions options;
  options.profile.name = "workload";
  options.profile.unit_bytes = 64;
  options.profile.bytes_per_second_per_core = MBps(4);
  options.profile.robj_bytes = KiB(64);
  options.random_seed = seed;

  workload::WorkloadOptions wopts;
  wopts.policy = policy;
  wopts.tenant_weights = {{"interactive", 4.0}, {"batch", 1.0}};

  workload::WorkloadManager manager(platform, wopts);
  for (std::size_t i = 0; i < jobs; ++i) {
    workload::JobSpec spec;
    const bool interactive = i % 2 == 0;
    spec.tenant = interactive ? "interactive" : "batch";
    spec.name = spec.tenant[0] + std::to_string(i + 1);
    spec.priority = interactive ? 10 : 0;
    spec.deadline_seconds = interactive ? 60.0 : 0.0;
    spec.layout = make_layout(interactive ? MiB(128) : MiB(512), platform);
    spec.options = options;
    manager.submit(std::move(spec), trace.at(i));
  }
  return manager.run();
}

/// Nearest-rank p95 of one tenant's job latencies.
double tenant_p95(const workload::WorkloadResult& result, const std::string& tenant) {
  std::vector<double> latencies;
  for (const auto& job : result.jobs) {
    if (job.tenant == tenant) latencies.push_back(job.latency_seconds());
  }
  if (latencies.empty()) return 0.0;
  std::sort(latencies.begin(), latencies.end());
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(0.95 * static_cast<double>(latencies.size())));
  if (rank == 0) rank = 1;
  return latencies[std::min(rank, latencies.size()) - 1];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cloudburst;

  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  const std::size_t jobs = args.quick ? 6 : 12;

  // Bursts of six jobs half a second apart (three interactive interleaved
  // with three batch): the head-of-line-blocking stress case for FIFO.
  const Scenario scenarios[] = {
      {"poisson", workload::ArrivalTrace::poisson(jobs, 0.05, args.seed)},
      {"bursty", workload::ArrivalTrace::bursty((jobs + 5) / 6, 6, 400.0, 0.5)},
  };
  const workload::SchedulingPolicy policies[] = {
      workload::SchedulingPolicy::Fifo, workload::SchedulingPolicy::Sjf,
      workload::SchedulingPolicy::FairShare, workload::SchedulingPolicy::Priority};

  double fifo_bursty_p95 = 0.0, fair_bursty_p95 = 0.0;

  AsciiTable table({"arrivals", "policy", "makespan", "p50 lat", "p95 lat", "int p95",
                    "SLO rate", "preempts", "interactive $", "batch $", "platform $"});
  for (const Scenario& scenario : scenarios) {
    for (workload::SchedulingPolicy policy : policies) {
      const auto result = run_workload(policy, scenario.trace, jobs, args.seed);

      // Per-tenant attribution must partition the platform bill exactly.
      double attributed = 0.0;
      for (const auto& job : result.jobs) {
        attributed += job.attributed_cost.instance_usd + job.attributed_cost.requests_usd +
                      job.attributed_cost.transfer_usd + job.attributed_cost.storage_usd;
      }
      const double platform_usd = result.platform_cost.total_usd();
      if (std::abs(attributed - platform_usd) > 1e-9) {
        std::fprintf(stderr, "attribution mismatch: %.12f vs %.12f\n", attributed,
                     platform_usd);
        return 1;
      }

      const double int_p95 = tenant_p95(result, "interactive");
      if (std::string(scenario.name) == "bursty") {
        if (policy == workload::SchedulingPolicy::Fifo) fifo_bursty_p95 = int_p95;
        if (policy == workload::SchedulingPolicy::FairShare) fair_bursty_p95 = int_p95;
      }
      const auto* interactive = result.tenant("interactive");
      const auto* batch = result.tenant("batch");
      table.add_row({scenario.name, workload::to_string(policy),
                     AsciiTable::num(result.makespan, 1),
                     AsciiTable::num(result.p50_latency_seconds, 1),
                     AsciiTable::num(result.p95_latency_seconds, 1),
                     AsciiTable::num(int_p95, 1),
                     AsciiTable::pct(result.slo_hit_rate, 0),
                     std::to_string(result.preemptions),
                     AsciiTable::num(interactive ? interactive->attributed_cost.total_usd() : 0.0, 4),
                     AsciiTable::num(batch ? batch->attributed_cost.total_usd() : 0.0, 4),
                     AsciiTable::num(platform_usd, 4)});
    }
    table.add_separator();
  }
  std::printf("%s\n", table.render("Multi-tenant workload — arrival pattern x "
                                   "inter-job policy (interactive: small jobs, 60 s "
                                   "SLO, weight 4; batch: 4x jobs, weight 1)")
                          .c_str());
  std::printf(
      "finding: bursty interactive p95 = %.1f s under FIFO vs %.1f s under fair "
      "share (%.1fx):\nrun-to-completion queueing behind 4x batch jobs dominates "
      "the interactive tail;\nchunk-granular fair sharing admits everyone and the "
      "interactive tenant's weight\nkeeps its jobs fast. Every row's per-tenant "
      "dollars sum exactly to the single\nplatform bill.\n",
      fifo_bursty_p95, fair_bursty_p95,
      fair_bursty_p95 > 0.0 ? fifo_bursty_p95 / fair_bursty_p95 : 0.0);
  return fair_bursty_p95 < fifo_bursty_p95 ? 0 : 1;
}
