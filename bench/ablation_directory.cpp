// Ablation: dynamic control plane — shared node pool vs per-job elastic
// controllers, and mid-run capacity arrival / retirement.
//
// Two scenarios:
//
//   A. Bursty multi-tenant arrival — two tenants submit two bursts of jobs
//      with a long quiet gap between them. The baseline gives every job its
//      own elastic controller (one warm instance, boots the rest on demand);
//      the pool arm routes the same jobs through the WorkloadManager's
//      shared node pool (directory-backed, lease-granular billing, idle
//      reap). The pool must strictly beat the per-job controllers on BOTH
//      boot-window idle time (warm nodes are re-leased, not re-booted) and
//      dollars (idle reap stops billing across the gap; per-minute quanta
//      meter the lease windows).
//
//   B. Mid-run capacity arrival and retirement — a platform with two
//      offline cloud nodes runs a concurrent pooled workload; mid-run a
//      node is drained *across jobs* (directory begin_node_retirement) and
//      the offline capacity registers and serves later jobs. Every job must
//      finish, the retirement must complete, the late capacity must get
//      leases, and the cross-job drain must lose zero completed work
//      (no chunk is re-executed).
//
// Emits BENCH_directory.json and exits non-zero when a self-check fails.
#include "paper_common.hpp"

#include <cinttypes>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "cost/pricing.hpp"
#include "directory/platform_directory.hpp"
#include "storage/data_layout.hpp"
#include "trace/trace.hpp"
#include "workload/workload_manager.hpp"

namespace {

using namespace cloudburst;
using namespace cloudburst::units;

middleware::RunOptions burst_job_options(std::uint64_t seed) {
  middleware::RunOptions options;
  options.profile.name = "directory";
  options.profile.unit_bytes = 64;
  options.profile.bytes_per_second_per_core = MBps(1);  // compute-bound
  options.profile.robj_bytes = KiB(64);
  options.random_seed = seed;
  options.reduction_tree = false;  // both pool and elastic modes require it
  return options;
}

storage::DataLayout burst_layout(cluster::Platform& platform, bool quick) {
  storage::LayoutSpec spec;
  spec.total_bytes = quick ? MiB(96) : MiB(384);
  spec.num_files = quick ? 12 : 48;
  spec.chunks_per_file = 2;
  spec.unit_bytes = 64;
  storage::DataLayout layout = storage::build_layout(spec);
  storage::assign_stores_by_fraction(layout, 0.5, platform.local_store_id(),
                                     platform.cloud_store_id());
  return layout;
}

// --- scenario A: bursty multi-tenant arrival ---------------------------------

struct BurstOutcome {
  double boot_wait_seconds = 0.0;  ///< node-seconds rented but still booting
  double platform_usd = 0.0;
  double makespan = 0.0;
  std::uint32_t activations = 0;  ///< baseline: per-job controller boots
  workload::NodePool::Stats pool;
};

std::vector<double> burst_arrivals(bool quick) {
  // Two bursts of three jobs, a long quiet gap between them: the shape that
  // punishes controllers which re-boot (and keep billing) per job.
  const double gap = quick ? 1200.0 : 2400.0;
  workload::ArrivalTrace trace = workload::ArrivalTrace::bursty(
      /*bursts=*/2, /*jobs_per_burst=*/3, /*burst_gap_seconds=*/gap,
      /*intra_gap_seconds=*/2.0);
  return trace.times;
}

BurstOutcome run_burst(bool pooled, bool quick, std::uint64_t seed) {
  cluster::Platform platform(cluster::PlatformSpec::paper_testbed(8, 8));
  const storage::DataLayout layout = burst_layout(platform, quick);
  const std::size_t cloud_nodes = platform.nodes(cluster::kCloudSite).size();
  const double boot_seconds = 60.0;

  directory::PlatformDirectory dir(platform);
  if (pooled) dir.bootstrap();

  trace::Tracer tracer;
  workload::WorkloadOptions wopts;
  wopts.policy = workload::SchedulingPolicy::Fifo;
  wopts.tracer = &tracer;
  // Lease-granular billing for both arms: per-minute quanta, 2011 rates.
  wopts.pricing = cost::CloudPricing::aws_2011_per_minute();
  if (pooled) {
    wopts.directory = &dir;
    wopts.pool.enabled = true;
    wopts.pool.boot_seconds = boot_seconds;
    wopts.pool.idle_reap_seconds = 120.0;
  }
  workload::WorkloadManager manager(platform, wopts);

  const std::vector<double> arrivals = burst_arrivals(quick);
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    workload::JobSpec job;
    job.name = "j" + std::to_string(i + 1);
    job.tenant = i % 2 == 0 ? "analytics" : "reports";
    job.layout = layout;
    job.options = burst_job_options(seed + i);
    if (!pooled) {
      // Per-job controller: one warm instance, boots the rest on demand.
      job.options.elastic.enabled = true;
      job.options.elastic.deadline_seconds = 1.0;  // always behind: burst now
      job.options.elastic.initial_cloud_nodes = 1;
      job.options.elastic.check_interval_seconds = 5.0;
      job.options.elastic.boot_seconds = boot_seconds;
      job.options.elastic.activation_step =
          static_cast<std::uint32_t>(cloud_nodes);
    }
    manager.submit(std::move(job), arrivals[i]);
  }
  const workload::WorkloadResult result = manager.run();

  BurstOutcome out;
  out.platform_usd = result.platform_cost.total_usd();
  out.makespan = result.makespan;
  out.activations = result.elastic_activations;
  out.pool = result.pool;
  // Boot-window idle time: rented-but-booting node-seconds. The pool reports
  // it per lease; a per-job controller pays one boot window per activation.
  out.boot_wait_seconds =
      pooled ? result.pool.boot_wait_seconds
             : static_cast<double>(result.elastic_activations) * boot_seconds;
  return out;
}

// --- scenario B: capacity arrival + cross-job retirement ---------------------

struct DynamicOutcome {
  bool completed = false;        ///< every job finished
  bool retired = false;          ///< the drained node left the directory
  std::uint32_t jobs = 0;
  std::uint32_t chunks_reexecuted = 0;
  std::uint64_t bytes_reexecuted = 0;
  std::uint32_t nodes_vacated = 0;
  std::uint64_t new_node_leases = 0;  ///< leases granted on late capacity
  double makespan = 0.0;
};

DynamicOutcome run_dynamic(bool quick, std::uint64_t seed) {
  cluster::PlatformSpec spec = cluster::PlatformSpec::paper_testbed(8, 8);
  // Two extra cloud nodes exist in the fabric but are offline at bootstrap —
  // they join the platform mid-run through the directory.
  cluster::NodeSpec late = spec.cloud().nodes.back();
  late.offline = true;
  spec.cloud().nodes.push_back(late);
  spec.cloud().nodes.push_back(late);
  cluster::Platform platform(spec);
  const auto& cloud = platform.nodes(cluster::kCloudSite);
  const std::uint32_t first_late =
      static_cast<std::uint32_t>(cloud.size()) - 2;

  directory::PlatformDirectory dir(platform);
  trace::Tracer tracer;
  dir.set_tracer(&tracer);
  dir.bootstrap();

  workload::WorkloadOptions wopts;
  wopts.policy = workload::SchedulingPolicy::FairShare;
  wopts.tracer = &tracer;
  wopts.pricing = cost::CloudPricing::aws_2011_per_minute();
  wopts.directory = &dir;
  wopts.pool.enabled = true;
  wopts.pool.boot_seconds = 30.0;
  workload::WorkloadManager manager(platform, wopts);

  // Fixed size in both modes (the scenario is fast either way); slow cores
  // so the first wave is still computing when the t=45 s drain lands.
  storage::LayoutSpec lspec;
  lspec.total_bytes = MiB(96);
  lspec.num_files = 24;
  lspec.chunks_per_file = 2;
  lspec.unit_bytes = 64;
  storage::DataLayout layout = storage::build_layout(lspec);
  storage::assign_stores_by_fraction(layout, 0.5, platform.local_store_id(),
                                     platform.cloud_store_id());
  (void)quick;
  const double second_wave = 120.0;
  for (std::size_t i = 0; i < 4; ++i) {
    workload::JobSpec job;
    job.name = "d" + std::to_string(i + 1);
    job.tenant = i % 2 == 0 ? "analytics" : "reports";
    job.layout = layout;
    job.options = burst_job_options(seed + 100 + i);
    job.options.profile.bytes_per_second_per_core = KiB(128);
    manager.submit(std::move(job), i < 2 ? 0.0 : second_wave);
  }

  // t=45 s: retire a node the first-wave jobs are computing on. The manager
  // drains it across both jobs; the drain must lose no completed work.
  platform.sim().schedule(des::from_seconds(45.0), [&dir] {
    dir.begin_node_retirement(cluster::kCloudSite, 0);
  });
  // t=90 s: the offline capacity arrives; second-wave jobs lease it.
  platform.sim().schedule(des::from_seconds(90.0), [&dir, first_late] {
    dir.register_node(cluster::kCloudSite, first_late);
    dir.register_node(cluster::kCloudSite, first_late + 1);
  });

  const workload::WorkloadResult result = manager.run();

  DynamicOutcome out;
  out.completed = true;  // run() throws on a deadlocked workload
  out.jobs = static_cast<std::uint32_t>(result.jobs.size());
  out.makespan = result.makespan;
  out.retired = dir.node_state(cluster::kCloudSite, 0) ==
                directory::ServiceState::Retired;
  for (const auto& job : result.jobs) {
    out.chunks_reexecuted += job.run.lifecycle.chunks_reexecuted;
    out.bytes_reexecuted += job.run.lifecycle.bytes_reexecuted;
    out.nodes_vacated += job.run.lifecycle.nodes_vacated;
  }
  for (const auto& e : tracer.events()) {
    if (e.kind != trace::EventKind::LeaseGranted) continue;
    if (e.actor == cloud[first_late].name || e.actor == cloud[first_late + 1].name) {
      ++out.new_node_leases;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);

  const BurstOutcome baseline = run_burst(/*pooled=*/false, args.quick, args.seed);
  const BurstOutcome pooled = run_burst(/*pooled=*/true, args.quick, args.seed);
  const DynamicOutcome dynamic = run_dynamic(args.quick, args.seed);

  const double wait_saving =
      baseline.boot_wait_seconds > 0.0
          ? 1.0 - pooled.boot_wait_seconds / baseline.boot_wait_seconds
          : 0.0;
  const double usd_saving = baseline.platform_usd > 0.0
                                ? 1.0 - pooled.platform_usd / baseline.platform_usd
                                : 0.0;

  AsciiTable table({"config", "boot wait s", "platform $", "makespan",
                    "cold boots", "warm leases", "reaps"});
  table.add_row({"A: per-job controllers",
                 AsciiTable::num(baseline.boot_wait_seconds, 0),
                 AsciiTable::num(baseline.platform_usd, 3),
                 AsciiTable::num(baseline.makespan, 1),
                 std::to_string(baseline.activations), "-", "-"});
  table.add_row({"A: shared node pool",
                 AsciiTable::num(pooled.boot_wait_seconds, 0),
                 AsciiTable::num(pooled.platform_usd, 3),
                 AsciiTable::num(pooled.makespan, 1),
                 std::to_string(pooled.pool.cold_boots),
                 std::to_string(pooled.pool.warm_leases),
                 std::to_string(pooled.pool.reaps)});
  table.add_row({"B: arrive+retire mid-run", "-", "-",
                 AsciiTable::num(dynamic.makespan, 1), "-",
                 std::to_string(dynamic.new_node_leases),
                 std::to_string(dynamic.nodes_vacated)});
  std::printf("%s\n",
              table.render("Ablation — dynamic control plane (A: shared pool vs "
                           "per-job elastic controllers under bursty arrival; "
                           "B: mid-run capacity arrival + cross-job retirement)")
                  .c_str());

  const char* out_path = "BENCH_directory.json";
  if (std::FILE* out = std::fopen(out_path, "w")) {
    std::fprintf(
        out,
        "{\n"
        "  \"bench\": \"ablation_directory\",\n"
        "  \"mode\": \"%s\",\n"
        "  \"seed\": %" PRIu64 ",\n"
        "  \"burst\": {\n"
        "    \"baseline\": {\"boot_wait_seconds\": %.1f, \"platform_usd\": %.4f,\n"
        "      \"makespan\": %.3f, \"activations\": %u},\n"
        "    \"pool\": {\"boot_wait_seconds\": %.1f, \"platform_usd\": %.4f,\n"
        "      \"makespan\": %.3f, \"cold_boots\": %u, \"warm_leases\": %u,\n"
        "      \"reaps\": %u},\n"
        "    \"savings\": {\"boot_wait_fraction\": %.4f, \"usd_fraction\": %.4f}\n"
        "  },\n"
        "  \"dynamic\": {\"jobs\": %u, \"chunks_reexecuted\": %u,\n"
        "    \"bytes_reexecuted\": %" PRIu64 ", \"nodes_vacated\": %u,\n"
        "    \"new_node_leases\": %" PRIu64 ", \"retired\": %s,\n"
        "    \"makespan\": %.3f}\n"
        "}\n",
        args.quick ? "quick" : "full", args.seed, baseline.boot_wait_seconds,
        baseline.platform_usd, baseline.makespan, baseline.activations,
        pooled.boot_wait_seconds, pooled.platform_usd, pooled.makespan,
        pooled.pool.cold_boots, pooled.pool.warm_leases, pooled.pool.reaps,
        wait_saving, usd_saving, dynamic.jobs, dynamic.chunks_reexecuted,
        dynamic.bytes_reexecuted, dynamic.nodes_vacated,
        dynamic.new_node_leases, dynamic.retired ? "true" : "false",
        dynamic.makespan);
    std::fclose(out);
    std::printf("wrote %s\n", out_path);
  } else {
    std::fprintf(stderr, "ablation_directory: cannot write %s\n", out_path);
    return 1;
  }

  // Self-check A: the shared pool must strictly beat per-job controllers on
  // boot-window idle time AND dollars, and must actually have shared (warm
  // leases) and reaped (idle gap) to do it.
  if (pooled.boot_wait_seconds >= baseline.boot_wait_seconds) {
    std::fprintf(stderr,
                 "ablation_directory: pool boot wait %.0f s did not beat "
                 "per-job controllers (%.0f s)\n",
                 pooled.boot_wait_seconds, baseline.boot_wait_seconds);
    return 1;
  }
  if (pooled.platform_usd >= baseline.platform_usd) {
    std::fprintf(stderr,
                 "ablation_directory: pool cost $%.4f did not beat per-job "
                 "controllers ($%.4f)\n",
                 pooled.platform_usd, baseline.platform_usd);
    return 1;
  }
  if (pooled.pool.warm_leases == 0) {
    std::fprintf(stderr, "ablation_directory: pool never re-leased a warm node\n");
    return 1;
  }
  if (pooled.pool.reaps == 0) {
    std::fprintf(stderr, "ablation_directory: pool never reaped an idle node\n");
    return 1;
  }

  // Self-check B: the mid-run scenario must complete with the retirement
  // settled, the late capacity actually leased, and zero completed work lost.
  if (!dynamic.completed || dynamic.jobs != 4) {
    std::fprintf(stderr, "ablation_directory: dynamic scenario did not finish\n");
    return 1;
  }
  if (!dynamic.retired) {
    std::fprintf(stderr,
                 "ablation_directory: cross-job drain never completed the "
                 "node retirement\n");
    return 1;
  }
  if (dynamic.nodes_vacated == 0) {
    std::fprintf(stderr, "ablation_directory: no job vacated the drained node\n");
    return 1;
  }
  if (dynamic.chunks_reexecuted != 0 || dynamic.bytes_reexecuted != 0) {
    std::fprintf(stderr,
                 "ablation_directory: cross-job drain lost completed work "
                 "(%u chunks / %" PRIu64 " bytes re-executed)\n",
                 dynamic.chunks_reexecuted, dynamic.bytes_reexecuted);
    return 1;
  }
  if (dynamic.new_node_leases == 0) {
    std::fprintf(stderr,
                 "ablation_directory: mid-run registered capacity was never "
                 "leased\n");
    return 1;
  }
  return 0;
}
