// Ablation: WAN bandwidth sweep — the bursting feasibility frontier.
//
// The paper's motivation notes that "the available bandwidth to cloud-based
// storage is quite limited today" but expects dedicated links to close the
// gap. This sweep shows how the hybrid slowdown of each application depends
// on the organization <-> cloud bandwidth (env-17/83, the steal-heavy skew).
#include "paper_common.hpp"

#include "common/units.hpp"

int main(int argc, char** argv) {
  using namespace cloudburst;
  using namespace cloudburst::units;
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);

  AsciiTable table({"WAN", "knn slowdown", "kmeans slowdown", "pagerank slowdown"});
  std::vector<double> sweep = {100.0, 250.0, 500.0, 1000.0, 2000.0, 5000.0, 10000.0};
  if (args.quick) sweep = {100.0, 1000.0};
  for (double mbit : sweep) {
    std::vector<std::string> row = {AsciiTable::num(mbit, 0) + " Mb/s"};
    for (bench::PaperApp app :
         {bench::PaperApp::Knn, bench::PaperApp::Kmeans, bench::PaperApp::PageRank}) {
      auto tweak = [&](cluster::PlatformSpec& spec, middleware::RunOptions& o) {
        spec.wan_bandwidth = mbps(mbit);
        o.random_seed = args.seed;
      };
      const auto base = apps::run_env(apps::Env::Local, app, tweak);
      const auto hybrid = apps::run_env(apps::Env::Hybrid1783, app, tweak);
      row.push_back(AsciiTable::pct(hybrid.total_time / base.total_time - 1.0, 1));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.render("Ablation — WAN bandwidth vs hybrid slowdown "
                                   "(env-17/83)")
                          .c_str());
  return 0;
}
