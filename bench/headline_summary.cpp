// The paper's two headline numbers:
//  * average slowdown of cloud-bursting execution vs centralized processing
//    across all applications and hybrid data distributions (paper: 15.55%),
//  * average scaling efficiency per doubling of compute resources
//    (paper: 81%).
#include "paper_common.hpp"

int main() {
  using namespace cloudburst;

  double slowdown_sum = 0.0;
  int slowdown_n = 0;
  for (bench::PaperApp app :
       {bench::PaperApp::Knn, bench::PaperApp::Kmeans, bench::PaperApp::PageRank}) {
    const auto baseline = apps::run_env(apps::Env::Local, app);
    for (apps::Env env : apps::kHybridEnvs) {
      const auto result = apps::run_env(env, app);
      slowdown_sum += result.total_time / baseline.total_time - 1.0;
      ++slowdown_n;
    }
  }

  double efficiency_sum = 0.0;
  int efficiency_n = 0;
  for (bench::PaperApp app :
       {bench::PaperApp::Knn, bench::PaperApp::Kmeans, bench::PaperApp::PageRank}) {
    double previous = 0.0;
    for (unsigned cores : {4u, 8u, 16u, 32u}) {
      const auto result = apps::run_scalability(app, cores);
      if (previous > 0.0) {
        efficiency_sum += previous / (2.0 * result.total_time);
        ++efficiency_n;
      }
      previous = result.total_time;
    }
  }

  cloudburst::AsciiTable table({"metric", "paper", "this reproduction"});
  table.add_row({"avg hybrid slowdown vs centralized", "15.55%",
                 AsciiTable::pct(slowdown_sum / slowdown_n, 2)});
  table.add_row({"avg scaling efficiency per doubling", "81%",
                 AsciiTable::pct(efficiency_sum / efficiency_n, 1)});
  std::printf("%s\n", table.render("Headline results").c_str());
  return 0;
}
