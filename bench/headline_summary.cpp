// The paper's two headline numbers:
//  * average slowdown of cloud-bursting execution vs centralized processing
//    across all applications and hybrid data distributions (paper: 15.55%),
//  * average scaling efficiency per doubling of compute resources
//    (paper: 81%),
// plus the extension headline: what the site-local chunk cache does to
// retrieval time, cache hit rate, and S3 request count on iterative k-means
// (cache off for the paper rows — fidelity is byte-identical by default).
#include "cache/chunk_cache.hpp"
#include "common/units.hpp"
#include "middleware/iterative.hpp"
#include "paper_common.hpp"

int main() {
  using namespace cloudburst;
  using namespace cloudburst::units;

  double slowdown_sum = 0.0;
  int slowdown_n = 0;
  for (bench::PaperApp app :
       {bench::PaperApp::Knn, bench::PaperApp::Kmeans, bench::PaperApp::PageRank}) {
    const auto baseline = apps::run_env(apps::Env::Local, app);
    for (apps::Env env : apps::kHybridEnvs) {
      const auto result = apps::run_env(env, app);
      slowdown_sum += result.total_time / baseline.total_time - 1.0;
      ++slowdown_n;
    }
  }

  double efficiency_sum = 0.0;
  int efficiency_n = 0;
  for (bench::PaperApp app :
       {bench::PaperApp::Knn, bench::PaperApp::Kmeans, bench::PaperApp::PageRank}) {
    double previous = 0.0;
    for (unsigned cores : {4u, 8u, 16u, 32u}) {
      const auto result = apps::run_scalability(app, cores);
      if (previous > 0.0) {
        efficiency_sum += previous / (2.0 * result.total_time);
        ++efficiency_n;
      }
      previous = result.total_time;
    }
  }

  cloudburst::AsciiTable table({"metric", "paper", "this reproduction"});
  table.add_row({"avg hybrid slowdown vs centralized", "15.55%",
                 AsciiTable::pct(slowdown_sum / slowdown_n, 2)});
  table.add_row({"avg scaling efficiency per doubling", "81%",
                 AsciiTable::pct(efficiency_sum / efficiency_n, 1)});
  std::printf("%s\n", table.render("Headline results").c_str());

  // Extension: the site cache on 10-pass kmeans, env-cloud. Same request
  // with and without a fleet attached; the "off" row is the paper-fidelity
  // configuration.
  const auto layout = apps::paper_layout(apps::PaperApp::Kmeans, 0.0, 0, 1);
  const auto run_kmeans = [&layout](cache::CacheFleet* fleet) {
    middleware::IterativeRequest request;
    request.platform_spec = cluster::PlatformSpec::paper_testbed(0, 44);
    request.layout = &layout;
    request.options = apps::paper_run_options(apps::PaperApp::Kmeans);
    request.options.cache = fleet;
    request.iterations = 10;
    return run_iterative(std::move(request));
  };
  const auto cold = run_kmeans(nullptr);
  cache::CacheConfig cfg;
  cfg.capacity_bytes = GiB(16);
  cache::CacheFleet fleet(cfg);
  const auto warm = run_kmeans(&fleet);

  AsciiTable cache_table(
      {"site cache", "cache hit rate", "S3 GETs", "retrieval node-s", "exec time s"});
  cache_table.add_row({"off (paper fidelity)", "-", std::to_string(cold.s3_get_requests()),
                       AsciiTable::num(cold.total_retrieval_seconds(), 0),
                       AsciiTable::num(cold.total_seconds, 1)});
  cache_table.add_row({"lru 16G", AsciiTable::pct(warm.cache_hit_rate(), 1),
                       std::to_string(warm.s3_get_requests()),
                       AsciiTable::num(warm.total_retrieval_seconds(), 0),
                       AsciiTable::num(warm.total_seconds, 1)});
  std::printf("%s\n", cache_table
                          .render("Extension — site chunk cache on 10-pass kmeans, "
                                  "env-cloud (cache is off by default)")
                          .c_str());
  return 0;
}
