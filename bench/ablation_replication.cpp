// Ablation: chunk replication factor x placement policy.
//
// The WAN-heavy knn env-17/83 run (the local side exhausts its 17% data
// share and steals cloud chunks across the WAN) with the cloud object store
// failing 5% of GETs and hanging 1.25% of them for two minutes, under the
// standard backoff+timeout retry policy — the ablation_faults scenario on
// the environment where remote reads actually exist. Sweeps the replication
// factor and placement policy of a ReplicaSet attached to the run:
//   k=1         — primaries only; every stolen read crosses the WAN to the
//                 faulted store (the baseline the paper model implies);
//   k=2/k=3     — extra copies per chunk (clamped to the two stores of the
//                 paper testbed, so k=3 only differs on wider platforms);
//   cross-site  — copies spread across the other sites' stores up front;
//   same-site   — copies on the stores cheapest to reach from the primary;
//   hot-chunk   — no copies up front, chunks earn them from cache/prefetch
//                 hits (needs a cache fleet to generate hit signals).
// Reports the tradeoff the operator actually buys: replica storage dollars
// up, WAN egress dollars and remote-read p95 down. Emits
// BENCH_replication.json and self-checks that k>=2 cross-site strictly
// beats k=1 on remote-read p95 under the store faults.
#include "paper_common.hpp"

#include <algorithm>
#include <cinttypes>
#include <map>
#include <utility>

#include "cache/chunk_cache.hpp"
#include "common/units.hpp"
#include "cost/cost_model.hpp"
#include "middleware/runtime.hpp"
#include "replica/replica_set.hpp"
#include "trace/trace.hpp"

namespace {

using namespace cloudburst;
using namespace cloudburst::units;

struct Config {
  const char* name;
  unsigned k;
  replica::PlacementPolicy placement;
  bool cache = false;  ///< hot-chunk needs hit signals to promote anything
};

struct Outcome {
  middleware::RunResult result;
  cost::CostReport cost;
  std::size_t remote_reads = 0;
  double remote_p95 = 0.0;
};

/// p95 of remote-read durations: FetchStart/FetchEnd pairs whose store is
/// not the reading node's own site store (paper testbed: "local-*" nodes own
/// store 0, "cloud-*" nodes store 1).
void remote_read_stats(const trace::Tracer& tracer, Outcome& out) {
  std::map<std::pair<std::string, std::uint64_t>, std::pair<double, bool>> open;
  std::vector<double> remote;
  for (const auto& e : tracer.events()) {
    if (e.kind == trace::EventKind::FetchStart) {
      const storage::StoreId affinity = e.actor.rfind("local", 0) == 0 ? 0 : 1;
      open[{e.actor, e.a}] = {e.t, e.b != affinity};
    } else if (e.kind == trace::EventKind::FetchEnd) {
      const auto it = open.find({e.actor, e.a});
      if (it == open.end()) continue;
      if (it->second.second) remote.push_back(e.t - it->second.first);
      open.erase(it);
    }
  }
  out.remote_reads = remote.size();
  if (remote.empty()) return;
  std::sort(remote.begin(), remote.end());
  out.remote_p95 = remote[std::min(
      remote.size() - 1, static_cast<std::size_t>(0.95 * static_cast<double>(remote.size())))];
}

Outcome run_config(const Config& config, std::uint64_t seed) {
  const apps::EnvConfig env = apps::env_config(apps::Env::Hybrid1783, apps::PaperApp::Knn);
  cluster::PlatformSpec spec =
      cluster::PlatformSpec::paper_testbed(env.local_cores, env.cloud_cores);
  auto& fault = spec.sites[cluster::kCloudSite].store->fault;
  fault.fail_probability = 0.05;
  fault.hang_probability = 0.05 / 4.0;
  fault.hang_seconds = 120.0;

  middleware::RunOptions options = apps::paper_run_options(apps::PaperApp::Knn);
  options.retry.max_attempts = 3;
  options.retry.backoff_base_seconds = 0.05;
  options.retry.backoff_multiplier = 2.0;
  options.retry.attempt_timeout_seconds = 30.0;
  options.random_seed = seed;

  replica::ReplicationConfig rcfg;
  rcfg.replication_factor = config.k;
  rcfg.placement = config.placement;
  rcfg.repair_interval_seconds = 1.0;
  replica::ReplicaSet set{rcfg};
  options.replication = &set;

  cache::CacheConfig ccfg;
  ccfg.capacity_bytes = GiB(4);
  cache::CacheFleet fleet(ccfg);
  if (config.cache) options.cache = &fleet;

  trace::Tracer tracer;
  options.tracer = &tracer;

  cluster::Platform platform(spec);
  const storage::DataLayout layout =
      apps::paper_layout(apps::PaperApp::Knn, env.local_data_fraction,
                         platform.local_store_id(), platform.cloud_store_id());

  Outcome out;
  out.result = middleware::run_distributed(platform, layout, options);
  out.cost = cost::price_run(out.result, platform, layout, options,
                             cost::CloudPricing::aws_2011());
  remote_read_stats(tracer, out);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);

  std::vector<Config> configs = {
      {"k=1 (primaries only)", 1, replica::PlacementPolicy::CrossSite},
      {"k=2 cross-site", 2, replica::PlacementPolicy::CrossSite},
      {"k=2 same-site", 2, replica::PlacementPolicy::SameSite},
      {"k=2 hot-chunk", 2, replica::PlacementPolicy::HotChunk, /*cache=*/true},
      {"k=3 cross-site", 3, replica::PlacementPolicy::CrossSite},
  };
  if (args.quick) configs.resize(2);  // k=1 baseline + k=2 cross-site self-check

  AsciiTable table({"config", "exec time", "remote reads", "remote p95", "repl created",
                    "lost/repaired", "storage µ$", "egress $", "total $"});
  std::vector<Outcome> outcomes;
  for (const Config& config : configs) {
    outcomes.push_back(run_config(config, args.seed));
    const Outcome& o = outcomes.back();
    table.add_row({config.name, AsciiTable::num(o.result.total_time, 2),
                   std::to_string(o.remote_reads), AsciiTable::num(o.remote_p95, 2),
                   std::to_string(o.result.replica.replicas_created),
                   std::to_string(o.result.replica.replicas_lost) + "/" +
                       std::to_string(o.result.replica.replicas_repaired),
                   AsciiTable::num(o.cost.storage_usd * 1e6, 2),
                   AsciiTable::num(o.cost.transfer_usd, 4),
                   AsciiTable::num(o.cost.total_usd(), 3)});
  }
  std::printf("%s\n",
              table.render("Ablation — replication factor x placement (knn env-17/83, "
                           "5% faulty cloud store; storage $ buys down egress $ + p95)")
                  .c_str());

  const char* out_path = "BENCH_replication.json";
  if (std::FILE* out = std::fopen(out_path, "w")) {
    std::fprintf(out,
                 "{\n"
                 "  \"bench\": \"ablation_replication\",\n"
                 "  \"mode\": \"%s\",\n"
                 "  \"seed\": %" PRIu64 ",\n"
                 "  \"configs\": [\n",
                 args.quick ? "quick" : "full", args.seed);
    for (std::size_t i = 0; i < configs.size(); ++i) {
      const Outcome& o = outcomes[i];
      std::fprintf(out,
                   "    {\"name\": \"%s\", \"k\": %u, \"placement\": \"%s\",\n"
                   "     \"exec_seconds\": %.6f, \"remote_reads\": %zu,\n"
                   "     \"remote_read_p95_seconds\": %.6f,\n"
                   "     \"replicas_created\": %u, \"replicas_lost\": %u,\n"
                   "     \"replicas_repaired\": %u, \"repair_bytes\": %" PRIu64 ",\n"
                   "     \"storage_usd\": %.6f, \"egress_usd\": %.6f,\n"
                   "     \"total_usd\": %.6f}%s\n",
                   configs[i].name, configs[i].k, to_string(configs[i].placement),
                   o.result.total_time, o.remote_reads, o.remote_p95,
                   o.result.replica.replicas_created, o.result.replica.replicas_lost,
                   o.result.replica.replicas_repaired, o.result.replica.repair_bytes,
                   o.cost.storage_usd, o.cost.transfer_usd, o.cost.total_usd(),
                   i + 1 < configs.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", out_path);
  } else {
    std::fprintf(stderr, "ablation_replication: cannot write %s\n", out_path);
    return 1;
  }

  // Self-check: the headline claim must hold — with the cloud store faulted,
  // k>=2 cross-site replication strictly improves remote-read p95 over k=1
  // (whose stolen reads have no alternative copy to fail over to). The
  // baseline must actually have remote reads for the comparison to mean
  // anything; replicated storage must also cost more than the baseline's
  // (no free copies).
  const Outcome& k1 = outcomes[0];
  const Outcome& k2 = outcomes[1];
  if (k1.remote_reads == 0 || k1.remote_p95 <= 0.0) {
    std::fprintf(stderr,
                 "ablation_replication: k=1 run had no remote reads — scenario "
                 "regression?\n");
    return 1;
  }
  if (k2.remote_p95 >= k1.remote_p95) {
    std::fprintf(stderr,
                 "ablation_replication: k=2 cross-site remote-read p95 (%.3f s) did "
                 "not beat k=1 (%.3f s)\n",
                 k2.remote_p95, k1.remote_p95);
    return 1;
  }
  if (k2.cost.storage_usd <= k1.cost.storage_usd) {
    std::fprintf(stderr,
                 "ablation_replication: replica copies did not show up on the "
                 "storage bill\n");
    return 1;
  }
  return 0;
}
