// Extension bench: N-site topology — a local cluster bursting into TWO
// cloud providers at once.
//
// Paper §II argues the framework applies when "the data and/or processing
// power is spread across two different cloud providers"; the N-site platform
// drops the two-sided restriction entirely. Here the dataset is split three
// ways (local disk + two object stores) and the local cluster bursts into
// both providers simultaneously: three masters pull from one global job
// pool, stealing across any remote store with the per-store endgame reserve.
#include "paper_common.hpp"

#include "cache/chunk_cache.hpp"
#include "common/units.hpp"
#include "cost/cost_model.hpp"
#include "middleware/runtime.hpp"
#include "storage/data_layout.hpp"

namespace {

using namespace cloudburst;
using namespace cloudburst::units;

cluster::PlatformSpec three_site_spec() {
  cluster::PlatformSpec spec;
  spec.sites.push_back(cluster::PlatformSpec::paper_local_site(16));
  spec.sites.push_back(cluster::PlatformSpec::paper_cloud_site(16, "cloudA"));
  spec.sites.push_back(cluster::PlatformSpec::paper_cloud_site(16, "cloudB"));
  spec.wan_bandwidth = MBps(125);
  spec.wan_latency = des::from_seconds(ms(25));
  // The providers talk to each other over the public internet, not the
  // dedicated local uplink.
  spec.set_wan(1, 2, MBps(80), des::from_seconds(ms(40)));
  spec.node_speed_jitter = 0.03;
  return spec;
}

struct ThreeSiteRun {
  middleware::RunResult result;
  cost::CostReport cost;
};

ThreeSiteRun run_three_sites(bench::PaperApp app, const std::vector<double>& weights,
                             cache::CacheFleet* fleet = nullptr) {
  cluster::Platform platform(three_site_spec());
  storage::DataLayout layout =
      apps::paper_layout(app, 1.0, platform.local_store_id(), platform.cloud_store_id());
  assign_stores_by_weights(layout, weights,
                           {platform.store_of_cluster(0), platform.store_of_cluster(1),
                            platform.store_of_cluster(2)});
  middleware::RunOptions options = apps::paper_run_options(app);
  options.cache = fleet;
  ThreeSiteRun out{middleware::run_distributed(platform, layout, options), {}};
  out.cost = cost::price_run(out.result, platform, layout, options,
                             cost::CloudPricing::aws_2011());
  return out;
}

std::string split_label(const std::vector<double>& weights) {
  std::string s;
  for (double w : weights) {
    if (!s.empty()) s += "/";
    s += AsciiTable::pct(w, 0);
  }
  return s;
}

}  // namespace

int main() {
  using namespace cloudburst;

  const std::vector<std::vector<double>> splits = {
      {1.0 / 3, 1.0 / 3, 1.0 / 3},  // evenly spread
      {2.0 / 3, 1.0 / 6, 1.0 / 6},  // mostly on-premises
      {0.0, 0.5, 0.5},              // all data already in the clouds
  };

  AsciiTable table({"app", "split L/A/B", "exec time", "site", "processing", "retrieval",
                    "sync", "jobs (local+stolen)", "S3 GETs", "hit rate", "cost"});
  for (bench::PaperApp app :
       {bench::PaperApp::Knn, bench::PaperApp::Kmeans, bench::PaperApp::PageRank}) {
    for (const auto& weights : splits) {
      const auto run = run_three_sites(app, weights);
      bool first_row = true;
      for (const auto& c : run.result.clusters) {
        table.add_row(
            {first_row ? apps::to_string(app) : "", first_row ? split_label(weights) : "",
             first_row ? AsciiTable::num(run.result.total_time, 1) : "", c.name,
             AsciiTable::num(c.processing, 1), AsciiTable::num(c.retrieval, 1),
             AsciiTable::num(c.sync, 1),
             std::to_string(c.jobs_local) + "+" + std::to_string(c.jobs_stolen),
             first_row ? std::to_string(run.result.s3_get_requests) : "",
             first_row ? "-" : "",  // no site cache attached in the base sweep
             first_row ? "$" + AsciiTable::num(run.cost.total_usd(), 2) : ""});
        first_row = false;
      }
      table.add_separator();
    }
  }
  std::printf("%s\n",
              table.render("Extension — three sites (16-core local cluster bursting "
                           "into two 16-core cloud providers, data split three ways)")
                  .c_str());

  // Site caches in the 3-site burst: run the even split twice on one fleet —
  // the second run re-reads every remote chunk from the site caches, cutting
  // both providers' GET bills and the cross-provider egress.
  AsciiTable warm_table(
      {"app", "run", "exec time", "S3 GETs", "hit rate", "cost"});
  for (bench::PaperApp app : {bench::PaperApp::Knn, bench::PaperApp::Kmeans}) {
    cache::CacheConfig cfg;
    cfg.capacity_bytes = units::GiB(16);
    cache::CacheFleet fleet(cfg);
    const auto cold = run_three_sites(app, splits[0], &fleet);
    const auto warm = run_three_sites(app, splits[0], &fleet);
    warm_table.add_row({apps::to_string(app), "cold",
                        AsciiTable::num(cold.result.total_time, 1),
                        std::to_string(cold.result.s3_get_requests),
                        AsciiTable::pct(cold.result.cache_hit_rate(), 0),
                        "$" + AsciiTable::num(cold.cost.total_usd(), 2)});
    warm_table.add_row({"", "warm", AsciiTable::num(warm.result.total_time, 1),
                        std::to_string(warm.result.s3_get_requests),
                        AsciiTable::pct(warm.result.cache_hit_rate(), 0),
                        "$" + AsciiTable::num(warm.cost.total_usd(), 2)});
    warm_table.add_separator();
  }
  std::printf("%s\n", warm_table
                          .render("Extension — 16G site caches on the even split "
                                  "(cold fill, then a warm re-run)")
                          .c_str());
  return 0;
}
