// Extension bench: iterative applications on the hybrid cloud.
//
// kmeans and pagerank run many passes; between passes the updated reduction
// object must be broadcast from the head back to every slave. For pagerank's
// large robj that broadcast crosses the WAN each iteration — a recurring
// cost single-pass analyses miss. This bench reports per-pass compute vs
// broadcast and the share the broadcast takes of an N-pass job.
#include "paper_common.hpp"

#include "common/units.hpp"
#include "middleware/iterative.hpp"

int main() {
  using namespace cloudburst;

  AsciiTable table({"app", "robj", "pass compute", "pass broadcast", "10-pass total",
                    "broadcast share"});
  for (bench::PaperApp app : {bench::PaperApp::Kmeans, bench::PaperApp::PageRank}) {
    middleware::IterativeRequest request;
    request.platform_spec = cluster::PlatformSpec::paper_testbed(16, 16);
    const auto layout = apps::paper_layout(app, 0.5, 0, 1);
    request.layout = &layout;
    request.options = apps::paper_run_options(app);
    request.iterations = 10;

    const auto result = middleware::run_iterative(std::move(request));
    const double pass_compute = result.compute_seconds / 10.0;
    const double pass_broadcast = result.broadcast_seconds / 9.0;
    table.add_row(
        {apps::to_string(app),
         cloudburst::units::format_bytes(apps::paper_profile(app).robj_bytes),
         AsciiTable::num(pass_compute, 1), AsciiTable::num(pass_broadcast, 2),
         AsciiTable::num(result.total_seconds, 1),
         AsciiTable::pct(result.broadcast_seconds / result.total_seconds, 1)});
  }
  std::printf("%s\n",
              table.render("Extension — iterative execution on env-50/50 "
                           "(10 passes; robj broadcast between passes)")
                  .c_str());
  return 0;
}
