#include "directory/platform_directory.hpp"

#include <algorithm>
#include <stdexcept>

namespace cloudburst::directory {

PlatformDirectory::PlatformDirectory(cluster::Platform& platform)
    : platform_(platform) {
  nodes_.resize(platform_.cluster_count());
  for (cluster::ClusterId site = 0; site < nodes_.size(); ++site) {
    nodes_[site].resize(platform_.nodes(site).size());
  }
  stores_.assign(platform_.store_count(), ServiceState::Absent);
  sites_.assign(platform_.cluster_count(), ServiceState::Absent);
}

double PlatformDirectory::now_seconds() const {
  return des::to_seconds(platform_.sim().now());
}

void PlatformDirectory::trace(trace::EventKind kind, const std::string& actor,
                              cluster::ClusterId site, ServiceKind service) {
  if (tracer_) {
    tracer_->record(now_seconds(), kind, actor, site,
                    static_cast<std::uint64_t>(service));
  }
}

void PlatformDirectory::emit(const DirectoryEvent& event) {
  // Snapshot: a watcher may unwatch (or watch) from inside its callback.
  const auto snapshot = watchers_;
  for (const auto& [id, fn] : snapshot) {
    bool still_subscribed = false;
    for (const auto& [live_id, live_fn] : watchers_) {
      if (live_id == id) { still_subscribed = true; break; }
    }
    if (still_subscribed && fn) fn(event);
  }
}

PlatformDirectory::NodeEntry& PlatformDirectory::entry(cluster::ClusterId site,
                                                       std::uint32_t node_index) {
  if (site >= nodes_.size() || node_index >= nodes_[site].size()) {
    throw std::invalid_argument("PlatformDirectory: no such node in the platform spec");
  }
  return nodes_[site][node_index];
}

const PlatformDirectory::NodeEntry& PlatformDirectory::entry(
    cluster::ClusterId site, std::uint32_t node_index) const {
  if (site >= nodes_.size() || node_index >= nodes_[site].size()) {
    throw std::invalid_argument("PlatformDirectory: no such node in the platform spec");
  }
  return nodes_[site][node_index];
}

void PlatformDirectory::bootstrap() {
  const double at = now_seconds();
  for (cluster::ClusterId site = 0; site < sites_.size(); ++site) {
    sites_[site] = ServiceState::Active;
    emit({DirectoryEvent::Kind::SiteRegistered, site, 0, 0, at});
  }
  for (storage::StoreId store = 0; store < stores_.size(); ++store) {
    stores_[store] = ServiceState::Active;
    emit({DirectoryEvent::Kind::StoreRegistered, platform_.owner_of_store(store), 0,
          store, at});
  }
  for (cluster::ClusterId site = 0; site < nodes_.size(); ++site) {
    const auto& handles = platform_.nodes(site);
    for (std::uint32_t i = 0; i < handles.size(); ++i) {
      if (handles[i].offline) continue;  // capacity that has not arrived yet
      nodes_[site][i].state = ServiceState::Active;
      emit({DirectoryEvent::Kind::NodeRegistered, site, i, 0, at});
    }
  }
}

void PlatformDirectory::register_node(cluster::ClusterId site,
                                      std::uint32_t node_index) {
  NodeEntry& e = entry(site, node_index);
  if (e.state == ServiceState::Active || e.state == ServiceState::Draining) {
    throw std::invalid_argument("PlatformDirectory: node is already registered");
  }
  if (e.state == ServiceState::Retired) ++e.generation;  // re-join, new identity
  e.state = ServiceState::Active;
  trace(trace::EventKind::NodeRegistered,
        platform_.nodes(site).at(node_index).name, site, ServiceKind::Node);
  emit({DirectoryEvent::Kind::NodeRegistered, site, node_index, 0, now_seconds()});
}

void PlatformDirectory::begin_node_retirement(cluster::ClusterId site,
                                              std::uint32_t node_index) {
  NodeEntry& e = entry(site, node_index);
  if (e.state != ServiceState::Active) {
    throw std::invalid_argument(
        "PlatformDirectory: only an Active node can begin retirement");
  }
  e.state = ServiceState::Draining;
  emit({DirectoryEvent::Kind::NodeDraining, site, node_index, 0, now_seconds()});
}

void PlatformDirectory::complete_node_retirement(cluster::ClusterId site,
                                                 std::uint32_t node_index) {
  NodeEntry& e = entry(site, node_index);
  if (e.state != ServiceState::Active && e.state != ServiceState::Draining) {
    throw std::invalid_argument("PlatformDirectory: node is not live");
  }
  e.state = ServiceState::Retired;
  trace(trace::EventKind::NodeRetired,
        platform_.nodes(site).at(node_index).name, site, ServiceKind::Node);
  emit({DirectoryEvent::Kind::NodeRetired, site, node_index, 0, now_seconds()});
}

void PlatformDirectory::register_store(storage::StoreId store) {
  if (store >= stores_.size()) {
    throw std::invalid_argument("PlatformDirectory: no such store");
  }
  if (stores_[store] == ServiceState::Active) {
    throw std::invalid_argument("PlatformDirectory: store is already registered");
  }
  stores_[store] = ServiceState::Active;
  const cluster::ClusterId owner = platform_.owner_of_store(store);
  trace(trace::EventKind::NodeRegistered, platform_.site_name(owner) + "-store",
        owner, ServiceKind::Store);
  emit({DirectoryEvent::Kind::StoreRegistered, owner, 0, store, now_seconds()});
}

void PlatformDirectory::retire_store(storage::StoreId store) {
  if (store >= stores_.size() || stores_[store] != ServiceState::Active) {
    throw std::invalid_argument("PlatformDirectory: store is not live");
  }
  stores_[store] = ServiceState::Retired;
  const cluster::ClusterId owner = platform_.owner_of_store(store);
  trace(trace::EventKind::NodeRetired, platform_.site_name(owner) + "-store",
        owner, ServiceKind::Store);
  emit({DirectoryEvent::Kind::StoreRetired, owner, 0, store, now_seconds()});
}

void PlatformDirectory::register_site(cluster::ClusterId site) {
  if (site >= sites_.size()) {
    throw std::invalid_argument("PlatformDirectory: no such site");
  }
  if (sites_[site] == ServiceState::Active) {
    throw std::invalid_argument("PlatformDirectory: site is already registered");
  }
  sites_[site] = ServiceState::Active;
  trace(trace::EventKind::NodeRegistered, platform_.site_name(site), site,
        ServiceKind::Site);
  emit({DirectoryEvent::Kind::SiteRegistered, site, 0, 0, now_seconds()});
}

void PlatformDirectory::retire_site(cluster::ClusterId site) {
  if (site >= sites_.size() || sites_[site] != ServiceState::Active) {
    throw std::invalid_argument("PlatformDirectory: site is not live");
  }
  sites_[site] = ServiceState::Retired;
  trace(trace::EventKind::NodeRetired, platform_.site_name(site), site,
        ServiceKind::Site);
  emit({DirectoryEvent::Kind::SiteRetired, site, 0, 0, now_seconds()});
}

bool PlatformDirectory::node_live(net::EndpointId endpoint) const {
  for (cluster::ClusterId site = 0; site < nodes_.size(); ++site) {
    const auto& handles = platform_.nodes(site);
    for (std::uint32_t i = 0; i < handles.size(); ++i) {
      if (handles[i].endpoint != endpoint) continue;
      const ServiceState s = nodes_[site][i].state;
      return s == ServiceState::Active || s == ServiceState::Draining;
    }
  }
  return false;
}

bool PlatformDirectory::node_active(net::EndpointId endpoint) const {
  for (cluster::ClusterId site = 0; site < nodes_.size(); ++site) {
    const auto& handles = platform_.nodes(site);
    for (std::uint32_t i = 0; i < handles.size(); ++i) {
      if (handles[i].endpoint != endpoint) continue;
      return nodes_[site][i].state == ServiceState::Active;
    }
  }
  return false;
}

ServiceState PlatformDirectory::node_state(cluster::ClusterId site,
                                           std::uint32_t node_index) const {
  return entry(site, node_index).state;
}

bool PlatformDirectory::store_live(storage::StoreId store) const {
  return store < stores_.size() && stores_[store] == ServiceState::Active;
}

bool PlatformDirectory::site_live(cluster::ClusterId site) const {
  return site < sites_.size() && sites_[site] == ServiceState::Active;
}

std::vector<cluster::NodeHandle> PlatformDirectory::active_nodes(
    cluster::ClusterId site) const {
  std::vector<cluster::NodeHandle> out;
  if (site >= nodes_.size()) return out;
  const auto& handles = platform_.nodes(site);
  for (std::uint32_t i = 0; i < handles.size(); ++i) {
    if (nodes_[site][i].state == ServiceState::Active) out.push_back(handles[i]);
  }
  return out;
}

std::size_t PlatformDirectory::active_node_count() const {
  std::size_t total = 0;
  for (const auto& site : nodes_) {
    total += static_cast<std::size_t>(
        std::count_if(site.begin(), site.end(), [](const NodeEntry& e) {
          return e.state == ServiceState::Active;
        }));
  }
  return total;
}

std::uint32_t PlatformDirectory::node_generation(cluster::ClusterId site,
                                                 std::uint32_t node_index) const {
  return entry(site, node_index).generation;
}

PlatformDirectory::WatchId PlatformDirectory::watch(Watcher fn) {
  const WatchId id = next_watch_++;
  watchers_.emplace_back(id, std::move(fn));
  return id;
}

void PlatformDirectory::unwatch(WatchId id) {
  watchers_.erase(std::remove_if(watchers_.begin(), watchers_.end(),
                                 [id](const auto& w) { return w.first == id; }),
                  watchers_.end());
}

}  // namespace cloudburst::directory
