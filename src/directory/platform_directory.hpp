// PlatformDirectory: the runtime service directory of a mutable platform.
//
// The static PlatformSpec describes the fabric that *can* exist — wires,
// NICs, store fronts. The directory tracks what exists *right now*: which
// nodes, stores, and sites are registered, draining, or retired at the
// current simulated time. Services join and leave mid-run (capacity
// arrival, node retirement, store decommission); consumers — JobExecution
// membership resolution, the WorkloadManager's node pool, replication —
// query the directory or subscribe to its change feed instead of trusting
// build-time wiring.
//
// The static path survives as a bootstrap: `bootstrap()` registers every
// non-offline node, every store, and every site at the current sim time, so
// a run that never mutates the directory is indistinguishable from a run
// without one (byte-identity with the paper benches is pinned by test).
//
// Lifecycle of an entry:
//
//     (absent) --register--> Active --begin_retirement--> Draining
//         ^                    |  ^                          |
//         |                    |  '----- re-register --------|
//         '---- (never) ------ Retired <--complete_retirement'
//
// Re-registering a Retired node bumps its generation — consumers holding a
// stale handle can detect that "node 3" today is not the "node 3" they saw
// drain out yesterday.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cluster/platform.hpp"
#include "trace/trace.hpp"

namespace cloudburst::directory {

enum class ServiceState : std::uint8_t { Absent, Active, Draining, Retired };

enum class ServiceKind : std::uint8_t { Node = 0, Store = 1, Site = 2 };

/// One change in platform membership, delivered to watchers synchronously
/// (in registration order) at the sim time the change happens.
struct DirectoryEvent {
  enum class Kind : std::uint8_t {
    NodeRegistered,
    NodeDraining,
    NodeRetired,
    StoreRegistered,
    StoreRetired,
    SiteRegistered,
    SiteRetired,
  };
  Kind kind = Kind::NodeRegistered;
  cluster::ClusterId site = 0;
  std::uint32_t node_index = 0;        ///< Node* events: index within the site
  storage::StoreId store = 0;          ///< Store* events
  double at_seconds = 0.0;
};

class PlatformDirectory {
 public:
  explicit PlatformDirectory(cluster::Platform& platform);

  /// Registers every site, every store, and every non-offline node at the
  /// current sim time. Call once before running; mid-run mutations layer on
  /// top. Offline nodes (NodeSpec::offline) stay Absent until an explicit
  /// register_node — that is the capacity-arrival hook.
  void bootstrap();

  // --- mutations -----------------------------------------------------------

  /// A node joins (capacity arrival) or re-joins (generation bump) the
  /// platform. Throws if the spec has no such node or it is already live.
  void register_node(cluster::ClusterId site, std::uint32_t node_index);

  /// Marks a node Draining: still live for running work, but consumers that
  /// place new work (the pool, membership resolution) must stop using it.
  /// Watchers see NodeDraining; the owner finishes with
  /// complete_node_retirement once the drain settles.
  void begin_node_retirement(cluster::ClusterId site, std::uint32_t node_index);

  /// Drain settled (or the node is being removed without ceremony): the node
  /// leaves the directory. Legal from Active or Draining.
  void complete_node_retirement(cluster::ClusterId site, std::uint32_t node_index);

  /// Active/Draining -> Retired in one step.
  void retire_node(cluster::ClusterId site, std::uint32_t node_index) {
    complete_node_retirement(site, node_index);
  }

  void register_store(storage::StoreId store);
  void retire_store(storage::StoreId store);
  void register_site(cluster::ClusterId site);
  void retire_site(cluster::ClusterId site);

  // --- queries -------------------------------------------------------------

  /// Live means Active or Draining: existing work may still touch the
  /// service, but nothing new should be placed on a Draining one.
  bool node_live(net::EndpointId endpoint) const;
  bool node_active(net::EndpointId endpoint) const;
  ServiceState node_state(cluster::ClusterId site, std::uint32_t node_index) const;
  bool store_live(storage::StoreId store) const;
  bool site_live(cluster::ClusterId site) const;

  /// Active nodes of one site, in platform order.
  std::vector<cluster::NodeHandle> active_nodes(cluster::ClusterId site) const;
  /// Active node count across all sites.
  std::size_t active_node_count() const;
  /// Times a node re-joined after retirement (0 for a first registration).
  std::uint32_t node_generation(cluster::ClusterId site, std::uint32_t node_index) const;

  // --- change feed ---------------------------------------------------------

  using WatchId = std::uint64_t;
  using Watcher = std::function<void(const DirectoryEvent&)>;
  /// Subscribe to membership changes; callbacks fire synchronously at the
  /// mutating call, in subscription order. Returns a token for unwatch.
  WatchId watch(Watcher fn);
  void unwatch(WatchId id);

  /// Attach a tracer: mutations record NodeRegistered / NodeRetired trace
  /// events (actor = service name, a = site, b = ServiceKind).
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }

  cluster::Platform& platform() { return platform_; }
  const cluster::Platform& platform() const { return platform_; }

 private:
  struct NodeEntry {
    ServiceState state = ServiceState::Absent;
    std::uint32_t generation = 0;
  };

  NodeEntry& entry(cluster::ClusterId site, std::uint32_t node_index);
  const NodeEntry& entry(cluster::ClusterId site, std::uint32_t node_index) const;
  void emit(const DirectoryEvent& event);
  void trace(trace::EventKind kind, const std::string& actor,
             cluster::ClusterId site, ServiceKind service);
  double now_seconds() const;

  cluster::Platform& platform_;
  std::vector<std::vector<NodeEntry>> nodes_;    ///< [site][node_index]
  std::vector<ServiceState> stores_;
  std::vector<ServiceState> sites_;
  std::vector<std::pair<WatchId, Watcher>> watchers_;
  WatchId next_watch_ = 1;
  trace::Tracer* tracer_ = nullptr;
};

}  // namespace cloudburst::directory
