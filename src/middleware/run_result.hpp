// Timing decomposition of a distributed run.
//
// Mirrors the paper's reporting: per-cluster stacked processing / data
// retrieval / sync time (Figure 3), per-cluster local vs stolen job counts
// (Table I), and global-reduction / idle-time / total-slowdown components
// (Table II). With an N-site platform there is one ClusterResult per site.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "api/reduction_object.hpp"
#include "cluster/platform.hpp"

namespace cloudburst::middleware {

/// Node-lifecycle accounting: crashes, graceful drains, spot reclamations,
/// checkpoint flushes, and migration leases. All zero under the default
/// model (no lifecycle events configured).
struct LifecycleStats {
  std::uint32_t drains_requested = 0;   ///< drain/reclaim notices delivered
  std::uint32_t nodes_vacated = 0;      ///< drains that completed gracefully
  std::uint32_t nodes_reclaimed = 0;    ///< hard-killed at the reclaim deadline
  std::uint32_t nodes_crashed = 0;      ///< lifecycle Crash events fired
  std::uint32_t replacements_leased = 0;  ///< standby nodes booted to migrate work
  std::uint32_t chunks_returned = 0;    ///< assigned chunks handed back unstarted
  std::uint32_t chunks_reexecuted = 0;  ///< completed-but-lost chunks re-run
  std::uint64_t bytes_reexecuted = 0;   ///< wasted work: bytes of those chunks
  std::uint32_t checkpoint_flushes = 0; ///< delta robjs that protected new work
  std::uint64_t checkpoint_bytes = 0;   ///< wire bytes those flushes moved
};

/// Chunk-replication accounting: copies placed, lost to store faults, and
/// re-created by the repair actor. All zero (and extra_replica_bytes empty)
/// unless a ReplicaSet is attached via RunOptions::replication.
struct ReplicaStats {
  std::uint32_t replicas_created = 0;   ///< initial placement extra copies
  std::uint32_t replicas_lost = 0;      ///< copies marked dead after failed GETs
  std::uint32_t replicas_repaired = 0;  ///< repair transfers that landed
  std::uint64_t repair_bytes = 0;       ///< wire bytes repair transfers moved
  /// Live non-primary replica bytes per store at run end; the cost model
  /// bills the cloud stores' entries as extra resident storage.
  std::vector<std::uint64_t> extra_replica_bytes;
};

struct NodeTimes {
  std::string name;
  cluster::ClusterId cluster = 0;
  double processing = 0.0;  ///< seconds busy computing
  double retrieval = 0.0;   ///< seconds with an outstanding chunk fetch
  double wait = 0.0;        ///< seconds idle waiting for a job assignment
  double finish_time = 0.0; ///< when the node completed its last job
  std::uint32_t jobs = 0;
};

struct ClusterResult {
  std::string name;  ///< site name ("local", "cloud", ...)

  /// Mean per-node seconds (the stacked bar of Figure 3).
  double processing = 0.0;
  double retrieval = 0.0;
  double sync = 0.0;  ///< barrier wait + reduction transfers + merge

  std::uint32_t jobs_local = 0;   ///< jobs whose data was on this site's store
  std::uint32_t jobs_stolen = 0;  ///< jobs fetched from a remote store
  std::uint64_t bytes_local = 0;
  std::uint64_t bytes_stolen = 0;

  // Site-cache accounting (all zero when no cache fleet is attached).
  std::uint32_t cache_hits = 0;       ///< fetches served by the site cache
  std::uint32_t cache_misses = 0;     ///< fetches that went to the store
  std::uint32_t prefetch_issued = 0;  ///< speculative GETs the prefetcher sent
  std::uint32_t prefetch_wasted = 0;  ///< issued but never consumed by a slave

  // Store-QoS accounting (all zero with no StoreQos attached).
  std::uint32_t qos_throttled = 0;   ///< fetches the arbiter held back
  double qos_wait_seconds = 0.0;     ///< total seconds fetches queued at stores

  // Fault / retry accounting (all zero under the default fault-free model).
  std::uint32_t store_faults = 0;   ///< failed or timed-out fetch attempts
  std::uint32_t fetch_retries = 0;  ///< backoffs taken before re-attempts
  std::uint32_t hedges_issued = 0;  ///< hedged second GETs launched
  std::uint32_t hedges_won = 0;     ///< hedges that beat the primary

  double proc_end_time = 0.0;  ///< when the cluster's last slave finished processing
  double idle_time = 0.0;      ///< waiting for the other clusters at the end
  std::uint32_t nodes = 0;
};

struct RunResult {
  double total_time = 0.0;             ///< wall-clock of the whole job (sim seconds)
  double global_reduction_time = 0.0;  ///< after the last cluster finished processing
  std::vector<ClusterResult> clusters; ///< one per platform site
  std::vector<NodeTimes> nodes;

  /// Bytes each cluster fetched from each store: [cluster][store]. The cost
  /// model derives provider egress from this (data a non-cloud cluster pulled
  /// out of a cloud store).
  std::vector<std::vector<std::uint64_t>> bytes_from_store;

  /// Bytes of bytes_from_store that the site cache actually served —
  /// assignment-time accounting charged them to the store, but no WAN
  /// transfer happened. The cost model credits these back.
  std::vector<std::vector<std::uint64_t>> bytes_from_cache;

  /// Wire bytes that moved but were not the delivered copy (failed partial
  /// GETs, hedge losers, post-timeout arrivals): [cluster][store]. They
  /// crossed the provider's egress boundary, so the cost model bills them
  /// *on top of* bytes_from_store — retried bytes are not free.
  std::vector<std::vector<std::uint64_t>> bytes_retried;

  /// Requests each store served during the run (fetch calls; an object store
  /// issues retrieval_streams range GETs per request).
  std::vector<std::uint64_t> store_requests;
  /// Range GETs against object-kind stores (requests x streams) — the number
  /// the cost model prices and the benches report as "S3 requests".
  std::uint64_t s3_get_requests = 0;

  /// Activation time of each *billed* cloud instance (0.0 = rented from the
  /// start). For non-elastic runs this is one zero per cloud instance;
  /// elastic runs append booted instances at their activation times.
  std::vector<double> cloud_instance_starts;
  /// Physical node behind each cloud_instance_starts entry (parallel
  /// vector). A workload uses it to bill a node shared by concurrent jobs
  /// once instead of once per job.
  std::vector<net::EndpointId> cloud_instance_nodes;
  /// Billing end of each cloud_instance_starts entry (parallel vector;
  /// negative = rented to the end of the run). Reclaimed or drained cloud
  /// nodes stop billing when they vacate / hit the reclaim deadline. Empty
  /// when no node lifecycle event ended a rental early.
  std::vector<double> cloud_instance_ends;
  std::uint32_t elastic_activations = 0;  ///< instances booted mid-run

  /// Node-lifecycle accounting (all zero with no lifecycle events).
  LifecycleStats lifecycle;

  /// Chunk-replication accounting (all zero with no ReplicaSet attached).
  ReplicaStats replica;

  /// Present when RunOptions carried a real task: the finalized global robj.
  api::RobjPtr robj;

  const ClusterResult& side(cluster::ClusterId s) const { return clusters.at(s); }

  std::uint32_t total_jobs() const {
    std::uint32_t n = 0;
    for (const auto& c : clusters) n += c.jobs_local + c.jobs_stolen;
    return n;
  }

  std::uint32_t cache_hits() const {
    std::uint32_t n = 0;
    for (const auto& c : clusters) n += c.cache_hits;
    return n;
  }
  std::uint32_t cache_misses() const {
    std::uint32_t n = 0;
    for (const auto& c : clusters) n += c.cache_misses;
    return n;
  }
  std::uint32_t prefetch_issued() const {
    std::uint32_t n = 0;
    for (const auto& c : clusters) n += c.prefetch_issued;
    return n;
  }
  std::uint32_t prefetch_wasted() const {
    std::uint32_t n = 0;
    for (const auto& c : clusters) n += c.prefetch_wasted;
    return n;
  }
  /// Fraction of fetches the site caches served; 0 when no cache ran.
  double cache_hit_rate() const {
    const double total = static_cast<double>(cache_hits()) + cache_misses();
    return total > 0.0 ? static_cast<double>(cache_hits()) / total : 0.0;
  }

  std::uint32_t qos_throttled() const {
    std::uint32_t n = 0;
    for (const auto& c : clusters) n += c.qos_throttled;
    return n;
  }
  double qos_wait_seconds() const {
    double n = 0.0;
    for (const auto& c : clusters) n += c.qos_wait_seconds;
    return n;
  }

  std::uint32_t store_faults() const {
    std::uint32_t n = 0;
    for (const auto& c : clusters) n += c.store_faults;
    return n;
  }
  std::uint32_t fetch_retries() const {
    std::uint32_t n = 0;
    for (const auto& c : clusters) n += c.fetch_retries;
    return n;
  }
  std::uint32_t hedges_issued() const {
    std::uint32_t n = 0;
    for (const auto& c : clusters) n += c.hedges_issued;
    return n;
  }
  std::uint32_t hedges_won() const {
    std::uint32_t n = 0;
    for (const auto& c : clusters) n += c.hedges_won;
    return n;
  }
  /// Total wasted wire bytes across all cluster/store pairs.
  std::uint64_t bytes_retried_total() const {
    std::uint64_t n = 0;
    for (const auto& per_store : bytes_retried) {
      for (std::uint64_t b : per_store) n += b;
    }
    return n;
  }
};

}  // namespace cloudburst::middleware
