// Head node: global job assignment and the final global reduction
// (paper §III-B, Figure 2).
//
// The head reads the data index, generates the job pool, and serves masters'
// batch requests through the JobPool policies (locality, consecutive
// batches, stealing, min-contention). After all jobs are processed it
// collects each cluster's reduction object and folds them into the final
// result; merges are charged compute time and serialize on the head.
#pragma once

#include <map>
#include <set>
#include <vector>

#include "middleware/run_context.hpp"
#include "middleware/scheduler.hpp"

namespace cloudburst::middleware {

class HeadNode {
 public:
  struct MasterInfo {
    net::EndpointId endpoint = 0;
    storage::StoreId preferred_store = storage::kInvalidStore;
  };

  HeadNode(RunContext& ctx, net::EndpointId self, JobPool pool,
           std::vector<MasterInfo> masters, const api::GRTask* task);

  void handle(net::EndpointId from, Message msg);

  /// A master's whole site went dark (chaos site outage). Every chunk granted
  /// to it since its last MasterRobj is of unknown status — but since that
  /// robj will never merge, re-granting ALL of them to surviving masters is
  /// exactly-once by construction. Survivors adopt the work via unsolicited
  /// reopen BatchAssigns (a survivor that already committed re-opens and
  /// later ships a delta robj); a failed master's late BatchRequests and
  /// MasterRobj are dropped. Idempotent.
  void on_master_failed(net::EndpointId master);

  bool master_failed(net::EndpointId master) const {
    return failed_masters_.count(master) != 0;
  }

  const JobPool& pool() const { return pool_; }
  net::EndpointId endpoint() const { return self_; }

  /// Final reduction object of a real-execution run (null otherwise);
  /// valid once the run finished.
  api::RobjPtr take_robj() { return std::move(robj_); }

 private:
  void merge_robj(Message msg);
  void finish_run();

  RunContext& ctx_;
  net::EndpointId self_;
  JobPool pool_;
  std::vector<MasterInfo> masters_;
  const api::GRTask* task_;

  std::uint32_t robjs_expected_;
  std::uint32_t robjs_merged_ = 0;
  double merge_free_at_ = 0.0;  ///< head merges serialize on one core
  api::RobjPtr robj_;

  // --- master-failover bookkeeping (pure memory; byte-identity safe) -------
  /// Chunks granted to each master and not yet covered by a MasterRobj.
  std::map<net::EndpointId, std::vector<storage::ChunkId>> granted_;
  /// Masters whose cluster robj has arrived (their granted work committed).
  std::set<net::EndpointId> robj_received_;
  std::set<net::EndpointId> failed_masters_;
};

}  // namespace cloudburst::middleware
