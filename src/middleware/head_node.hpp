// Head node: global job assignment and the final global reduction
// (paper §III-B, Figure 2).
//
// The head reads the data index, generates the job pool, and serves masters'
// batch requests through the JobPool policies (locality, consecutive
// batches, stealing, min-contention). After all jobs are processed it
// collects each cluster's reduction object and folds them into the final
// result; merges are charged compute time and serialize on the head.
#pragma once

#include <vector>

#include "middleware/run_context.hpp"
#include "middleware/scheduler.hpp"

namespace cloudburst::middleware {

class HeadNode {
 public:
  struct MasterInfo {
    net::EndpointId endpoint = 0;
    storage::StoreId preferred_store = storage::kInvalidStore;
  };

  HeadNode(RunContext& ctx, net::EndpointId self, JobPool pool,
           std::vector<MasterInfo> masters, const api::GRTask* task);

  void handle(net::EndpointId from, Message msg);

  const JobPool& pool() const { return pool_; }
  net::EndpointId endpoint() const { return self_; }

  /// Final reduction object of a real-execution run (null otherwise);
  /// valid once the run finished.
  api::RobjPtr take_robj() { return std::move(robj_); }

 private:
  void merge_robj(Message msg);
  void finish_run();

  RunContext& ctx_;
  net::EndpointId self_;
  JobPool pool_;
  std::vector<MasterInfo> masters_;
  const api::GRTask* task_;

  std::uint32_t robjs_expected_;
  std::uint32_t robjs_merged_ = 0;
  double merge_free_at_ = 0.0;  ///< head merges serialize on one core
  api::RobjPtr robj_;
};

}  // namespace cloudburst::middleware
