// Run orchestration: build the actor tree on a Platform, execute the
// discrete-event simulation to completion, aggregate the RunResult.
//
// This is the public entry point of the middleware: given a platform
// (clusters + stores + network), a data layout (which files live where), and
// run options (application profile, scheduling policy, optionally a real
// task + dataset), it performs one complete cloud-bursting execution.
#pragma once

#include "cluster/platform.hpp"
#include "middleware/run_context.hpp"
#include "middleware/run_result.hpp"
#include "storage/data_layout.hpp"

namespace cloudburst::middleware {

/// Execute one distributed run. Throws if the run cannot complete (e.g. the
/// simulation deadlocks before all jobs are processed).
RunResult run_distributed(cluster::Platform& platform, const storage::DataLayout& layout,
                          const RunOptions& options);

}  // namespace cloudburst::middleware
