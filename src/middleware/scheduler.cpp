#include "middleware/scheduler.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace cloudburst::middleware {

JobPool::JobPool(const storage::DataLayout& layout, SchedulerPolicy policy,
                 ReplicaView view)
    : layout_(layout), policy_(policy), view_(std::move(view)),
      files_(layout.files().size()),
      rng_(Rng::substream(policy.random_seed, 0x5c4ed)) {
  for (const auto& chunk : layout.chunks()) {
    files_[chunk.file].chunks.push_back(chunk.id);
    ++remaining_;
  }
  // Chunks arrive in id order which is index order within a file; assert the
  // invariant the consecutive-batch optimization relies on.
  for (auto& f : files_) {
    for (std::size_t i = 1; i < f.chunks.size(); ++i) {
      if (layout.chunk(f.chunks[i - 1]).index_in_file + 1 !=
          layout.chunk(f.chunks[i]).index_in_file) {
        throw std::invalid_argument("JobPool: chunks of a file must be consecutive");
      }
    }
  }
}

std::uint64_t JobPool::remaining_on(storage::StoreId store) const {
  std::uint64_t n = 0;
  for (std::size_t f = 0; f < files_.size(); ++f) {
    if (layout_.file(static_cast<storage::FileId>(f)).store == store) {
      n += files_[f].chunks.size();
    }
  }
  return n;
}

std::uint32_t JobPool::readers(storage::FileId file) const { return files_.at(file).readers; }

void JobPool::take_from_file(storage::FileId file, std::uint32_t want,
                             std::vector<storage::ChunkId>& out) {
  auto& state = files_.at(file);
  const std::uint32_t take =
      std::min<std::uint32_t>(want, static_cast<std::uint32_t>(state.chunks.size()));
  for (std::uint32_t i = 0; i < take; ++i) {
    out.push_back(state.chunks.front());
    state.chunks.pop_front();
    --remaining_;
  }
  if (take > 0) ++state.readers;
}

storage::FileId JobPool::pick_remote_file(const std::vector<storage::FileId>& candidates,
                                          storage::StoreId preferred) {
  // "The remote jobs are chosen from files which the minimum number of
  // nodes are currently processing."
  auto min_contention = [&] {
    storage::FileId best = candidates.front();
    std::uint32_t best_readers = std::numeric_limits<std::uint32_t>::max();
    for (storage::FileId f : candidates) {
      if (files_[f].readers < best_readers) {
        best_readers = files_[f].readers;
        best = f;
      }
    }
    return best;
  };
  switch (policy_.remote_selection) {
    case RemoteSelection::Sequential:
      return candidates.front();
    case RemoteSelection::Random:
      return candidates[rng_.next_below(candidates.size())];
    case RemoteSelection::CheapestReplica: {
      if (!view_.steal_cost) return min_contention();  // no replica view
      // Cheapest reachable data first: rank files by the route cost of their
      // next chunk's best live replica, then by contention, then file id.
      storage::FileId best = candidates.front();
      double best_cost = std::numeric_limits<double>::max();
      std::uint32_t best_readers = std::numeric_limits<std::uint32_t>::max();
      for (storage::FileId f : candidates) {
        const double cost = view_.steal_cost(files_[f].chunks.front(), preferred);
        if (cost < best_cost ||
            (cost == best_cost && files_[f].readers < best_readers)) {
          best_cost = cost;
          best_readers = files_[f].readers;
          best = f;
        }
      }
      return best;
    }
    case RemoteSelection::MinContention:
      return min_contention();
  }
  return candidates.front();
}

std::vector<storage::ChunkId> JobPool::take_batch(storage::StoreId preferred,
                                                  std::uint32_t want, bool reserve_remote) {
  // Legacy two-sided form: reserving "the remote store" means reserving
  // every non-preferred store that still holds data.
  std::vector<storage::StoreId> reserved;
  if (reserve_remote) {
    for (const auto& file : layout_.files()) {
      if (file.store == preferred) continue;
      if (std::find(reserved.begin(), reserved.end(), file.store) == reserved.end()) {
        reserved.push_back(file.store);
      }
    }
  }
  return take_batch(preferred, want, reserved);
}

std::vector<storage::ChunkId> JobPool::take_batch(
    storage::StoreId preferred, std::uint32_t want,
    const std::vector<storage::StoreId>& reserved_stores) {
  std::vector<storage::ChunkId> out;
  if (want == 0 || remaining_ == 0) return out;
  out.reserve(want);

  // Remaining steal allowance per non-preferred store, computed lazily at
  // first touch and decremented as jobs are taken. A reserved store (one
  // another active cluster prefers) keeps its last `steal_reserve` jobs —
  // a remote job granted in the final seconds becomes a WAN straggler while
  // the data-local side idles. Unreserved stores are fully stealable.
  std::map<storage::StoreId, std::uint64_t> allowance;
  auto stealable_from = [&](storage::StoreId s) -> std::uint64_t {
    auto it = allowance.find(s);
    if (it == allowance.end()) {
      const std::uint64_t avail = remaining_on(s);
      const bool reserved = std::find(reserved_stores.begin(), reserved_stores.end(), s) !=
                            reserved_stores.end();
      const std::uint64_t v =
          reserved && avail > policy_.steal_reserve ? avail - policy_.steal_reserve
          : reserved                                ? 0
                                                    : avail;
      it = allowance.emplace(s, v).first;
    }
    return it->second;
  };

  auto files_with_jobs = [&](bool on_preferred) {
    std::vector<storage::FileId> ids;
    for (std::size_t f = 0; f < files_.size(); ++f) {
      if (files_[f].chunks.empty()) continue;
      const storage::StoreId s = layout_.file(static_cast<storage::FileId>(f)).store;
      // Replica-aware locality: a file whose next chunk has a live copy on
      // the requester's preferred store reads locally even though its
      // primary lives elsewhere (and costs no steal allowance).
      bool local = s == preferred;
      if (!local && view_.on_store) {
        local = view_.on_store(files_[f].chunks.front(), preferred);
      }
      if (local != on_preferred) continue;
      if (!on_preferred && policy_.prefer_locality && stealable_from(s) == 0) continue;
      ids.push_back(static_cast<storage::FileId>(f));
    }
    return ids;
  };

  // Phase 1: locality — serve from the requester's own store first.
  if (policy_.prefer_locality) {
    while (out.size() < want) {
      const auto local_files = files_with_jobs(true);
      if (local_files.empty()) break;
      // Continue the file with the fewest readers among local files too; for
      // a single requesting cluster this degenerates to sequential files.
      const storage::FileId file = pick_remote_file(local_files, preferred);
      const auto remaining_want = static_cast<std::uint32_t>(want - out.size());
      take_from_file(file, policy_.consecutive_batches ? remaining_want : 1, out);
    }
  } else {
    // Locality off (ablation): treat all files uniformly in phase 2.
  }

  // Phase 2: stealing — jobs from other stores, capped per request.
  if (out.size() < want && (policy_.allow_stealing || !policy_.prefer_locality)) {
    std::size_t budget = want - out.size();
    if (policy_.prefer_locality) {
      budget = std::min<std::size_t>(budget, policy_.steal_batch_size);
    }
    const std::size_t target = out.size() + budget;
    while (out.size() < target) {
      auto candidates = files_with_jobs(false);
      if (!policy_.prefer_locality) {
        const auto also_local = files_with_jobs(true);
        candidates.insert(candidates.end(), also_local.begin(), also_local.end());
        std::sort(candidates.begin(), candidates.end());
      }
      if (candidates.empty()) break;
      const storage::FileId file = pick_remote_file(candidates, preferred);
      const storage::StoreId store = layout_.file(file).store;
      auto remaining_want = static_cast<std::uint32_t>(target - out.size());
      if (policy_.prefer_locality && store != preferred) {
        remaining_want = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(remaining_want, stealable_from(store)));
      }
      const std::size_t before = out.size();
      take_from_file(file, policy_.consecutive_batches ? remaining_want : 1, out);
      if (policy_.prefer_locality && store != preferred) {
        allowance[store] -= out.size() - before;
      }
      if (out.size() == before) break;  // defensive: no forward progress
    }
  }
  return out;
}

}  // namespace cloudburst::middleware
