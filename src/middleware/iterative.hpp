// Iterative-application driver.
//
// kmeans and pagerank are iterative: every pass consumes the previous pass's
// reduction object (centroids / rank vector). Distributed, that means the
// head must *broadcast* the updated robj back to every slave before the next
// pass — the mirror image of the global reduction, and for large robjs
// (pagerank) a per-iteration WAN cost that a single-pass analysis never
// shows. This driver runs N passes of run_distributed and charges a binomial
// broadcast (head -> masters -> slave tree) between passes.
//
// With a real task attached, the driver also carries the actual robj between
// iterations: `next_task` receives the finalized robj of pass i and returns
// the task for pass i+1 (e.g. a KmeansTask built from the new centroids).
#pragma once

#include <functional>
#include <vector>

#include "cluster/platform.hpp"
#include "middleware/run_context.hpp"
#include "middleware/run_result.hpp"
#include "middleware/runtime.hpp"
#include "storage/data_layout.hpp"

namespace cloudburst::middleware {

struct IterativeRequest {
  cluster::PlatformSpec platform_spec;
  const storage::DataLayout* layout = nullptr;
  /// Note on site caches: every pass rebuilds the Platform, but a caller-owned
  /// CacheFleet attached via options.cache survives the rebuilds — pass 1+
  /// hits on what pass 0 fetched (the warm-start speedup). Call
  /// fleet.clear() before run_iterative for a cold start.
  RunOptions options;
  std::size_t iterations = 1;

  /// Called after pass `iter` (0-based) with its finalized robj (null in
  /// timing-only runs); returns the GRTask for the next pass. Null keeps
  /// the same task (timing-only sweeps).
  std::function<const api::GRTask*(std::size_t iter, const api::ReductionObject* robj)>
      next_task;
};

struct IterativeResult {
  double total_seconds = 0.0;
  double compute_seconds = 0.0;    ///< sum of per-pass execution times
  double broadcast_seconds = 0.0;  ///< sum of inter-pass robj broadcasts
  std::vector<RunResult> passes;

  /// Finalized robj of the last pass (real runs).
  api::RobjPtr final_robj;

  /// Total node-seconds spent with an outstanding chunk fetch, across every
  /// pass and node — the remote-retrieval time a site cache attacks. With a
  /// warm cache only pass 0 pays the WAN; later passes pay local reads.
  double total_retrieval_seconds() const {
    double total = 0.0;
    for (const auto& pass : passes) {
      for (const auto& node : pass.nodes) total += node.retrieval;
    }
    return total;
  }

  /// Range GETs against object stores, summed over the passes.
  std::uint64_t s3_get_requests() const {
    std::uint64_t total = 0;
    for (const auto& pass : passes) total += pass.s3_get_requests;
    return total;
  }

  /// Hit fraction across every pass's fetches (0 when no cache ran).
  double cache_hit_rate() const {
    double hits = 0.0, misses = 0.0;
    for (const auto& pass : passes) {
      hits += pass.cache_hits();
      misses += pass.cache_misses();
    }
    return hits + misses > 0.0 ? hits / (hits + misses) : 0.0;
  }
};

/// Simulated time of broadcasting `robj_bytes` from the head to every slave
/// (head -> each cluster master across the WAN, then a binomial tree over
/// the cluster's slaves).
double simulate_broadcast(const cluster::PlatformSpec& spec, std::uint64_t robj_bytes);

IterativeResult run_iterative(IterativeRequest request);

}  // namespace cloudburst::middleware
