#include "middleware/slave_node.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/logging.hpp"
#include "common/rng.hpp"

namespace cloudburst::middleware {

SlaveNode::SlaveNode(RunContext& ctx, const cluster::NodeHandle& node,
                     net::EndpointId master, std::size_t stat_index, std::uint32_t rank,
                     std::shared_ptr<const std::vector<net::EndpointId>> peers)
    : ctx_(ctx), node_(node), master_(master), stat_index_(stat_index), rank_(rank),
      peers_(std::move(peers)) {
  if (ctx_.options.task) robj_ = ctx_.options.task->create_robj();
}

std::uint32_t SlaveNode::expected_children() const {
  // Binomial tree over ranks [0, n): rank r's children are r + 2^k for every
  // k with 2^k below r's lowest set bit (rank 0 spans the whole tree).
  const auto n = static_cast<std::uint32_t>(peers_->size());
  std::uint32_t count = 0;
  for (std::uint32_t bit = 1; bit < n; bit <<= 1) {
    if (rank_ & bit) break;
    if (rank_ + bit < n) ++count;
  }
  return count;
}

std::uint32_t SlaveNode::parent_rank() const {
  // Parent clears the lowest set bit; rank 0 has no slave parent.
  return rank_ & (rank_ - 1);
}

void SlaveNode::start() {
  idle_since_ = ctx_.now_seconds();
  top_up_requests();
}

void SlaveNode::top_up_requests() {
  if (draining_) return;  // drain notice: claim no new pool chunks
  const unsigned depth = std::max(1u, ctx_.options.pipeline_depth);
  while (!no_more_ && active_jobs_ + outstanding_requests_ < depth) {
    ++outstanding_requests_;
    Message msg;
    msg.type = MsgType::SlaveJobRequest;
    ctx_.send(node_.endpoint, master_, kControlMessageBytes, std::move(msg));
  }
}

void SlaveNode::handle(net::EndpointId from, Message msg) {
  (void)from;
  if (!alive_) return;  // crashed: silently drop everything
  switch (msg.type) {
    case MsgType::AssignJob:
      // Pushed recovery assignments arrive without a matching request.
      if (outstanding_requests_ > 0) --outstanding_requests_;
      if (draining_) {
        // Crossed the drain notice in flight: hand the chunk straight back so
        // the master re-pools it for a node that will actually run it.
        Message back;
        back.type = MsgType::ChunkReturned;
        back.chunk = msg.chunk;
        ctx_.send(node_.endpoint, master_, kControlMessageBytes, std::move(back));
        maybe_vacate();
        break;
      }
      on_assigned(msg.chunk, msg.store);
      break;
    case MsgType::NoMoreJobs:
      if (outstanding_requests_ > 0) --outstanding_requests_;
      no_more_ = true;
      if (ctx_.options.reduction_tree) maybe_finish_tree();
      maybe_vacate();
      break;
    case MsgType::SlaveRobj:
      on_child_robj(std::move(msg));
      break;
    case MsgType::RobjRequest:
      // Direct mode: ship the current robj (echoing the request's round id),
      // then start a fresh delta so checkpoint bookkeeping stays exact.
      send_robj(master_, msg.want);
      if (robj_) robj_ = ctx_.options.task->create_robj();
      break;
    default:
      throw std::logic_error("SlaveNode: unexpected message type");
  }
}

void SlaveNode::on_assigned(storage::ChunkId chunk, storage::StoreId store) {
  if (active_jobs_ == 0 && !processing_) {
    // Leaving idle: account the time spent waiting for the assignment.
    stats().wait += ctx_.now_seconds() - idle_since_;
  }
  ++active_jobs_;
  if (store != storage::kInvalidStore) assigned_store_[chunk] = store;
  top_up_requests();
  ctx_.trace(trace::EventKind::JobAssigned, node_.name, chunk);
  fetch_start_[chunk] = ctx_.now_seconds();
  ctx_.trace(trace::EventKind::FetchStart, node_.name, chunk, fetch_store(chunk));
  begin_fetch(chunk);
}

storage::StoreId SlaveNode::fetch_store(storage::ChunkId chunk) const {
  if (const auto it = assigned_store_.find(chunk); it != assigned_store_.end()) {
    return it->second;
  }
  return ctx_.layout.store_of(chunk);
}

void SlaveNode::reassign_store(storage::ChunkId chunk, storage::StoreId from,
                               storage::StoreId to) {
  assigned_store_[chunk] = to;
  const storage::ChunkInfo& info = ctx_.layout.chunk(chunk);
  auto& rec = ctx_.recorder;
  rec.bytes_from_store[node_.cluster][from] -= info.bytes;
  rec.bytes_from_store[node_.cluster][to] += info.bytes;
  const storage::StoreId preferred = ctx_.platform.store_of_cluster(node_.cluster);
  const bool was_local = from == preferred;
  const bool is_local = to == preferred;
  if (was_local == is_local) return;
  if (is_local) {
    ++rec.jobs_local[node_.cluster];
    rec.bytes_local[node_.cluster] += info.bytes;
    --rec.jobs_stolen[node_.cluster];
    rec.bytes_stolen[node_.cluster] -= info.bytes;
  } else {
    --rec.jobs_local[node_.cluster];
    rec.bytes_local[node_.cluster] -= info.bytes;
    ++rec.jobs_stolen[node_.cluster];
    rec.bytes_stolen[node_.cluster] += info.bytes;
  }
}

void SlaveNode::begin_fetch(storage::ChunkId chunk) {
  storage::ChunkInfo info = ctx_.layout.chunk(chunk);
  const std::uint64_t full_bytes = info.bytes;
  // Compressed storage: fewer bytes move; decompression is charged to the
  // processing phase.
  const double ratio = std::max(1.0, ctx_.options.profile.compression_ratio);
  info.bytes = static_cast<std::uint64_t>(static_cast<double>(info.bytes) / ratio);
  const storage::StoreId store_id = fetch_store(chunk);

  if (cache::ChunkCache* cache = ctx_.site_cache(node_.cluster, store_id)) {
    cache::Prefetcher* pf = ctx_.prefetcher(node_.cluster);
    if (cache->hit(chunk)) {
      // Hit: the bytes are on the site's scratch disk — pay the local read
      // model, skip the store entirely (no GET, no WAN flow), and credit the
      // egress bytes the master charged at assignment.
      ++ctx_.recorder.cache_hits[node_.cluster];
      ctx_.recorder.bytes_from_cache[node_.cluster][store_id] += full_bytes;
      ctx_.trace(trace::EventKind::CacheHit, node_.name, chunk, info.bytes);
      if (ctx_.options.qos) ctx_.options.qos->note_cache_hit(ctx_.qos_tenant);
      if (ctx_.options.replication) {
        ctx_.options.replication->record_hit(chunk);
        // No store fetch will happen: clear the route-load charge the
        // assignment-time resolve() booked against store_id.
        ctx_.options.replication->settle_route(chunk, store_id);
      }
      if (pf) pf->mark_consumed(chunk);
      const cache::CacheConfig& cfg = ctx_.options.cache->config();
      const double delay = cfg.hit_latency_seconds +
                           static_cast<double>(info.bytes) / cfg.hit_bandwidth;
      ctx_.sim().schedule(des::from_seconds(delay), [this, chunk] {
        if (alive_) on_fetched(chunk);
      });
      return;
    }
    if (pf && pf->in_flight(chunk)) {
      // The prefetcher already has this chunk's GET in the air: join it
      // instead of fetching the same bytes twice. The hit is credited only
      // when the transfer actually delivers — a permanently failed prefetch
      // falls back to this slave's own (retrying) fetch.
      const std::uint64_t wire_bytes = info.bytes;
      pf->wait_for(chunk, node_.endpoint,
                   [this, chunk, store_id, full_bytes, wire_bytes, pf](bool ok) {
                     if (!alive_) return;
                     if (!ok) {
                       begin_fetch(chunk);
                       return;
                     }
                     ++ctx_.recorder.cache_hits[node_.cluster];
                     ctx_.recorder.bytes_from_cache[node_.cluster][store_id] += full_bytes;
                     ctx_.trace(trace::EventKind::CacheHit, node_.name, chunk, wire_bytes);
                     if (ctx_.options.qos) ctx_.options.qos->note_cache_hit(ctx_.qos_tenant);
                     if (ctx_.options.replication) {
                       ctx_.options.replication->record_hit(chunk);
                       ctx_.options.replication->settle_route(chunk, store_id);
                     }
                     pf->mark_consumed(chunk);
                     on_fetched(chunk);
                   });
      return;
    }
    // Miss: fetch from the store and admit the chunk on arrival.
    ++ctx_.recorder.cache_misses[node_.cluster];
    ctx_.trace(trace::EventKind::CacheMiss, node_.name, chunk, store_id);
    if (ctx_.options.qos) ctx_.options.qos->note_cache_miss(ctx_.qos_tenant);
    fetch_from_store(chunk, info, store_id, cache, info.bytes);
    return;
  }

  fetch_from_store(chunk, info, store_id, nullptr, 0);
}

void SlaveNode::fetch_from_store(storage::ChunkId chunk, const storage::ChunkInfo& wire,
                                 storage::StoreId store_id, cache::ChunkCache* cache,
                                 std::uint64_t resident) {
  if (ctx_.options.replication) {
    // Demand-fetch heat for HotChunk promotion when no cache feeds hits.
    ctx_.options.replication->record_fetch(chunk);
  }
  ctx_.qos_gate(
      node_.cluster, store_id, wire.bytes, node_.name, chunk, ctx_.qos_tenant,
      [this, chunk, wire, store_id, cache, resident] {
        if (!alive_) return;
        storage::StoreService& store = ctx_.platform.store(store_id);
        storage::fetch_with_retry(
            ctx_.sim(), store, node_.endpoint, wire, ctx_.options.retrieval_streams,
            ctx_.options.retry,
            ctx_.retry_hooks(node_.cluster, node_.name, chunk, store_id),
            [this, chunk, store_id, cache, resident](const storage::FetchResult& r) {
              if (!alive_) return;
              if (!r.ok) {
                on_fetch_failed(chunk);
                return;
              }
              if (ctx_.options.replication) {
                // The copy demonstrably exists — revive it if a previous
                // failure had marked it lost.
                ctx_.options.replication->note_fetch_ok(chunk, store_id);
              }
              if (cache) {
                const auto result = cache->insert(chunk, resident,
                                                  /*prefetched=*/false,
                                                  ctx_.cache_owner());
                for (const auto& [evictee, bytes] : result.evicted) {
                  ctx_.trace(trace::EventKind::CacheEvict, node_.name, evictee, bytes);
                }
              }
              on_fetched(chunk);
            });
      });
}

void SlaveNode::on_fetch_failed(storage::ChunkId chunk) {
  // Exactly-once processing means an assigned chunk cannot be dropped: after
  // the policy's attempts are exhausted, take one maximal backoff and re-open
  // a whole new fetch cycle (which also re-checks the site cache — another
  // slave's copy may have landed meanwhile).
  if (replica::ReplicaSet* rs = ctx_.options.replication) {
    // Replica failover: write the copy off, then re-route the retry cycle to
    // the cheapest surviving replica instead of hammering the failed store.
    const storage::StoreId failed = fetch_store(chunk);
    const double now = ctx_.now_seconds();
    if (rs->mark_lost(chunk, failed, now)) {
      ++ctx_.recorder.replica.replicas_lost;
      ctx_.trace(trace::EventKind::ReplicaLost, node_.name, chunk, failed);
    }
    const storage::StoreId next = rs->resolve(chunk, node_.cluster, now);
    if (next != failed) reassign_store(chunk, failed, next);
  }
  const storage::RetryPolicy& p = ctx_.options.retry;
  double delay = std::max(p.backoff_base_seconds, 1e-3);
  for (unsigned k = 1; k < p.max_attempts; ++k) delay *= p.backoff_multiplier;
  delay = std::min(delay, p.backoff_max_seconds);
  if (p.jitter_fraction > 0.0) {
    // Every slave that lost the same outage computes the same maximal delay
    // above, so without jitter they all retry in lockstep and re-overload the
    // store together. The draw comes from a substream keyed by (endpoint,
    // chunk, per-node draw count) — independent of event interleaving, so a
    // fixed seed still replays bit-identically.
    Rng rng = Rng::substream(
        p.seed, (static_cast<std::uint64_t>(node_.endpoint) << 40) ^
                    (static_cast<std::uint64_t>(chunk) << 16) ^ backoff_draws_++);
    delay *= rng.uniform(std::max(0.0, 1.0 - p.jitter_fraction),
                         1.0 + p.jitter_fraction);
  }
  ++ctx_.recorder.fetch_retries[node_.cluster];
  ctx_.trace(trace::EventKind::RetryBackoff, node_.name, chunk, p.max_attempts + 1);
  ctx_.sim().schedule(des::from_seconds(delay), [this, chunk] {
    if (alive_) begin_fetch(chunk);
  });
}

void SlaveNode::on_fetched(storage::ChunkId chunk) {
  ctx_.trace(trace::EventKind::FetchEnd, node_.name, chunk);
  const auto it = fetch_start_.find(chunk);
  stats().retrieval += ctx_.now_seconds() - it->second;
  fetch_start_.erase(it);
  ready_.push_back(chunk);
  maybe_process();
}

void SlaveNode::maybe_process() {
  if (processing_ || ready_.empty() || slot_waiting_) return;
  if (ctx_.arbiter && !slot_held_) {
    // Workload run: the node's core is time-shared between jobs at chunk
    // granularity. Claim it; if another job holds it, the grant callback
    // resumes us at the next slot handover.
    const bool granted = ctx_.arbiter->acquire(node_.endpoint, ctx_.job_id, [this] {
      slot_waiting_ = false;
      slot_held_ = true;
      start_processing();
    });
    if (!granted) {
      slot_waiting_ = true;
      return;
    }
    slot_held_ = true;
  }
  start_processing();
}

void SlaveNode::start_processing() {
  processing_ = true;
  const storage::ChunkId chunk = ready_.front();
  ready_.pop_front();

  const storage::ChunkInfo& info = ctx_.layout.chunk(chunk);
  const AppProfile& profile = ctx_.options.profile;
  const double cores = node_.core_speed * static_cast<double>(node_.cores);
  const double rate = profile.bytes_per_second_per_core * cores;
  double duration =
      static_cast<double>(info.bytes) / rate + profile.per_job_overhead_seconds;
  if (profile.compression_ratio > 1.0 &&
      profile.decompress_bytes_per_second_per_core > 0.0) {
    // Decompress the full (uncompressed) chunk before the kernel sees it.
    duration += static_cast<double>(info.bytes) /
                (profile.decompress_bytes_per_second_per_core * cores);
  }
  ctx_.trace(trace::EventKind::ProcessStart, node_.name, chunk);

  ctx_.sim().schedule(des::from_seconds(duration), [this, chunk, duration] {
    if (alive_) on_processed(chunk, duration);
  });
}

void SlaveNode::on_processed(storage::ChunkId chunk, double duration) {
  // Real execution: fold the chunk's unit range into this node's robj.
  if (ctx_.options.task) {
    const storage::ChunkInfo& info = ctx_.layout.chunk(chunk);
    const std::uint64_t offset = ctx_.chunk_unit_offset.at(chunk);
    ctx_.options.task->process(
        ctx_.options.dataset->unit(offset), static_cast<std::size_t>(info.units), *robj_);
  }

  ctx_.trace(trace::EventKind::ProcessEnd, node_.name, chunk);
  processing_ = false;
  --active_jobs_;
  assigned_store_.erase(chunk);
  stats().processing += duration;
  stats().finish_time = ctx_.now_seconds();
  ++stats().jobs;

  if (ctx_.arbiter && slot_held_) {
    // Chunk boundary: hand the core back before asking for more work, so the
    // arbiter picks the next job (possibly us again) at this instant.
    slot_held_ = false;
    ctx_.arbiter->release(node_.endpoint, ctx_.job_id, duration);
  }

  if (!ctx_.options.reduction_tree) {
    Message done;
    done.type = MsgType::JobDone;
    done.chunk = chunk;
    ctx_.send(node_.endpoint, master_, kControlMessageBytes, std::move(done));
  }

  top_up_requests();
  maybe_process();
  if (active_jobs_ == 0 && !processing_) idle_since_ = ctx_.now_seconds();
  if (ctx_.options.reduction_tree) maybe_finish_tree();
  maybe_vacate();
}

void SlaveNode::begin_drain() {
  if (!alive_ || draining_) return;
  draining_ = true;
  ++ctx_.recorder.lifecycle.drains_requested;
  maybe_vacate();
}

void SlaveNode::maybe_vacate() {
  if (!draining_ || vacated_ || !alive_) return;
  // Finish everything already claimed — assigned chunks, fetched-but-queued
  // chunks, and requests still in flight at the master (their replies are
  // either bounced back or NoMoreJobs) — before flushing the final state.
  if (active_jobs_ != 0 || processing_ || !ready_.empty() ||
      outstanding_requests_ != 0) {
    return;
  }
  vacated_ = true;
  // Final delta-robj checkpoint rides the vacate notice: whatever this node
  // computed since its last robj shipment reaches the master, so a drain
  // with adequate notice loses zero completed work.
  Message msg;
  msg.type = MsgType::NodeVacated;
  if (robj_) {
    BufferWriter writer;
    robj_->serialize(writer);
    msg.robj_payload = writer.take();
  }
  const std::uint64_t bytes = ctx_.options.profile.robj_bytes
                                  ? ctx_.options.profile.robj_bytes
                                  : std::max<std::uint64_t>(msg.robj_payload.size(), 64);
  ctx_.trace(trace::EventKind::NodeVacated, node_.name, stats().jobs, bytes);
  ctx_.send(node_.endpoint, master_, bytes, std::move(msg));
  // Rented capacity is handed back the instant the node vacates (no-op for
  // nodes that were never billed, e.g. a drained local node).
  ctx_.recorder.end_cloud_billing(node_.endpoint,
                                  ctx_.now_seconds() - ctx_.job_start_seconds);
  kill();  // silent from here; core slots return to the arbiter
  // Cross-job drain settlement: tell the workload manager this job no
  // longer holds the node (fires after kill so the hook sees final state).
  if (ctx_.on_node_vacated) ctx_.on_node_vacated(node_.endpoint);
}

void SlaveNode::on_child_robj(Message msg) {
  // Charge the local-merge compute before counting the child.
  const AppProfile& profile = ctx_.options.profile;
  const std::uint64_t robj_bytes = profile.robj_bytes
                                       ? profile.robj_bytes
                                       : std::max<std::uint64_t>(msg.robj_payload.size(), 64);
  const double merge_seconds =
      profile.merge_bytes_per_second > 0.0
          ? static_cast<double>(robj_bytes) / profile.merge_bytes_per_second
          : 0.0;
  auto boxed = std::make_shared<Message>(std::move(msg));
  ctx_.sim().schedule(des::from_seconds(merge_seconds), [this, boxed] {
    if (!alive_) return;
    if (!boxed->robj_payload.empty() && robj_) {
      BufferReader reader(boxed->robj_payload);
      api::RobjPtr incoming = ctx_.options.task->create_robj();
      incoming->deserialize(reader);
      robj_->merge_from(*incoming);
    }
    ++children_received_;
    maybe_finish_tree();
  });
}

void SlaveNode::maybe_finish_tree() {
  if (robj_sent_ || !no_more_ || active_jobs_ != 0 || outstanding_requests_ != 0 ||
      children_received_ != expected_children()) {
    return;
  }
  robj_sent_ = true;
  send_robj(rank_ == 0 ? master_ : (*peers_)[parent_rank()], 0);
}

void SlaveNode::send_robj(net::EndpointId dst, std::uint32_t round) {
  Message msg;
  msg.type = MsgType::SlaveRobj;
  msg.want = round;
  if (robj_) {
    BufferWriter writer;
    robj_->serialize(writer);
    msg.robj_payload = writer.take();
  }
  const std::uint64_t bytes = ctx_.options.profile.robj_bytes
                                  ? ctx_.options.profile.robj_bytes
                                  : std::max<std::uint64_t>(msg.robj_payload.size(), 64);
  ctx_.trace(trace::EventKind::RobjSent, node_.name, bytes);
  ctx_.send(node_.endpoint, dst, bytes, std::move(msg));
}

}  // namespace cloudburst::middleware
