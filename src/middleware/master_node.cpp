#include "middleware/master_node.hpp"

#include <algorithm>
#include <stdexcept>

namespace cloudburst::middleware {

MasterNode::MasterNode(RunContext& ctx, cluster::ClusterId site, net::EndpointId self,
                       net::EndpointId head, std::vector<net::EndpointId> slaves,
                       storage::StoreId preferred_store)
    : ctx_(ctx), site_(site), trace_name_("master-" + ctx.platform.site_name(site)),
      self_(self), head_(head), slaves_(std::move(slaves)),
      preferred_store_(preferred_store) {}

void MasterNode::handle(net::EndpointId from, Message msg) {
  if (evacuated_) return;  // site blacked out: every late message is void
  switch (msg.type) {
    case MsgType::SlaveJobRequest: {
      if (dead_.count(from)) break;  // late message from a crashed node
      if (!pool_.empty()) {
        waiting_slaves_.push_back(from);
        serve_waiting();
      } else if (no_more_) {
        Message reply;
        reply.type = MsgType::NoMoreJobs;
        ctx_.send(self_, from, kControlMessageBytes, std::move(reply));
      } else {
        waiting_slaves_.push_back(from);
      }
      maybe_refill();
      break;
    }
    case MsgType::BatchAssign: {
      if (msg.reopen) {
        // Unsolicited grant: a peer master's site died and the head is
        // re-homing its uncommitted chunks here. If this cluster already
        // committed, re-open: the shipped robj lives safely at the head, so
        // drop local state and let the next commit carry only the delta.
        if (cluster_robj_sent_) {
          cluster_robj_sent_ = false;
          robj_.reset();
        }
        ctx_.trace(trace::EventKind::BatchGranted, trace_name_, msg.batch.size(), 2);
        for (storage::ChunkId c : msg.batch) pool_.push_back(c);
        serve_waiting();
        if (cache::Prefetcher* pf = ctx_.prefetcher(site_)) {
          pf->on_pool_update(pool_, ctx_.layout);
        }
        // Slaves idled by NoMoreJobs will never pull again — push at them.
        flush_pool_if_endgame();
        maybe_commit();
        break;
      }
      refill_outstanding_ = false;
      ctx_.trace(trace::EventKind::BatchGranted, trace_name_, msg.batch.size(),
                 msg.exhausted ? 1 : 0);
      for (storage::ChunkId c : msg.batch) pool_.push_back(c);
      if (msg.exhausted) no_more_ = true;
      serve_waiting();
      // Whatever stayed in the pool after serving the waiters is granted but
      // unfetched — exactly the lookahead the prefetcher feeds on.
      if (cache::Prefetcher* pf = ctx_.prefetcher(site_)) {
        pf->on_pool_update(pool_, ctx_.layout);
      }
      maybe_refill();
      if (!ctx_.options.reduction_tree) maybe_commit();
      break;
    }
    case MsgType::JobDone: {
      if (dead_.count(from)) break;
      auto& inflight = inflight_[from];
      const auto it = std::find(inflight.begin(), inflight.end(), msg.chunk);
      if (it != inflight.end()) {
        done_unchk_[from].push_back(*it);
        inflight.erase(it);
        --outstanding_total_;
      }
      maybe_commit();
      break;
    }
    case MsgType::SlaveRobj: {
      if (ctx_.options.reduction_tree) {
        // Rank 0 of the binomial tree delivers the merged cluster robj.
        merge_slave_robj(msg);
        ++tree_robjs_received_;
        if (tree_robjs_received_ == 1) send_cluster_robj();
      } else {
        if (dead_.count(from)) break;  // lost robj: its chunks get re-run
        merge_slave_robj(msg);
        if (msg.want == 0 && !done_unchk_[from].empty()) {
          // A periodic flush that protects newly completed work.
          const std::uint64_t bytes =
              ctx_.options.profile.robj_bytes
                  ? ctx_.options.profile.robj_bytes
                  : std::max<std::uint64_t>(msg.robj_payload.size(), 64);
          ++ctx_.recorder.lifecycle.checkpoint_flushes;
          ctx_.recorder.lifecycle.checkpoint_bytes += bytes;
          ctx_.trace(trace::EventKind::CheckpointFlushed, trace_name_,
                     done_unchk_[from].size(), bytes);
        }
        done_unchk_[from].clear();  // robj receipt == checkpoint of done work
        // Only robjs of the current commit round count toward completion;
        // periodic-checkpoint robjs (round 0) and stale rounds just merge.
        if (msg.want != commit_round_) break;
        ++robjs_received_;
        if (committing_) commit_responded_.insert(from);
        finish_commit_if_complete();
      }
      break;
    }
    case MsgType::ChunkReturned:
      on_chunk_returned(from, msg.chunk);
      break;
    case MsgType::NodeVacated:
      on_node_vacated(from, msg);
      break;
    default:
      throw std::logic_error("MasterNode: unexpected message type");
  }
}

void MasterNode::finish_commit_if_complete() {
  if (!committing_ || robjs_received_ < robjs_expected_) return;
  committing_ = false;
  commit_responded_.clear();
  // If a failure re-opened work while we were committing, keep going;
  // otherwise the cluster is done.
  if (pool_.empty() && outstanding_total_ == 0 && no_more_) {
    send_cluster_robj();
  } else {
    maybe_commit();
  }
}

void MasterNode::drop_from_commit(net::EndpointId slave) {
  if (!committing_ || commit_responded_.count(slave)) return;
  if (robjs_expected_ > 0) --robjs_expected_;
}

void MasterNode::start() {
  if (ctx_.options.reduction_tree || ctx_.options.checkpoint_interval_seconds <= 0.0) {
    return;
  }
  ctx_.sim().schedule(des::from_seconds(ctx_.options.checkpoint_interval_seconds),
                      [this] { checkpoint_tick(); });
}

void MasterNode::checkpoint_tick() {
  if (cluster_robj_sent_) return;  // run over for this cluster
  for (net::EndpointId s : slaves_) {
    if (dead_.count(s)) continue;
    if (done_unchk_[s].empty()) continue;  // nothing new to protect
    Message msg;
    msg.type = MsgType::RobjRequest;
    msg.want = 0;  // periodic round
    ctx_.send(self_, s, kControlMessageBytes, std::move(msg));
  }
  ctx_.sim().schedule(des::from_seconds(ctx_.options.checkpoint_interval_seconds),
                      [this] { checkpoint_tick(); });
}

void MasterNode::assign_static(
    const std::vector<std::pair<net::EndpointId, storage::ChunkId>>& plan) {
  no_more_ = true;  // nothing will ever be pulled from the head
  for (const auto& [slave, chunk] : plan) push_assign(chunk, slave);
}

void MasterNode::evacuate() {
  if (evacuated_) return;
  evacuated_ = true;
  cluster_robj_sent_ = true;  // permanently silences checkpoint_tick
  committing_ = false;
  no_more_ = true;
  if (cache::Prefetcher* pf = ctx_.prefetcher(site_)) {
    for (net::EndpointId s : slaves_) pf->drop_owner(s);
  }
  for (net::EndpointId s : slaves_) dead_.insert(s);
  pool_.clear();
  waiting_slaves_.clear();
  inflight_.clear();
  done_unchk_.clear();
  commit_responded_.clear();
  outstanding_total_ = 0;
}

void MasterNode::on_slave_failed(net::EndpointId slave) {
  if (evacuated_) return;  // whole site already written off
  if (dead_.count(slave)) return;
  dead_.insert(slave);
  if (ctx_.options.replication) {
    // Lifecycle composition: a site losing nodes is degrading — steer reads
    // (and new replica placements) away from its store for a while.
    ctx_.options.replication->mark_site_suspect(site_, ctx_.now_seconds());
  }
  waiting_slaves_.erase(
      std::remove(waiting_slaves_.begin(), waiting_slaves_.end(), slave),
      waiting_slaves_.end());
  drop_from_commit(slave);

  // Work not covered by a received robj is lost with the dead node's robj;
  // re-enqueue and replay it.
  std::vector<storage::ChunkId> lost = std::move(done_unchk_[slave]);
  auto& inflight = inflight_[slave];
  outstanding_total_ -= static_cast<std::uint32_t>(inflight.size());
  lost.insert(lost.end(), inflight.begin(), inflight.end());
  inflight.clear();
  done_unchk_[slave].clear();

  reclaim_lost_work(slave, std::move(lost));
  finish_commit_if_complete();
  maybe_commit();
}

void MasterNode::reclaim_lost_work(net::EndpointId slave,
                                   std::vector<storage::ChunkId> lost) {
  if (cache::Prefetcher* pf = ctx_.prefetcher(site_)) {
    // The dead slave may be joined on in-flight prefetches — its completion
    // callbacks must never fire. And chunks it already consumed are about to
    // be re-enqueued: clear their issued/consumed dedup entries so the
    // recovery copies are prefetchable again.
    pf->drop_owner(slave);
    for (storage::ChunkId c : lost) pf->release(c);
  }

  const bool work_remains = !lost.empty() || !pool_.empty() ||
                            outstanding_total_ > 0 || !no_more_;
  const bool migrated =
      (ctx_.on_node_lost && work_remains) ? ctx_.on_node_lost(site_) : false;

  if (!lost.empty()) {
    reexecuted_jobs_ += static_cast<std::uint32_t>(lost.size());
    ctx_.recorder.lifecycle.chunks_reexecuted +=
        static_cast<std::uint32_t>(lost.size());
    for (storage::ChunkId c : lost) {
      ctx_.recorder.lifecycle.bytes_reexecuted += ctx_.layout.chunk(c).bytes;
    }
    if (migrated) {
      // A replacement node was leased: re-pool the lost chunks for pull-based
      // replay so the booted node (and any idle survivor still waiting)
      // claims them on demand instead of overloading the survivors.
      for (storage::ChunkId c : lost) pool_.push_back(c);
      serve_waiting();
    } else {
      const std::vector<net::EndpointId> targets = push_targets();
      if (targets.empty()) {
        throw std::runtime_error("MasterNode: all slaves of a cluster failed");
      }
      for (storage::ChunkId c : lost) {
        push_assign(c, targets[push_cursor_++ % targets.size()]);
      }
    }
  }
}

std::vector<net::EndpointId> MasterNode::push_targets() const {
  std::vector<net::EndpointId> targets;
  for (net::EndpointId s : slaves_) {
    if (!dead_.count(s) && !draining_slaves_.count(s) && !dormant_.count(s) &&
        !booting_.count(s)) {
      targets.push_back(s);
    }
  }
  if (targets.empty()) {
    // Every survivor is draining: bounce work at them anyway — each bounce
    // re-pools the chunk, which either reaches a migration replacement or
    // surfaces the wipe-out as a hard error once the last node vacates.
    for (net::EndpointId s : slaves_) {
      if (!dead_.count(s) && !dormant_.count(s) && !booting_.count(s)) {
        targets.push_back(s);
      }
    }
  }
  return targets;
}

void MasterNode::flush_pool_if_endgame() {
  if (!no_more_ || pool_.empty() || !waiting_slaves_.empty()) return;
  // Idle survivors already got NoMoreJobs and will never pull again, so work
  // that lands back in the pool at endgame must be pushed. Only running,
  // non-draining nodes qualify; with none, the pool waits for a migration
  // replacement to boot and pull.
  std::vector<net::EndpointId> targets;
  for (net::EndpointId s : slaves_) {
    if (!dead_.count(s) && !draining_slaves_.count(s) && !dormant_.count(s) &&
        !booting_.count(s)) {
      targets.push_back(s);
    }
  }
  if (targets.empty()) return;
  while (!pool_.empty()) {
    const storage::ChunkId c = pool_.front();
    pool_.pop_front();
    push_assign(c, targets[push_cursor_++ % targets.size()]);
  }
}

void MasterNode::on_chunk_returned(net::EndpointId slave, storage::ChunkId chunk) {
  draining_slaves_.insert(slave);
  auto& inflight = inflight_[slave];
  const auto it = std::find(inflight.begin(), inflight.end(), chunk);
  if (it == inflight.end()) return;  // already reclaimed via the vacate path
  inflight.erase(it);
  --outstanding_total_;
  // The chunk never started on the draining node: reverse the assignment
  // accounting (its re-assignment will account it again) and re-pool it.
  account_return(chunk);
  ++ctx_.recorder.lifecycle.chunks_returned;
  if (cache::Prefetcher* pf = ctx_.prefetcher(site_)) pf->release(chunk);
  pool_.push_back(chunk);
  serve_waiting();
  flush_pool_if_endgame();
  maybe_commit();
}

void MasterNode::on_node_vacated(net::EndpointId slave, const Message& msg) {
  if (dead_.count(slave)) return;
  // The final delta-robj rides the vacate notice: merging it checkpoints
  // everything the node ever completed, so a drain loses zero finished work.
  merge_slave_robj(msg);
  const std::uint64_t bytes =
      ctx_.options.profile.robj_bytes
          ? ctx_.options.profile.robj_bytes
          : std::max<std::uint64_t>(msg.robj_payload.size(), 64);
  auto& rec = ctx_.recorder.lifecycle;
  ++rec.nodes_vacated;
  ++vacated_slaves_;
  ++rec.checkpoint_flushes;
  rec.checkpoint_bytes += bytes;
  ctx_.trace(trace::EventKind::CheckpointFlushed, trace_name_,
             done_unchk_[slave].size(), bytes);
  done_unchk_[slave].clear();

  draining_slaves_.insert(slave);
  dead_.insert(slave);
  if (ctx_.options.replication) {
    ctx_.options.replication->mark_site_suspect(site_, ctx_.now_seconds());
  }
  waiting_slaves_.erase(
      std::remove(waiting_slaves_.begin(), waiting_slaves_.end(), slave),
      waiting_slaves_.end());
  drop_from_commit(slave);

  // An assignment pushed while the vacate notice was in flight crossed it on
  // the wire and was silently dropped by the now-dead node: reverse its
  // accounting and re-pool it (never fetched, so nothing is re-executed).
  std::vector<storage::ChunkId> crossed = std::move(inflight_[slave]);
  inflight_[slave].clear();
  outstanding_total_ -= static_cast<std::uint32_t>(crossed.size());
  if (cache::Prefetcher* pf = ctx_.prefetcher(site_)) {
    pf->drop_owner(slave);
    for (storage::ChunkId c : crossed) pf->release(c);
  }
  for (storage::ChunkId c : crossed) {
    account_return(c);
    ++rec.chunks_returned;
    pool_.push_back(c);
  }

  const bool work_remains =
      !pool_.empty() || outstanding_total_ > 0 || !no_more_;
  const bool migrated = (ctx_.on_node_lost && work_remains)
                            ? ctx_.on_node_lost(site_)
                            : false;
  if (work_remains && !migrated) {
    // Without a replacement, stranded work needs a node that is (or will
    // again be) pulling: dormant standbys never start on their own and this
    // vacate already failed to lease one, so a fully-emptied cluster is a
    // hard error, not a silent hang.
    bool recoverable = false;
    for (net::EndpointId s : slaves_) {
      if (!dead_.count(s) && !dormant_.count(s)) {
        recoverable = true;
        break;
      }
    }
    if (!recoverable) {
      throw std::runtime_error(
          "MasterNode: all slaves of a cluster vacated with work remaining "
          "and no replacement available");
    }
  }
  serve_waiting();
  if (!migrated) flush_pool_if_endgame();
  finish_commit_if_complete();
  maybe_commit();
}

void MasterNode::maybe_refill() {
  if (refill_outstanding_ || no_more_) return;
  if (pool_.size() > ctx_.options.refill_watermark && waiting_slaves_.empty()) return;
  refill_outstanding_ = true;
  Message msg;
  msg.type = MsgType::BatchRequest;
  ctx_.trace(trace::EventKind::BatchRequested, trace_name_,
             std::max<std::uint32_t>(ctx_.options.policy.batch_size,
                                     static_cast<std::uint32_t>(waiting_slaves_.size())));
  msg.want = std::max<std::uint32_t>(ctx_.options.policy.batch_size,
                                     static_cast<std::uint32_t>(waiting_slaves_.size()));
  ctx_.send(self_, head_, kControlMessageBytes, std::move(msg));
}

void MasterNode::serve_waiting() {
  while (!waiting_slaves_.empty() && !pool_.empty()) {
    assign_to(waiting_slaves_.front());
    waiting_slaves_.pop_front();
  }
  if (no_more_ && pool_.empty()) {
    while (!waiting_slaves_.empty()) {
      Message reply;
      reply.type = MsgType::NoMoreJobs;
      ctx_.send(self_, waiting_slaves_.front(), kControlMessageBytes,
                        std::move(reply));
      waiting_slaves_.pop_front();
    }
  }
}

void MasterNode::assign_to(net::EndpointId slave) {
  // File affinity: continue the slave's sequential read if the pool holds
  // the successor chunk of what it last processed; otherwise take the front.
  auto pick = pool_.begin();
  if (const auto it = last_read_.find(slave); it != last_read_.end()) {
    for (auto p = pool_.begin(); p != pool_.end(); ++p) {
      const storage::ChunkInfo& info = ctx_.layout.chunk(*p);
      if (info.file == it->second.first && info.index_in_file == it->second.second) {
        pick = p;
        break;
      }
    }
  }
  const storage::ChunkId chunk = *pick;
  pool_.erase(pick);
  push_assign(chunk, slave);
}

void MasterNode::push_assign(storage::ChunkId chunk, net::EndpointId slave) {
  const storage::ChunkInfo& info = ctx_.layout.chunk(chunk);
  last_read_[slave] = {info.file, info.index_in_file + 1};
  if (cache::Prefetcher* pf = ctx_.prefetcher(site_)) {
    // Assigned now: if its prefetch has not been issued the slave's own fetch
    // is the transfer (an already-airborne GET stays up and gets joined).
    pf->cancel(chunk);
  }
  // Replication: resolve the cheapest live replica once, at assignment time;
  // accounting, the wire message, and the slave's fetch all use that store.
  const storage::StoreId from = ctx_.resolve_store(site_, chunk);
  if (ctx_.options.replication) assigned_store_[chunk] = from;
  account_assignment(chunk, from);
  if (!ctx_.options.reduction_tree) {
    inflight_[slave].push_back(chunk);
    ++outstanding_total_;
  }
  Message msg;
  msg.type = MsgType::AssignJob;
  msg.chunk = chunk;
  if (ctx_.options.replication) msg.store = from;
  ctx_.send(self_, slave, kControlMessageBytes, std::move(msg));
}

storage::StoreId MasterNode::assigned_store(storage::ChunkId chunk) const {
  if (const auto it = assigned_store_.find(chunk); it != assigned_store_.end()) {
    return it->second;
  }
  return ctx_.layout.store_of(chunk);
}

void MasterNode::account_assignment(storage::ChunkId chunk, storage::StoreId from) {
  const storage::ChunkInfo& info = ctx_.layout.chunk(chunk);
  if (from == preferred_store_) {
    ++ctx_.recorder.jobs_local[site_];
    ctx_.recorder.bytes_local[site_] += info.bytes;
  } else {
    ++ctx_.recorder.jobs_stolen[site_];
    ctx_.recorder.bytes_stolen[site_] += info.bytes;
  }
  ctx_.recorder.bytes_from_store[site_][from] += info.bytes;
}

void MasterNode::account_return(storage::ChunkId chunk) {
  const storage::ChunkInfo& info = ctx_.layout.chunk(chunk);
  const storage::StoreId from = assigned_store(chunk);
  if (from == preferred_store_) {
    --ctx_.recorder.jobs_local[site_];
    ctx_.recorder.bytes_local[site_] -= info.bytes;
  } else {
    --ctx_.recorder.jobs_stolen[site_];
    ctx_.recorder.bytes_stolen[site_] -= info.bytes;
  }
  ctx_.recorder.bytes_from_store[site_][from] -= info.bytes;
}

void MasterNode::merge_slave_robj(const Message& msg) {
  if (msg.robj_payload.empty() || !ctx_.options.task) return;
  BufferReader reader(msg.robj_payload);
  api::RobjPtr incoming = ctx_.options.task->create_robj();
  incoming->deserialize(reader);
  if (!robj_) {
    robj_ = std::move(incoming);
  } else {
    robj_->merge_from(*incoming);
  }
}

void MasterNode::maybe_commit() {
  if (ctx_.options.reduction_tree || committing_ || cluster_robj_sent_) return;
  if (!no_more_ || !pool_.empty() || outstanding_total_ != 0) return;
  // Two-phase commit: ask every live slave for its reduction object.
  committing_ = true;
  ++commit_round_;
  robjs_expected_ = 0;
  robjs_received_ = 0;
  commit_responded_.clear();
  for (net::EndpointId s : slaves_) {
    if (dead_.count(s)) continue;
    ++robjs_expected_;
    Message msg;
    msg.type = MsgType::RobjRequest;
    msg.want = commit_round_;
    ctx_.send(self_, s, kControlMessageBytes, std::move(msg));
  }
  if (robjs_expected_ == 0) {
    committing_ = false;
    if (vacated_slaves_ > 0) {
      // Every slave left gracefully: each vacate notice carried a final delta
      // robj, so the master already holds the cluster's complete state (the
      // guard above proved the pool is drained) — commit with what we have.
      send_cluster_robj();
      return;
    }
    throw std::runtime_error("MasterNode: no live slaves left to commit");
  }
}

void MasterNode::send_cluster_robj() {
  if (cluster_robj_sent_) return;
  cluster_robj_sent_ = true;
  Message up;
  up.type = MsgType::MasterRobj;
  if (robj_) {
    BufferWriter writer;
    robj_->serialize(writer);
    up.robj_payload = writer.take();
  }
  const std::uint64_t bytes = ctx_.options.profile.robj_bytes
                                  ? ctx_.options.profile.robj_bytes
                                  : std::max<std::uint64_t>(up.robj_payload.size(), 64);
  ctx_.trace(trace::EventKind::RobjSent, trace_name_, bytes);
  ctx_.send(self_, head_, bytes, std::move(up));
}

}  // namespace cloudburst::middleware
