#include "middleware/master_node.hpp"

#include <algorithm>
#include <stdexcept>

namespace cloudburst::middleware {

MasterNode::MasterNode(RunContext& ctx, cluster::ClusterId site, net::EndpointId self,
                       net::EndpointId head, std::vector<net::EndpointId> slaves,
                       storage::StoreId preferred_store)
    : ctx_(ctx), site_(site), trace_name_("master-" + ctx.platform.site_name(site)),
      self_(self), head_(head), slaves_(std::move(slaves)),
      preferred_store_(preferred_store) {}

void MasterNode::handle(net::EndpointId from, Message msg) {
  switch (msg.type) {
    case MsgType::SlaveJobRequest: {
      if (dead_.count(from)) break;  // late message from a crashed node
      if (!pool_.empty()) {
        waiting_slaves_.push_back(from);
        serve_waiting();
      } else if (no_more_) {
        Message reply;
        reply.type = MsgType::NoMoreJobs;
        ctx_.send(self_, from, kControlMessageBytes, std::move(reply));
      } else {
        waiting_slaves_.push_back(from);
      }
      maybe_refill();
      break;
    }
    case MsgType::BatchAssign: {
      refill_outstanding_ = false;
      ctx_.trace(trace::EventKind::BatchGranted, trace_name_, msg.batch.size(),
                 msg.exhausted ? 1 : 0);
      for (storage::ChunkId c : msg.batch) pool_.push_back(c);
      if (msg.exhausted) no_more_ = true;
      serve_waiting();
      // Whatever stayed in the pool after serving the waiters is granted but
      // unfetched — exactly the lookahead the prefetcher feeds on.
      if (cache::Prefetcher* pf = ctx_.prefetcher(site_)) {
        pf->on_pool_update(pool_, ctx_.layout);
      }
      maybe_refill();
      if (!ctx_.options.reduction_tree) maybe_commit();
      break;
    }
    case MsgType::JobDone: {
      if (dead_.count(from)) break;
      auto& inflight = inflight_[from];
      const auto it = std::find(inflight.begin(), inflight.end(), msg.chunk);
      if (it != inflight.end()) {
        done_unchk_[from].push_back(*it);
        inflight.erase(it);
        --outstanding_total_;
      }
      maybe_commit();
      break;
    }
    case MsgType::SlaveRobj: {
      if (ctx_.options.reduction_tree) {
        // Rank 0 of the binomial tree delivers the merged cluster robj.
        merge_slave_robj(msg);
        ++tree_robjs_received_;
        if (tree_robjs_received_ == 1) send_cluster_robj();
      } else {
        if (dead_.count(from)) break;  // lost robj: its chunks get re-run
        merge_slave_robj(msg);
        done_unchk_[from].clear();  // robj receipt == checkpoint of done work
        // Only robjs of the current commit round count toward completion;
        // periodic-checkpoint robjs (round 0) and stale rounds just merge.
        if (msg.want != commit_round_) break;
        ++robjs_received_;
        if (committing_ && robjs_received_ == robjs_expected_) {
          committing_ = false;
          // If a failure re-opened work while we were committing, keep
          // going; otherwise the cluster is done.
          if (pool_.empty() && outstanding_total_ == 0 && no_more_) {
            send_cluster_robj();
          } else {
            maybe_commit();
          }
        }
      }
      break;
    }
    default:
      throw std::logic_error("MasterNode: unexpected message type");
  }
}

void MasterNode::start() {
  if (ctx_.options.reduction_tree || ctx_.options.checkpoint_interval_seconds <= 0.0) {
    return;
  }
  ctx_.sim().schedule(des::from_seconds(ctx_.options.checkpoint_interval_seconds),
                      [this] { checkpoint_tick(); });
}

void MasterNode::checkpoint_tick() {
  if (cluster_robj_sent_) return;  // run over for this cluster
  for (net::EndpointId s : slaves_) {
    if (dead_.count(s)) continue;
    if (done_unchk_[s].empty()) continue;  // nothing new to protect
    Message msg;
    msg.type = MsgType::RobjRequest;
    msg.want = 0;  // periodic round
    ctx_.send(self_, s, kControlMessageBytes, std::move(msg));
  }
  ctx_.sim().schedule(des::from_seconds(ctx_.options.checkpoint_interval_seconds),
                      [this] { checkpoint_tick(); });
}

void MasterNode::assign_static(
    const std::vector<std::pair<net::EndpointId, storage::ChunkId>>& plan) {
  no_more_ = true;  // nothing will ever be pulled from the head
  for (const auto& [slave, chunk] : plan) push_assign(chunk, slave);
}

void MasterNode::on_slave_failed(net::EndpointId slave) {
  if (dead_.count(slave)) return;
  dead_.insert(slave);
  waiting_slaves_.erase(
      std::remove(waiting_slaves_.begin(), waiting_slaves_.end(), slave),
      waiting_slaves_.end());

  // Work not covered by a received robj is lost with the dead node's robj;
  // re-enqueue and push it to the survivors.
  std::vector<storage::ChunkId> lost = std::move(done_unchk_[slave]);
  auto& inflight = inflight_[slave];
  outstanding_total_ -= static_cast<std::uint32_t>(inflight.size());
  lost.insert(lost.end(), inflight.begin(), inflight.end());
  inflight.clear();
  done_unchk_[slave].clear();

  if (cache::Prefetcher* pf = ctx_.prefetcher(site_)) {
    // The dead slave may be joined on in-flight prefetches — its completion
    // callbacks must never fire. And chunks it already consumed are about to
    // be re-enqueued: clear their issued/consumed dedup entries so the
    // recovery copies are prefetchable again.
    pf->drop_owner(slave);
    for (storage::ChunkId c : lost) pf->release(c);
  }

  if (!lost.empty()) {
    reexecuted_jobs_ += static_cast<std::uint32_t>(lost.size());
    std::vector<net::EndpointId> live;
    for (net::EndpointId s : slaves_) {
      if (!dead_.count(s)) live.push_back(s);
    }
    if (live.empty()) {
      throw std::runtime_error("MasterNode: all slaves of a cluster failed");
    }
    for (storage::ChunkId c : lost) {
      push_assign(c, live[push_cursor_++ % live.size()]);
    }
  }
  maybe_commit();
}

void MasterNode::maybe_refill() {
  if (refill_outstanding_ || no_more_) return;
  if (pool_.size() > ctx_.options.refill_watermark && waiting_slaves_.empty()) return;
  refill_outstanding_ = true;
  Message msg;
  msg.type = MsgType::BatchRequest;
  ctx_.trace(trace::EventKind::BatchRequested, trace_name_,
             std::max<std::uint32_t>(ctx_.options.policy.batch_size,
                                     static_cast<std::uint32_t>(waiting_slaves_.size())));
  msg.want = std::max<std::uint32_t>(ctx_.options.policy.batch_size,
                                     static_cast<std::uint32_t>(waiting_slaves_.size()));
  ctx_.send(self_, head_, kControlMessageBytes, std::move(msg));
}

void MasterNode::serve_waiting() {
  while (!waiting_slaves_.empty() && !pool_.empty()) {
    assign_to(waiting_slaves_.front());
    waiting_slaves_.pop_front();
  }
  if (no_more_ && pool_.empty()) {
    while (!waiting_slaves_.empty()) {
      Message reply;
      reply.type = MsgType::NoMoreJobs;
      ctx_.send(self_, waiting_slaves_.front(), kControlMessageBytes,
                        std::move(reply));
      waiting_slaves_.pop_front();
    }
  }
}

void MasterNode::assign_to(net::EndpointId slave) {
  // File affinity: continue the slave's sequential read if the pool holds
  // the successor chunk of what it last processed; otherwise take the front.
  auto pick = pool_.begin();
  if (const auto it = last_read_.find(slave); it != last_read_.end()) {
    for (auto p = pool_.begin(); p != pool_.end(); ++p) {
      const storage::ChunkInfo& info = ctx_.layout.chunk(*p);
      if (info.file == it->second.first && info.index_in_file == it->second.second) {
        pick = p;
        break;
      }
    }
  }
  const storage::ChunkId chunk = *pick;
  pool_.erase(pick);
  push_assign(chunk, slave);
}

void MasterNode::push_assign(storage::ChunkId chunk, net::EndpointId slave) {
  const storage::ChunkInfo& info = ctx_.layout.chunk(chunk);
  last_read_[slave] = {info.file, info.index_in_file + 1};
  if (cache::Prefetcher* pf = ctx_.prefetcher(site_)) {
    // Assigned now: if its prefetch has not been issued the slave's own fetch
    // is the transfer (an already-airborne GET stays up and gets joined).
    pf->cancel(chunk);
  }
  account_assignment(chunk);
  if (!ctx_.options.reduction_tree) {
    inflight_[slave].push_back(chunk);
    ++outstanding_total_;
  }
  Message msg;
  msg.type = MsgType::AssignJob;
  msg.chunk = chunk;
  ctx_.send(self_, slave, kControlMessageBytes, std::move(msg));
}

void MasterNode::account_assignment(storage::ChunkId chunk) {
  const storage::ChunkInfo& info = ctx_.layout.chunk(chunk);
  const storage::StoreId from = ctx_.layout.store_of(chunk);
  if (from == preferred_store_) {
    ++ctx_.recorder.jobs_local[site_];
    ctx_.recorder.bytes_local[site_] += info.bytes;
  } else {
    ++ctx_.recorder.jobs_stolen[site_];
    ctx_.recorder.bytes_stolen[site_] += info.bytes;
  }
  ctx_.recorder.bytes_from_store[site_][from] += info.bytes;
}

void MasterNode::merge_slave_robj(const Message& msg) {
  if (msg.robj_payload.empty() || !ctx_.options.task) return;
  BufferReader reader(msg.robj_payload);
  api::RobjPtr incoming = ctx_.options.task->create_robj();
  incoming->deserialize(reader);
  if (!robj_) {
    robj_ = std::move(incoming);
  } else {
    robj_->merge_from(*incoming);
  }
}

void MasterNode::maybe_commit() {
  if (ctx_.options.reduction_tree || committing_ || cluster_robj_sent_) return;
  if (!no_more_ || !pool_.empty() || outstanding_total_ != 0) return;
  // Two-phase commit: ask every live slave for its reduction object.
  committing_ = true;
  ++commit_round_;
  robjs_expected_ = 0;
  robjs_received_ = 0;
  for (net::EndpointId s : slaves_) {
    if (dead_.count(s)) continue;
    ++robjs_expected_;
    Message msg;
    msg.type = MsgType::RobjRequest;
    msg.want = commit_round_;
    ctx_.send(self_, s, kControlMessageBytes, std::move(msg));
  }
  if (robjs_expected_ == 0) {
    throw std::runtime_error("MasterNode: no live slaves left to commit");
  }
}

void MasterNode::send_cluster_robj() {
  if (cluster_robj_sent_) return;
  cluster_robj_sent_ = true;
  Message up;
  up.type = MsgType::MasterRobj;
  if (robj_) {
    BufferWriter writer;
    robj_->serialize(writer);
    up.robj_payload = writer.take();
  }
  const std::uint64_t bytes = ctx_.options.profile.robj_bytes
                                  ? ctx_.options.profile.robj_bytes
                                  : std::max<std::uint64_t>(up.robj_payload.size(), 64);
  ctx_.trace(trace::EventKind::RobjSent, trace_name_, bytes);
  ctx_.send(self_, head_, bytes, std::move(up));
}

}  // namespace cloudburst::middleware
