#include "middleware/head_node.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

namespace cloudburst::middleware {

HeadNode::HeadNode(RunContext& ctx, net::EndpointId self, JobPool pool,
                   std::vector<MasterInfo> masters, const api::GRTask* task)
    : ctx_(ctx), self_(self), pool_(std::move(pool)), masters_(std::move(masters)),
      task_(task), robjs_expected_(static_cast<std::uint32_t>(masters_.size())) {}

void HeadNode::handle(net::EndpointId from, Message msg) {
  switch (msg.type) {
    case MsgType::BatchRequest: {
      if (failed_masters_.count(from)) break;  // in flight when its site died
      const auto it = std::find_if(masters_.begin(), masters_.end(),
                                   [&](const MasterInfo& m) { return m.endpoint == from; });
      if (it == masters_.end()) throw std::logic_error("HeadNode: request from unknown master");
      // The endgame reservation covers exactly the stores other registered
      // clusters prefer: their last `steal_reserve` jobs stay off limits
      // while their owner is still in the run.
      std::vector<storage::StoreId> reserved;
      for (const auto& m : masters_) {
        if (m.endpoint == from || m.preferred_store == it->preferred_store) continue;
        if (m.preferred_store == storage::kInvalidStore) continue;
        if (failed_masters_.count(m.endpoint)) continue;  // nobody left to reserve for
        if (std::find(reserved.begin(), reserved.end(), m.preferred_store) == reserved.end()) {
          reserved.push_back(m.preferred_store);
        }
      }
      Message reply;
      reply.type = MsgType::BatchAssign;
      reply.batch = pool_.take_batch(it->preferred_store, msg.want, reserved);
      // An empty batch means this master can get nothing further — either
      // the pool is drained or stealing is disabled and its side is done.
      reply.exhausted = reply.batch.empty();
      auto& granted = granted_[from];
      granted.insert(granted.end(), reply.batch.begin(), reply.batch.end());
      ctx_.send(self_, from, kControlMessageBytes, std::move(reply));
      break;
    }
    case MsgType::MasterRobj:
      if (failed_masters_.count(from)) break;  // its work was re-granted; drop
      // Receipt commits everything granted so far: the cluster robj covers it.
      robj_received_.insert(from);
      granted_.erase(from);
      merge_robj(std::move(msg));
      break;
    default:
      throw std::logic_error("HeadNode: unexpected message type");
  }
}

void HeadNode::on_master_failed(net::EndpointId master) {
  if (failed_masters_.count(master)) return;
  const bool known = std::any_of(masters_.begin(), masters_.end(),
                                 [&](const MasterInfo& m) { return m.endpoint == master; });
  if (!known) return;
  failed_masters_.insert(master);
  if (robj_received_.count(master)) return;  // its work already committed

  // The cluster's robj dies with it: withdraw it from the global reduction
  // and re-grant every chunk it was holding to the surviving masters.
  --robjs_expected_;
  std::vector<storage::ChunkId> orphaned = std::move(granted_[master]);
  granted_.erase(master);

  std::vector<net::EndpointId> survivors;
  for (const auto& m : masters_) {
    if (!failed_masters_.count(m.endpoint)) survivors.push_back(m.endpoint);
  }
  if (!orphaned.empty()) {
    if (survivors.empty()) {
      throw std::runtime_error(
          "HeadNode: a master failed with uncommitted work and no surviving "
          "cluster to adopt it");
    }
    std::map<net::EndpointId, std::vector<storage::ChunkId>> adopt;
    for (std::size_t i = 0; i < orphaned.size(); ++i) {
      adopt[survivors[i % survivors.size()]].push_back(orphaned[i]);
    }
    for (auto& [ep, chunks] : adopt) {
      if (robj_received_.erase(ep)) {
        // The adopter already committed: expect a second (delta) robj.
        ++robjs_expected_;
      }
      auto& granted = granted_[ep];
      granted.insert(granted.end(), chunks.begin(), chunks.end());
      Message reopen;
      reopen.type = MsgType::BatchAssign;
      reopen.reopen = true;
      reopen.batch = std::move(chunks);
      ctx_.send(self_, ep, kControlMessageBytes, std::move(reopen));
    }
  }
  // The failed master may have been the last straggler: with nothing to
  // re-grant, every surviving robj may already be merged.
  if (robjs_merged_ == robjs_expected_ && !ctx_.recorder.finished) finish_run();
}

void HeadNode::merge_robj(Message msg) {
  // Merges serialize on the head node and cost robj_bytes / merge rate.
  const AppProfile& profile = ctx_.options.profile;
  const std::uint64_t robj_bytes =
      profile.robj_bytes ? profile.robj_bytes
                         : std::max<std::uint64_t>(msg.robj_payload.size(), 64);
  const double merge_seconds =
      profile.merge_bytes_per_second > 0.0
          ? static_cast<double>(robj_bytes) / profile.merge_bytes_per_second
          : 0.0;
  const double now = ctx_.now_seconds();
  merge_free_at_ = std::max(merge_free_at_, now) + merge_seconds;
  const double done_at = merge_free_at_;

  auto payload = std::make_shared<std::vector<std::uint8_t>>(std::move(msg.robj_payload));
  ctx_.sim().schedule(des::from_seconds(done_at - now), [this, payload] {
    if (!payload->empty() && task_) {
      BufferReader reader(*payload);
      api::RobjPtr incoming = task_->create_robj();
      incoming->deserialize(reader);
      if (!robj_) {
        robj_ = std::move(incoming);
      } else {
        robj_->merge_from(*incoming);
      }
    }
    ctx_.trace(trace::EventKind::RobjMerged, "head");
    ++robjs_merged_;
    if (robjs_merged_ == robjs_expected_) finish_run();
  });
}

void HeadNode::finish_run() {
  if (robj_ && task_) task_->finalize(*robj_);
  ctx_.recorder.end_time = ctx_.now_seconds();
  ctx_.recorder.finished = true;
  ctx_.trace(trace::EventKind::RunEnd, "head");
  if (ctx_.on_finished) ctx_.on_finished();
}

}  // namespace cloudburst::middleware
