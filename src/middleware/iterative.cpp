#include "middleware/iterative.hpp"

#include <memory>
#include <stdexcept>

namespace cloudburst::middleware {

namespace {

using SlaveList = std::shared_ptr<const std::vector<net::EndpointId>>;

/// Start binomial-broadcast flows from slave `rank` to its subtree.
/// Children of rank r are r + 2^k for bits below r's lowest set bit (rank 0
/// spans everything) — the reverse of the reduction tree. The slave list is
/// shared-owned by every completion callback (they outlive this frame).
void broadcast_subtree(net::Network& net, const SlaveList& slaves, std::uint32_t rank,
                       std::uint64_t bytes) {
  const auto n = static_cast<std::uint32_t>(slaves->size());
  for (std::uint32_t bit = 1; bit < n; bit <<= 1) {
    if (rank & bit) break;
    const std::uint32_t child = rank + bit;
    if (child >= n) continue;
    net.start_flow((*slaves)[rank], (*slaves)[child], bytes, 0.0,
                   [&net, slaves, child, bytes] {
                     broadcast_subtree(net, slaves, child, bytes);
                   });
  }
}

}  // namespace

double simulate_broadcast(const cluster::PlatformSpec& spec, std::uint64_t robj_bytes) {
  cluster::Platform platform(spec);
  net::Network& net = platform.network();

  for (cluster::ClusterId side = 0; side < platform.cluster_count(); ++side) {
    const auto& nodes = platform.nodes(side);
    if (nodes.empty()) continue;
    auto slaves = std::make_shared<std::vector<net::EndpointId>>();
    for (const auto& node : nodes) slaves->push_back(node.endpoint);
    // head -> master (WAN for remote sites), master -> slave tree.
    net.start_flow(platform.head_endpoint(), platform.master_endpoint(side), robj_bytes,
                   0.0, [&net, &platform, side, slaves, robj_bytes] {
                     net.start_flow(platform.master_endpoint(side), (*slaves)[0],
                                    robj_bytes, 0.0, [&net, slaves, robj_bytes] {
                                      broadcast_subtree(net, slaves, 0, robj_bytes);
                                    });
                   });
  }
  return des::to_seconds(platform.sim().run());
}

IterativeResult run_iterative(IterativeRequest request) {
  if (!request.layout) throw std::invalid_argument("run_iterative: layout is required");
  if (request.iterations == 0) {
    throw std::invalid_argument("run_iterative: need at least one iteration");
  }

  IterativeResult out;
  const std::uint64_t robj_bytes =
      request.options.profile.robj_bytes ? request.options.profile.robj_bytes : 0;
  // The broadcast topology is identical every pass; simulate it once.
  const double broadcast =
      robj_bytes ? simulate_broadcast(request.platform_spec, robj_bytes) : 0.0;

  for (std::size_t iter = 0; iter < request.iterations; ++iter) {
    cluster::Platform platform(request.platform_spec);
    RunResult pass = run_distributed(platform, *request.layout, request.options);
    out.compute_seconds += pass.total_time;
    if (iter + 1 < request.iterations) out.broadcast_seconds += broadcast;

    if (request.next_task) {
      const api::GRTask* next = request.next_task(iter, pass.robj.get());
      if (!next) throw std::invalid_argument("run_iterative: next_task returned null");
      request.options.task = next;
    }
    out.final_robj = std::move(pass.robj);
    out.passes.push_back(std::move(pass));
  }
  out.total_seconds = out.compute_seconds + out.broadcast_seconds;
  return out;
}

}  // namespace cloudburst::middleware
