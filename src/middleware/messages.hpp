// Control-plane protocol between head, masters, and slaves (paper Fig. 2).
//
//   slave  -> master : SlaveJobRequest        (on-demand pooling)
//   master -> slave  : AssignJob | NoMoreJobs
//   master -> head   : BatchRequest           (cluster pool refill)
//   head   -> master : BatchAssign            (locality/consecutive batch,
//                                              exhausted flag)
//   slave  -> master : SlaveRobj              (intra-cluster reduction)
//   master -> head   : MasterRobj             (global reduction input)
//   slave  -> master : ChunkReturned | NodeVacated  (graceful drain: hand
//                                              back unstarted work, flush the
//                                              final delta-robj checkpoint)
//
// Messages ride the simulated network: control messages charge a small
// fixed size, robj messages charge the application's robj_bytes — which is
// why pagerank's global reduction is expensive across the WAN.
#pragma once

#include <cstdint>
#include <vector>

#include "storage/data_layout.hpp"

namespace cloudburst::middleware {

enum class MsgType : std::uint8_t {
  SlaveJobRequest,
  AssignJob,
  NoMoreJobs,
  BatchRequest,
  BatchAssign,
  SlaveRobj,
  MasterRobj,
  // Fault-tolerant (direct-reduction) protocol additions:
  JobDone,      ///< slave -> master: chunk finished (completion tracking)
  RobjRequest,  ///< master -> slave: ship your reduction object now
  // Node-lifecycle (graceful drain / spot reclamation) additions:
  ChunkReturned,  ///< draining slave -> master: hand an assigned chunk back unstarted
  NodeVacated,    ///< draining slave -> master: final delta-robj checkpoint + goodbye
};

struct Message {
  MsgType type = MsgType::SlaveJobRequest;

  /// Workload multiplexing: id of the job this message belongs to. Shared
  /// endpoints (a node running slave actors of several concurrent jobs)
  /// demultiplex on it; single-job runs leave it 0 throughout. Carried out
  /// of band — it adds nothing to the charged wire size.
  std::uint32_t job = 0;

  // AssignJob
  storage::ChunkId chunk = 0;

  /// AssignJob under replication: the replica store the master resolved for
  /// this chunk (kInvalidStore = read the layout primary). Out of band like
  /// `job` — the charged wire size does not change.
  storage::StoreId store = storage::kInvalidStore;

  // BatchRequest: jobs wanted. RobjRequest/SlaveRobj: checkpoint round id
  // (the slave echoes it so the master can tell a commit-round robj from a
  // periodic-checkpoint robj).
  std::uint32_t want = 0;

  // BatchAssign
  std::vector<storage::ChunkId> batch;
  bool exhausted = false;

  /// BatchAssign only: head-driven reopen after a peer master's site went
  /// dark. The batch is that master's reclaimed (uncommitted) work, pushed
  /// unsolicited at a survivor; a master that already shipped its cluster
  /// robj re-opens its commit to cover the adopted chunks. Out of band like
  /// `job` — the charged wire size does not change.
  bool reopen = false;

  // SlaveRobj / MasterRobj: payload travels by size only in the timing
  // model; when a real task is attached (RunOptions::task) the serialized
  // robj rides along here.
  std::vector<std::uint8_t> robj_payload;
};

/// Declared wire size of a control message (bytes charged to the network).
constexpr std::uint64_t kControlMessageBytes = 256;

}  // namespace cloudburst::middleware
