#include "middleware/runtime.hpp"

#include <stdexcept>
#include <utility>

#include "middleware/job_execution.hpp"
#include "net/messaging.hpp"

namespace cloudburst::middleware {

RunResult run_distributed(cluster::Platform& platform, const storage::DataLayout& layout,
                          const RunOptions& options) {
  validate_run(platform, layout, options);

  net::Postman<Message> postman(platform.network());
  JobExecution job(platform, layout, options, postman,
                   [&postman](net::EndpointId ep,
                              std::function<void(net::EndpointId, Message)> handler) {
                     postman.register_mailbox(ep, std::move(handler));
                   });
  job.start();
  platform.sim().run();

  if (!job.finished()) {
    throw std::runtime_error("run_distributed: simulation drained without completing the run");
  }
  return job.collect();
}

}  // namespace cloudburst::middleware
