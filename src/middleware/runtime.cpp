#include "middleware/runtime.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <stdexcept>
#include <vector>

#include "middleware/head_node.hpp"
#include "middleware/master_node.hpp"
#include "middleware/slave_node.hpp"
#include "net/messaging.hpp"

namespace cloudburst::middleware {

RunResult run_distributed(cluster::Platform& platform, const storage::DataLayout& layout,
                          const RunOptions& options) {
  if ((options.task == nullptr) != (options.dataset == nullptr)) {
    throw std::invalid_argument("run_distributed: task and dataset must be set together");
  }
  if (platform.total_nodes() == 0) {
    throw std::invalid_argument("run_distributed: platform has no compute nodes");
  }
  if (layout.chunks().empty()) {
    throw std::invalid_argument("run_distributed: layout has no chunks");
  }
  if (options.checkpoint_interval_seconds > 0.0 && options.reduction_tree) {
    throw std::invalid_argument(
        "run_distributed: periodic checkpointing requires reduction_tree = false");
  }
  if (!options.failures.empty() && options.reduction_tree) {
    throw std::invalid_argument(
        "run_distributed: failure injection requires reduction_tree = false "
        "(the master must track per-slave work)");
  }
  if (options.elastic.enabled) {
    if (options.reduction_tree) {
      throw std::invalid_argument(
          "run_distributed: elastic bursting requires reduction_tree = false");
    }
    const auto cloud_nodes = platform.cloud_node_count();
    if (cloud_nodes > 0 && options.elastic.initial_cloud_nodes == 0) {
      throw std::invalid_argument(
          "run_distributed: elastic bursting needs at least one initial cloud node");
    }
    if (options.elastic.check_interval_seconds <= 0.0) {
      throw std::invalid_argument("run_distributed: elastic check interval must be > 0");
    }
  }
  for (const auto& f : options.failures) {
    if (f.side >= platform.cluster_count()) {
      throw std::invalid_argument("run_distributed: failure names an unknown cluster");
    }
    const auto& nodes = platform.nodes(f.side);
    if (f.node_index >= nodes.size()) {
      throw std::invalid_argument("run_distributed: failure names an unknown node");
    }
    std::size_t failing_here = 0;
    for (const auto& g : options.failures) {
      if (g.side == f.side) ++failing_here;
    }
    if (failing_here >= nodes.size()) {
      throw std::invalid_argument(
          "run_distributed: failures would leave a cluster with no live slaves");
    }
  }

  net::Postman<Message> postman(platform.network());
  RunContext ctx{platform, layout, options, postman, RunRecorder{}, {}, {}};
  ctx.recorder.init(platform.cluster_count(), platform.store_count());

  // Real execution: map chunk ids to dataset unit offsets.
  if (options.task) {
    if (options.task->unit_bytes() != options.dataset->unit_bytes()) {
      throw std::invalid_argument("run_distributed: task/dataset unit size mismatch");
    }
    ctx.chunk_unit_offset.resize(layout.chunks().size());
    std::uint64_t offset = 0;
    for (const auto& chunk : layout.chunks()) {
      ctx.chunk_unit_offset[chunk.id] = offset;
      offset += chunk.units;
    }
    if (offset != options.dataset->units()) {
      throw std::invalid_argument(
          "run_distributed: layout units do not tile the dataset exactly");
    }
  }

  // --- prefetchers ------------------------------------------------------------
  // One per compute site when the attached cache fleet enables prefetching.
  // The Env hooks close over ctx/platform, which outlive the prefetchers
  // (both live to the end of this function).
  if (options.cache && options.cache->config().prefetch.enabled) {
    const cache::CacheConfig& cfg = options.cache->config();
    ctx.prefetchers.resize(platform.cluster_count());
    for (cluster::ClusterId site = 0; site < platform.cluster_count(); ++site) {
      if (platform.nodes(site).empty()) continue;
      cache::Prefetcher::Env env;
      env.compression_ratio = std::max(1.0, options.profile.compression_ratio);
      env.cacheable = [&ctx, site](storage::StoreId s) {
        return ctx.store_cacheable(site, s);
      };
      const std::string pf_name = "prefetch-" + platform.site_name(site);
      const net::EndpointId master_ep = platform.master_endpoint(site);
      const unsigned streams = cfg.prefetch.streams
                                   ? cfg.prefetch.streams
                                   : std::max(1u, options.retrieval_streams);
      // Prefetch GETs ride the same retry machinery as slave fetches; a
      // permanently failed GET settles done(false) and the prefetcher aborts.
      env.fetch = [&ctx, &platform, &options, site, pf_name, master_ep, streams](
                      storage::StoreId s, const storage::ChunkInfo& wire,
                      std::function<void(bool ok)> done) {
        storage::fetch_with_retry(
            platform.sim(), platform.store(s), master_ep, wire, streams,
            options.retry, ctx.retry_hooks(site, pf_name, wire.id, s),
            [done = std::move(done)](const storage::FetchResult& r) {
              if (done) done(r.ok);
            });
      };
      env.trace = [&ctx, pf_name](trace::EventKind kind, std::uint64_t a,
                                  std::uint64_t b) { ctx.trace(kind, pf_name, a, b); };
      env.on_issue = [&ctx, site](storage::StoreId s, const storage::ChunkInfo& info) {
        ++ctx.recorder.prefetch_issued[site];
        ctx.recorder.bytes_from_store[site][s] += info.bytes;
      };
      env.on_abort = [&ctx, site](storage::StoreId s, const storage::ChunkInfo& info) {
        ctx.recorder.bytes_from_store[site][s] -= info.bytes;
      };
      ctx.prefetchers[site] = std::make_unique<cache::Prefetcher>(
          options.cache->site(site), cfg.prefetch, std::move(env));
    }
  }

  // --- build actors ----------------------------------------------------------
  std::vector<HeadNode::MasterInfo> master_infos;
  std::vector<std::unique_ptr<MasterNode>> masters;
  std::vector<std::unique_ptr<SlaveNode>> slaves;

  for (cluster::ClusterId site = 0; site < platform.cluster_count(); ++site) {
    const auto& nodes = platform.nodes(site);
    if (nodes.empty()) continue;
    const net::EndpointId master_ep = platform.master_endpoint(site);
    master_infos.push_back(
        HeadNode::MasterInfo{master_ep, platform.store_of_cluster(site)});
    auto peers = std::make_shared<std::vector<net::EndpointId>>();
    for (const auto& node : nodes) peers->push_back(node.endpoint);
    masters.push_back(std::make_unique<MasterNode>(
        ctx, site, master_ep, platform.head_endpoint(), *peers,
        platform.store_of_cluster(site)));
    std::uint32_t rank = 0;
    for (const auto& node : nodes) {
      const std::size_t stat_index = ctx.recorder.nodes.size();
      NodeTimes times;
      times.name = node.name;
      times.cluster = site;
      ctx.recorder.nodes.push_back(std::move(times));
      slaves.push_back(
          std::make_unique<SlaveNode>(ctx, node, master_ep, stat_index, rank++, peers));
    }
  }

  HeadNode head(ctx, platform.head_endpoint(), JobPool(layout, options.policy),
                master_infos, options.task);

  // --- wire mailboxes ---------------------------------------------------------
  postman.register_mailbox(head.endpoint(),
                           [&head](net::EndpointId from, Message msg) {
                             head.handle(from, std::move(msg));
                           });
  for (auto& master : masters) {
    MasterNode* m = master.get();
    postman.register_mailbox(
        m->endpoint(), [m](net::EndpointId from, Message msg) { m->handle(from, std::move(msg)); });
  }
  for (auto& slave : slaves) {
    SlaveNode* s = slave.get();
    postman.register_mailbox(
        s->endpoint(), [s](net::EndpointId from, Message msg) { s->handle(from, std::move(msg)); });
  }

  // --- static assignment baseline -------------------------------------------------
  if (options.static_assignment) {
    if (!options.failures.empty() || options.elastic.enabled) {
      throw std::invalid_argument(
          "run_distributed: static assignment excludes failures and elastic mode");
    }
    // Each chunk goes to the cluster whose preferred store holds it; chunks
    // on a store no active cluster prefers are dealt round-robin across the
    // clusters (a lone cluster therefore takes everything).
    std::map<storage::StoreId, std::size_t> store_owner;
    for (std::size_t m = 0; m < masters.size(); ++m) {
      store_owner.emplace(master_infos[m].preferred_store, m);
    }
    std::vector<std::vector<std::pair<net::EndpointId, storage::ChunkId>>> plans(
        masters.size());
    std::vector<std::size_t> cursors(masters.size(), 0);
    std::size_t orphan_cursor = 0;
    for (const auto& chunk : layout.chunks()) {
      const auto it = store_owner.find(layout.store_of(chunk.id));
      const std::size_t m =
          it != store_owner.end() ? it->second : orphan_cursor++ % masters.size();
      const auto& nodes = platform.nodes(masters[m]->site());
      plans[m].emplace_back(nodes[cursors[m]++ % nodes.size()].endpoint, chunk.id);
    }
    for (std::size_t m = 0; m < masters.size(); ++m) {
      masters[m]->assign_static(plans[m]);
    }
  }

  // --- failure injection --------------------------------------------------------
  for (const auto& f : options.failures) {
    // Locate the victim slave and its master.
    const auto& nodes = platform.nodes(f.side);
    const net::EndpointId victim_ep = nodes.at(f.node_index).endpoint;
    SlaveNode* victim = nullptr;
    for (auto& s : slaves) {
      if (s->endpoint() == victim_ep) victim = s.get();
    }
    MasterNode* master = nullptr;
    for (auto& m : masters) {
      if (m->site() == f.side) master = m.get();
    }
    if (!victim || !master) {
      throw std::logic_error("run_distributed: failure target not instantiated");
    }
    platform.sim().schedule(des::from_seconds(f.at_seconds), [victim, &ctx] {
      ctx.trace(trace::EventKind::SlaveFailed, "node", 0, 0);
      victim->kill();
    });
    platform.sim().schedule(
        des::from_seconds(f.at_seconds + options.failure_detection_seconds),
        [master, victim_ep] { master->on_slave_failed(victim_ep); });
  }

  // --- elastic bursting -----------------------------------------------------------
  // Cloud slaves beyond the initial allocation start dormant; the controller
  // watches progress and boots them when the deadline is at risk.
  std::vector<SlaveNode*> dormant;
  std::vector<SlaveNode*> initial_active;
  for (auto& slave : slaves) initial_active.push_back(slave.get());
  if (options.elastic.enabled) {
    initial_active.clear();
    std::set<net::EndpointId> cloud_eps;
    for (cluster::ClusterId site = 0; site < platform.cluster_count(); ++site) {
      if (!platform.is_cloud(site)) continue;
      for (const auto& node : platform.nodes(site)) cloud_eps.insert(node.endpoint);
    }
    std::uint32_t cloud_seen = 0;
    for (auto& slave : slaves) {
      const bool is_cloud = cloud_eps.count(slave->endpoint()) > 0;
      if (is_cloud && cloud_seen++ >= options.elastic.initial_cloud_nodes) {
        dormant.push_back(slave.get());
      } else {
        initial_active.push_back(slave.get());
        if (is_cloud) ctx.recorder.cloud_instance_starts.push_back(0.0);
      }
    }

    const auto total_chunks = layout.chunks().size();
    auto next_dormant = std::make_shared<std::size_t>(0);
    auto controller = std::make_shared<std::function<void()>>();
    *controller = [&ctx, &platform, &options, &dormant, next_dormant, controller,
                   total_chunks] {
      if (ctx.recorder.finished) return;  // run over: stop rescheduling
      const double now = ctx.now_seconds();
      std::size_t done = 0;
      for (const auto& n : ctx.recorder.nodes) done += n.jobs;
      if (done < total_chunks && *next_dormant < dormant.size()) {
        // Projected completion at the current throughput. Before the first
        // job lands the projection is unknown: scale only once the deadline
        // itself has already slipped.
        const double rate = now > 0.0 ? static_cast<double>(done) / now : 0.0;
        const double remaining = static_cast<double>(total_chunks - done);
        const bool misses_deadline =
            rate > 0.0 ? now + remaining / rate > options.elastic.deadline_seconds
                       : now > options.elastic.deadline_seconds;
        if (misses_deadline) {
          for (std::uint32_t k = 0;
               k < options.elastic.activation_step && *next_dormant < dormant.size();
               ++k) {
            SlaveNode* booting = dormant[(*next_dormant)++];
            const double up_at = now + options.elastic.boot_seconds;
            ctx.recorder.cloud_instance_starts.push_back(up_at);
            ++ctx.recorder.elastic_activations;
            ctx.sim().schedule(des::from_seconds(options.elastic.boot_seconds),
                               [booting, &ctx] {
                                 ctx.trace(trace::EventKind::InstanceActivated, "node");
                                 booting->start();
                               });
          }
        }
      }
      ctx.sim().schedule(des::from_seconds(options.elastic.check_interval_seconds),
                         [controller] { (*controller)(); });
    };
    platform.sim().schedule(des::from_seconds(options.elastic.check_interval_seconds),
                            [controller] { (*controller)(); });
  } else {
    ctx.recorder.cloud_instance_starts.assign(platform.cloud_node_count(), 0.0);
  }

  // --- run ---------------------------------------------------------------------
  for (auto& master : masters) master->start();
  for (SlaveNode* slave : initial_active) slave->start();
  platform.sim().run();

  if (!ctx.recorder.finished) {
    throw std::runtime_error("run_distributed: simulation drained without completing the run");
  }

  // Prefetches nobody consumed were wasted WAN work; settle them now that
  // every in-flight transfer has drained.
  for (cluster::ClusterId site = 0; site < ctx.prefetchers.size(); ++site) {
    if (ctx.prefetchers[site]) {
      ctx.recorder.prefetch_wasted[site] +=
          static_cast<std::uint32_t>(ctx.prefetchers[site]->finish());
    }
  }

  // --- aggregate ----------------------------------------------------------------
  RunResult result;
  result.total_time = ctx.recorder.end_time;
  result.nodes = ctx.recorder.nodes;
  result.robj = head.take_robj();
  result.cloud_instance_starts = ctx.recorder.cloud_instance_starts;
  result.elastic_activations = ctx.recorder.elastic_activations;
  result.bytes_from_store = ctx.recorder.bytes_from_store;
  result.bytes_from_cache = ctx.recorder.bytes_from_cache;
  result.bytes_retried = ctx.recorder.bytes_retried;
  result.store_requests.resize(platform.store_count());
  for (storage::StoreId s = 0; s < platform.store_count(); ++s) {
    result.store_requests[s] = platform.store(s).stats().requests;
    const auto& store_spec =
        platform.spec().sites.at(platform.owner_of_store(s)).store;
    if (store_spec && store_spec->kind == cluster::StoreSpec::Kind::Object) {
      result.s3_get_requests +=
          result.store_requests[s] * std::max(1u, options.retrieval_streams);
    }
  }
  result.clusters.resize(platform.cluster_count());
  for (cluster::ClusterId site = 0; site < platform.cluster_count(); ++site) {
    result.clusters[site].name = platform.site_name(site);
  }

  for (const auto& node : result.nodes) {
    auto& c = result.clusters[static_cast<std::size_t>(node.cluster)];
    c.processing += node.processing;
    c.retrieval += node.retrieval;
    // Sync: waiting for assignments during the run plus the tail between the
    // node's last job and the end of the global reduction.
    c.sync += node.wait + (result.total_time - node.finish_time);
    c.proc_end_time = std::max(c.proc_end_time, node.finish_time);
    ++c.nodes;
  }
  for (auto& c : result.clusters) {
    if (c.nodes > 0) {
      c.processing /= c.nodes;
      c.retrieval /= c.nodes;
      c.sync /= c.nodes;
    }
  }
  for (std::size_t site = 0; site < result.clusters.size(); ++site) {
    auto& c = result.clusters[site];
    c.jobs_local = ctx.recorder.jobs_local[site];
    c.jobs_stolen = ctx.recorder.jobs_stolen[site];
    c.bytes_local = ctx.recorder.bytes_local[site];
    c.bytes_stolen = ctx.recorder.bytes_stolen[site];
    c.cache_hits = ctx.recorder.cache_hits[site];
    c.cache_misses = ctx.recorder.cache_misses[site];
    c.prefetch_issued = ctx.recorder.prefetch_issued[site];
    c.prefetch_wasted = ctx.recorder.prefetch_wasted[site];
    c.store_faults = ctx.recorder.store_faults[site];
    c.fetch_retries = ctx.recorder.fetch_retries[site];
    c.hedges_issued = ctx.recorder.hedges_issued[site];
    c.hedges_won = ctx.recorder.hedges_won[site];
  }

  // Idle time: how long each cluster waited for the other to finish
  // processing; global reduction time: the tail after the later one.
  double last_proc_end = 0.0;
  for (const auto& c : result.clusters) {
    if (c.nodes > 0) last_proc_end = std::max(last_proc_end, c.proc_end_time);
  }
  for (auto& c : result.clusters) {
    c.idle_time = c.nodes > 0 ? last_proc_end - c.proc_end_time : 0.0;
  }
  result.global_reduction_time = result.total_time - last_proc_end;
  return result;
}

}  // namespace cloudburst::middleware
