#include "middleware/job_execution.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>
#include <utility>

#include "common/logging.hpp"
#include "common/rng.hpp"

namespace cloudburst::middleware {

void validate_run(const cluster::Platform& platform, const storage::DataLayout& layout,
                  const RunOptions& options) {
  if ((options.task == nullptr) != (options.dataset == nullptr)) {
    throw std::invalid_argument("run_distributed: task and dataset must be set together");
  }
  if (platform.total_nodes() == 0) {
    throw std::invalid_argument("run_distributed: platform has no compute nodes");
  }
  if (layout.chunks().empty()) {
    throw std::invalid_argument("run_distributed: layout has no chunks");
  }
  if (options.policy.remote_selection == RemoteSelection::CheapestReplica &&
      options.replication == nullptr) {
    throw std::invalid_argument(
        "run_distributed: CheapestReplica remote selection requires "
        "RunOptions::replication");
  }
  if (options.checkpoint_interval_seconds > 0.0 && options.reduction_tree) {
    throw std::invalid_argument(
        "run_distributed: periodic checkpointing requires reduction_tree = false");
  }
  if (!options.failures.empty() && options.reduction_tree) {
    throw std::invalid_argument(
        "run_distributed: failure injection requires reduction_tree = false "
        "(the master must track per-slave work)");
  }
  if (options.elastic.enabled) {
    if (options.reduction_tree) {
      throw std::invalid_argument(
          "run_distributed: elastic bursting requires reduction_tree = false");
    }
    const auto cloud_nodes = platform.cloud_node_count();
    if (cloud_nodes > 0 && options.elastic.initial_cloud_nodes == 0) {
      throw std::invalid_argument(
          "run_distributed: elastic bursting needs at least one initial cloud node");
    }
    if (options.elastic.check_interval_seconds <= 0.0) {
      throw std::invalid_argument("run_distributed: elastic check interval must be > 0");
    }
  }
  for (const auto& f : options.failures) {
    if (f.side >= platform.cluster_count()) {
      throw std::invalid_argument("run_distributed: failure names an unknown cluster");
    }
    const auto& nodes = platform.nodes(f.side);
    if (f.node_index >= nodes.size()) {
      throw std::invalid_argument("run_distributed: failure names an unknown node");
    }
    std::size_t failing_here = 0;
    for (const auto& g : options.failures) {
      if (g.side == f.side) ++failing_here;
    }
    if (failing_here >= nodes.size()) {
      throw std::invalid_argument(
          "run_distributed: failures would leave a cluster with no live slaves");
    }
  }

  // --- dynamic control plane (directory / elastic node pool) -----------------
  if (!options.directory) {
    for (cluster::ClusterId site = 0; site < platform.cluster_count(); ++site) {
      for (const auto& node : platform.nodes(site)) {
        if (node.offline) {
          throw std::invalid_argument(
              "run_distributed: offline nodes (deferred capacity) require "
              "RunOptions::directory");
        }
      }
    }
  }
  if (options.pool_plan.enabled) {
    if (options.reduction_tree) {
      throw std::invalid_argument(
          "run_distributed: pool leases require reduction_tree = false "
          "(the master must track per-slave work for cross-job drain)");
    }
    if (!options.directory) {
      throw std::invalid_argument(
          "run_distributed: pool leases require RunOptions::directory");
    }
    if (options.elastic.enabled || options.migration.standby_nodes > 0 ||
        !options.lifecycle.empty() || !options.failures.empty() ||
        options.spot.reclaim_rate_per_hour > 0.0) {
      throw std::invalid_argument(
          "run_distributed: the elastic node pool owns cloud-node lifetime — "
          "per-job elastic/migration/lifecycle/failure machinery is excluded");
    }
    if (options.static_assignment) {
      throw std::invalid_argument(
          "run_distributed: static assignment excludes pool leases");
    }
  }

  // --- store QoS -------------------------------------------------------------
  if (options.qos) {
    // Weight validation happened at StoreQos construction; what can only be
    // checked against *this* run's platform is whether granted reservations
    // still fit the stores' access links (mirrors the lifecycle combo checks:
    // fail loudly up front, not with a starved fair pool mid-run).
    options.qos->validate_against(platform);
  }

  // --- node lifecycle (crash / drain / spot reclamation / migration) --------
  const bool has_lifecycle = !options.lifecycle.empty() ||
                             options.spot.reclaim_rate_per_hour > 0.0 ||
                             options.migration.standby_nodes > 0;
  if (has_lifecycle && options.reduction_tree) {
    throw std::invalid_argument(
        "run_distributed: node lifecycle events require reduction_tree = false "
        "(the master must track per-slave work)");
  }
  if (has_lifecycle && options.elastic.enabled) {
    throw std::invalid_argument(
        "run_distributed: node lifecycle events are mutually exclusive with "
        "elastic bursting (one controller owns the dormant pool)");
  }
  if (has_lifecycle && options.static_assignment) {
    throw std::invalid_argument(
        "run_distributed: static assignment excludes node lifecycle events");
  }
  if (options.spot.reclaim_rate_per_hour < 0.0) {
    throw std::invalid_argument("run_distributed: spot reclaim rate must be >= 0");
  }
  for (const auto& ev : options.lifecycle) {
    if (ev.site >= platform.cluster_count()) {
      throw std::invalid_argument(
          "run_distributed: lifecycle event names an unknown cluster");
    }
    if (ev.node_index >= platform.nodes(ev.site).size()) {
      throw std::invalid_argument(
          "run_distributed: lifecycle event names an unknown node");
    }
    if (ev.at_seconds < 0.0) {
      throw std::invalid_argument(
          "run_distributed: lifecycle event time must be >= 0");
    }
    if (ev.kind == RunOptions::LifecycleEvent::Kind::SpotReclaim &&
        ev.notice_seconds < 0.0) {
      throw std::invalid_argument(
          "run_distributed: spot reclaim notice must be >= 0");
    }
  }
  if (options.migration.standby_nodes > 0) {
    if (platform.cloud_node_count() <= options.migration.standby_nodes) {
      throw std::invalid_argument(
          "run_distributed: migration standbys must leave at least one active "
          "cloud node");
    }
    if (options.migration.boot_seconds < 0.0) {
      throw std::invalid_argument("run_distributed: migration boot time must be >= 0");
    }
  }
  // Every scheduled removal (legacy failures plus lifecycle events — a drain
  // also takes its node out of the run) must leave each cluster one live,
  // non-standby slave; distinct victims only, so a node named twice counts once.
  for (cluster::ClusterId site = 0; site < platform.cluster_count(); ++site) {
    const auto& nodes = platform.nodes(site);
    if (nodes.empty()) continue;
    std::set<std::uint32_t> victims;
    for (const auto& f : options.failures) {
      if (f.side == site) victims.insert(f.node_index);
    }
    for (const auto& ev : options.lifecycle) {
      if (ev.site == site) victims.insert(ev.node_index);
    }
    if (victims.size() >= nodes.size()) {
      throw std::invalid_argument(
          "run_distributed: lifecycle events would leave a cluster with no live "
          "slaves");
    }
  }

  // --- scripted chaos --------------------------------------------------------
  if (options.chaos && !options.chaos->events.empty()) {
    if (options.reduction_tree) {
      throw std::invalid_argument(
          "run_distributed: a chaos plan requires reduction_tree = false "
          "(the master must track per-slave work to survive faults)");
    }
    if (options.static_assignment) {
      throw std::invalid_argument(
          "run_distributed: static assignment excludes chaos plans");
    }
    using ChaosKind = chaos::ChaosEvent::Kind;
    for (const auto& ev : options.chaos->events) {
      if (ev.at_seconds < 0.0) {
        throw std::invalid_argument("run_distributed: chaos event time must be >= 0");
      }
      if (ev.site_a >= platform.cluster_count()) {
        throw std::invalid_argument("run_distributed: chaos event names an unknown site");
      }
      switch (ev.kind) {
        case ChaosKind::LinkFault:
          if (ev.site_b >= platform.cluster_count() || ev.site_b == ev.site_a) {
            throw std::invalid_argument(
                "run_distributed: chaos link fault needs two distinct sites");
          }
          if (ev.factor < 0.0 || ev.factor > 1.0) {
            throw std::invalid_argument(
                "run_distributed: chaos link factor must be in [0, 1]");
          }
          break;
        case ChaosKind::SitePartition:
          break;
        case ChaosKind::StoreOutage:
          if (platform.store_of_cluster(ev.site_a) == storage::kInvalidStore) {
            throw std::invalid_argument(
                "run_distributed: chaos store outage targets a site with no store");
          }
          break;
        case ChaosKind::SiteOutage:
          if (ev.site_a == cluster::kLocalSite) {
            throw std::invalid_argument(
                "run_distributed: a chaos site outage cannot black out the head's "
                "site");
          }
          break;
        case ChaosKind::NodeCrash:
        case ChaosKind::NodeDrain:
          if (ev.node_index >= platform.nodes(ev.site_a).size()) {
            throw std::invalid_argument(
                "run_distributed: chaos event names an unknown node");
          }
          break;
        case ChaosKind::SpotReclaim:
          if (ev.node_index >= platform.nodes(ev.site_a).size()) {
            throw std::invalid_argument(
                "run_distributed: chaos event names an unknown node");
          }
          if (ev.notice_seconds < 0.0) {
            throw std::invalid_argument(
                "run_distributed: chaos spot-reclaim notice must be >= 0");
          }
          break;
      }
    }
  }
}

JobExecution::JobExecution(cluster::Platform& platform, const storage::DataLayout& layout,
                           const RunOptions& options, net::Postman<Message>& postman,
                           const MailboxRegistrar& register_mailbox, std::uint32_t job_id,
                           std::string trace_tag, SlotArbiter* arbiter,
                           std::function<void()> on_finished)
    : platform_(platform),
      ctx_{platform,   layout,  options, postman, RunRecorder{}, {}, {}, job_id,
           std::move(trace_tag), arbiter, std::move(on_finished)} {
  ctx_.recorder.init(platform.cluster_count(), platform.store_count());
  setup_chunk_offsets();
  resolve_membership();
  setup_qos();
  setup_replication();
  build_prefetchers();
  build_actors(register_mailbox);
  apply_static_assignment();
  schedule_failures();
  setup_elastic();
  setup_migration();
  schedule_lifecycle();
  setup_pool();
  setup_directory();
  setup_chaos();
}

JobExecution::~JobExecution() {
  if (directory_watch_ != 0 && ctx_.options.directory) {
    ctx_.options.directory->unwatch(directory_watch_);
  }
}

void JobExecution::resolve_membership() {
  site_nodes_.resize(platform_.cluster_count());
  const directory::PlatformDirectory* dir = ctx_.options.directory;
  const bool pooled = ctx_.options.pool_plan.enabled;
  std::set<net::EndpointId> leased;
  for (const auto& lease : ctx_.options.pool_plan.leases) leased.insert(lease.node);
  std::size_t live_total = 0;
  for (cluster::ClusterId site = 0; site < platform_.cluster_count(); ++site) {
    for (const auto& node : platform_.nodes(site)) {
      // Directory-absent (offline, retired) nodes do not exist for this job;
      // a pooled job's cloud membership is exactly its leases.
      if (dir && !dir->node_live(node.endpoint)) continue;
      if (!dir && node.offline) continue;  // validate_run already rejected this
      if (pooled && platform_.is_cloud(site) && !leased.count(node.endpoint)) {
        continue;
      }
      site_nodes_[site].push_back(node);
      ++live_total;
    }
  }
  if (live_total == 0) {
    throw std::invalid_argument(
        "run_distributed: the service directory lists no live compute nodes");
  }
}

void JobExecution::setup_directory() {
  directory::PlatformDirectory* dir = ctx_.options.directory;
  if (!dir) return;
  directory_watch_ = dir->watch([this](const directory::DirectoryEvent& ev) {
    if (ctx_.recorder.finished) return;
    replica::ReplicaSet* rs = ctx_.options.replication;
    if (!rs) return;
    // A retired store takes its resident copies with it: mark them lost so
    // reads re-route to surviving replicas and the repair actor re-creates
    // the coverage elsewhere. A retired *site* implies the same for its
    // affinity store — directory retire_site does not cascade, so a site
    // blackout that never issued the per-store event must still lose the
    // copies (mark_lost is idempotent when it did).
    storage::StoreId store = storage::kInvalidStore;
    if (ev.kind == directory::DirectoryEvent::Kind::StoreRetired) {
      store = ev.store;
    } else if (ev.kind == directory::DirectoryEvent::Kind::SiteRetired) {
      store = platform_.store_of_cluster(ev.site);
    }
    if (store == storage::kInvalidStore) return;
    for (const auto& chunk : ctx_.layout.chunks()) {
      if (!rs->is_live(chunk.id, store)) continue;
      if (rs->mark_lost(chunk.id, store, ctx_.now_seconds())) {
        ++ctx_.recorder.replica.replicas_lost;
        ctx_.trace(trace::EventKind::ReplicaLost, "replica", chunk.id, store);
      }
    }
  });
}

bool JobExecution::drain_node(net::EndpointId ep) {
  if (ctx_.options.reduction_tree) return false;  // no per-slave work tracking
  if (ctx_.recorder.finished) return false;
  SlaveNode* victim = slave_by_endpoint(ep);
  if (!victim || !victim->alive() || victim->draining()) return false;
  if (dormant_standby_.count(ep)) return false;
  ctx_.trace(trace::EventKind::NodeDrainRequested, victim->name(), 0, 0);
  victim->begin_drain();
  return true;
}

void JobExecution::setup_pool() {
  const RunOptions::PoolPlan& plan = ctx_.options.pool_plan;
  if (!plan.enabled) return;
  // Instance time bills at the pool's lease windows, shared across every
  // job holding the node — drop the per-job rental entries setup_elastic's
  // non-elastic branch recorded.
  ctx_.recorder.cloud_instance_starts.clear();
  ctx_.recorder.cloud_instance_nodes.clear();
  for (const auto& lease : plan.leases) {
    if (lease.ready_in_seconds <= 0.0) continue;  // warm: starts with the job
    SlaveNode* booting = slave_by_endpoint(lease.node);
    if (!booting) continue;  // lease on a site this job has no master for
    MasterNode* master = master_of(booting->site());
    if (!master) continue;
    // Booting: no push target yet, but counted as capacity that will pull.
    master->mark_leased(lease.node);
    initial_active_.erase(
        std::remove(initial_active_.begin(), initial_active_.end(), booting),
        initial_active_.end());
    platform_.sim().schedule(
        des::from_seconds(lease.ready_in_seconds), [this, booting, master] {
          master->mark_booted(booting->endpoint());
          if (ctx_.recorder.finished || !booting->alive()) return;
          ctx_.trace(trace::EventKind::InstanceActivated, booting->name());
          booting->start();
        });
  }
}

SlaveNode* JobExecution::slave_by_endpoint(net::EndpointId ep) {
  for (auto& s : slaves_) {
    if (s->endpoint() == ep) return s.get();
  }
  return nullptr;
}

MasterNode* JobExecution::master_of(cluster::ClusterId site) {
  for (auto& m : masters_) {
    if (m->site() == site) return m.get();
  }
  return nullptr;
}

void JobExecution::setup_chunk_offsets() {
  // Real execution: map chunk ids to dataset unit offsets.
  const RunOptions& options = ctx_.options;
  if (!options.task) return;
  if (options.task->unit_bytes() != options.dataset->unit_bytes()) {
    throw std::invalid_argument("run_distributed: task/dataset unit size mismatch");
  }
  ctx_.chunk_unit_offset.resize(ctx_.layout.chunks().size());
  std::uint64_t offset = 0;
  for (const auto& chunk : ctx_.layout.chunks()) {
    ctx_.chunk_unit_offset[chunk.id] = offset;
    offset += chunk.units;
  }
  if (offset != options.dataset->units()) {
    throw std::invalid_argument(
        "run_distributed: layout units do not tile the dataset exactly");
  }
}

void JobExecution::setup_qos() {
  qos::StoreQos* q = ctx_.options.qos;
  if (!q) return;
  q->attach(platform_);
  ctx_.qos_tenant = q->tenant_id(ctx_.options.tenant);
  if (ctx_.options.tracer) q->set_tracer(ctx_.options.tracer);
  if (ctx_.options.cache) {
    // Per-tenant cache shares: explicitly-weighted tenants each get their
    // slice of every site cache; one tenant can no longer flush another's
    // working set.
    for (const auto& [tenant, budget] :
         q->cache_budgets(ctx_.options.cache->config().capacity_bytes)) {
      ctx_.options.cache->set_owner_budget(tenant, budget);
    }
  }
}

void JobExecution::setup_replication() {
  replica::ReplicaSet* rs = ctx_.options.replication;
  if (!rs) return;
  replication_built_here_ = !rs->built();
  rs->attach(ctx_.layout, platform_);
  if (replication_built_here_) {
    // The initial placement is this job's doing: count and trace the extra
    // copies it created (a workload job joining an already-built set is a
    // pure consumer and records nothing here).
    ctx_.recorder.replica.replicas_created += rs->replicas_created();
    for (const auto& [chunk, store] : rs->initial_extras()) {
      ctx_.trace(trace::EventKind::ReplicaCreated, "replica", chunk, store);
    }
  }
  if (rs->config().placement == replica::PlacementPolicy::HotChunk) {
    // Promotion heat: cache/prefetch hits when a fleet is attached; plain
    // per-chunk fetch counts otherwise (without the fallback an uncached run
    // would silently never promote anything).
    const replica::HeatSource source = ctx_.options.cache
                                           ? replica::HeatSource::CacheHits
                                           : replica::HeatSource::FetchCounts;
    rs->set_heat_source(source);
    if (replication_built_here_) {
      log::info("replica", "hot-chunk heat source: ", replica::to_string(source));
    }
  }

  replica::RepairActor::Env env;
  env.now = [this] { return ctx_.now_seconds(); };
  env.schedule = [this](double delay_seconds, std::function<void()> fn) {
    platform_.sim().schedule(des::from_seconds(delay_seconds), std::move(fn));
  };
  env.stopped = [this] { return ctx_.recorder.finished; };
  env.trace = [this](trace::EventKind kind, std::uint64_t a, std::uint64_t b) {
    ctx_.trace(kind, "repair", a, b);
  };
  // A repair is a store-to-store read: the destination's site pays the
  // egress from the source store, on the same retry/fault machinery (and
  // therefore the same recorder counters) as any slave fetch.
  env.transfer = [this](const replica::ReplicaSet::RepairTask& task,
                        std::function<void(bool ok)> done) {
    const storage::ChunkInfo& info = ctx_.layout.chunk(task.chunk);
    storage::ChunkInfo wire = info;
    const double ratio = std::max(1.0, ctx_.options.profile.compression_ratio);
    wire.bytes = static_cast<std::uint64_t>(static_cast<double>(info.bytes) / ratio);
    if (wire.bytes == 0) wire.bytes = 1;
    const cluster::ClusterId dst_site = platform_.owner_of_store(task.dst);
    ctx_.recorder.bytes_from_store[dst_site][task.src] += info.bytes;
    // Repairs are background traffic: they bill to the "system" tenant and
    // queue behind (or alongside) foreground fetches at the source store's
    // arbiter.
    ctx_.qos_gate(
        dst_site, task.src, wire.bytes, "repair", task.chunk, qos::kSystemTenant,
        [this, task, wire, dst_site, done = std::move(done)]() mutable {
          storage::fetch_with_retry(
              platform_.sim(), platform_.store(task.src),
              platform_.store(task.dst).endpoint(), wire,
              ctx_.options.retrieval_streams, ctx_.options.retry,
              ctx_.retry_hooks(dst_site, "repair", task.chunk, task.src),
              [this, task, dst_site,
               done = std::move(done)](const storage::FetchResult& r) {
                if (!r.ok) {
                  // Nothing landed: revert the issue-time egress charge.
                  ctx_.recorder.bytes_from_store[dst_site][task.src] -=
                      ctx_.layout.chunk(task.chunk).bytes;
                }
                if (done) done(r.ok);
              });
        });
  };
  env.on_repaired = [this](const replica::ReplicaSet::RepairTask& task) {
    ++ctx_.recorder.replica.replicas_repaired;
    ctx_.recorder.replica.repair_bytes += ctx_.layout.chunk(task.chunk).bytes;
  };
  repair_ = std::make_unique<replica::RepairActor>(*rs, std::move(env));
}

void JobExecution::build_prefetchers() {
  // One per compute site when the attached cache fleet enables prefetching.
  // The Env hooks close over this, which outlives the prefetchers.
  const RunOptions& options = ctx_.options;
  if (!options.cache || !options.cache->config().prefetch.enabled) return;
  const cache::CacheConfig& cfg = options.cache->config();
  ctx_.prefetchers.resize(platform_.cluster_count());
  for (cluster::ClusterId site = 0; site < platform_.cluster_count(); ++site) {
    if (site_nodes_[site].empty()) continue;
    cache::Prefetcher::Env env;
    env.compression_ratio = std::max(1.0, options.profile.compression_ratio);
    env.cacheable = [this, site](storage::StoreId s) {
      return ctx_.store_cacheable(site, s);
    };
    const std::string pf_name = "prefetch-" + platform_.site_name(site);
    const net::EndpointId master_ep = platform_.master_endpoint(site);
    const unsigned streams = cfg.prefetch.streams
                                 ? cfg.prefetch.streams
                                 : std::max(1u, options.retrieval_streams);
    // Prefetch GETs ride the same retry machinery as slave fetches — and the
    // same QoS admission, billed to this run's tenant; a permanently failed
    // GET settles done(false) and the prefetcher aborts.
    env.fetch = [this, site, pf_name, master_ep, streams](
                    storage::StoreId s, const storage::ChunkInfo& wire,
                    std::function<void(bool ok)> done) {
      ctx_.qos_gate(
          site, s, wire.bytes, pf_name, wire.id, ctx_.qos_tenant,
          [this, site, pf_name, master_ep, streams, s, wire,
           done = std::move(done)]() mutable {
            storage::fetch_with_retry(
                platform_.sim(), platform_.store(s), master_ep, wire, streams,
                ctx_.options.retry, ctx_.retry_hooks(site, pf_name, wire.id, s),
                [this, s, wire, done = std::move(done)](const storage::FetchResult& r) {
                  // Clear the route-load charge resolve() booked for this GET
                  // without touching replica health.
                  if (ctx_.options.replication) {
                    ctx_.options.replication->settle_route(wire.id, s);
                  }
                  if (done) done(r.ok);
                });
          });
    };
    env.trace = [this, pf_name](trace::EventKind kind, std::uint64_t a,
                                std::uint64_t b) { ctx_.trace(kind, pf_name, a, b); };
    env.on_issue = [this, site](storage::StoreId s, const storage::ChunkInfo& info) {
      ++ctx_.recorder.prefetch_issued[site];
      ctx_.recorder.bytes_from_store[site][s] += info.bytes;
    };
    env.on_abort = [this, site](storage::StoreId s, const storage::ChunkInfo& info) {
      ctx_.recorder.bytes_from_store[site][s] -= info.bytes;
    };
    if (replica::ReplicaSet* rs = options.replication) {
      env.resolve = [this, rs, site](storage::ChunkId chunk) {
        return rs->resolve(chunk, site, ctx_.now_seconds());
      };
    }
    env.cache_owner = ctx_.cache_owner();
    ctx_.prefetchers[site] = std::make_unique<cache::Prefetcher>(
        options.cache->site(site), cfg.prefetch, std::move(env));
  }
}

void JobExecution::build_actors(const MailboxRegistrar& register_mailbox) {
  for (cluster::ClusterId site = 0; site < platform_.cluster_count(); ++site) {
    const auto& nodes = site_nodes_[site];
    if (nodes.empty()) continue;
    const net::EndpointId master_ep = platform_.master_endpoint(site);
    master_infos_.push_back(
        HeadNode::MasterInfo{master_ep, platform_.store_of_cluster(site)});
    auto peers = std::make_shared<std::vector<net::EndpointId>>();
    for (const auto& node : nodes) peers->push_back(node.endpoint);
    masters_.push_back(std::make_unique<MasterNode>(
        ctx_, site, master_ep, platform_.head_endpoint(), *peers,
        platform_.store_of_cluster(site)));
    std::uint32_t rank = 0;
    for (const auto& node : nodes) {
      const std::size_t stat_index = ctx_.recorder.nodes.size();
      NodeTimes times;
      times.name = node.name;
      times.cluster = site;
      ctx_.recorder.nodes.push_back(std::move(times));
      slaves_.push_back(
          std::make_unique<SlaveNode>(ctx_, node, master_ep, stat_index, rank++, peers));
    }
  }

  // The head's JobPool draws scheduler randomness from the run's seed, not
  // the SchedulerPolicy default.
  SchedulerPolicy policy = ctx_.options.policy;
  policy.random_seed = ctx_.options.random_seed;
  JobPool::ReplicaView view;
  if (replica::ReplicaSet* rs = ctx_.options.replication) {
    // The pool stays decoupled from cb_replica: it sees replicas only through
    // these two hooks (live-copy membership and route cost for a requester).
    view.on_store = [rs](storage::ChunkId chunk, storage::StoreId store) {
      return rs->is_live(chunk, store);
    };
    view.steal_cost = [this, rs](storage::ChunkId chunk, storage::StoreId preferred) {
      const cluster::ClusterId site = preferred == storage::kInvalidStore
                                          ? cluster::ClusterId{0}
                                          : platform_.owner_of_store(preferred);
      return rs->route_cost(chunk, site, ctx_.now_seconds());
    };
  }
  head_ = std::make_unique<HeadNode>(ctx_, platform_.head_endpoint(),
                                     JobPool(ctx_.layout, policy, std::move(view)),
                                     master_infos_, ctx_.options.task);

  // --- wire mailboxes --------------------------------------------------------
  HeadNode* head = head_.get();
  register_mailbox(head->endpoint(), [head](net::EndpointId from, Message msg) {
    head->handle(from, std::move(msg));
  });
  for (auto& master : masters_) {
    MasterNode* m = master.get();
    register_mailbox(m->endpoint(), [m](net::EndpointId from, Message msg) {
      m->handle(from, std::move(msg));
    });
  }
  for (auto& slave : slaves_) {
    SlaveNode* s = slave.get();
    register_mailbox(s->endpoint(), [s](net::EndpointId from, Message msg) {
      s->handle(from, std::move(msg));
    });
  }
}

void JobExecution::apply_static_assignment() {
  const RunOptions& options = ctx_.options;
  if (!options.static_assignment) return;
  if (!options.failures.empty() || options.elastic.enabled) {
    throw std::invalid_argument(
        "run_distributed: static assignment excludes failures and elastic mode");
  }
  // Each chunk goes to the cluster whose preferred store holds it; chunks
  // on a store no active cluster prefers are dealt round-robin across the
  // clusters (a lone cluster therefore takes everything).
  std::map<storage::StoreId, std::size_t> store_owner;
  for (std::size_t m = 0; m < masters_.size(); ++m) {
    store_owner.emplace(master_infos_[m].preferred_store, m);
  }
  std::vector<std::vector<std::pair<net::EndpointId, storage::ChunkId>>> plans(
      masters_.size());
  std::vector<std::size_t> cursors(masters_.size(), 0);
  std::size_t orphan_cursor = 0;
  for (const auto& chunk : ctx_.layout.chunks()) {
    const auto it = store_owner.find(ctx_.layout.store_of(chunk.id));
    const std::size_t m =
        it != store_owner.end() ? it->second : orphan_cursor++ % masters_.size();
    const auto& nodes = site_nodes_[masters_[m]->site()];
    plans[m].emplace_back(nodes[cursors[m]++ % nodes.size()].endpoint, chunk.id);
  }
  for (std::size_t m = 0; m < masters_.size(); ++m) {
    masters_[m]->assign_static(plans[m]);
  }
}

void JobExecution::schedule_failures() {
  // Injection times are relative to construction — i.e. to the job's own
  // start, since start() follows construction at the same sim instant.
  for (const auto& f : ctx_.options.failures) {
    // Locate the victim slave and its master.
    const auto& nodes = platform_.nodes(f.side);
    const net::EndpointId victim_ep = nodes.at(f.node_index).endpoint;
    SlaveNode* victim = nullptr;
    for (auto& s : slaves_) {
      if (s->endpoint() == victim_ep) victim = s.get();
    }
    MasterNode* master = nullptr;
    for (auto& m : masters_) {
      if (m->site() == f.side) master = m.get();
    }
    if (!victim || !master) {
      throw std::logic_error("run_distributed: failure target not instantiated");
    }
    platform_.sim().schedule(des::from_seconds(f.at_seconds), [this, victim] {
      ctx_.trace(trace::EventKind::SlaveFailed, "node", 0, 0);
      ++ctx_.recorder.lifecycle.nodes_crashed;
      victim->kill();
    });
    platform_.sim().schedule(
        des::from_seconds(f.at_seconds + ctx_.options.failure_detection_seconds),
        [master, victim_ep] { master->on_slave_failed(victim_ep); });
  }
}

namespace {
/// Stochastic spot draws beyond this horizon are never scheduled: the DES
/// runs until its queue drains, so a reclaim drawn months into simulated
/// time must not keep the run alive.
constexpr double kSpotHorizonSeconds = 1e7;
}  // namespace

void JobExecution::schedule_lifecycle() {
  const RunOptions& options = ctx_.options;
  using Kind = RunOptions::LifecycleEvent::Kind;
  for (const auto& ev : options.lifecycle) {
    const auto& nodes = platform_.nodes(ev.site);
    const net::EndpointId victim_ep = nodes.at(ev.node_index).endpoint;
    const std::string victim_name = nodes.at(ev.node_index).name;
    switch (ev.kind) {
      case Kind::Crash: {
        // Same mechanics as a legacy FailureEvent, with guards: a node that
        // already vacated (or a never-leased standby) cannot crash.
        SlaveNode* victim = slave_by_endpoint(victim_ep);
        MasterNode* master = master_of(ev.site);
        if (!victim || !master) {
          throw std::logic_error("run_distributed: lifecycle target not instantiated");
        }
        platform_.sim().schedule(des::from_seconds(ev.at_seconds), [this, victim] {
          if (ctx_.recorder.finished || !victim->alive()) return;
          if (dormant_standby_.count(victim->endpoint())) return;
          ctx_.trace(trace::EventKind::SlaveFailed, "node", 0, 0);
          ++ctx_.recorder.lifecycle.nodes_crashed;
          victim->kill();
        });
        platform_.sim().schedule(
            des::from_seconds(ev.at_seconds + options.failure_detection_seconds),
            [this, master, victim_ep] {
              if (ctx_.recorder.finished) return;
              if (dormant_standby_.count(victim_ep)) return;
              master->on_slave_failed(victim_ep);
            });
        break;
      }
      case Kind::Drain:
        schedule_drain(ev.site, victim_ep, victim_name, ev.at_seconds,
                       /*notice_seconds=*/-1.0);
        break;
      case Kind::SpotReclaim:
        schedule_drain(ev.site, victim_ep, victim_name, ev.at_seconds,
                       std::max(0.0, ev.notice_seconds));
        break;
    }
  }

  if (options.spot.reclaim_rate_per_hour > 0.0) {
    // One exponential reclaim draw per rented cloud node, each from its own
    // deterministic substream (never-leased standbys are not rented yet;
    // they redraw at lease time).
    const std::uint64_t seed =
        options.spot.seed ? options.spot.seed : options.random_seed;
    const double rate_per_second = options.spot.reclaim_rate_per_hour / 3600.0;
    for (cluster::ClusterId site = 0; site < platform_.cluster_count(); ++site) {
      if (!platform_.is_cloud(site)) continue;
      for (const auto& node : site_nodes_[site]) {
        Rng rng = Rng::substream(seed, spot_streams_used_++);
        const double at = rng.exponential(rate_per_second);
        if (dormant_standby_.count(node.endpoint)) continue;
        if (at > kSpotHorizonSeconds) continue;
        schedule_drain(site, node.endpoint, node.name, at,
                       std::max(0.0, options.spot.notice_seconds));
      }
    }
  }
}

void JobExecution::schedule_drain(cluster::ClusterId site, net::EndpointId victim_ep,
                                  const std::string& victim_name, double at_seconds,
                                  double notice_seconds) {
  SlaveNode* victim = slave_by_endpoint(victim_ep);
  MasterNode* master = master_of(site);
  if (!victim || !master) {
    throw std::logic_error("run_distributed: lifecycle target not instantiated");
  }
  const bool hard = notice_seconds >= 0.0;  // spot reclaim: kill at deadline
  platform_.sim().schedule(
      des::from_seconds(at_seconds),
      [this, victim, victim_name, notice_seconds, hard] {
        if (ctx_.recorder.finished || !victim->alive() || victim->draining()) return;
        if (dormant_standby_.count(victim->endpoint())) return;
        ctx_.trace(trace::EventKind::NodeDrainRequested, victim_name,
                   hard ? static_cast<std::uint64_t>(notice_seconds) : 0,
                   hard ? 1 : 0);
        victim->begin_drain();
      });
  if (!hard) return;
  platform_.sim().schedule(
      des::from_seconds(at_seconds + notice_seconds),
      [this, victim, master, victim_ep, victim_name] {
        // Already vacated (or never drained because it was dead/dormant at
        // notice time): nothing to reclaim.
        if (ctx_.recorder.finished || !victim->alive()) return;
        if (dormant_standby_.count(victim_ep)) return;
        ctx_.trace(trace::EventKind::NodeReclaimed, victim_name, 0, 0);
        ++ctx_.recorder.lifecycle.nodes_reclaimed;
        // Spot billing stops the instant the provider takes the node back.
        ctx_.recorder.end_cloud_billing(
            victim_ep, ctx_.now_seconds() - ctx_.job_start_seconds);
        victim->kill();
        ctx_.sim().schedule(
            des::from_seconds(ctx_.options.failure_detection_seconds),
            [this, master, victim_ep] {
              if (ctx_.recorder.finished) return;
              master->on_slave_failed(victim_ep);
            });
      });
}

void JobExecution::setup_chaos() {
  const chaos::ChaosPlan* plan = ctx_.options.chaos;
  if (!plan) return;
  using ChaosKind = chaos::ChaosEvent::Kind;
  for (const auto& ev : plan->events) {
    switch (ev.kind) {
      case ChaosKind::LinkFault: {
        const net::LinkId link = platform_.wan_link(ev.site_a, ev.site_b);
        const double factor = ev.factor;
        const cluster::ClusterId a = ev.site_a;
        const cluster::ClusterId b = ev.site_b;
        platform_.sim().schedule(
            des::from_seconds(ev.at_seconds), [this, link, factor, a, b] {
              ctx_.trace(trace::EventKind::LinkDown, "chaos", link,
                         static_cast<std::uint64_t>(factor * 1000.0));
              platform_.network().set_link_capacity_factor(link, factor);
              // Feed the route oracle: readers should prefer replicas off
              // the degraded path until the suspect window lapses.
              if (replica::ReplicaSet* rs = ctx_.options.replication) {
                rs->mark_site_suspect(a, ctx_.now_seconds());
                rs->mark_site_suspect(b, ctx_.now_seconds());
              }
            });
        if (ev.duration_seconds > 0.0) {
          platform_.sim().schedule(
              des::from_seconds(ev.at_seconds + ev.duration_seconds), [this, link] {
                platform_.network().set_link_capacity_factor(link, 1.0);
                ctx_.trace(trace::EventKind::LinkRestored, "chaos", link, 0);
              });
        }
        break;
      }
      case ChaosKind::SitePartition: {
        std::vector<net::LinkId> links;
        for (cluster::ClusterId s = 0; s < platform_.cluster_count(); ++s) {
          if (s != ev.site_a) links.push_back(platform_.wan_link(ev.site_a, s));
        }
        const cluster::ClusterId site = ev.site_a;
        platform_.sim().schedule(des::from_seconds(ev.at_seconds), [this, links, site] {
          for (const net::LinkId link : links) {
            ctx_.trace(trace::EventKind::LinkDown, "chaos", link, 0);
            platform_.network().set_link_capacity_factor(link, 0.0);
          }
          if (replica::ReplicaSet* rs = ctx_.options.replication) {
            rs->mark_site_suspect(site, ctx_.now_seconds());
          }
        });
        if (ev.duration_seconds > 0.0) {
          platform_.sim().schedule(
              des::from_seconds(ev.at_seconds + ev.duration_seconds), [this, links] {
                for (const net::LinkId link : links) {
                  platform_.network().set_link_capacity_factor(link, 1.0);
                  ctx_.trace(trace::EventKind::LinkRestored, "chaos", link, 0);
                }
              });
        }
        break;
      }
      case ChaosKind::StoreOutage: {
        const storage::StoreId store = platform_.store_of_cluster(ev.site_a);
        if (store == storage::kInvalidStore) break;
        platform_.sim().schedule(des::from_seconds(ev.at_seconds), [this, store] {
          ctx_.trace(trace::EventKind::StoreOffline, "chaos", store, 0);
          platform_.store(store).set_offline(true);
          if (replica::ReplicaSet* rs = ctx_.options.replication) {
            rs->mark_store_suspect(store, ctx_.now_seconds());
          }
        });
        if (ev.duration_seconds > 0.0) {
          platform_.sim().schedule(
              des::from_seconds(ev.at_seconds + ev.duration_seconds), [this, store] {
                platform_.store(store).set_offline(false);
                ctx_.trace(trace::EventKind::StoreOnline, "chaos", store, 0);
              });
        }
        break;
      }
      case ChaosKind::NodeCrash: {
        // Random plans may target nodes outside this job's membership
        // (directory-filtered, pooled): those events miss quietly instead of
        // throwing like the hand-written lifecycle specs.
        const auto& nodes = platform_.nodes(ev.site_a);
        if (ev.node_index >= nodes.size()) break;
        const net::EndpointId victim_ep = nodes[ev.node_index].endpoint;
        SlaveNode* victim = slave_by_endpoint(victim_ep);
        MasterNode* master = master_of(ev.site_a);
        if (!victim || !master) break;
        platform_.sim().schedule(des::from_seconds(ev.at_seconds), [this, victim] {
          if (ctx_.recorder.finished || !victim->alive()) return;
          if (dormant_standby_.count(victim->endpoint())) return;
          ctx_.trace(trace::EventKind::SlaveFailed, "node", 0, 0);
          ++ctx_.recorder.lifecycle.nodes_crashed;
          victim->kill();
        });
        platform_.sim().schedule(
            des::from_seconds(ev.at_seconds + ctx_.options.failure_detection_seconds),
            [this, master, victim_ep] {
              if (ctx_.recorder.finished) return;
              if (dormant_standby_.count(victim_ep)) return;
              master->on_slave_failed(victim_ep);
            });
        break;
      }
      case ChaosKind::NodeDrain:
      case ChaosKind::SpotReclaim: {
        const auto& nodes = platform_.nodes(ev.site_a);
        if (ev.node_index >= nodes.size()) break;
        const net::EndpointId victim_ep = nodes[ev.node_index].endpoint;
        if (!slave_by_endpoint(victim_ep) || !master_of(ev.site_a)) break;
        schedule_drain(ev.site_a, victim_ep, nodes[ev.node_index].name, ev.at_seconds,
                       ev.kind == ChaosKind::SpotReclaim
                           ? std::max(0.0, ev.notice_seconds)
                           : -1.0);
        break;
      }
      case ChaosKind::SiteOutage: {
        const cluster::ClusterId site = ev.site_a;
        platform_.sim().schedule(des::from_seconds(ev.at_seconds),
                                 [this, site] { begin_site_outage(site); });
        if (ev.duration_seconds > 0.0) {
          platform_.sim().schedule(
              des::from_seconds(ev.at_seconds + ev.duration_seconds),
              [this, site] { recover_site(site); });
        }
        break;
      }
    }
  }
}

void JobExecution::begin_site_outage(cluster::ClusterId site) {
  if (ctx_.recorder.finished) return;
  const double now = ctx_.now_seconds();

  // 1. Cut every WAN path touching the site: in-flight flows stall at rate 0
  //    until cancelled below (victims) or until recovery (bystanders).
  for (cluster::ClusterId s = 0; s < platform_.cluster_count(); ++s) {
    if (s == site) continue;
    const net::LinkId link = platform_.wan_link(site, s);
    ctx_.trace(trace::EventKind::LinkDown, "chaos", link, 0);
    platform_.network().set_link_capacity_factor(link, 0.0);
  }

  // 2. The site's store goes dark *before* the nodes: its abort path fails
  //    every in-flight GET immediately, so remote readers re-enter their
  //    retry cycle and the route oracle steers them to surviving replicas.
  const storage::StoreId store = platform_.store_of_cluster(site);
  if (store != storage::kInvalidStore && !platform_.store(store).offline()) {
    ctx_.trace(trace::EventKind::StoreOffline, "chaos", store, 0);
    platform_.store(store).set_offline(true);
  }
  if (replica::ReplicaSet* rs = ctx_.options.replication) {
    rs->mark_site_suspect(site, now);
    if (store != storage::kInvalidStore) rs->mark_store_suspect(store, now);
  }

  // 3. Directory: the site's services leave the platform. Nodes first (the
  //    workload manager closes their pool lease windows), then the store
  //    (the watcher above marks its replicas lost), then the site itself.
  if (directory::PlatformDirectory* dir = ctx_.options.directory) {
    const auto& nodes = platform_.nodes(site);
    for (std::uint32_t i = 0; i < nodes.size(); ++i) {
      if (dir->node_live(nodes[i].endpoint)) dir->retire_node(site, i);
    }
    if (store != storage::kInvalidStore && dir->store_live(store)) {
      dir->retire_store(store);
    }
    if (dir->site_live(site)) dir->retire_site(site);
  }

  // 4. Kill this job's slaves on the site; a cloud site's meters stop at the
  //    blackout (nobody pays for a rack that is gone).
  for (auto& s : slaves_) {
    if (s->site() != site || !s->alive()) continue;
    ctx_.trace(trace::EventKind::SlaveFailed, s->name(), 0, 0);
    ++ctx_.recorder.lifecycle.nodes_crashed;
    if (platform_.is_cloud(site)) {
      ctx_.recorder.end_cloud_billing(s->endpoint(), now - ctx_.job_start_seconds);
    }
    s->kill();
  }

  // 5. Flows to or from the dead endpoints must settle, not sit in the
  //    per-link active lists holding shares forever.
  std::uint64_t cancelled = 0;
  for (auto& s : slaves_) {
    if (s->site() == site) {
      cancelled += platform_.network().cancel_flows_with_endpoint(s->endpoint());
    }
  }
  MasterNode* master = master_of(site);
  if (master) {
    cancelled += platform_.network().cancel_flows_with_endpoint(master->endpoint());
  }
  ctx_.trace(trace::EventKind::SiteOutage, "chaos", site, cancelled);

  // 6. Control plane: the master goes silent now; the head notices one
  //    detection interval later and re-grants every chunk it had granted the
  //    dead cluster to the survivors (exactly-once: the dead cluster's robj
  //    never merges).
  if (master && !master->evacuated()) {
    master->evacuate();
    const net::EndpointId master_ep = master->endpoint();
    platform_.sim().schedule(
        des::from_seconds(ctx_.options.failure_detection_seconds),
        [this, master_ep] {
          if (ctx_.recorder.finished) return;
          head_->on_master_failed(master_ep);
        });
  }
}

void JobExecution::recover_site(cluster::ClusterId site) {
  // Fabric back first: links at nominal capacity, store serving again.
  for (cluster::ClusterId s = 0; s < platform_.cluster_count(); ++s) {
    if (s == site) continue;
    const net::LinkId link = platform_.wan_link(site, s);
    platform_.network().set_link_capacity_factor(link, 1.0);
    ctx_.trace(trace::EventKind::LinkRestored, "chaos", link, 0);
  }
  const storage::StoreId store = platform_.store_of_cluster(site);
  if (store != storage::kInvalidStore && platform_.store(store).offline()) {
    platform_.store(store).set_offline(false);
    ctx_.trace(trace::EventKind::StoreOnline, "chaos", store, 0);
  }
  // Directory re-registration (generation bump): the recovered capacity is
  // placeable for *future* work — this job's dead slaves stay dead, and the
  // evacuated master never speaks again.
  if (directory::PlatformDirectory* dir = ctx_.options.directory) {
    if (!dir->site_live(site)) dir->register_site(site);
    if (store != storage::kInvalidStore && !dir->store_live(store)) {
      dir->register_store(store);
    }
    const auto& nodes = platform_.nodes(site);
    for (std::uint32_t i = 0; i < nodes.size(); ++i) {
      if (!dir->node_live(nodes[i].endpoint)) dir->register_node(site, i);
    }
  }
  ctx_.trace(trace::EventKind::SiteRecovered, "chaos", site, 0);
}

void JobExecution::setup_migration() {
  const RunOptions& options = ctx_.options;
  if (options.migration.standby_nodes == 0) return;
  // Hold back the *last* standby_nodes cloud slaves in build order: they were
  // just billed by setup_elastic's non-elastic branch, so un-bill them and
  // keep them dormant (and lifecycle-immune) until leased.
  std::vector<Standby> cloud;
  for (cluster::ClusterId site = 0; site < platform_.cluster_count(); ++site) {
    if (!platform_.is_cloud(site)) continue;
    for (const auto& node : site_nodes_[site]) {
      cloud.push_back(Standby{slave_by_endpoint(node.endpoint), site, node.name});
    }
  }
  for (std::size_t i = cloud.size() - options.migration.standby_nodes;
       i < cloud.size(); ++i) {
    standby_.push_back(cloud[i]);
    dormant_standby_.insert(cloud[i].slave->endpoint());
    master_of(cloud[i].site)->mark_dormant(cloud[i].slave->endpoint());
  }
  initial_active_.erase(
      std::remove_if(initial_active_.begin(), initial_active_.end(),
                     [this](SlaveNode* s) {
                       return dormant_standby_.count(s->endpoint()) > 0;
                     }),
      initial_active_.end());
  auto& starts = ctx_.recorder.cloud_instance_starts;
  auto& nodes = ctx_.recorder.cloud_instance_nodes;
  for (std::size_t i = nodes.size(); i-- > 0;) {
    if (dormant_standby_.count(nodes[i])) {
      nodes.erase(nodes.begin() + static_cast<std::ptrdiff_t>(i));
      starts.erase(starts.begin() + static_cast<std::ptrdiff_t>(i));
    }
  }
  ctx_.on_node_lost = [this](cluster::ClusterId site) {
    return lease_replacement(site);
  };
}

bool JobExecution::lease_replacement(cluster::ClusterId site) {
  // Same-site only: a replacement pulls the lost node's re-pooled chunks from
  // its own master, so a standby in another cluster cannot take over the
  // work. Lease order is fixed (tail of cloud build order) for determinism.
  std::size_t pick = standby_.size();
  for (std::size_t i = next_standby_; i < standby_.size(); ++i) {
    if (standby_[i].site != site) continue;
    if (!dormant_standby_.count(standby_[i].slave->endpoint())) continue;
    if (!standby_[i].slave->alive()) continue;
    pick = i;
    break;
  }
  if (pick == standby_.size()) return false;
  const Standby chosen = standby_[pick];
  if (pick == next_standby_) ++next_standby_;
  dormant_standby_.erase(chosen.slave->endpoint());
  master_of(site)->mark_leased(chosen.slave->endpoint());

  const double now_rel = ctx_.now_seconds() - ctx_.job_start_seconds;
  const double boot = ctx_.options.migration.boot_seconds;
  // The replacement bills from the moment it comes up, like an elastic boot.
  ctx_.recorder.cloud_instance_starts.push_back(now_rel + boot);
  ctx_.recorder.cloud_instance_nodes.push_back(chosen.slave->endpoint());
  ++ctx_.recorder.lifecycle.replacements_leased;
  SlaveNode* booting = chosen.slave;
  const std::string name = chosen.name;
  platform_.sim().schedule(des::from_seconds(boot), [this, booting, name, site] {
    master_of(site)->mark_booted(booting->endpoint());
    if (ctx_.recorder.finished || !booting->alive()) return;
    ctx_.trace(trace::EventKind::JobMigrated, name, site, 0);
    booting->start();
  });
  // A leased replacement is itself a spot instance: give it its own reclaim
  // draw, measured from the lease.
  const RunOptions& options = ctx_.options;
  if (options.spot.reclaim_rate_per_hour > 0.0) {
    const std::uint64_t seed =
        options.spot.seed ? options.spot.seed : options.random_seed;
    Rng rng = Rng::substream(seed, spot_streams_used_++);
    const double at = rng.exponential(options.spot.reclaim_rate_per_hour / 3600.0);
    if (at <= kSpotHorizonSeconds) {
      schedule_drain(site, chosen.slave->endpoint(), name, at,
                     std::max(0.0, options.spot.notice_seconds));
    }
  }
  return true;
}

void JobExecution::setup_elastic() {
  // Cloud slaves beyond the initial allocation start dormant; the controller
  // watches progress and boots them when the deadline is at risk.
  const RunOptions& options = ctx_.options;
  for (auto& slave : slaves_) initial_active_.push_back(slave.get());
  if (!options.elastic.enabled) {
    // Bill the cloud nodes this job was actually built with (== every cloud
    // node unless a directory or pool plan filtered the membership).
    for (cluster::ClusterId site = 0; site < platform_.cluster_count(); ++site) {
      if (!platform_.is_cloud(site)) continue;
      for (const auto& node : site_nodes_[site]) {
        ctx_.recorder.cloud_instance_starts.push_back(0.0);
        ctx_.recorder.cloud_instance_nodes.push_back(node.endpoint);
      }
    }
    return;
  }

  initial_active_.clear();
  std::set<net::EndpointId> cloud_eps;
  for (cluster::ClusterId site = 0; site < platform_.cluster_count(); ++site) {
    if (!platform_.is_cloud(site)) continue;
    for (const auto& node : site_nodes_[site]) cloud_eps.insert(node.endpoint);
  }
  std::uint32_t cloud_seen = 0;
  for (auto& slave : slaves_) {
    const bool is_cloud = cloud_eps.count(slave->endpoint()) > 0;
    if (is_cloud && cloud_seen++ >= options.elastic.initial_cloud_nodes) {
      dormant_.push_back(slave.get());
    } else {
      initial_active_.push_back(slave.get());
      if (is_cloud) {
        ctx_.recorder.cloud_instance_starts.push_back(0.0);
        ctx_.recorder.cloud_instance_nodes.push_back(slave->endpoint());
      }
    }
  }

  const auto total_chunks = ctx_.layout.chunks().size();
  auto next_dormant = std::make_shared<std::size_t>(0);
  auto controller = std::make_shared<std::function<void()>>();
  *controller = [this, next_dormant, controller, total_chunks] {
    const RunOptions& opts = ctx_.options;
    if (ctx_.recorder.finished) return;  // run over: stop rescheduling
    const double now = ctx_.now_seconds();
    // Progress is measured over the job's own lifetime, not absolute sim
    // time — a workload job submitted late would otherwise look slow.
    const double elapsed = now - start_time_;
    std::size_t done = 0;
    for (const auto& n : ctx_.recorder.nodes) done += n.jobs;
    if (done < total_chunks && *next_dormant < dormant_.size()) {
      // Projected completion at the current throughput. Before the first
      // job lands the projection is unknown: scale only once the deadline
      // itself has already slipped.
      const double rate = elapsed > 0.0 ? static_cast<double>(done) / elapsed : 0.0;
      const double remaining = static_cast<double>(total_chunks - done);
      const bool misses_deadline =
          rate > 0.0 ? elapsed + remaining / rate > opts.elastic.deadline_seconds
                     : elapsed > opts.elastic.deadline_seconds;
      if (misses_deadline) {
        for (std::uint32_t k = 0;
             k < opts.elastic.activation_step && *next_dormant < dormant_.size(); ++k) {
          SlaveNode* booting = dormant_[(*next_dormant)++];
          const double up_at = elapsed + opts.elastic.boot_seconds;
          ctx_.recorder.cloud_instance_starts.push_back(up_at);
          ctx_.recorder.cloud_instance_nodes.push_back(booting->endpoint());
          ++ctx_.recorder.elastic_activations;
          ctx_.sim().schedule(des::from_seconds(opts.elastic.boot_seconds),
                              [this, booting] {
                                ctx_.trace(trace::EventKind::InstanceActivated, "node");
                                booting->start();
                              });
        }
      }
    }
    ctx_.sim().schedule(des::from_seconds(opts.elastic.check_interval_seconds),
                        [controller] { (*controller)(); });
  };
  platform_.sim().schedule(des::from_seconds(options.elastic.check_interval_seconds),
                           [controller] { (*controller)(); });
}

void JobExecution::start() {
  start_time_ = ctx_.now_seconds();
  ctx_.job_start_seconds = start_time_;
  for (auto& master : masters_) master->start();
  for (SlaveNode* slave : initial_active_) slave->start();
  if (repair_) repair_->start();
}

RunResult JobExecution::collect(bool use_platform_store_stats) {
  // Prefetches nobody consumed were wasted WAN work; settle them now that
  // every in-flight transfer has drained.
  for (cluster::ClusterId site = 0; site < ctx_.prefetchers.size(); ++site) {
    if (ctx_.prefetchers[site]) {
      ctx_.recorder.prefetch_wasted[site] +=
          static_cast<std::uint32_t>(ctx_.prefetchers[site]->finish());
    }
  }

  RunResult result;
  result.total_time = ctx_.recorder.end_time - start_time_;
  result.nodes = ctx_.recorder.nodes;
  result.robj = head_->take_robj();
  result.cloud_instance_starts = ctx_.recorder.cloud_instance_starts;
  result.cloud_instance_nodes = ctx_.recorder.cloud_instance_nodes;
  result.cloud_instance_ends = ctx_.recorder.cloud_instance_ends;
  if (!result.cloud_instance_ends.empty()) {
    // Instances rented after the last early end leave the vector short.
    result.cloud_instance_ends.resize(result.cloud_instance_starts.size(), -1.0);
  }
  result.lifecycle = ctx_.recorder.lifecycle;
  result.replica = ctx_.recorder.replica;
  if (ctx_.options.replication && replication_built_here_) {
    // Snapshot the live extra-copy bytes: the cost model bills them as extra
    // resident storage. Only the building job carries them so a workload
    // sharing one set does not bill the same copies once per tenant.
    result.replica.extra_replica_bytes = ctx_.options.replication->extra_bytes_per_store();
  }
  result.elastic_activations = ctx_.recorder.elastic_activations;
  result.bytes_from_store = ctx_.recorder.bytes_from_store;
  result.bytes_from_cache = ctx_.recorder.bytes_from_cache;
  result.bytes_retried = ctx_.recorder.bytes_retried;
  result.store_requests.resize(platform_.store_count());
  for (storage::StoreId s = 0; s < platform_.store_count(); ++s) {
    if (use_platform_store_stats) {
      result.store_requests[s] = platform_.store(s).stats().requests;
    } else {
      // Concurrent jobs share the stores, so the store's global counter mixes
      // tenants; this job's own per-site attempt counts are the right share.
      std::uint64_t requests = 0;
      for (const auto& per_site : ctx_.recorder.store_fetch_requests) {
        requests += per_site[s];
      }
      result.store_requests[s] = requests;
    }
    const auto& store_spec =
        platform_.spec().sites.at(platform_.owner_of_store(s)).store;
    if (store_spec && store_spec->kind == cluster::StoreSpec::Kind::Object) {
      result.s3_get_requests +=
          result.store_requests[s] * std::max(1u, ctx_.options.retrieval_streams);
    }
  }
  result.clusters.resize(platform_.cluster_count());
  for (cluster::ClusterId site = 0; site < platform_.cluster_count(); ++site) {
    result.clusters[site].name = platform_.site_name(site);
  }

  for (const auto& node : result.nodes) {
    auto& c = result.clusters[static_cast<std::size_t>(node.cluster)];
    c.processing += node.processing;
    c.retrieval += node.retrieval;
    // Sync: waiting for assignments during the run plus the tail between the
    // node's last job and the end of the global reduction.
    c.sync += node.wait + (ctx_.recorder.end_time - node.finish_time);
    c.proc_end_time = std::max(c.proc_end_time, node.finish_time);
    ++c.nodes;
  }
  for (auto& c : result.clusters) {
    if (c.nodes > 0) {
      c.processing /= c.nodes;
      c.retrieval /= c.nodes;
      c.sync /= c.nodes;
    }
  }
  for (std::size_t site = 0; site < result.clusters.size(); ++site) {
    auto& c = result.clusters[site];
    c.jobs_local = ctx_.recorder.jobs_local[site];
    c.jobs_stolen = ctx_.recorder.jobs_stolen[site];
    c.bytes_local = ctx_.recorder.bytes_local[site];
    c.bytes_stolen = ctx_.recorder.bytes_stolen[site];
    c.cache_hits = ctx_.recorder.cache_hits[site];
    c.cache_misses = ctx_.recorder.cache_misses[site];
    c.prefetch_issued = ctx_.recorder.prefetch_issued[site];
    c.prefetch_wasted = ctx_.recorder.prefetch_wasted[site];
    c.qos_throttled = ctx_.recorder.qos_throttled[site];
    c.qos_wait_seconds = ctx_.recorder.qos_wait_seconds[site];
    c.store_faults = ctx_.recorder.store_faults[site];
    c.fetch_retries = ctx_.recorder.fetch_retries[site];
    c.hedges_issued = ctx_.recorder.hedges_issued[site];
    c.hedges_won = ctx_.recorder.hedges_won[site];
  }

  // Idle time: how long each cluster waited for the other to finish
  // processing; global reduction time: the tail after the later one.
  double last_proc_end = 0.0;
  for (const auto& c : result.clusters) {
    if (c.nodes > 0) last_proc_end = std::max(last_proc_end, c.proc_end_time);
  }
  for (auto& c : result.clusters) {
    c.idle_time = c.nodes > 0 ? last_proc_end - c.proc_end_time : 0.0;
  }
  result.global_reduction_time = ctx_.recorder.end_time - last_proc_end;
  return result;
}

}  // namespace cloudburst::middleware
