#include "middleware/job_execution.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>
#include <utility>

namespace cloudburst::middleware {

void validate_run(const cluster::Platform& platform, const storage::DataLayout& layout,
                  const RunOptions& options) {
  if ((options.task == nullptr) != (options.dataset == nullptr)) {
    throw std::invalid_argument("run_distributed: task and dataset must be set together");
  }
  if (platform.total_nodes() == 0) {
    throw std::invalid_argument("run_distributed: platform has no compute nodes");
  }
  if (layout.chunks().empty()) {
    throw std::invalid_argument("run_distributed: layout has no chunks");
  }
  if (options.checkpoint_interval_seconds > 0.0 && options.reduction_tree) {
    throw std::invalid_argument(
        "run_distributed: periodic checkpointing requires reduction_tree = false");
  }
  if (!options.failures.empty() && options.reduction_tree) {
    throw std::invalid_argument(
        "run_distributed: failure injection requires reduction_tree = false "
        "(the master must track per-slave work)");
  }
  if (options.elastic.enabled) {
    if (options.reduction_tree) {
      throw std::invalid_argument(
          "run_distributed: elastic bursting requires reduction_tree = false");
    }
    const auto cloud_nodes = platform.cloud_node_count();
    if (cloud_nodes > 0 && options.elastic.initial_cloud_nodes == 0) {
      throw std::invalid_argument(
          "run_distributed: elastic bursting needs at least one initial cloud node");
    }
    if (options.elastic.check_interval_seconds <= 0.0) {
      throw std::invalid_argument("run_distributed: elastic check interval must be > 0");
    }
  }
  for (const auto& f : options.failures) {
    if (f.side >= platform.cluster_count()) {
      throw std::invalid_argument("run_distributed: failure names an unknown cluster");
    }
    const auto& nodes = platform.nodes(f.side);
    if (f.node_index >= nodes.size()) {
      throw std::invalid_argument("run_distributed: failure names an unknown node");
    }
    std::size_t failing_here = 0;
    for (const auto& g : options.failures) {
      if (g.side == f.side) ++failing_here;
    }
    if (failing_here >= nodes.size()) {
      throw std::invalid_argument(
          "run_distributed: failures would leave a cluster with no live slaves");
    }
  }
}

JobExecution::JobExecution(cluster::Platform& platform, const storage::DataLayout& layout,
                           const RunOptions& options, net::Postman<Message>& postman,
                           const MailboxRegistrar& register_mailbox, std::uint32_t job_id,
                           std::string trace_tag, SlotArbiter* arbiter,
                           std::function<void()> on_finished)
    : platform_(platform),
      ctx_{platform,   layout,  options, postman, RunRecorder{}, {}, {}, job_id,
           std::move(trace_tag), arbiter, std::move(on_finished)} {
  ctx_.recorder.init(platform.cluster_count(), platform.store_count());
  setup_chunk_offsets();
  build_prefetchers();
  build_actors(register_mailbox);
  apply_static_assignment();
  schedule_failures();
  setup_elastic();
}

void JobExecution::setup_chunk_offsets() {
  // Real execution: map chunk ids to dataset unit offsets.
  const RunOptions& options = ctx_.options;
  if (!options.task) return;
  if (options.task->unit_bytes() != options.dataset->unit_bytes()) {
    throw std::invalid_argument("run_distributed: task/dataset unit size mismatch");
  }
  ctx_.chunk_unit_offset.resize(ctx_.layout.chunks().size());
  std::uint64_t offset = 0;
  for (const auto& chunk : ctx_.layout.chunks()) {
    ctx_.chunk_unit_offset[chunk.id] = offset;
    offset += chunk.units;
  }
  if (offset != options.dataset->units()) {
    throw std::invalid_argument(
        "run_distributed: layout units do not tile the dataset exactly");
  }
}

void JobExecution::build_prefetchers() {
  // One per compute site when the attached cache fleet enables prefetching.
  // The Env hooks close over this, which outlives the prefetchers.
  const RunOptions& options = ctx_.options;
  if (!options.cache || !options.cache->config().prefetch.enabled) return;
  const cache::CacheConfig& cfg = options.cache->config();
  ctx_.prefetchers.resize(platform_.cluster_count());
  for (cluster::ClusterId site = 0; site < platform_.cluster_count(); ++site) {
    if (platform_.nodes(site).empty()) continue;
    cache::Prefetcher::Env env;
    env.compression_ratio = std::max(1.0, options.profile.compression_ratio);
    env.cacheable = [this, site](storage::StoreId s) {
      return ctx_.store_cacheable(site, s);
    };
    const std::string pf_name = "prefetch-" + platform_.site_name(site);
    const net::EndpointId master_ep = platform_.master_endpoint(site);
    const unsigned streams = cfg.prefetch.streams
                                 ? cfg.prefetch.streams
                                 : std::max(1u, options.retrieval_streams);
    // Prefetch GETs ride the same retry machinery as slave fetches; a
    // permanently failed GET settles done(false) and the prefetcher aborts.
    env.fetch = [this, site, pf_name, master_ep, streams](
                    storage::StoreId s, const storage::ChunkInfo& wire,
                    std::function<void(bool ok)> done) {
      storage::fetch_with_retry(
          platform_.sim(), platform_.store(s), master_ep, wire, streams,
          ctx_.options.retry, ctx_.retry_hooks(site, pf_name, wire.id, s),
          [done = std::move(done)](const storage::FetchResult& r) {
            if (done) done(r.ok);
          });
    };
    env.trace = [this, pf_name](trace::EventKind kind, std::uint64_t a,
                                std::uint64_t b) { ctx_.trace(kind, pf_name, a, b); };
    env.on_issue = [this, site](storage::StoreId s, const storage::ChunkInfo& info) {
      ++ctx_.recorder.prefetch_issued[site];
      ctx_.recorder.bytes_from_store[site][s] += info.bytes;
    };
    env.on_abort = [this, site](storage::StoreId s, const storage::ChunkInfo& info) {
      ctx_.recorder.bytes_from_store[site][s] -= info.bytes;
    };
    ctx_.prefetchers[site] = std::make_unique<cache::Prefetcher>(
        options.cache->site(site), cfg.prefetch, std::move(env));
  }
}

void JobExecution::build_actors(const MailboxRegistrar& register_mailbox) {
  for (cluster::ClusterId site = 0; site < platform_.cluster_count(); ++site) {
    const auto& nodes = platform_.nodes(site);
    if (nodes.empty()) continue;
    const net::EndpointId master_ep = platform_.master_endpoint(site);
    master_infos_.push_back(
        HeadNode::MasterInfo{master_ep, platform_.store_of_cluster(site)});
    auto peers = std::make_shared<std::vector<net::EndpointId>>();
    for (const auto& node : nodes) peers->push_back(node.endpoint);
    masters_.push_back(std::make_unique<MasterNode>(
        ctx_, site, master_ep, platform_.head_endpoint(), *peers,
        platform_.store_of_cluster(site)));
    std::uint32_t rank = 0;
    for (const auto& node : nodes) {
      const std::size_t stat_index = ctx_.recorder.nodes.size();
      NodeTimes times;
      times.name = node.name;
      times.cluster = site;
      ctx_.recorder.nodes.push_back(std::move(times));
      slaves_.push_back(
          std::make_unique<SlaveNode>(ctx_, node, master_ep, stat_index, rank++, peers));
    }
  }

  // The head's JobPool draws scheduler randomness from the run's seed, not
  // the SchedulerPolicy default.
  SchedulerPolicy policy = ctx_.options.policy;
  policy.random_seed = ctx_.options.random_seed;
  head_ = std::make_unique<HeadNode>(ctx_, platform_.head_endpoint(),
                                     JobPool(ctx_.layout, policy), master_infos_,
                                     ctx_.options.task);

  // --- wire mailboxes --------------------------------------------------------
  HeadNode* head = head_.get();
  register_mailbox(head->endpoint(), [head](net::EndpointId from, Message msg) {
    head->handle(from, std::move(msg));
  });
  for (auto& master : masters_) {
    MasterNode* m = master.get();
    register_mailbox(m->endpoint(), [m](net::EndpointId from, Message msg) {
      m->handle(from, std::move(msg));
    });
  }
  for (auto& slave : slaves_) {
    SlaveNode* s = slave.get();
    register_mailbox(s->endpoint(), [s](net::EndpointId from, Message msg) {
      s->handle(from, std::move(msg));
    });
  }
}

void JobExecution::apply_static_assignment() {
  const RunOptions& options = ctx_.options;
  if (!options.static_assignment) return;
  if (!options.failures.empty() || options.elastic.enabled) {
    throw std::invalid_argument(
        "run_distributed: static assignment excludes failures and elastic mode");
  }
  // Each chunk goes to the cluster whose preferred store holds it; chunks
  // on a store no active cluster prefers are dealt round-robin across the
  // clusters (a lone cluster therefore takes everything).
  std::map<storage::StoreId, std::size_t> store_owner;
  for (std::size_t m = 0; m < masters_.size(); ++m) {
    store_owner.emplace(master_infos_[m].preferred_store, m);
  }
  std::vector<std::vector<std::pair<net::EndpointId, storage::ChunkId>>> plans(
      masters_.size());
  std::vector<std::size_t> cursors(masters_.size(), 0);
  std::size_t orphan_cursor = 0;
  for (const auto& chunk : ctx_.layout.chunks()) {
    const auto it = store_owner.find(ctx_.layout.store_of(chunk.id));
    const std::size_t m =
        it != store_owner.end() ? it->second : orphan_cursor++ % masters_.size();
    const auto& nodes = platform_.nodes(masters_[m]->site());
    plans[m].emplace_back(nodes[cursors[m]++ % nodes.size()].endpoint, chunk.id);
  }
  for (std::size_t m = 0; m < masters_.size(); ++m) {
    masters_[m]->assign_static(plans[m]);
  }
}

void JobExecution::schedule_failures() {
  // Injection times are relative to construction — i.e. to the job's own
  // start, since start() follows construction at the same sim instant.
  for (const auto& f : ctx_.options.failures) {
    // Locate the victim slave and its master.
    const auto& nodes = platform_.nodes(f.side);
    const net::EndpointId victim_ep = nodes.at(f.node_index).endpoint;
    SlaveNode* victim = nullptr;
    for (auto& s : slaves_) {
      if (s->endpoint() == victim_ep) victim = s.get();
    }
    MasterNode* master = nullptr;
    for (auto& m : masters_) {
      if (m->site() == f.side) master = m.get();
    }
    if (!victim || !master) {
      throw std::logic_error("run_distributed: failure target not instantiated");
    }
    platform_.sim().schedule(des::from_seconds(f.at_seconds), [this, victim] {
      ctx_.trace(trace::EventKind::SlaveFailed, "node", 0, 0);
      victim->kill();
    });
    platform_.sim().schedule(
        des::from_seconds(f.at_seconds + ctx_.options.failure_detection_seconds),
        [master, victim_ep] { master->on_slave_failed(victim_ep); });
  }
}

void JobExecution::setup_elastic() {
  // Cloud slaves beyond the initial allocation start dormant; the controller
  // watches progress and boots them when the deadline is at risk.
  const RunOptions& options = ctx_.options;
  for (auto& slave : slaves_) initial_active_.push_back(slave.get());
  if (!options.elastic.enabled) {
    ctx_.recorder.cloud_instance_starts.assign(platform_.cloud_node_count(), 0.0);
    for (cluster::ClusterId site = 0; site < platform_.cluster_count(); ++site) {
      if (!platform_.is_cloud(site)) continue;
      for (const auto& node : platform_.nodes(site)) {
        ctx_.recorder.cloud_instance_nodes.push_back(node.endpoint);
      }
    }
    return;
  }

  initial_active_.clear();
  std::set<net::EndpointId> cloud_eps;
  for (cluster::ClusterId site = 0; site < platform_.cluster_count(); ++site) {
    if (!platform_.is_cloud(site)) continue;
    for (const auto& node : platform_.nodes(site)) cloud_eps.insert(node.endpoint);
  }
  std::uint32_t cloud_seen = 0;
  for (auto& slave : slaves_) {
    const bool is_cloud = cloud_eps.count(slave->endpoint()) > 0;
    if (is_cloud && cloud_seen++ >= options.elastic.initial_cloud_nodes) {
      dormant_.push_back(slave.get());
    } else {
      initial_active_.push_back(slave.get());
      if (is_cloud) {
        ctx_.recorder.cloud_instance_starts.push_back(0.0);
        ctx_.recorder.cloud_instance_nodes.push_back(slave->endpoint());
      }
    }
  }

  const auto total_chunks = ctx_.layout.chunks().size();
  auto next_dormant = std::make_shared<std::size_t>(0);
  auto controller = std::make_shared<std::function<void()>>();
  *controller = [this, next_dormant, controller, total_chunks] {
    const RunOptions& opts = ctx_.options;
    if (ctx_.recorder.finished) return;  // run over: stop rescheduling
    const double now = ctx_.now_seconds();
    // Progress is measured over the job's own lifetime, not absolute sim
    // time — a workload job submitted late would otherwise look slow.
    const double elapsed = now - start_time_;
    std::size_t done = 0;
    for (const auto& n : ctx_.recorder.nodes) done += n.jobs;
    if (done < total_chunks && *next_dormant < dormant_.size()) {
      // Projected completion at the current throughput. Before the first
      // job lands the projection is unknown: scale only once the deadline
      // itself has already slipped.
      const double rate = elapsed > 0.0 ? static_cast<double>(done) / elapsed : 0.0;
      const double remaining = static_cast<double>(total_chunks - done);
      const bool misses_deadline =
          rate > 0.0 ? elapsed + remaining / rate > opts.elastic.deadline_seconds
                     : elapsed > opts.elastic.deadline_seconds;
      if (misses_deadline) {
        for (std::uint32_t k = 0;
             k < opts.elastic.activation_step && *next_dormant < dormant_.size(); ++k) {
          SlaveNode* booting = dormant_[(*next_dormant)++];
          const double up_at = elapsed + opts.elastic.boot_seconds;
          ctx_.recorder.cloud_instance_starts.push_back(up_at);
          ctx_.recorder.cloud_instance_nodes.push_back(booting->endpoint());
          ++ctx_.recorder.elastic_activations;
          ctx_.sim().schedule(des::from_seconds(opts.elastic.boot_seconds),
                              [this, booting] {
                                ctx_.trace(trace::EventKind::InstanceActivated, "node");
                                booting->start();
                              });
        }
      }
    }
    ctx_.sim().schedule(des::from_seconds(opts.elastic.check_interval_seconds),
                        [controller] { (*controller)(); });
  };
  platform_.sim().schedule(des::from_seconds(options.elastic.check_interval_seconds),
                           [controller] { (*controller)(); });
}

void JobExecution::start() {
  start_time_ = ctx_.now_seconds();
  for (auto& master : masters_) master->start();
  for (SlaveNode* slave : initial_active_) slave->start();
}

RunResult JobExecution::collect(bool use_platform_store_stats) {
  // Prefetches nobody consumed were wasted WAN work; settle them now that
  // every in-flight transfer has drained.
  for (cluster::ClusterId site = 0; site < ctx_.prefetchers.size(); ++site) {
    if (ctx_.prefetchers[site]) {
      ctx_.recorder.prefetch_wasted[site] +=
          static_cast<std::uint32_t>(ctx_.prefetchers[site]->finish());
    }
  }

  RunResult result;
  result.total_time = ctx_.recorder.end_time - start_time_;
  result.nodes = ctx_.recorder.nodes;
  result.robj = head_->take_robj();
  result.cloud_instance_starts = ctx_.recorder.cloud_instance_starts;
  result.cloud_instance_nodes = ctx_.recorder.cloud_instance_nodes;
  result.elastic_activations = ctx_.recorder.elastic_activations;
  result.bytes_from_store = ctx_.recorder.bytes_from_store;
  result.bytes_from_cache = ctx_.recorder.bytes_from_cache;
  result.bytes_retried = ctx_.recorder.bytes_retried;
  result.store_requests.resize(platform_.store_count());
  for (storage::StoreId s = 0; s < platform_.store_count(); ++s) {
    if (use_platform_store_stats) {
      result.store_requests[s] = platform_.store(s).stats().requests;
    } else {
      // Concurrent jobs share the stores, so the store's global counter mixes
      // tenants; this job's own per-site attempt counts are the right share.
      std::uint64_t requests = 0;
      for (const auto& per_site : ctx_.recorder.store_fetch_requests) {
        requests += per_site[s];
      }
      result.store_requests[s] = requests;
    }
    const auto& store_spec =
        platform_.spec().sites.at(platform_.owner_of_store(s)).store;
    if (store_spec && store_spec->kind == cluster::StoreSpec::Kind::Object) {
      result.s3_get_requests +=
          result.store_requests[s] * std::max(1u, ctx_.options.retrieval_streams);
    }
  }
  result.clusters.resize(platform_.cluster_count());
  for (cluster::ClusterId site = 0; site < platform_.cluster_count(); ++site) {
    result.clusters[site].name = platform_.site_name(site);
  }

  for (const auto& node : result.nodes) {
    auto& c = result.clusters[static_cast<std::size_t>(node.cluster)];
    c.processing += node.processing;
    c.retrieval += node.retrieval;
    // Sync: waiting for assignments during the run plus the tail between the
    // node's last job and the end of the global reduction.
    c.sync += node.wait + (ctx_.recorder.end_time - node.finish_time);
    c.proc_end_time = std::max(c.proc_end_time, node.finish_time);
    ++c.nodes;
  }
  for (auto& c : result.clusters) {
    if (c.nodes > 0) {
      c.processing /= c.nodes;
      c.retrieval /= c.nodes;
      c.sync /= c.nodes;
    }
  }
  for (std::size_t site = 0; site < result.clusters.size(); ++site) {
    auto& c = result.clusters[site];
    c.jobs_local = ctx_.recorder.jobs_local[site];
    c.jobs_stolen = ctx_.recorder.jobs_stolen[site];
    c.bytes_local = ctx_.recorder.bytes_local[site];
    c.bytes_stolen = ctx_.recorder.bytes_stolen[site];
    c.cache_hits = ctx_.recorder.cache_hits[site];
    c.cache_misses = ctx_.recorder.cache_misses[site];
    c.prefetch_issued = ctx_.recorder.prefetch_issued[site];
    c.prefetch_wasted = ctx_.recorder.prefetch_wasted[site];
    c.store_faults = ctx_.recorder.store_faults[site];
    c.fetch_retries = ctx_.recorder.fetch_retries[site];
    c.hedges_issued = ctx_.recorder.hedges_issued[site];
    c.hedges_won = ctx_.recorder.hedges_won[site];
  }

  // Idle time: how long each cluster waited for the other to finish
  // processing; global reduction time: the tail after the later one.
  double last_proc_end = 0.0;
  for (const auto& c : result.clusters) {
    if (c.nodes > 0) last_proc_end = std::max(last_proc_end, c.proc_end_time);
  }
  for (auto& c : result.clusters) {
    c.idle_time = c.nodes > 0 ? last_proc_end - c.proc_end_time : 0.0;
  }
  result.global_reduction_time = ctx_.recorder.end_time - last_proc_end;
  return result;
}

}  // namespace cloudburst::middleware
