// Slave node: retrieves and processes jobs (paper §III-B).
//
// Life cycle: request a job from the master; on assignment, fetch the chunk
// from whichever store hosts it (multi-stream for object stores — "each
// slave retrieves jobs using multiple retrieval threads"); process it —
// cache-sized unit groups folded into the node's private reduction object;
// repeat until the master says NoMoreJobs. With pipeline_depth > 1 the slave
// keeps several jobs in flight, overlapping retrieval with computation.
//
// Reduction modes:
//  * tree (default): once done, the slave participates in a binomial tree
//    over its cluster peers — robjs hop between slave NICs (the paper's
//    "all-to-all collective operation") and rank 0 ships the cluster robj
//    to the master.
//  * direct (fault-tolerant): the slave reports JobDone per chunk and ships
//    its robj only when the master sends RobjRequest, starting a fresh
//    (delta) robj afterwards — the master checkpoint-tracks work per robj.
//
// A slave can be kill()ed mid-run: it goes silent (all pending callbacks are
// inert) and whatever its robj accumulated is lost, exactly the failure
// semantics a reduction-object runtime has.
#pragma once

#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "des/sim_time.hpp"
#include "middleware/run_context.hpp"

namespace cloudburst::middleware {

class SlaveNode {
 public:
  /// `peers` are the endpoints of all slaves in this cluster (rank order);
  /// used by the tree reduction. `rank` is this slave's position.
  SlaveNode(RunContext& ctx, const cluster::NodeHandle& node, net::EndpointId master,
            std::size_t stat_index, std::uint32_t rank,
            std::shared_ptr<const std::vector<net::EndpointId>> peers);

  /// Kick off the first job request(s).
  void start();

  /// Postman delivery entry point.
  void handle(net::EndpointId from, Message msg);

  /// Simulated crash: drop everything, go silent. Any held or queued core
  /// slot is returned to the arbiter so other jobs are not wedged.
  void kill() {
    alive_ = false;
    if (ctx_.arbiter && (slot_held_ || slot_waiting_)) {
      ctx_.arbiter->forget(node_.endpoint, ctx_.job_id);
      slot_held_ = false;
      slot_waiting_ = false;
    }
  }
  bool alive() const { return alive_; }

  /// Graceful drain notice (maintenance drain or spot-reclaim warning): stop
  /// claiming pool chunks, bounce any assignment that still arrives back to
  /// the master (ChunkReturned), finish the fetched/in-flight chunks, then
  /// flush the final delta-robj checkpoint and vacate. Direct mode only.
  void begin_drain();
  bool draining() const { return draining_; }
  /// True once the final checkpoint was flushed and the node reported
  /// vacated (it is no longer alive from that instant).
  bool vacated() const { return vacated_; }

  net::EndpointId endpoint() const { return node_.endpoint; }
  cluster::ClusterId site() const { return node_.cluster; }
  const std::string& name() const { return node_.name; }

 private:
  void top_up_requests();
  void on_assigned(storage::ChunkId chunk, storage::StoreId store);
  /// Resolve one fetch: site cache hit, in-flight prefetch join, or a
  /// (possibly retrying) store fetch. Re-entered when a joined prefetch or a
  /// whole retry cycle permanently fails — an assigned chunk must complete.
  void begin_fetch(storage::ChunkId chunk);
  /// Issue the store fetch under the run's RetryPolicy; `cache` non-null
  /// admits the chunk (at `resident` bytes) on arrival.
  void fetch_from_store(storage::ChunkId chunk, const storage::ChunkInfo& wire,
                        storage::StoreId store_id, cache::ChunkCache* cache,
                        std::uint64_t resident);
  /// Every attempt of a retry cycle failed: back off once more, then re-open
  /// a fresh cycle (the simulation cannot drop assigned work).
  void on_fetch_failed(storage::ChunkId chunk);
  /// Store this slave will fetch `chunk` from: the replica store the master
  /// resolved at assignment (or re-resolved after a failure), else the
  /// layout primary.
  storage::StoreId fetch_store(storage::ChunkId chunk) const;
  /// Replication failover: the chunk's read moves from `from` to `to` —
  /// re-point the assignment accounting the master charged to `from`.
  void reassign_store(storage::ChunkId chunk, storage::StoreId from,
                      storage::StoreId to);
  void on_fetched(storage::ChunkId chunk);
  /// Gate on the CPU (and, under a workload, the node's core slot); pops the
  /// ready queue into start_processing() once the slot is ours.
  void maybe_process();
  void start_processing();
  void on_processed(storage::ChunkId chunk, double duration);
  void on_child_robj(Message msg);
  void maybe_finish_tree();
  void send_robj(net::EndpointId dst, std::uint32_t round = 0);
  /// Drain endgame: once no work is held or requested, ship the final delta
  /// robj inside a NodeVacated and go silent.
  void maybe_vacate();

  /// Number of binomial-tree children this rank waits for, and the parent
  /// rank it reports to (rank 0 reports to the master).
  std::uint32_t expected_children() const;
  std::uint32_t parent_rank() const;

  NodeTimes& stats() { return ctx_.recorder.nodes[stat_index_]; }

  RunContext& ctx_;
  cluster::NodeHandle node_;
  net::EndpointId master_;
  std::size_t stat_index_;
  std::uint32_t rank_;
  std::shared_ptr<const std::vector<net::EndpointId>> peers_;

  bool alive_ = true;
  bool draining_ = false;  ///< drain notice received: claim no new work
  bool vacated_ = false;   ///< final checkpoint flushed, node gone
  unsigned outstanding_requests_ = 0;
  unsigned active_jobs_ = 0;  ///< assigned but not fully processed
  bool no_more_ = false;
  bool processing_ = false;
  bool slot_held_ = false;     ///< arbiter granted us the node's core slot
  bool slot_waiting_ = false;  ///< claim queued at the arbiter
  bool robj_sent_ = false;  ///< tree mode: cluster robj shipped up the tree
  std::uint32_t children_received_ = 0;
  double idle_since_ = 0.0;
  /// Cycle-level backoff draws taken (jitter substream sequencing): with
  /// RetryPolicy::jitter_fraction > 0 each exhausted retry cycle jitters its
  /// maximal backoff so peers that failed in lockstep de-synchronize instead
  /// of re-hammering the store in phase.
  std::uint64_t backoff_draws_ = 0;
  std::deque<storage::ChunkId> ready_;                       ///< fetched, awaiting CPU
  std::unordered_map<storage::ChunkId, double> fetch_start_; ///< per-chunk timer
  /// Replication only: replica store each assigned chunk reads from (empty
  /// without a ReplicaSet — the layout primary is implied).
  std::unordered_map<storage::ChunkId, storage::StoreId> assigned_store_;

  api::RobjPtr robj_;  ///< real-execution accumulator (may be null)
};

}  // namespace cloudburst::middleware
