// Master node: per-cluster job pool manager (paper §III-B).
//
// "The master monitors the cluster's job pool, and when it senses that it is
// depleted, it will request a new group of jobs from the head" — the pool is
// refilled from the head at a low watermark; slaves pull jobs one at a time,
// which is the on-demand pooling that load-balances heterogeneous nodes.
// Assignment is file-affine: a slave preferentially continues the file it
// last read so the storage node sees sequential access.
//
// Reduction & fault tolerance:
//  * tree mode (default): the binomial tree over the slaves delivers one
//    merged cluster robj from rank 0; the master forwards it to the head.
//  * direct mode: the master tracks per-slave assignments and JobDone acks;
//    when the cluster's work drains it requests robjs from all live slaves
//    (two-phase commit) and merges them. Receiving a slave's robj
//    *checkpoints* that slave's chunks; if a slave dies, every chunk
//    assigned since its last checkpoint is re-enqueued and push-assigned to
//    the surviving slaves — the lost robj covered exactly those chunks.
#pragma once

#include <deque>
#include <map>
#include <set>
#include <vector>

#include "middleware/run_context.hpp"

namespace cloudburst::middleware {

class MasterNode {
 public:
  MasterNode(RunContext& ctx, cluster::ClusterId site, net::EndpointId self,
             net::EndpointId head, std::vector<net::EndpointId> slaves,
             storage::StoreId preferred_store);

  void handle(net::EndpointId from, Message msg);

  /// Arm periodic robj checkpointing (direct mode with
  /// checkpoint_interval_seconds > 0); called once by the runtime.
  void start();

  /// Static-assignment baseline: push `chunks[i]` to `slaves[i]` and mark
  /// the pool permanently exhausted (no on-demand pulls, no stealing).
  void assign_static(const std::vector<std::pair<net::EndpointId, storage::ChunkId>>& plan);

  /// Heartbeat timeout fired for `slave`: reclaim its un-checkpointed work.
  void on_slave_failed(net::EndpointId slave);

  /// Chaos site outage: the whole cluster went dark at once. Silences the
  /// master for good — checkpoint ticks stop, late messages are ignored, no
  /// commit is attempted (reclaiming locally would throw with zero survivors).
  /// The head re-grants this cluster's uncommitted work to surviving masters
  /// via HeadNode::on_master_failed; this master never speaks again even if
  /// its site later recovers (recovered capacity serves *future* jobs).
  void evacuate();

  bool evacuated() const { return evacuated_; }

  std::uint32_t vacated_slaves() const { return vacated_slaves_; }

  /// Migration standbys are wired into the cluster but stay dormant (unbilled,
  /// never started) until leased: the master must not push work at them or
  /// count them as live capacity. A leased standby is "booting" until its
  /// boot delay elapses — still no push target, but it counts as capacity
  /// that will pull re-pooled work, so the cluster is not written off.
  void mark_dormant(net::EndpointId slave) { dormant_.insert(slave); }
  void mark_leased(net::EndpointId slave) {
    dormant_.erase(slave);
    booting_.insert(slave);
  }
  void mark_booted(net::EndpointId slave) { booting_.erase(slave); }

  net::EndpointId endpoint() const { return self_; }
  cluster::ClusterId site() const { return site_; }
  std::uint32_t reexecuted_jobs() const { return reexecuted_jobs_; }

 private:
  void maybe_refill();
  void serve_waiting();
  void assign_to(net::EndpointId slave);
  void push_assign(storage::ChunkId chunk, net::EndpointId slave);
  void account_assignment(storage::ChunkId chunk, storage::StoreId from);
  /// Reverse account_assignment for a chunk a draining slave handed back
  /// before fetching anything (its re-assignment will account it again).
  void account_return(storage::ChunkId chunk);
  /// Store this master charged the chunk's assignment to: the replica the
  /// ReplicaSet resolved at assignment time, or the layout primary.
  storage::StoreId assigned_store(storage::ChunkId chunk) const;
  void merge_slave_robj(const Message& msg);
  void maybe_commit();
  void checkpoint_tick();
  void send_cluster_robj();
  /// A draining slave handed an assigned chunk back unstarted.
  void on_chunk_returned(net::EndpointId slave, storage::ChunkId chunk);
  /// A draining slave flushed its final delta robj and went silent.
  void on_node_vacated(net::EndpointId slave, const Message& msg);
  /// Shared node-loss tail: settle the prefetcher, lease a replacement if a
  /// migration policy is armed and work remains, then replay the lost chunks
  /// (re-pooled for pull when a replacement was leased, push-assigned to the
  /// survivors otherwise).
  void reclaim_lost_work(net::EndpointId slave, std::vector<storage::ChunkId> lost);
  /// Commit round bookkeeping: a counted slave can die mid-commit; its
  /// expected robj is withdrawn and the round completes without it.
  void drop_from_commit(net::EndpointId slave);
  void finish_commit_if_complete();
  /// Live, non-draining push targets (falls back to any live slave).
  std::vector<net::EndpointId> push_targets() const;
  /// Endgame: no_more_ was already announced, so idle survivors will never
  /// pull again — push whatever sits in the pool at them directly.
  void flush_pool_if_endgame();

  RunContext& ctx_;
  cluster::ClusterId site_;
  std::string trace_name_;  ///< "master-<site>" for the event stream
  net::EndpointId self_;
  net::EndpointId head_;
  std::vector<net::EndpointId> slaves_;
  storage::StoreId preferred_store_;

  std::deque<storage::ChunkId> pool_;
  std::deque<net::EndpointId> waiting_slaves_;
  bool refill_outstanding_ = false;
  bool no_more_ = false;
  bool evacuated_ = false;  ///< site blackout: ignore everything forever

  /// Last (file, next index) each slave read — assignment prefers the chunk
  /// that continues a slave's sequential position so the storage node sees
  /// sequential reads ("compute units sequentially read jobs from files").
  std::map<net::EndpointId, std::pair<storage::FileId, std::uint32_t>> last_read_;

  /// Replication only: replica store each chunk's latest assignment resolved
  /// to (account_return must reverse the same store the assignment charged).
  /// Empty without a ReplicaSet attached.
  std::map<storage::ChunkId, storage::StoreId> assigned_store_;

  // --- direct-mode / fault-tolerance bookkeeping ----------------------------
  std::set<net::EndpointId> dead_;
  /// Slaves known to be draining (they bounced a chunk or vacated): excluded
  /// from push-assignment so returned work converges on running nodes.
  std::set<net::EndpointId> draining_slaves_;
  /// Dormant migration standbys: present in slaves_ but not running.
  std::set<net::EndpointId> dormant_;
  /// Leased replacements waiting out their boot delay.
  std::set<net::EndpointId> booting_;
  /// Slaves whose robj for the current commit round already arrived; a slave
  /// dying mid-commit *before* responding shrinks robjs_expected_ instead of
  /// deadlocking the round.
  std::set<net::EndpointId> commit_responded_;
  std::uint32_t vacated_slaves_ = 0;
  /// Chunks assigned but not yet JobDone'd (in flight on the slave).
  std::map<net::EndpointId, std::vector<storage::ChunkId>> inflight_;
  /// Chunks JobDone'd but not yet covered by a received robj. Only these are
  /// cleared when the slave's robj arrives: a job pushed after the robj was
  /// requested stays tracked until the *next* checkpoint.
  std::map<net::EndpointId, std::vector<storage::ChunkId>> done_unchk_;
  std::uint32_t outstanding_total_ = 0;
  bool committing_ = false;
  std::uint32_t commit_round_ = 0;   ///< ids >= 1; periodic checkpoints use 0
  std::uint32_t robjs_expected_ = 0;
  std::uint32_t robjs_received_ = 0;
  bool cluster_robj_sent_ = false;
  std::uint32_t reexecuted_jobs_ = 0;
  std::size_t push_cursor_ = 0;  ///< round-robin over live slaves

  // tree mode: count of cluster robjs (rank 0 sends exactly one)
  std::uint32_t tree_robjs_received_ = 0;

  api::RobjPtr robj_;  ///< merged cluster robj (real runs)
};

}  // namespace cloudburst::middleware
