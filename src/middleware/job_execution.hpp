// One job's complete actor tree (head, masters, slaves, prefetchers) on a
// possibly shared platform.
//
// run_distributed() builds exactly one of these and drains the simulator;
// workload::WorkloadManager builds one per concurrent job over the same
// Platform and lets their event streams interleave in a single DES run. The
// construction and event-scheduling order here is load-bearing: a solo
// JobExecution must replay run_distributed's historical sequence byte for
// byte (the PaperFidelity goldens pin it).
#pragma once

#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cluster/platform.hpp"
#include "middleware/head_node.hpp"
#include "replica/repair.hpp"
#include "middleware/master_node.hpp"
#include "middleware/run_context.hpp"
#include "middleware/run_result.hpp"
#include "middleware/slave_node.hpp"
#include "net/messaging.hpp"
#include "storage/data_layout.hpp"

namespace cloudburst::middleware {

/// Check that `options` can run on `platform` over `layout`; throws
/// std::invalid_argument otherwise. run_distributed calls this itself; a
/// workload manager calls it per job at submission so a bad spec fails fast
/// instead of mid-simulation.
void validate_run(const cluster::Platform& platform, const storage::DataLayout& layout,
                  const RunOptions& options);

class JobExecution {
 public:
  /// How this job's actors get their mailboxes. A standalone run registers
  /// straight with the postman; a workload installs demultiplexing mailboxes
  /// (several jobs' actors share each endpoint) and routes by Message::job.
  using MailboxRegistrar =
      std::function<void(net::EndpointId, std::function<void(net::EndpointId, Message)>)>;

  /// Builds the full actor tree and schedules the job's self-driving events
  /// (failure injections, elastic controller ticks) — everything short of
  /// the first master/slave action, which start() triggers. The referenced
  /// platform/layout/options/postman must outlive this object.
  JobExecution(cluster::Platform& platform, const storage::DataLayout& layout,
               const RunOptions& options, net::Postman<Message>& postman,
               const MailboxRegistrar& register_mailbox, std::uint32_t job_id = 0,
               std::string trace_tag = {}, SlotArbiter* arbiter = nullptr,
               std::function<void()> on_finished = {});

  JobExecution(const JobExecution&) = delete;
  JobExecution& operator=(const JobExecution&) = delete;
  ~JobExecution();

  /// Cross-job drain entry point (workload manager): begin draining the
  /// slave this job runs on `ep`. Returns false when the job has no live,
  /// non-draining slave there (tree-mode job, already vacated, never built)
  /// — the caller must not wait for a vacate from it.
  bool drain_node(net::EndpointId ep);

  /// Launch the masters and the initially-active slaves. The job then runs
  /// as the shared simulator executes; ctx().on_finished fires when the
  /// head completes the global reduction.
  void start();

  bool finished() const { return ctx_.recorder.finished; }
  /// Sim time the head completed the run (valid once finished()).
  double end_time() const { return ctx_.recorder.end_time; }
  /// Sim time start() ran (0.0 until then — and for standalone runs).
  double start_time() const { return start_time_; }
  RunContext& ctx() { return ctx_; }

  /// Settle the prefetchers and aggregate the RunResult. Call after the
  /// simulator drained (standalone) or after the whole workload finished, so
  /// in-flight transfers have landed. `use_platform_store_stats` keeps the
  /// historical store_requests source (the store's own global counters) for
  /// solo runs; a workload passes false to use this job's own counts.
  RunResult collect(bool use_platform_store_stats = true);

 private:
  void setup_chunk_offsets();
  /// Resolve this job's platform membership: per-site node lists filtered
  /// through the service directory (Active only) and, on cloud sites under a
  /// pool plan, down to the leased nodes. Without a directory or plan the
  /// lists equal the platform's — default runs are byte-identical.
  void resolve_membership();
  /// Subscribe to the directory's change feed (store retirement marks the
  /// store's replicas lost so the repair actor re-replicates).
  void setup_directory();
  /// Elastic-pool leases: booting nodes start once warm; per-job instance
  /// billing is dropped (the pool's lease windows are the billing record).
  void setup_pool();
  /// Attach the StoreQos (if any): bind store capacities, resolve this run's
  /// tenant id, and apply per-tenant cache shares to the fleet.
  void setup_qos();
  /// Attach the caller-owned ReplicaSet (first attach builds placement and
  /// emits the initial ReplicaCreated events) and construct the background
  /// repair actor.
  void setup_replication();
  void build_prefetchers();
  void build_actors(const MailboxRegistrar& register_mailbox);
  void apply_static_assignment();
  void schedule_failures();
  void setup_elastic();
  /// Checkpointed migration: hold back standby cloud slaves and install the
  /// on_node_lost hook that leases them.
  void setup_migration();
  /// Schedule RunOptions::lifecycle events plus the stochastic spot-reclaim
  /// draws (one exponential per active cloud node).
  void schedule_lifecycle();
  /// Schedule every window of RunOptions::chaos (no-op when null): link
  /// faults and partitions, store outages, node crash/drain/reclaim events,
  /// and whole-site blackouts with recovery.
  void setup_chaos();
  /// Site blackout: WAN links cut, store dark, slaves killed and their
  /// in-flight flows cancelled, directory services retired, master
  /// evacuated and the head told to re-grant its uncommitted work.
  void begin_site_outage(cluster::ClusterId site);
  /// Window end: links back to nominal capacity, store online, directory
  /// services re-registered (fresh generation) for future placement. Nodes
  /// killed by the outage stay dead for this job.
  void recover_site(cluster::ClusterId site);
  /// Drain notice at `at_seconds` (relative to now); `notice_seconds >= 0`
  /// adds a spot-reclaim hard-kill deadline that far after the notice.
  void schedule_drain(cluster::ClusterId site, net::EndpointId victim_ep,
                      const std::string& victim_name, double at_seconds,
                      double notice_seconds);
  /// Lease the next same-site standby for a lost node; false when none left.
  bool lease_replacement(cluster::ClusterId site);
  SlaveNode* slave_by_endpoint(net::EndpointId ep);
  MasterNode* master_of(cluster::ClusterId site);

  cluster::Platform& platform_;
  RunContext ctx_;
  double start_time_ = 0.0;

  /// Per-site membership this job was built with (see resolve_membership).
  std::vector<std::vector<cluster::NodeHandle>> site_nodes_;
  /// Directory change-feed subscription (0 = none).
  directory::PlatformDirectory::WatchId directory_watch_ = 0;

  std::vector<HeadNode::MasterInfo> master_infos_;
  std::vector<std::unique_ptr<MasterNode>> masters_;
  std::vector<std::unique_ptr<SlaveNode>> slaves_;
  std::unique_ptr<HeadNode> head_;
  /// Replication only: background re-replicator (null otherwise).
  std::unique_ptr<replica::RepairActor> repair_;
  /// True when this execution's attach() built the set — that job (and only
  /// that job, under a shared workload set) bills the replica storage.
  bool replication_built_here_ = false;
  /// Elastic mode: cloud slaves beyond the initial allocation, boot order.
  std::vector<SlaveNode*> dormant_;
  /// Slaves start() launches (everyone, minus dormant ones).
  std::vector<SlaveNode*> initial_active_;

  // --- checkpointed migration ----------------------------------------------
  struct Standby {
    SlaveNode* slave;
    cluster::ClusterId site;
    std::string name;
  };
  std::vector<Standby> standby_;   ///< lease order (tail of cloud build order)
  std::size_t next_standby_ = 0;
  /// Endpoints of standbys not yet leased: unbilled, immune to lifecycle
  /// events (an instance that was never rented cannot crash or be reclaimed).
  std::set<net::EndpointId> dormant_standby_;
  /// Next Rng substream id for stochastic spot draws (initial nodes first,
  /// then one fresh draw per leased replacement).
  std::uint64_t spot_streams_used_ = 0;
};

}  // namespace cloudburst::middleware
