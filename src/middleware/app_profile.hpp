// Application cost profiles for the simulated distributed runs.
//
// The middleware schedules *chunks*; what an application contributes to the
// timing model is captured here: how fast a reference core chews through
// chunk bytes, how large its reduction object is (the robj crosses the LAN
// slave->master and the WAN master->head during the global reduction), and
// how fast robjs merge. Profiles for the paper's three applications are in
// apps/profiles.hpp, calibrated against the real kernels and the paper's
// reported ratios (see DESIGN.md).
#pragma once

#include <cstdint>
#include <string>

namespace cloudburst::middleware {

struct AppProfile {
  std::string name;
  std::uint64_t unit_bytes = 1;

  /// Processing throughput of one reference-speed core (bytes/second).
  /// A chunk takes chunk.bytes / (rate * node.cores * node.core_speed).
  double bytes_per_second_per_core = 0.0;

  /// Serialized reduction-object size (bytes) — transferred during the
  /// global reduction phase.
  std::uint64_t robj_bytes = 0;

  /// Merge throughput when folding one robj into another (bytes/second of
  /// robj); models the head's "combining and calculating the final
  /// reduction object" cost.
  double merge_bytes_per_second = 2e9;

  /// Fixed per-job overhead (job setup, buffer management), seconds.
  double per_job_overhead_seconds = 0.002;

  /// Stored-data compression (the authors' follow-on research direction:
  /// data reduction for data-intensive computing). Chunks are stored and
  /// transferred at bytes / compression_ratio; every fetched chunk pays
  /// decompression at this rate per core before processing. 1.0 = off.
  double compression_ratio = 1.0;
  double decompress_bytes_per_second_per_core = 400e6;
};

}  // namespace cloudburst::middleware
