// The head node's global job pool and assignment policies (paper §III-B).
//
// Policies implemented, each individually switchable for the ablation
// benches:
//  * locality preference — a cluster is served jobs from "its" store while
//    any remain (local store for the local cluster, S3 for the cloud);
//  * consecutive batches — a batch is taken as consecutive chunks of one
//    file, so the storage node sees sequential reads ("allows the compute
//    units to sequentially read jobs from the files");
//  * work stealing — once a side's store is drained, remaining jobs from the
//    remote store are handed out;
//  * minimum-contention remote selection — stolen jobs come from the file
//    the fewest readers are currently processing ("minimizes file
//    contention among clusters").
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "common/rng.hpp"
#include "storage/data_layout.hpp"

namespace cloudburst::middleware {

enum class RemoteSelection : std::uint8_t {
  MinContention,  ///< paper's heuristic
  Random,         ///< ablation baseline
  Sequential,     ///< lowest file id first
  /// Replica-aware: steal from the file whose data is cheapest to reach —
  /// WAN cost of the nearest live replica plus current fault/throttle
  /// penalties. Requires RunOptions::replication; without a replica view it
  /// falls back to MinContention.
  CheapestReplica,
};

struct SchedulerPolicy {
  std::uint32_t batch_size = 4;  ///< jobs per head->master batch
  /// Stolen (remote-store) jobs are granted at most this many at a time —
  /// they are expensive, and handing a big batch to one side near the end
  /// leaves the other side idle.
  std::uint32_t steal_batch_size = 1;
  /// Endgame reservation: while the owning side is still active, its last
  /// `steal_reserve` jobs are not stealable — a remote job granted in the
  /// final seconds becomes a straggler (WAN fetch) while the data-local side
  /// idles.
  std::uint32_t steal_reserve = 4;
  bool prefer_locality = true;
  bool consecutive_batches = true;
  bool allow_stealing = true;
  RemoteSelection remote_selection = RemoteSelection::MinContention;
  std::uint64_t random_seed = 42;  ///< for RemoteSelection::Random (distributed runs copy RunOptions::random_seed here)
};

/// Job pool bookkeeping: which chunks are unassigned, organized by file and
/// store, plus per-file reader counts for the contention heuristic.
class JobPool {
 public:
  /// Replica-awareness hooks, kept as bare functions so the scheduler stays
  /// decoupled from the replica subsystem. Both null by default — the pool
  /// then sees exactly the single-owner layout (byte-identical paper runs).
  struct ReplicaView {
    /// Does `store` hold a live copy of `chunk`? Files whose lead chunk has
    /// a live replica on the requester's preferred store count as local.
    std::function<bool(storage::ChunkId, storage::StoreId)> on_store;
    /// Route cost of reading `chunk` for a requester preferring `store`
    /// (RemoteSelection::CheapestReplica ranks steal candidates with this).
    std::function<double(storage::ChunkId, storage::StoreId)> steal_cost;
  };

  JobPool(const storage::DataLayout& layout, SchedulerPolicy policy,
          ReplicaView view = {});

  /// Select and remove up to `want` jobs for a requester whose preferred
  /// store is `preferred`. Jobs from non-preferred stores are only returned
  /// when the preferred store is drained and stealing is enabled; when
  /// `reserve_remote` is set (a remote store's owner cluster is still
  /// active) the last `steal_reserve` jobs of every non-preferred store are
  /// withheld.
  std::vector<storage::ChunkId> take_batch(storage::StoreId preferred, std::uint32_t want,
                                           bool reserve_remote = false);

  /// N-store form: each store in `reserved_stores` (the preferred stores of
  /// the *other* still-registered clusters) keeps its last `steal_reserve`
  /// jobs off limits; unreserved non-preferred stores are fully stealable.
  std::vector<storage::ChunkId> take_batch(storage::StoreId preferred, std::uint32_t want,
                                           const std::vector<storage::StoreId>& reserved_stores);

  bool empty() const { return remaining_ == 0; }
  std::uint64_t remaining() const { return remaining_; }
  std::uint64_t remaining_on(storage::StoreId store) const;

  /// Readers-currently-assigned count for a file (visible for tests).
  std::uint32_t readers(storage::FileId file) const;

  const SchedulerPolicy& policy() const { return policy_; }

 private:
  struct FileState {
    std::deque<storage::ChunkId> chunks;  ///< unassigned, ascending index
    std::uint32_t readers = 0;            ///< batches handed out from this file
  };

  /// Pick the file to draw non-preferred ("stolen") jobs from, for a
  /// requester preferring `preferred`.
  storage::FileId pick_remote_file(const std::vector<storage::FileId>& candidates,
                                   storage::StoreId preferred);

  /// Take up to `want` chunks from one file (front = lowest index).
  void take_from_file(storage::FileId file, std::uint32_t want,
                      std::vector<storage::ChunkId>& out);

  const storage::DataLayout& layout_;
  SchedulerPolicy policy_;
  ReplicaView view_;
  std::vector<FileState> files_;
  std::uint64_t remaining_ = 0;
  Rng rng_;
};

}  // namespace cloudburst::middleware
