// Shared state of one distributed run: wiring (simulator, network, postman),
// configuration, and the recorder the actors write their accounting into.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/generalized_reduction.hpp"
#include "cache/chunk_cache.hpp"
#include "cache/prefetcher.hpp"
#include "chaos/chaos_plan.hpp"
#include "cluster/platform.hpp"
#include "directory/platform_directory.hpp"
#include "engine/memory_dataset.hpp"
#include "middleware/app_profile.hpp"
#include "middleware/messages.hpp"
#include "middleware/run_result.hpp"
#include "middleware/scheduler.hpp"
#include "net/messaging.hpp"
#include "qos/store_qos.hpp"
#include "replica/replica_set.hpp"
#include "storage/retry.hpp"
#include "trace/trace.hpp"

namespace cloudburst::middleware {

/// Arbitration of compute-node processing slots among concurrent jobs.
///
/// A workload runs several jobs' slave actors on the same physical nodes;
/// each node still has one core, so at most one job may be processing on it
/// at any instant. Before computing a chunk a slave acquires its node's
/// slot, and releases it at the chunk boundary — the arbiter's discipline
/// (FIFO, weighted fair share, strict priority) decides who gets the core
/// next. Standalone runs have no arbiter (RunContext::arbiter == nullptr)
/// and skip the handshake entirely, so single-job paths stay byte-identical.
class SlotArbiter {
 public:
  virtual ~SlotArbiter() = default;

  /// Claim `node`'s slot for `job`. Returns true if granted synchronously
  /// (the caller starts processing now); otherwise the claim queues and
  /// `grant` fires — synchronously, inside a later release() — when the job
  /// wins the core. At most one outstanding claim per (node, job).
  virtual bool acquire(net::EndpointId node, std::uint32_t job,
                       std::function<void()> grant) = 0;

  /// Return the slot after `used_seconds` of processing; the arbiter hands
  /// it to the next queued claim per its share discipline.
  virtual void release(net::EndpointId node, std::uint32_t job, double used_seconds) = 0;

  /// Withdraw any queued claim and/or held slot (the slave died mid-run).
  virtual void forget(net::EndpointId node, std::uint32_t job) = 0;
};

struct RunOptions {
  AppProfile profile;
  SchedulerPolicy policy;

  /// Seed for the run's scheduler randomness: copied into
  /// SchedulerPolicy::random_seed when the head's JobPool is built, so
  /// RemoteSelection::Random ablations vary with the configured run seed
  /// instead of a constant baked into the policy default.
  std::uint64_t random_seed = 42;

  /// Parallel retrieval streams per chunk fetch (the slave's "multiple
  /// retrieval threads"); only object stores honor > 1.
  unsigned retrieval_streams = 8;

  /// Jobs a slave may hold concurrently. 1 == strict fetch-then-process
  /// (matches the paper's stacked time decomposition); > 1 prefetches.
  unsigned pipeline_depth = 1;

  /// Client-side retry policy wrapped around every store fetch (slave
  /// fetches and prefetcher GETs; a no-op on the never-failing local-store
  /// read path). The default is disengaged — one bare attempt, no timeout,
  /// no hedge — which leaves fault-free runs byte-identical. Pair with a
  /// StoreSpec::fault profile to exercise it.
  storage::RetryPolicy retry;

  /// Baseline ablation: pre-assign every chunk round-robin at start instead
  /// of on-demand pooling ("the pooling based job distribution enables
  /// fairness in load balancing" — this is the alternative it beats).
  /// Chunks stay on their own side's cluster; no stealing can happen.
  bool static_assignment = false;

  /// Master refills its pool when it drops to this many jobs.
  std::uint32_t refill_watermark = 0;

  /// Optional *real* execution: when both are set, slaves actually run the
  /// task kernel over the dataset's unit ranges while the clock is simulated,
  /// and RunResult::robj carries the finalized global reduction object. The
  /// layout's unit counts must tile `dataset` exactly.
  const api::GRTask* task = nullptr;
  const engine::MemoryDataset* dataset = nullptr;

  /// Intra-cluster reduction topology. true: binomial tree over the slaves
  /// (fast, default). false: master-driven two-phase commit (JobDone
  /// tracking + RobjRequest) — required when failures are injected, since
  /// the master must know which work a dead slave's lost robj covered.
  bool reduction_tree = true;

  /// Simulated slave crash: the node goes silent at `at_seconds`; its master
  /// notices after `failure_detection_seconds` (heartbeat timeout) and
  /// re-executes every chunk the dead slave had been assigned since its last
  /// reduction-object checkpoint.
  struct FailureEvent {
    cluster::ClusterId side = cluster::kLocalSite;  ///< site of the failing node
    std::uint32_t node_index = 0;
    double at_seconds = 0.0;
  };
  std::vector<FailureEvent> failures;
  double failure_detection_seconds = 1.0;

  /// Periodic robj checkpointing (direct mode only; 0 = off): every interval
  /// the master pulls each live slave's delta robj, bounding the work a
  /// crash can lose to one interval instead of the whole run.
  double checkpoint_interval_seconds = 0.0;

  /// Unified node-lifecycle event: how a node leaves the run. `Crash` is the
  /// legacy FailureEvent (no notice, heartbeat detection, un-checkpointed
  /// work re-executed). `Drain` is an operator notice (maintenance): the
  /// slave stops claiming pool chunks, finishes what it holds, flushes a
  /// final delta-robj checkpoint, and vacates — zero completed work is lost.
  /// `SpotReclaim` is a drain with a hard deadline: `notice_seconds` after
  /// the notice the node is killed whether or not it vacated (EC2 spot
  /// semantics), and its billing stops at that instant.
  struct LifecycleEvent {
    enum class Kind : std::uint8_t { Crash, Drain, SpotReclaim };
    Kind kind = Kind::Crash;
    cluster::ClusterId site = cluster::kLocalSite;
    std::uint32_t node_index = 0;
    double at_seconds = 0.0;       ///< when the notice (or crash) fires
    double notice_seconds = 120.0; ///< SpotReclaim only: notice-to-kill window
  };
  std::vector<LifecycleEvent> lifecycle;

  /// Stochastic spot reclamation for cloud nodes: each cloud node draws one
  /// exponential reclaim time at `reclaim_rate_per_hour` (0 = off) from a
  /// deterministic per-node substream; a draw inside the run behaves like a
  /// scheduled SpotReclaim with `notice_seconds` of warning.
  struct SpotPolicy {
    double reclaim_rate_per_hour = 0.0;
    double notice_seconds = 120.0;
    /// Substream seed; 0 = derive from RunOptions::random_seed.
    std::uint64_t seed = 0;
  };
  SpotPolicy spot;

  /// Checkpointed migration: hold back the last `standby_nodes` cloud slaves
  /// as unbilled standbys; when a node is lost (crash, drain, reclaim) with
  /// work remaining, lease one as a replacement — it boots for
  /// `boot_seconds`, bills from the lease, and pulls the lost node's
  /// re-pooled chunks (the checkpointed robj state already lives at the
  /// master, so nothing else moves). Requires reduction_tree = false;
  /// mutually exclusive with elastic bursting (one controller owns the
  /// dormant pool).
  struct MigrationPolicy {
    std::uint32_t standby_nodes = 0;  ///< 0 = no migration
    double boot_seconds = 60.0;
  };
  MigrationPolicy migration;

  /// Elastic bursting (Elastic Site-style, from the paper's related work):
  /// start with `initial_cloud_nodes` cloud instances; a controller checks
  /// progress every `check_interval_seconds` and, when the projected
  /// completion misses `deadline_seconds`, boots `activation_step` more
  /// dormant instances (each taking `boot_seconds` to come up). Requires
  /// reduction_tree = false (dormant instances answer the commit with
  /// identity robjs) and initial_cloud_nodes >= 1.
  struct ElasticPolicy {
    bool enabled = false;
    double deadline_seconds = 0.0;
    std::uint32_t initial_cloud_nodes = 1;
    double check_interval_seconds = 5.0;
    double boot_seconds = 60.0;
    std::uint32_t activation_step = 1;
  };
  ElasticPolicy elastic;

  /// Optional event tracer (owned by the caller); records assignments,
  /// fetches, processing, robj movement, failures, activations.
  trace::Tracer* tracer = nullptr;

  /// Optional site-local chunk caches (owned by the caller so contents
  /// survive run_iterative's per-pass Platform rebuilds). nullptr (the
  /// default) keeps every fetch on the store path — paper-fidelity runs are
  /// byte-identical with no fleet attached.
  cache::CacheFleet* cache = nullptr;

  /// Optional chunk replication (owned by the caller, like the cache fleet,
  /// so replica state survives iterative passes and is shareable across a
  /// workload's jobs). When set, masters/slaves/prefetchers resolve chunk
  /// reads through the ReplicaSet's cheapest live replica, failed GETs mark
  /// copies lost, and a background repair actor re-replicates. nullptr (the
  /// default) keeps the single-owner read path — byte-identical paper runs.
  replica::ReplicaSet* replication = nullptr;

  /// Optional per-tenant store I/O QoS (owned by the caller, shareable
  /// across a workload's jobs). When set, every store fetch — slave,
  /// prefetcher, repair actor — is admitted through the store's
  /// weighted-fair arbiter under this run's tenant (repairs bill to the
  /// "system" tenant), and per-tenant cache shares apply when a fleet is
  /// also attached. nullptr (the default) gates nothing: paper runs stay
  /// byte-identical.
  qos::StoreQos* qos = nullptr;

  /// Tenant this run's store traffic bills to when `qos` is set. The
  /// workload manager overrides it with JobSpec::tenant per job.
  std::string tenant = "default";

  /// Optional runtime service directory (owned by the caller). When set, the
  /// job resolves platform membership through it at build time: only
  /// directory-Active nodes get slave actors, and a StoreRetired event marks
  /// the store's replicas lost so the repair actor re-replicates. nullptr
  /// (the default) trusts the static PlatformSpec — paper runs stay
  /// byte-identical.
  directory::PlatformDirectory* directory = nullptr;

  /// Elastic node pool lease plan (workload-manager internal). When enabled,
  /// the job's cloud-side membership is exactly these leased nodes: a lease
  /// still booting (ready_in_seconds > 0) starts processing once warm, and
  /// instance billing moves from the job to the pool's lease windows.
  /// Requires reduction_tree = false; mutually exclusive with per-job
  /// elastic / migration / failure machinery (the pool owns node lifetime).
  struct PoolLease {
    net::EndpointId node = 0;
    double ready_in_seconds = 0.0;  ///< 0 = warm now
  };
  struct PoolPlan {
    bool enabled = false;
    std::vector<PoolLease> leases;
  };
  PoolPlan pool_plan;

  /// Optional scripted chaos plan (owned by the caller; pure data, see
  /// chaos/chaos_plan.hpp). When set, JobExecution schedules every fault
  /// window against this run: WAN link faults and partitions act on the
  /// platform's inter-site links, store outages flip the store offline and
  /// abort its in-flight GETs, node events reuse the failure/drain/reclaim
  /// machinery, and a site outage composes all of it — links cut, store
  /// dark, slaves killed, master evacuated, its uncommitted grants re-issued
  /// to surviving clusters — with directory-driven recovery at window end.
  /// Requires reduction_tree = false. nullptr (the default) leaves every
  /// run byte-identical to the un-chaosed simulator.
  const chaos::ChaosPlan* chaos = nullptr;
};

/// Mutable per-run recorder; actors write, the runtime aggregates.
struct RunRecorder {
  std::vector<NodeTimes> nodes;  ///< one per slave, global index order
  /// Activation time of each billed cloud instance (0.0 for initial ones).
  /// Under a workload, times are relative to the job's own start.
  std::vector<double> cloud_instance_starts;
  /// Physical node behind each cloud_instance_starts entry (parallel
  /// vector); lets a workload bill a node shared by several jobs once.
  std::vector<net::EndpointId> cloud_instance_nodes;
  /// Billing end per entry (parallel; negative = end of run). Left empty
  /// until a lifecycle event ends a rental early, so default runs carry no
  /// extra state.
  std::vector<double> cloud_instance_ends;
  std::uint32_t elastic_activations = 0;
  /// Node-lifecycle accounting (drains, reclaims, checkpoints, migrations).
  LifecycleStats lifecycle;
  // Per-cluster accounting, indexed by ClusterId; sized by init().
  std::vector<std::uint32_t> jobs_local;
  std::vector<std::uint32_t> jobs_stolen;
  std::vector<std::uint64_t> bytes_local;
  std::vector<std::uint64_t> bytes_stolen;
  /// Bytes cluster c fetched from store s: bytes_from_store[c][s].
  std::vector<std::vector<std::uint64_t>> bytes_from_store;
  /// Bytes cluster c served from its site cache that bytes_from_store
  /// already charged to store s at assignment time (the cost model credits
  /// these back so only physically transferred bytes are billed as egress).
  std::vector<std::vector<std::uint64_t>> bytes_from_cache;
  // Cache / prefetch accounting, per cluster.
  std::vector<std::uint32_t> cache_hits;
  std::vector<std::uint32_t> cache_misses;
  std::vector<std::uint32_t> prefetch_issued;
  std::vector<std::uint32_t> prefetch_wasted;
  // Store QoS accounting, per cluster (throttled releases and the waits
  // they paid; zero unless RunOptions::qos is attached).
  std::vector<std::uint32_t> qos_throttled;
  std::vector<double> qos_wait_seconds;
  // Fault / retry accounting, per cluster.
  std::vector<std::uint32_t> store_faults;    ///< failed or timed-out attempts
  std::vector<std::uint32_t> fetch_retries;   ///< backoffs taken before re-attempts
  std::vector<std::uint32_t> hedges_issued;
  std::vector<std::uint32_t> hedges_won;
  /// Wire bytes cluster c moved from store s that were NOT the delivered
  /// copy (failed partial GETs, hedge losers, post-timeout arrivals). They
  /// crossed the WAN, so the cost model bills them as egress on top of
  /// bytes_from_store.
  std::vector<std::vector<std::uint64_t>> bytes_retried;
  /// Store fetch requests this run issued against store s from cluster c,
  /// counted at the retry layer: store_fetch_requests[c][s]. Equals the
  /// store's own stats().requests for a solo run; under a multi-job
  /// workload it is the per-job share the tenant cost attribution needs
  /// (the store's global counter aggregates every job).
  std::vector<std::vector<std::uint64_t>> store_fetch_requests;
  /// Replication accounting (extra_replica_bytes stays empty here; the
  /// runtime snapshots it from the ReplicaSet at collect time).
  ReplicaStats replica;
  double end_time = 0.0;
  bool finished = false;

  /// Size the per-cluster / per-store vectors for a platform.
  void init(std::size_t clusters, std::size_t stores) {
    jobs_local.assign(clusters, 0);
    jobs_stolen.assign(clusters, 0);
    bytes_local.assign(clusters, 0);
    bytes_stolen.assign(clusters, 0);
    bytes_from_store.assign(clusters, std::vector<std::uint64_t>(stores, 0));
    bytes_from_cache.assign(clusters, std::vector<std::uint64_t>(stores, 0));
    cache_hits.assign(clusters, 0);
    cache_misses.assign(clusters, 0);
    prefetch_issued.assign(clusters, 0);
    prefetch_wasted.assign(clusters, 0);
    qos_throttled.assign(clusters, 0);
    qos_wait_seconds.assign(clusters, 0.0);
    store_faults.assign(clusters, 0);
    fetch_retries.assign(clusters, 0);
    hedges_issued.assign(clusters, 0);
    hedges_won.assign(clusters, 0);
    bytes_retried.assign(clusters, std::vector<std::uint64_t>(stores, 0));
    store_fetch_requests.assign(clusters, std::vector<std::uint64_t>(stores, 0));
  }

  /// Stop billing `node`'s open rental at `at_seconds` (job-relative). Lazily
  /// sizes cloud_instance_ends; a node rented more than once (standby
  /// re-lease) closes its most recent open rental. No-op for nodes that were
  /// never billed (e.g. a drained local node).
  void end_cloud_billing(net::EndpointId node, double at_seconds) {
    if (cloud_instance_ends.size() < cloud_instance_nodes.size()) {
      cloud_instance_ends.resize(cloud_instance_nodes.size(), -1.0);
    }
    for (std::size_t i = cloud_instance_nodes.size(); i-- > 0;) {
      if (cloud_instance_nodes[i] == node && cloud_instance_ends[i] < 0.0) {
        cloud_instance_ends[i] = at_seconds;
        return;
      }
    }
  }
};

struct RunContext {
  cluster::Platform& platform;
  const storage::DataLayout& layout;
  const RunOptions& options;
  net::Postman<Message>& postman;
  RunRecorder recorder;

  /// Global unit offset of each chunk (prefix sums over chunk ids); only
  /// populated for real-execution runs.
  std::vector<std::uint64_t> chunk_unit_offset;

  /// Per-site prefetchers, indexed by ClusterId; empty (or null entries)
  /// unless the attached cache fleet enables prefetching.
  std::vector<std::unique_ptr<cache::Prefetcher>> prefetchers;

  /// Identity of this run within a workload (0 for standalone runs);
  /// stamped on every control message so shared endpoints can demultiplex.
  std::uint32_t job_id = 0;

  /// Prefix for trace actor names (e.g. "j3/"); empty for standalone runs
  /// so paper traces stay byte-identical. Gives each job its own Gantt
  /// lanes when several jobs share a tracer.
  std::string trace_tag;

  /// Core-slot arbiter for workload runs; null for standalone runs (no
  /// acquire/release handshake at all).
  SlotArbiter* arbiter = nullptr;

  /// Fired once when the head completes the run's global reduction — the
  /// workload manager's job-completion signal.
  std::function<void()> on_finished;

  /// Sim time this job's start() ran (0.0 for standalone runs); lifecycle
  /// billing ends are recorded relative to it.
  double job_start_seconds = 0.0;

  /// Tenant id this run bills store traffic to (resolved from
  /// RunOptions::tenant by JobExecution when a StoreQos is attached;
  /// meaningless otherwise).
  qos::TenantId qos_tenant = qos::kSystemTenant;

  /// Cache-ownership tag for this run's insertions: the tenant id under QoS,
  /// shared residency otherwise.
  std::uint32_t cache_owner() const {
    return options.qos ? qos_tenant : cache::ChunkCache::kSharedOwner;
  }

  /// Admit a store access through the QoS arbiter (when attached) before
  /// running `launch`. Released synchronously when no QoS is attached, the
  /// store is a pass-through, or its arbiter is idle; a throttled release
  /// books the wait into the recorder and traces QosThrottled under `actor`.
  void qos_gate(cluster::ClusterId site, storage::StoreId store, std::uint64_t bytes,
                const std::string& actor, storage::ChunkId chunk,
                qos::TenantId tenant, std::function<void()> launch) {
    if (!options.qos) {
      launch();
      return;
    }
    options.qos->submit(store, tenant, bytes,
                        [this, site, store, actor, chunk,
                         launch = std::move(launch)](double waited_seconds) {
                          if (waited_seconds > 0.0) {
                            ++recorder.qos_throttled[site];
                            recorder.qos_wait_seconds[site] += waited_seconds;
                            trace(trace::EventKind::QosThrottled, actor, chunk, store);
                          }
                          launch();
                        });
  }

  /// Fired by a master when a node is lost (crashed, reclaimed, or vacated)
  /// while the cluster still has work. Returns true if a replacement node
  /// was leased — the master then re-pools the lost chunks so the booting
  /// replacement (and idle survivors) pull them, instead of push-assigning
  /// everything to survivors immediately. Null when migration is off.
  std::function<bool(cluster::ClusterId)> on_node_lost;

  /// Fired by a slave the moment it vacates (drain settled, final delta-robj
  /// shipped). The workload manager uses it to settle cross-job drains:
  /// once every job sharing the node has vacated it, the node retires from
  /// the directory and leaves the pool. Null outside managed workloads.
  std::function<void(net::EndpointId)> on_node_vacated;

  /// Should reads from `store` go through site `site`'s cache? Object-kind
  /// stores always qualify (they pay request latency and GET pricing even
  /// from their own site); any store other than the site's affinity store
  /// qualifies (WAN path); the site's own disk only if cache_local_reads.
  bool store_cacheable(cluster::ClusterId site, storage::StoreId store) const {
    if (!options.cache) return false;
    const cluster::ClusterId owner = platform.owner_of_store(store);
    const auto& store_spec = platform.spec().sites.at(owner).store;
    if (store_spec && store_spec->kind == cluster::StoreSpec::Kind::Object) return true;
    if (store != platform.store_of_cluster(site)) return true;
    return options.cache->config().cache_local_reads;
  }

  /// Site `site`'s cache, iff a fleet is attached and `store` is cacheable.
  cache::ChunkCache* site_cache(cluster::ClusterId site, storage::StoreId store) {
    if (!store_cacheable(site, store)) return nullptr;
    return &options.cache->site(site);
  }

  cache::Prefetcher* prefetcher(cluster::ClusterId site) {
    return site < prefetchers.size() ? prefetchers[site].get() : nullptr;
  }

  des::Simulator& sim() { return platform.sim(); }
  double now_seconds() const { return des::to_seconds(platform.sim().now()); }

  /// Store a reader at `site` should fetch `chunk` from: the layout primary,
  /// or — with replication attached — the cheapest live replica right now.
  storage::StoreId resolve_store(cluster::ClusterId site, storage::ChunkId chunk) const {
    if (!options.replication) return layout.store_of(chunk);
    return options.replication->resolve(chunk, site, now_seconds());
  }

  void trace(trace::EventKind kind, const std::string& actor, std::uint64_t a = 0,
             std::uint64_t b = 0) {
    if (!options.tracer) return;
    options.tracer->record(now_seconds(), kind,
                           trace_tag.empty() ? actor : trace_tag + actor, a, b);
  }

  /// All control-plane sends go through here so every message carries the
  /// run's job id; shared endpoints demultiplex on it.
  void send(net::EndpointId src, net::EndpointId dst, std::uint64_t bytes, Message msg) {
    msg.job = job_id;
    postman.send(src, dst, bytes, std::move(msg));
  }

  /// Standard retry observer wiring for one fetch: fault/retry/hedge
  /// counters and wasted-byte egress accounting into the recorder, trace
  /// events under `actor`. Shared by the slave fetch paths and the
  /// prefetcher's GETs.
  storage::RetryHooks retry_hooks(cluster::ClusterId site, std::string actor,
                                  storage::ChunkId chunk, storage::StoreId store) {
    storage::RetryHooks h;
    h.on_attempt = [this, site, store](unsigned) {
      ++recorder.store_fetch_requests[site][store];
    };
    h.on_fault = [this, site, actor, chunk](unsigned attempt, const storage::FetchResult&) {
      ++recorder.store_faults[site];
      trace(trace::EventKind::StoreFault, actor, chunk, attempt);
    };
    h.on_backoff = [this, site, actor, chunk](unsigned next_attempt, double) {
      ++recorder.fetch_retries[site];
      trace(trace::EventKind::RetryBackoff, actor, chunk, next_attempt);
    };
    h.on_hedge = [this, site, actor, chunk](unsigned attempt) {
      ++recorder.hedges_issued[site];
      trace(trace::EventKind::HedgeIssued, actor, chunk, attempt);
    };
    h.on_hedge_win = [this, site, actor, chunk](unsigned attempt) {
      ++recorder.hedges_won[site];
      trace(trace::EventKind::HedgeWon, actor, chunk, attempt);
    };
    h.on_wasted = [this, site, store](std::uint64_t bytes) {
      recorder.bytes_retried[site][store] += bytes;
    };
    return h;
  }
};

}  // namespace cloudburst::middleware
