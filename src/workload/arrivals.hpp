// Deterministic arrival-trace generation.
//
// A workload's arrival process is part of the experiment, so it must be as
// reproducible as the simulation itself: every generator draws from a seeded
// Rng substream and depends on nothing but its arguments. Three shapes cover
// the usual studies — Poisson (open-loop steady state), bursty (synchronized
// bursts with quiet gaps, the fair-share stress case), and replayed traces
// (explicit timestamps, e.g. sampled from a production log).
#pragma once

#include <cstdint>
#include <vector>

namespace cloudburst::workload {

struct ArrivalTrace {
  std::vector<double> times;  ///< non-decreasing submission times, seconds

  std::size_t size() const { return times.size(); }
  double at(std::size_t i) const { return times.at(i); }

  /// `count` arrivals with exponential inter-arrival gaps at `rate_per_second`
  /// (a Poisson process), starting at t = 0 gap-first.
  static ArrivalTrace poisson(std::size_t count, double rate_per_second,
                              std::uint64_t seed);

  /// `bursts` bursts of `jobs_per_burst` arrivals each: bursts start
  /// `burst_gap_seconds` apart, jobs within a burst `intra_gap_seconds`
  /// apart. The head-of-line-blocking stress case for FIFO.
  static ArrivalTrace bursty(std::size_t bursts, std::size_t jobs_per_burst,
                             double burst_gap_seconds, double intra_gap_seconds);

  /// Explicit timestamps (sorted defensively).
  static ArrivalTrace replay(std::vector<double> times);
};

}  // namespace cloudburst::workload
