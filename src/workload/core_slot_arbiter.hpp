// Per-node core-slot arbitration between concurrent jobs.
//
// Every job in a workload instantiates a slave actor on every compute node,
// but the node still has one core's worth of processing: before computing a
// chunk, a slave claims its node's slot through this arbiter and returns it
// at the chunk boundary (middleware::SlotArbiter protocol). The discipline
// decides who gets a contended slot next:
//  * Fifo         — claims served in arrival order;
//  * WeightedFair — the claimant whose tenant has the least weighted service
//                   (processing seconds / tenant weight) wins, start-time
//                   fair-queueing style: a tenant joining mid-run starts at
//                   the minimum active service level, not at zero;
//  * Priority     — the highest-priority claimant wins; a job that lost the
//                   slot it held last is reported preempted.
// All choices tie-break on claim sequence number, so arbitration is as
// deterministic as the simulator feeding it.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "middleware/run_context.hpp"

namespace cloudburst::workload {

class CoreSlotArbiter : public middleware::SlotArbiter {
 public:
  enum class Discipline : std::uint8_t { Fifo, WeightedFair, Priority };

  struct JobShare {
    std::string tenant = "default";
    double weight = 1.0;  ///< tenant weight (WeightedFair)
    int priority = 0;     ///< higher wins (Priority)
  };

  explicit CoreSlotArbiter(Discipline discipline) : discipline_(discipline) {}

  /// Declare a job before its slaves start claiming. A WeightedFair tenant
  /// seen for the first time enters at the minimum service level among
  /// tenants already registered, so newcomers share from "now" instead of
  /// replaying the whole past.
  void register_job(std::uint32_t job, JobShare share);

  /// Observer for Priority preemptions: (node, preempted job, winning job).
  void on_preemption(std::function<void(net::EndpointId, std::uint32_t, std::uint32_t)> cb) {
    on_preemption_ = std::move(cb);
  }

  bool acquire(net::EndpointId node, std::uint32_t job,
               std::function<void()> grant) override;
  void release(net::EndpointId node, std::uint32_t job, double used_seconds) override;
  void forget(net::EndpointId node, std::uint32_t job) override;

  /// Accumulated weighted service (processing seconds / weight) per tenant.
  double tenant_service(const std::string& tenant) const;
  /// Raw processing seconds a tenant consumed across all nodes.
  double tenant_seconds(const std::string& tenant) const;

 private:
  struct Claim {
    std::uint32_t job = 0;
    std::uint64_t seq = 0;
    std::function<void()> grant;
  };
  struct Slot {
    bool busy = false;
    std::uint32_t holder = 0;
    bool has_last_holder = false;
    std::uint32_t last_holder = 0;  ///< who ran here before the current grant
    std::vector<Claim> waiting;     ///< claim arrival order
  };
  struct Tenant {
    double weight = 1.0;
    double service = 0.0;  ///< weighted: seconds / weight
    double seconds = 0.0;
  };

  /// Index into `waiting` of the claim the discipline picks next.
  std::size_t pick(const Slot& slot) const;
  void hand_over(net::EndpointId node, Slot& slot);

  Discipline discipline_;
  std::map<net::EndpointId, Slot> slots_;
  std::map<std::uint32_t, JobShare> shares_;
  std::map<std::string, Tenant> tenants_;
  std::uint64_t next_seq_ = 0;
  std::function<void(net::EndpointId, std::uint32_t, std::uint32_t)> on_preemption_;
};

}  // namespace cloudburst::workload
