// Elastic node pool: workload-manager-owned leasing of cloud nodes.
//
// Per-job elastic controllers thrash boot windows: every job that bursts
// pays its own boot delay and its own billed hour, even when the node it
// wants was warm a second ago under another job. The pool inverts the
// ownership — the WorkloadManager provisions cloud nodes once, keeps them
// warm across jobs, and *leases* them: a job arriving while the node is
// warm starts immediately; only the first lease after a cold period pays
// the boot window. Billing moves with the ownership: the pool's
// provisioning windows (cold boot -> idle reap / retirement) are the
// platform's instance bill, and each job's lease-seconds are the raw usage
// its attributed share is derived from.
//
// Node lifecycle inside the pool:
//
//   Cold --lease--> Provisioned (booting for boot_seconds, then warm)
//     ^                 |  holders ref-counted; last release starts the
//     '----idle reap----'  idle clock (idle_reap_seconds; 0 = keep warm)
//   Blocked: drain in progress — no new leases (existing ones finish).
//   Retired: left the directory; re-registration resets it to Cold.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "des/simulator.hpp"
#include "net/network.hpp"
#include "trace/trace.hpp"

namespace cloudburst::workload {

/// WorkloadOptions::pool — the manager builds a NodePool when enabled.
struct PoolOptions {
  bool enabled = false;
  /// Cold-lease boot window: a job leasing a Cold node waits this long
  /// before the node processes (billing starts at the lease).
  double boot_seconds = 60.0;
  /// A node idle (zero leases) this long returns to Cold and stops billing.
  /// 0 keeps warm nodes provisioned until the workload ends.
  double idle_reap_seconds = 0.0;
};

class NodePool {
 public:
  struct Lease {
    net::EndpointId node = 0;
    std::string name;
    double ready_in_seconds = 0.0;  ///< 0 = warm now
    bool cold = false;              ///< this lease opened the billing window
  };

  /// One billed provisioning window of one node (absolute sim seconds;
  /// end < 0 = still open).
  struct Window {
    net::EndpointId node = 0;
    double start = 0.0;
    double end = -1.0;
  };

  struct Stats {
    std::uint32_t cold_boots = 0;   ///< leases that opened a billing window
    std::uint32_t warm_leases = 0;  ///< leases served by a provisioned node
    std::uint32_t reaps = 0;        ///< idle nodes returned to Cold
    /// Boot-window wait summed over every lease (a warm lease adds 0; a
    /// lease joining mid-boot adds the residual).
    double boot_wait_seconds = 0.0;
  };

  NodePool(des::Simulator& sim, PoolOptions options, trace::Tracer* tracer);

  /// Add a cloud node to the pool (Cold). Re-adding a Retired node resets
  /// it to Cold (directory re-registration); re-adding a live one is a no-op.
  void add_node(net::EndpointId endpoint, std::string name);

  /// Lease up to `want` leasable nodes (0 = all) to `job`, in pool order.
  /// Cold nodes open a billing window and boot; nodes mid-boot or warm are
  /// shared at their current readiness. Blocked/Retired nodes are skipped.
  std::vector<Lease> lease(std::uint32_t job, const std::string& tenant,
                           std::size_t want, double now);

  /// Job no longer holds `endpoint` (its slave vacated). No-op without a
  /// matching lease. The last holder starts the idle-reap clock.
  void release_node(std::uint32_t job, net::EndpointId endpoint, double now);
  /// Release every lease `job` still holds (job finished).
  void release_job(std::uint32_t job, double now);

  /// Drain in progress: stop granting leases on `endpoint`.
  void block_node(net::EndpointId endpoint);
  /// Node left the directory: close its billing window at `now`.
  void retire_node(net::EndpointId endpoint, double now);

  /// Billing windows of every node, open ones closed at `fallback_end`.
  std::vector<Window> windows(double fallback_end) const;

  const Stats& stats() const { return stats_; }
  /// Lease-seconds `job` accumulated over released leases.
  double job_lease_seconds(std::uint32_t job) const;
  /// Lease-seconds accumulated by `tenant`'s jobs.
  double tenant_lease_seconds(const std::string& tenant) const;
  std::size_t size() const { return nodes_.size(); }
  /// Nodes a lease() call right now could return.
  std::size_t leasable() const;

 private:
  enum class State : std::uint8_t { Cold, Provisioned, Blocked, Retired };

  struct Node {
    net::EndpointId endpoint = 0;
    std::string name;
    State state = State::Cold;
    std::uint32_t holders = 0;
    double warm_at = 0.0;        ///< boot completes (Provisioned)
    std::uint64_t reap_epoch = 0;  ///< invalidates stale scheduled reaps
    std::vector<Window> windows;
  };

  struct Held {
    std::size_t node = 0;   ///< index into nodes_
    double since = 0.0;
  };

  Node* find(net::EndpointId endpoint);
  void trace(trace::EventKind kind, const Node& node, std::uint64_t a,
             std::uint64_t b);
  void settle_release(std::uint32_t job, Node& node, double since, double now);

  des::Simulator& sim_;
  PoolOptions options_;
  trace::Tracer* tracer_;
  std::vector<Node> nodes_;  ///< add order == lease preference order
  /// job -> (node index -> lease grant time); tenant kept per job.
  std::map<std::uint32_t, std::vector<Held>> held_;
  std::map<std::uint32_t, std::string> job_tenant_;
  std::map<std::uint32_t, double> job_seconds_;
  std::map<std::string, double> tenant_seconds_;
  Stats stats_;
};

}  // namespace cloudburst::workload
