// Multi-tenant workload types.
//
// The paper's middleware executes one Generalized-Reduction job per
// platform; a production deployment serves a *stream* of them — many
// tenants' jobs contending for the same clusters, stores, caches, and WAN
// links at once. This module defines the vocabulary: a JobSpec (what to
// run, for whom, how urgent), the inter-job scheduling policies layered
// above the per-job JobPool, and the per-job / per-tenant / whole-workload
// result records the manager aggregates.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cost/cost_model.hpp"
#include "middleware/run_context.hpp"
#include "middleware/run_result.hpp"
#include "storage/data_layout.hpp"
#include "workload/node_pool.hpp"

namespace cloudburst::workload {

/// Inter-job scheduling discipline — the layer *above* each job's JobPool.
enum class SchedulingPolicy : std::uint8_t {
  /// Run-to-completion in submission order. One job owns the platform at a
  /// time; a single-job FIFO workload is byte-identical to run_distributed.
  Fifo,
  /// Run-to-completion, shortest estimated job first (cost::planner's
  /// analytic estimate). Also one job at a time.
  Sjf,
  /// All admitted jobs run concurrently; each node's core is time-shared at
  /// chunk granularity so every tenant's weighted service stays balanced.
  FairShare,
  /// All admitted jobs run concurrently; each core slot always goes to the
  /// highest-priority claimant. A job that loses the slot it just held to a
  /// more urgent job counts (and traces) a preemption.
  Priority,
};

const char* to_string(SchedulingPolicy policy);

/// One job in the workload: what to run, over which data, for which tenant.
struct JobSpec {
  std::string name;              ///< trace/report label; defaults to "job<id>"
  std::string tenant = "default";
  int priority = 0;              ///< SchedulingPolicy::Priority: higher wins
  /// Latency SLO relative to submission (0 = none); latency above it marks
  /// the job slo_met = false in its result.
  double deadline_seconds = 0.0;

  /// The job's own dataset layout (held by value — specs outlive the run).
  storage::DataLayout layout;
  /// Per-job run configuration. Caller-owned pointers inside (task, dataset,
  /// cache, tracer) must outlive the workload run; the manager overrides
  /// `tracer` with the workload tracer when one is attached.
  middleware::RunOptions options;

  /// Elastic node pool only: cloud nodes this job leases at start (0 = every
  /// leasable node). Ignored when WorkloadOptions::pool is disabled.
  std::size_t pool_nodes = 0;
};

/// Per-tenant admission quotas, enforced at submission time. 0 = unlimited
/// for each field. A submission that would exceed any limit is rejected (not
/// queued): its JobResult carries rejected = true and the reject reason.
struct TenantQuota {
  /// Max jobs a tenant may have admitted-but-unfinished at once.
  std::uint32_t max_concurrent_jobs = 0;
  /// Max summed dataset bytes across the tenant's in-flight jobs.
  std::uint64_t max_bytes_in_flight = 0;
  /// Max estimated cloud burn rate (USD/hour) across in-flight jobs: each
  /// job's share is its cloud-node count times the instance-hour price.
  double max_usd_per_hour = 0.0;
};

/// Why a submission was rejected (JobResult::reject_reason, and the `b`
/// payload of the JobRejected trace event).
enum class QuotaReject : std::uint8_t {
  None = 0,
  ConcurrentJobs = 1,
  BytesInFlight = 2,
  UsdPerHour = 3,
};

const char* to_string(QuotaReject reason);

struct WorkloadOptions {
  SchedulingPolicy policy = SchedulingPolicy::Fifo;

  /// FairShare: relative service weight per tenant (default 1.0). A tenant
  /// with weight 2 gets twice the core time of a weight-1 tenant while both
  /// have runnable jobs.
  std::map<std::string, double> tenant_weights;

  /// Concurrent-job cap for FairShare/Priority (0 = unlimited). Excess jobs
  /// queue and start as earlier ones finish.
  std::uint32_t max_concurrent = 0;

  /// Workload-level tracer: job lifecycle events, plus every job's actor
  /// events under a "name/" prefix (per-job Gantt lanes). Overrides each
  /// job's own RunOptions::tracer.
  trace::Tracer* tracer = nullptr;

  cost::CloudPricing pricing = cost::CloudPricing::aws_2011();

  /// Dynamic control plane: the service directory jobs resolve membership
  /// through (caller-owned, must outlive the manager). Cloud nodes that
  /// register mid-run join the pool; NodeDraining events trigger a cross-job
  /// drain that vacates every affected job before the node retires.
  directory::PlatformDirectory* directory = nullptr;

  /// Elastic node pool (requires `directory`): the manager leases cloud
  /// nodes to jobs instead of each job activating its own instances. Pooled
  /// jobs must not combine with per-job elastic/migration/lifecycle/failure
  /// options (validate_run enforces this) and need reduction_tree = false.
  PoolOptions pool;

  /// Admission quotas keyed by tenant (tenants without an entry are
  /// unlimited).
  std::map<std::string, TenantQuota> quotas;
};

/// One finished job, with the timing the tenant experienced.
struct JobResult {
  std::uint32_t id = 0;  ///< 1-based submission id (Message::job value)
  std::string name;
  std::string tenant;
  int priority = 0;
  double deadline_seconds = 0.0;

  double submit_seconds = 0.0;
  double start_seconds = 0.0;
  double finish_seconds = 0.0;
  std::uint32_t preemptions = 0;

  /// Rejected at submission by an admission quota: never queued or run (run
  /// and cost reports stay zero; start = finish = submit; excluded from the
  /// latency percentiles and SLO rate).
  bool rejected = false;
  QuotaReject reject_reason = QuotaReject::None;

  middleware::RunResult run;  ///< this job's own timing decomposition
  /// What the job would cost billed alone (its own usage at list prices).
  cost::CostReport raw_cost;
  /// The job's share of the whole-platform bill. Attributed shares sum
  /// exactly to WorkloadResult::platform_cost, component by component.
  cost::CostReport attributed_cost;

  double queue_seconds() const { return start_seconds - submit_seconds; }
  double latency_seconds() const { return finish_seconds - submit_seconds; }
  bool slo_met() const {
    return deadline_seconds <= 0.0 || latency_seconds() <= deadline_seconds;
  }
};

/// Per-tenant rollup across the workload.
struct TenantReport {
  std::string tenant;
  double weight = 1.0;
  std::uint32_t jobs = 0;
  std::uint32_t slo_met = 0;
  std::uint32_t rejected = 0;    ///< submissions an admission quota refused
  double service_seconds = 0.0;  ///< core-seconds of processing consumed
  double lease_seconds = 0.0;    ///< node-pool lease time held by this tenant
  cost::CostReport attributed_cost;
  /// Store-QoS view of this tenant (zeros/inactive when no StoreQos was
  /// attached to the jobs' RunOptions): wait time, achieved bandwidth, and
  /// per-tenant cache hit/miss counts.
  qos::TenantQosReport qos;
};

struct WorkloadResult {
  std::vector<JobResult> jobs;      ///< submission order
  std::vector<TenantReport> tenants;  ///< sorted by tenant name

  /// The whole platform billed once: shared cloud nodes appear once even
  /// when several jobs' controllers activated them.
  cost::CostReport platform_cost;

  double makespan = 0.0;  ///< last job finish (workload starts at t = 0)
  double p50_latency_seconds = 0.0;
  double p95_latency_seconds = 0.0;
  double slo_hit_rate = 1.0;  ///< fraction of admitted jobs meeting their deadline
  std::uint32_t preemptions = 0;
  std::uint32_t elastic_activations = 0;  ///< summed over all jobs

  /// Admission control: submissions refused by a tenant quota.
  std::uint32_t rejected_jobs = 0;
  /// Elastic node pool (zeros when WorkloadOptions::pool is disabled).
  NodePool::Stats pool;

  const JobResult& job(std::uint32_t id) const { return jobs.at(id - 1); }
  const TenantReport* tenant(const std::string& name) const {
    for (const auto& t : tenants) {
      if (t.tenant == name) return &t;
    }
    return nullptr;
  }
};

}  // namespace cloudburst::workload
