#include "workload/trace_file.hpp"

#include <cctype>
#include <cstddef>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace cloudburst::workload {
namespace {

[[noreturn]] void fail(const std::string& path, std::size_t line,
                       const std::string& reason) {
  throw std::runtime_error(path + ":" + std::to_string(line) + ": " + reason);
}

std::string trim(const std::string& s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) --end;
  return s.substr(begin, end - begin);
}

std::vector<std::string> split_fields(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream in(line);
  while (std::getline(in, field, ',')) fields.push_back(trim(field));
  if (!line.empty() && line.back() == ',') fields.push_back("");
  return fields;
}

bool parse_double(const std::string& s, double& out) {
  if (s.empty()) return false;
  std::size_t consumed = 0;
  try {
    out = std::stod(s, &consumed);
  } catch (const std::exception&) {
    return false;
  }
  return consumed == s.size();
}

bool parse_u64(const std::string& s, std::uint64_t& out) {
  if (s.empty() || s[0] == '-') return false;
  std::size_t consumed = 0;
  try {
    out = std::stoull(s, &consumed);
  } catch (const std::exception&) {
    return false;
  }
  return consumed == s.size();
}

}  // namespace

std::vector<TraceRecord> load_arrival_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail(path, 0, "cannot open arrival trace file");

  std::vector<TraceRecord> records;
  std::string line;
  std::size_t lineno = 0;
  bool saw_data = false;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string trimmed = trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;

    std::vector<std::string> fields = split_fields(trimmed);
    if (fields.size() != 3) {
      fail(path, lineno,
           "expected 3 columns (submit_seconds,tenant,job_bytes), got " +
               std::to_string(fields.size()));
    }

    double submit = 0.0;
    if (!parse_double(fields[0], submit)) {
      // A non-numeric first field on the first data row is a header.
      if (!saw_data) {
        saw_data = true;  // only one header allowed
        continue;
      }
      fail(path, lineno, "submit_seconds is not a number: '" + fields[0] + "'");
    }
    saw_data = true;
    if (submit < 0.0) {
      fail(path, lineno, "submit_seconds must be non-negative");
    }
    if (fields[1].empty()) fail(path, lineno, "tenant must not be empty");
    std::uint64_t bytes = 0;
    if (!parse_u64(fields[2], bytes)) {
      fail(path, lineno, "job_bytes is not an unsigned integer: '" + fields[2] + "'");
    }
    if (bytes == 0) fail(path, lineno, "job_bytes must be positive");

    records.push_back(TraceRecord{submit, fields[1], bytes});
  }
  return records;
}

ArrivalTrace to_arrival_trace(const std::vector<TraceRecord>& records) {
  std::vector<double> times;
  times.reserve(records.size());
  for (const auto& r : records) times.push_back(r.submit_seconds);
  return ArrivalTrace::replay(std::move(times));
}

}  // namespace cloudburst::workload
