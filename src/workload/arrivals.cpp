#include "workload/arrivals.hpp"

#include <algorithm>

#include "common/rng.hpp"

namespace cloudburst::workload {

ArrivalTrace ArrivalTrace::poisson(std::size_t count, double rate_per_second,
                                   std::uint64_t seed) {
  ArrivalTrace trace;
  if (rate_per_second <= 0.0) {
    trace.times.assign(count, 0.0);
    return trace;
  }
  Rng rng = Rng::substream(seed, 0xa221e5);
  double t = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    t += rng.exponential(rate_per_second);
    trace.times.push_back(t);
  }
  return trace;
}

ArrivalTrace ArrivalTrace::bursty(std::size_t bursts, std::size_t jobs_per_burst,
                                  double burst_gap_seconds, double intra_gap_seconds) {
  ArrivalTrace trace;
  for (std::size_t b = 0; b < bursts; ++b) {
    const double base = static_cast<double>(b) * burst_gap_seconds;
    for (std::size_t j = 0; j < jobs_per_burst; ++j) {
      trace.times.push_back(base + static_cast<double>(j) * intra_gap_seconds);
    }
  }
  return trace;
}

ArrivalTrace ArrivalTrace::replay(std::vector<double> times) {
  std::sort(times.begin(), times.end());
  ArrivalTrace trace;
  trace.times = std::move(times);
  return trace;
}

}  // namespace cloudburst::workload
