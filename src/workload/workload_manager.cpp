#include "workload/workload_manager.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "cost/planner.hpp"

namespace cloudburst::workload {

const char* to_string(SchedulingPolicy policy) {
  switch (policy) {
    case SchedulingPolicy::Fifo: return "fifo";
    case SchedulingPolicy::Sjf: return "sjf";
    case SchedulingPolicy::FairShare: return "fair";
    case SchedulingPolicy::Priority: return "priority";
  }
  return "?";
}

namespace {

/// Split `total` across entries proportional to `raw`, exactly: every entry
/// gets total * raw/sum except the largest raw entry, which takes the
/// residual — so the shares sum to `total` to the last bit. With no usage
/// anywhere the largest (first) entry absorbs everything (normally zero).
std::vector<double> split_exact(double total, const std::vector<double>& raw) {
  std::vector<double> out(raw.size(), 0.0);
  if (raw.empty()) return out;
  std::size_t largest = 0;
  double sum = 0.0;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    sum += raw[i];
    if (raw[i] > raw[largest]) largest = i;
  }
  if (sum <= 0.0) {
    out[largest] = total;
    return out;
  }
  double accounted = 0.0;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    if (i == largest) continue;
    out[i] = total * (raw[i] / sum);
    accounted += out[i];
  }
  out[largest] = total - accounted;
  return out;
}

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  // Nearest-rank on the already-sorted sample.
  const auto n = static_cast<double>(sorted.size());
  auto rank = static_cast<std::size_t>(std::ceil(p * n));
  if (rank == 0) rank = 1;
  return sorted[std::min(rank, sorted.size()) - 1];
}

}  // namespace

WorkloadManager::WorkloadManager(cluster::Platform& platform, WorkloadOptions options)
    : platform_(platform), options_(std::move(options)),
      postman_(platform.network()) {
  if (concurrent_policy()) {
    arbiter_ = std::make_unique<CoreSlotArbiter>(
        options_.policy == SchedulingPolicy::FairShare
            ? CoreSlotArbiter::Discipline::WeightedFair
            : CoreSlotArbiter::Discipline::Priority);
    arbiter_->on_preemption([this](net::EndpointId, std::uint32_t loser,
                                   std::uint32_t winner) {
      Job& job = *jobs_.at(loser - 1);
      ++job.preemptions;
      record(trace::EventKind::JobPreempted, job, winner);
    });
  }
}

std::uint32_t WorkloadManager::submit(JobSpec spec, double at_seconds) {
  if (running_) {
    throw std::logic_error("WorkloadManager: submit after run() started");
  }
  if (at_seconds < 0.0) {
    throw std::invalid_argument("WorkloadManager: negative submission time");
  }
  middleware::validate_run(platform_, spec.layout, spec.options);

  auto job = std::make_unique<Job>();
  job->id = static_cast<std::uint32_t>(jobs_.size()) + 1;
  if (spec.name.empty()) spec.name = "job" + std::to_string(job->id);
  job->submit_seconds = at_seconds;
  job->effective = spec.options;
  job->effective.tenant = spec.tenant;
  if (options_.tracer) job->effective.tracer = options_.tracer;
  job->spec = std::move(spec);
  job->estimate_seconds =
      cost::estimate_exec_seconds(platform_, job->spec.layout, job->spec.options);

  Job* raw = job.get();
  jobs_.push_back(std::move(job));
  platform_.sim().schedule(des::from_seconds(at_seconds),
                           [this, raw] { on_submitted(*raw); });
  return raw->id;
}

void WorkloadManager::submit_all(std::vector<JobSpec> specs, const ArrivalTrace& trace) {
  if (specs.size() != trace.size()) {
    throw std::invalid_argument("WorkloadManager: specs and arrival trace sizes differ");
  }
  for (std::size_t i = 0; i < specs.size(); ++i) {
    submit(std::move(specs[i]), trace.at(i));
  }
}

void WorkloadManager::record(trace::EventKind kind, const Job& job, std::uint64_t b) {
  if (!options_.tracer) return;
  options_.tracer->record(des::to_seconds(platform_.sim().now()), kind, job.spec.name,
                          job.id, b);
}

void WorkloadManager::on_submitted(Job& job) {
  queue_.push_back(job.id);
  record(trace::EventKind::JobSubmitted, job);
  // Pump from a follow-up event, not inline: submissions at the same instant
  // must all land in the queue before SJF/Priority compare them.
  if (!pump_pending_) {
    pump_pending_ = true;
    platform_.sim().schedule(des::SimDuration{0}, [this] {
      pump_pending_ = false;
      pump();
    });
  }
}

void WorkloadManager::pump() {
  if (queue_.empty()) return;
  if (!concurrent_policy()) {
    // Run-to-completion disciplines: at most one job owns the platform.
    if (active_ > 0) return;
    std::size_t pick = 0;
    if (options_.policy == SchedulingPolicy::Sjf) {
      for (std::size_t i = 1; i < queue_.size(); ++i) {
        if (jobs_[queue_[i] - 1]->estimate_seconds <
            jobs_[queue_[pick] - 1]->estimate_seconds) {
          pick = i;  // strict < keeps ties in arrival order
        }
      }
    }
    const std::uint32_t id = queue_[pick];
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(pick));
    start_job(*jobs_[id - 1]);
    return;
  }
  // Concurrent disciplines: admit until the cap (0 = everyone).
  while (!queue_.empty() &&
         (options_.max_concurrent == 0 || active_ < options_.max_concurrent)) {
    std::size_t pick = 0;
    if (options_.policy == SchedulingPolicy::Priority) {
      for (std::size_t i = 1; i < queue_.size(); ++i) {
        if (jobs_[queue_[i] - 1]->spec.priority >
            jobs_[queue_[pick] - 1]->spec.priority) {
          pick = i;  // strict > keeps ties in arrival order
        }
      }
    }
    const std::uint32_t id = queue_[pick];
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(pick));
    start_job(*jobs_[id - 1]);
  }
}

void WorkloadManager::add_route(
    net::EndpointId ep, std::uint32_t job,
    std::function<void(net::EndpointId, middleware::Message)> handler) {
  if (routes_.find(ep) == routes_.end()) {
    postman_.register_mailbox(ep, [this, ep](net::EndpointId from,
                                             middleware::Message msg) {
      auto& per_job = routes_.at(ep);
      const auto it = per_job.find(msg.job);
      if (it == per_job.end()) {
        throw std::logic_error("WorkloadManager: message routed to an unknown job");
      }
      it->second(from, std::move(msg));
    });
  }
  routes_[ep][job] = std::move(handler);
}

void WorkloadManager::start_job(Job& job) {
  job.started = true;
  job.start_seconds = des::to_seconds(platform_.sim().now());
  record(trace::EventKind::JobStarted, job);
  if (arbiter_) {
    CoreSlotArbiter::JobShare share;
    share.tenant = job.spec.tenant;
    share.priority = job.spec.priority;
    const auto w = options_.tenant_weights.find(job.spec.tenant);
    share.weight = w != options_.tenant_weights.end() ? w->second : 1.0;
    arbiter_->register_job(job.id, share);
  }
  // A solo job keeps bare actor names so its trace (and everything downstream
  // of it) matches run_distributed exactly; concurrent jobs get "name/" lanes.
  std::string tag = jobs_.size() > 1 ? job.spec.name + "/" : std::string{};
  const std::uint32_t id = job.id;
  job.exec = std::make_unique<middleware::JobExecution>(
      platform_, job.spec.layout, job.effective, postman_,
      [this, id](net::EndpointId ep,
                 std::function<void(net::EndpointId, middleware::Message)> handler) {
        add_route(ep, id, std::move(handler));
      },
      job.id, std::move(tag), arbiter_.get(), [this, &job] { on_job_finished(job); });
  ++active_;
  job.exec->start();
}

void WorkloadManager::on_job_finished(Job& job) {
  job.finished = true;
  job.finish_seconds = des::to_seconds(platform_.sim().now());
  record(trace::EventKind::JobFinished, job);
  --active_;
  pump();
}

WorkloadResult WorkloadManager::run() {
  if (jobs_.empty()) {
    throw std::invalid_argument("WorkloadManager: no jobs submitted");
  }
  if (running_) {
    throw std::logic_error("WorkloadManager: run() called twice");
  }
  running_ = true;
  platform_.sim().run();

  std::size_t unfinished = 0;
  for (const auto& job : jobs_) {
    if (!job->finished) ++unfinished;
  }
  if (unfinished > 0) {
    throw std::runtime_error("WorkloadManager: " + std::to_string(unfinished) +
                             " job(s) never finished (workload deadlocked)");
  }
  return aggregate();
}

WorkloadResult WorkloadManager::aggregate() {
  WorkloadResult result;
  const bool solo = jobs_.size() == 1;

  // --- per-job results and raw (billed-alone) usage ---------------------------
  std::vector<cost::CostInputs> job_inputs;
  for (auto& jptr : jobs_) {
    Job& job = *jptr;
    JobResult r;
    r.id = job.id;
    r.name = job.spec.name;
    r.tenant = job.spec.tenant;
    r.priority = job.spec.priority;
    r.deadline_seconds = job.spec.deadline_seconds;
    r.submit_seconds = job.submit_seconds;
    r.start_seconds = job.start_seconds;
    r.finish_seconds = job.finish_seconds;
    r.preemptions = job.preemptions;
    // Solo workloads keep run_distributed's historical store_requests source
    // (the stores' own counters); concurrent jobs use their own per-job
    // counts, since the store counters aggregate every tenant.
    r.run = job.exec->collect(/*use_platform_store_stats=*/solo);
    job_inputs.push_back(cost::derive_run_inputs(r.run, platform_, job.spec.layout,
                                                 job.effective));
    r.raw_cost = cost::price(job_inputs.back(), options_.pricing);
    result.jobs.push_back(std::move(r));

    result.makespan = std::max(result.makespan, job.finish_seconds);
    result.preemptions += job.preemptions;
    result.elastic_activations += result.jobs.back().run.elastic_activations;
  }

  // --- the platform billed once ----------------------------------------------
  // Cloud nodes are physical: a node several jobs rented (including elastic
  // activations from different tenants) bills from its earliest rental to
  // the end of the workload, exactly once.
  std::map<net::EndpointId, double> rented_from;
  // Latest rental end per node; a rental no lifecycle event closed runs to
  // the workload's makespan, which then dominates every early end.
  std::map<net::EndpointId, double> rented_until;
  for (const JobResult& r : result.jobs) {
    for (std::size_t i = 0; i < r.run.cloud_instance_nodes.size(); ++i) {
      const double at =
          r.start_seconds + (i < r.run.cloud_instance_starts.size()
                                 ? r.run.cloud_instance_starts[i]
                                 : 0.0);
      const double end = i < r.run.cloud_instance_ends.size() &&
                                 r.run.cloud_instance_ends[i] >= 0.0
                             ? r.start_seconds + r.run.cloud_instance_ends[i]
                             : result.makespan;
      const net::EndpointId node = r.run.cloud_instance_nodes[i];
      const auto it = rented_from.find(node);
      if (it == rented_from.end()) {
        rented_from[node] = at;
        rented_until[node] = end;
      } else {
        it->second = std::min(it->second, at);
        rented_until[node] = std::max(rented_until[node], end);
      }
    }
  }
  cost::CostInputs platform_inputs;
  platform_inputs.run_seconds = result.makespan;
  platform_inputs.cloud_instances = static_cast<std::uint32_t>(rented_from.size());
  for (const auto& [ep, from] : rented_from) {
    platform_inputs.instance_seconds.push_back(
        std::max(0.0, rented_until.at(ep) - from));
  }
  for (const cost::CostInputs& in : job_inputs) {
    platform_inputs.s3_get_requests += in.s3_get_requests;
    platform_inputs.bytes_out_of_cloud += in.bytes_out_of_cloud;
    platform_inputs.s3_resident_bytes += in.s3_resident_bytes;
  }
  result.platform_cost = cost::price(platform_inputs, options_.pricing);

  // --- exact per-job attribution ---------------------------------------------
  // Each platform cost component is split proportional to the jobs' raw
  // (billed-alone) component, residual to the largest consumer — so the
  // attributed reports sum to the platform bill component by component.
  const std::size_t n = result.jobs.size();
  std::vector<double> raw_inst(n), raw_req(n), raw_xfer(n), raw_stor(n);
  for (std::size_t i = 0; i < n; ++i) {
    raw_inst[i] = result.jobs[i].raw_cost.instance_usd;
    raw_req[i] = result.jobs[i].raw_cost.requests_usd;
    raw_xfer[i] = result.jobs[i].raw_cost.transfer_usd;
    raw_stor[i] = result.jobs[i].raw_cost.storage_usd;
  }
  const auto inst_usd = split_exact(result.platform_cost.instance_usd, raw_inst);
  const auto inst_hours = split_exact(result.platform_cost.instance_hours, raw_inst);
  const auto req_usd = split_exact(result.platform_cost.requests_usd, raw_req);
  const auto xfer_usd = split_exact(result.platform_cost.transfer_usd, raw_xfer);
  const auto xfer_gb = split_exact(result.platform_cost.transfer_out_gb, raw_xfer);
  const auto stor_usd = split_exact(result.platform_cost.storage_usd, raw_stor);
  const auto stor_gb = split_exact(result.platform_cost.storage_gb, raw_stor);
  for (std::size_t i = 0; i < n; ++i) {
    cost::CostReport& a = result.jobs[i].attributed_cost;
    a.instance_usd = inst_usd[i];
    a.instance_hours = inst_hours[i];
    a.requests_usd = req_usd[i];
    a.get_requests = result.jobs[i].raw_cost.get_requests;  // true per-job counts
    a.transfer_usd = xfer_usd[i];
    a.transfer_out_gb = xfer_gb[i];
    a.storage_usd = stor_usd[i];
    a.storage_gb = stor_gb[i];
  }

  // --- tenant rollup ----------------------------------------------------------
  std::map<std::string, TenantReport> tenants;
  for (const JobResult& r : result.jobs) {
    TenantReport& t = tenants[r.tenant];
    if (t.jobs == 0) {
      t.tenant = r.tenant;
      const auto w = options_.tenant_weights.find(r.tenant);
      t.weight = w != options_.tenant_weights.end() ? w->second : 1.0;
    }
    ++t.jobs;
    if (r.slo_met()) ++t.slo_met;
    t.attributed_cost.instance_hours += r.attributed_cost.instance_hours;
    t.attributed_cost.instance_usd += r.attributed_cost.instance_usd;
    t.attributed_cost.get_requests += r.attributed_cost.get_requests;
    t.attributed_cost.requests_usd += r.attributed_cost.requests_usd;
    t.attributed_cost.transfer_out_gb += r.attributed_cost.transfer_out_gb;
    t.attributed_cost.transfer_usd += r.attributed_cost.transfer_usd;
    t.attributed_cost.storage_gb += r.attributed_cost.storage_gb;
    t.attributed_cost.storage_usd += r.attributed_cost.storage_usd;
  }
  for (auto& [name, report] : tenants) {
    if (arbiter_) {
      report.service_seconds = arbiter_->tenant_seconds(name);
    } else {
      for (const JobResult& r : result.jobs) {
        if (r.tenant != name) continue;
        for (const auto& node : r.run.nodes) report.service_seconds += node.processing;
      }
    }
    // Store-QoS rollup: any of the tenant's jobs that carried a StoreQos
    // shares the same arbiter-wide per-tenant counters.
    for (const auto& job : jobs_) {
      if (job->spec.tenant == name && job->effective.qos) {
        report.qos = job->effective.qos->report(name);
        break;
      }
    }
    result.tenants.push_back(report);
  }

  // --- latency distribution ---------------------------------------------------
  std::vector<double> latencies;
  std::size_t slo_ok = 0;
  for (const JobResult& r : result.jobs) {
    latencies.push_back(r.latency_seconds());
    if (r.slo_met()) ++slo_ok;
  }
  std::sort(latencies.begin(), latencies.end());
  result.p50_latency_seconds = percentile(latencies, 0.50);
  result.p95_latency_seconds = percentile(latencies, 0.95);
  result.slo_hit_rate = static_cast<double>(slo_ok) / static_cast<double>(n);
  return result;
}

}  // namespace cloudburst::workload
