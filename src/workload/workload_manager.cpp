#include "workload/workload_manager.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "cost/planner.hpp"

namespace cloudburst::workload {

const char* to_string(SchedulingPolicy policy) {
  switch (policy) {
    case SchedulingPolicy::Fifo: return "fifo";
    case SchedulingPolicy::Sjf: return "sjf";
    case SchedulingPolicy::FairShare: return "fair";
    case SchedulingPolicy::Priority: return "priority";
  }
  return "?";
}

const char* to_string(QuotaReject reason) {
  switch (reason) {
    case QuotaReject::None: return "none";
    case QuotaReject::ConcurrentJobs: return "concurrent-jobs";
    case QuotaReject::BytesInFlight: return "bytes-in-flight";
    case QuotaReject::UsdPerHour: return "usd-per-hour";
  }
  return "?";
}

namespace {

/// Split `total` across entries proportional to `raw`, exactly: every entry
/// gets total * raw/sum except the largest raw entry, which takes the
/// residual — so the shares sum to `total` to the last bit. With no usage
/// anywhere the largest (first) entry absorbs everything (normally zero).
std::vector<double> split_exact(double total, const std::vector<double>& raw) {
  std::vector<double> out(raw.size(), 0.0);
  if (raw.empty()) return out;
  std::size_t largest = 0;
  double sum = 0.0;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    sum += raw[i];
    if (raw[i] > raw[largest]) largest = i;
  }
  if (sum <= 0.0) {
    out[largest] = total;
    return out;
  }
  double accounted = 0.0;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    if (i == largest) continue;
    out[i] = total * (raw[i] / sum);
    accounted += out[i];
  }
  out[largest] = total - accounted;
  return out;
}

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  // Nearest-rank on the already-sorted sample.
  const auto n = static_cast<double>(sorted.size());
  auto rank = static_cast<std::size_t>(std::ceil(p * n));
  if (rank == 0) rank = 1;
  return sorted[std::min(rank, sorted.size()) - 1];
}

}  // namespace

WorkloadManager::WorkloadManager(cluster::Platform& platform, WorkloadOptions options)
    : platform_(platform), options_(std::move(options)),
      postman_(platform.network()) {
  if (options_.pool.enabled) {
    if (!options_.directory) {
      throw std::invalid_argument(
          "WorkloadManager: the elastic node pool requires a service directory");
    }
    pool_ = std::make_unique<NodePool>(platform_.sim(), options_.pool,
                                       options_.tracer);
    // Seed the pool with the cloud nodes the directory lists as Active now;
    // later registrations join through the change feed below.
    for (cluster::ClusterId c = 0; c < platform_.cluster_count(); ++c) {
      if (!platform_.is_cloud(c)) continue;
      const auto& nodes = platform_.nodes(c);
      for (std::uint32_t i = 0; i < nodes.size(); ++i) {
        if (options_.directory->node_state(c, i) == directory::ServiceState::Active) {
          pool_->add_node(nodes[i].endpoint, nodes[i].name);
        }
      }
    }
  }
  if (options_.directory) {
    directory_watch_ = options_.directory->watch(
        [this](const directory::DirectoryEvent& ev) {
          switch (ev.kind) {
            case directory::DirectoryEvent::Kind::NodeRegistered:
              // Capacity arrival: a cloud node joining the directory joins
              // the pool (Cold) and serves the next lease.
              if (pool_ && platform_.is_cloud(ev.site)) {
                const auto& nodes = platform_.nodes(ev.site);
                if (ev.node_index < nodes.size()) {
                  pool_->add_node(nodes[ev.node_index].endpoint,
                                  nodes[ev.node_index].name);
                }
              }
              break;
            case directory::DirectoryEvent::Kind::NodeDraining:
              begin_cross_job_drain(ev.site, ev.node_index);
              break;
            case directory::DirectoryEvent::Kind::NodeRetired:
              // Abrupt retirement (site blackout, hard decommission): no
              // drain preceded it, so close the node's pool billing window
              // right now and stop leasing it. A later re-registration
              // returns it to the pool Cold through the arrival case above.
              if (pool_) {
                const auto& nodes = platform_.nodes(ev.site);
                if (ev.node_index < nodes.size()) {
                  pool_->retire_node(nodes[ev.node_index].endpoint, ev.at_seconds);
                }
              }
              break;
            default:
              break;
          }
        });
  }
  if (concurrent_policy()) {
    arbiter_ = std::make_unique<CoreSlotArbiter>(
        options_.policy == SchedulingPolicy::FairShare
            ? CoreSlotArbiter::Discipline::WeightedFair
            : CoreSlotArbiter::Discipline::Priority);
    arbiter_->on_preemption([this](net::EndpointId, std::uint32_t loser,
                                   std::uint32_t winner) {
      Job& job = *jobs_.at(loser - 1);
      ++job.preemptions;
      record(trace::EventKind::JobPreempted, job, winner);
    });
  }
}

std::uint32_t WorkloadManager::submit(JobSpec spec, double at_seconds) {
  if (running_) {
    throw std::logic_error("WorkloadManager: submit after run() started");
  }
  if (at_seconds < 0.0) {
    throw std::invalid_argument("WorkloadManager: negative submission time");
  }

  auto job = std::make_unique<Job>();
  job->id = static_cast<std::uint32_t>(jobs_.size()) + 1;
  if (spec.name.empty()) spec.name = "job" + std::to_string(job->id);
  job->submit_seconds = at_seconds;
  job->effective = spec.options;
  job->effective.tenant = spec.tenant;
  if (options_.tracer) job->effective.tracer = options_.tracer;
  if (options_.directory) job->effective.directory = options_.directory;
  if (pool_) job->effective.pool_plan.enabled = true;  // leases fill at start
  // Validate the effective options (directory and pool flags included), so a
  // pooled job combining per-job elastic/lifecycle machinery fails here.
  middleware::validate_run(platform_, spec.layout, job->effective);
  job->spec = std::move(spec);
  job->estimate_seconds =
      cost::estimate_exec_seconds(platform_, job->spec.layout, job->spec.options);
  job->bytes = job->spec.layout.total_bytes();
  // Estimated cloud burn while the job is in flight: the cloud nodes it can
  // occupy times the instance-hour price (pool jobs: their lease request).
  std::size_t cloud_nodes = 0;
  for (cluster::ClusterId c = 0; c < platform_.cluster_count(); ++c) {
    if (platform_.is_cloud(c)) cloud_nodes += platform_.nodes(c).size();
  }
  if (pool_ && job->spec.pool_nodes > 0) {
    cloud_nodes = std::min(cloud_nodes, job->spec.pool_nodes);
  }
  job->burn_usd_per_hour =
      static_cast<double>(cloud_nodes) * options_.pricing.instance_hour_usd;

  Job* raw = job.get();
  jobs_.push_back(std::move(job));
  platform_.sim().schedule(des::from_seconds(at_seconds),
                           [this, raw] { on_submitted(*raw); });
  return raw->id;
}

void WorkloadManager::submit_all(std::vector<JobSpec> specs, const ArrivalTrace& trace) {
  if (specs.size() != trace.size()) {
    throw std::invalid_argument("WorkloadManager: specs and arrival trace sizes differ");
  }
  for (std::size_t i = 0; i < specs.size(); ++i) {
    submit(std::move(specs[i]), trace.at(i));
  }
}

void WorkloadManager::record(trace::EventKind kind, const Job& job, std::uint64_t b) {
  if (!options_.tracer) return;
  options_.tracer->record(des::to_seconds(platform_.sim().now()), kind, job.spec.name,
                          job.id, b);
}

WorkloadManager::~WorkloadManager() {
  if (options_.directory && directory_watch_ != 0) {
    options_.directory->unwatch(directory_watch_);
  }
}

double WorkloadManager::now_seconds() const {
  return des::to_seconds(platform_.sim().now());
}

QuotaReject WorkloadManager::admission_check(const Job& job) const {
  const auto q = options_.quotas.find(job.spec.tenant);
  if (q == options_.quotas.end()) return QuotaReject::None;
  const TenantQuota& quota = q->second;
  TenantUsage usage;
  const auto u = usage_.find(job.spec.tenant);
  if (u != usage_.end()) usage = u->second;
  if (quota.max_concurrent_jobs != 0 &&
      usage.inflight_jobs + 1 > quota.max_concurrent_jobs) {
    return QuotaReject::ConcurrentJobs;
  }
  if (quota.max_bytes_in_flight != 0 &&
      usage.inflight_bytes + job.bytes > quota.max_bytes_in_flight) {
    return QuotaReject::BytesInFlight;
  }
  if (quota.max_usd_per_hour > 0.0 &&
      usage.burn_usd_per_hour + job.burn_usd_per_hour >
          quota.max_usd_per_hour * (1.0 + 1e-12)) {
    return QuotaReject::UsdPerHour;
  }
  return QuotaReject::None;
}

void WorkloadManager::on_submitted(Job& job) {
  // Admission control happens at submission time, against the tenant's
  // in-flight usage at this instant — a rejected job is never queued.
  const QuotaReject verdict = admission_check(job);
  if (verdict != QuotaReject::None) {
    job.rejected = true;
    job.reject_reason = verdict;
    job.start_seconds = job.submit_seconds;
    job.finish_seconds = job.submit_seconds;
    record(trace::EventKind::JobRejected, job,
           static_cast<std::uint64_t>(verdict));
    return;
  }
  TenantUsage& usage = usage_[job.spec.tenant];
  ++usage.inflight_jobs;
  usage.inflight_bytes += job.bytes;
  usage.burn_usd_per_hour += job.burn_usd_per_hour;

  queue_.push_back(job.id);
  record(trace::EventKind::JobSubmitted, job);
  // Pump from a follow-up event, not inline: submissions at the same instant
  // must all land in the queue before SJF/Priority compare them.
  if (!pump_pending_) {
    pump_pending_ = true;
    platform_.sim().schedule(des::SimDuration{0}, [this] {
      pump_pending_ = false;
      pump();
    });
  }
}

void WorkloadManager::pump() {
  if (queue_.empty()) return;
  if (!concurrent_policy()) {
    // Run-to-completion disciplines: at most one job owns the platform.
    if (active_ > 0) return;
    std::size_t pick = 0;
    if (options_.policy == SchedulingPolicy::Sjf) {
      for (std::size_t i = 1; i < queue_.size(); ++i) {
        if (jobs_[queue_[i] - 1]->estimate_seconds <
            jobs_[queue_[pick] - 1]->estimate_seconds) {
          pick = i;  // strict < keeps ties in arrival order
        }
      }
    }
    const std::uint32_t id = queue_[pick];
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(pick));
    start_job(*jobs_[id - 1]);
    return;
  }
  // Concurrent disciplines: admit until the cap (0 = everyone).
  while (!queue_.empty() &&
         (options_.max_concurrent == 0 || active_ < options_.max_concurrent)) {
    std::size_t pick = 0;
    if (options_.policy == SchedulingPolicy::Priority) {
      for (std::size_t i = 1; i < queue_.size(); ++i) {
        if (jobs_[queue_[i] - 1]->spec.priority >
            jobs_[queue_[pick] - 1]->spec.priority) {
          pick = i;  // strict > keeps ties in arrival order
        }
      }
    }
    const std::uint32_t id = queue_[pick];
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(pick));
    start_job(*jobs_[id - 1]);
  }
}

void WorkloadManager::add_route(
    net::EndpointId ep, std::uint32_t job,
    std::function<void(net::EndpointId, middleware::Message)> handler) {
  if (routes_.find(ep) == routes_.end()) {
    postman_.register_mailbox(ep, [this, ep](net::EndpointId from,
                                             middleware::Message msg) {
      auto& per_job = routes_.at(ep);
      const auto it = per_job.find(msg.job);
      if (it == per_job.end()) {
        throw std::logic_error("WorkloadManager: message routed to an unknown job");
      }
      it->second(from, std::move(msg));
    });
  }
  routes_[ep][job] = std::move(handler);
}

void WorkloadManager::start_job(Job& job) {
  job.started = true;
  job.start_seconds = des::to_seconds(platform_.sim().now());
  record(trace::EventKind::JobStarted, job);
  if (arbiter_) {
    CoreSlotArbiter::JobShare share;
    share.tenant = job.spec.tenant;
    share.priority = job.spec.priority;
    const auto w = options_.tenant_weights.find(job.spec.tenant);
    share.weight = w != options_.tenant_weights.end() ? w->second : 1.0;
    arbiter_->register_job(job.id, share);
  }
  if (pool_) {
    // Lease cloud nodes now, at start time: a warm node is ready immediately,
    // a cold one boots inside the lease. The leases become the job's
    // RunOptions::pool_plan, which setup_pool() turns into deferred starts.
    const auto leases = pool_->lease(job.id, job.spec.tenant,
                                     job.spec.pool_nodes, job.start_seconds);
    job.effective.pool_plan.leases.clear();
    for (const auto& lease : leases) {
      job.effective.pool_plan.leases.push_back(
          {lease.node, lease.ready_in_seconds});
    }
  }
  // A solo job keeps bare actor names so its trace (and everything downstream
  // of it) matches run_distributed exactly; concurrent jobs get "name/" lanes.
  std::string tag = jobs_.size() > 1 ? job.spec.name + "/" : std::string{};
  const std::uint32_t id = job.id;
  job.exec = std::make_unique<middleware::JobExecution>(
      platform_, job.spec.layout, job.effective, postman_,
      [this, id](net::EndpointId ep,
                 std::function<void(net::EndpointId, middleware::Message)> handler) {
        add_route(ep, id, std::move(handler));
      },
      job.id, std::move(tag), arbiter_.get(), [this, &job] { on_job_finished(job); });
  job.exec->ctx().on_node_vacated = [this, &job](net::EndpointId ep) {
    on_slave_vacated(job, ep);
  };
  ++active_;
  job.exec->start();
}

void WorkloadManager::on_slave_vacated(Job& job, net::EndpointId ep) {
  if (pool_) pool_->release_node(job.id, ep, now_seconds());
  const auto it = drains_.find(ep);
  if (it == drains_.end()) return;
  it->second.waiting_jobs.erase(job.id);
  if (!it->second.assembling && it->second.waiting_jobs.empty()) settle_drain(ep);
}

void WorkloadManager::begin_cross_job_drain(cluster::ClusterId site,
                                            std::uint32_t node_index) {
  const auto& nodes = platform_.nodes(site);
  if (node_index >= nodes.size()) return;
  const net::EndpointId ep = nodes[node_index].endpoint;
  if (drains_.find(ep) != drains_.end()) return;  // already draining
  if (pool_) pool_->block_node(ep);  // no new leases while work drains off

  DrainState& drain = drains_[ep];
  drain.site = site;
  drain.node_index = node_index;
  drain.assembling = true;
  for (auto& jptr : jobs_) {
    Job& job = *jptr;
    if (!job.started || job.finished || !job.exec) continue;
    // Insert before asking: an idle slave vacates synchronously inside
    // drain_node, and its on_node_vacated must find the id to erase.
    drain.waiting_jobs.insert(job.id);
    if (!job.exec->drain_node(ep)) drain.waiting_jobs.erase(job.id);
  }
  drain.assembling = false;
  if (drain.waiting_jobs.empty()) settle_drain(ep);
}

void WorkloadManager::settle_drain(net::EndpointId ep) {
  const auto it = drains_.find(ep);
  if (it == drains_.end()) return;
  const DrainState drain = it->second;
  drains_.erase(it);
  if (pool_) pool_->retire_node(ep, now_seconds());
  if (options_.directory) {
    options_.directory->complete_node_retirement(drain.site, drain.node_index);
  }
}

void WorkloadManager::on_job_finished(Job& job) {
  job.finished = true;
  job.finish_seconds = des::to_seconds(platform_.sim().now());
  record(trace::EventKind::JobFinished, job);
  --active_;

  const auto usage = usage_.find(job.spec.tenant);
  if (usage != usage_.end()) {
    TenantUsage& u = usage->second;
    if (u.inflight_jobs > 0) --u.inflight_jobs;
    u.inflight_bytes -= std::min(u.inflight_bytes, job.bytes);
    u.burn_usd_per_hour = std::max(0.0, u.burn_usd_per_hour - job.burn_usd_per_hour);
  }
  if (pool_) pool_->release_job(job.id, job.finish_seconds);
  // A finished job can no longer vacate: drop it from every pending drain
  // (a tree-less job whose slaves idled out finishes without vacating them).
  std::vector<net::EndpointId> settled;
  for (auto& [ep, drain] : drains_) {
    drain.waiting_jobs.erase(job.id);
    if (!drain.assembling && drain.waiting_jobs.empty()) settled.push_back(ep);
  }
  for (const net::EndpointId ep : settled) settle_drain(ep);

  pump();
}

WorkloadResult WorkloadManager::run() {
  if (jobs_.empty()) {
    throw std::invalid_argument("WorkloadManager: no jobs submitted");
  }
  if (running_) {
    throw std::logic_error("WorkloadManager: run() called twice");
  }
  running_ = true;
  platform_.sim().run();

  std::size_t unfinished = 0;
  for (const auto& job : jobs_) {
    if (!job->finished && !job->rejected) ++unfinished;
  }
  if (unfinished > 0) {
    throw std::runtime_error("WorkloadManager: " + std::to_string(unfinished) +
                             " job(s) never finished (workload deadlocked)");
  }
  return aggregate();
}

WorkloadResult WorkloadManager::aggregate() {
  WorkloadResult result;
  const bool solo = jobs_.size() == 1;

  // --- per-job results and raw (billed-alone) usage ---------------------------
  std::vector<cost::CostInputs> job_inputs;
  for (auto& jptr : jobs_) {
    Job& job = *jptr;
    JobResult r;
    r.id = job.id;
    r.name = job.spec.name;
    r.tenant = job.spec.tenant;
    r.priority = job.spec.priority;
    r.deadline_seconds = job.spec.deadline_seconds;
    r.submit_seconds = job.submit_seconds;
    r.start_seconds = job.start_seconds;
    r.finish_seconds = job.finish_seconds;
    r.preemptions = job.preemptions;
    if (job.rejected) {
      // Quota-rejected: never ran. Zero run/cost records, a zero CostInputs
      // placeholder keeps job_inputs parallel with result.jobs.
      r.rejected = true;
      r.reject_reason = job.reject_reason;
      job_inputs.emplace_back();
      result.jobs.push_back(std::move(r));
      ++result.rejected_jobs;
      continue;
    }
    // Solo workloads keep run_distributed's historical store_requests source
    // (the stores' own counters); concurrent jobs use their own per-job
    // counts, since the store counters aggregate every tenant.
    r.run = job.exec->collect(/*use_platform_store_stats=*/solo);
    job_inputs.push_back(cost::derive_run_inputs(r.run, platform_, job.spec.layout,
                                                 job.effective));
    if (pool_) {
      // Pooled jobs carry no per-job instance rentals (the pool owns the
      // billing windows); their raw instance usage is the lease time held.
      const double lease_seconds = pool_->job_lease_seconds(job.id);
      if (lease_seconds > 0.0) {
        job_inputs.back().instance_seconds.push_back(lease_seconds);
        job_inputs.back().cloud_instances = 1;
      }
    }
    r.raw_cost = cost::price(job_inputs.back(), options_.pricing);
    result.jobs.push_back(std::move(r));

    result.makespan = std::max(result.makespan, job.finish_seconds);
    result.preemptions += job.preemptions;
    result.elastic_activations += result.jobs.back().run.elastic_activations;
  }

  // --- the platform billed once ----------------------------------------------
  // Cloud nodes are physical: a node several jobs rented (including elastic
  // activations from different tenants) bills from its earliest rental to
  // the end of the workload, exactly once.
  std::map<net::EndpointId, double> rented_from;
  // Latest rental end per node; a rental no lifecycle event closed runs to
  // the workload's makespan, which then dominates every early end.
  std::map<net::EndpointId, double> rented_until;
  for (const JobResult& r : result.jobs) {
    for (std::size_t i = 0; i < r.run.cloud_instance_nodes.size(); ++i) {
      const double at =
          r.start_seconds + (i < r.run.cloud_instance_starts.size()
                                 ? r.run.cloud_instance_starts[i]
                                 : 0.0);
      const double end = i < r.run.cloud_instance_ends.size() &&
                                 r.run.cloud_instance_ends[i] >= 0.0
                             ? r.start_seconds + r.run.cloud_instance_ends[i]
                             : result.makespan;
      const net::EndpointId node = r.run.cloud_instance_nodes[i];
      const auto it = rented_from.find(node);
      if (it == rented_from.end()) {
        rented_from[node] = at;
        rented_until[node] = end;
      } else {
        it->second = std::min(it->second, at);
        rented_until[node] = std::max(rented_until[node], end);
      }
    }
  }
  cost::CostInputs platform_inputs;
  platform_inputs.run_seconds = result.makespan;
  platform_inputs.cloud_instances = static_cast<std::uint32_t>(rented_from.size());
  for (const auto& [ep, from] : rented_from) {
    platform_inputs.instance_seconds.push_back(
        std::max(0.0, rented_until.at(ep) - from));
  }
  if (pool_) {
    // Under the node pool the per-job rental lists above are empty by
    // construction; the pool's provisioning windows ARE the platform bill
    // (a window still open when the workload ends closes at the makespan).
    for (const auto& window : pool_->windows(result.makespan)) {
      platform_inputs.instance_seconds.push_back(
          std::max(0.0, window.end - window.start));
    }
    platform_inputs.cloud_instances =
        static_cast<std::uint32_t>(platform_inputs.instance_seconds.size());
    result.pool = pool_->stats();
  }
  for (const cost::CostInputs& in : job_inputs) {
    platform_inputs.s3_get_requests += in.s3_get_requests;
    platform_inputs.bytes_out_of_cloud += in.bytes_out_of_cloud;
    platform_inputs.s3_resident_bytes += in.s3_resident_bytes;
  }
  result.platform_cost = cost::price(platform_inputs, options_.pricing);

  // --- exact per-job attribution ---------------------------------------------
  // Each platform cost component is split proportional to the jobs' raw
  // (billed-alone) component, residual to the largest consumer — so the
  // attributed reports sum to the platform bill component by component.
  const std::size_t n = result.jobs.size();
  std::vector<double> raw_inst(n), raw_req(n), raw_xfer(n), raw_stor(n);
  for (std::size_t i = 0; i < n; ++i) {
    raw_inst[i] = result.jobs[i].raw_cost.instance_usd;
    raw_req[i] = result.jobs[i].raw_cost.requests_usd;
    raw_xfer[i] = result.jobs[i].raw_cost.transfer_usd;
    raw_stor[i] = result.jobs[i].raw_cost.storage_usd;
  }
  const auto inst_usd = split_exact(result.platform_cost.instance_usd, raw_inst);
  const auto inst_hours = split_exact(result.platform_cost.instance_hours, raw_inst);
  const auto req_usd = split_exact(result.platform_cost.requests_usd, raw_req);
  const auto xfer_usd = split_exact(result.platform_cost.transfer_usd, raw_xfer);
  const auto xfer_gb = split_exact(result.platform_cost.transfer_out_gb, raw_xfer);
  const auto stor_usd = split_exact(result.platform_cost.storage_usd, raw_stor);
  const auto stor_gb = split_exact(result.platform_cost.storage_gb, raw_stor);
  for (std::size_t i = 0; i < n; ++i) {
    cost::CostReport& a = result.jobs[i].attributed_cost;
    a.instance_usd = inst_usd[i];
    a.instance_hours = inst_hours[i];
    a.requests_usd = req_usd[i];
    a.get_requests = result.jobs[i].raw_cost.get_requests;  // true per-job counts
    a.transfer_usd = xfer_usd[i];
    a.transfer_out_gb = xfer_gb[i];
    a.storage_usd = stor_usd[i];
    a.storage_gb = stor_gb[i];
  }

  // --- tenant rollup ----------------------------------------------------------
  std::map<std::string, TenantReport> tenants;
  for (const JobResult& r : result.jobs) {
    TenantReport& t = tenants[r.tenant];
    if (t.tenant.empty()) {
      t.tenant = r.tenant;
      const auto w = options_.tenant_weights.find(r.tenant);
      t.weight = w != options_.tenant_weights.end() ? w->second : 1.0;
    }
    if (r.rejected) {
      ++t.rejected;
      continue;
    }
    ++t.jobs;
    if (r.slo_met()) ++t.slo_met;
    t.attributed_cost.instance_hours += r.attributed_cost.instance_hours;
    t.attributed_cost.instance_usd += r.attributed_cost.instance_usd;
    t.attributed_cost.get_requests += r.attributed_cost.get_requests;
    t.attributed_cost.requests_usd += r.attributed_cost.requests_usd;
    t.attributed_cost.transfer_out_gb += r.attributed_cost.transfer_out_gb;
    t.attributed_cost.transfer_usd += r.attributed_cost.transfer_usd;
    t.attributed_cost.storage_gb += r.attributed_cost.storage_gb;
    t.attributed_cost.storage_usd += r.attributed_cost.storage_usd;
  }
  for (auto& [name, report] : tenants) {
    if (arbiter_) {
      report.service_seconds = arbiter_->tenant_seconds(name);
    } else {
      for (const JobResult& r : result.jobs) {
        if (r.tenant != name) continue;
        for (const auto& node : r.run.nodes) report.service_seconds += node.processing;
      }
    }
    // Store-QoS rollup: any of the tenant's jobs that carried a StoreQos
    // shares the same arbiter-wide per-tenant counters.
    for (const auto& job : jobs_) {
      if (job->spec.tenant == name && job->effective.qos) {
        report.qos = job->effective.qos->report(name);
        break;
      }
    }
    if (pool_) report.lease_seconds = pool_->tenant_lease_seconds(name);
    result.tenants.push_back(report);
  }

  // --- latency distribution ---------------------------------------------------
  std::vector<double> latencies;
  std::size_t slo_ok = 0;
  std::size_t admitted = 0;
  for (const JobResult& r : result.jobs) {
    if (r.rejected) continue;  // never ran: no latency, no SLO verdict
    ++admitted;
    latencies.push_back(r.latency_seconds());
    if (r.slo_met()) ++slo_ok;
  }
  std::sort(latencies.begin(), latencies.end());
  result.p50_latency_seconds = percentile(latencies, 0.50);
  result.p95_latency_seconds = percentile(latencies, 0.95);
  result.slo_hit_rate = admitted == 0 ? 1.0
                                      : static_cast<double>(slo_ok) /
                                            static_cast<double>(admitted);
  return result;
}

}  // namespace cloudburst::workload
