// CSV arrival-trace loader.
//
// Workload studies replay production logs: a CSV with one job per row —
// submission time, tenant, job size — feeds ArrivalTrace::replay plus the
// per-job tenant/size fields a driver uses to build JobSpecs. The parser is
// strict: malformed rows fail with "<path>:<line>: <reason>" instead of
// silently skewing the experiment.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workload/arrivals.hpp"

namespace cloudburst::workload {

/// One row of an arrival trace file.
struct TraceRecord {
  double submit_seconds = 0.0;  ///< non-negative; rows need not be sorted
  std::string tenant;
  std::uint64_t job_bytes = 0;  ///< dataset size; must be positive
};

/// Parse `path` as a 3-column CSV: submit_seconds,tenant,job_bytes.
/// Blank lines and '#' comment lines are skipped; an optional header row
/// (first line whose first field is not a number) is skipped too. Throws
/// std::runtime_error("<path>:<line>: <reason>") on unreadable files, wrong
/// column counts, unparsable numbers, negative times, empty tenants, or
/// non-positive sizes.
std::vector<TraceRecord> load_arrival_csv(const std::string& path);

/// The records' submission times as a replayable (sorted) ArrivalTrace.
ArrivalTrace to_arrival_trace(const std::vector<TraceRecord>& records);

}  // namespace cloudburst::workload
