#include "workload/node_pool.hpp"

#include <algorithm>

#include "des/sim_time.hpp"

namespace cloudburst::workload {

NodePool::NodePool(des::Simulator& sim, PoolOptions options, trace::Tracer* tracer)
    : sim_(sim), options_(options), tracer_(tracer) {}

NodePool::Node* NodePool::find(net::EndpointId endpoint) {
  for (auto& n : nodes_) {
    if (n.endpoint == endpoint) return &n;
  }
  return nullptr;
}

void NodePool::trace(trace::EventKind kind, const Node& node, std::uint64_t a,
                     std::uint64_t b) {
  if (!tracer_) return;
  tracer_->record(des::to_seconds(sim_.now()), kind, node.name, a, b);
}

void NodePool::add_node(net::EndpointId endpoint, std::string name) {
  if (Node* existing = find(endpoint)) {
    // Directory re-registration of a node the pool retired: back to Cold.
    if (existing->state == State::Retired || existing->state == State::Blocked) {
      existing->state = State::Cold;
      existing->holders = 0;
      ++existing->reap_epoch;
    }
    return;
  }
  Node node;
  node.endpoint = endpoint;
  node.name = std::move(name);
  nodes_.push_back(std::move(node));
}

std::vector<NodePool::Lease> NodePool::lease(std::uint32_t job,
                                             const std::string& tenant,
                                             std::size_t want, double now) {
  std::vector<Lease> granted;
  job_tenant_[job] = tenant;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (want != 0 && granted.size() >= want) break;
    Node& n = nodes_[i];
    if (n.state == State::Blocked || n.state == State::Retired) continue;

    Lease lease;
    lease.node = n.endpoint;
    lease.name = n.name;
    if (n.state == State::Cold) {
      n.state = State::Provisioned;
      n.warm_at = now + options_.boot_seconds;
      n.windows.push_back(Window{n.endpoint, now, -1.0});
      lease.cold = true;
      ++stats_.cold_boots;
    } else {
      ++stats_.warm_leases;
    }
    lease.ready_in_seconds = std::max(0.0, n.warm_at - now);
    stats_.boot_wait_seconds += lease.ready_in_seconds;

    ++n.holders;
    ++n.reap_epoch;  // cancel any pending idle reap
    held_[job].push_back(Held{i, now});
    trace(trace::EventKind::LeaseGranted, n, job, lease.cold ? 1 : 0);
    granted.push_back(std::move(lease));
  }
  return granted;
}

void NodePool::settle_release(std::uint32_t job, Node& node, double since,
                              double now) {
  const double held_seconds = std::max(0.0, now - since);
  job_seconds_[job] += held_seconds;
  auto tenant = job_tenant_.find(job);
  if (tenant != job_tenant_.end()) tenant_seconds_[tenant->second] += held_seconds;

  if (node.holders > 0) --node.holders;
  trace(trace::EventKind::LeaseReturned, node, job, node.holders);
  if (node.holders != 0 || node.state != State::Provisioned) return;
  if (options_.idle_reap_seconds <= 0.0) return;  // keep warm to the end

  const std::size_t idx = static_cast<std::size_t>(&node - nodes_.data());
  const std::uint64_t epoch = ++node.reap_epoch;
  sim_.schedule(des::from_seconds(options_.idle_reap_seconds),
                [this, idx, epoch] {
                  Node& n = nodes_[idx];
                  if (n.reap_epoch != epoch) return;  // re-leased meanwhile
                  if (n.state != State::Provisioned || n.holders != 0) return;
                  if (!n.windows.empty() && n.windows.back().end < 0.0) {
                    n.windows.back().end = des::to_seconds(sim_.now());
                  }
                  n.state = State::Cold;
                  ++stats_.reaps;
                });
}

void NodePool::release_node(std::uint32_t job, net::EndpointId endpoint,
                            double now) {
  auto held = held_.find(job);
  if (held == held_.end()) return;
  auto& leases = held->second;
  for (std::size_t i = 0; i < leases.size(); ++i) {
    if (nodes_[leases[i].node].endpoint != endpoint) continue;
    const Held entry = leases[i];
    leases.erase(leases.begin() + static_cast<std::ptrdiff_t>(i));
    settle_release(job, nodes_[entry.node], entry.since, now);
    return;
  }
}

void NodePool::release_job(std::uint32_t job, double now) {
  auto held = held_.find(job);
  if (held == held_.end()) return;
  std::vector<Held> leases = std::move(held->second);
  held_.erase(held);
  for (const Held& entry : leases) {
    settle_release(job, nodes_[entry.node], entry.since, now);
  }
}

void NodePool::block_node(net::EndpointId endpoint) {
  Node* n = find(endpoint);
  if (!n || n->state == State::Retired) return;
  n->state = State::Blocked;
  ++n->reap_epoch;  // a blocked node's window closes at retirement, not reap
}

void NodePool::retire_node(net::EndpointId endpoint, double now) {
  Node* n = find(endpoint);
  if (!n || n->state == State::Retired) return;
  if (!n->windows.empty() && n->windows.back().end < 0.0) {
    n->windows.back().end = now;
  }
  n->state = State::Retired;
  ++n->reap_epoch;
}

std::vector<NodePool::Window> NodePool::windows(double fallback_end) const {
  std::vector<Window> out;
  for (const auto& n : nodes_) {
    for (const auto& w : n.windows) {
      Window closed = w;
      if (closed.end < 0.0) closed.end = std::max(fallback_end, closed.start);
      out.push_back(closed);
    }
  }
  return out;
}

double NodePool::job_lease_seconds(std::uint32_t job) const {
  auto it = job_seconds_.find(job);
  return it == job_seconds_.end() ? 0.0 : it->second;
}

double NodePool::tenant_lease_seconds(const std::string& tenant) const {
  auto it = tenant_seconds_.find(tenant);
  return it == tenant_seconds_.end() ? 0.0 : it->second;
}

std::size_t NodePool::leasable() const {
  std::size_t count = 0;
  for (const auto& n : nodes_) {
    if (n.state == State::Cold || n.state == State::Provisioned) ++count;
  }
  return count;
}

}  // namespace cloudburst::workload
