// Multi-tenant workload manager: concurrent jobs over one shared platform.
//
// Accepts a stream of JobSpecs (deterministic arrival times — see
// arrivals.hpp), multiplexes their actor trees over a single
// cluster::Platform inside one DES run, and aggregates per-job, per-tenant,
// and whole-platform results. Sits *above* the per-job JobPool: the head of
// each job still batches its own chunks; this layer decides which jobs run
// at all (admission: FIFO / SJF run-to-completion, FairShare / Priority
// concurrent) and, through a CoreSlotArbiter, which job's slave computes on
// each contended core (chunk-granular time sharing).
//
// Sharing rules:
//  * network links, stores, and retry machinery are shared by construction
//    (same Platform);
//  * concurrent jobs attaching the same cache::CacheFleet must describe the
//    same dataset (chunk ids key the cache); give unrelated jobs separate
//    fleets;
//  * cloud instances are billed once per physical node across all jobs that
//    rented it (elastic activations included) — the per-tenant attribution
//    then splits the real platform bill, component by component, exactly.
//
// A one-job FIFO workload reduces to middleware::run_distributed — same
// actor construction order, no arbiter handshake, byte-identical results.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "cluster/platform.hpp"
#include "middleware/job_execution.hpp"
#include "net/messaging.hpp"
#include "workload/arrivals.hpp"
#include "workload/core_slot_arbiter.hpp"
#include "workload/node_pool.hpp"
#include "workload/workload.hpp"

namespace cloudburst::workload {

class WorkloadManager {
 public:
  WorkloadManager(cluster::Platform& platform, WorkloadOptions options);
  ~WorkloadManager();

  /// Queue `spec` for submission at `at_seconds` (sim time). Validates the
  /// spec immediately (throws std::invalid_argument on a bad one). Returns
  /// the job id (1-based, in submit-call order). Call before run().
  std::uint32_t submit(JobSpec spec, double at_seconds);

  /// Submit specs[i] at trace.at(i); sizes must match.
  void submit_all(std::vector<JobSpec> specs, const ArrivalTrace& trace);

  /// Drain the simulation and aggregate. Throws if no job was submitted or
  /// any job failed to finish (a deadlocked workload).
  WorkloadResult run();

 private:
  struct Job {
    std::uint32_t id = 0;
    JobSpec spec;
    middleware::RunOptions effective;  ///< spec.options with the tracer override
    double submit_seconds = 0.0;
    double start_seconds = 0.0;
    double finish_seconds = 0.0;
    double estimate_seconds = 0.0;  ///< SJF ranking key
    std::uint32_t preemptions = 0;
    bool started = false;
    bool finished = false;
    bool rejected = false;  ///< admission quota refused it; never queued
    QuotaReject reject_reason = QuotaReject::None;
    std::uint64_t bytes = 0;            ///< layout.total_bytes(), quota input
    double burn_usd_per_hour = 0.0;     ///< estimated cloud burn, quota input
    std::unique_ptr<middleware::JobExecution> exec;
  };

  /// One in-progress cross-job drain (directory NodeDraining -> node
  /// retirement once every affected job's slave has vacated).
  struct DrainState {
    cluster::ClusterId site = 0;
    std::uint32_t node_index = 0;
    bool assembling = false;  ///< begin_cross_job_drain is mid-loop
    std::set<std::uint32_t> waiting_jobs;
  };

  bool concurrent_policy() const {
    return options_.policy == SchedulingPolicy::FairShare ||
           options_.policy == SchedulingPolicy::Priority;
  }
  void on_submitted(Job& job);
  /// Start whatever the admission policy allows right now.
  void pump();
  void start_job(Job& job);
  void on_job_finished(Job& job);
  /// Install this job's handler for `ep` (first route on an endpoint also
  /// installs the demultiplexing mailbox).
  void add_route(net::EndpointId ep, std::uint32_t job,
                 std::function<void(net::EndpointId, middleware::Message)> handler);
  void record(trace::EventKind kind, const Job& job, std::uint64_t b = 0);
  WorkloadResult aggregate();

  /// Quota check at submission time; returns the violated limit (None = admit).
  QuotaReject admission_check(const Job& job) const;
  /// A slave of `job` vacated `ep` (pool lease release + drain settlement).
  void on_slave_vacated(Job& job, net::EndpointId ep);
  /// Directory NodeDraining: block pool leases, ask every running job to
  /// drain its slave on the node, retire the node once they all vacated.
  void begin_cross_job_drain(cluster::ClusterId site, std::uint32_t node_index);
  /// All waiting jobs vacated `ep`: complete the directory retirement.
  void settle_drain(net::EndpointId ep);
  double now_seconds() const;

  cluster::Platform& platform_;
  WorkloadOptions options_;
  net::Postman<middleware::Message> postman_;
  std::unique_ptr<CoreSlotArbiter> arbiter_;  ///< concurrent policies only
  std::unique_ptr<NodePool> pool_;            ///< WorkloadOptions::pool.enabled

  std::vector<std::unique_ptr<Job>> jobs_;  ///< by id - 1; stable storage
  std::vector<std::uint32_t> queue_;        ///< submitted, not yet started (arrival order)
  std::uint32_t active_ = 0;
  bool pump_pending_ = false;  ///< a deferred pump event is already queued
  bool running_ = false;

  // --- dynamic control plane -----------------------------------------------
  directory::PlatformDirectory::WatchId directory_watch_ = 0;
  std::map<net::EndpointId, DrainState> drains_;
  /// Per-tenant in-flight usage the admission quotas meter.
  struct TenantUsage {
    std::uint32_t inflight_jobs = 0;
    std::uint64_t inflight_bytes = 0;
    double burn_usd_per_hour = 0.0;
  };
  std::map<std::string, TenantUsage> usage_;

  /// Per-endpoint, per-job-id message routes (Message::job demux).
  std::map<net::EndpointId,
           std::map<std::uint32_t,
                    std::function<void(net::EndpointId, middleware::Message)>>>
      routes_;
};

}  // namespace cloudburst::workload
