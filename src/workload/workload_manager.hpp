// Multi-tenant workload manager: concurrent jobs over one shared platform.
//
// Accepts a stream of JobSpecs (deterministic arrival times — see
// arrivals.hpp), multiplexes their actor trees over a single
// cluster::Platform inside one DES run, and aggregates per-job, per-tenant,
// and whole-platform results. Sits *above* the per-job JobPool: the head of
// each job still batches its own chunks; this layer decides which jobs run
// at all (admission: FIFO / SJF run-to-completion, FairShare / Priority
// concurrent) and, through a CoreSlotArbiter, which job's slave computes on
// each contended core (chunk-granular time sharing).
//
// Sharing rules:
//  * network links, stores, and retry machinery are shared by construction
//    (same Platform);
//  * concurrent jobs attaching the same cache::CacheFleet must describe the
//    same dataset (chunk ids key the cache); give unrelated jobs separate
//    fleets;
//  * cloud instances are billed once per physical node across all jobs that
//    rented it (elastic activations included) — the per-tenant attribution
//    then splits the real platform bill, component by component, exactly.
//
// A one-job FIFO workload reduces to middleware::run_distributed — same
// actor construction order, no arbiter handshake, byte-identical results.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "cluster/platform.hpp"
#include "middleware/job_execution.hpp"
#include "net/messaging.hpp"
#include "workload/arrivals.hpp"
#include "workload/core_slot_arbiter.hpp"
#include "workload/workload.hpp"

namespace cloudburst::workload {

class WorkloadManager {
 public:
  WorkloadManager(cluster::Platform& platform, WorkloadOptions options);

  /// Queue `spec` for submission at `at_seconds` (sim time). Validates the
  /// spec immediately (throws std::invalid_argument on a bad one). Returns
  /// the job id (1-based, in submit-call order). Call before run().
  std::uint32_t submit(JobSpec spec, double at_seconds);

  /// Submit specs[i] at trace.at(i); sizes must match.
  void submit_all(std::vector<JobSpec> specs, const ArrivalTrace& trace);

  /// Drain the simulation and aggregate. Throws if no job was submitted or
  /// any job failed to finish (a deadlocked workload).
  WorkloadResult run();

 private:
  struct Job {
    std::uint32_t id = 0;
    JobSpec spec;
    middleware::RunOptions effective;  ///< spec.options with the tracer override
    double submit_seconds = 0.0;
    double start_seconds = 0.0;
    double finish_seconds = 0.0;
    double estimate_seconds = 0.0;  ///< SJF ranking key
    std::uint32_t preemptions = 0;
    bool started = false;
    bool finished = false;
    std::unique_ptr<middleware::JobExecution> exec;
  };

  bool concurrent_policy() const {
    return options_.policy == SchedulingPolicy::FairShare ||
           options_.policy == SchedulingPolicy::Priority;
  }
  void on_submitted(Job& job);
  /// Start whatever the admission policy allows right now.
  void pump();
  void start_job(Job& job);
  void on_job_finished(Job& job);
  /// Install this job's handler for `ep` (first route on an endpoint also
  /// installs the demultiplexing mailbox).
  void add_route(net::EndpointId ep, std::uint32_t job,
                 std::function<void(net::EndpointId, middleware::Message)> handler);
  void record(trace::EventKind kind, const Job& job, std::uint64_t b = 0);
  WorkloadResult aggregate();

  cluster::Platform& platform_;
  WorkloadOptions options_;
  net::Postman<middleware::Message> postman_;
  std::unique_ptr<CoreSlotArbiter> arbiter_;  ///< concurrent policies only

  std::vector<std::unique_ptr<Job>> jobs_;  ///< by id - 1; stable storage
  std::vector<std::uint32_t> queue_;        ///< submitted, not yet started (arrival order)
  std::uint32_t active_ = 0;
  bool pump_pending_ = false;  ///< a deferred pump event is already queued
  bool running_ = false;

  /// Per-endpoint, per-job-id message routes (Message::job demux).
  std::map<net::EndpointId,
           std::map<std::uint32_t,
                    std::function<void(net::EndpointId, middleware::Message)>>>
      routes_;
};

}  // namespace cloudburst::workload
