#include "workload/core_slot_arbiter.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace cloudburst::workload {

void CoreSlotArbiter::register_job(std::uint32_t job, JobShare share) {
  if (tenants_.find(share.tenant) == tenants_.end()) {
    // Start-time fairness: a tenant arriving mid-run competes from the
    // current floor, it does not get to "catch up" on service it never
    // wanted while absent.
    double floor = std::numeric_limits<double>::infinity();
    for (const auto& [name, t] : tenants_) floor = std::min(floor, t.service);
    Tenant t;
    t.weight = share.weight > 0.0 ? share.weight : 1.0;
    t.service = tenants_.empty() ? 0.0 : floor;
    tenants_[share.tenant] = t;
  }
  shares_[job] = std::move(share);
}

bool CoreSlotArbiter::acquire(net::EndpointId node, std::uint32_t job,
                              std::function<void()> grant) {
  Slot& slot = slots_[node];
  if (!slot.busy) {
    slot.busy = true;
    slot.holder = job;
    return true;
  }
  if (discipline_ == Discipline::Priority && slot.has_last_holder &&
      slot.last_holder == job && slot.holder != job) {
    const auto mine = shares_.find(job);
    const auto theirs = shares_.find(slot.holder);
    if (mine != shares_.end() && theirs != shares_.end() &&
        theirs->second.priority > mine->second.priority) {
      // The core this job ran on last went to a more urgent job at the chunk
      // boundary — that is the chunk-granular preemption.
      slot.has_last_holder = false;
      if (on_preemption_) on_preemption_(node, job, slot.holder);
    }
  }
  slot.waiting.push_back(Claim{job, next_seq_++, std::move(grant)});
  return false;
}

std::size_t CoreSlotArbiter::pick(const Slot& slot) const {
  std::size_t best = 0;
  switch (discipline_) {
    case Discipline::Fifo:
      // `waiting` is arrival-ordered; the front is the oldest claim.
      break;
    case Discipline::WeightedFair: {
      double best_service = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < slot.waiting.size(); ++i) {
        const auto share = shares_.find(slot.waiting[i].job);
        const std::string& tenant =
            share != shares_.end() ? share->second.tenant : std::string("default");
        const auto t = tenants_.find(tenant);
        const double service = t != tenants_.end() ? t->second.service : 0.0;
        if (service < best_service) {
          best_service = service;
          best = i;
        }
      }
      break;
    }
    case Discipline::Priority: {
      int best_priority = std::numeric_limits<int>::min();
      for (std::size_t i = 0; i < slot.waiting.size(); ++i) {
        const auto share = shares_.find(slot.waiting[i].job);
        const int priority = share != shares_.end() ? share->second.priority : 0;
        if (priority > best_priority) {
          best_priority = priority;
          best = i;
        }
      }
      break;
    }
  }
  return best;
}

void CoreSlotArbiter::hand_over(net::EndpointId node, Slot& slot) {
  (void)node;
  if (slot.waiting.empty()) return;
  const std::size_t idx = pick(slot);
  Claim claim = std::move(slot.waiting[idx]);
  slot.waiting.erase(slot.waiting.begin() + static_cast<std::ptrdiff_t>(idx));
  slot.busy = true;
  slot.holder = claim.job;
  claim.grant();
}

void CoreSlotArbiter::release(net::EndpointId node, std::uint32_t job,
                              double used_seconds) {
  const auto it = slots_.find(node);
  if (it == slots_.end() || !it->second.busy || it->second.holder != job) {
    throw std::logic_error("CoreSlotArbiter: release by a non-holder");
  }
  const auto share = shares_.find(job);
  if (share != shares_.end() && used_seconds > 0.0) {
    Tenant& tenant = tenants_[share->second.tenant];
    tenant.seconds += used_seconds;
    tenant.service += used_seconds / (tenant.weight > 0.0 ? tenant.weight : 1.0);
  }
  Slot& slot = it->second;
  slot.busy = false;
  slot.has_last_holder = true;
  slot.last_holder = job;
  hand_over(node, slot);
}

void CoreSlotArbiter::forget(net::EndpointId node, std::uint32_t job) {
  const auto it = slots_.find(node);
  if (it == slots_.end()) return;
  Slot& slot = it->second;
  slot.waiting.erase(
      std::remove_if(slot.waiting.begin(), slot.waiting.end(),
                     [job](const Claim& c) { return c.job == job; }),
      slot.waiting.end());
  if (slot.busy && slot.holder == job) {
    slot.busy = false;
    hand_over(node, slot);
  }
}

double CoreSlotArbiter::tenant_service(const std::string& tenant) const {
  const auto it = tenants_.find(tenant);
  return it != tenants_.end() ? it->second.service : 0.0;
}

double CoreSlotArbiter::tenant_seconds(const std::string& tenant) const {
  const auto it = tenants_.find(tenant);
  return it != tenants_.end() ? it->second.seconds : 0.0;
}

}  // namespace cloudburst::workload
