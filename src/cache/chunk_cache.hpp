// Site-local chunk cache.
//
// The paper's time decomposition is dominated by remote data retrieval, and
// the iterative applications re-fetch the *same* S3 chunks on every pass.
// A ChunkCache interposes between the slave fetch path and any StoreId: a
// chunk that was fetched once is kept on the site's local scratch disk, and
// a later read pays a local-disk access instead of the WAN + object-store
// path. The cache is bookkeeping only — it owns no simulator state, so one
// instance can outlive the per-pass Platform rebuilds of run_iterative and
// keep warm contents across iterations.
//
// Policy surface (all in CacheConfig):
//  * capacity_bytes  — per-site budget; inserting past it evicts victims;
//  * policy          — LRU / LFU / FIFO victim selection;
//  * admit_max_fraction — size-aware admission filter: a chunk larger than
//    this fraction of the capacity is never admitted (one scan-sized object
//    must not flush the whole working set);
//  * hit_latency_seconds / hit_bandwidth — the local read model a hit pays;
//  * cache_local_reads — by default reads from the site's own *disk* store
//    are not cached (the cache would be no faster than the disk it mirrors);
//    object-store reads are always cacheable, even from the store the site
//    treats as local, because they pay request latency and GET pricing.
//
// The cache is default-off (RunOptions::cache == nullptr): paper-fidelity
// runs are byte-identical to the seed reproduction.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "storage/data_layout.hpp"

namespace cloudburst::cache {

enum class EvictionPolicy : std::uint8_t { Lru, Lfu, Fifo };

const char* to_string(EvictionPolicy policy);

/// Knobs of the prefetcher that rides on the cache (see prefetcher.hpp).
struct PrefetchConfig {
  bool enabled = false;
  /// Max prefetch fetches in flight per site.
  unsigned depth = 2;
  /// Connections per prefetch GET; 0 = the run's retrieval_streams.
  unsigned streams = 0;
};

struct CacheConfig {
  std::uint64_t capacity_bytes = 0;  ///< per-site budget; 0 disables the cache
  EvictionPolicy policy = EvictionPolicy::Lru;
  double admit_max_fraction = 1.0;  ///< admission filter (fraction of capacity)

  /// Local read model a hit pays (site scratch disk; no network contention).
  double hit_latency_seconds = 0.002;
  double hit_bandwidth = 800e6;  ///< bytes/sec

  /// Also cache reads served by the site's own disk-backed store (off by
  /// default: the cache medium is no faster than the disk it would mirror).
  bool cache_local_reads = false;

  PrefetchConfig prefetch;
};

/// One site's cache: chunk ids -> resident bytes, with policy bookkeeping.
class ChunkCache {
 public:
  ChunkCache(const CacheConfig& config) : config_(config) {}

  /// Insertions not billed to any tenant (the default, and every run without
  /// a StoreQos attached).
  static constexpr std::uint32_t kSharedOwner = 0xffffffffu;

  struct InsertResult {
    bool admitted = false;
    /// (chunk, bytes) evicted to make room, in eviction order.
    std::vector<std::pair<storage::ChunkId, std::uint64_t>> evicted;
  };

  /// Admit `chunk` (`bytes` resident size), evicting per policy as needed.
  /// Re-inserting a resident chunk refreshes it and evicts nothing.
  /// `owner` bills the bytes to a tenant: a budgeted owner evicts its own
  /// entries when over its budget, and global evictions never claim another
  /// budgeted tenant's entries (see set_owner_budget).
  InsertResult insert(storage::ChunkId chunk, std::uint64_t bytes,
                      bool prefetched = false, std::uint32_t owner = kSharedOwner);

  /// Cap `owner`'s resident bytes at `budget_bytes` (its cache share). Once
  /// any budget exists, unbudgeted insertions (other tenants, kSharedOwner)
  /// can no longer evict a budgeted tenant's working set.
  void set_owner_budget(std::uint32_t owner, std::uint64_t budget_bytes) {
    budgets_[owner] = budget_bytes;
  }
  std::uint64_t owner_bytes(std::uint32_t owner) const {
    const auto it = owner_used_.find(owner);
    return it != owner_used_.end() ? it->second : 0;
  }

  /// Lookup that counts: touches the entry (LRU recency / LFU frequency) and
  /// records a lifetime hit or miss.
  bool hit(storage::ChunkId chunk);

  /// Silent membership test (prefetcher dedup, tests); no stats, no touch.
  bool contains(storage::ChunkId chunk) const { return entries_.count(chunk) > 0; }

  /// Drop one chunk (returns false if absent) or everything.
  bool erase(storage::ChunkId chunk);
  void clear();

  std::uint64_t bytes_used() const { return used_; }
  std::uint64_t capacity() const { return config_.capacity_bytes; }
  std::size_t size() const { return entries_.size(); }

  // Lifetime counters (across runs; the per-run numbers live in RunResult).
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t insertions() const { return insertions_; }
  std::uint64_t evictions() const { return evictions_; }

 private:
  struct Entry {
    std::uint64_t bytes = 0;
    std::uint64_t freq = 0;       ///< LFU
    std::uint64_t last_used = 0;  ///< LRU (logical tick)
    std::uint64_t inserted = 0;   ///< FIFO (logical tick)
    bool prefetched = false;
    std::uint32_t owner = kSharedOwner;
  };

  /// Policy victim among entries `inserter` may evict: its own, plus any
  /// unbudgeted entry. Returns false when every entry is another budgeted
  /// tenant's (nothing evictable).
  bool victim_for(std::uint32_t inserter, bool own_only,
                  storage::ChunkId* out) const;
  void evict_entry(storage::ChunkId id, InsertResult& result);

  const CacheConfig& config_;
  std::unordered_map<storage::ChunkId, Entry> entries_;
  std::map<std::uint32_t, std::uint64_t> budgets_;     ///< owner -> byte cap
  std::map<std::uint32_t, std::uint64_t> owner_used_;  ///< owner -> resident
  std::uint64_t used_ = 0;
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t insertions_ = 0;
  std::uint64_t evictions_ = 0;
};

/// The caches of a deployment: one ChunkCache per site, created on demand,
/// all sharing one config. Owned by the caller and passed into runs via
/// RunOptions::cache, so contents persist across per-pass Platform rebuilds.
class CacheFleet {
 public:
  explicit CacheFleet(CacheConfig config) : config_(std::move(config)) {}

  ChunkCache& site(std::uint32_t site_id);
  const CacheConfig& config() const { return config_; }

  /// Per-tenant capacity share, applied to every existing and future site
  /// cache (StoreQos::cache_budgets feeds this).
  void set_owner_budget(std::uint32_t owner, std::uint64_t budget_bytes);

  /// Drop every site's contents (cold restart); lifetime counters survive.
  void clear();

  // Fleet-wide lifetime counters.
  std::uint64_t hits() const;
  std::uint64_t misses() const;

 private:
  CacheConfig config_;
  std::map<std::uint32_t, ChunkCache> sites_;
  std::map<std::uint32_t, std::uint64_t> owner_budgets_;
};

}  // namespace cloudburst::cache
