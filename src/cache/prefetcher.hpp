// Predictive prefetcher: turns the head-node scheduler's batch lookahead
// into overlapped WAN transfers.
//
// When the head grants a master a consecutive batch, every chunk in the
// cluster pool beyond the one a slave is currently fetching is *known future
// work*. The prefetcher watches the pool and issues asynchronous
// multi-connection GETs for those granted-but-unfetched chunks into the
// site's ChunkCache, so the WAN transfer of job i+1 overlaps the processing
// of job i beyond what the slave's own pipeline_depth covers.
//
// Guarantees:
//  * a chunk is prefetched at most once per *assignment epoch* (issued-set
//    dedup) and never when it is already resident in the site cache;
//    release() reopens a chunk that crash recovery re-enqueued;
//  * a chunk assigned to a slave while its prefetch is still in flight is
//    *joined* (the slave waits on the existing transfer) — the prefetcher
//    never causes a second GET for the same bytes. Waiters are registered
//    with an owner token so a crashed slave's callbacks can be dropped;
//  * chunks assigned before their prefetch was issued are cancelled out of
//    the queue (the slave's own fetch is already the transfer);
//  * a prefetch whose (possibly retried) GET permanently fails is aborted:
//    accounting is reverted via Env::on_abort, waiters are notified with
//    ok = false (they fall back to their own fetch), and the chunk becomes
//    eligible for a later prefetch again.
//
// A Prefetcher is a per-run actor (it holds simulation callbacks); the
// ChunkCache it fills is the persistent, cross-run state. The runtime builds
// one per compute site when CacheConfig::prefetch.enabled is set.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "cache/chunk_cache.hpp"
#include "net/network.hpp"
#include "storage/store_service.hpp"
#include "trace/trace.hpp"

namespace cloudburst::cache {

class Prefetcher {
 public:
  /// Narrow per-run wiring (kept free of middleware types so cb_cache stays
  /// a leaf library under cb_middleware).
  struct Env {
    /// Stored chunks move compressed (>= 1.0; the slave fetch path divides
    /// by the same ratio).
    double compression_ratio = 1.0;
    /// Issue one (possibly retrying) GET of `wire` from store `s`; `done`
    /// fires with the transfer's final outcome. The runtime wires this to
    /// the store fetch wrapped in the run's RetryPolicy.
    std::function<void(storage::StoreId s, const storage::ChunkInfo& wire,
                       std::function<void(bool ok)> done)>
        fetch;
    std::function<bool(storage::StoreId)> cacheable;
    /// Event sink with the actor name pre-bound ("prefetch-<site>"); may be
    /// null when no tracer is attached.
    std::function<void(trace::EventKind, std::uint64_t, std::uint64_t)> trace;
    /// Accounting hook fired per issued GET (recorder bytes_from_store etc.).
    std::function<void(storage::StoreId, const storage::ChunkInfo&)> on_issue;
    /// Reverts on_issue when the GET permanently failed: nothing was
    /// delivered, so the issue-time store charge must not stand.
    std::function<void(storage::StoreId, const storage::ChunkInfo&)> on_abort;
    /// Replica resolution: store to GET `chunk` from. Null (the default) means
    /// the layout primary; the runtime binds this to the run's ReplicaSet so
    /// prefetches also read the cheapest live copy.
    std::function<storage::StoreId(storage::ChunkId)> resolve;
    /// Tenant the prefetched bytes are billed to in the cache (per-tenant
    /// capacity shares); default = unbudgeted shared residency.
    std::uint32_t cache_owner = ChunkCache::kSharedOwner;
  };

  Prefetcher(ChunkCache& cache, PrefetchConfig config, Env env)
      : cache_(cache), config_(config), env_(std::move(env)) {}

  /// The master's pool changed (head granted a batch): enqueue every
  /// granted-but-unfetched chunk and fill the in-flight window.
  void on_pool_update(const std::deque<storage::ChunkId>& pool,
                      const storage::DataLayout& layout);

  /// `chunk` was assigned to a slave: drop it from the queue if its prefetch
  /// has not been issued yet (the slave's fetch is the transfer now).
  void cancel(storage::ChunkId chunk);

  /// A prefetch GET for `chunk` is still in flight.
  bool in_flight(storage::ChunkId chunk) const { return inflight_.count(chunk) > 0; }

  /// Join an in-flight prefetch: `cb(ok)` fires when the transfer settles.
  /// `owner` identifies the registrant (slave endpoint) so drop_owner can
  /// cancel the callback if the registrant dies while joined.
  void wait_for(storage::ChunkId chunk, std::uint64_t owner,
                std::function<void(bool ok)> cb);

  /// A slave died: discard every waiter callback it registered. Its joined
  /// transfers keep flying (the bytes still land in the cache for others).
  void drop_owner(std::uint64_t owner);

  /// Crash recovery re-enqueued `chunk`: clear it from the issued/consumed
  /// dedup sets so the recovery copy can be prefetched too. A still-in-flight
  /// transfer stays deduped — the re-assigned slave joins it instead.
  void release(storage::ChunkId chunk);

  /// A slave consumed a prefetched chunk (joined it or hit it in the cache).
  void mark_consumed(storage::ChunkId chunk);

  /// End of run: emit PrefetchWasted for every issued-but-never-consumed
  /// chunk and return how many there were.
  std::uint64_t finish();

  std::uint64_t issued_count() const { return issued_.size(); }
  std::uint64_t consumed_count() const { return consumed_.size(); }

 private:
  void pump();
  void on_prefetched(storage::ChunkId chunk, std::uint64_t resident_bytes, bool ok);

  struct Waiter {
    std::uint64_t owner = 0;
    std::function<void(bool ok)> cb;
  };

  /// One airborne GET. The store is pinned at issue time so an abort reverts
  /// exactly the charge on_issue made, even if the replica set re-resolves
  /// the chunk somewhere else meanwhile.
  struct Inflight {
    storage::StoreId store = storage::kInvalidStore;
    std::vector<Waiter> waiters;
  };

  storage::StoreId resolve_store(storage::ChunkId chunk) const;

  ChunkCache& cache_;
  PrefetchConfig config_;
  Env env_;
  const storage::DataLayout* layout_ = nullptr;

  std::deque<storage::ChunkId> queue_;  ///< candidate order
  std::set<storage::ChunkId> queued_;   ///< authoritative queue membership
  std::map<storage::ChunkId, Inflight> inflight_;
  std::set<storage::ChunkId> issued_;
  std::set<storage::ChunkId> consumed_;
};

}  // namespace cloudburst::cache
