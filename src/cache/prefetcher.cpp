#include "cache/prefetcher.hpp"

#include <algorithm>
#include <utility>

namespace cloudburst::cache {

storage::StoreId Prefetcher::resolve_store(storage::ChunkId chunk) const {
  if (env_.resolve) return env_.resolve(chunk);
  return layout_->store_of(chunk);
}

void Prefetcher::on_pool_update(const std::deque<storage::ChunkId>& pool,
                                const storage::DataLayout& layout) {
  if (!config_.enabled) return;
  layout_ = &layout;
  for (const storage::ChunkId chunk : pool) {
    if (queued_.count(chunk) || issued_.count(chunk)) continue;
    if (cache_.contains(chunk)) continue;
    if (env_.cacheable && !env_.cacheable(resolve_store(chunk))) continue;
    queued_.insert(chunk);
    queue_.push_back(chunk);
  }
  pump();
}

void Prefetcher::cancel(storage::ChunkId chunk) {
  // Only queue membership is revoked; an already-issued GET keeps flying and
  // the slave joins it via wait_for instead of fetching again.
  queued_.erase(chunk);
}

void Prefetcher::wait_for(storage::ChunkId chunk, std::uint64_t owner,
                          std::function<void(bool)> cb) {
  inflight_.at(chunk).waiters.push_back(Waiter{owner, std::move(cb)});
}

void Prefetcher::drop_owner(std::uint64_t owner) {
  for (auto& [chunk, flight] : inflight_) {
    auto& waiters = flight.waiters;
    waiters.erase(std::remove_if(waiters.begin(), waiters.end(),
                                 [owner](const Waiter& w) { return w.owner == owner; }),
                  waiters.end());
  }
}

void Prefetcher::release(storage::ChunkId chunk) {
  // An in-flight transfer keeps its dedup entry: pump() does not check
  // inflight_, so clearing issued_ here would let a second GET of the same
  // bytes launch. The re-assigned slave joins the airborne one instead.
  if (inflight_.count(chunk)) return;
  issued_.erase(chunk);
  consumed_.erase(chunk);
}

void Prefetcher::mark_consumed(storage::ChunkId chunk) {
  if (issued_.count(chunk)) consumed_.insert(chunk);
}

std::uint64_t Prefetcher::finish() {
  std::uint64_t wasted = 0;
  for (const storage::ChunkId chunk : issued_) {
    if (consumed_.count(chunk)) continue;
    ++wasted;
    if (env_.trace) {
      const std::uint64_t bytes =
          layout_ ? layout_->chunk(chunk).bytes : std::uint64_t(0);
      env_.trace(trace::EventKind::PrefetchWasted, chunk, bytes);
    }
  }
  return wasted;
}

void Prefetcher::pump() {
  while (inflight_.size() < config_.depth && !queue_.empty()) {
    const storage::ChunkId chunk = queue_.front();
    queue_.pop_front();
    if (!queued_.erase(chunk)) continue;  // cancelled while queued
    if (issued_.count(chunk) || cache_.contains(chunk)) continue;

    const storage::ChunkInfo& info = layout_->chunk(chunk);
    storage::ChunkInfo wire = info;
    wire.bytes = static_cast<std::uint64_t>(
        static_cast<double>(info.bytes) / env_.compression_ratio);
    if (wire.bytes == 0) wire.bytes = 1;

    const storage::StoreId store = resolve_store(chunk);
    issued_.insert(chunk);
    inflight_.emplace(chunk, Inflight{store, {}});
    if (env_.trace) env_.trace(trace::EventKind::PrefetchIssued, chunk, info.bytes);
    if (env_.on_issue) env_.on_issue(store, info);

    const std::uint64_t resident = wire.bytes;
    env_.fetch(store, wire,
               [this, chunk, resident](bool ok) { on_prefetched(chunk, resident, ok); });
  }
}

void Prefetcher::on_prefetched(storage::ChunkId chunk, std::uint64_t resident_bytes,
                               bool ok) {
  const auto it = inflight_.find(chunk);
  const storage::StoreId issued_store = it->second.store;
  auto waiters = std::move(it->second.waiters);
  inflight_.erase(it);
  if (ok) {
    const auto result = cache_.insert(chunk, resident_bytes, /*prefetched=*/true,
                                      env_.cache_owner);
    if (env_.trace) {
      for (const auto& [evictee, bytes] : result.evicted) {
        env_.trace(trace::EventKind::CacheEvict, evictee, bytes);
      }
    }
  } else {
    // Permanent failure: nothing landed. Revert the issue-time accounting
    // (against the store charged at issue, which a replica re-resolution may
    // no longer return) and reopen the chunk so a later pool update may try
    // again.
    if (env_.on_abort && layout_) {
      env_.on_abort(issued_store, layout_->chunk(chunk));
    }
    issued_.erase(chunk);
    consumed_.erase(chunk);
  }
  for (auto& w : waiters) w.cb(ok);
  pump();
}

}  // namespace cloudburst::cache
