#include "cache/prefetcher.hpp"

#include <utility>

namespace cloudburst::cache {

void Prefetcher::on_pool_update(const std::deque<storage::ChunkId>& pool,
                                const storage::DataLayout& layout) {
  if (!config_.enabled) return;
  layout_ = &layout;
  for (const storage::ChunkId chunk : pool) {
    if (queued_.count(chunk) || issued_.count(chunk)) continue;
    if (cache_.contains(chunk)) continue;
    if (env_.cacheable && !env_.cacheable(layout.store_of(chunk))) continue;
    queued_.insert(chunk);
    queue_.push_back(chunk);
  }
  pump();
}

void Prefetcher::cancel(storage::ChunkId chunk) {
  // Only queue membership is revoked; an already-issued GET keeps flying and
  // the slave joins it via wait_for instead of fetching again.
  queued_.erase(chunk);
}

void Prefetcher::wait_for(storage::ChunkId chunk, std::function<void()> cb) {
  inflight_.at(chunk).push_back(std::move(cb));
}

void Prefetcher::mark_consumed(storage::ChunkId chunk) {
  if (issued_.count(chunk)) consumed_.insert(chunk);
}

std::uint64_t Prefetcher::finish() {
  std::uint64_t wasted = 0;
  for (const storage::ChunkId chunk : issued_) {
    if (consumed_.count(chunk)) continue;
    ++wasted;
    if (env_.trace) {
      const std::uint64_t bytes =
          layout_ ? layout_->chunk(chunk).bytes : std::uint64_t(0);
      env_.trace(trace::EventKind::PrefetchWasted, chunk, bytes);
    }
  }
  return wasted;
}

void Prefetcher::pump() {
  while (inflight_.size() < config_.depth && !queue_.empty()) {
    const storage::ChunkId chunk = queue_.front();
    queue_.pop_front();
    if (!queued_.erase(chunk)) continue;  // cancelled while queued
    if (issued_.count(chunk) || cache_.contains(chunk)) continue;

    const storage::ChunkInfo& info = layout_->chunk(chunk);
    storage::ChunkInfo wire = info;
    wire.bytes = static_cast<std::uint64_t>(
        static_cast<double>(info.bytes) / env_.compression_ratio);
    if (wire.bytes == 0) wire.bytes = 1;

    issued_.insert(chunk);
    inflight_.emplace(chunk, std::vector<std::function<void()>>{});
    if (env_.trace) env_.trace(trace::EventKind::PrefetchIssued, chunk, info.bytes);
    if (env_.on_issue) env_.on_issue(layout_->store_of(chunk), info);

    const std::uint64_t resident = wire.bytes;
    env_.store(layout_->store_of(chunk))
        .fetch(env_.dst, wire, env_.streams,
               [this, chunk, resident] { on_prefetched(chunk, resident); });
  }
}

void Prefetcher::on_prefetched(storage::ChunkId chunk, std::uint64_t resident_bytes) {
  const auto result = cache_.insert(chunk, resident_bytes, /*prefetched=*/true);
  if (env_.trace) {
    for (const auto& [evictee, bytes] : result.evicted) {
      env_.trace(trace::EventKind::CacheEvict, evictee, bytes);
    }
  }
  const auto it = inflight_.find(chunk);
  auto waiters = std::move(it->second);
  inflight_.erase(it);
  for (auto& cb : waiters) cb();
  pump();
}

}  // namespace cloudburst::cache
