#include "cache/chunk_cache.hpp"

#include <limits>

namespace cloudburst::cache {

const char* to_string(EvictionPolicy policy) {
  switch (policy) {
    case EvictionPolicy::Lru: return "lru";
    case EvictionPolicy::Lfu: return "lfu";
    case EvictionPolicy::Fifo: return "fifo";
  }
  return "?";
}

bool ChunkCache::victim_for(std::uint32_t inserter, bool own_only,
                            storage::ChunkId* out) const {
  bool found = false;
  storage::ChunkId best_id = storage::ChunkId(0);
  std::uint64_t best_primary = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t best_secondary = std::numeric_limits<std::uint64_t>::max();
  for (const auto& [id, e] : entries_) {
    if (own_only) {
      if (e.owner != inserter) continue;
    } else if (e.owner != inserter && budgets_.count(e.owner)) {
      continue;  // another budgeted tenant's working set is off limits
    }
    std::uint64_t primary = 0;
    std::uint64_t secondary = e.last_used;  // tie-break: least recently used
    switch (config_.policy) {
      case EvictionPolicy::Lru: primary = e.last_used; break;
      case EvictionPolicy::Lfu: primary = e.freq; break;
      case EvictionPolicy::Fifo: primary = e.inserted; break;
    }
    if (primary < best_primary ||
        (primary == best_primary && secondary < best_secondary)) {
      best_primary = primary;
      best_secondary = secondary;
      best_id = id;
      found = true;
    }
  }
  if (found) *out = best_id;
  return found;
}

void ChunkCache::evict_entry(storage::ChunkId id, InsertResult& result) {
  const auto it = entries_.find(id);
  used_ -= it->second.bytes;
  if (it->second.owner != kSharedOwner) {
    owner_used_[it->second.owner] -= it->second.bytes;
  }
  result.evicted.emplace_back(id, it->second.bytes);
  entries_.erase(it);
  ++evictions_;
}

ChunkCache::InsertResult ChunkCache::insert(storage::ChunkId chunk, std::uint64_t bytes,
                                            bool prefetched, std::uint32_t owner) {
  InsertResult result;
  if (config_.capacity_bytes == 0) return result;

  if (const auto it = entries_.find(chunk); it != entries_.end()) {
    // Refresh: a re-fetch of a resident chunk just renews its policy state.
    ++tick_;
    it->second.last_used = tick_;
    ++it->second.freq;
    result.admitted = true;
    return result;
  }

  // Size-aware admission: one oversized object must not flush the set.
  const double max_bytes = config_.admit_max_fraction *
                           static_cast<double>(config_.capacity_bytes);
  if (bytes == 0 || static_cast<double>(bytes) > max_bytes ||
      bytes > config_.capacity_bytes) {
    return result;
  }

  // Per-tenant share: an owner over its budget evicts only itself.
  const auto budget = budgets_.find(owner);
  if (budget != budgets_.end()) {
    if (bytes > budget->second) return result;
    while (owner_bytes(owner) + bytes > budget->second) {
      storage::ChunkId evictee;
      if (!victim_for(owner, /*own_only=*/true, &evictee)) break;
      evict_entry(evictee, result);
    }
  }

  while (used_ + bytes > config_.capacity_bytes) {
    storage::ChunkId evictee;
    if (!victim_for(owner, /*own_only=*/false, &evictee)) {
      // Everything resident belongs to other budgeted tenants: not admitted.
      return result;
    }
    evict_entry(evictee, result);
  }

  ++tick_;
  Entry e;
  e.bytes = bytes;
  e.freq = 1;
  e.last_used = tick_;
  e.inserted = tick_;
  e.prefetched = prefetched;
  e.owner = owner;
  entries_.emplace(chunk, e);
  used_ += bytes;
  if (owner != kSharedOwner) owner_used_[owner] += bytes;
  ++insertions_;
  result.admitted = true;
  return result;
}

bool ChunkCache::hit(storage::ChunkId chunk) {
  const auto it = entries_.find(chunk);
  if (it == entries_.end()) {
    ++misses_;
    return false;
  }
  ++tick_;
  it->second.last_used = tick_;
  ++it->second.freq;
  ++hits_;
  return true;
}

bool ChunkCache::erase(storage::ChunkId chunk) {
  const auto it = entries_.find(chunk);
  if (it == entries_.end()) return false;
  used_ -= it->second.bytes;
  if (it->second.owner != kSharedOwner) {
    owner_used_[it->second.owner] -= it->second.bytes;
  }
  entries_.erase(it);
  return true;
}

void ChunkCache::clear() {
  entries_.clear();
  owner_used_.clear();
  used_ = 0;
}

ChunkCache& CacheFleet::site(std::uint32_t site_id) {
  const auto it = sites_.find(site_id);
  if (it != sites_.end()) return it->second;
  ChunkCache& cache = sites_.emplace(site_id, ChunkCache(config_)).first->second;
  for (const auto& [owner, budget] : owner_budgets_) {
    cache.set_owner_budget(owner, budget);
  }
  return cache;
}

void CacheFleet::set_owner_budget(std::uint32_t owner, std::uint64_t budget_bytes) {
  owner_budgets_[owner] = budget_bytes;
  for (auto& [id, cache] : sites_) cache.set_owner_budget(owner, budget_bytes);
}

void CacheFleet::clear() {
  for (auto& [id, cache] : sites_) cache.clear();
}

std::uint64_t CacheFleet::hits() const {
  std::uint64_t total = 0;
  for (const auto& [id, cache] : sites_) total += cache.hits();
  return total;
}

std::uint64_t CacheFleet::misses() const {
  std::uint64_t total = 0;
  for (const auto& [id, cache] : sites_) total += cache.misses();
  return total;
}

}  // namespace cloudburst::cache
