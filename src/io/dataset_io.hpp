// On-disk dataset I/O — the file side of the paper's data organization.
//
// The paper's datasets live as files on the storage node / S3, described by
// an index the head node reads at startup. This module makes that concrete:
//  * a dataset file format (magic/version/unit-size header + raw units),
//  * export: split an in-memory dataset into the files of a DataLayout and
//    write them plus the serialized index into a directory,
//  * import: read it all back (whole files or chunk ranges — the slave's
//    read pattern),
//  * index file read/write.
// Everything validates sizes and headers; corruption is loud.
#pragma once

#include <filesystem>
#include <vector>

#include "engine/memory_dataset.hpp"
#include "storage/data_layout.hpp"

namespace cloudburst::io {

/// Write one dataset file (header + units).
void write_dataset_file(const std::filesystem::path& path,
                        const std::byte* units, std::uint64_t unit_count,
                        std::uint64_t unit_bytes);

/// Read a whole dataset file back.
engine::MemoryDataset read_dataset_file(const std::filesystem::path& path);

/// Read `count` units starting at `first_unit` — a chunk fetch.
std::vector<std::byte> read_unit_range(const std::filesystem::path& path,
                                       std::uint64_t first_unit, std::uint64_t count);

/// Unit metadata without reading the payload.
struct DatasetFileInfo {
  std::uint64_t unit_bytes = 0;
  std::uint64_t unit_count = 0;
};
DatasetFileInfo stat_dataset_file(const std::filesystem::path& path);

/// The data organizer: split `data` into the layout's files under `dir`
/// (using each FileInfo::name) and write the index as "index.cbx".
/// The layout's units must tile the dataset exactly.
void export_dataset(const std::filesystem::path& dir, const engine::MemoryDataset& data,
                    const storage::DataLayout& layout);

/// Rebuild the full in-memory dataset from an exported directory.
engine::MemoryDataset import_dataset(const std::filesystem::path& dir,
                                     const storage::DataLayout& layout);

/// Read the units of one chunk from an exported directory.
std::vector<std::byte> read_chunk(const std::filesystem::path& dir,
                                  const storage::DataLayout& layout,
                                  storage::ChunkId chunk);

void write_index_file(const std::filesystem::path& path,
                      const storage::DataLayout& layout);
storage::DataLayout read_index_file(const std::filesystem::path& path);

}  // namespace cloudburst::io
