#include "io/dataset_io.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace cloudburst::io {

namespace {

constexpr std::uint32_t kMagic = 0x43424446;  // "CBDF"
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderBytes = 4 + 4 + 8 + 8;

struct Header {
  std::uint64_t unit_bytes = 0;
  std::uint64_t unit_count = 0;
};

void write_header(std::ofstream& out, const Header& h) {
  out.write(reinterpret_cast<const char*>(&kMagic), 4);
  out.write(reinterpret_cast<const char*>(&kVersion), 4);
  out.write(reinterpret_cast<const char*>(&h.unit_bytes), 8);
  out.write(reinterpret_cast<const char*>(&h.unit_count), 8);
}

Header read_header(std::ifstream& in, const std::filesystem::path& path) {
  std::uint32_t magic = 0, version = 0;
  Header h;
  in.read(reinterpret_cast<char*>(&magic), 4);
  in.read(reinterpret_cast<char*>(&version), 4);
  in.read(reinterpret_cast<char*>(&h.unit_bytes), 8);
  in.read(reinterpret_cast<char*>(&h.unit_count), 8);
  if (!in) throw std::runtime_error("dataset file truncated header: " + path.string());
  if (magic != kMagic) throw std::runtime_error("not a dataset file: " + path.string());
  if (version != kVersion) {
    throw std::runtime_error("unsupported dataset version: " + path.string());
  }
  if (h.unit_bytes == 0) throw std::runtime_error("corrupt header: " + path.string());
  return h;
}

}  // namespace

void write_dataset_file(const std::filesystem::path& path, const std::byte* units,
                        std::uint64_t unit_count, std::uint64_t unit_bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot create dataset file: " + path.string());
  write_header(out, Header{unit_bytes, unit_count});
  out.write(reinterpret_cast<const char*>(units),
            static_cast<std::streamsize>(unit_count * unit_bytes));
  if (!out) throw std::runtime_error("short write to dataset file: " + path.string());
}

engine::MemoryDataset read_dataset_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open dataset file: " + path.string());
  const Header h = read_header(in, path);
  std::vector<std::byte> bytes(h.unit_count * h.unit_bytes);
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  if (!in) throw std::runtime_error("dataset file truncated: " + path.string());
  return engine::MemoryDataset(std::move(bytes), static_cast<std::size_t>(h.unit_bytes));
}

std::vector<std::byte> read_unit_range(const std::filesystem::path& path,
                                       std::uint64_t first_unit, std::uint64_t count) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open dataset file: " + path.string());
  const Header h = read_header(in, path);
  if (first_unit + count > h.unit_count) {
    throw std::out_of_range("read_unit_range: beyond end of " + path.string());
  }
  in.seekg(static_cast<std::streamoff>(kHeaderBytes + first_unit * h.unit_bytes));
  std::vector<std::byte> bytes(count * h.unit_bytes);
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  if (!in) throw std::runtime_error("dataset file truncated: " + path.string());
  return bytes;
}

DatasetFileInfo stat_dataset_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open dataset file: " + path.string());
  const Header h = read_header(in, path);
  return DatasetFileInfo{h.unit_bytes, h.unit_count};
}

void export_dataset(const std::filesystem::path& dir, const engine::MemoryDataset& data,
                    const storage::DataLayout& layout) {
  if (layout.total_units() != data.units()) {
    throw std::invalid_argument("export_dataset: layout units do not tile the dataset");
  }
  std::filesystem::create_directories(dir);
  std::uint64_t offset = 0;
  for (const auto& file : layout.files()) {
    std::uint64_t file_units = 0;
    for (std::uint32_t k = 0; k < file.chunk_count; ++k) {
      file_units += layout.chunk(file.first_chunk + k).units;
    }
    write_dataset_file(dir / file.name, data.unit(offset), file_units,
                       data.unit_bytes());
    offset += file_units;
  }
  write_index_file(dir / "index.cbx", layout);
}

engine::MemoryDataset import_dataset(const std::filesystem::path& dir,
                                     const storage::DataLayout& layout) {
  std::vector<std::byte> bytes;
  std::size_t unit_bytes = 0;
  for (const auto& file : layout.files()) {
    const engine::MemoryDataset part = read_dataset_file(dir / file.name);
    if (unit_bytes == 0) {
      unit_bytes = part.unit_bytes();
    } else if (unit_bytes != part.unit_bytes()) {
      throw std::runtime_error("import_dataset: inconsistent unit sizes");
    }
    bytes.insert(bytes.end(), part.data(), part.data() + part.size_bytes());
  }
  return engine::MemoryDataset(std::move(bytes), unit_bytes);
}

std::vector<std::byte> read_chunk(const std::filesystem::path& dir,
                                  const storage::DataLayout& layout,
                                  storage::ChunkId chunk) {
  const auto& info = layout.chunk(chunk);
  const auto& file = layout.file(info.file);
  // Unit offset of the chunk within its file.
  std::uint64_t first = 0;
  for (std::uint32_t k = 0; k < info.index_in_file; ++k) {
    first += layout.chunk(file.first_chunk + k).units;
  }
  return read_unit_range(dir / file.name, first, info.units);
}

void write_index_file(const std::filesystem::path& path,
                      const storage::DataLayout& layout) {
  BufferWriter writer;
  storage::serialize_index(layout, writer);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot create index file: " + path.string());
  out.write(reinterpret_cast<const char*>(writer.buffer().data()),
            static_cast<std::streamsize>(writer.size()));
  if (!out) throw std::runtime_error("short write to index file: " + path.string());
}

storage::DataLayout read_index_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("cannot open index file: " + path.string());
  const auto size = static_cast<std::size_t>(in.tellg());
  in.seekg(0);
  std::vector<std::uint8_t> bytes(size);
  in.read(reinterpret_cast<char*>(bytes.data()), static_cast<std::streamsize>(size));
  if (!in) throw std::runtime_error("index file truncated: " + path.string());
  BufferReader reader(bytes);
  return storage::parse_index(reader);
}

}  // namespace cloudburst::io
