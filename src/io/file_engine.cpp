#include "io/file_engine.hpp"

#include <atomic>
#include <chrono>
#include <stdexcept>

#include "common/thread_pool.hpp"

namespace cloudburst::io {

api::RobjPtr gr_run_files(const api::GRTask& task, const std::filesystem::path& dir,
                          const storage::DataLayout& layout,
                          const FileRunOptions& options, FileRunStats* stats) {
  if (options.threads == 0) throw std::invalid_argument("gr_run_files: threads must be > 0");
  const auto start = std::chrono::steady_clock::now();

  const std::size_t unit_bytes = task.unit_bytes();
  const std::size_t group_units =
      std::max<std::size_t>(1, options.cache_bytes / unit_bytes);
  const auto total_chunks = layout.chunks().size();

  std::vector<api::RobjPtr> robjs(options.threads);
  std::atomic<std::size_t> next_chunk{0};
  std::atomic<std::uint64_t> bytes_read{0};
  std::atomic<std::uint64_t> chunks_read{0};

  {
    ThreadPool pool(options.threads);
    pool.run_on_all(options.threads, [&](std::size_t worker) {
      api::RobjPtr robj = task.create_robj();
      while (true) {
        const std::size_t c = next_chunk.fetch_add(1, std::memory_order_relaxed);
        if (c >= total_chunks) break;
        const auto chunk_id = static_cast<storage::ChunkId>(c);
        const std::vector<std::byte> bytes = read_chunk(dir, layout, chunk_id);
        if (bytes.size() % unit_bytes != 0) {
          throw std::runtime_error("gr_run_files: chunk size not a unit multiple");
        }
        const std::size_t units = bytes.size() / unit_bytes;
        for (std::size_t begin = 0; begin < units; begin += group_units) {
          const std::size_t count = std::min(group_units, units - begin);
          task.process(bytes.data() + begin * unit_bytes, count, *robj);
        }
        bytes_read.fetch_add(bytes.size(), std::memory_order_relaxed);
        chunks_read.fetch_add(1, std::memory_order_relaxed);
      }
      robjs[worker] = std::move(robj);
    });
  }

  api::RobjPtr result = std::move(robjs[0]);
  for (std::size_t i = 1; i < robjs.size(); ++i) result->merge_from(*robjs[i]);
  task.finalize(*result);

  if (stats) {
    stats->wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    stats->chunks_read = chunks_read.load();
    stats->bytes_read = bytes_read.load();
  }
  return result;
}

}  // namespace cloudburst::io
