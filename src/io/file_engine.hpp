// Out-of-core Generalized Reduction over an exported dataset directory.
//
// Mirrors the slave's processing structure on real files: worker threads
// claim chunks from the layout on demand, read each chunk from its dataset
// file (a real ranged read), fold it into a thread-private reduction object
// in cache-sized unit groups, and the engine merges the per-thread robjs.
// Memory use is bounded by threads x chunk size, so datasets far larger
// than RAM stream through.
#pragma once

#include <filesystem>

#include "api/generalized_reduction.hpp"
#include "io/dataset_io.hpp"
#include "storage/data_layout.hpp"

namespace cloudburst::io {

struct FileRunOptions {
  std::size_t threads = 1;
  /// Bytes of data per processing group (cache sizing), as in GrEngineOptions.
  std::size_t cache_bytes = 1 << 20;
};

struct FileRunStats {
  double wall_seconds = 0.0;
  std::uint64_t chunks_read = 0;
  std::uint64_t bytes_read = 0;
};

/// Run `task` over the dataset exported at `dir` (per `layout`); returns the
/// finalized global reduction object. Results are identical to an in-memory
/// gr_run over the same data.
api::RobjPtr gr_run_files(const api::GRTask& task, const std::filesystem::path& dir,
                          const storage::DataLayout& layout, const FileRunOptions& options,
                          FileRunStats* stats = nullptr);

}  // namespace cloudburst::io
