#include "qos/store_qos.hpp"

#include <algorithm>
#include <stdexcept>

#include "cluster/platform.hpp"

namespace cloudburst::qos {

namespace {

constexpr double kEps = 1e-9;

}  // namespace

StoreQos::StoreQos(QosConfig config) : config_(std::move(config)) {
  for (const auto& [name, weight] : config_.tenant_weights) {
    if (!(weight > 0.0)) {
      throw std::invalid_argument("StoreQos: share weight for tenant '" + name +
                                  "' must be > 0 (all-zero weights are rejected)");
    }
  }
  if (!(config_.default_weight > 0.0)) {
    throw std::invalid_argument("StoreQos: default_weight must be > 0");
  }
  if (!(config_.system_weight > 0.0)) {
    throw std::invalid_argument("StoreQos: system_weight must be > 0");
  }
  if (!(config_.pacing_factor > 0.0) || config_.pacing_factor > 1.0) {
    throw std::invalid_argument("StoreQos: pacing_factor must be in (0, 1]");
  }
  if (!(config_.min_fair_rate > 0.0)) {
    throw std::invalid_argument("StoreQos: min_fair_rate must be > 0");
  }
  tenants_.push_back(kSystemTenantName);
  tenant_ids_.emplace(kSystemTenantName, kSystemTenant);
  per_tenant_.resize(1);
  cache_counters_.resize(1);
}

TenantId StoreQos::tenant_id(const std::string& name) {
  const auto it = tenant_ids_.find(name);
  if (it != tenant_ids_.end()) return it->second;
  const TenantId id = static_cast<TenantId>(tenants_.size());
  tenants_.push_back(name);
  tenant_ids_.emplace(name, id);
  per_tenant_.resize(tenants_.size());
  cache_counters_.resize(tenants_.size());
  return id;
}

double StoreQos::weight_of(TenantId id) const {
  if (id == kSystemTenant) return config_.system_weight;
  const auto it = config_.tenant_weights.find(tenants_.at(id));
  return it != config_.tenant_weights.end() ? it->second : config_.default_weight;
}

void StoreQos::attach(cluster::Platform& platform) {
  std::vector<double> capacities;
  capacities.reserve(platform.store_count());
  for (storage::StoreId s = 0; s < platform.store_count(); ++s) {
    const cluster::ClusterId owner = platform.owner_of_store(s);
    const auto& store_spec = platform.spec().sites.at(owner).store;
    capacities.push_back(store_spec ? store_spec->front_bandwidth : 0.0);
  }
  bind(platform.sim(), std::move(capacities));
}

void StoreQos::bind(des::Simulator& sim, std::vector<double> store_capacities) {
  if (!stores_.empty() && stores_.size() != store_capacities.size()) {
    throw std::invalid_argument(
        "StoreQos: re-attach with a different store count (" +
        std::to_string(store_capacities.size()) + " vs " +
        std::to_string(stores_.size()) + " at first attach)");
  }
  sim_ = &sim;
  // Rebuild scheduler state from scratch (stale busy flags would reference
  // events of a previous simulator); reservations and stats survive.
  stores_.assign(store_capacities.size(), StoreState{});
  for (std::size_t s = 0; s < store_capacities.size(); ++s) {
    stores_[s].capacity = store_capacities[s];
  }
  rebuild_lanes();
}

void StoreQos::rebuild_lanes() {
  for (std::size_t i = 0; i < reservations_.size(); ++i) {
    const Reservation& r = reservations_[i];
    if (r.store < stores_.size()) {
      stores_[r.store].lanes.push_back(LaneState{i, false, {}});
    }
  }
}

double StoreQos::now_seconds() const {
  return sim_ ? des::to_seconds(sim_->now()) : 0.0;
}

double StoreQos::fair_rate(const StoreState& st, double now) const {
  double rate = config_.pacing_factor * st.capacity;
  for (const LaneState& lane : st.lanes) {
    const Reservation& r = reservations_[lane.reservation];
    if (now >= r.begin_seconds - kEps && now < r.end_seconds - kEps) {
      rate -= r.bytes_per_sec;
    }
  }
  return std::max(rate, config_.min_fair_rate);
}

int StoreQos::active_lane(const StoreState& st, TenantId tenant, double now) const {
  for (std::size_t i = 0; i < st.lanes.size(); ++i) {
    const Reservation& r = reservations_[st.lanes[i].reservation];
    if (r.tenant == tenant && now >= r.begin_seconds - kEps &&
        now < r.end_seconds - kEps) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

double StoreQos::max_reserved_overlap(storage::StoreId store, double begin,
                                      double end, double extra) const {
  // Reserved rates are piecewise-constant; the max over [begin, end) is
  // attained at one of the window-begin points inside the candidate window
  // (or at `begin` itself).
  std::vector<double> points{begin};
  for (const Reservation& r : reservations_) {
    if (r.store == store && r.begin_seconds > begin && r.begin_seconds < end) {
      points.push_back(r.begin_seconds);
    }
  }
  double worst = 0.0;
  for (double t : points) {
    double sum = extra;
    for (const Reservation& r : reservations_) {
      if (r.store == store && t >= r.begin_seconds - kEps &&
          t < r.end_seconds - kEps) {
        sum += r.bytes_per_sec;
      }
    }
    worst = std::max(worst, sum);
  }
  return worst;
}

void StoreQos::trace_reservation(bool granted, storage::StoreId store,
                                 double bytes_per_sec) {
  if (!tracer_) return;
  tracer_->record(now_seconds(),
                  granted ? trace::EventKind::ReservationGranted
                          : trace::EventKind::ReservationRejected,
                  "qos", store, static_cast<std::uint64_t>(bytes_per_sec));
}

bool StoreQos::reserve(const std::string& tenant, storage::StoreId store,
                       double bytes_per_sec, double begin_seconds,
                       double end_seconds) {
  if (!sim_) {
    throw std::logic_error(
        "StoreQos::reserve: attach()/bind() the platform first so link "
        "capacities are known");
  }
  if (store >= stores_.size()) {
    throw std::invalid_argument("StoreQos::reserve: store " +
                                std::to_string(store) + " does not exist");
  }
  if (!(bytes_per_sec > 0.0) || end_seconds <= begin_seconds ||
      begin_seconds < 0.0) {
    throw std::invalid_argument(
        "StoreQos::reserve: need bytes_per_sec > 0 and 0 <= begin < end");
  }
  const TenantId id = tenant_id(tenant);
  StoreState& st = stores_[store];
  bool granted = st.capacity > 0.0;
  if (granted) {
    // The carve-out must leave the fair pool its floor.
    const double limit = config_.pacing_factor * st.capacity - config_.min_fair_rate;
    granted = max_reserved_overlap(store, begin_seconds, end_seconds,
                                   bytes_per_sec) <= limit + kEps;
  }
  trace_reservation(granted, store, bytes_per_sec);
  if (!granted) {
    ++rejected_;
    return false;
  }
  reservations_.push_back(
      Reservation{id, store, bytes_per_sec, begin_seconds, end_seconds});
  st.lanes.push_back(LaneState{reservations_.size() - 1, false, {}});
  return true;
}

void StoreQos::validate_against(const cluster::Platform& platform) const {
  if (!stores_.empty() && stores_.size() != platform.store_count()) {
    throw std::invalid_argument(
        "StoreQos: attached to " + std::to_string(stores_.size()) +
        " stores but the run's platform has " +
        std::to_string(platform.store_count()));
  }
  for (const Reservation& r : reservations_) {
    if (r.store >= platform.store_count()) {
      throw std::invalid_argument("StoreQos: reservation on store " +
                                  std::to_string(r.store) +
                                  " which the platform does not have");
    }
    const cluster::ClusterId owner = platform.owner_of_store(r.store);
    const auto& store_spec = platform.spec().sites.at(owner).store;
    const double capacity = store_spec ? store_spec->front_bandwidth : 0.0;
    const double limit = config_.pacing_factor * capacity - config_.min_fair_rate;
    const double worst =
        max_reserved_overlap(r.store, r.begin_seconds, r.end_seconds, 0.0);
    if (worst > limit + kEps) {
      throw std::invalid_argument(
          "StoreQos: reservations on store " + std::to_string(r.store) +
          " peak at " + std::to_string(worst) +
          " bytes/sec, exceeding the access link's schedulable capacity (" +
          std::to_string(std::max(limit, 0.0)) + " bytes/sec)");
    }
  }
}

TenantStoreStats& StoreQos::stats_slot(TenantId tenant, storage::StoreId store) {
  return per_tenant_.at(tenant)[store];
}

void StoreQos::record_release(TenantId tenant, storage::StoreId store,
                              const Pending& p, double now,
                              double slot_seconds) {
  TenantStoreStats& ts = stats_slot(tenant, store);
  const double waited = now - p.submit_seconds;
  if (waited > kEps) {
    ++ts.throttled;
    ts.wait_seconds += waited;
  }
  ts.bytes += p.bytes;
  if (ts.first_active_seconds < 0.0) ts.first_active_seconds = p.submit_seconds;
  ts.last_active_seconds = std::max(ts.last_active_seconds, now + slot_seconds);
}

void StoreQos::submit(storage::StoreId store, TenantId tenant,
                      std::uint64_t bytes, Release release) {
  bytes = std::max<std::uint64_t>(bytes, 1);
  TenantStoreStats& ts = stats_slot(tenant, store);
  ++ts.requests;
  if (!sim_ || store >= stores_.size() || stores_[store].capacity <= 0.0) {
    // Pass-through: no known access link to arbitrate.
    const double now = now_seconds();
    ts.bytes += bytes;
    if (ts.first_active_seconds < 0.0) ts.first_active_seconds = now;
    ts.last_active_seconds = std::max(ts.last_active_seconds, now);
    release(0.0);
    return;
  }
  StoreState& st = stores_[store];
  const double now = now_seconds();

  Pending p;
  p.tenant = tenant;
  p.bytes = bytes;
  p.submit_seconds = now;
  p.seq = seq_++;
  p.release = std::move(release);

  const int lane = active_lane(st, tenant, now);
  if (lane >= 0) {
    st.lanes[static_cast<std::size_t>(lane)].queue.push_back(std::move(p));
    pump_lane(store, static_cast<std::size_t>(lane));
    return;
  }

  // Start-time fair queueing: tag with virtual start/finish times scaled by
  // the tenant's weight; serve in finish-tag order.
  double& last_finish = st.last_finish[tenant];
  p.start_tag = std::max(st.vtime, last_finish);
  p.finish_tag = p.start_tag + static_cast<double>(bytes) / weight_of(tenant);
  last_finish = p.finish_tag;

  const auto later = [](const Pending& a, const Pending& b) {
    return a.finish_tag > b.finish_tag ||
           (a.finish_tag == b.finish_tag && a.seq > b.seq);
  };
  st.heap.push_back(std::move(p));
  std::push_heap(st.heap.begin(), st.heap.end(), later);
  pump_fair(store);
}

void StoreQos::pump_fair(storage::StoreId store) {
  StoreState& st = stores_[store];
  if (st.busy || st.heap.empty()) return;

  const auto later = [](const Pending& a, const Pending& b) {
    return a.finish_tag > b.finish_tag ||
           (a.finish_tag == b.finish_tag && a.seq > b.seq);
  };
  std::pop_heap(st.heap.begin(), st.heap.end(), later);
  Pending p = std::move(st.heap.back());
  st.heap.pop_back();

  st.vtime = std::max(st.vtime, p.start_tag);
  const double now = now_seconds();
  const double slot = static_cast<double>(p.bytes) / fair_rate(st, now);
  record_release(p.tenant, store, p, now, slot);

  st.busy = true;
  sim_->schedule(des::from_seconds(slot), [this, store] {
    stores_[store].busy = false;
    pump_fair(store);
  });
  p.release(now - p.submit_seconds);
}

void StoreQos::pump_lane(storage::StoreId store, std::size_t lane_idx) {
  StoreState& st = stores_[store];
  LaneState& lane = st.lanes[lane_idx];
  if (lane.busy || lane.queue.empty()) return;

  Pending p = std::move(lane.queue.front());
  lane.queue.pop_front();
  const Reservation& r = reservations_[lane.reservation];
  const double now = now_seconds();
  const double slot = static_cast<double>(p.bytes) / r.bytes_per_sec;
  record_release(p.tenant, store, p, now, slot);

  lane.busy = true;
  sim_->schedule(des::from_seconds(slot), [this, store, lane_idx] {
    stores_[store].lanes[lane_idx].busy = false;
    pump_lane(store, lane_idx);
  });
  p.release(now - p.submit_seconds);
}

void StoreQos::note_cache_hit(TenantId tenant) {
  ++cache_counters_.at(tenant).hits;
}

void StoreQos::note_cache_miss(TenantId tenant) {
  ++cache_counters_.at(tenant).misses;
}

std::map<TenantId, std::uint64_t> StoreQos::cache_budgets(
    std::uint64_t capacity_bytes) {
  std::map<TenantId, std::uint64_t> budgets;
  double total = 0.0;
  for (const auto& [name, weight] : config_.tenant_weights) total += weight;
  if (total <= 0.0) return budgets;
  for (const auto& [name, weight] : config_.tenant_weights) {
    budgets[tenant_id(name)] = static_cast<std::uint64_t>(
        static_cast<double>(capacity_bytes) * weight / total);
  }
  return budgets;
}

const TenantStoreStats* StoreQos::store_stats(TenantId tenant,
                                              storage::StoreId store) const {
  if (tenant >= per_tenant_.size()) return nullptr;
  const auto it = per_tenant_[tenant].find(store);
  return it != per_tenant_[tenant].end() ? &it->second : nullptr;
}

TenantQosReport StoreQos::report(TenantId tenant) const {
  TenantQosReport out;
  if (tenant >= tenants_.size()) return out;
  out.active = true;
  double first = -1.0;
  double last = 0.0;
  for (const auto& [store, ts] : per_tenant_[tenant]) {
    out.store_requests += ts.requests;
    out.bytes += ts.bytes;
    out.throttled += ts.throttled;
    out.wait_seconds += ts.wait_seconds;
    if (ts.first_active_seconds >= 0.0 &&
        (first < 0.0 || ts.first_active_seconds < first)) {
      first = ts.first_active_seconds;
    }
    last = std::max(last, ts.last_active_seconds);
  }
  if (first >= 0.0 && last > first) {
    out.achieved_bytes_per_sec = static_cast<double>(out.bytes) / (last - first);
  }
  out.cache_hits = cache_counters_.at(tenant).hits;
  out.cache_misses = cache_counters_.at(tenant).misses;
  return out;
}

TenantQosReport StoreQos::report(const std::string& tenant) const {
  const auto it = tenant_ids_.find(tenant);
  if (it == tenant_ids_.end()) return TenantQosReport{};
  return report(it->second);
}

double StoreQos::store_capacity(storage::StoreId store) const {
  return store < stores_.size() ? stores_[store].capacity : 0.0;
}

}  // namespace cloudburst::qos
